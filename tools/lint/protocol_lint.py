#!/usr/bin/env python3
"""Protocol-contract linter: cross-checks the wire protocol against its docs.

The qross wire contract lives in three places that must never drift:

  * src/io/snapshot.hpp     — the frame-type numbers (kRecordNet* constants)
  * src/net/protocol.hpp    — the ErrorCode enum and the *Frame payload structs
  * PROTOCOL.md             — the human-readable frame and error-code tables

plus one committed manifest this tool owns:

  * tools/lint/protocol_fields.json — the ordered field list of every payload
    struct, the append-only baseline.

Checks (exit 1 on any failure):
  1. every kRecordNet* constant appears in PROTOCOL.md's frame table with the
     same number, and vice versa (name = constant minus the kRecordNet prefix);
  2. no frame number is reused, in either the header or the table;
  3. every ErrorCode enumerator appears in PROTOCOL.md's error table with the
     same number, and vice versa; no error number reused;
  4. append-only payloads: each struct's current field list must extend the
     committed manifest — a removed, renamed, or reordered field fails; new
     fields are only accepted after `--update` re-records the manifest (so the
     extension itself is a reviewed diff).

`--update` rewrites the manifest, but refuses anything that is not a pure
append relative to the committed file — the guard cannot be steamrolled by
regenerating.  `--self-test` seeds known violations into temp copies of the
inputs and asserts each one is caught; CI runs it so the linter itself cannot
silently rot.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
import tempfile

SNAPSHOT_HPP = "src/io/snapshot.hpp"
PROTOCOL_HPP = "src/net/protocol.hpp"
PROTOCOL_MD = "PROTOCOL.md"
FIELDS_JSON = "tools/lint/protocol_fields.json"

RECORD_RE = re.compile(r"^\s*kRecordNet(\w+)\s*=\s*(\d+)\s*,")
ERROR_RE = re.compile(r"^\s*(kErr\w+)\s*=\s*(\d+)\s*,")
STRUCT_RE = re.compile(r"^struct\s+(\w+Frame)\s*\{")
# A field line: declaration ending in `;`, optionally with a default.  The
# captured name is the identifier right before `=`, `{`, or `;`.
FIELD_RE = re.compile(r"^\s*[\w:<>,\s*&]+?[\s&*](\w+)\s*(?:=[^;]*|\{[^;]*\})?;")
MD_FRAME_RE = re.compile(r"^\|\s*(\d+)\s*\|\s*(\w+)\s*\|\s*(?:c→s|s→c|c->s|s->c)\s*\|")
MD_ERROR_RE = re.compile(r"^\|\s*(\d+)\s*\|\s*(kErr\w+)\s*\|")


class LintError(Exception):
    pass


def fail(errors: list[str], message: str) -> None:
    errors.append(message)


def parse_record_types(text: str) -> dict[str, int]:
    """kRecordNet* constants, name (without prefix) → number."""
    out: dict[str, int] = {}
    for line in text.splitlines():
        m = RECORD_RE.match(line)
        if m:
            out[m.group(1)] = int(m.group(2))
    return out


def parse_error_codes(text: str) -> dict[str, int]:
    """ErrorCode enumerators, full name → number."""
    out: dict[str, int] = {}
    in_enum = False
    for line in text.splitlines():
        if re.match(r"^enum\s+ErrorCode", line):
            in_enum = True
            continue
        if in_enum:
            if line.startswith("};"):
                break
            m = ERROR_RE.match(line)
            if m:
                out[m.group(1)] = int(m.group(2))
    return out


def parse_frame_fields(text: str) -> dict[str, list[str]]:
    """Top-level `struct *Frame` payload structs, name → ordered field names.

    Nested structs/enums (TuneResultFrame::Trial) contribute no fields of
    their own; a member OF nested type (`std::vector<Trial> trials`) does.
    The generic `Frame` carrier struct is not a payload and is skipped by the
    \\w+Frame pattern requiring a prefix.
    """
    out: dict[str, list[str]] = {}
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        m = STRUCT_RE.match(lines[i])
        if not m:
            i += 1
            continue
        name = m.group(1)
        fields: list[str] = []
        depth = 1
        i += 1
        while i < len(lines) and depth > 0:
            line = lines[i]
            stripped = line.strip()
            opens = line.count("{")
            closes = line.count("}")
            if depth == 1 and not stripped.startswith(("//", "/*", "*")):
                # Nested type declarations open a scope; their members are
                # counted only when the nested type is used as a field.
                if not re.match(r"^\s*(struct|enum|class|union)\b", line):
                    fm = FIELD_RE.match(line)
                    if fm and "(" not in line.split("=")[0].split(";")[0]:
                        fields.append(fm.group(1))
            depth += opens - closes
            i += 1
        out[name] = fields
    return out


def parse_md_table(text: str, row_re: re.Pattern) -> list[tuple[int, str]]:
    return [
        (int(m.group(1)), m.group(2))
        for m in (row_re.match(line) for line in text.splitlines())
        if m
    ]


def check_tree(root: pathlib.Path) -> list[str]:
    errors: list[str] = []
    snapshot = (root / SNAPSHOT_HPP).read_text()
    protocol = (root / PROTOCOL_HPP).read_text()
    md = (root / PROTOCOL_MD).read_text()

    # --- frames: header vs doc table ---------------------------------------
    records = parse_record_types(snapshot)
    if not records:
        fail(errors, f"{SNAPSHOT_HPP}: no kRecordNet* constants found")
    md_frames = parse_md_table(md, MD_FRAME_RE)
    if not md_frames:
        fail(errors, f"{PROTOCOL_MD}: no frame-table rows matched")

    numbers: dict[int, str] = {}
    for name, number in records.items():
        if number in numbers:
            fail(errors,
                 f"{SNAPSHOT_HPP}: frame number {number} reused by "
                 f"kRecordNet{numbers[number]} and kRecordNet{name}")
        numbers[number] = name

    md_by_name = {}
    md_numbers: dict[int, str] = {}
    for number, name in md_frames:
        if name in md_by_name:
            fail(errors, f"{PROTOCOL_MD}: frame '{name}' documented twice")
        if number in md_numbers:
            fail(errors,
                 f"{PROTOCOL_MD}: frame number {number} reused by "
                 f"{md_numbers[number]} and {name}")
        md_by_name[name] = number
        md_numbers[number] = name

    for name, number in sorted(records.items(), key=lambda kv: kv[1]):
        if name not in md_by_name:
            fail(errors,
                 f"{PROTOCOL_MD}: frame {name} (= {number}) is in "
                 f"{SNAPSHOT_HPP} but missing from the frame table")
        elif md_by_name[name] != number:
            fail(errors,
                 f"frame {name}: {SNAPSHOT_HPP} says {number}, "
                 f"{PROTOCOL_MD} says {md_by_name[name]}")
    for name, number in md_by_name.items():
        if name not in records:
            fail(errors,
                 f"{PROTOCOL_MD}: frame {name} (= {number}) documented but "
                 f"there is no kRecordNet{name} in {SNAPSHOT_HPP}")

    # --- error codes: header vs doc table ----------------------------------
    codes = parse_error_codes(protocol)
    if not codes:
        fail(errors, f"{PROTOCOL_HPP}: no ErrorCode enumerators found")
    md_errors = parse_md_table(md, MD_ERROR_RE)
    if not md_errors:
        fail(errors, f"{PROTOCOL_MD}: no error-table rows matched")

    code_numbers: dict[int, str] = {}
    for name, number in codes.items():
        if number in code_numbers:
            fail(errors,
                 f"{PROTOCOL_HPP}: error number {number} reused by "
                 f"{code_numbers[number]} and {name}")
        code_numbers[number] = name

    md_codes = {}
    for number, name in md_errors:
        if name in md_codes:
            fail(errors, f"{PROTOCOL_MD}: error '{name}' documented twice")
        md_codes[name] = number

    for name, number in sorted(codes.items(), key=lambda kv: kv[1]):
        if name not in md_codes:
            fail(errors,
                 f"{PROTOCOL_MD}: {name} (= {number}) is in {PROTOCOL_HPP} "
                 f"but missing from the error table")
        elif md_codes[name] != number:
            fail(errors,
                 f"error {name}: {PROTOCOL_HPP} says {number}, "
                 f"{PROTOCOL_MD} says {md_codes[name]}")
    for name, number in md_codes.items():
        if name not in codes:
            fail(errors,
                 f"{PROTOCOL_MD}: error {name} (= {number}) documented but "
                 f"absent from the ErrorCode enum")

    # --- payload structs: append-only vs the committed manifest -------------
    fields = parse_frame_fields(protocol)
    if not fields:
        fail(errors, f"{PROTOCOL_HPP}: no *Frame payload structs found")
    manifest_path = root / FIELDS_JSON
    if not manifest_path.exists():
        fail(errors,
             f"{FIELDS_JSON} missing — run protocol_lint.py --update once to "
             f"record the baseline")
        return errors
    manifest = json.loads(manifest_path.read_text())

    for struct, committed in manifest.items():
        current = fields.get(struct)
        if current is None:
            fail(errors,
                 f"{PROTOCOL_HPP}: struct {struct} was removed but is in the "
                 f"committed manifest — wire payloads are append-only within "
                 f"a version")
            continue
        if current[: len(committed)] != committed:
            fail(errors,
                 f"{struct}: field list no longer extends the committed "
                 f"manifest — payloads are append-only within a version.\n"
                 f"  committed: {committed}\n"
                 f"  current:   {current}")
        elif len(current) > len(committed):
            fail(errors,
                 f"{struct}: new appended field(s) "
                 f"{current[len(committed):]} — run protocol_lint.py --update "
                 f"and commit the manifest so the extension is reviewed")
    for struct in fields:
        if struct not in manifest:
            fail(errors,
                 f"{struct}: new payload struct not in {FIELDS_JSON} — run "
                 f"protocol_lint.py --update and commit the manifest")
    return errors


def update_manifest(root: pathlib.Path) -> int:
    fields = parse_frame_fields((root / PROTOCOL_HPP).read_text())
    manifest_path = root / FIELDS_JSON
    if manifest_path.exists():
        committed = json.loads(manifest_path.read_text())
        for struct, old in committed.items():
            new = fields.get(struct)
            if new is None:
                print(f"refusing --update: struct {struct} was removed "
                      f"(append-only contract)", file=sys.stderr)
                return 1
            if new[: len(old)] != old:
                print(f"refusing --update: {struct} reorders or removes "
                      f"committed fields (append-only contract)\n"
                      f"  committed: {old}\n  current:   {new}",
                      file=sys.stderr)
                return 1
    manifest_path.parent.mkdir(parents=True, exist_ok=True)
    manifest_path.write_text(
        json.dumps(fields, indent=2, sort_keys=True) + "\n")
    print(f"wrote {manifest_path} ({len(fields)} structs)")
    return 0


def self_test(root: pathlib.Path) -> int:
    """Seeds violations into temp copies and asserts each one is caught."""
    import shutil

    def clone(into: pathlib.Path) -> pathlib.Path:
        for rel in (SNAPSHOT_HPP, PROTOCOL_HPP, PROTOCOL_MD, FIELDS_JSON):
            dst = into / rel
            dst.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(root / rel, dst)
        return into

    def mutate(rel: str, old: str, new: str, tree: pathlib.Path) -> None:
        path = tree / rel
        text = path.read_text()
        if old not in text:
            raise LintError(f"self-test seed '{old}' not found in {rel}")
        path.write_text(text.replace(old, new, 1))

    cases = [
        ("frame id mutated in the header",
         SNAPSHOT_HPP, "kRecordNetResult = 22", "kRecordNetResult = 42"),
        ("frame id reused in the header",
         SNAPSHOT_HPP, "kRecordNetCancelJob = 21", "kRecordNetCancelJob = 20"),
        ("frame row dropped from the doc",
         PROTOCOL_MD, "| 21 | CancelJob | c→s | `tag` |", ""),
        ("error code renumbered in the header",
         PROTOCOL_HPP, "kErrDraining = 8", "kErrDraining = 88"),
        ("error row name drifted in the doc",
         PROTOCOL_MD, "| 9 | kErrHandshakeRequired |", "| 9 | kErrMustHello |"),
        ("wire field removed from a payload struct",
         PROTOCOL_HPP, "  bool cache_hit = false;\n", ""),
        ("wire fields reordered in a payload struct",
         PROTOCOL_HPP,
         "  bool cache_hit = false;\n  bool coalesced = false;",
         "  bool coalesced = false;\n  bool cache_hit = false;"),
    ]

    clean_errors = check_tree(root)
    if clean_errors:
        print("self-test aborted: the CURRENT tree does not pass:",
              file=sys.stderr)
        for e in clean_errors:
            print(f"  {e}", file=sys.stderr)
        return 1

    failures = 0
    for label, rel, old, new in cases:
        with tempfile.TemporaryDirectory(prefix="protocol_lint_") as tmp:
            tree = clone(pathlib.Path(tmp))
            try:
                mutate(rel, old, new, tree)
            except LintError as exc:
                print(f"FAIL [{label}]: {exc}", file=sys.stderr)
                failures += 1
                continue
            caught = check_tree(tree)
            if caught:
                print(f"ok   [{label}]: caught ({caught[0].splitlines()[0]})")
            else:
                print(f"FAIL [{label}]: seeded violation NOT caught",
                      file=sys.stderr)
                failures += 1
    if failures:
        print(f"self-test: {failures}/{len(cases)} cases missed",
              file=sys.stderr)
        return 1
    print(f"self-test: all {len(cases)} seeded violations caught")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parents[2],
                        help="repository root (default: two levels up)")
    parser.add_argument("--update", action="store_true",
                        help="re-record the append-only field manifest")
    parser.add_argument("--self-test", action="store_true",
                        help="verify seeded violations are caught")
    args = parser.parse_args()

    if args.update:
        return update_manifest(args.repo)
    if args.self_test:
        return self_test(args.repo)
    errors = check_tree(args.repo)
    for e in errors:
        print(f"protocol_lint: {e}", file=sys.stderr)
    if errors:
        print(f"protocol_lint: {len(errors)} error(s)", file=sys.stderr)
        return 1
    print("protocol_lint: frame table, error table, and payload manifest all "
          "consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
