#!/usr/bin/env bash
# Static-analysis smoke: the same one command CI's Release-tidy lane runs.
#
#   tools/ci/lintsmoke.sh [build-dir]
#
# Three stages, each degrading gracefully so the script is useful on boxes
# without the clang toolchain (the protocol linter needs only python3):
#
#   1. protocol_lint.py + its seeded-violation self-test — the wire contract
#      (frame ids, error codes, append-only payload fields) vs PROTOCOL.md;
#   2. the thread-safety negative-compile proof (clang++ only: GCC compiles
#      the annotations away, so there is nothing to prove there);
#   3. clang-tidy over src/ using the build dir's compilation database and
#      the committed .clang-tidy baseline (advisory findings; fails only on
#      error-severity diagnostics, i.e. code that does not compile).
set -euo pipefail

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/../.." && pwd)"
cd "$repo_root"

echo "== protocol lint =="
python3 tools/lint/protocol_lint.py --repo "$repo_root"
python3 tools/lint/protocol_lint.py --repo "$repo_root" --self-test

echo "== thread-safety negative-compile proof =="
if command -v clang++ >/dev/null 2>&1; then
  cmake \
    -DPROBE="$repo_root/tests/negative_compile/thread_safety_probe.cpp" \
    -DINCLUDE="$repo_root/src" \
    -DCOMPILER="$(command -v clang++)" \
    -DWORKDIR="$repo_root/$build_dir/negative_compile" \
    -P "$repo_root/tests/negative_compile/check.cmake"
else
  echo "lintsmoke: clang++ not found; skipping the negative-compile proof" >&2
fi

echo "== clang-tidy baseline =="
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lintsmoke: clang-tidy not found; skipping the tidy baseline" >&2
elif [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "lintsmoke: $build_dir/compile_commands.json missing — configure with" >&2
  echo "  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON  to run the tidy baseline" >&2
else
  # xargs propagates any non-zero clang-tidy exit (error-severity findings),
  # and -P fans the translation units across cores.
  find src -name '*.cpp' -print0 |
    xargs -0 -n 4 -P "$(nproc)" clang-tidy -p "$build_dir" --quiet
  echo "lintsmoke: clang-tidy baseline clean (advisory findings above, if any)"
fi

echo "lintsmoke: OK"
