#!/usr/bin/env bash
# Open-loop load-replay smoke: overload a tightly-quota'd one-worker qrossd.
#
# A seeded open-loop replay offers 2000 jobs/s — far above what one worker
# can absorb with ~50k-flip solves — so admission control MUST shed, the
# server must keep serving what it admits, and every refusal must be
# classified (lost == 0, failed == 0).  The polite client (1/5 of arrivals,
# 4x fair-share weight) must see a lower ok-job p95 than the greedy flooder.
# The same seed is also dry-run twice and diffed: the arrival schedule is
# bit-for-bit reproducible.  SIGTERM at the end must drain cleanly.
#
# Usage: tools/ci/loadsmoke.sh [BUILD_DIR]   (default: current dir)
set -euo pipefail
cd "${1:-.}"

rm -rf loadsmoke
mkdir -p loadsmoke

# Fixed seed => identical arrival schedule across two generator runs.
./qross_cli load --dry-run --rate 2000 --duration 2 --arrivals bursty \
  --clients greedy=4,polite=1 --hit-ratio 0.3 --seed 42 > loadsmoke/sched1.txt
./qross_cli load --dry-run --rate 2000 --duration 2 --arrivals bursty \
  --clients greedy=4,polite=1 --hit-ratio 0.3 --seed 42 > loadsmoke/sched2.txt
test -s loadsmoke/sched1.txt
diff loadsmoke/sched1.txt loadsmoke/sched2.txt

./qrossd --listen unix:loadsmoke/qrossd.sock --workers 1 \
  --max-queued-per-client 4 --max-inflight-per-client 8 \
  --client-weight polite=4 > loadsmoke/daemon.log 2>&1 &
echo $! > loadsmoke/daemon.pid
for i in $(seq 1 50); do [ -S loadsmoke/qrossd.sock ] && break; sleep 0.1; done
test -S loadsmoke/qrossd.sock

# Cache-cold on purpose (--hit-ratio 0): instant cache hits would dominate
# the ok-job latency quantiles and mask the queueing delay the fairness
# assertion below is about — every ok job here paid queue + solver.
./qross_cli load --server unix:loadsmoke/qrossd.sock \
  --rate 2000 --duration 2 --arrivals poisson --clients greedy=4,polite=1 \
  --hit-ratio 0 --vars 64 --replicas 8 --sweeps 100 \
  --seed 42 --json loadsmoke/summary.json | tee loadsmoke/replay.txt

python3 - <<'EOF'
import json
s = json.load(open('loadsmoke/summary.json'))
assert s['schema'] == 'qross-load-summary-v1', s.get('schema')
assert s['shed'] > 0, f"overload did not shed: {s}"
assert s['ok'] > 0, f"server stopped serving under overload: {s}"
assert s['lost'] == 0, f"unclassified jobs: {s}"
assert s['failed'] == 0, f"unexpected hard failures: {s}"
clients = {c['id']: c for c in s['clients']}
greedy, polite = clients['greedy'], clients['polite']
assert greedy['ok'] > 0 and polite['ok'] > 0, (greedy, polite)
assert polite['p95_ms'] < greedy['p95_ms'], \
    f"fair share did not protect polite: polite p95 {polite['p95_ms']:.1f}ms" \
    f" vs greedy p95 {greedy['p95_ms']:.1f}ms"
print(f"loadsmoke OK: {s['jobs']} jobs, shed rate {s['shed_rate']:.1%}, "
      f"ok {s['ok']}, polite p95 {polite['p95_ms']:.1f}ms "
      f"< greedy p95 {greedy['p95_ms']:.1f}ms")
EOF

kill -TERM "$(cat loadsmoke/daemon.pid)"
wait "$(cat loadsmoke/daemon.pid)"
grep -q 'clean drain' loadsmoke/daemon.log
cat loadsmoke/daemon.log
