#!/usr/bin/env bash
# Tuning-as-a-service smoke: remote tune with warm replay.
#
# Two-process proof of the paper's product over the wire: train a small
# tuner, serve it from qrossd (--tuner), and run the SAME `remote tune`
# session twice against the one daemon.  Determinism contract: everything but
# the final summary line (which carries wall time) must be byte-identical
# across runs, and the second session must replay entirely from the warm
# solve cache — "0 solver invocations" — while the first did real solver
# work.  The corpus sink must hold the completed sessions' rows afterwards.
#
# Usage: tools/ci/tunesmoke.sh [BUILD_DIR]   (default: current dir)
set -euo pipefail
cd "${1:-.}"
rm -rf tunesmoke

./qross_cli generate --count 4 --cities 6 --out-dir tunesmoke/instances --seed 17
./qross_cli train --instances tunesmoke/instances --out tunesmoke/tuner.qross \
  --solver da --replicas 4 --sweeps 10
./qrossd --listen unix:tunesmoke/qrossd.sock --workers 2 \
  --tuner tunesmoke/tuner.qross --tune-corpus tunesmoke/corpus.csv \
  --cache-file tunesmoke/cache.qsnap > tunesmoke/daemon.log 2>&1 &
echo $! > tunesmoke/daemon.pid
for i in $(seq 1 50); do [ -S tunesmoke/qrossd.sock ] && break; sleep 0.1; done
test -S tunesmoke/qrossd.sock
./qross_cli remote tune --server unix:tunesmoke/qrossd.sock \
  --cities 6 --instance-seed 3 --trials 6 --seed 5 --solver da | tee tunesmoke/run1.txt
./qross_cli remote tune --server unix:tunesmoke/qrossd.sock \
  --cities 6 --instance-seed 3 --trials 6 --seed 5 --solver da | tee tunesmoke/run2.txt
sed '$d' tunesmoke/run1.txt > tunesmoke/session1.txt
sed '$d' tunesmoke/run2.txt > tunesmoke/session2.txt
test -s tunesmoke/session1.txt
diff tunesmoke/session1.txt tunesmoke/session2.txt
grep -qE ' [1-9][0-9]* solver invocations' tunesmoke/run1.txt
grep -q ' 0 solver invocations' tunesmoke/run2.txt
./qross_cli remote metrics --server unix:tunesmoke/qrossd.sock | tee tunesmoke/metrics.txt
kill -TERM "$(cat tunesmoke/daemon.pid)"
wait "$(cat tunesmoke/daemon.pid)"
grep -q 'clean drain' tunesmoke/daemon.log
test -s tunesmoke/corpus.csv
cat tunesmoke/daemon.log
