#!/usr/bin/env bash
# Network service end-to-end smoke: qrossd over a Unix socket.
#
# Two-process proof over the socket: a warm qrossd serves a second
# short-lived `remote batch` client bit-identically from its cache (0 solver
# invocations), then SIGTERM drains cleanly (exit 0) and flushes the
# persistent cache.  `0 failed` + non-empty energies guard against an
# all-failed run sneaking past the ' 0 solver invocations' grep.  The daemon
# runs with --trace so the smoke also proves the observability surface end to
# end: SIGUSR1 dumps a well-formed Chrome trace with the expected lifecycle
# spans, `qross_cli trace` fetches the same ring over the wire, and
# `remote metrics --prom` emits parseable Prometheus text.
#
# Usage: tools/ci/netsmoke.sh [BUILD_DIR]   (default: current dir)
set -euo pipefail
cd "${1:-.}"
rm -rf netsmoke

./qross_cli generate --count 2 --cities 6 --out-dir netsmoke/instances --seed 11
printf 'netsmoke/instances/uniform_0.tsp 25\nnetsmoke/instances/uniform_1.tsp 25\n' > netsmoke/jobs.txt
./qrossd --listen unix:netsmoke/qrossd.sock --workers 2 \
  --cache-file netsmoke/cache.qsnap --trace --log-level info \
  --trace-dump netsmoke/trace.json > netsmoke/daemon.log 2>&1 &
echo $! > netsmoke/daemon.pid
for i in $(seq 1 50); do [ -S netsmoke/qrossd.sock ] && break; sleep 0.1; done
test -S netsmoke/qrossd.sock
./qross_cli remote batch --server unix:netsmoke/qrossd.sock \
  --jobs netsmoke/jobs.txt --solver da --replicas 4 --sweeps 20 --trace-id 7 | tee netsmoke/run1.txt
./qross_cli remote batch --server unix:netsmoke/qrossd.sock \
  --jobs netsmoke/jobs.txt --solver da --replicas 4 --sweeps 20 | tee netsmoke/run2.txt
awk '/^[0-9]/ {print $1, $NF}' netsmoke/run1.txt > netsmoke/energies1.txt
awk '/^[0-9]/ {print $1, $NF}' netsmoke/run2.txt > netsmoke/energies2.txt
test -s netsmoke/energies1.txt
diff netsmoke/energies1.txt netsmoke/energies2.txt
grep -q '2 solver invocations, 0 expired/cancelled, 0 failed' netsmoke/run1.txt
grep -q '2 cache hits, 0 coalesced, 0 solver invocations, 0 expired/cancelled, 0 failed' netsmoke/run2.txt
./qross_cli remote metrics --server unix:netsmoke/qrossd.sock
./qross_cli remote metrics --server unix:netsmoke/qrossd.sock --prom | tee netsmoke/metrics.prom
grep -q '^# TYPE qross_jobs_submitted_total counter' netsmoke/metrics.prom
grep -q '^qross_run_ms_bucket{le="+Inf"}' netsmoke/metrics.prom
./qross_cli trace --server unix:netsmoke/qrossd.sock --out netsmoke/wire-trace.json
kill -USR1 "$(cat netsmoke/daemon.pid)"
for i in $(seq 1 50); do [ -s netsmoke/trace.json ] && break; sleep 0.1; done
test -s netsmoke/trace.json
python3 - <<'EOF'
import json
for path in ('netsmoke/trace.json', 'netsmoke/wire-trace.json'):
    doc = json.load(open(path))
    events = doc['traceEvents']
    assert isinstance(events, list) and events, f'{path}: no trace events'
    for ev in events:
        for key in ('name', 'cat', 'ph', 'ts', 'pid', 'tid'):
            assert key in ev, f'{path}: event missing {key}: {ev}'
    names = {ev['name'] for ev in events}
    for span in ('frame_decode', 'submit', 'queue', 'dispatch',
                 'kernel', 'result_flush'):
        assert span in names, f'{path}: missing {span} span, have {sorted(names)}'
    assert any(ev.get('args', {}).get('trace') == 7 for ev in events), \
        f'{path}: client-supplied trace id 7 not stitched through'
    print(f'{path}: OK, {len(events)} events, {len(names)} span names')
EOF
kill -TERM "$(cat netsmoke/daemon.pid)"
wait "$(cat netsmoke/daemon.pid)"
grep -q 'clean drain' netsmoke/daemon.log
grep -q 'trace_dumped' netsmoke/daemon.log
cat netsmoke/daemon.log
./qross_cli cache info --file netsmoke/cache.qsnap
