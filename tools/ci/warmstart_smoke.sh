#!/usr/bin/env bash
# Cross-run warm start smoke: two qross_cli processes, one cache file.
#
# The second process must replay the first one's batches bit-identically from
# the persisted snapshot: identical result tables, zero solver invocations.
#
# Usage: tools/ci/warmstart_smoke.sh [BUILD_DIR]   (default: current dir)
set -euo pipefail
cd "${1:-.}"
rm -rf warmstart

./qross_cli generate --count 2 --cities 6 --out-dir warmstart/instances --seed 7
printf 'warmstart/instances/uniform_0.tsp 25\nwarmstart/instances/uniform_1.tsp 25\n' > warmstart/jobs.txt
./qross_cli batch --jobs warmstart/jobs.txt --cache-file warmstart/cache.qsnap \
  --solver da --replicas 4 --sweeps 20 | tee warmstart/run1.txt
./qross_cli batch --jobs warmstart/jobs.txt --cache-file warmstart/cache.qsnap \
  --solver da --replicas 4 --sweeps 20 | tee warmstart/run2.txt
awk '/^[0-9]/ {print $1, $NF}' warmstart/run1.txt > warmstart/energies1.txt
awk '/^[0-9]/ {print $1, $NF}' warmstart/run2.txt > warmstart/energies2.txt
diff warmstart/energies1.txt warmstart/energies2.txt
grep -q ' 0 solver invocations' warmstart/run2.txt
grep -q ' 2 loaded' warmstart/run2.txt
./qross_cli cache info --file warmstart/cache.qsnap
