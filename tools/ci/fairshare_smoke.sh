#!/usr/bin/env bash
# Fair-share admission smoke: quotas + greedy/polite clients.
#
# qrossd with a per-client inflight cap of 2 and a single worker: a greedy
# client flooding 12 submits over one connection gets kErrQuotaExceeded on
# the overflow (failed jobs, exit 1, NOT retried), while a fresh polite
# client still completes everything; the rejections must be visible in
# `remote metrics`.  The `|| test $? -eq 1` tolerates exactly the expected
# exit code — a usage error (2) or crash still fails the script.
#
# Usage: tools/ci/fairshare_smoke.sh [BUILD_DIR]   (default: current dir)
set -euo pipefail
cd "${1:-.}"
rm -rf fairshare

./qross_cli generate --count 2 --cities 6 --out-dir fairshare/instances --seed 13
printf 'fairshare/instances/uniform_0.tsp 25\nfairshare/instances/uniform_1.tsp 25\n' > fairshare/jobs.txt
./qrossd --listen unix:fairshare/qrossd.sock --workers 1 \
  --max-inflight-per-client 2 --client-weight greedy=1 \
  > fairshare/daemon.log 2>&1 &
echo $! > fairshare/daemon.pid
for i in $(seq 1 50); do [ -S fairshare/qrossd.sock ] && break; sleep 0.1; done
test -S fairshare/qrossd.sock
./qross_cli remote batch --server unix:fairshare/qrossd.sock --client-id greedy \
  --jobs fairshare/jobs.txt --solver da --replicas 4 --sweeps 20 --repeat 6 \
  2>fairshare/greedy.err | tee fairshare/greedy.txt || test $? -eq 1
grep -qE ' [1-9][0-9]* failed' fairshare/greedy.txt
grep -q 'server error 11' fairshare/greedy.err
./qross_cli remote batch --server unix:fairshare/qrossd.sock --client-id polite \
  --jobs fairshare/jobs.txt --solver da --replicas 4 --sweeps 20 | tee fairshare/polite.txt
grep -q ' 0 failed' fairshare/polite.txt
./qross_cli remote metrics --server unix:fairshare/qrossd.sock | tee fairshare/metrics.txt
grep -qE 'admission: [1-9][0-9]* submissions rejected' fairshare/metrics.txt
grep -q 'greedy' fairshare/metrics.txt
grep -q 'polite' fairshare/metrics.txt
kill -TERM "$(cat fairshare/daemon.pid)"
wait "$(cat fairshare/daemon.pid)"
grep -q 'clean drain' fairshare/daemon.log
