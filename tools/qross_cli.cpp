// qross — command-line front end for the QROSS library.
//
// Subcommands:
//   generate  — write synthetic TSP instances as TSPLIB files
//   sweep     — sweep the relaxation parameter on one instance and print
//               the (A, Pf, Eavg, Estd, best fitness) response curve
//   train     — build a dataset from TSPLIB files and train a tuner
//   propose   — offline parameter proposal for an instance (no solver call)
//   tune      — full tuning session on an instance, printing the best tour
//   batch     — submit a file of solve jobs concurrently to the SolveService
//               (priority/deadline queue, result cache, metrics report);
//               --cache-file persists the result cache across runs, so a
//               second process replays bit-identical batches with zero
//               solver invocations
//   cache     — inspect (info), compact, or clear a persistent cache file
//   remote    — speak the qrossd network protocol: `remote batch` submits a
//               jobs file to a running daemon (same table as `batch`, jobs
//               solved remotely), `remote tune` runs a full tuning session
//               server-side (the daemon's tuner picks the probes; per-trial
//               progress streams back), `remote metrics` prints its service
//               counters (--prom for Prometheus text exposition).  A warm
//               daemon serves repeated batches — and repeated tune
//               sessions — from its cache with zero solver invocations.
//   trace     — fetch a running daemon's trace buffer as Chrome trace-event
//               JSON (load it in chrome://tracing or ui.perfetto.dev)
//
// Examples:
//   qross generate --count 8 --cities 10 --out-dir instances/
//   qross sweep --instance instances/synthetic_0.tsp --solver da
//   qross train --instances instances/ --solver da --out tuner.qross
//   qross propose --tuner tuner.qross --instance new.tsp --pf 0.9
//   qross tune --tuner tuner.qross --instance new.tsp --solver da --trials 10
//   qross batch --jobs jobs.txt --workers 4 --repeat 2 --cache-file run.qsnap
//   qross cache info --file run.qsnap
//   qross remote batch --server unix:/run/qross.sock --jobs jobs.txt
//   qross remote tune --server unix:/run/qross.sock --cities 8 --trials 6
//   qross remote metrics --server tcp:127.0.0.1:7777
//
// Exit codes: 0 success, 1 runtime failure (unreachable server, failed
// jobs), 2 usage/input errors (unknown flags, unreadable files).  Unknown
// flags are an error: every command validates its arguments against an
// allowlist before running.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "qross/qross.hpp"

using namespace qross;

namespace {

[[noreturn]] void usage(const char* message = nullptr) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n\n", message);
  std::fprintf(stderr, R"(usage: qross <command> [options]

commands:
  generate --count N --cities N [--seed S] [--kind uniform|exponential|clustered]
           --out-dir DIR
  sweep    --instance FILE.tsp [--solver da|sa|qbsolv|tabu|pt] [--replicas B]
           [--sweeps N] [--seed S] [--threads T] [--a-min X] [--a-max X]
           [--points N]
  train    --instances DIR --out FILE [--solver NAME] [--replicas B]
           [--sweeps N] [--seed S] [--threads T]
  propose  --tuner FILE --instance FILE.tsp [--pf P]
  tune     --tuner FILE --instance FILE.tsp [--solver NAME] [--trials N]
           [--seed S]
  batch    --jobs FILE [--solver NAME] [--workers N] [--cache N] [--repeat K]
           [--replicas B] [--sweeps N] [--seed S] [--threads T]
           [--deadline-ms D] [--cache-file PATH]
  cache    <info|compact|clear> --file PATH [--max-entries N] [--max-bytes B]
  remote   batch   --server EP --jobs FILE [--solver NAME] [--repeat K]
                   [--replicas B] [--sweeps N] [--seed S] [--deadline-ms D]
           tune    --server EP (--instance FILE.tsp | --cities N
                   [--instance-seed S]) [--solver NAME] [--trials N]
                   [--strategy composed|mfs|pbs|ofs] [--pf P] [--seed S]
                   [--a-min X] [--a-max X]
           metrics --server EP [--prom]
           (every remote action also takes [--timeout-ms T]
            [--client-id NAME] [--trace-id N]; EP: unix:/path.sock |
            tcp:host:port | host:port; --client-id groups connections for
            the daemon's per-client quotas/weights; --trace-id stamps the
            daemon's trace spans for this run; --prom prints the Prometheus
            text exposition instead of the human-readable report; `remote
            tune` needs the daemon started with --tuner)
  trace    --server EP [--out FILE] [--timeout-ms T] [--client-id NAME]
           (the daemon's trace buffer as Chrome trace-event JSON — stdout
            by default; view in chrome://tracing or ui.perfetto.dev)
  load     --server EP [--rate R] [--duration S] [--arrivals poisson|bursty]
           [--burst-on-ms N] [--burst-off-ms N] [--clients NAME=W[,NAME=W...]]
           [--deadline-ms D] [--deadline-jitter J] [--hit-ratio H]
           [--hot-models N] [--vars N] [--density X] [--solver NAME]
           [--replicas B] [--sweeps N] [--seed S] [--connect-timeout-ms T]
           [--drain-timeout-ms T] [--json PATH] [--dry-run]
           (open-loop load replay: fires a seeded arrival schedule at a
            running qrossd regardless of completions and reports outcome
            counts, shed rate and latency quantiles; each --clients entry
            is one connection under that identity, with arrivals split by
            weight; --dry-run prints the schedule instead of replaying it —
            identical flags print an identical schedule; --json writes a
            machine-readable summary for scripts)

common options:
  --seed S      RNG master seed (default 1)
  --threads T   worker threads per solver call for the replica fan-out:
                1 = sequential, 0 = all hardware threads (default 1)

batch jobs file: one job per line, `instance.tsp A [priority] [solver]`;
blank lines and lines starting with # are skipped.
)");
  std::exit(2);
}

/// Input errors discovered after flag parsing (unreadable files, malformed
/// job lines): same exit code 2 as usage errors, but without drowning the
/// one relevant line in the full usage text.
[[noreturn]] void fail_input(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(2);
}

using Args = std::map<std::string, std::string>;

/// Flags in `boolean_flags` consume no value and parse as "1"; everything
/// else is strictly `--key value`.
Args parse_args(int argc, char** argv, int first,
                std::initializer_list<const char*> boolean_flags = {}) {
  const std::set<std::string> booleans(boolean_flags.begin(),
                                       boolean_flags.end());
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage(("unexpected argument: " + key).c_str());
    const std::string name = key.substr(2);
    if (booleans.contains(name)) {
      args[name] = "1";
      continue;
    }
    if (i + 1 >= argc) usage(("missing value for " + key).c_str());
    args[name] = argv[++i];
  }
  return args;
}

/// Rejects flags the command does not understand — a typo like --sweps must
/// fail loudly (exit 2) instead of silently running with defaults.
void require_known_flags(const Args& args,
                         const std::vector<const char*>& known) {
  const std::set<std::string> allowed(known.begin(), known.end());
  for (const auto& [key, value] : args) {
    if (!allowed.contains(key)) {
      usage(("unknown option --" + key).c_str());
    }
  }
}

void require_known_flags(const Args& args,
                         std::initializer_list<const char*> known) {
  require_known_flags(args, std::vector<const char*>(known));
}

/// The flags every networked command shares (see RemoteArgs), plus the
/// command's own — so the allowlists cannot drift apart per subcommand.
std::vector<const char*> with_remote_flags(
    std::initializer_list<const char*> extra) {
  std::vector<const char*> known = {"server", "client-id", "timeout-ms",
                                    "trace-id"};
  known.insert(known.end(), extra.begin(), extra.end());
  return known;
}

std::string get_or(const Args& args, const std::string& key,
                   const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

std::string require(const Args& args, const std::string& key) {
  const auto it = args.find(key);
  if (it == args.end()) usage(("missing required option --" + key).c_str());
  return it->second;
}

solvers::SolverPtr make_cli_solver(const std::string& name) {
  if (name == "da") return std::make_shared<solvers::DigitalAnnealer>();
  if (name == "sa") return std::make_shared<solvers::SimulatedAnnealer>();
  if (name == "qbsolv") return std::make_shared<solvers::Qbsolv>();
  if (name == "tabu") return std::make_shared<solvers::TabuSearch>();
  if (name == "pt") return std::make_shared<solvers::ParallelTempering>();
  usage(("unknown solver: " + name).c_str());
}

solvers::SolveOptions cli_solve_options(const Args& args,
                                        const std::string& solver) {
  solvers::SolveOptions options;
  // Per-kind defaults mirror the benchmark calibration.
  if (solver == "sa" || solver == "pt") {
    options.num_replicas = 16;
    options.num_sweeps = 200;
  } else if (solver == "da") {
    options.num_replicas = 16;
    options.num_sweeps = 60;
  } else {
    options.num_replicas = 8;
    options.num_sweeps = 20;
  }
  options.num_replicas = std::stoul(
      get_or(args, "replicas", std::to_string(options.num_replicas)));
  options.num_sweeps = std::stoul(
      get_or(args, "sweeps", std::to_string(options.num_sweeps)));
  options.seed = std::stoull(get_or(args, "seed", "1"));
  options.num_threads = std::stoul(get_or(args, "threads", "1"));
  return options;
}

std::vector<tsp::TspInstance> load_instances_from_dir(
    const std::string& directory) {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(directory)) {
    if (entry.is_regular_file()) {
      const auto ext = entry.path().extension().string();
      if (ext == ".tsp" || ext == ".tsplib") paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<tsp::TspInstance> instances;
  for (const auto& path : paths) {
    instances.push_back(tsp::load_tsplib_file(path));
    std::fprintf(stderr, "loaded %s (%zu cities)\n", path.c_str(),
                 instances.back().num_cities());
  }
  if (instances.empty()) usage("no .tsp files found in --instances directory");
  return instances;
}

int cmd_generate(const Args& args) {
  require_known_flags(args, {"count", "cities", "out-dir", "seed", "kind"});
  const auto count = std::stoul(require(args, "count"));
  const auto cities = std::stoul(require(args, "cities"));
  const auto out_dir = require(args, "out-dir");
  const auto seed = std::stoull(get_or(args, "seed", "1"));
  const auto kind = get_or(args, "kind", "uniform");
  std::filesystem::create_directories(out_dir);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t child = derive_seed(seed, i);
    tsp::TspInstance instance = [&] {
      if (kind == "uniform") return tsp::generate_uniform(cities, child);
      if (kind == "exponential") return tsp::generate_exponential(cities, child);
      if (kind == "clustered") return tsp::generate_clustered(cities, child);
      usage(("unknown kind: " + kind).c_str());
    }();
    const std::string path =
        out_dir + "/" + kind + "_" + std::to_string(i) + ".tsp";
    std::ofstream file(path);
    tsp::write_tsplib(file, instance);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

int cmd_sweep(const Args& args) {
  require_known_flags(args, {"instance", "solver", "replicas", "sweeps", "seed",
                             "threads", "a-min", "a-max", "points"});
  const auto instance = tsp::load_tsplib_file(require(args, "instance"));
  const auto solver_name = get_or(args, "solver", "da");
  const auto solver = make_cli_solver(solver_name);
  const auto options = cli_solve_options(args, solver_name);
  const double a_min = std::stod(get_or(args, "a-min", "1"));
  const double a_max = std::stod(get_or(args, "a-max", "100"));
  const auto points = std::stoul(get_or(args, "points", "16"));

  const surrogate::PreparedTspInstance prepared(instance);
  solvers::BatchRunner runner(prepared.problem(), solver, options);
  std::printf("A,pf,energy_avg,energy_std,best_fitness_original\n");
  for (std::size_t k = 0; k < points; ++k) {
    const double t =
        points > 1 ? double(k) / double(points - 1) : 0.5;
    const double a = a_min * std::pow(a_max / a_min, t);
    const auto sample = runner.run(a);
    std::printf("%.4f,%.4f,%.4f,%.4f,%.4f\n", a, sample.stats.pf,
                sample.stats.energy_avg, sample.stats.energy_std,
                sample.stats.has_feasible()
                    ? prepared.to_original_length(sample.stats.min_fitness)
                    : -1.0);
  }
  return 0;
}

int cmd_train(const Args& args) {
  require_known_flags(args, {"instances", "out", "solver", "replicas",
                             "sweeps", "seed", "threads"});
  const auto instances = load_instances_from_dir(require(args, "instances"));
  const auto out = require(args, "out");
  const auto solver_name = get_or(args, "solver", "da");
  const auto solver = make_cli_solver(solver_name);
  const auto options = cli_solve_options(args, solver_name);

  std::fprintf(stderr, "building dataset from %zu instances...\n",
               instances.size());
  const auto tuner =
      core::QrossTuner::fit(instances, solver, options);
  std::ofstream file(out);
  if (!file.good()) usage(("cannot write " + out).c_str());
  tuner.save(file);
  std::printf("tuner written to %s\n", out.c_str());
  return 0;
}

core::QrossTuner load_tuner(const Args& args) {
  const auto path = require(args, "tuner");
  std::ifstream file(path);
  if (!file.good()) usage(("cannot read tuner file " + path).c_str());
  return core::QrossTuner::load(file);
}

int cmd_propose(const Args& args) {
  require_known_flags(args, {"tuner", "instance", "pf"});
  const auto tuner = load_tuner(args);
  const auto instance = tsp::load_tsplib_file(require(args, "instance"));
  std::optional<double> pf_target;
  if (args.contains("pf")) pf_target = std::stod(args.at("pf"));
  const double a = tuner.propose(instance, pf_target);
  if (pf_target.has_value()) {
    std::printf("PBS(%.0f%%) proposal: A = %.4f\n", 100.0 * *pf_target, a);
  } else {
    std::printf("MFS proposal: A = %.4f\n", a);
  }
  return 0;
}

int cmd_tune(const Args& args) {
  require_known_flags(args, {"tuner", "instance", "solver", "trials", "seed"});
  const auto tuner = load_tuner(args);
  const auto instance = tsp::load_tsplib_file(require(args, "instance"));
  const auto solver_name = get_or(args, "solver", "da");
  const auto solver = make_cli_solver(solver_name);
  core::TuneOptions options;
  options.trials = std::stoul(get_or(args, "trials", "10"));
  options.seed = std::stoull(get_or(args, "seed", "1"));

  const core::TuneOutcome outcome = tuner.tune(instance, solver, options);
  std::printf("trial  A         Pf     best_so_far\n");
  for (std::size_t t = 0; t < outcome.trials.size(); ++t) {
    const auto& trial = outcome.trials[t];
    std::printf("%-6zu %-9.3f %-6.2f %s\n", t + 1,
                trial.relaxation_parameter, trial.pf,
                std::isfinite(trial.best_length_so_far)
                    ? std::to_string(trial.best_length_so_far).c_str()
                    : "-");
  }
  if (!outcome.feasible()) {
    std::printf("no feasible tour found in %zu trials\n", options.trials);
    return 1;
  }
  std::printf("\nbest tour (length %.4f, found at A = %.3f):",
              outcome.best_length, outcome.best_parameter);
  for (std::size_t city : outcome.best_tour) std::printf(" %zu", city);
  std::printf("\n");
  return 0;
}

// One parsed line of the batch jobs file.
struct BatchJobSpec {
  std::string instance_path;
  double relaxation = 25.0;
  int priority = 0;
  std::string solver_name;
};

std::vector<BatchJobSpec> load_jobs_file(const std::string& path,
                                         const std::string& default_solver) {
  // is_regular_file first: opening a DIRECTORY with ifstream "succeeds" on
  // Linux (good() is true, reads just fail), which used to surface as a
  // misleading "no jobs in <dir>".  Either way the path must exit 2 with a
  // diagnostic naming the real problem — never 0.
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) {
    fail_input("cannot read jobs file " + path +
               (ec ? " (" + ec.message() + ")" : " (missing or not a file)"));
  }
  std::ifstream file(path);
  if (!file.good()) fail_input("cannot read jobs file " + path);
  std::vector<BatchJobSpec> specs;
  std::string line;
  while (std::getline(file, line)) {
    std::istringstream fields(line);
    std::vector<std::string> tokens;
    std::string token;
    while (fields >> token) tokens.push_back(token);
    if (tokens.empty()) continue;          // blank line
    if (tokens[0][0] == '#') continue;     // comment
    if (tokens.size() < 2 || tokens.size() > 4) {
      fail_input("jobs file line needs `instance A [priority] [solver]`: " +
                 line);
    }
    BatchJobSpec spec;
    spec.instance_path = tokens[0];
    spec.solver_name = default_solver;
    try {
      spec.relaxation = std::stod(tokens[1]);
      if (tokens.size() >= 3) spec.priority = std::stoi(tokens[2]);
    } catch (const std::exception&) {
      // A malformed number must fail loudly, not fall back to defaults.
      fail_input("bad number in jobs file line: " + line);
    }
    if (tokens.size() == 4) spec.solver_name = tokens[3];
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) fail_input("no jobs in " + path);
  return specs;
}

// Submits every job in the file to one SolveService and waits for the lot:
// the concurrent, cached, cancellable counterpart of running `sweep` lines
// one at a time.  --repeat K submits the whole file K times, so the second
// pass demonstrates cache hits / coalescing on identical fingerprints.
int cmd_batch(const Args& args) {
  require_known_flags(args, {"jobs", "solver", "workers", "cache", "repeat",
                             "replicas", "sweeps", "seed", "threads",
                             "deadline-ms", "cache-file"});
  const auto default_solver = get_or(args, "solver", "da");
  const auto specs = load_jobs_file(require(args, "jobs"), default_solver);
  const auto options = cli_solve_options(args, default_solver);
  const auto repeat = std::stoul(get_or(args, "repeat", "1"));
  const auto deadline_ms = std::stol(get_or(args, "deadline-ms", "0"));

  service::ServiceConfig config;
  config.num_workers = std::stoul(get_or(args, "workers", "4"));
  config.cache_capacity = std::stoul(get_or(args, "cache", "256"));
  config.cache_path = get_or(args, "cache-file", "");
  service::SolveService svc(config);

  // Prepared instances own the QUBO builders; keep them alive until all
  // jobs finish.  Each line builds its own model — deduplication happens
  // by *content* at the service: identical (instance, A, solver) lines
  // produce equal fingerprints and therefore coalesce or hit the cache.
  std::vector<surrogate::PreparedTspInstance> prepared;
  prepared.reserve(specs.size());
  std::vector<qubo::QuboModel> models;
  models.reserve(specs.size());
  for (const auto& spec : specs) {
    prepared.emplace_back(tsp::load_tsplib_file(spec.instance_path));
    models.push_back(prepared.back().problem().to_qubo(spec.relaxation));
  }

  struct Submitted {
    const BatchJobSpec* spec = nullptr;
    service::JobHandle handle;
  };
  std::vector<Submitted> jobs;
  jobs.reserve(specs.size() * repeat);
  for (std::size_t pass = 0; pass < repeat; ++pass) {
    for (std::size_t k = 0; k < specs.size(); ++k) {
      service::SubmitOptions submit;
      submit.priority = specs[k].priority;
      if (deadline_ms > 0) {
        submit.deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(deadline_ms);
      }
      jobs.push_back({&specs[k],
                      svc.submit(make_cli_solver(specs[k].solver_name),
                                 models[k], options, submit)});
    }
  }

  std::printf("job    instance                 solver  A        prio  status     wait_ms  run_ms   via      best_energy\n");
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const service::JobResult result = jobs[k].handle.wait();
    const char* via = result.cache_hit   ? "cache"
                      : result.coalesced ? "coalesce"
                                         : "solver";
    std::string best = "-";
    if (result.batch != nullptr && !result.batch->empty()) {
      best = std::to_string(
          result.batch->results[result.batch->best_index()].qubo_energy);
    }
    std::printf("%-6zu %-24s %-7s %-8.3f %-5d %-10s %-8.1f %-8.1f %-8s %s\n",
                k, jobs[k].spec->instance_path.c_str(),
                jobs[k].spec->solver_name.c_str(), jobs[k].spec->relaxation,
                jobs[k].spec->priority, service::to_string(result.status),
                result.wait_ms, result.run_ms, via, best.c_str());
  }

  const service::ServiceMetrics m = svc.metrics();
  std::printf(
      "\nservice: %zu workers | %zu submitted, %zu done, %zu cancelled, "
      "%zu expired, %zu failed | %s evaluation kernel\n",
      m.workers, m.submitted, m.completed, m.cancelled, m.expired, m.failed,
      m.simd_kernel.c_str());
  std::printf(
      "cache:   %zu hits, %zu misses, %zu evictions, %zu entries | "
      "%zu coalesced, %zu solver invocations\n",
      m.cache_hits, m.cache_misses, m.cache_evictions, m.cache_size,
      m.coalesced, m.solver_invocations);
  if (!config.cache_path.empty()) {
    std::printf(
        "store:   %s | %zu loaded (%zu skipped), %zu stored this run\n",
        config.cache_path.c_str(), m.cache_loaded, m.cache_load_skipped,
        m.cache_stored);
  }
  std::printf(
      "latency: wait p50/p90/p99 = %.1f/%.1f/%.1f ms | "
      "run p50/p90/p99 = %.1f/%.1f/%.1f ms | %.2f jobs/s lifetime, "
      "%.2f jobs/s recent\n",
      m.queue_wait.p50_ms, m.queue_wait.p90_ms, m.queue_wait.p99_ms,
      m.run.p50_ms, m.run.p90_ms, m.run.p99_ms, m.jobs_per_second,
      m.recent_jobs_per_second);
  return m.failed == 0 ? 0 : 1;
}

// Offline maintenance of a persistent cache file (no service needed):
//   info     what the snapshot + journal hold, and what a warm start saves
//   compact  merge the journal into the snapshot under the eviction budget
//   clear    remove both files
int cmd_cache(const std::string& action, const Args& args) {
  require_known_flags(args, {"file", "max-entries", "max-bytes"});
  io::CacheStoreConfig config;
  config.path = require(args, "file");
  config.max_entries = std::stoul(get_or(args, "max-entries", "4096"));
  config.max_bytes = std::stoull(
      get_or(args, "max-bytes", std::to_string(config.max_bytes)));
  io::CacheStore store(config);

  if (action == "clear") {
    store.clear();
    std::printf("cleared %s (+journal)\n", config.path.c_str());
    return 0;
  }
  if (action == "compact") {
    const auto before = store.info();
    const std::size_t kept = store.compact();
    std::printf(
        "compacted %s: %zu snapshot + %zu journal records -> %zu entries "
        "(%zu skipped as corrupt)\n",
        config.path.c_str(), before.snapshot_records, before.journal_records,
        kept, before.skipped_records);
    return 0;
  }
  if (action == "info") {
    const auto info = store.info();
    if (!info.snapshot_exists && !info.journal_exists) {
      std::printf("%s: no snapshot or journal\n", config.path.c_str());
      return 1;
    }
    std::printf("snapshot: %s%s\n", config.path.c_str(),
                info.snapshot_exists ? "" : " (absent)");
    if (info.version_rejected) {
      std::printf(
          "  written by a NEWER format version — this build refuses it\n");
    } else if (info.snapshot_exists) {
      std::printf("  format v%u, %zu records, %llu bytes\n",
                  info.snapshot_version, info.snapshot_records,
                  static_cast<unsigned long long>(info.snapshot_bytes));
    }
    std::printf("journal:  %s records, %llu bytes%s\n",
                std::to_string(info.journal_records).c_str(),
                static_cast<unsigned long long>(info.journal_bytes),
                info.journal_exists ? "" : " (absent)");
    std::printf(
        "live:     %zu entries (%zu corrupt records skipped) | warm start "
        "saves %.1f ms of solver time\n",
        info.live_entries, info.skipped_records, info.saved_run_ms);
    return 0;
  }
  usage(("unknown cache action: " + action).c_str());
}

/// The one parse of the flags every networked command shares: endpoint,
/// client identity (per-client quotas / fair-share weight on the daemon),
/// request timeout, and the trace correlation id stamped on the daemon's
/// spans.  `remote batch|tune|metrics` and `trace` all go through here.
struct RemoteArgs {
  std::string server;  ///< the raw --server spec, kept for diagnostics
  net::ClientConfig config;
  std::uint64_t trace_id = 0;
};

RemoteArgs parse_remote_args(const Args& args) {
  RemoteArgs remote;
  remote.server = require(args, "server");
  const auto endpoint = net::Endpoint::parse(remote.server);
  if (!endpoint.has_value()) {
    usage(("cannot parse --server endpoint: " + remote.server).c_str());
  }
  remote.config.server = *endpoint;
  remote.config.client_id = get_or(args, "client-id", "");
  remote.config.request_timeout_ms =
      static_cast<int>(std::stol(get_or(args, "timeout-ms", "120000")));
  remote.trace_id = std::stoull(get_or(args, "trace-id", "0"));
  return remote;
}

net::Client make_remote_client(const RemoteArgs& remote) {
  return net::Client(remote.config);
}

/// Dials and handshakes; on failure prints the one diagnostic every remote
/// command used to format by hand and exits 1 (runtime failure).
void connect_or_fail(net::Client& client, const RemoteArgs& remote) {
  std::string error;
  if (!client.connect(&error)) {
    std::fprintf(stderr, "error: cannot connect to %s: %s\n",
                 remote.server.c_str(), error.c_str());
    std::exit(1);
  }
}

// The networked counterpart of `batch`: the same jobs file, solved by a
// running qrossd.  Prints the same result table plus a client-side tally of
// how each result was produced — a second run against a warm daemon reports
// "0 solver invocations" because every job is a server-side cache hit.
int cmd_remote_batch(const Args& args) {
  require_known_flags(args, with_remote_flags({"jobs", "solver", "repeat",
                                               "replicas", "sweeps", "seed",
                                               "deadline-ms"}));
  const RemoteArgs remote = parse_remote_args(args);
  const auto default_solver = get_or(args, "solver", "da");
  const auto specs = load_jobs_file(require(args, "jobs"), default_solver);
  const auto options = cli_solve_options(args, default_solver);
  const auto repeat = std::stoul(get_or(args, "repeat", "1"));
  const auto deadline_ms = std::stol(get_or(args, "deadline-ms", "0"));

  // Dial before the (potentially slow) instance loads so a dead endpoint
  // fails fast; the jobs file was already validated above.
  net::Client client = make_remote_client(remote);
  connect_or_fail(client, remote);

  std::vector<surrogate::PreparedTspInstance> prepared;
  prepared.reserve(specs.size());
  std::vector<net::RemoteJob> jobs;
  jobs.reserve(specs.size() * repeat);
  for (const auto& spec : specs) {
    prepared.emplace_back(tsp::load_tsplib_file(spec.instance_path));
    net::RemoteJob job;
    job.solver = spec.solver_name;
    job.model = prepared.back().problem().to_qubo(spec.relaxation);
    job.num_replicas = static_cast<std::uint32_t>(options.num_replicas);
    job.num_sweeps = static_cast<std::uint32_t>(options.num_sweeps);
    job.seed = options.seed;
    job.priority = spec.priority;
    // One shared trace id for the whole run: `qross trace` stitches the
    // whole batch out of the daemon's buffer by this correlation id.
    job.trace_id = remote.trace_id;
    if (deadline_ms > 0) {
      job.deadline_ms = static_cast<std::uint32_t>(deadline_ms);
    }
    jobs.push_back(std::move(job));
  }
  const std::size_t base = jobs.size();
  for (std::size_t pass = 1; pass < repeat; ++pass) {
    for (std::size_t k = 0; k < base; ++k) jobs.push_back(jobs[k]);
  }

  const auto results = client.run(jobs);

  std::printf("job    instance                 solver  A        prio  status     wait_ms  run_ms   via      best_energy\n");
  std::size_t failed = 0, cache_hits = 0, coalesced = 0, solver_runs = 0,
              unfinished = 0;
  for (std::size_t k = 0; k < results.size(); ++k) {
    const auto& result = results[k];
    const auto& spec = specs[k % specs.size()];
    const char* via = result.cache_hit   ? "cache"
                      : result.coalesced ? "coalesce"
                                         : "solver";
    // Tally by how the result was actually produced; an expired or
    // cancelled job is NOT a solver invocation (its kernel was skipped or
    // stopped early) and must not inflate that count.
    if (result.status == service::JobStatus::failed) {
      ++failed;
    } else if (result.cache_hit) {
      ++cache_hits;
    } else if (result.coalesced) {
      ++coalesced;
    } else if (result.status == service::JobStatus::done) {
      ++solver_runs;
    } else {
      ++unfinished;  // expired / cancelled
    }
    std::string best = "-";
    if (result.batch != nullptr && !result.batch->empty()) {
      best = std::to_string(
          result.batch->results[result.batch->best_index()].qubo_energy);
    }
    std::printf("%-6zu %-24s %-7s %-8.3f %-5d %-10s %-8.1f %-8.1f %-8s %s\n",
                k, spec.instance_path.c_str(), spec.solver_name.c_str(),
                spec.relaxation, spec.priority,
                service::to_string(result.status), result.wait_ms,
                result.run_ms, via, best.c_str());
    if (!result.error.empty()) {
      std::fprintf(stderr, "job %zu: %s\n", k, result.error.c_str());
    }
  }
  std::printf(
      "\nremote: %zu results | %zu cache hits, %zu coalesced, "
      "%zu solver invocations, %zu expired/cancelled, %zu failed\n",
      results.size(), cache_hits, coalesced, solver_runs, unfinished, failed);
  if (const auto metrics = client.metrics()) {
    std::printf(
        "server: %zu workers | %zu submitted lifetime, %zu cached entries | "
        "%.2f jobs/s recent | %llu connections served, %llu active\n",
        metrics->service.workers, metrics->service.submitted,
        metrics->service.cache_size, metrics->service.recent_jobs_per_second,
        static_cast<unsigned long long>(metrics->connections_accepted),
        static_cast<unsigned long long>(metrics->connections_active));
  }
  return failed == 0 ? 0 : 1;
}

// The networked counterpart of `tune`: the daemon's trained tuner picks the
// probes (its surrogate batches our predictions with other live sessions),
// every probe solve runs through its cached SolveService, and per-trial
// progress streams back as TuneStatus frames.  Same seed + same instance =
// bit-identical probed-A sequence and outcome as in-process `tune`; a rerun
// against a warm daemon reports 0 solver invocations.
int cmd_remote_tune(const Args& args) {
  require_known_flags(
      args, with_remote_flags({"instance", "cities", "instance-seed", "solver",
                               "strategy", "pf", "trials", "seed", "a-min",
                               "a-max"}));
  const RemoteArgs remote = parse_remote_args(args);

  // The instance travels by value (distance matrix, IEEE-exact), so either
  // a TSPLIB file or a synthetic instance regenerated from --instance-seed
  // yields the same session on any client.
  const tsp::TspInstance instance = [&] {
    if (args.contains("instance")) {
      if (args.contains("cities")) {
        usage("--instance and --cities are mutually exclusive");
      }
      return tsp::load_tsplib_file(args.at("instance"));
    }
    if (!args.contains("cities")) {
      usage("remote tune needs --instance FILE.tsp or --cities N");
    }
    const auto cities = std::stoul(args.at("cities"));
    const auto seed = std::stoull(get_or(args, "instance-seed", "1"));
    return tsp::generate_uniform(cities, seed);
  }();

  net::RemoteTune tune;
  tune.solver = get_or(args, "solver", "da");
  tune.instance = net::pack_tsp_instance(instance);
  tune.instance_name = instance.name();
  const auto strategy = get_or(args, "strategy", "composed");
  if (strategy == "composed") {
    tune.strategy = net::kTuneComposed;
  } else if (strategy == "mfs") {
    tune.strategy = net::kTuneMfs;
  } else if (strategy == "pbs") {
    tune.strategy = net::kTunePbs;
  } else if (strategy == "ofs") {
    tune.strategy = net::kTuneOfs;
  } else {
    usage(("unknown strategy: " + strategy).c_str());
  }
  if (args.contains("pf")) tune.pf_target = std::stod(args.at("pf"));
  tune.trials = static_cast<std::uint32_t>(
      std::stoul(get_or(args, "trials", "10")));
  tune.a_min = std::stod(get_or(args, "a-min", "1"));
  tune.a_max = std::stod(get_or(args, "a-max", "100"));
  tune.seed = std::stoull(get_or(args, "seed", "1"));
  tune.trace_id = remote.trace_id;

  net::Client client = make_remote_client(remote);
  connect_or_fail(client, remote);

  const auto submitted = client.submit_tune(tune);
  if (!submitted.ok()) {
    std::fprintf(stderr, "error: tune submit failed (%s): %s\n",
                 net::to_string(submitted.error().kind),
                 submitted.error().message.c_str());
    return 1;
  }
  auto outcome = client.tune_wait(submitted.value());
  if (!outcome.ok()) {
    std::fprintf(stderr, "error: tune session lost (%s): %s\n",
                 net::to_string(outcome.error().kind),
                 outcome.error().message.c_str());
    return 1;
  }
  const net::TuneResultFrame& result = outcome.value();

  // Same table as in-process `tune`, from the terminal frame (the streamed
  // TuneStatus frames carry the identical rows incrementally).
  std::printf("trial  A         Pf     best_so_far\n");
  for (std::size_t t = 0; t < result.trials.size(); ++t) {
    const auto& trial = result.trials[t];
    std::printf("%-6zu %-9.3f %-6.2f %s\n", t + 1,
                trial.relaxation_parameter, trial.pf,
                std::isfinite(trial.best_length_so_far)
                    ? std::to_string(trial.best_length_so_far).c_str()
                    : "-");
  }
  if (result.status == net::kTuneFailed) {
    std::fprintf(stderr, "error: tune session failed on the server: %s\n",
                 result.error.c_str());
    return 1;
  }
  if (result.status == net::kTuneCancelled) {
    std::printf("tune session cancelled after %zu trials\n",
                result.trials.size());
    return 1;
  }
  const bool feasible = !result.best_tour.empty();
  if (feasible) {
    std::printf("\nbest tour (length %.4f, found at A = %.3f):",
                result.best_length, result.best_parameter);
    for (const std::uint32_t city : result.best_tour) {
      std::printf(" %u", city);
    }
    std::printf("\n");
  } else {
    std::printf("no feasible tour found in %u trials\n", tune.trials);
  }
  std::printf(
      "\nremote tune: %s | %zu trials, %llu solver invocations, "
      "%.1f ms session wall time\n",
      instance.name().c_str(), result.trials.size(),
      static_cast<unsigned long long>(result.solver_invocations),
      result.wall_ms);
  return feasible ? 0 : 1;
}

int cmd_remote_metrics(const Args& args) {
  require_known_flags(args, with_remote_flags({"prom"}));
  const RemoteArgs remote = parse_remote_args(args);
  net::Client client = make_remote_client(remote);
  connect_or_fail(client, remote);
  std::string error;
  if (args.contains("prom")) {
    // Raw Prometheus text exposition, suitable for a textfile collector or
    // a curl-style scrape through this CLI.
    const auto text = client.prometheus_metrics(&error);
    if (!text.has_value()) {
      std::fprintf(stderr, "error: prometheus request failed: %s\n",
                   error.c_str());
      return 1;
    }
    std::fwrite(text->data(), 1, text->size(), stdout);
    return 0;
  }
  const auto metrics = client.metrics(&error);
  if (!metrics.has_value()) {
    std::fprintf(stderr, "error: metrics request failed: %s\n", error.c_str());
    return 1;
  }
  const auto& m = metrics->service;
  std::printf("protocol: v%u negotiated\n", client.negotiated_version());
  std::printf(
      "service:  %zu workers | %zu submitted, %zu done, %zu cancelled, "
      "%zu expired, %zu failed | queue %zu, running %zu | "
      "%s evaluation kernel\n",
      m.workers, m.submitted, m.completed, m.cancelled, m.expired, m.failed,
      m.queue_depth, m.running, m.simd_kernel.c_str());
  std::printf(
      "cache:    %zu hits, %zu misses, %zu entries | %zu coalesced, "
      "%zu solver invocations | %zu loaded from disk, %zu stored\n",
      m.cache_hits, m.cache_misses, m.cache_size, m.coalesced,
      m.solver_invocations, m.cache_loaded, m.cache_stored);
  std::printf(
      "latency:  wait p50/p90/p99 = %.1f/%.1f/%.1f ms | "
      "run p50/p90/p99 = %.1f/%.1f/%.1f ms | %.2f jobs/s over %.1f s, "
      "%.2f jobs/s in the last 60 s\n",
      m.queue_wait.p50_ms, m.queue_wait.p90_ms, m.queue_wait.p99_ms,
      m.run.p50_ms, m.run.p90_ms, m.run.p99_ms, m.jobs_per_second,
      m.uptime_seconds, m.recent_jobs_per_second);
  std::printf(
      "server:   %llu connections accepted, %llu active, "
      "%llu protocol errors, %llu refused full\n",
      static_cast<unsigned long long>(metrics->connections_accepted),
      static_cast<unsigned long long>(metrics->connections_active),
      static_cast<unsigned long long>(metrics->protocol_errors),
      static_cast<unsigned long long>(metrics->connections_rejected_full));
  std::printf(
      "admission: %llu submissions rejected by per-client quotas | "
      "this connection is client '%s'\n",
      static_cast<unsigned long long>(metrics->service.admission_rejected),
      metrics->client_id.c_str());
  if (!metrics->clients.empty()) {
    std::printf(
        "clients:  id                       weight  queued  inflight "
        "submitted  done      dispatched rejected(infl/queue)\n");
    for (const auto& c : metrics->clients) {
      std::printf(
          "          %-24s %-7.2f %-7zu %-8zu %-10llu %-9llu %-10llu "
          "%llu/%llu\n",
          c.client_id.c_str(), c.weight, c.queued, c.inflight,
          static_cast<unsigned long long>(c.submitted),
          static_cast<unsigned long long>(c.completed),
          static_cast<unsigned long long>(c.dispatched),
          static_cast<unsigned long long>(c.rejected_inflight),
          static_cast<unsigned long long>(c.rejected_queued));
    }
  }
  return 0;
}

// Fetches the daemon's trace ring as Chrome trace-event JSON.  With no
// --out the JSON goes to stdout (pipe it straight into a file or jq); with
// --out it is written there and a one-line summary goes to stdout.
int cmd_trace(const Args& args) {
  require_known_flags(args, with_remote_flags({"out"}));
  const RemoteArgs remote = parse_remote_args(args);
  const auto out_path = get_or(args, "out", "");
  // Open the sink BEFORE dialing: an unwritable --out is an input error
  // (exit 2) and must fail without touching the network.
  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path, std::ios::binary | std::ios::trunc);
    if (!out_file.good()) fail_input("cannot write --out " + out_path);
  }
  net::Client client = make_remote_client(remote);
  connect_or_fail(client, remote);
  std::string error;
  const auto json = client.trace_dump(&error);
  if (!json.has_value()) {
    std::fprintf(stderr, "error: trace request failed: %s\n", error.c_str());
    return 1;
  }
  if (out_path.empty()) {
    std::fwrite(json->data(), 1, json->size(), stdout);
    std::printf("\n");
  } else {
    out_file.write(json->data(), static_cast<std::streamsize>(json->size()));
    out_file.close();
    if (!out_file.good()) fail_input("short write to --out " + out_path);
    std::printf("trace written to %s (%zu bytes)\n", out_path.c_str(),
                json->size());
  }
  return 0;
}

// Open-loop load replay against a running daemon (see src/load/).  The
// schedule is generated client-side from the flags — deterministically, so
// --dry-run twice with the same flags prints byte-identical plans — and
// fired on the clock; results are classified ok/shed/expired/failed/lost
// and summarized.  --json writes the summary for scripts (loadsmoke in CI
// asserts on it).
int cmd_load(const Args& args) {
  require_known_flags(
      args, {"server", "rate", "duration", "arrivals", "burst-on-ms",
             "burst-off-ms", "clients", "deadline-ms", "deadline-jitter",
             "hit-ratio", "hot-models", "vars", "density", "solver",
             "replicas", "sweeps", "seed", "connect-timeout-ms",
             "drain-timeout-ms", "json", "dry-run"});
  load::WorkloadConfig workload;
  workload.rate_per_sec = std::stod(get_or(args, "rate", "100"));
  workload.duration_sec = std::stod(get_or(args, "duration", "1"));
  if (!load::parse_arrival_kind(get_or(args, "arrivals", "poisson"),
                                &workload.arrivals)) {
    usage("--arrivals must be poisson or bursty");
  }
  workload.burst_on_sec = std::stod(get_or(args, "burst-on-ms", "50")) / 1e3;
  workload.burst_off_sec = std::stod(get_or(args, "burst-off-ms", "50")) / 1e3;
  workload.hit_ratio = std::stod(get_or(args, "hit-ratio", "0"));
  workload.hot_models = std::stoul(get_or(args, "hot-models", "4"));
  workload.model_vars = std::stoul(get_or(args, "vars", "32"));
  workload.model_density = std::stod(get_or(args, "density", "0.08"));
  workload.seed = std::stoull(get_or(args, "seed", "1"));
  const auto deadline_ms =
      static_cast<std::uint32_t>(std::stoul(get_or(args, "deadline-ms", "0")));
  const auto deadline_jitter = std::stod(get_or(args, "deadline-jitter", "0.2"));
  const std::string clients_spec = get_or(args, "clients", "");
  if (!clients_spec.empty()) {
    std::stringstream stream(clients_spec);
    std::string part;
    while (std::getline(stream, part, ',')) {
      load::ClientSpec client;
      const auto eq = part.find('=');
      client.client_id = eq == std::string::npos ? part : part.substr(0, eq);
      if (client.client_id.empty()) {
        fail_input("malformed --clients entry: '" + part +
                   "' (want NAME or NAME=WEIGHT)");
      }
      if (eq != std::string::npos) {
        try {
          client.mix_weight = std::stod(part.substr(eq + 1));
        } catch (const std::exception&) {
          fail_input("malformed --clients weight in '" + part + "'");
        }
      }
      client.deadline_mean_ms = deadline_ms;
      client.deadline_jitter = deadline_jitter;
      workload.clients.push_back(std::move(client));
    }
  } else if (deadline_ms > 0) {
    load::ClientSpec client;
    client.deadline_mean_ms = deadline_ms;
    client.deadline_jitter = deadline_jitter;
    workload.clients.push_back(std::move(client));
  }

  load::Schedule schedule;
  try {
    schedule = load::generate_schedule(workload);
  } catch (const std::invalid_argument& e) {
    fail_input(e.what());
  }

  if (args.contains("dry-run")) {
    // The plan, not the replay: arrival_us client priority deadline_ms
    // hot/fresh model_seed.  Same flags → byte-identical output, which is
    // how CI proves schedule determinism without touching a server.
    std::printf("# %zu arrivals over %.3f s (%s, rate %.1f/s, seed %llu)\n",
                schedule.jobs.size(), schedule.config.duration_sec,
                load::to_string(schedule.config.arrivals),
                schedule.config.rate_per_sec,
                static_cast<unsigned long long>(schedule.config.seed));
    for (const auto& job : schedule.jobs) {
      std::printf("%10.0f %-12s prio %-3d deadline %-6u %-5s %016llx\n",
                  job.arrival_sec * 1e6,
                  schedule.config.clients[job.client].client_id.c_str(),
                  job.priority, job.deadline_ms, job.hot ? "hot" : "fresh",
                  static_cast<unsigned long long>(job.model_seed));
    }
    return 0;
  }

  const std::string server = require(args, "server");
  const auto endpoint = net::Endpoint::parse(server);
  if (!endpoint.has_value()) {
    usage(("cannot parse --server endpoint: " + server).c_str());
  }
  load::ReplayConfig replay_config;
  replay_config.server = *endpoint;
  replay_config.solver = get_or(args, "solver", "da");
  (void)make_cli_solver(replay_config.solver);  // exit 2 on unknown name
  replay_config.num_replicas = static_cast<std::uint32_t>(
      std::stoul(get_or(args, "replicas", "2")));
  replay_config.num_sweeps =
      static_cast<std::uint32_t>(std::stoul(get_or(args, "sweeps", "10")));
  replay_config.solve_seed = workload.seed;
  replay_config.connect_timeout_ms =
      static_cast<int>(std::stol(get_or(args, "connect-timeout-ms", "5000")));
  replay_config.drain_timeout_sec =
      std::stod(get_or(args, "drain-timeout-ms", "30000")) / 1e3;

  const auto result = load::replay(schedule, replay_config);
  if (!result.ok()) {
    std::fprintf(stderr, "error: load replay failed: %s\n",
                 result.error.c_str());
    return 1;
  }
  const auto summary = load::summarize(schedule, result);
  load::print_summary(stdout, summary);
  if (args.contains("json")) {
    const std::string path = args.at("json");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) fail_input("cannot write --json " + path);
    load::write_summary_json(f, summary);
    std::fclose(f);
    std::printf("summary written to %s\n", path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  try {
    if (command == "cache") {
      if (argc < 3 || argv[2][0] == '-') {
        usage("cache needs an action: info, compact or clear");
      }
      return cmd_cache(argv[2], parse_args(argc, argv, 3));
    }
    if (command == "remote") {
      if (argc < 3 || argv[2][0] == '-') {
        usage("remote needs an action: batch, tune or metrics");
      }
      const std::string action = argv[2];
      const Args remote_args = parse_args(argc, argv, 3, {"prom"});
      if (action == "batch") return cmd_remote_batch(remote_args);
      if (action == "tune") return cmd_remote_tune(remote_args);
      if (action == "metrics") return cmd_remote_metrics(remote_args);
      usage(("unknown remote action: " + action).c_str());
    }
    if (command == "trace") return cmd_trace(parse_args(argc, argv, 2));
    if (command == "load") {
      return cmd_load(parse_args(argc, argv, 2, {"dry-run"}));
    }
    const Args args = parse_args(argc, argv, 2);
    if (command == "generate") return cmd_generate(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "train") return cmd_train(args);
    if (command == "propose") return cmd_propose(args);
    if (command == "tune") return cmd_tune(args);
    if (command == "batch") return cmd_batch(args);
    usage(("unknown command: " + command).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
