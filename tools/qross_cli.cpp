// qross — command-line front end for the QROSS library.
//
// Subcommands:
//   generate  — write synthetic TSP instances as TSPLIB files
//   sweep     — sweep the relaxation parameter on one instance and print
//               the (A, Pf, Eavg, Estd, best fitness) response curve
//   train     — build a dataset from TSPLIB files and train a tuner
//   propose   — offline parameter proposal for an instance (no solver call)
//   tune      — full tuning session on an instance, printing the best tour
//
// Examples:
//   qross generate --count 8 --cities 10 --out-dir instances/
//   qross sweep --instance instances/synthetic_0.tsp --solver da
//   qross train --instances instances/ --solver da --out tuner.qross
//   qross propose --tuner tuner.qross --instance new.tsp --pf 0.9
//   qross tune --tuner tuner.qross --instance new.tsp --solver da --trials 10

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "qross/qross.hpp"

using namespace qross;

namespace {

[[noreturn]] void usage(const char* message = nullptr) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n\n", message);
  std::fprintf(stderr, R"(usage: qross <command> [options]

commands:
  generate --count N --cities N [--seed S] [--kind uniform|exponential|clustered]
           --out-dir DIR
  sweep    --instance FILE.tsp [--solver da|sa|qbsolv|tabu|pt] [--replicas B]
           [--sweeps N] [--a-min X] [--a-max X] [--points N]
  train    --instances DIR --out FILE [--solver NAME] [--replicas B] [--sweeps N]
  propose  --tuner FILE --instance FILE.tsp [--pf P]
  tune     --tuner FILE --instance FILE.tsp [--solver NAME] [--trials N]
           [--seed S]
)");
  std::exit(2);
}

using Args = std::map<std::string, std::string>;

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage(("unexpected argument: " + key).c_str());
    if (i + 1 >= argc) usage(("missing value for " + key).c_str());
    args[key.substr(2)] = argv[++i];
  }
  return args;
}

std::string get_or(const Args& args, const std::string& key,
                   const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

std::string require(const Args& args, const std::string& key) {
  const auto it = args.find(key);
  if (it == args.end()) usage(("missing required option --" + key).c_str());
  return it->second;
}

solvers::SolverPtr make_cli_solver(const std::string& name) {
  if (name == "da") return std::make_shared<solvers::DigitalAnnealer>();
  if (name == "sa") return std::make_shared<solvers::SimulatedAnnealer>();
  if (name == "qbsolv") return std::make_shared<solvers::Qbsolv>();
  if (name == "tabu") return std::make_shared<solvers::TabuSearch>();
  if (name == "pt") return std::make_shared<solvers::ParallelTempering>();
  usage(("unknown solver: " + name).c_str());
}

solvers::SolveOptions cli_solve_options(const Args& args,
                                        const std::string& solver) {
  solvers::SolveOptions options;
  // Per-kind defaults mirror the benchmark calibration.
  if (solver == "sa" || solver == "pt") {
    options.num_replicas = 16;
    options.num_sweeps = 200;
  } else if (solver == "da") {
    options.num_replicas = 16;
    options.num_sweeps = 60;
  } else {
    options.num_replicas = 8;
    options.num_sweeps = 20;
  }
  options.num_replicas = std::stoul(
      get_or(args, "replicas", std::to_string(options.num_replicas)));
  options.num_sweeps = std::stoul(
      get_or(args, "sweeps", std::to_string(options.num_sweeps)));
  options.seed = std::stoull(get_or(args, "seed", "1"));
  return options;
}

std::vector<tsp::TspInstance> load_instances_from_dir(
    const std::string& directory) {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(directory)) {
    if (entry.is_regular_file()) {
      const auto ext = entry.path().extension().string();
      if (ext == ".tsp" || ext == ".tsplib") paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<tsp::TspInstance> instances;
  for (const auto& path : paths) {
    instances.push_back(tsp::load_tsplib_file(path));
    std::fprintf(stderr, "loaded %s (%zu cities)\n", path.c_str(),
                 instances.back().num_cities());
  }
  if (instances.empty()) usage("no .tsp files found in --instances directory");
  return instances;
}

int cmd_generate(const Args& args) {
  const auto count = std::stoul(require(args, "count"));
  const auto cities = std::stoul(require(args, "cities"));
  const auto out_dir = require(args, "out-dir");
  const auto seed = std::stoull(get_or(args, "seed", "1"));
  const auto kind = get_or(args, "kind", "uniform");
  std::filesystem::create_directories(out_dir);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t child = derive_seed(seed, i);
    tsp::TspInstance instance = [&] {
      if (kind == "uniform") return tsp::generate_uniform(cities, child);
      if (kind == "exponential") return tsp::generate_exponential(cities, child);
      if (kind == "clustered") return tsp::generate_clustered(cities, child);
      usage(("unknown kind: " + kind).c_str());
    }();
    const std::string path =
        out_dir + "/" + kind + "_" + std::to_string(i) + ".tsp";
    std::ofstream file(path);
    tsp::write_tsplib(file, instance);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

int cmd_sweep(const Args& args) {
  const auto instance = tsp::load_tsplib_file(require(args, "instance"));
  const auto solver_name = get_or(args, "solver", "da");
  const auto solver = make_cli_solver(solver_name);
  const auto options = cli_solve_options(args, solver_name);
  const double a_min = std::stod(get_or(args, "a-min", "1"));
  const double a_max = std::stod(get_or(args, "a-max", "100"));
  const auto points = std::stoul(get_or(args, "points", "16"));

  const surrogate::PreparedTspInstance prepared(instance);
  solvers::BatchRunner runner(prepared.problem(), solver, options);
  std::printf("A,pf,energy_avg,energy_std,best_fitness_original\n");
  for (std::size_t k = 0; k < points; ++k) {
    const double t =
        points > 1 ? double(k) / double(points - 1) : 0.5;
    const double a = a_min * std::pow(a_max / a_min, t);
    const auto sample = runner.run(a);
    std::printf("%.4f,%.4f,%.4f,%.4f,%.4f\n", a, sample.stats.pf,
                sample.stats.energy_avg, sample.stats.energy_std,
                sample.stats.has_feasible()
                    ? prepared.to_original_length(sample.stats.min_fitness)
                    : -1.0);
  }
  return 0;
}

int cmd_train(const Args& args) {
  const auto instances = load_instances_from_dir(require(args, "instances"));
  const auto out = require(args, "out");
  const auto solver_name = get_or(args, "solver", "da");
  const auto solver = make_cli_solver(solver_name);
  const auto options = cli_solve_options(args, solver_name);

  std::fprintf(stderr, "building dataset from %zu instances...\n",
               instances.size());
  const auto tuner =
      core::QrossTuner::fit(instances, solver, options);
  std::ofstream file(out);
  if (!file.good()) usage(("cannot write " + out).c_str());
  tuner.save(file);
  std::printf("tuner written to %s\n", out.c_str());
  return 0;
}

core::QrossTuner load_tuner(const Args& args) {
  const auto path = require(args, "tuner");
  std::ifstream file(path);
  if (!file.good()) usage(("cannot read tuner file " + path).c_str());
  return core::QrossTuner::load(file);
}

int cmd_propose(const Args& args) {
  const auto tuner = load_tuner(args);
  const auto instance = tsp::load_tsplib_file(require(args, "instance"));
  std::optional<double> pf_target;
  if (args.contains("pf")) pf_target = std::stod(args.at("pf"));
  const double a = tuner.propose(instance, pf_target);
  if (pf_target.has_value()) {
    std::printf("PBS(%.0f%%) proposal: A = %.4f\n", 100.0 * *pf_target, a);
  } else {
    std::printf("MFS proposal: A = %.4f\n", a);
  }
  return 0;
}

int cmd_tune(const Args& args) {
  const auto tuner = load_tuner(args);
  const auto instance = tsp::load_tsplib_file(require(args, "instance"));
  const auto solver_name = get_or(args, "solver", "da");
  const auto solver = make_cli_solver(solver_name);
  core::TuneOptions options;
  options.trials = std::stoul(get_or(args, "trials", "10"));
  options.seed = std::stoull(get_or(args, "seed", "1"));

  const core::TuneOutcome outcome = tuner.tune(instance, solver, options);
  std::printf("trial  A         Pf     best_so_far\n");
  for (std::size_t t = 0; t < outcome.trials.size(); ++t) {
    const auto& trial = outcome.trials[t];
    std::printf("%-6zu %-9.3f %-6.2f %s\n", t + 1,
                trial.relaxation_parameter, trial.pf,
                std::isfinite(trial.best_length_so_far)
                    ? std::to_string(trial.best_length_so_far).c_str()
                    : "-");
  }
  if (!outcome.feasible()) {
    std::printf("no feasible tour found in %zu trials\n", options.trials);
    return 1;
  }
  std::printf("\nbest tour (length %.4f, found at A = %.3f):",
              outcome.best_length, outcome.best_parameter);
  for (std::size_t city : outcome.best_tour) std::printf(" %zu", city);
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv, 2);
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "train") return cmd_train(args);
    if (command == "propose") return cmd_propose(args);
    if (command == "tune") return cmd_tune(args);
    usage(("unknown command: " + command).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
