// qrossd — the QROSS solve daemon: a SolveService behind qross::net::Server.
//
//   qrossd --listen unix:/run/qross.sock[,tcp:0.0.0.0:7777] [--workers N]
//          [--cache N] [--cache-file PATH] [--max-frame-bytes B]
//          [--drain-timeout-ms T] [--max-connections N]
//          [--max-inflight-per-client N] [--max-queued-per-client N]
//          [--client-weight W | --client-weight NAME=W]...
//          [--tuner FILE] [--max-tune-sessions N] [--tune-corpus PATH]
//          [--log-level LEVEL] [--trace] [--trace-buffer-events N]
//          [--trace-dump PATH]
//
// One warm daemon serves many short-lived clients (`qross_cli remote ...`)
// from a single persistent result cache — the multi-process answer to the
// one-process-per-cache-file limitation of `qross_cli batch --cache-file`:
// only the daemon touches the file.
//
// Lifecycle: prints one "qrossd listening on <endpoint>" line per bound
// endpoint (stdout, flushed — start scripts wait on it), then blocks until
// SIGTERM/SIGINT.  On signal it drains gracefully: stops accepting, rejects
// new submissions, lets in-flight jobs finish and their results flush to
// clients (bounded by --drain-timeout-ms), compacts the persistent cache,
// and exits 0.  A second signal skips the drain.
//
// Observability: structured key=value event lines on stderr (--log-level,
// default info); job tracing via --trace / QROSS_TRACE=1, dumped as Chrome
// trace-event JSON to --trace-dump on SIGUSR1 (and at shutdown when tracing
// is on), or fetched over the wire with `qross_cli trace`.

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "io/binary.hpp"
#include "net/server.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "service/solve_service.hpp"
#include "service/tune_service.hpp"

namespace {

// Self-pipe: the handler only writes one byte (async-signal-safe); main
// blocks on the read end.  The byte tells the signals apart — 't' for
// terminate/drain (SIGTERM/SIGINT), 'u' for a SIGUSR1 trace dump; only
// terminate signals count toward the second-signal-skips-drain contract.
int signal_pipe[2] = {-1, -1};
std::atomic<int> signals_seen{0};

void on_signal(int sig) {
  const char byte = sig == SIGUSR1 ? 'u' : 't';
  if (byte == 't') signals_seen.fetch_add(1, std::memory_order_relaxed);
  [[maybe_unused]] const auto n = write(signal_pipe[1], &byte, 1);
}

[[noreturn]] void usage(const char* message = nullptr) {
  if (message != nullptr) std::fprintf(stderr, "error: %s\n\n", message);
  std::fprintf(stderr, R"(usage: qrossd --listen EP[,EP...] [options]

endpoints:  unix:/path/to.sock | tcp:host:port | host:port
            (tcp port 0 binds an ephemeral port, printed at startup)

options:
  --workers N           concurrent solver executions (default 4; 0 = all
                        hardware threads)
  --cache N             in-memory result-cache entries (default 1024)
  --cache-file PATH     persist the result cache across daemon restarts
  --max-frame-bytes B   per-frame wire limit (default 67108864)
  --drain-timeout-ms T  SIGTERM drain bound (default 30000)

admission control / fair share (client = the Hello's client_id, or one
anonymous bucket per connection):
  --max-connections N          accept backstop; over it, new connections get
                               a kErrServerFull frame (default 256)
  --max-inflight-per-client N  max non-terminal jobs one client may hold;
                               over it, submits get kErrQuotaExceeded
                               (default 0 = unlimited)
  --max-queued-per-client N    max jobs one client may have waiting in the
                               queue (default 0 = unlimited)
  --client-weight W            default fair-share weight for every client
  --client-weight NAME=W       explicit weight for client NAME (repeatable);
                               a weight-2 client is offered two dispatches
                               per scheduling cycle for a weight-1 client's
                               one, within the same priority

tuning as a service (requires a tuner trained with `qross train`):
  --tuner FILE             load a trained tuner and serve SubmitTune sessions;
                           without it the daemon answers SubmitTune with
                           kErrTuningUnavailable
  --max-tune-sessions N    concurrent tuning sessions (default 4; over the
                           limit, submits get a retryable kErrServerFull);
                           0 = unlimited
  --tune-corpus PATH       append every completed session's (features, A,
                           batch summary) rows to this dataset CSV — the
                           corpus for later surrogate refreshes

observability:
  --log-level LEVEL         debug | info | warn | error | off (default info);
                            structured key=value event lines on stderr
  --trace                   enable job tracing from startup (QROSS_TRACE=1
                            does the same)
  --trace-buffer-events N   trace ring capacity in events (default 65536;
                            oldest events are evicted beyond it)
  --trace-dump PATH         Chrome trace-event JSON written on SIGUSR1 and
                            at shutdown while tracing (default
                            qrossd-trace.json); also served over the wire
                            via `qross_cli trace`
)");
  std::exit(2);
}

/// Writes the trace buffer as Chrome trace JSON.  Safe to call repeatedly;
/// each dump snapshots the ring at that moment.
void dump_trace(const std::string& path) {
  const std::string json =
      qross::obs::chrome_trace_json(qross::obs::TraceRecorder::instance());
  const bool ok = qross::io::write_file_atomic(
      path, std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(json.data()),
                json.size()));
  if (ok) {
    qross::obs::log_event(
        qross::obs::LogLevel::info, "trace_dumped",
        {{"path", path},
         {"bytes", std::to_string(json.size())},
         {"recorded",
          std::to_string(qross::obs::TraceRecorder::instance().recorded())},
         {"evicted",
          std::to_string(qross::obs::TraceRecorder::instance().evicted())}});
  } else {
    qross::obs::log_event(qross::obs::LogLevel::error, "trace_dump_failed",
                          {{"path", path}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen_spec;
  qross::service::ServiceConfig service_config;
  service_config.num_workers = 4;
  service_config.cache_capacity = 1024;
  qross::net::ServerConfig server_config;
  long drain_timeout_ms = 30000;
  std::string tuner_path;
  qross::service::TuneServiceConfig tune_config;
  qross::obs::LogLevel log_level = qross::obs::LogLevel::info;
  bool trace_enabled = false;
  std::size_t trace_buffer_events = 0;  // 0 = keep the recorder's default
  std::string trace_dump_path = "qrossd-trace.json";

  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + key).c_str());
      return argv[++i];
    };
    try {
      if (key == "--listen") {
        listen_spec = value();
      } else if (key == "--workers") {
        service_config.num_workers = std::stoul(value());
      } else if (key == "--cache") {
        service_config.cache_capacity = std::stoul(value());
      } else if (key == "--cache-file") {
        service_config.cache_path = value();
      } else if (key == "--max-frame-bytes") {
        server_config.max_frame_bytes =
            static_cast<std::uint32_t>(std::stoul(value()));
      } else if (key == "--drain-timeout-ms") {
        drain_timeout_ms = std::stol(value());
      } else if (key == "--max-connections") {
        server_config.max_connections = std::stoul(value());
      } else if (key == "--max-inflight-per-client") {
        service_config.max_inflight_per_client = std::stoul(value());
      } else if (key == "--max-queued-per-client") {
        service_config.max_queued_per_client = std::stoul(value());
      } else if (key == "--client-weight") {
        const std::string spec = value();
        const auto eq = spec.find('=');
        if (eq == std::string::npos) {
          service_config.default_client_weight = std::stod(spec);
        } else if (eq == 0) {
          usage("--client-weight NAME=W needs a non-empty NAME");
        } else {
          service_config.client_weights[spec.substr(0, eq)] =
              std::stod(spec.substr(eq + 1));
        }
      } else if (key == "--tuner") {
        tuner_path = value();
      } else if (key == "--max-tune-sessions") {
        tune_config.max_sessions = std::stoul(value());
      } else if (key == "--tune-corpus") {
        tune_config.corpus_path = value();
      } else if (key == "--log-level") {
        const std::string spec = value();
        if (!qross::obs::parse_log_level(spec, &log_level)) {
          usage(("bad --log-level " + spec +
                 " (debug|info|warn|error|off)").c_str());
        }
      } else if (key == "--trace") {
        trace_enabled = true;  // boolean flag: consumes no value
      } else if (key == "--trace-buffer-events") {
        trace_buffer_events = std::stoul(value());
        if (trace_buffer_events == 0) {
          usage("--trace-buffer-events must be positive");
        }
      } else if (key == "--trace-dump") {
        trace_dump_path = value();
      } else {
        usage(("unknown option " + key).c_str());
      }
    } catch (const std::exception&) {
      usage(("bad numeric value for " + key).c_str());
    }
  }
  if (listen_spec.empty()) usage("--listen is required");

  std::size_t start = 0;
  while (start <= listen_spec.size()) {
    const auto comma = listen_spec.find(',', start);
    const auto piece = listen_spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!piece.empty()) {
      const auto endpoint = qross::net::Endpoint::parse(piece);
      if (!endpoint.has_value()) {
        usage(("cannot parse endpoint: " + piece).c_str());
      }
      server_config.listen.push_back(*endpoint);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (server_config.listen.empty()) usage("--listen is required");

  qross::obs::set_log_level(log_level);
  // QROSS_TRACE=1 in the environment enables tracing at first use of the
  // recorder; the flags below layer on top (and can resize the ring).
  auto& tracer = qross::obs::TraceRecorder::instance();
  if (trace_enabled || trace_buffer_events > 0) {
    tracer.enable(trace_buffer_events);
  }

  if (pipe(signal_pipe) != 0) {
    qross::obs::log_event(qross::obs::LogLevel::error, "startup_failed",
                          {{"reason", "cannot create signal pipe"}});
    return 1;
  }
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = on_signal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGUSR1, &action, nullptr);
  signal(SIGPIPE, SIG_IGN);

  qross::obs::log_event(
      qross::obs::LogLevel::info, "startup",
      {{"listen", listen_spec},
       {"workers", std::to_string(service_config.num_workers)},
       {"cache_entries", std::to_string(service_config.cache_capacity)},
       {"cache_file", service_config.cache_path},
       {"max_connections", std::to_string(server_config.max_connections)},
       {"trace", tracer.enabled() ? "on" : "off"},
       {"log_level", qross::obs::log_level_name(log_level)}});

  qross::service::SolveService service(service_config);
  // Declared after `service` (its probe jobs flow through it) and
  // constructed before the server (which borrows it via config.tune), so
  // destruction runs server -> tune_service -> service.
  std::unique_ptr<qross::service::TuneService> tune_service;
  if (!tuner_path.empty()) {
    std::ifstream tuner_file(tuner_path);
    if (!tuner_file.good()) {
      qross::obs::log_event(qross::obs::LogLevel::error, "startup_failed",
                            {{"reason", "cannot read tuner file"},
                             {"path", tuner_path}});
      std::fprintf(stderr, "error: cannot read tuner file %s\n",
                   tuner_path.c_str());
      return 1;
    }
    try {
      tune_service = std::make_unique<qross::service::TuneService>(
          qross::core::QrossTuner::load(tuner_file), service, tune_config);
    } catch (const std::exception& e) {
      qross::obs::log_event(qross::obs::LogLevel::error, "startup_failed",
                            {{"reason", std::string("bad tuner file: ") +
                                            e.what()},
                             {"path", tuner_path}});
      std::fprintf(stderr, "error: bad tuner file %s: %s\n",
                   tuner_path.c_str(), e.what());
      return 1;
    }
    server_config.tune = tune_service.get();
  }
  qross::net::Server server(service, server_config);
  std::string error;
  if (!server.start(&error)) {
    qross::obs::log_event(qross::obs::LogLevel::error, "startup_failed",
                          {{"reason", error}});
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  for (const auto& endpoint : server.endpoints()) {
    // Stdout lines are the start-script contract (scripts grep for them);
    // the structured event is the log contract.  Both stay.
    std::printf("qrossd listening on %s\n", endpoint.to_string().c_str());
    qross::obs::log_event(qross::obs::LogLevel::info, "listener_bound",
                          {{"endpoint", endpoint.to_string()}});
  }
  std::printf("qrossd ready: %zu workers, cache %zu entries%s%s\n",
              service.num_workers(), service_config.cache_capacity,
              service_config.cache_path.empty() ? "" : ", persisted to ",
              service_config.cache_path.c_str());
  if (service_config.max_inflight_per_client > 0 ||
      service_config.max_queued_per_client > 0) {
    std::printf(
        "qrossd admission: per-client quotas %zu inflight / %zu queued "
        "(0 = unlimited), default weight %.2f\n",
        service_config.max_inflight_per_client,
        service_config.max_queued_per_client,
        service_config.default_client_weight);
  }
  if (tune_service != nullptr) {
    std::printf(
        "qrossd tuning: %s | %zu max sessions (0 = unlimited)%s%s\n",
        tuner_path.c_str(), tune_config.max_sessions,
        tune_config.corpus_path.empty() ? "" : ", corpus appended to ",
        tune_config.corpus_path.c_str());
  }
  std::fflush(stdout);

  // Block until a terminate signal lands (EINTR restarts are fine: the
  // handler also wrote the byte we are waiting for).  SIGUSR1 bytes dump
  // the trace and keep serving.
  while (true) {
    char byte = 0;
    const auto n = read(signal_pipe[0], &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // pipe gone; treat as terminate
    if (byte == 'u') {
      dump_trace(trace_dump_path);
      continue;
    }
    break;
  }

  qross::obs::log_event(qross::obs::LogLevel::info, "drain_begin",
                        {{"timeout_ms", std::to_string(drain_timeout_ms)}});
  std::printf("qrossd draining (timeout %ld ms)...\n", drain_timeout_ms);
  std::fflush(stdout);
  // Short drain slices so a SECOND signal is honoured promptly (drain() is
  // idempotent): the impatient-operator contract from the header.
  bool drained = false;
  const auto drain_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(drain_timeout_ms);
  while (signals_seen.load(std::memory_order_relaxed) <= 1) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        drain_deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) break;
    if (server.drain(std::min(remaining, std::chrono::milliseconds(200)))) {
      drained = true;
      break;
    }
  }
  server.stop();
  const auto stats = server.stats();
  const std::size_t flushed = service.flush_cache();
  qross::obs::log_event(
      qross::obs::LogLevel::info, "drain_end",
      {{"clean", drained ? "true" : "false"},
       {"connections", std::to_string(stats.connections_accepted)},
       {"submits", std::to_string(stats.submits)},
       {"results", std::to_string(stats.results_sent)},
       {"cache_flushed", std::to_string(flushed)}});
  if (tracer.enabled()) dump_trace(trace_dump_path);
  std::printf(
      "qrossd stopped: %s drain | %llu connections, %llu submits, "
      "%llu results, %llu protocol errors, %llu jobs cancelled by hangup | "
      "%zu cache entries flushed\n",
      drained ? "clean" : "timed-out",
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.submits),
      static_cast<unsigned long long>(stats.results_sent),
      static_cast<unsigned long long>(stats.protocol_errors),
      static_cast<unsigned long long>(stats.disconnect_cancelled_jobs),
      flushed);
  if (tune_service != nullptr) {
    const auto tm = tune_service->metrics();
    std::printf(
        "qrossd tuning stopped: %llu sessions (%llu done, %llu cancelled, "
        "%llu failed) | %llu corpus rows | surrogate combiner: %llu rows in "
        "%llu passes (max %zu rows/pass)\n",
        static_cast<unsigned long long>(tm.sessions_started),
        static_cast<unsigned long long>(tm.sessions_done),
        static_cast<unsigned long long>(tm.sessions_cancelled),
        static_cast<unsigned long long>(tm.sessions_failed),
        static_cast<unsigned long long>(tm.corpus_rows_appended),
        static_cast<unsigned long long>(tm.surrogate.rows),
        static_cast<unsigned long long>(tm.surrogate.passes),
        tm.surrogate.max_rows_per_pass);
  }
  std::fflush(stdout);
  return 0;
}
