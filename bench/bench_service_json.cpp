// Machine-readable perf tracking: writes BENCH_sweep.json (dense vs sparse
// sweep throughput — the PR 1 headline numbers) and BENCH_service.json
// (SolveService throughput in jobs/sec at queue depth >= workers, cold vs
// cache-warm), so the perf trajectory is diffable from this PR on.
//
// Unlike bench_micro_perf this target needs no google-benchmark — it is a
// plain binary timed with common/stopwatch, runnable on any CI box:
//
//   ./bench_service_json [--out-dir DIR]   (default: current directory)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "harness/dense_baseline.hpp"
#include "problems/mvc/mvc.hpp"
#include "problems/tsp/formulation.hpp"
#include "problems/tsp/generators.hpp"
#include "qubo/incremental.hpp"
#include "qubo/sparse.hpp"
#include "service/solve_service.hpp"
#include "solvers/digital_annealer.hpp"

namespace {

using namespace qross;

struct SweepRow {
  std::string workload;
  std::size_t n = 0;
  std::size_t nnz = 0;
  double density = 0.0;
  double dense_flips_per_sec = 0.0;
  double sparse_flips_per_sec = 0.0;

  double speedup() const {
    return dense_flips_per_sec > 0.0
               ? sparse_flips_per_sec / dense_flips_per_sec
               : 0.0;
  }
};

/// Repeats full sweeps (one apply_flip per variable) until `budget_seconds`
/// elapses; returns flips/second.
template <typename Evaluator>
double measure_sweep_throughput(Evaluator& eval, std::size_t n,
                                double budget_seconds) {
  Rng rng(3);
  qubo::Bits x(n);
  for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
  eval.set_state(x);
  // Warm-up sweep so first-touch page faults stay out of the timing.
  for (std::size_t i = 0; i < n; ++i) eval.apply_flip(i);
  std::size_t flips = 0;
  Stopwatch watch;
  while (watch.elapsed_seconds() < budget_seconds) {
    for (std::size_t i = 0; i < n; ++i) eval.apply_flip(i);
    flips += n;
  }
  return static_cast<double>(flips) / watch.elapsed_seconds();
}

SweepRow measure_workload(const std::string& workload,
                          const qubo::QuboModel& model,
                          double budget_seconds) {
  SweepRow row;
  row.workload = workload;
  row.n = model.num_vars();
  const auto adjacency = qubo::SparseAdjacency::build(model);
  row.nnz = adjacency->num_nonzeros();
  row.density = adjacency->density();
  bench::DenseEvaluator dense(model);
  row.dense_flips_per_sec =
      measure_sweep_throughput(dense, row.n, budget_seconds);
  qubo::IncrementalEvaluator sparse(adjacency);
  row.sparse_flips_per_sec =
      measure_sweep_throughput(sparse, row.n, budget_seconds);
  std::fprintf(stderr, "%-8s n=%-4zu nnz=%-7zu dense=%.3g sparse=%.3g (%.1fx)\n",
               workload.c_str(), row.n, row.nnz, row.dense_flips_per_sec,
               row.sparse_flips_per_sec, row.speedup());
  return row;
}

void write_sweep_json(const std::string& path,
                      const std::vector<SweepRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"qross-bench-sweep-v1\",\n  \"rows\": [\n");
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const auto& r = rows[k];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"n\": %zu, \"nnz\": %zu, "
                 "\"density\": %.6f, \"dense_flips_per_sec\": %.1f, "
                 "\"sparse_flips_per_sec\": %.1f, \"sparse_speedup\": %.3f}%s\n",
                 r.workload.c_str(), r.n, r.nnz, r.density,
                 r.dense_flips_per_sec, r.sparse_flips_per_sec, r.speedup(),
                 k + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

struct ServicePass {
  double wall_seconds = 0.0;
  double jobs_per_sec = 0.0;
};

/// Submits every model once (all up front, so the queue depth at submit is
/// `models.size()`, far above the worker count) and waits for the lot.
ServicePass run_service_pass(service::SolveService& svc,
                             const solvers::SolverPtr& solver,
                             const std::vector<qubo::QuboModel>& models,
                             const solvers::SolveOptions& options) {
  Stopwatch watch;
  std::vector<service::JobHandle> handles;
  handles.reserve(models.size());
  for (const auto& model : models) {
    handles.push_back(svc.submit(solver, model, options));
  }
  for (auto& handle : handles) {
    const auto result = handle.wait();
    if (result.status != service::JobStatus::done) {
      std::fprintf(stderr, "bench job unexpectedly %s\n",
                   service::to_string(result.status));
      std::exit(1);
    }
  }
  ServicePass pass;
  pass.wall_seconds = watch.elapsed_seconds();
  pass.jobs_per_sec = static_cast<double>(models.size()) / pass.wall_seconds;
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out-dir DIR]\n", argv[0]);
      return 2;
    }
  }

  // --- dense vs sparse sweep throughput (the PR 1 numbers, now tracked) ---
  constexpr double kBudget = 0.25;  // seconds per measurement
  std::vector<SweepRow> rows;
  for (const std::size_t n : {128ul, 256ul}) {
    const auto instance = mvc::generate_random_mvc(n, 0.06, 0xBEEF);
    rows.push_back(measure_workload("mvc", instance.to_qubo(2.0), kBudget));
  }
  for (const std::size_t cities : {8ul, 12ul}) {
    const auto instance = tsp::generate_uniform(cities, 0xBE);
    const auto problem = tsp::build_tsp_problem(instance);
    rows.push_back(measure_workload("tsp", problem.to_qubo(25.0), kBudget));
  }
  write_sweep_json(out_dir + "/BENCH_sweep.json", rows);

  // --- service throughput: jobs/sec at queue depth >= 4 workers -----------
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kJobs = 64;
  service::ServiceConfig config;
  config.num_workers = kWorkers;
  config.cache_capacity = kJobs;
  service::SolveService svc(config);
  const auto solver = std::make_shared<solvers::DigitalAnnealer>();
  solvers::SolveOptions options;
  options.num_replicas = 4;
  options.num_sweeps = 30;

  std::vector<qubo::QuboModel> models;
  models.reserve(kJobs);
  for (std::size_t k = 0; k < kJobs; ++k) {
    models.push_back(
        mvc::generate_random_mvc(64, 0.08, 0x2000 + k).to_qubo(2.0));
  }
  const ServicePass cold = run_service_pass(svc, solver, models, options);
  const ServicePass warm = run_service_pass(svc, solver, models, options);
  const service::ServiceMetrics metrics = svc.metrics();
  std::fprintf(stderr,
               "service: cold %.1f jobs/s, cache-warm %.1f jobs/s "
               "(%zu hits, %zu invocations)\n",
               cold.jobs_per_sec, warm.jobs_per_sec, metrics.cache_hits,
               metrics.solver_invocations);

  const std::string path = out_dir + "/BENCH_service.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"qross-bench-service-v1\",\n");
  std::fprintf(f, "  \"workers\": %zu,\n  \"jobs\": %zu,\n", kWorkers, kJobs);
  std::fprintf(f, "  \"queue_depth_at_submit\": %zu,\n", kJobs);
  std::fprintf(f, "  \"workload\": \"mvc n=64 da replicas=4 sweeps=30\",\n");
  std::fprintf(f,
               "  \"cold\": {\"wall_seconds\": %.4f, \"jobs_per_sec\": %.2f},\n",
               cold.wall_seconds, cold.jobs_per_sec);
  std::fprintf(
      f, "  \"cache_warm\": {\"wall_seconds\": %.4f, \"jobs_per_sec\": %.2f},\n",
      warm.wall_seconds, warm.jobs_per_sec);
  std::fprintf(f,
               "  \"metrics\": {\"solver_invocations\": %zu, \"cache_hits\": "
               "%zu, \"cache_misses\": %zu, \"run_p50_ms\": %.2f, "
               "\"run_p99_ms\": %.2f, \"wait_p50_ms\": %.2f, "
               "\"wait_p99_ms\": %.2f}\n",
               metrics.solver_invocations, metrics.cache_hits,
               metrics.cache_misses, metrics.run.p50_ms, metrics.run.p99_ms,
               metrics.queue_wait.p50_ms, metrics.queue_wait.p99_ms);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
