// Machine-readable perf tracking: writes BENCH_sweep.json (dense vs sparse
// sweep throughput — the PR 1 headline numbers — plus the PR 6 SIMD
// replica-block arms: scalar and AVX2 block flips/s per workload and the
// avx2-vs-sparse simd_speedup ratio) and BENCH_service.json
// (SolveService throughput in jobs/sec at queue depth >= workers: cold,
// in-memory cache-warm, disk-warm from a persisted snapshot in a fresh
// service, and net-warm — client→server jobs/s through qross::net over
// loopback TCP, isolating the wire protocol's per-job overhead, plus the
// PR 8 tuning-service numbers: batched surrogate prediction rows/s versus
// one-at-a-time and the cross-session combiner under thread contention),
// so the perf trajectory is diffable from this PR on.
//
// Unlike bench_micro_perf this target needs no google-benchmark — it is a
// plain binary timed with common/stopwatch, runnable on any CI box:
//
//   ./bench_service_json [--out-dir DIR] [--check BASELINE_DIR]
//
// --check is the CI perf-regression gate: after measuring, the fresh
// results are compared against the committed BENCH_sweep.json in
// BASELINE_DIR and the run fails (exit 1) only when a workload's sparse
// SPEEDUP (sparse/dense flips per second — the hardware-normalized form of
// sweep throughput, so a slower CI runner cancels out of the ratio)
// regressed by more than kSweepRegressionTolerance — a deliberately
// generous bound so shared-runner noise never trips it.  The SIMD speedup
// (avx2 block flips/s over scalar sparse flips/s) gates the same way, but
// only when the running CPU has AVX2 — on a scalar-only box the ratio is
// recorded as 0 and skipped.  Absolute throughputs and service jobs/s
// deltas are reported but never gate (they track the machine, not the
// code).

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <sstream>
#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "harness/dense_baseline.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/trace.hpp"
#include "problems/mvc/mvc.hpp"
#include "problems/tsp/formulation.hpp"
#include "problems/tsp/generators.hpp"
#include "qubo/incremental.hpp"
#include "qubo/replica_block.hpp"
#include "qubo/simd.hpp"
#include "qubo/sparse.hpp"
#include "service/solve_service.hpp"
#include "solvers/digital_annealer.hpp"
#include "surrogate/batched.hpp"
#include "surrogate/model.hpp"

namespace {

using namespace qross;

struct SweepRow {
  std::string workload;
  std::size_t n = 0;
  std::size_t nnz = 0;
  double density = 0.0;
  double dense_flips_per_sec = 0.0;
  double sparse_flips_per_sec = 0.0;
  // SIMD replica-block arms (8 lanes, forced-accept sweeps — per-lane flips
  // counted, so these are directly comparable to the per-replica rates
  // above).  block_avx2 stays 0 when the CPU has no AVX2.
  double block_scalar_flips_per_sec = 0.0;
  double block_avx2_flips_per_sec = 0.0;

  double speedup() const {
    return dense_flips_per_sec > 0.0
               ? sparse_flips_per_sec / dense_flips_per_sec
               : 0.0;
  }
  /// The PR 6 headline ratio: vectorised block sweep over the scalar sparse
  /// path a solver used before blocking.  0 when AVX2 is unavailable.
  double simd_speedup() const {
    return sparse_flips_per_sec > 0.0
               ? block_avx2_flips_per_sec / sparse_flips_per_sec
               : 0.0;
  }
};

/// Best of 3 measurement windows.  The sweep numbers feed ratio gates whose
/// numerator and denominator are measured at different moments; on a busy
/// shared runner a contention window hitting exactly one side swings the
/// ratio far more than any code change.  Contention only ever slows a run
/// down, so the max over repeated windows is the stable estimator of what
/// the code can do.
template <typename Measure>
double best_of(Measure&& measure) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) best = std::max(best, measure());
  return best;
}

/// Repeats full sweeps (one apply_flip per variable) until `budget_seconds`
/// elapses; returns flips/second.
template <typename Evaluator>
double measure_sweep_throughput(Evaluator& eval, std::size_t n,
                                double budget_seconds) {
  Rng rng(3);
  qubo::Bits x(n);
  for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
  eval.set_state(x);
  // Warm-up sweep so first-touch page faults stay out of the timing.
  for (std::size_t i = 0; i < n; ++i) eval.apply_flip(i);
  std::size_t flips = 0;
  Stopwatch watch;
  while (watch.elapsed_seconds() < budget_seconds) {
    for (std::size_t i = 0; i < n; ++i) eval.apply_flip(i);
    flips += n;
  }
  return static_cast<double>(flips) / watch.elapsed_seconds();
}

/// Forced-accept block sweeps on the requested SIMD arm (mirrors
/// bench_micro_perf's run_block_sweep_bench): every step computes deltas
/// for all lanes and applies the flip in all of them.  Returns per-lane
/// flips/second, or 0 when the arm is unavailable on this CPU.
double measure_block_sweep_throughput(const qubo::SparseAdjacencyPtr& adjacency,
                                      std::size_t n, qubo::SimdKind kind,
                                      double budget_seconds) {
  constexpr std::size_t kLanes = 8;
  qubo::ReplicaBlockEvaluator eval(adjacency, kLanes, kind);
  if (eval.kind() != kind) return 0.0;  // ctor clamped: no such arm here
  Rng rng(3);
  qubo::Bits x(n);
  for (std::size_t l = 0; l < kLanes; ++l) {
    for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
    eval.set_state(l, x);
  }
  AlignedVector<double> deltas(eval.lane_stride(), 0.0);
  std::vector<std::uint64_t> accept(eval.mask_words(), 0);
  for (std::size_t l = 0; l < kLanes; ++l) {
    accept[l / 64] |= std::uint64_t{1} << (l % 64);
  }
  auto sweep = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      eval.compute_flip_deltas(i, deltas.data());
      eval.apply_flips(i, accept.data(), deltas.data());
    }
  };
  sweep();  // warm-up, like measure_sweep_throughput
  std::size_t flips = 0;
  Stopwatch watch;
  while (watch.elapsed_seconds() < budget_seconds) {
    sweep();
    flips += n * kLanes;
  }
  return static_cast<double>(flips) / watch.elapsed_seconds();
}

SweepRow measure_workload(const std::string& workload,
                          const qubo::QuboModel& model,
                          double budget_seconds) {
  SweepRow row;
  row.workload = workload;
  row.n = model.num_vars();
  const auto adjacency = qubo::SparseAdjacency::build(model);
  row.nnz = adjacency->num_nonzeros();
  row.density = adjacency->density();
  bench::DenseEvaluator dense(model);
  row.dense_flips_per_sec = best_of([&] {
    return measure_sweep_throughput(dense, row.n, budget_seconds);
  });
  qubo::IncrementalEvaluator sparse(adjacency);
  row.sparse_flips_per_sec = best_of([&] {
    return measure_sweep_throughput(sparse, row.n, budget_seconds);
  });
  row.block_scalar_flips_per_sec = best_of([&] {
    return measure_block_sweep_throughput(adjacency, row.n,
                                          qubo::SimdKind::kScalar,
                                          budget_seconds);
  });
  row.block_avx2_flips_per_sec = best_of([&] {
    return measure_block_sweep_throughput(adjacency, row.n,
                                          qubo::SimdKind::kAvx2,
                                          budget_seconds);
  });
  std::fprintf(stderr,
               "%-8s n=%-4zu nnz=%-7zu dense=%.3g sparse=%.3g (%.1fx) "
               "block-scalar=%.3g block-avx2=%.3g (simd %.2fx)\n",
               workload.c_str(), row.n, row.nnz, row.dense_flips_per_sec,
               row.sparse_flips_per_sec, row.speedup(),
               row.block_scalar_flips_per_sec, row.block_avx2_flips_per_sec,
               row.simd_speedup());
  return row;
}

void write_sweep_json(const std::string& path,
                      const std::vector<SweepRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"qross-bench-sweep-v2\",\n  \"rows\": [\n");
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const auto& r = rows[k];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"n\": %zu, \"nnz\": %zu, "
                 "\"density\": %.6f, \"dense_flips_per_sec\": %.1f, "
                 "\"sparse_flips_per_sec\": %.1f, \"sparse_speedup\": %.3f, "
                 "\"block_scalar_flips_per_sec\": %.1f, "
                 "\"block_avx2_flips_per_sec\": %.1f, "
                 "\"simd_speedup\": %.3f}%s\n",
                 r.workload.c_str(), r.n, r.nnz, r.density,
                 r.dense_flips_per_sec, r.sparse_flips_per_sec, r.speedup(),
                 r.block_scalar_flips_per_sec, r.block_avx2_flips_per_sec,
                 r.simd_speedup(), k + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

struct ServicePass {
  double wall_seconds = 0.0;
  double jobs_per_sec = 0.0;
};

/// Submits every model once (all up front, so the queue depth at submit is
/// `models.size()`, far above the worker count) and waits for the lot.
ServicePass run_service_pass(service::SolveService& svc,
                             const solvers::SolverPtr& solver,
                             const std::vector<qubo::QuboModel>& models,
                             const solvers::SolveOptions& options) {
  Stopwatch watch;
  std::vector<service::JobHandle> handles;
  handles.reserve(models.size());
  for (const auto& model : models) {
    handles.push_back(svc.submit(solver, model, options));
  }
  for (auto& handle : handles) {
    const auto result = handle.wait();
    if (result.status != service::JobStatus::done) {
      std::fprintf(stderr, "bench job unexpectedly %s\n",
                   service::to_string(result.status));
      std::exit(1);
    }
  }
  ServicePass pass;
  pass.wall_seconds = watch.elapsed_seconds();
  pass.jobs_per_sec = static_cast<double>(models.size()) / pass.wall_seconds;
  return pass;
}

// --- fairness: greedy vs polite client --------------------------------------

struct FairnessPass {
  double polite_p95_wait_ms = 0.0;
  double greedy_p95_wait_ms = 0.0;
};

// Same interpolated-quantile definition the service's own latency
// percentiles use, so the fairness numbers are comparable to wait_p95.
double p95(const std::vector<double>& values) {
  return values.empty() ? 0.0 : quantile(values, 0.95);
}

/// One greedy client floods the queue, then a polite client submits a small
/// batch at equal priority; reports each side's p95 queue wait.  Run twice
/// (fair_share on/off) this isolates what deficit-round-robin buys the
/// polite client over FIFO arrival order.
FairnessPass run_fairness_pass(bool fair_share,
                               const std::vector<qubo::QuboModel>& greedy_jobs,
                               const std::vector<qubo::QuboModel>& polite_jobs,
                               const solvers::SolverPtr& solver,
                               const solvers::SolveOptions& options) {
  service::ServiceConfig config;
  config.num_workers = 1;    // one worker makes the contention stark
  config.cache_capacity = 0; // every job pays a real solver run
  config.fair_share = fair_share;
  service::SolveService svc(config);
  service::SubmitOptions greedy_submit;
  greedy_submit.client_id = "greedy";
  service::SubmitOptions polite_submit;
  polite_submit.client_id = "polite";
  std::vector<service::JobHandle> greedy, polite;
  greedy.reserve(greedy_jobs.size());
  polite.reserve(polite_jobs.size());
  for (const auto& model : greedy_jobs) {
    greedy.push_back(svc.submit(solver, model, options, greedy_submit));
  }
  for (const auto& model : polite_jobs) {
    polite.push_back(svc.submit(solver, model, options, polite_submit));
  }
  std::vector<double> greedy_waits, polite_waits;
  for (auto& handle : greedy) greedy_waits.push_back(handle.wait().wait_ms);
  for (auto& handle : polite) polite_waits.push_back(handle.wait().wait_ms);
  FairnessPass pass;
  pass.greedy_p95_wait_ms = p95(greedy_waits);
  pass.polite_p95_wait_ms = p95(polite_waits);
  return pass;
}

// --- perf-regression gate ---------------------------------------------------

/// Sparse speedup >40% below baseline fails; less is shared-runner noise.
constexpr double kSweepRegressionTolerance = 0.40;

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  if (!file.good()) return {};
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

/// Every value following `"key": ` in document order — numbers or quoted
/// strings returned as text.  A 30-line scraper is all the JSON our two
/// fixed-schema bench files need; no parser dependency.
std::vector<std::string> extract_values(const std::string& text,
                                        const std::string& key) {
  std::vector<std::string> values;
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    while (pos < text.size() && text[pos] == ' ') ++pos;
    if (pos < text.size() && text[pos] == '"') {
      const std::size_t end = text.find('"', pos + 1);
      if (end == std::string::npos) break;
      values.push_back(text.substr(pos + 1, end - pos - 1));
      pos = end + 1;
    } else {
      std::size_t end = pos;
      while (end < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[end])) ||
              text[end] == '.' || text[end] == '-' || text[end] == 'e' ||
              text[end] == 'E' || text[end] == '+')) {
        ++end;
      }
      values.push_back(text.substr(pos, end - pos));
      pos = end;
    }
  }
  return values;
}

/// Compares the freshly measured sweep rows against the committed baseline.
/// Returns the number of genuine regressions (0 = gate passes).
int check_against_baseline(const std::string& baseline_dir,
                           const std::vector<SweepRow>& fresh,
                           double fresh_cold_jobs_per_sec) try {
  const std::string sweep_path = baseline_dir + "/BENCH_sweep.json";
  const std::string text = slurp(sweep_path);
  if (text.empty()) {
    std::fprintf(stderr, "perf gate: cannot read baseline %s\n",
                 sweep_path.c_str());
    return 1;
  }
  const auto workloads = extract_values(text, "workload");
  const auto ns = extract_values(text, "n");
  const auto speedups = extract_values(text, "sparse_speedup");
  const auto sparse = extract_values(text, "sparse_flips_per_sec");
  if (workloads.size() != ns.size() || ns.size() != speedups.size() ||
      speedups.size() != sparse.size()) {
    std::fprintf(stderr, "perf gate: malformed baseline %s\n",
                 sweep_path.c_str());
    return 1;
  }
  // Absent in a pre-v2 baseline; then the simd arm simply isn't gated.
  auto simd_speedups = extract_values(text, "simd_speedup");
  if (simd_speedups.size() != workloads.size()) simd_speedups.clear();
  int regressions = 0;
  // Every gate this run did NOT apply is announced — a baseline that
  // silently stopped covering a section must be visible in the CI log, not
  // discovered months later when the ungated path regresses.
  int skipped = 0;
  if (simd_speedups.empty()) {
    std::fprintf(stderr,
                 "perf gate: SKIPPED simd (baseline has no simd_speedup "
                 "column)\n");
    ++skipped;
  }
  for (const auto& row : fresh) {
    bool matched = false;
    for (std::size_t k = 0; k < workloads.size(); ++k) {
      if (workloads[k] != row.workload ||
          std::stoul(ns[k]) != row.n) {
        continue;
      }
      matched = true;
      // Gate on the dense-normalized speedup, not absolute flips/s: the
      // baselines were measured on whatever machine committed them, and a
      // CI runner half that speed must not fail the build — only a change
      // that erodes the sparse evaluation core's advantage should.
      const double base_speedup = std::stod(speedups[k]);
      const double floor = base_speedup * (1.0 - kSweepRegressionTolerance);
      const bool bad = row.speedup() < floor;
      std::fprintf(stderr,
                   "perf gate: %-4s n=%-4zu speedup %.2fx vs baseline %.2fx "
                   "(sparse %.3g vs %.3g flips/s, informational) %s\n",
                   row.workload.c_str(), row.n, row.speedup(), base_speedup,
                   row.sparse_flips_per_sec, std::stod(sparse[k]),
                   bad ? "REGRESSION" : "ok");
      if (bad) ++regressions;
      // SIMD gate: same hardware-normalized form (avx2 block / scalar
      // sparse, both measured this run).  Skipped when either side lacks
      // an AVX2 number — a scalar-only runner must not fail, and neither
      // must a fresh AVX2 box checked against a scalar-measured baseline.
      if (!simd_speedups.empty()) {
        if (row.simd_speedup() <= 0.0) {
          std::fprintf(stderr,
                       "perf gate: SKIPPED simd %-4s n=%-4zu (no AVX2 on "
                       "this runner)\n",
                       row.workload.c_str(), row.n);
          ++skipped;
        } else if (const double base_simd = std::stod(simd_speedups[k]);
                   base_simd <= 0.0) {
          std::fprintf(stderr,
                       "perf gate: SKIPPED simd %-4s n=%-4zu (baseline "
                       "measured without AVX2)\n",
                       row.workload.c_str(), row.n);
          ++skipped;
        } else {
          const double simd_floor =
              base_simd * (1.0 - kSweepRegressionTolerance);
          const bool simd_bad = row.simd_speedup() < simd_floor;
          std::fprintf(stderr,
                       "perf gate: %-4s n=%-4zu simd %.2fx vs baseline %.2fx "
                       "%s\n",
                       row.workload.c_str(), row.n, row.simd_speedup(),
                       base_simd, simd_bad ? "REGRESSION" : "ok");
          if (simd_bad) ++regressions;
        }
      }
      break;
    }
    if (!matched) {
      std::fprintf(stderr,
                   "perf gate: SKIPPED sweep %-4s n=%zu (no baseline row — "
                   "new workload, not gated)\n",
                   row.workload.c_str(), row.n);
      ++skipped;
    }
  }
  // Service throughput: informational only (see file comment).
  const std::string service_text = slurp(baseline_dir + "/BENCH_service.json");
  const auto jobs_per_sec = extract_values(service_text, "jobs_per_sec");
  if (!jobs_per_sec.empty()) {
    std::fprintf(stderr,
                 "perf gate: service cold %.1f jobs/s vs baseline %.1f "
                 "(informational)\n",
                 fresh_cold_jobs_per_sec, std::stod(jobs_per_sec.front()));
  } else {
    std::fprintf(stderr,
                 "perf gate: SKIPPED service (no BENCH_service.json "
                 "baseline)\n");
    ++skipped;
  }
  if (skipped > 0) {
    std::fprintf(stderr,
                 "perf gate: %d gate section(s) SKIPPED — see lines above; "
                 "refresh the committed baselines to restore coverage\n",
                 skipped);
  }
  return regressions;
} catch (const std::exception& e) {
  // A hand-edited or merge-damaged baseline value that is not a bare
  // numeric literal lands here (std::stod/stoul throw); fail the gate with
  // a diagnostic instead of std::terminate.
  std::fprintf(stderr, "perf gate: malformed baseline value in %s: %s\n",
               baseline_dir.c_str(), e.what());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = ".";
  std::string baseline_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out-dir DIR] [--check BASELINE_DIR]\n",
                   argv[0]);
      return 2;
    }
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);

  // --- dense vs sparse sweep throughput (the PR 1 numbers, now tracked) ---
  constexpr double kBudget = 0.25;  // seconds per measurement
  std::vector<SweepRow> rows;
  for (const std::size_t n : {128ul, 256ul, 512ul}) {
    const auto instance = mvc::generate_random_mvc(n, 0.06, 0xBEEF);
    rows.push_back(measure_workload("mvc", instance.to_qubo(2.0), kBudget));
  }
  for (const std::size_t cities : {8ul, 12ul}) {
    const auto instance = tsp::generate_uniform(cities, 0xBE);
    const auto problem = tsp::build_tsp_problem(instance);
    rows.push_back(measure_workload("tsp", problem.to_qubo(25.0), kBudget));
  }
  write_sweep_json(out_dir + "/BENCH_sweep.json", rows);

  // --- service throughput: jobs/sec at queue depth >= 4 workers -----------
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kJobs = 64;
  const std::string cache_file = out_dir + "/BENCH_cache.qsnap";
  std::remove(cache_file.c_str());  // passes below must start genuinely cold
  std::remove((cache_file + ".journal").c_str());
  service::ServiceConfig config;
  config.num_workers = kWorkers;
  config.cache_capacity = kJobs;
  config.cache_path = cache_file;
  const auto solver = std::make_shared<solvers::DigitalAnnealer>();
  solvers::SolveOptions options;
  options.num_replicas = 4;
  options.num_sweeps = 30;

  std::vector<qubo::QuboModel> models;
  models.reserve(kJobs);
  for (std::size_t k = 0; k < kJobs; ++k) {
    models.push_back(
        mvc::generate_random_mvc(64, 0.08, 0x2000 + k).to_qubo(2.0));
  }
  ServicePass cold, warm, disk_warm, net_warm;
  service::ServiceMetrics metrics, disk_metrics;
  std::size_t net_cache_hits = 0;
  {
    service::SolveService svc(config);
    cold = run_service_pass(svc, solver, models, options);
    warm = run_service_pass(svc, solver, models, options);
    // cache_stored lags job completion by the journal append I/O; settle it
    // so the committed artifact is deterministic (64, not sometimes 63).
    Stopwatch settle;
    while (svc.metrics().cache_stored < kJobs &&
           settle.elapsed_seconds() < 5.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    metrics = svc.metrics();
  }  // destructor compacts the journal into the snapshot
  {
    // A fresh service (stand-in for a fresh process) warm-starts from disk:
    // every job is a cache hit, zero solver invocations.
    service::SolveService svc(config);
    disk_warm = run_service_pass(svc, solver, models, options);
    disk_metrics = svc.metrics();
    if (disk_metrics.solver_invocations != 0) {
      std::fprintf(stderr, "disk-warm pass unexpectedly invoked the solver\n");
      return 1;
    }

    // --- client→server jobs/s over the wire (the network front end) ------
    // Same warm service behind qross::net::Server on loopback TCP; every
    // job is a server-side cache hit, so the measured rate is the protocol
    // + transport + reactor overhead per job, not solver time.
    net::ServerConfig server_config;
    server_config.listen.push_back(*net::Endpoint::parse("tcp:127.0.0.1:0"));
    net::Server server(svc, server_config);
    std::string error;
    if (!server.start(&error)) {
      std::fprintf(stderr, "bench server start failed: %s\n", error.c_str());
      return 1;
    }
    net::ClientConfig client_config;
    client_config.server = server.endpoints().front();
    net::Client client(client_config);
    if (!client.connect(&error)) {
      std::fprintf(stderr, "bench client connect failed: %s\n", error.c_str());
      return 1;
    }
    std::vector<net::RemoteJob> jobs;
    jobs.reserve(models.size());
    for (const auto& model : models) {
      net::RemoteJob job;
      job.solver = "da";
      job.model = model;
      job.num_replicas = static_cast<std::uint32_t>(options.num_replicas);
      job.num_sweeps = static_cast<std::uint32_t>(options.num_sweeps);
      job.seed = options.seed;
      jobs.push_back(std::move(job));
    }
    Stopwatch watch;
    const auto results = client.run(jobs);
    net_warm.wall_seconds = watch.elapsed_seconds();
    net_warm.jobs_per_sec =
        static_cast<double>(results.size()) / net_warm.wall_seconds;
    for (const auto& result : results) {
      if (result.status != service::JobStatus::done) {
        std::fprintf(stderr, "bench net job unexpectedly %s\n",
                     service::to_string(result.status));
        return 1;
      }
      if (result.cache_hit) ++net_cache_hits;
    }
    server.stop();
  }
  std::fprintf(stderr,
               "service: cold %.1f jobs/s, cache-warm %.1f jobs/s, disk-warm "
               "%.1f jobs/s (%zu loaded, %zu invocations in warm pass), "
               "net-warm %.1f jobs/s over tcp\n",
               cold.jobs_per_sec, warm.jobs_per_sec, disk_warm.jobs_per_sec,
               disk_metrics.cache_loaded, disk_metrics.solver_invocations,
               net_warm.jobs_per_sec);

  // --- fairness: polite-client wait under a greedy flood, FIFO vs DRR ------
  constexpr std::size_t kGreedyJobs = 32;
  constexpr std::size_t kPoliteJobs = 8;
  std::vector<qubo::QuboModel> greedy_models, polite_models;
  greedy_models.reserve(kGreedyJobs);
  polite_models.reserve(kPoliteJobs);
  for (std::size_t k = 0; k < kGreedyJobs; ++k) {
    greedy_models.push_back(
        mvc::generate_random_mvc(64, 0.08, 0x3000 + k).to_qubo(2.0));
  }
  for (std::size_t k = 0; k < kPoliteJobs; ++k) {
    polite_models.push_back(
        mvc::generate_random_mvc(64, 0.08, 0x4000 + k).to_qubo(2.0));
  }
  const FairnessPass fifo = run_fairness_pass(
      /*fair_share=*/false, greedy_models, polite_models, solver, options);
  const FairnessPass fair = run_fairness_pass(
      /*fair_share=*/true, greedy_models, polite_models, solver, options);
  std::fprintf(stderr,
               "fairness: polite p95 wait %.1f ms under FIFO vs %.1f ms under "
               "fair-share (greedy %zu jobs: %.1f vs %.1f ms)\n",
               fifo.polite_p95_wait_ms, fair.polite_p95_wait_ms, kGreedyJobs,
               fifo.greedy_p95_wait_ms, fair.greedy_p95_wait_ms);

  // --- observability: tracing enabled vs disabled (informational) ----------
  // Same workload, cache off so every job pays a real kernel both times; the
  // delta is what a fully traced job lifecycle costs.  Never gated — the
  // acceptance bar is that tracing DISABLED costs nothing, which the cold
  // pass above (tracing off) already measures under the sweep gate.
  ServicePass trace_off, trace_on;
  std::uint64_t trace_events = 0;
  {
    service::ServiceConfig obs_config;
    obs_config.num_workers = kWorkers;
    obs_config.cache_capacity = 0;
    auto& recorder = obs::TraceRecorder::instance();
    recorder.disable();
    recorder.clear();
    {
      service::SolveService svc(obs_config);
      trace_off = run_service_pass(svc, solver, models, options);
    }
    recorder.enable(obs::TraceRecorder::kDefaultCapacity);
    {
      service::SolveService svc(obs_config);
      trace_on = run_service_pass(svc, solver, models, options);
    }
    trace_events = recorder.recorded();
    recorder.disable();
    recorder.clear();
  }
  const double trace_overhead_pct =
      trace_off.jobs_per_sec > 0.0
          ? 100.0 * (1.0 - trace_on.jobs_per_sec / trace_off.jobs_per_sec)
          : 0.0;
  std::fprintf(stderr,
               "obs: tracing off %.1f jobs/s, on %.1f jobs/s "
               "(%.1f%% overhead, %llu events recorded)\n",
               trace_off.jobs_per_sec, trace_on.jobs_per_sec,
               trace_overhead_pct,
               static_cast<unsigned long long>(trace_events));

  // --- tuning service: batched surrogate inference (informational) ---------
  // The TuneService batches single-row surrogate predictions from concurrent
  // sessions into one nn::Matrix pass.  Measure the raw headroom that
  // batching buys: rows/s through predict_batch over a mixed-instance
  // request set versus the same rows issued one predict() at a time (each a
  // 1-row matrix pass through both heads).  The surrogate is trained here on
  // a small synthetic dataset with a reduced epoch budget — prediction
  // throughput depends only on the architecture, not on fit quality.
  double tune_single_rows_per_sec = 0.0;
  double tune_batched_rows_per_sec = 0.0;
  double tune_combined_rows_per_sec = 0.0;
  surrogate::BatchedSurrogate::Stats combiner_stats;
  constexpr std::size_t kTuneInstances = 8;
  constexpr std::size_t kTuneGrid = 128;
  {
    std::vector<std::array<double, surrogate::kNumTspFeatures>> features;
    std::vector<double> anchors;
    surrogate::Dataset dataset;
    for (std::size_t i = 0; i < kTuneInstances; ++i) {
      const auto instance =
          tsp::generate_uniform(8 + i % 3, 0xBE7C0 + static_cast<unsigned>(i));
      features.push_back(surrogate::extract_features(instance));
      anchors.push_back(surrogate::scale_anchor(features.back()));
      for (std::size_t k = 0; k < 10; ++k) {
        surrogate::DatasetRow row;
        row.instance_id = i;
        row.features = features.back();
        row.scale_anchor = anchors.back();
        row.relaxation_parameter = 0.5 + 2.0 * static_cast<double>(k);
        // Plausible sigmoid-shaped targets; fit quality is irrelevant here.
        row.pf = static_cast<double>(k) / 9.0;
        row.energy_avg = anchors.back() * (1.0 + 0.05 * static_cast<double>(k));
        row.energy_std = 0.02 * anchors.back();
        dataset.rows.push_back(row);
      }
    }
    surrogate::SurrogateConfig surrogate_config;
    surrogate_config.pf_training.max_epochs = 100;
    surrogate_config.pf_training.patience = 100;
    surrogate_config.energy_training.max_epochs = 100;
    surrogate::SolverSurrogate surrogate(surrogate_config);
    surrogate.train(dataset);

    std::vector<surrogate::SurrogateRequest> requests;
    requests.reserve(kTuneInstances * kTuneGrid);
    for (std::size_t i = 0; i < kTuneInstances; ++i) {
      for (std::size_t k = 0; k < kTuneGrid; ++k) {
        surrogate::SurrogateRequest request;
        request.features = features[i];
        request.anchor = anchors[i];
        request.a = 0.5 + 0.2 * static_cast<double>(k);
        requests.push_back(request);
      }
    }

    tune_single_rows_per_sec = best_of([&] {
      std::size_t done = 0;
      Stopwatch watch;
      while (watch.elapsed_seconds() < kBudget) {
        for (const auto& request : requests) {
          (void)surrogate.predict(request.features, request.anchor, request.a);
        }
        done += requests.size();
      }
      return static_cast<double>(done) / watch.elapsed_seconds();
    });
    tune_batched_rows_per_sec = best_of([&] {
      std::size_t done = 0;
      Stopwatch watch;
      while (watch.elapsed_seconds() < kBudget) {
        (void)surrogate.predict_batch(requests);
        done += requests.size();
      }
      return static_cast<double>(done) / watch.elapsed_seconds();
    });

    // The cross-session combiner under contention: 4 threads (stand-ins for
    // concurrent tuner sessions) sweep 16-point grids through one
    // BatchedSurrogate.  Reported rows/s includes the condvar coordination
    // cost; the stats show how many rows actually shared a pass.
    surrogate::BatchedSurrogate batched(surrogate);
    constexpr std::size_t kTuneThreads = 4;
    std::vector<double> grid(16);
    for (std::size_t k = 0; k < grid.size(); ++k) {
      grid[k] = 0.5 + 1.5 * static_cast<double>(k);
    }
    std::vector<std::size_t> per_thread_rows(kTuneThreads, 0);
    Stopwatch combine_watch;
    {
      std::vector<std::thread> threads;
      for (std::size_t t = 0; t < kTuneThreads; ++t) {
        threads.emplace_back([&, t] {
          Stopwatch watch;
          while (watch.elapsed_seconds() < kBudget) {
            (void)batched.predict_sweep(features[t % kTuneInstances],
                                        anchors[t % kTuneInstances], grid);
            per_thread_rows[t] += grid.size();
          }
        });
      }
      for (auto& thread : threads) thread.join();
    }
    const double combine_seconds = combine_watch.elapsed_seconds();
    std::size_t combined_total = 0;
    for (const auto rows_done : per_thread_rows) combined_total += rows_done;
    tune_combined_rows_per_sec =
        static_cast<double>(combined_total) / combine_seconds;
    combiner_stats = batched.stats();
  }
  const double tune_batch_speedup =
      tune_single_rows_per_sec > 0.0
          ? tune_batched_rows_per_sec / tune_single_rows_per_sec
          : 0.0;
  std::fprintf(stderr,
               "tune: surrogate %.0f rows/s one-at-a-time vs %.0f rows/s "
               "batched (%.1fx); combiner %.0f rows/s across 4 threads "
               "(%llu of %llu rows shared a pass, max %llu rows/pass)\n",
               tune_single_rows_per_sec, tune_batched_rows_per_sec,
               tune_batch_speedup, tune_combined_rows_per_sec,
               static_cast<unsigned long long>(combiner_stats.combined_rows),
               static_cast<unsigned long long>(combiner_stats.rows),
               static_cast<unsigned long long>(combiner_stats.max_rows_per_pass));

  const std::string path = out_dir + "/BENCH_service.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"qross-bench-service-v7\",\n");
  std::fprintf(f, "  \"workers\": %zu,\n  \"jobs\": %zu,\n", kWorkers, kJobs);
  std::fprintf(f,
               "  \"simd\": {\"kernel\": \"%s\", \"avx2_supported\": %s},\n",
               qubo::to_string(qubo::active_simd_kind()),
               qubo::cpu_supports_avx2() ? "true" : "false");
  std::fprintf(f, "  \"queue_depth_at_submit\": %zu,\n", kJobs);
  std::fprintf(f, "  \"workload\": \"mvc n=64 da replicas=4 sweeps=30\",\n");
  std::fprintf(f,
               "  \"cold\": {\"wall_seconds\": %.4f, \"jobs_per_sec\": %.2f},\n",
               cold.wall_seconds, cold.jobs_per_sec);
  std::fprintf(
      f, "  \"cache_warm\": {\"wall_seconds\": %.4f, \"jobs_per_sec\": %.2f},\n",
      warm.wall_seconds, warm.jobs_per_sec);
  std::fprintf(
      f,
      "  \"disk_warm\": {\"wall_seconds\": %.4f, \"jobs_per_sec\": %.2f, "
      "\"cache_loaded\": %zu, \"solver_invocations\": %zu},\n",
      disk_warm.wall_seconds, disk_warm.jobs_per_sec,
      disk_metrics.cache_loaded, disk_metrics.solver_invocations);
  std::fprintf(
      f,
      "  \"net_warm\": {\"transport\": \"tcp\", \"wall_seconds\": %.4f, "
      "\"jobs_per_sec\": %.2f, \"cache_hits\": %zu},\n",
      net_warm.wall_seconds, net_warm.jobs_per_sec, net_cache_hits);
  std::fprintf(
      f,
      "  \"fairness\": {\"workers\": 1, \"greedy_jobs\": %zu, "
      "\"polite_jobs\": %zu, \"fifo_polite_p95_wait_ms\": %.2f, "
      "\"fair_polite_p95_wait_ms\": %.2f, \"fifo_greedy_p95_wait_ms\": %.2f, "
      "\"fair_greedy_p95_wait_ms\": %.2f},\n",
      kGreedyJobs, kPoliteJobs, fifo.polite_p95_wait_ms,
      fair.polite_p95_wait_ms, fifo.greedy_p95_wait_ms,
      fair.greedy_p95_wait_ms);
  std::fprintf(
      f,
      "  \"obs\": {\"trace_off_jobs_per_sec\": %.2f, "
      "\"trace_on_jobs_per_sec\": %.2f, \"trace_overhead_pct\": %.2f, "
      "\"trace_events_recorded\": %llu},\n",
      trace_off.jobs_per_sec, trace_on.jobs_per_sec, trace_overhead_pct,
      static_cast<unsigned long long>(trace_events));
  std::fprintf(
      f,
      "  \"tune\": {\"instances\": %zu, \"rows_per_request\": %zu, "
      "\"single_rows_per_sec\": %.0f, \"batched_rows_per_sec\": %.0f, "
      "\"batch_speedup\": %.2f, \"combined_rows_per_sec\": %.0f, "
      "\"combiner\": {\"calls\": %llu, \"rows\": %llu, \"passes\": %llu, "
      "\"combined_rows\": %llu, \"max_rows_per_pass\": %llu}},\n",
      kTuneInstances, kTuneGrid, tune_single_rows_per_sec,
      tune_batched_rows_per_sec, tune_batch_speedup,
      tune_combined_rows_per_sec,
      static_cast<unsigned long long>(combiner_stats.calls),
      static_cast<unsigned long long>(combiner_stats.rows),
      static_cast<unsigned long long>(combiner_stats.passes),
      static_cast<unsigned long long>(combiner_stats.combined_rows),
      static_cast<unsigned long long>(combiner_stats.max_rows_per_pass));
  std::fprintf(f,
               "  \"metrics\": {\"solver_invocations\": %zu, \"cache_hits\": "
               "%zu, \"cache_misses\": %zu, \"cache_stored\": %zu, "
               "\"run_p50_ms\": %.2f, "
               "\"run_p99_ms\": %.2f, \"wait_p50_ms\": %.2f, "
               "\"wait_p99_ms\": %.2f}\n",
               metrics.solver_invocations, metrics.cache_hits,
               metrics.cache_misses, metrics.cache_stored, metrics.run.p50_ms,
               metrics.run.p99_ms, metrics.queue_wait.p50_ms,
               metrics.queue_wait.p99_ms);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());

  if (!baseline_dir.empty()) {
    const int regressions =
        check_against_baseline(baseline_dir, rows, cold.jobs_per_sec);
    if (regressions > 0) {
      std::fprintf(stderr,
                   "perf gate: %d speedup regression(s) beyond %.0f%%\n",
                   regressions, 100.0 * kSweepRegressionTolerance);
      return 1;
    }
    std::fprintf(stderr, "perf gate: ok\n");
  }
  return 0;
}
