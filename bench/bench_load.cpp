// Latency-under-load curves: open-loop arrival traffic against a live
// server over loopback TCP, swept across arrival rates, written to
// BENCH_load.json (schema qross-bench-load-v1).
//
// A closed-loop bench (submit 64, wait) can never overload the server — it
// adapts to whatever the server sustains, so p99 under pressure is
// invisible.  Here the src/load/ generator plans Poisson and bursty
// arrival schedules, and the replayer fires them on the clock regardless
// of completions, so queueing delay, shed rate, and deadline expiry under
// overload are honestly measured.
//
// Hardware normalisation: a fixed jobs/s sweep would saturate a laptop and
// idle a big server.  Instead a closed-loop pass over the wire first
// measures this machine's capacity, and every curve row offers a FRACTION
// of it (0.25x .. 2x).  The committed rows are then comparable across
// machines: 0.5x of capacity should serve ~everything anywhere, and 2x
// should shed — which is also what makes the --check gate portable.
//
//   ./bench_load [--out-dir DIR] [--check BASELINE_DIR]
//
// --check (the CI gate, in bench_service_json's ratio-normalised style):
// only SUB-CAPACITY rows (rate_fraction <= 0.5) gate, on ok_ratio — the
// fraction of offered jobs served OK, dimensionless by construction —
// with a generous 40% relative tolerance.  Overload rows (1x, 2x) and the
// fairness columns are informational: their exact values depend on timing
// races the tolerance cannot bound, and what they claim (shed > 0, polite
// p95 below greedy) is asserted functionally by the loadsmoke CI step.
// A fresh row with no matching baseline row prints `SKIPPED` and a final
// summary count — silently ungated coverage is itself a CI smell.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "load/replayer.hpp"
#include "load/report.hpp"
#include "load/workload.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "problems/mvc/mvc.hpp"
#include "service/solve_service.hpp"

namespace {

using namespace qross;

// Shared shape for every job in this bench: heavy enough that a 2-worker
// service saturates at a few thousand jobs/s (so open-loop schedules stay
// small), light enough that one row replays in well under a second.
constexpr std::size_t kModelVars = 64;
constexpr double kModelDensity = 0.08;
constexpr std::uint32_t kReplicas = 8;
constexpr std::uint32_t kSweeps = 100;
constexpr std::size_t kWorkers = 2;
constexpr std::size_t kCapacityJobs = 24;  // stays under max_queued_per_client
constexpr std::size_t kJobsPerRow = 500;  // expected arrivals per curve row
constexpr std::uint64_t kSeed = 0x10AD;

/// Only rows offered at or below this fraction of measured capacity gate:
/// they should serve ~everything on any machine, so their ok_ratio is
/// stable.  Above it, shed/expiry races make exact ratios timing-noise.
constexpr double kGatedFractionMax = 0.5;
constexpr double kLoadRegressionTolerance = 0.40;

struct CurveRow {
  load::ArrivalKind arrivals = load::ArrivalKind::poisson;
  double rate_fraction = 0.0;
  /// True for the deadline-heavy mix: EVERY client submits with a tight
  /// deadline, at a rate past capacity — the row that puts a non-zero
  /// `expired_rate` in the committed curves (informational, never gated:
  /// its rate_fraction is above kGatedFractionMax by construction).
  bool deadline_heavy = false;
  load::LoadSummary summary;
};

double client_p95(const load::LoadSummary& summary, const std::string& id) {
  for (const auto& client : summary.clients) {
    if (client.client_id == id) return client.latency.p95_ms;
  }
  return 0.0;
}

/// Closed-loop capacity over the wire: queue-depth-24 submits through the
/// same endpoint, solver runs forced (bypass_cache), best of 3 windows.
double measure_capacity(const net::Endpoint& endpoint) {
  net::ClientConfig config;
  config.server = endpoint;
  config.client_id = "capacity";
  net::Client client(config);
  std::string error;
  if (!client.connect(&error)) {
    std::fprintf(stderr, "bench_load: capacity client connect failed: %s\n",
                 error.c_str());
    std::exit(1);
  }
  std::vector<net::RemoteJob> jobs;
  jobs.reserve(kCapacityJobs);
  for (std::size_t k = 0; k < kCapacityJobs; ++k) {
    net::RemoteJob job;
    job.solver = "da";
    job.model = mvc::generate_random_mvc(kModelVars, kModelDensity,
                                         0xCAB0 + k)
                    .to_qubo(2.0);
    job.num_replicas = kReplicas;
    job.num_sweeps = kSweeps;
    job.bypass_cache = true;  // capacity means solver runs, not cache hits
    jobs.push_back(std::move(job));
  }
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch watch;
    const auto results = client.run(jobs);
    const double wall = watch.elapsed_seconds();
    for (const auto& result : results) {
      if (result.status != service::JobStatus::done) {
        std::fprintf(stderr, "bench_load: capacity job unexpectedly %s: %s\n",
                     service::to_string(result.status), result.error.c_str());
        std::exit(1);
      }
    }
    best = std::max(best,
                    static_cast<double>(results.size()) / wall);
  }
  return best;
}

CurveRow run_row(const net::Endpoint& endpoint, load::ArrivalKind arrivals,
                 double fraction, double capacity,
                 bool deadline_heavy = false) {
  load::WorkloadConfig workload;
  workload.arrivals = arrivals;
  workload.rate_per_sec = fraction * capacity;
  workload.duration_sec = std::clamp(
      static_cast<double>(kJobsPerRow) / workload.rate_per_sec, 0.1, 2.0);
  workload.hit_ratio = 0.3;
  workload.hot_models = 16;
  workload.model_vars = kModelVars;
  workload.model_density = kModelDensity;
  // Greedy floods (4x the polite client's arrivals, no deadline); polite
  // trickles with a deadline and a 4x server-side fair-share weight — the
  // curve's fairness columns show DRR keeping its p95 below greedy's.
  load::ClientSpec greedy;
  greedy.client_id = "greedy";
  greedy.mix_weight = 4.0;
  load::ClientSpec polite;
  polite.client_id = "polite";
  polite.mix_weight = 1.0;
  polite.deadline_mean_ms = 250;
  polite.deadline_jitter = 0.2;
  if (deadline_heavy) {
    // Deadline-heavy mix: the flooding client submits with deadlines too,
    // tight enough that past-capacity queueing blows through them — the
    // queue-expiry path (`expired` without a solver invocation) shows up in
    // the committed curves instead of only in unit tests.
    greedy.deadline_mean_ms = 150;
    greedy.deadline_jitter = 0.3;
    polite.deadline_mean_ms = 150;
    polite.deadline_jitter = 0.3;
  }
  workload.clients = {greedy, polite};
  // Distinct stream per row so curves don't share arrival randomness.
  workload.seed = derive_seed(
      kSeed, (deadline_heavy ? 1000 : 0) +
                 (arrivals == load::ArrivalKind::bursty ? 100 : 0) +
                 static_cast<std::uint64_t>(fraction * 100.0));

  const auto schedule = load::generate_schedule(workload);

  load::ReplayConfig replay_config;
  replay_config.server = endpoint;
  replay_config.num_replicas = kReplicas;
  replay_config.num_sweeps = kSweeps;
  replay_config.drain_timeout_sec = 20.0;
  const auto result = load::replay(schedule, replay_config);
  if (!result.ok()) {
    std::fprintf(stderr, "bench_load: replay failed: %s\n",
                 result.error.c_str());
    std::exit(1);
  }

  CurveRow row;
  row.arrivals = arrivals;
  row.rate_fraction = fraction;
  row.deadline_heavy = deadline_heavy;
  row.summary = load::summarize(schedule, result);
  std::fprintf(stderr,
               "%-7s %.2fx%s  offered %7.1f/s  ok %5.1f%%  shed %5.1f%%  "
               "expired %5.1f%%  p50 %7.2f  p95 %7.2f  p99 %7.2f ms\n",
               load::to_string(arrivals), fraction,
               deadline_heavy ? " (deadline-heavy)" : "",
               row.summary.offered_per_sec,
               100.0 * row.summary.counts.ok_ratio(),
               100.0 * row.summary.counts.shed_rate(),
               100.0 * row.summary.counts.expired_rate(),
               row.summary.latency.p50_ms, row.summary.latency.p95_ms,
               row.summary.latency.p99_ms);
  return row;
}

void write_load_json(const std::string& path, double capacity,
                     const std::vector<CurveRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"qross-bench-load-v1\",\n");
  std::fprintf(f, "  \"workers\": %zu,\n", kWorkers);
  std::fprintf(f,
               "  \"workload\": \"mvc n=%zu da replicas=%u sweeps=%u, "
               "greedy:polite 4:1 arrivals, polite weight 4 deadline 250ms, "
               "hit_ratio 0.3\",\n",
               kModelVars, kReplicas, kSweeps);
  std::fprintf(f, "  \"capacity_jobs_per_sec\": %.1f,\n", capacity);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const auto& row = rows[k];
    const auto& s = row.summary;
    const double greedy_p95 = client_p95(s, "greedy");
    const double polite_p95 = client_p95(s, "polite");
    std::fprintf(
        f,
        "    {\"arrivals\": \"%s\", \"rate_fraction\": %.2f, "
        "\"mix\": \"%s\", "
        "\"offered_per_sec\": %.1f, \"jobs\": %zu, "
        "\"completed_per_sec\": %.1f, \"ok_ratio\": %.4f, "
        "\"shed_rate\": %.4f, \"expired_rate\": %.4f, "
        "\"cache_hits\": %zu, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"greedy_p95_ms\": %.3f, "
        "\"polite_p95_ms\": %.3f, \"polite_greedy_p95_ratio\": %.3f}%s\n",
        load::to_string(row.arrivals), row.rate_fraction,
        row.deadline_heavy ? "deadline_heavy" : "standard", s.offered_per_sec,
        s.counts.jobs, s.completed_per_sec, s.counts.ok_ratio(),
        s.counts.shed_rate(), s.counts.expired_rate(), s.counts.cache_hits,
        s.latency.p50_ms, s.latency.p95_ms, s.latency.p99_ms, greedy_p95,
        polite_p95, greedy_p95 > 0.0 ? polite_p95 / greedy_p95 : 0.0,
        k + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

// --- regression gate (bench_service_json's scraper, gating style) -----------

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  if (!file.good()) return {};
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

std::vector<std::string> extract_values(const std::string& text,
                                        const std::string& key) {
  std::vector<std::string> values;
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    while (pos < text.size() && text[pos] == ' ') ++pos;
    if (pos < text.size() && text[pos] == '"') {
      const std::size_t end = text.find('"', pos + 1);
      if (end == std::string::npos) break;
      values.push_back(text.substr(pos + 1, end - pos - 1));
      pos = end + 1;
    } else {
      std::size_t end = pos;
      while (end < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[end])) ||
              text[end] == '.' || text[end] == '-' || text[end] == 'e' ||
              text[end] == 'E' || text[end] == '+')) {
        ++end;
      }
      values.push_back(text.substr(pos, end - pos));
      pos = end;
    }
  }
  return values;
}

int check_against_baseline(const std::string& baseline_dir,
                           const std::vector<CurveRow>& fresh) try {
  const std::string path = baseline_dir + "/BENCH_load.json";
  const std::string text = slurp(path);
  if (text.empty()) {
    std::fprintf(stderr, "load gate: cannot read baseline %s\n", path.c_str());
    return 1;
  }
  const auto arrivals = extract_values(text, "arrivals");
  const auto fractions = extract_values(text, "rate_fraction");
  const auto ok_ratios = extract_values(text, "ok_ratio");
  if (arrivals.size() != fractions.size() ||
      fractions.size() != ok_ratios.size()) {
    std::fprintf(stderr, "load gate: malformed baseline %s\n", path.c_str());
    return 1;
  }
  int regressions = 0;
  int skipped = 0;
  for (const auto& row : fresh) {
    const std::string kind = load::to_string(row.arrivals);
    bool matched = false;
    for (std::size_t k = 0; k < arrivals.size(); ++k) {
      if (arrivals[k] != kind ||
          std::abs(std::stod(fractions[k]) - row.rate_fraction) > 1e-6) {
        continue;
      }
      matched = true;
      const double fresh_ok = row.summary.counts.ok_ratio();
      const double base_ok = std::stod(ok_ratios[k]);
      if (row.rate_fraction > kGatedFractionMax + 1e-9) {
        std::fprintf(stderr,
                     "load gate: %-7s %.2fx ok_ratio %.3f vs baseline %.3f "
                     "(overload row, informational)\n",
                     kind.c_str(), row.rate_fraction, fresh_ok, base_ok);
        break;
      }
      const double floor = base_ok * (1.0 - kLoadRegressionTolerance);
      const bool bad = fresh_ok < floor;
      std::fprintf(stderr,
                   "load gate: %-7s %.2fx ok_ratio %.3f vs baseline %.3f "
                   "(floor %.3f) %s\n",
                   kind.c_str(), row.rate_fraction, fresh_ok, base_ok, floor,
                   bad ? "REGRESSION" : "ok");
      if (bad) ++regressions;
      break;
    }
    if (!matched) {
      std::fprintf(stderr, "load gate: SKIPPED %s %.2fx (no baseline row)\n",
                   kind.c_str(), row.rate_fraction);
      ++skipped;
    }
  }
  if (skipped > 0) {
    std::fprintf(stderr,
                 "load gate: %d section(s) SKIPPED — update the committed "
                 "BENCH_load.json to restore gate coverage\n",
                 skipped);
  }
  return regressions;
} catch (const std::exception& e) {
  std::fprintf(stderr, "load gate: malformed baseline value in %s: %s\n",
               baseline_dir.c_str(), e.what());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = ".";
  std::string baseline_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--out-dir DIR] [--check BASELINE_DIR]\n",
                   argv[0]);
      return 2;
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);

  // Quotas tight enough that genuine overload sheds (the 2x rows), loose
  // enough that sub-capacity rows admit everything.
  service::ServiceConfig config;
  config.num_workers = kWorkers;
  config.cache_capacity = 256;
  config.max_queued_per_client = 32;
  config.max_inflight_per_client = 64;
  config.client_weights["polite"] = 4.0;
  service::SolveService svc(config);

  net::ServerConfig server_config;
  server_config.listen.push_back(*net::Endpoint::parse("tcp:127.0.0.1:0"));
  net::Server server(svc, server_config);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "bench_load: server start failed: %s\n",
                 error.c_str());
    return 1;
  }
  const auto endpoint = server.endpoints().front();

  const double capacity = measure_capacity(endpoint);
  std::fprintf(stderr, "capacity: %.1f jobs/s closed-loop over tcp "
               "(%zu workers)\n", capacity, kWorkers);

  std::vector<CurveRow> rows;
  for (const auto kind :
       {load::ArrivalKind::poisson, load::ArrivalKind::bursty}) {
    for (const double fraction : {0.25, 0.5, 1.0, 2.0}) {
      rows.push_back(run_row(endpoint, kind, fraction, capacity));
    }
  }
  // Deadline-heavy overload row at a unique rate_fraction (1.5x, so the
  // baseline matcher — keyed on arrivals + fraction — never confuses it
  // with a standard row).  Above kGatedFractionMax, hence informational.
  rows.push_back(run_row(endpoint, load::ArrivalKind::poisson, 1.5, capacity,
                         /*deadline_heavy=*/true));
  server.stop();

  write_load_json(out_dir + "/BENCH_load.json", capacity, rows);

  if (!baseline_dir.empty()) {
    const int regressions = check_against_baseline(baseline_dir, rows);
    if (regressions > 0) {
      std::fprintf(stderr, "load gate: %d regression(s) beyond %.0f%%\n",
                   regressions, 100.0 * kLoadRegressionTolerance);
      return 1;
    }
    std::fprintf(stderr, "load gate: ok\n");
  }
  return 0;
}
