// Reproduces paper Fig. 6 (appendix B): objective energy, normalised to the
// best energy discovered in the run, versus the MVC penalty weight sigma on
// a log scale — for plain Simulated Annealing ("sa") and for a noisy
// annealer ("qa": SA wrapped in the analog-control-error decorator standing
// in for the DW_2000Q).
//
// Paper workload: G(65, 0.5) random graphs, vertex weights U[0,1), averaged
// over 4 seeds.  We scale the graph to 24 vertices (single-core budget);
// the mechanism under test — penalty domination amplifying coefficient
// error — is size-independent.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>
#include <memory>

#include "common/csv.hpp"
#include "problems/mvc/mvc.hpp"
#include "solvers/analog_noise.hpp"
#include "solvers/simulated_annealer.hpp"

using namespace qross;

namespace {

constexpr std::size_t kNumVertices = 24;
constexpr double kEdgeProbability = 0.5;
constexpr std::size_t kNumSeeds = 4;

/// Best (lowest) feasible cover weight in a batch; +inf if none feasible.
double best_cover_weight(const mvc::MvcInstance& instance,
                         const qubo::SolveBatch& batch) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& result : batch.results) {
    if (instance.is_cover(result.assignment)) {
      best = std::min(best, instance.cover_weight(result.assignment));
    }
  }
  return best;
}

}  // namespace

int main() {
  std::printf("== Fig. 6: MVC energy (normalised to optimal) vs penalty weight ==\n");
  std::printf("graphs: G(%zu, %.1f), weights U[0,1), %zu seeds\n\n",
              kNumVertices, kEdgeProbability, kNumSeeds);

  const auto sa_kernel = std::make_shared<solvers::SimulatedAnnealer>();
  // "sa": classical annealer with finite-precision arithmetic.  The paper
  // attributes the classical curve's drift to floating-point error when the
  // penalty dominates; we model it as a tiny relative coefficient error
  // (the MVC coefficient magnitude is ~degree * sigma, so the absolute
  // error grows with the penalty weight while the objective signal stays
  // O(1) — precisely the mechanism appendix B describes).
  solvers::AnalogNoiseParams fp_noise;
  fp_noise.relative_precision = 5e-5;
  const auto sa =
      std::make_shared<solvers::AnalogNoiseSolver>(sa_kernel, fp_noise);
  // "qa": analog control error of a quantum annealer, orders of magnitude
  // coarser than classical floating point.
  solvers::AnalogNoiseParams analog_noise;
  analog_noise.relative_precision = 2e-3;
  const auto qa =
      std::make_shared<solvers::AnalogNoiseSolver>(sa_kernel, analog_noise);

  // Penalty weights 10^0 .. 10^4, three points per decade (paper's x-range).
  std::vector<double> sigmas;
  for (double exponent = 0.0; exponent <= 4.0 + 1e-9; exponent += 1.0 / 3.0) {
    sigmas.push_back(std::pow(10.0, exponent));
  }

  // energy[solver][sigma] accumulated over seeds, normalised per seed by
  // the optimal cover weight (we can afford the exact optimum at n = 24,
  // which is stronger than the paper's "best seen in run" normaliser).
  std::vector<std::vector<double>> normalised(2,
      std::vector<double>(sigmas.size(), 0.0));
  std::vector<std::vector<std::size_t>> feasible_counts(2,
      std::vector<std::size_t>(sigmas.size(), 0));

  for (std::size_t seed = 0; seed < kNumSeeds; ++seed) {
    const auto instance =
        mvc::generate_random_mvc(kNumVertices, kEdgeProbability, 0xF16'6 + seed);
    const double optimal = mvc::solve_exact_cover(instance).weight;
    for (std::size_t s = 0; s < sigmas.size(); ++s) {
      const auto model = instance.to_qubo(sigmas[s]);
      solvers::SolveOptions options;
      options.num_replicas = 16;
      options.num_sweeps = 300;
      options.seed = 0xE0 + seed;
      int which = 0;
      for (const solvers::SolverPtr& solver :
           {solvers::SolverPtr(sa), solvers::SolverPtr(qa)}) {
        const auto batch = solver->solve(model, options);
        const double best = best_cover_weight(instance, batch);
        if (std::isfinite(best)) {
          normalised[which][s] += best / optimal;
          feasible_counts[which][s] += 1;
        }
        ++which;
      }
    }
  }

  CsvTable table({"penalty_weight", "sa_energy_normalised",
                  "qa_energy_normalised", "sa_feasible_runs",
                  "qa_feasible_runs"});
  for (std::size_t s = 0; s < sigmas.size(); ++s) {
    const double sa_norm = feasible_counts[0][s] > 0
        ? normalised[0][s] / double(feasible_counts[0][s]) : -1.0;
    const double qa_norm = feasible_counts[1][s] > 0
        ? normalised[1][s] / double(feasible_counts[1][s]) : -1.0;
    table.add_row(std::vector<double>{sigmas[s], sa_norm, qa_norm,
                                      double(feasible_counts[0][s]),
                                      double(feasible_counts[1][s])});
  }
  table.write_pretty(std::cout);

  std::printf("\nCheck (paper Fig. 6 shape): both curves drift up as the\n"
              "penalty weight grows past the feasibility threshold (~1);\n"
              "the noisy 'qa' curve degrades at least as fast as 'sa',\n"
              "because penalty domination amplifies analog coefficient\n"
              "error relative to the objective signal.\n");
  return 0;
}
