// Design ablation (ours, motivated by DESIGN.md): how much does the graph
// feature descriptor contribute to surrogate accuracy?  Trains three
// surrogates on the same DA dataset with progressively poorer features —
// full 24-dim descriptor, distance-moments-only, and size-only — and
// compares their Pf / energy prediction error on the held-out synthetic
// test instances (ground truth measured with fresh solver sweeps).

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/csv.hpp"
#include "harness/experiments.hpp"
#include "solvers/batch_runner.hpp"
#include "surrogate/pipeline.hpp"

using namespace qross;
using namespace qross::bench;

namespace {

enum class FeatureSet { kFull, kMomentsOnly, kSizeOnly };

const char* feature_set_label(FeatureSet set) {
  switch (set) {
    case FeatureSet::kFull:
      return "full(24)";
    case FeatureSet::kMomentsOnly:
      return "moments(7)";
    case FeatureSet::kSizeOnly:
      return "size(2)";
  }
  return "?";
}

/// Masks features outside the chosen subset to zero; the standardiser then
/// treats them as constants, so they carry no information.
std::array<double, surrogate::kNumTspFeatures> mask_features(
    const std::array<double, surrogate::kNumTspFeatures>& features,
    FeatureSet set) {
  auto masked = features;
  auto keep = [&](std::size_t index) {
    if (set == FeatureSet::kFull) return true;
    if (set == FeatureSet::kMomentsOnly) {
      return index <= 6;  // n, log n, mean, std, min, max, cv
    }
    return index <= 1;  // n, log n
  };
  for (std::size_t i = 0; i < masked.size(); ++i) {
    if (!keep(i)) masked[i] = 0.0;
  }
  return masked;
}

surrogate::Dataset mask_dataset(const surrogate::Dataset& dataset,
                                FeatureSet set) {
  surrogate::Dataset masked = dataset;
  for (auto& row : masked.rows) row.features = mask_features(row.features, set);
  return masked;
}

}  // namespace

int main() {
  ExperimentConfig config = default_config();
  const Cache cache;

  std::printf("== Ablation: surrogate feature sets ==\n\n");

  const auto dataset = get_or_build_dataset(cache, SolverKind::kDa, config);

  // Ground truth on held-out instances: a fresh sweep per test instance.
  struct Truth {
    std::array<double, surrogate::kNumTspFeatures> features;
    double anchor;
    std::vector<solvers::SolverSample> samples;
  };
  std::vector<Truth> truths;
  const auto test_instances = synthetic_test_instances(config);
  const std::size_t probe_count = config.fast ? 2 : 5;
  for (std::size_t i = 0; i < std::min<std::size_t>(probe_count,
                                                    test_instances.size());
       ++i) {
    const surrogate::PreparedTspInstance prepared(test_instances[i]);
    Truth truth;
    truth.features = surrogate::extract_features(prepared.prepared());
    truth.anchor = surrogate::scale_anchor(truth.features);
    auto options = make_solve_options(SolverKind::kDa, 0xAB1 + i);
    solvers::BatchRunner runner(prepared.problem(),
                                make_solver(SolverKind::kDa), options);
    auto sweep = config.sweep;
    sweep.slope_points = 6;
    sweep.plateau_points = 1;
    truth.samples = surrogate::sweep_instance(
        runner, prepared.prepared().mean_distance(), sweep);
    truths.push_back(std::move(truth));
  }

  CsvTable table({"feature_set", "pf_mae", "energy_rel_mae", "rows"});
  for (const FeatureSet set :
       {FeatureSet::kFull, FeatureSet::kMomentsOnly, FeatureSet::kSizeOnly}) {
    const auto masked = mask_dataset(dataset, set);
    surrogate::SolverSurrogate model;
    model.train(masked);

    double pf_error = 0.0;
    double energy_error = 0.0;
    std::size_t count = 0;
    for (const auto& truth : truths) {
      const auto features = mask_features(truth.features, set);
      for (const auto& sample : truth.samples) {
        const auto prediction = model.predict(features, truth.anchor,
                                              sample.relaxation_parameter);
        pf_error += std::abs(prediction.pf - sample.stats.pf);
        // Normalise by the instance's scale anchor, not by Eavg itself:
        // on the left plateau Eavg is near zero and a per-point relative
        // error would be dominated by those denominators.
        energy_error +=
            std::abs(prediction.energy_avg - sample.stats.energy_avg) /
            truth.anchor;
        ++count;
      }
    }
    table.add_row(std::vector<std::string>{
        feature_set_label(set),
        format_double(pf_error / double(count), 4),
        format_double(energy_error / double(count), 4),
        std::to_string(masked.rows.size())});
  }
  table.write_pretty(std::cout);

  std::printf("\nCheck: the full descriptor should match or beat the reduced\n"
              "sets.  Note: on this scaled-down size range (8-14 cities, all\n"
              "instances pre-normalised to a common distance scale) much of\n"
              "the per-instance variation is already captured by size alone,\n"
              "so the reduced sets stay competitive on Pf; the descriptor's\n"
              "value grows with instance diversity (cf. Fig. 4's\n"
              "out-of-distribution setting).\n");
  return 0;
}
