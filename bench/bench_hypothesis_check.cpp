// Verifies the paper's central hypothesis (§3.1): "Optimal solutions appear
// within 0 < Pf < 1, i.e., on the slope of the Sigmoid shape."  The paper
// confirmed it on every TSPLIB instance with the Digital Annealer and every
// QAPLIB instance with simulated annealing; we check the same two
// (problem, solver) pairings on our instance families.
//
// Procedure per instance: sweep A over a log grid, record (Pf, best
// fitness) per point, and locate the *leftmost* A whose batch reaches the
// best fitness seen (within 0.5%).  Strong solvers tie at the optimum over
// a wide plateau of A values, so the leftmost near-optimal point — where
// the optimum FIRST appears as A grows — is the faithful reading of
// "optimal solutions appear within 0 < Pf < 1".  The check passes if that
// point (or a grid neighbour, absorbing batch noise) has fractional Pf.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>

#include "common/assert.hpp"
#include "common/csv.hpp"
#include "harness/experiments.hpp"
#include "problems/qap/qap.hpp"
#include "problems/tsp/generators.hpp"
#include "solvers/batch_runner.hpp"
#include "surrogate/pipeline.hpp"

using namespace qross;
using namespace qross::bench;

namespace {

struct SweepOutcome {
  double best_a = 0.0;
  double pf_at_best = -1.0;
  bool on_slope = false;  // 0 < Pf < 1 at the optimum or a grid neighbour
};

SweepOutcome sweep_and_locate(solvers::BatchRunner& runner, double a_lo,
                              double a_hi, std::size_t points) {
  std::vector<double> pf(points), fitness(points), grid(points);
  for (std::size_t k = 0; k < points; ++k) {
    const double t = static_cast<double>(k) / static_cast<double>(points - 1);
    grid[k] = a_lo * std::pow(a_hi / a_lo, t);
    const auto sample = runner.run(grid[k]);
    pf[k] = sample.stats.pf;
    fitness[k] = sample.stats.min_fitness;
  }
  SweepOutcome outcome;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < points; ++k) best = std::min(best, fitness[k]);
  if (!std::isfinite(best)) return outcome;  // nothing feasible at all
  // Leftmost grid point whose batch is within 0.5% of the best fitness.
  std::size_t best_index = points;
  for (std::size_t k = 0; k < points; ++k) {
    if (fitness[k] <= best * 1.005 + 1e-12) {
      best_index = k;
      break;
    }
  }
  QROSS_ASSERT(best_index < points);
  outcome.best_a = grid[best_index];
  outcome.pf_at_best = pf[best_index];
  auto on_slope = [&](std::size_t k) {
    return k < points && pf[k] > 0.0 && pf[k] < 1.0;
  };
  outcome.on_slope = on_slope(best_index) ||
                     (best_index > 0 && on_slope(best_index - 1)) ||
                     on_slope(best_index + 1);
  return outcome;
}

}  // namespace

int main() {
  std::printf("== Hypothesis check: optimal A lies on the Pf slope ==\n\n");
  CsvTable table({"problem", "instance", "solver", "best_A", "Pf_at_best",
                  "on_slope"});
  int total = 0, confirmed = 0;

  // TSP with the Digital Annealer (the paper's TSPLIB pairing).
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto instance = tsp::generate_uniform(11 + seed % 3, 0x44C0 + seed);
    const surrogate::PreparedTspInstance prepared(instance);
    auto options = make_solve_options(SolverKind::kDa, 0x31 + seed);
    options.num_replicas = 48;  // denser Pf resolution, as in Fig. 1
    solvers::BatchRunner runner(prepared.problem(),
                                make_solver(SolverKind::kDa), options);
    const SweepOutcome outcome = sweep_and_locate(runner, 5.0, 100.0, 20);
    table.add_row(std::vector<std::string>{
        "tsp", instance.name(), "da", format_double(outcome.best_a, 1),
        format_double(outcome.pf_at_best, 3), outcome.on_slope ? "yes" : "NO"});
    ++total;
    confirmed += outcome.on_slope ? 1 : 0;
  }

  // QAP with simulated annealing (the paper's QAPLIB pairing).
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto instance = qap::generate_random_qap(7 + seed % 3, 0x9A7 + seed);
    const auto problem = qap::build_qap_problem(instance);
    auto options = make_solve_options(SolverKind::kSa, 0x32 + seed);
    options.num_replicas = 48;
    solvers::BatchRunner runner(problem, make_solver(SolverKind::kSa),
                                options);
    // QAP objective coefficients are products flow*distance (~O(100)), so
    // the useful A range sits higher than TSP's.
    const SweepOutcome outcome = sweep_and_locate(runner, 20.0, 4000.0, 20);
    table.add_row(std::vector<std::string>{
        "qap", instance.name(), "sa", format_double(outcome.best_a, 1),
        format_double(outcome.pf_at_best, 3), outcome.on_slope ? "yes" : "NO"});
    ++total;
    confirmed += outcome.on_slope ? 1 : 0;
  }

  table.write_pretty(std::cout);
  std::printf("\nconfirmed on %d / %d instances\n", confirmed, total);
  std::printf("Check: the hypothesis should hold on (nearly) every instance,\n"
              "matching the paper's TSPLIB/DA and QAPLIB/SA validation.\n");
  return 0;
}
