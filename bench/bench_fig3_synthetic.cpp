// Reproduces paper Fig. 3: normalised optimality gap versus number of
// trials on the synthetic test split, Digital Annealer backend.
//
// Methods: QROSS (composed strategy: MFS, PBS 80%/20%, then OFS), TPE,
// GP-based Bayesian Optimisation (5 warm-up draws), and Random Search, all
// over A in [1, 100].  Expected shape: the QROSS curve starts well below
// the baselines (its first trials need no solver feedback) and stays at or
// below them through trial 20.

#include <cstdio>
#include <iostream>

#include "common/csv.hpp"
#include "harness/experiments.hpp"

using namespace qross;
using namespace qross::bench;

int main() {
  const ExperimentConfig config = default_config();
  const Cache cache;

  std::printf("== Fig. 3: optimality gap vs trials (synthetic, DA) ==\n");
  std::printf("test instances: %zu, trials: %zu, A in [%.0f, %.0f]%s\n\n",
              config.test_instances, config.trials, config.a_min, config.a_max,
              config.fast ? " [FAST MODE]" : "");

  const Method methods[] = {Method::kQross, Method::kTpe, Method::kBo,
                            Method::kRandom};
  std::vector<GapSeries> series;
  for (const Method method : methods) {
    series.push_back(get_or_run_comparison(cache, method, SolverKind::kDa,
                                           SolverKind::kDa, kSyntheticTestSet,
                                           config));
  }

  CsvTable table({"trial", "qross", "qross_ci", "tpe", "tpe_ci", "bo",
                  "bo_ci", "random", "random_ci"});
  for (std::size_t t = 0; t < config.trials; ++t) {
    table.add_row(std::vector<double>{
        static_cast<double>(t + 1), series[0].mean[t], series[0].ci95[t],
        series[1].mean[t], series[1].ci95[t], series[2].mean[t],
        series[2].ci95[t], series[3].mean[t], series[3].ci95[t]});
  }
  table.write_pretty(std::cout);

  std::printf("\nCheck: QROSS lowest at trial 1 and still lowest (or tied)\n"
              "at trial %zu; every curve is non-increasing.\n", config.trials);
  return 0;
}
