// Reproduces paper Fig. 4: normalised optimality gap versus number of
// trials on the out-of-distribution "real-world" (TSPLIB-like) set, DA
// backend.  The surrogate is trained on the synthetic split only — this is
// the paper's out-of-distribution generalisation experiment (§5.2): the
// evaluation instances are larger (15-20 cities vs 8-14 training) and have
// clustered geometry instead of uniform/exponential.

#include <cstdio>
#include <iostream>

#include "common/csv.hpp"
#include "harness/experiments.hpp"
#include "problems/tsp/testset.hpp"

using namespace qross;
using namespace qross::bench;

int main() {
  const ExperimentConfig config = default_config();
  const Cache cache;

  const auto instances = tsplib_test_instances(config);
  std::printf("== Fig. 4: optimality gap vs trials (TSPLIB-like, DA) ==\n");
  std::printf("instances:");
  for (const auto& inst : instances) {
    std::printf(" %s(n=%zu)", inst.name().c_str(), inst.num_cities());
  }
  std::printf("\ntrials: %zu%s\n\n", config.trials,
              config.fast ? " [FAST MODE]" : "");

  const Method methods[] = {Method::kQross, Method::kTpe, Method::kBo,
                            Method::kRandom};
  std::vector<GapSeries> series;
  for (const Method method : methods) {
    series.push_back(get_or_run_comparison(cache, method, SolverKind::kDa,
                                           SolverKind::kDa, kTsplibTestSet,
                                           config));
  }

  CsvTable table({"trial", "qross", "qross_ci", "tpe", "tpe_ci", "bo",
                  "bo_ci", "random", "random_ci"});
  for (std::size_t t = 0; t < config.trials; ++t) {
    table.add_row(std::vector<double>{
        static_cast<double>(t + 1), series[0].mean[t], series[0].ci95[t],
        series[1].mean[t], series[1].ci95[t], series[2].mean[t],
        series[2].ci95[t], series[3].mean[t], series[3].ci95[t]});
  }
  table.write_pretty(std::cout);

  std::printf("\nCheck: QROSS leads from the first (offline) trials on this\n"
              "out-of-distribution set; gaps are larger than Fig. 3's\n"
              "in-distribution gaps for every method.\n");
  return 0;
}
