// Micro-benchmarks (google-benchmark): QUBO evaluation and solver kernel
// throughput, plus surrogate inference latency.  Backs the paper's premise
// that "an evaluation on the solver surrogate is much cheaper/faster than
// a call to a QUBO solver" (§1) with concrete numbers on this machine.

#include <benchmark/benchmark.h>

#include <cmath>

#include <sstream>

#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "harness/dense_baseline.hpp"
#include "problems/mvc/mvc.hpp"
#include "problems/tsp/formulation.hpp"
#include "problems/tsp/generators.hpp"
#include "qross/min_fitness.hpp"
#include "qubo/incremental.hpp"
#include "qubo/replica_block.hpp"
#include "qubo/simd.hpp"
#include "qubo/sparse.hpp"
#include "solvers/digital_annealer.hpp"
#include "solvers/qbsolv.hpp"
#include "solvers/simulated_annealer.hpp"
#include "surrogate/dataset.hpp"
#include "surrogate/features.hpp"
#include "surrogate/model.hpp"
#include "surrogate/pipeline.hpp"

namespace {

using namespace qross;

qubo::QuboModel make_tsp_qubo(std::size_t cities) {
  const auto instance = tsp::generate_uniform(cities, 0xBE);
  const auto problem = tsp::build_tsp_problem(instance);
  return problem.to_qubo(25.0);
}

qubo::QuboModel make_mvc_qubo(std::size_t vertices) {
  const auto instance = mvc::generate_random_mvc(vertices, 0.06, 0xBEEF);
  return instance.to_qubo(2.0);
}

void report_sparsity(benchmark::State& state, const qubo::QuboModel& model) {
  const auto adj = qubo::SparseAdjacency::build(model);
  state.counters["n"] = static_cast<double>(model.num_vars());
  state.counters["nnz"] = static_cast<double>(adj->num_nonzeros());
  state.counters["density"] = adj->density();
}

// The dense baseline evaluator lives in harness/dense_baseline.hpp, shared
// with bench_service_json (the machine-readable perf tracker).
using bench::DenseEvaluator;

void BM_QuboFullEnergy(benchmark::State& state) {
  const auto model = make_tsp_qubo(static_cast<std::size_t>(state.range(0)));
  Rng rng(1);
  qubo::Bits x(model.num_vars());
  for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.energy(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  report_sparsity(state, model);
}
BENCHMARK(BM_QuboFullEnergy)->Arg(8)->Arg(12)->Arg(16);

/// Sparse counterpart of BM_QuboFullEnergy — also the cost of the energy
/// rescore qbsolv runs per replica (formerly a dense model.energy call).
void BM_SparseFullEnergy(benchmark::State& state) {
  const auto model = make_tsp_qubo(static_cast<std::size_t>(state.range(0)));
  const auto adj = qubo::SparseAdjacency::build(model);
  Rng rng(1);
  qubo::Bits x(model.num_vars());
  for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(adj->energy(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  report_sparsity(state, model);
}
BENCHMARK(BM_SparseFullEnergy)->Arg(8)->Arg(12)->Arg(16);

void BM_IncrementalFlip(benchmark::State& state) {
  const auto model = make_tsp_qubo(static_cast<std::size_t>(state.range(0)));
  qubo::IncrementalEvaluator eval(qubo::SparseAdjacency::build(model));
  Rng rng(2);
  qubo::Bits x(model.num_vars());
  for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
  eval.set_state(x);
  std::size_t i = 0;
  for (auto _ : state) {
    eval.apply_flip(i);
    i = (i + 17) % model.num_vars();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  report_sparsity(state, model);
}
BENCHMARK(BM_IncrementalFlip)->Arg(8)->Arg(12)->Arg(16);

// --- dense vs sparse sweep throughput --------------------------------------
//
// One "sweep" applies a flip at every variable in turn — the unit of work
// all solver kernels are built from.  Dense is the seed's per-replica
// matrix-copy evaluator; sparse is the shared-CSR IncrementalEvaluator.
// items_processed counts flips, so compare items_per_second directly.

template <typename Evaluator, typename Model>
void run_sweep_bench(benchmark::State& state, const Model& model,
                     Evaluator& eval) {
  const std::size_t n = model.num_vars();
  Rng rng(3);
  qubo::Bits x(n);
  for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
  eval.set_state(x);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) eval.apply_flip(i);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * n));
  report_sparsity(state, model);
}

void BM_SweepDenseTsp(benchmark::State& state) {
  const auto model = make_tsp_qubo(static_cast<std::size_t>(state.range(0)));
  DenseEvaluator eval(model);
  run_sweep_bench(state, model, eval);
}
BENCHMARK(BM_SweepDenseTsp)->Arg(8)->Arg(12)->Arg(16);

void BM_SweepSparseTsp(benchmark::State& state) {
  const auto model = make_tsp_qubo(static_cast<std::size_t>(state.range(0)));
  qubo::IncrementalEvaluator eval(qubo::SparseAdjacency::build(model));
  run_sweep_bench(state, model, eval);
}
BENCHMARK(BM_SweepSparseTsp)->Arg(8)->Arg(12)->Arg(16);

void BM_SweepDenseMvc(benchmark::State& state) {
  const auto model = make_mvc_qubo(static_cast<std::size_t>(state.range(0)));
  DenseEvaluator eval(model);
  run_sweep_bench(state, model, eval);
}
BENCHMARK(BM_SweepDenseMvc)->Arg(128)->Arg(256)->Arg(512);

void BM_SweepSparseMvc(benchmark::State& state) {
  const auto model = make_mvc_qubo(static_cast<std::size_t>(state.range(0)));
  qubo::IncrementalEvaluator eval(qubo::SparseAdjacency::build(model));
  run_sweep_bench(state, model, eval);
}
BENCHMARK(BM_SweepSparseMvc)->Arg(128)->Arg(256)->Arg(512);

// --- blocked multi-replica sweep throughput (SIMD evaluation core) ---------
//
// The replica-block counterpart of BM_SweepSparse*: one forced-apply sweep
// advances 8 replicas at once over the shared CSR rows.  items_processed
// counts flips ACROSS lanes, so items_per_second divided by the matching
// BM_SweepSparse* number is the per-flip speedup of blocking (the ≥2×
// ISSUE 6 target on MVC n=512 compares BM_BlockSweepAvx2Mvc/512 against
// BM_SweepSparseMvc/512).

void run_block_sweep_bench(benchmark::State& state,
                           const qubo::QuboModel& model, qubo::SimdKind kind) {
  constexpr std::size_t kLanes = 8;
  const auto adj = qubo::SparseAdjacency::build(model);
  qubo::ReplicaBlockEvaluator eval(adj, kLanes, kind);
  if (eval.kind() != kind) {
    state.SkipWithError("requested SIMD arm unavailable on this CPU");
    return;
  }
  const std::size_t n = model.num_vars();
  Rng rng(3);
  qubo::Bits x(n);
  for (std::size_t l = 0; l < kLanes; ++l) {
    for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
    eval.set_state(l, x);
  }
  AlignedVector<double> deltas(eval.lane_stride(), 0.0);
  std::vector<std::uint64_t> accept(eval.mask_words(), 0);
  for (std::size_t l = 0; l < kLanes; ++l) {
    accept[l / 64] |= std::uint64_t{1} << (l % 64);
  }
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      eval.compute_flip_deltas(i, deltas.data());
      eval.apply_flips(i, accept.data(), deltas.data());
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * n * kLanes));
  state.counters["lanes"] = static_cast<double>(kLanes);
  report_sparsity(state, model);
}

void BM_BlockSweepScalarMvc(benchmark::State& state) {
  run_block_sweep_bench(state,
                        make_mvc_qubo(static_cast<std::size_t>(state.range(0))),
                        qubo::SimdKind::kScalar);
}
BENCHMARK(BM_BlockSweepScalarMvc)->Arg(128)->Arg(256)->Arg(512);

void BM_BlockSweepAvx2Mvc(benchmark::State& state) {
  run_block_sweep_bench(state,
                        make_mvc_qubo(static_cast<std::size_t>(state.range(0))),
                        qubo::SimdKind::kAvx2);
}
BENCHMARK(BM_BlockSweepAvx2Mvc)->Arg(128)->Arg(256)->Arg(512);

void BM_BlockSweepScalarTsp(benchmark::State& state) {
  run_block_sweep_bench(state,
                        make_tsp_qubo(static_cast<std::size_t>(state.range(0))),
                        qubo::SimdKind::kScalar);
}
BENCHMARK(BM_BlockSweepScalarTsp)->Arg(8)->Arg(12)->Arg(16);

void BM_BlockSweepAvx2Tsp(benchmark::State& state) {
  run_block_sweep_bench(state,
                        make_tsp_qubo(static_cast<std::size_t>(state.range(0))),
                        qubo::SimdKind::kAvx2);
}
BENCHMARK(BM_BlockSweepAvx2Tsp)->Arg(8)->Arg(12)->Arg(16);

void BM_SimulatedAnnealerCall(benchmark::State& state) {
  const auto model = make_tsp_qubo(static_cast<std::size_t>(state.range(0)));
  const solvers::SimulatedAnnealer solver;
  solvers::SolveOptions options;
  options.num_replicas = 4;
  options.num_sweeps = 50;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    options.seed = ++seed;
    benchmark::DoNotOptimize(solver.solve(model, options));
  }
}
BENCHMARK(BM_SimulatedAnnealerCall)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_DigitalAnnealerCall(benchmark::State& state) {
  const auto model = make_tsp_qubo(static_cast<std::size_t>(state.range(0)));
  const solvers::DigitalAnnealer solver;
  solvers::SolveOptions options;
  options.num_replicas = 4;
  options.num_sweeps = 50;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    options.seed = ++seed;
    benchmark::DoNotOptimize(solver.solve(model, options));
  }
}
BENCHMARK(BM_DigitalAnnealerCall)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);

/// Full qbsolv call on an MVC instance — the hybrid whose per-replica
/// energy rescore used to be a dense O(n^2) model.energy.
void BM_QbsolvCallMvc(benchmark::State& state) {
  const auto model = make_mvc_qubo(static_cast<std::size_t>(state.range(0)));
  const solvers::Qbsolv solver;
  solvers::SolveOptions options;
  options.num_replicas = 4;
  options.num_sweeps = 20;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    options.seed = ++seed;
    benchmark::DoNotOptimize(solver.solve(model, options));
  }
  report_sparsity(state, model);
}
BENCHMARK(BM_QbsolvCallMvc)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_FeatureExtraction(benchmark::State& state) {
  const auto instance =
      tsp::generate_uniform(static_cast<std::size_t>(state.range(0)), 0xFE);
  for (auto _ : state) {
    benchmark::DoNotOptimize(surrogate::extract_features(instance));
  }
}
BENCHMARK(BM_FeatureExtraction)->Arg(10)->Arg(20);

/// Surrogate inference vs a solver call — the paper's core speed claim.
void BM_SurrogatePredict(benchmark::State& state) {
  // Train a tiny surrogate once, outside the timed region.
  static const surrogate::SolverSurrogate* model = [] {
    surrogate::Dataset dataset;
    Rng rng(5);
    for (std::size_t id = 0; id < 6; ++id) {
      const auto inst = tsp::generate_uniform(8, id);
      const surrogate::PreparedTspInstance prepared(inst);
      surrogate::DatasetRow row;
      row.features = surrogate::extract_features(prepared.prepared());
      row.scale_anchor = surrogate::scale_anchor(row.features);
      for (int k = 0; k < 12; ++k) {
        row.instance_id = id;
        row.relaxation_parameter = std::exp(rng.uniform(0.0, 5.0));
        row.pf = rng.uniform();
        row.energy_avg = row.scale_anchor * rng.uniform(0.9, 1.4);
        row.energy_std = row.scale_anchor * 0.05;
        dataset.rows.push_back(row);
      }
    }
    surrogate::SurrogateConfig config;
    config.pf_training.max_epochs = 50;
    config.pf_training.patience = 50;
    config.energy_training.max_epochs = 50;
    auto* m = new surrogate::SolverSurrogate(config);
    m->train(dataset);
    return m;
  }();
  const auto instance = tsp::generate_uniform(10, 0x51);
  const surrogate::PreparedTspInstance prepared(instance);
  const auto features = surrogate::extract_features(prepared.prepared());
  const double anchor = surrogate::scale_anchor(features);
  double a = 1.0;
  for (auto _ : state) {
    a = a > 90.0 ? 1.0 : a + 1.0;
    benchmark::DoNotOptimize(model->predict(features, anchor, a));
  }
}
BENCHMARK(BM_SurrogatePredict);

void BM_ExpectedMinFitness(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::expected_min_fitness(0.4, 100.0, 12.0, 64));
  }
}
BENCHMARK(BM_ExpectedMinFitness);

}  // namespace

BENCHMARK_MAIN();
