#include "harness/experiments.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "problems/tsp/generators.hpp"
#include "problems/tsp/heuristics.hpp"
#include "problems/tsp/testset.hpp"
#include "qross/session.hpp"
#include "qross/strategies.hpp"
#include "solvers/digital_annealer.hpp"
#include "solvers/qbsolv.hpp"
#include "solvers/simulated_annealer.hpp"
#include "surrogate/pipeline.hpp"
#include "tuning/bayes_opt.hpp"
#include "tuning/random_search.hpp"
#include "tuning/tpe.hpp"

namespace qross::bench {

std::string solver_label(SolverKind kind) {
  switch (kind) {
    case SolverKind::kDa:
      return "da";
    case SolverKind::kSa:
      return "sa";
    case SolverKind::kQbsolv:
      return "qbsolv";
  }
  QROSS_ASSERT_MSG(false, "unknown solver kind");
  return {};
}

std::string method_label(Method method) {
  switch (method) {
    case Method::kQross:
      return "qross";
    case Method::kTpe:
      return "tpe";
    case Method::kBo:
      return "bo";
    case Method::kRandom:
      return "random";
  }
  QROSS_ASSERT_MSG(false, "unknown method");
  return {};
}

ExperimentConfig default_config() {
  ExperimentConfig config;
  if (const char* env = std::getenv("QROSS_FAST");
      env != nullptr && env[0] == '1') {
    config.fast = true;
    config.train_instances = 12;
    config.test_instances = 4;
    config.trials = 8;
    config.sweep.slope_points = 5;
    config.sweep.plateau_points = 1;
  }
  return config;
}

solvers::SolverPtr make_solver(SolverKind kind) {
  switch (kind) {
    case SolverKind::kDa:
      return std::make_shared<solvers::DigitalAnnealer>();
    case SolverKind::kSa:
      return std::make_shared<solvers::SimulatedAnnealer>();
    case SolverKind::kQbsolv: {
      // Weakened relative to the library default so the hybrid keeps a
      // stochastic Pf transition on benchmark-sized instances (the
      // full-strength solver turns Pf into a step function; see DESIGN.md).
      solvers::QbsolvParams params;
      params.num_rounds = 1;
      params.subsolver_sweeps = 20;
      return std::make_shared<solvers::Qbsolv>(params);
    }
  }
  QROSS_ASSERT_MSG(false, "unknown solver kind");
  return nullptr;
}

solvers::SolveOptions make_solve_options(SolverKind kind, std::uint64_t seed) {
  solvers::SolveOptions options;
  options.seed = seed;
  switch (kind) {
    case SolverKind::kDa:
      options.num_replicas = 16;  // paper uses B = 128 on DA hardware
      options.num_sweeps = 60;
      break;
    case SolverKind::kSa:
      options.num_replicas = 16;
      options.num_sweeps = 200;
      break;
    case SolverKind::kQbsolv:
      options.num_replicas = 8;
      options.num_sweeps = 20;
      break;
  }
  return options;
}

std::vector<tsp::TspInstance> synthetic_train_instances(
    const ExperimentConfig& config) {
  return tsp::generate_synthetic_dataset(config.train_instances,
                                         config.min_cities, config.max_cities,
                                         config.dataset_seed);
}

std::vector<tsp::TspInstance> synthetic_test_instances(
    const ExperimentConfig& config) {
  // Disjoint seed stream from the training split.
  return tsp::generate_synthetic_dataset(
      config.test_instances, config.min_cities, config.max_cities,
      derive_seed(config.dataset_seed, 0x7e57));
}

std::vector<tsp::TspInstance> tsplib_test_instances(
    const ExperimentConfig& config) {
  auto instances = tsp::tsplib_like_testset();
  if (config.fast && instances.size() > 4) {
    instances.erase(instances.begin() + 4, instances.end());
  }
  return instances;
}

surrogate::Dataset get_or_build_dataset(const Cache& cache, SolverKind kind,
                                        const ExperimentConfig& config) {
  const std::string key = "dataset_" + solver_label(kind) +
                          (config.fast ? "_fast" : "") + ".csv";
  if (const auto cached = cache.read(key); cached.has_value()) {
    std::istringstream ss(*cached);
    return surrogate::Dataset::load_csv(ss);
  }
  std::fprintf(stderr, "[bench] building %s training dataset (%zu instances)\n",
               solver_label(kind).c_str(), config.train_instances);
  const auto instances = synthetic_train_instances(config);
  const auto dataset =
      surrogate::build_dataset(instances, make_solver(kind),
                               make_solve_options(kind, 0xDA7A), config.sweep,
                               /*verbose=*/true);
  std::ostringstream out;
  dataset.save_csv(out);
  cache.write(key, out.str());
  return dataset;
}

surrogate::SolverSurrogate get_or_train_surrogate(
    const Cache& cache, SolverKind kind, const ExperimentConfig& config) {
  const std::string key = "surrogate_" + solver_label(kind) +
                          (config.fast ? "_fast" : "") + ".txt";
  if (const auto cached = cache.read(key); cached.has_value()) {
    std::istringstream ss(*cached);
    return surrogate::SolverSurrogate::load(ss);
  }
  const auto dataset = get_or_build_dataset(cache, kind, config);
  std::fprintf(stderr, "[bench] training %s surrogate on %zu rows\n",
               solver_label(kind).c_str(), dataset.rows.size());
  surrogate::SolverSurrogate surrogate;
  surrogate.train(dataset);
  std::ostringstream out;
  surrogate.save(out);
  cache.write(key, out.str());
  return surrogate;
}

std::vector<double> run_method_on_instance(
    Method method, const tsp::TspInstance& instance,
    const surrogate::SolverSurrogate* surrogate, SolverKind solver_kind,
    const ExperimentConfig& config, std::uint64_t seed) {
  const surrogate::PreparedTspInstance prepared(instance);
  const auto features = surrogate::extract_features(prepared.prepared());
  const double anchor = surrogate::scale_anchor(features);
  const double reference = tsp::reference_solution(instance).length;
  QROSS_ASSERT(reference > 0.0);

  auto options = make_solve_options(solver_kind, derive_seed(seed, 0xca11));
  solvers::BatchRunner runner(prepared.problem(), make_solver(solver_kind),
                              options);

  core::ProposeFn propose;
  core::ObserveFn observe;

  // Strategy / tuner state lives for the duration of the loop.
  core::ComposedStrategy strategy(derive_seed(seed, 1));
  core::StrategyContext context;
  std::unique_ptr<tuning::Tuner> tuner;
  // Baselines see the batch's best fitness, or this finite stand-in when
  // the whole batch was infeasible (≈ "twice a random-ish tour").
  const double infeasible_value = 4.0 * anchor;

  if (method == Method::kQross) {
    QROSS_REQUIRE(surrogate != nullptr, "QROSS needs a surrogate");
    context.surrogate = surrogate;
    context.features = features;
    context.anchor = anchor;
    context.a_min = config.a_min;
    context.a_max = config.a_max;
    context.batch_size = options.num_replicas;
    propose = [&strategy, &context] { return strategy.propose(context); };
    observe = [&strategy](const solvers::SolverSample& sample) {
      strategy.observe(sample);
    };
  } else {
    switch (method) {
      case Method::kTpe:
        tuner = std::make_unique<tuning::TpeTuner>(config.a_min, config.a_max,
                                                   derive_seed(seed, 2));
        break;
      case Method::kBo:
        tuner = std::make_unique<tuning::BayesOptTuner>(
            config.a_min, config.a_max, derive_seed(seed, 3));
        break;
      case Method::kRandom:
        tuner = std::make_unique<tuning::RandomSearch>(
            config.a_min, config.a_max, derive_seed(seed, 4));
        break;
      default:
        QROSS_ASSERT_MSG(false, "unhandled method");
    }
    auto* tuner_ptr = tuner.get();
    propose = [tuner_ptr] { return tuner_ptr->propose(); };
    observe = [tuner_ptr, infeasible_value](const solvers::SolverSample& s) {
      tuner_ptr->observe({s.relaxation_parameter,
                          tuning::finite_objective(s.stats.min_fitness,
                                                   infeasible_value)});
    };
  }

  const core::TuningResult result =
      core::run_tuning_loop(runner, config.trials, propose, observe);

  std::vector<double> gaps;
  gaps.reserve(result.best_fitness.size());
  for (double best : result.best_fitness) {
    if (std::isfinite(best)) {
      const double original = prepared.to_original_length(best);
      gaps.push_back(std::max(original / reference - 1.0, 0.0));
    } else {
      gaps.push_back(config.infeasible_gap);
    }
  }
  return gaps;
}

std::string GapSeries::to_csv() const {
  std::ostringstream out;
  out.precision(17);
  out << "trial,mean_gap,ci95\n";
  for (std::size_t t = 0; t < mean.size(); ++t) {
    out << (t + 1) << ',' << mean[t] << ',' << ci95[t] << "\n";
  }
  return out.str();
}

GapSeries GapSeries::from_csv(const std::string& text) {
  GapSeries series;
  std::istringstream ss(text);
  std::string line;
  QROSS_REQUIRE(static_cast<bool>(std::getline(ss, line)), "empty series CSV");
  while (std::getline(ss, line)) {
    if (line.empty()) continue;
    std::size_t trial = 0;
    double mean = 0.0, ci = 0.0;
    char comma = 0;
    std::istringstream row(line);
    QROSS_REQUIRE(
        static_cast<bool>(row >> trial >> comma >> mean >> comma >> ci),
        "bad series row");
    series.mean.push_back(mean);
    series.ci95.push_back(ci);
  }
  return series;
}

GapSeries get_or_run_comparison(const Cache& cache, Method method,
                                SolverKind surrogate_kind,
                                SolverKind solver_kind,
                                const std::string& instance_set,
                                const ExperimentConfig& config) {
  std::string key = "traj_" + method_label(method) + "_" +
                    solver_label(solver_kind) + "_" + instance_set;
  if (method == Method::kQross && surrogate_kind != solver_kind) {
    key += "_xsurr-" + solver_label(surrogate_kind);
  }
  key += (config.fast ? "_fast" : "") + std::string(".csv");
  if (const auto cached = cache.read(key); cached.has_value()) {
    return GapSeries::from_csv(*cached);
  }

  std::vector<tsp::TspInstance> instances;
  if (instance_set == kSyntheticTestSet) {
    instances = synthetic_test_instances(config);
  } else if (instance_set == kTsplibTestSet) {
    instances = tsplib_test_instances(config);
  } else {
    QROSS_REQUIRE(false, "unknown instance set: " + instance_set);
  }

  surrogate::SolverSurrogate surrogate;
  if (method == Method::kQross) {
    surrogate = get_or_train_surrogate(cache, surrogate_kind, config);
  }

  std::fprintf(stderr, "[bench] running %s on %s/%s (%zu instances x %zu trials)\n",
               method_label(method).c_str(), solver_label(solver_kind).c_str(),
               instance_set.c_str(), instances.size(), config.trials);

  std::vector<std::vector<double>> per_instance;
  per_instance.reserve(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const std::uint64_t seed =
        derive_seed(0xbe7c, (static_cast<std::uint64_t>(method) << 32) |
                                (static_cast<std::uint64_t>(solver_kind) << 16) |
                                i);
    per_instance.push_back(run_method_on_instance(
        method, instances[i],
        method == Method::kQross ? &surrogate : nullptr, solver_kind, config,
        seed));
  }

  GapSeries series;
  series.mean.resize(config.trials, 0.0);
  series.ci95.resize(config.trials, 0.0);
  const double n = static_cast<double>(per_instance.size());
  for (std::size_t t = 0; t < config.trials; ++t) {
    double sum = 0.0;
    for (const auto& gaps : per_instance) sum += gaps[t];
    const double mean = sum / n;
    double var = 0.0;
    for (const auto& gaps : per_instance) {
      var += (gaps[t] - mean) * (gaps[t] - mean);
    }
    var = per_instance.size() > 1 ? var / (n - 1.0) : 0.0;
    series.mean[t] = mean;
    series.ci95[t] = 1.96 * std::sqrt(var / n);
  }
  cache.write(key, series.to_csv());
  return series;
}

}  // namespace qross::bench
