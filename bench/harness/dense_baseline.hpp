#pragma once

// The seed's dense evaluator (symmetrised n x n matrix copied per replica,
// O(n) apply_flip): kept as the baseline the sparse CSR path is measured
// against, shared by bench_micro_perf and bench_service_json.

#include <cstddef>
#include <vector>

#include "qubo/model.hpp"

namespace qross::bench {

class DenseEvaluator {
 public:
  explicit DenseEvaluator(const qubo::QuboModel& model)
      : n_(model.num_vars()),
        offset_(model.offset()),
        weights_(n_ * n_, 0.0),
        x_(n_, 0),
        fields_(n_, 0.0) {
    for (std::size_t i = 0; i < n_; ++i) {
      weights_[i * n_ + i] = model.linear(i);
      for (std::size_t j = i + 1; j < n_; ++j) {
        const double w = model.coefficient(i, j);
        weights_[i * n_ + j] = w;
        weights_[j * n_ + i] = w;
      }
    }
    set_state(x_);
  }

  void set_state(const qubo::Bits& x) {
    x_ = x;
    energy_ = offset_;
    for (std::size_t i = 0; i < n_; ++i) {
      const double* row = weights_.data() + i * n_;
      double field = row[i];
      for (std::size_t j = 0; j < n_; ++j) {
        if (j != i && x_[j] != 0) field += row[j];
      }
      fields_[i] = field;
      if (x_[i] != 0) {
        energy_ += row[i];
        for (std::size_t j = i + 1; j < n_; ++j) {
          if (x_[j] != 0) energy_ += row[j];
        }
      }
    }
  }

  double flip_delta(std::size_t i) const {
    return x_[i] == 0 ? fields_[i] : -fields_[i];
  }

  void apply_flip(std::size_t i) {
    energy_ += flip_delta(i);
    const double sign = x_[i] == 0 ? 1.0 : -1.0;
    x_[i] ^= 1;
    const double* row = weights_.data() + i * n_;
    for (std::size_t j = 0; j < n_; ++j) {
      if (j != i) fields_[j] += sign * row[j];
    }
  }

  double energy() const { return energy_; }

 private:
  std::size_t n_;
  double offset_;
  std::vector<double> weights_;
  qubo::Bits x_;
  std::vector<double> fields_;
  double energy_ = 0.0;
};

}  // namespace qross::bench
