#pragma once

// File-backed artifact cache for the benchmark harness.
//
// Datasets, trained surrogates, and gap trajectories are expensive to
// regenerate (they require thousands of solver calls), so every bench
// binary shares them through this cache.  The cache directory defaults to
// ./qross_cache and can be redirected with QROSS_CACHE_DIR.  Delete the
// directory to force full regeneration.

#include <optional>
#include <string>

namespace qross::bench {

class Cache {
 public:
  /// Uses QROSS_CACHE_DIR or "qross_cache"; creates the directory.
  Cache();
  explicit Cache(std::string directory);

  const std::string& directory() const { return directory_; }

  /// Filesystem path for a key (keys are sanitised into file names).
  std::string path(const std::string& key) const;

  bool has(const std::string& key) const;
  std::optional<std::string> read(const std::string& key) const;
  void write(const std::string& key, const std::string& content) const;

 private:
  std::string directory_;
};

}  // namespace qross::bench
