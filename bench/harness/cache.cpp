#include "harness/cache.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"

namespace qross::bench {

namespace {

std::string default_directory() {
  if (const char* env = std::getenv("QROSS_CACHE_DIR"); env != nullptr) {
    return env;
  }
  return "qross_cache";
}

std::string sanitize(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

Cache::Cache() : Cache(default_directory()) {}

Cache::Cache(std::string directory) : directory_(std::move(directory)) {
  std::filesystem::create_directories(directory_);
}

std::string Cache::path(const std::string& key) const {
  return directory_ + "/" + sanitize(key);
}

bool Cache::has(const std::string& key) const {
  return std::filesystem::exists(path(key));
}

std::optional<std::string> Cache::read(const std::string& key) const {
  std::ifstream file(path(key), std::ios::binary);
  if (!file.good()) return std::nullopt;
  std::ostringstream ss;
  ss << file.rdbuf();
  return ss.str();
}

void Cache::write(const std::string& key, const std::string& content) const {
  // Write-then-rename keeps readers from seeing half-written artifacts.
  const std::string final_path = path(key);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream file(tmp_path, std::ios::binary | std::ios::trunc);
    QROSS_REQUIRE(file.good(), "cannot write cache file: " + tmp_path);
    file << content;
  }
  std::filesystem::rename(tmp_path, final_path);
}

}  // namespace qross::bench
