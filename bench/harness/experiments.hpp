#pragma once

// Shared experiment machinery for the benchmark binaries: solver
// construction with per-experiment budgets, dataset/surrogate caching, the
// tuning-comparison loop, and gap-trajectory aggregation.
//
// Every knob that differs from the paper is scaled down for single-core
// execution; EXPERIMENTS.md records the mapping.  Set QROSS_FAST=1 to run a
// further-reduced smoke version of every experiment.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/cache.hpp"
#include "problems/tsp/instance.hpp"
#include "solvers/solver.hpp"
#include "surrogate/dataset.hpp"
#include "surrogate/model.hpp"

namespace qross::bench {

enum class SolverKind { kDa, kSa, kQbsolv };
enum class Method { kQross, kTpe, kBo, kRandom };

std::string solver_label(SolverKind kind);
std::string method_label(Method method);

struct ExperimentConfig {
  // Synthetic dataset (paper: 300 instances of 20-30 cities, 270/30 split).
  std::size_t train_instances = 40;
  std::size_t test_instances = 12;
  std::size_t min_cities = 8;
  std::size_t max_cities = 14;
  std::uint64_t dataset_seed = 0xD5;

  // Relaxation-parameter search box (paper §5.1: A in [1, 100]).
  double a_min = 1.0;
  double a_max = 100.0;

  // Tuning comparison (paper: first 20 trials).
  std::size_t trials = 20;

  /// Normalised gap recorded while no feasible solution has been found yet.
  double infeasible_gap = 1.0;

  /// Dataset-generation sweep (per instance).
  surrogate::SweepConfig sweep;

  bool fast = false;

  ExperimentConfig() {
    sweep.slope_points = 8;
    sweep.plateau_points = 2;
    sweep.bisection_steps = 4;
  }
};

/// Default config, honouring QROSS_FAST=1 (fewer instances and trials).
ExperimentConfig default_config();

/// Solver instance for a kind (bench-calibrated parameters; see DESIGN.md).
solvers::SolverPtr make_solver(SolverKind kind);

/// Per-kind solve budgets (batch size B and sweeps), independent of size.
solvers::SolveOptions make_solve_options(SolverKind kind,
                                         std::uint64_t seed = 1);

/// Synthetic instance splits (train and held-out test).
std::vector<tsp::TspInstance> synthetic_train_instances(
    const ExperimentConfig& config);
std::vector<tsp::TspInstance> synthetic_test_instances(
    const ExperimentConfig& config);

/// The TSPLIB-like out-of-distribution evaluation set.
std::vector<tsp::TspInstance> tsplib_test_instances(
    const ExperimentConfig& config);

/// Cached dataset of solver responses on the synthetic training split.
surrogate::Dataset get_or_build_dataset(const Cache& cache, SolverKind kind,
                                        const ExperimentConfig& config);

/// Cached surrogate trained on get_or_build_dataset(kind).
surrogate::SolverSurrogate get_or_train_surrogate(
    const Cache& cache, SolverKind kind, const ExperimentConfig& config);

/// Normalised-gap trajectory of one method on one instance:
/// gap[t] = best-feasible original tour length after trial t / reference - 1
/// (config.infeasible_gap while nothing feasible has been seen).
std::vector<double> run_method_on_instance(
    Method method, const tsp::TspInstance& instance,
    const surrogate::SolverSurrogate* surrogate, SolverKind solver_kind,
    const ExperimentConfig& config, std::uint64_t seed);

/// Mean gap per trial with a 95% confidence half-width, across instances.
struct GapSeries {
  std::vector<double> mean;
  std::vector<double> ci95;

  std::string to_csv() const;
  static GapSeries from_csv(const std::string& text);
};

/// Runs (or loads) the full comparison of `method` on a named instance set.
/// `surrogate_kind` selects which solver's surrogate QROSS uses (differs
/// from `solver_kind` only in the Fig. 5 cross-solver ablation).
GapSeries get_or_run_comparison(const Cache& cache, Method method,
                                SolverKind surrogate_kind,
                                SolverKind solver_kind,
                                const std::string& instance_set,
                                const ExperimentConfig& config);

/// Instance set names accepted by get_or_run_comparison.
inline constexpr const char* kSyntheticTestSet = "synthetic";
inline constexpr const char* kTsplibTestSet = "tsplib";

}  // namespace qross::bench
