// Reproduces paper Table 1: normalised optimality gap at trial #3 and
// trial #20 for {DA, Qbsolv} x {QROSS, TPE, BO, Random} x {Synthetic,
// TSPLIB}.  Reuses the cached trajectories produced by the Fig. 3 / Fig. 4
// benches where available and generates the Qbsolv rows (with a surrogate
// trained on Qbsolv data, as in the paper's §5.3 generalisation study).

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/csv.hpp"
#include "harness/experiments.hpp"

using namespace qross;
using namespace qross::bench;

int main() {
  const ExperimentConfig config = default_config();
  const Cache cache;

  std::printf("== Table 1: optimality gap (normalised) at trials #3 / #20 ==\n");
  if (config.fast) std::printf("[FAST MODE]\n");
  std::printf("\n");

  const Method methods[] = {Method::kQross, Method::kTpe, Method::kBo,
                            Method::kRandom};
  // Trial indices reported by the paper; clamp for fast mode.
  const std::size_t t3 = std::min<std::size_t>(3, config.trials) - 1;
  const std::size_t t20 = config.trials - 1;

  CsvTable table({"solver", "method", "synthetic_#3", "synthetic_#20",
                  "tsplib_#3", "tsplib_#20"});
  for (const SolverKind solver : {SolverKind::kDa, SolverKind::kQbsolv}) {
    for (const Method method : methods) {
      const GapSeries synthetic = get_or_run_comparison(
          cache, method, solver, solver, kSyntheticTestSet, config);
      const GapSeries tsplib = get_or_run_comparison(
          cache, method, solver, solver, kTsplibTestSet, config);
      table.add_row(std::vector<std::string>{
          solver_label(solver), method_label(method),
          format_double(100.0 * synthetic.mean[t3], 1) + "%",
          format_double(100.0 * synthetic.mean[t20], 1) + "%",
          format_double(100.0 * tsplib.mean[t3], 1) + "%",
          format_double(100.0 * tsplib.mean[t20], 1) + "%"});
    }
  }
  table.write_pretty(std::cout);

  std::printf("\nCheck (paper Table 1 shape): QROSS has the lowest #3 gap in\n"
              "each block and remains lowest or tied at #20; out-of-\n"
              "distribution (tsplib) gaps exceed synthetic gaps per method.\n");
  return 0;
}
