// Reproduces paper Fig. 1: probability of feasibility Pf(A) and the
// objective-energy envelope versus the relaxation parameter A, for the
// Digital Annealer (top row) and Simulated Annealing (bottom row).
//
// Expected shape (paper §3.1): Pf rises sigmoidally in A; the minimum
// energy per batch traces a "dipper" whose bottom — the optimal parameter —
// sits on the sigmoid slope (0 < Pf < 1).  The SA dip is shallower and its
// solution quality flatter/worse, which the paper attributes to SA getting
// stuck in local minima.

#include <cstdio>
#include <iostream>

#include "common/csv.hpp"
#include "harness/experiments.hpp"
#include "problems/tsp/generators.hpp"
#include "problems/tsp/heuristics.hpp"
#include "solvers/batch_runner.hpp"
#include "surrogate/pipeline.hpp"

using namespace qross;
using namespace qross::bench;

int main() {
  const auto instance = tsp::generate_uniform(11, 0xF161);
  const surrogate::PreparedTspInstance prepared(instance);
  const double reference = tsp::reference_solution(instance).length;

  std::printf("== Fig. 1: Pf and objective energy vs relaxation parameter ==\n");
  std::printf("instance: %s (11 cities), reference tour length %.2f\n\n",
              instance.name().c_str(), reference);

  for (const SolverKind kind : {SolverKind::kDa, SolverKind::kSa}) {
    auto options = make_solve_options(kind, 0xF1);
    options.num_replicas = 48;  // denser Pf resolution for the figure
    solvers::BatchRunner runner(prepared.problem(), make_solver(kind),
                                options);
    CsvTable table({"A", "Pf", "E_avg", "E_std", "min_fitness",
                    "min_fitness_original", "gap"});
    for (double a = 5.0; a <= 60.0 + 1e-9; a += 2.5) {
      const auto sample = runner.run(a);
      const double original =
          sample.stats.has_feasible()
              ? prepared.to_original_length(sample.stats.min_fitness)
              : -1.0;
      table.add_row(std::vector<double>{
          a, sample.stats.pf, sample.stats.energy_avg, sample.stats.energy_std,
          sample.stats.has_feasible() ? sample.stats.min_fitness : -1.0,
          original, original > 0.0 ? original / reference - 1.0 : -1.0});
    }
    std::printf("--- solver: %s (B = %zu, %zu sweeps) ---\n",
                solver_label(kind).c_str(), options.num_replicas,
                options.num_sweeps);
    table.write_pretty(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Check: Pf rises 0 -> 1 sigmoidally; the min-fitness dip sits where\n"
      "0 < Pf < 1; SA's dip is shallower and its gaps larger than DA's.\n");
  return 0;
}
