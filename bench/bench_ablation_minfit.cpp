// Design ablation (ours): accuracy of the analytic expected-minimum-fitness
// approximation (paper eq. (2) / appendix F) against Monte-Carlo ground
// truth, and the effect of the batch size B on the MFS-optimal relaxation
// parameter.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/csv.hpp"
#include "harness/experiments.hpp"
#include "qross/min_fitness.hpp"
#include "qross/strategies.hpp"
#include "surrogate/pipeline.hpp"

using namespace qross;
using namespace qross::bench;

int main() {
  std::printf("== Ablation: expected-minimum-fitness integral ==\n\n");

  // Part 1: analytic vs Monte-Carlo across the (pf, B) grid.
  std::printf("--- analytic integral vs Monte-Carlo (mean 100, std 10) ---\n");
  CsvTable accuracy({"pf", "batch_size", "analytic", "monte_carlo",
                     "abs_error"});
  for (const double pf : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    for (const std::size_t batch : {16UL, 64UL, 128UL}) {
      const double analytic = core::expected_min_fitness(pf, 100.0, 10.0, batch);
      const double mc = core::expected_min_fitness_monte_carlo(
          pf, 100.0, 10.0, batch, 40000, 0xAB2);
      accuracy.add_row(std::vector<double>{pf, double(batch), analytic, mc,
                                           std::abs(analytic - mc)});
    }
  }
  accuracy.write_pretty(std::cout);
  std::printf("\n");

  // Part 2: the MFS proposal as a function of B on a trained surrogate.
  // Larger batches tolerate lower Pf (more draws on the slope), so the
  // optimal A should shift left (or stay) as B grows.
  const ExperimentConfig config = default_config();
  const Cache cache;
  const auto surrogate = get_or_train_surrogate(cache, SolverKind::kDa, config);
  const auto instance = synthetic_test_instances(config).front();
  const surrogate::PreparedTspInstance prepared(instance);

  core::StrategyContext context;
  context.surrogate = &surrogate;
  context.features = surrogate::extract_features(prepared.prepared());
  context.anchor = surrogate::scale_anchor(context.features);
  context.a_min = config.a_min;
  context.a_max = config.a_max;

  std::printf("--- MFS proposal vs batch size (instance %s) ---\n",
              instance.name().c_str());
  CsvTable proposals({"batch_size", "proposed_A", "predicted_pf"});
  const core::MinimumFitnessStrategy mfs;
  for (const std::size_t batch : {1UL, 4UL, 16UL, 64UL, 128UL}) {
    context.batch_size = batch;
    const double a = mfs.propose(context);
    const auto prediction =
        surrogate.predict(context.features, context.anchor, a);
    proposals.add_row(std::vector<double>{double(batch), a, prediction.pf});
  }
  proposals.write_pretty(std::cout);

  std::printf("\nCheck: analytic and Monte-Carlo estimates agree to within\n"
              "a fraction of the energy stddev, and the proposed A does not\n"
              "increase as the batch size grows.\n");
  return 0;
}
