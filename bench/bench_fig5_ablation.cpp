// Reproduces paper Fig. 5 (appendix A ablation): a QROSS surrogate trained
// on Digital-Annealer data is evaluated against Qbsolv.  The knowledge in
// the surrogate is solver-specific, so the crossed configuration should
// lose (part of) QROSS's edge relative to TPE run natively on Qbsolv —
// "the performance lag is what we expected for the ablation study".

#include <cstdio>
#include <iostream>

#include "common/csv.hpp"
#include "harness/experiments.hpp"

using namespace qross;
using namespace qross::bench;

int main() {
  const ExperimentConfig config = default_config();
  const Cache cache;

  std::printf("== Fig. 5: cross-solver ablation (DA-trained QROSS on Qbsolv) ==\n");
  if (config.fast) std::printf("[FAST MODE]\n");
  std::printf("\n");

  // Matched pairs: QROSS and TPE on DA (solid curves) and on Qbsolv
  // (dashed curves), with QROSS always using the DA-trained surrogate.
  const GapSeries qross_da = get_or_run_comparison(
      cache, Method::kQross, SolverKind::kDa, SolverKind::kDa,
      kSyntheticTestSet, config);
  const GapSeries qross_crossed = get_or_run_comparison(
      cache, Method::kQross, SolverKind::kDa, SolverKind::kQbsolv,
      kSyntheticTestSet, config);
  const GapSeries tpe_da = get_or_run_comparison(
      cache, Method::kTpe, SolverKind::kDa, SolverKind::kDa,
      kSyntheticTestSet, config);
  const GapSeries tpe_qbsolv = get_or_run_comparison(
      cache, Method::kTpe, SolverKind::kQbsolv, SolverKind::kQbsolv,
      kSyntheticTestSet, config);

  CsvTable table({"trial", "qross_on_da", "qross_da_surr_on_qbsolv",
                  "tpe_on_da", "tpe_on_qbsolv"});
  for (std::size_t t = 0; t < config.trials; ++t) {
    table.add_row(std::vector<double>{
        static_cast<double>(t + 1), qross_da.mean[t], qross_crossed.mean[t],
        tpe_da.mean[t], tpe_qbsolv.mean[t]});
  }
  table.write_pretty(std::cout);

  // Early-trial penalty of crossing solvers, which the paper's Fig. 5
  // shows as the dashed QROSS curve sitting above TPE-on-Qbsolv.
  const std::size_t probe = std::min<std::size_t>(3, config.trials) - 1;
  std::printf("\nEarly-trial (#%zu) gaps: QROSS-crossed %.3f vs native TPE "
              "%.3f vs QROSS-native %.3f\n",
              probe + 1, qross_crossed.mean[probe], tpe_qbsolv.mean[probe],
              qross_da.mean[probe]);
  std::printf("Check: the crossed configuration loses part of QROSS's edge\n"
              "(qross_da_surr_on_qbsolv is worse than qross_on_da in early\n"
              "trials and no longer clearly beats TPE-on-Qbsolv).\n");
  return 0;
}
