// Tests for the observability subsystem (ISSUE 7): the trace recorder's
// ring-buffer semantics and Chrome export, the metrics registry's Prometheus
// exposition, the latency-reservoir edge cases, the sliding-window rate, and
// an end-to-end stitched trace of one job through the in-process service
// (submit → queue → dispatch → kernel → journal).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <unistd.h>
#include <vector>

#include "obs/log.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "problems/mvc/mvc.hpp"
#include "qross/qross.hpp"
#include "service/metrics.hpp"

namespace qross {
namespace {

using namespace std::chrono_literals;

// The recorder is process-global; every test that uses it starts from a
// known state and disables it on exit so later tests are unaffected.
struct RecorderGuard {
  RecorderGuard() {
    obs::TraceRecorder::instance().disable();
    obs::TraceRecorder::instance().clear();
  }
  ~RecorderGuard() {
    obs::TraceRecorder::instance().disable();
    obs::TraceRecorder::instance().clear();
  }
};

TEST(TraceRecorder, DisabledRecordsNothing) {
  RecorderGuard guard;
  auto& recorder = obs::TraceRecorder::instance();
  ASSERT_FALSE(recorder.enabled());
  recorder.record_instant("nothing", "test");
  {
    obs::ScopedSpan span("nothing_span", "test");
  }
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.evicted(), 0u);
  EXPECT_TRUE(recorder.snapshot().empty());
}

TEST(TraceRecorder, RecordsInstantsAndSpans) {
  RecorderGuard guard;
  auto& recorder = obs::TraceRecorder::instance();
  recorder.enable();
  recorder.record_instant("tick", "test", 42, 7);
  const auto start = obs::TraceRecorder::Clock::now();
  recorder.record_span("work", "test", start, start + 1ms, 42, 7);

  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "tick");
  EXPECT_EQ(events[0].kind, obs::EventKind::instant);
  EXPECT_EQ(events[0].dur_ns, 0u);
  EXPECT_EQ(events[0].a0, 42u);
  EXPECT_EQ(events[0].a1, 7u);
  EXPECT_STREQ(events[1].name, "work");
  EXPECT_EQ(events[1].kind, obs::EventKind::span);
  EXPECT_EQ(events[1].dur_ns, 1000000u);
}

TEST(TraceRecorder, OverflowEvictsOldestWithExactCounters) {
  RecorderGuard guard;
  auto& recorder = obs::TraceRecorder::instance();
  recorder.enable(8);  // shrink the ring (different capacity clears it)
  for (std::uint64_t i = 0; i < 20; ++i) {
    recorder.record_instant("tick", "test", /*a0=*/i + 1);
  }
  EXPECT_EQ(recorder.recorded(), 20u);
  EXPECT_EQ(recorder.evicted(), 12u);
  EXPECT_EQ(recorder.capacity(), 8u);

  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest evicted: what survives is exactly the newest 8, oldest first.
  for (std::size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(events[k].a0, 13 + k) << "slot " << k;
  }
  // Restore the default ring for later tests.
  recorder.enable(obs::TraceRecorder::kDefaultCapacity);
}

TEST(TraceRecorder, ScopedSpanMeasuresEnclosedWork) {
  RecorderGuard guard;
  auto& recorder = obs::TraceRecorder::instance();
  recorder.enable();
  {
    obs::ScopedSpan span("scoped", "test", 5);
    std::this_thread::sleep_for(2ms);
  }
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "scoped");
  EXPECT_EQ(events[0].kind, obs::EventKind::span);
  EXPECT_GE(events[0].dur_ns, 1000000u);  // at least ~1 of the 2 ms slept
  EXPECT_EQ(events[0].a0, 5u);
}

TEST(TraceRecorder, ChromeJsonCarriesRequiredKeys) {
  RecorderGuard guard;
  auto& recorder = obs::TraceRecorder::instance();
  recorder.enable();
  recorder.record_instant("mark", "cat\"quoted", 3, 9);
  const auto start = obs::TraceRecorder::Clock::now();
  recorder.record_span("work", "test", start, start + 5ms);

  const std::string json = obs::chrome_trace_json(recorder);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mark\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"cat\\\"quoted\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  // Args only when a job/trace id is present; the plain span has none.
  EXPECT_NE(json.find("\"args\":{\"job\":3,\"trace\":9}"), std::string::npos);
  EXPECT_NE(json.find("\"otherData\":{\"recorded\":2,\"evicted\":0}"),
            std::string::npos);
}

TEST(TraceRecorder, DisableKeepsBufferForDumping) {
  RecorderGuard guard;
  auto& recorder = obs::TraceRecorder::instance();
  recorder.enable();
  recorder.record_instant("kept", "test");
  recorder.disable();
  recorder.record_instant("dropped", "test");
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "kept");
}

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(Registry, CounterGaugeHistogramBasics) {
  obs::Registry reg;  // local registry: no cross-test name collisions
  auto* counter = reg.counter("events_total", "events");
  counter->inc();
  counter->inc(4);
  EXPECT_EQ(counter->value(), 5u);
  EXPECT_EQ(reg.counter("events_total"), counter);  // same name, same pointer

  auto* gauge = reg.gauge("depth");
  gauge->set(3.0);
  gauge->add(-1.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 1.5);

  auto* histogram = reg.histogram("latency_ms", {1.0, 10.0, 100.0});
  histogram->observe(0.5);
  histogram->observe(1.0);   // le semantics: lands in the 1.0 bucket
  histogram->observe(50.0);
  histogram->observe(1e9);   // +Inf bucket
  EXPECT_EQ(histogram->count(), 4u);
  EXPECT_DOUBLE_EQ(histogram->sum(), 0.5 + 1.0 + 50.0 + 1e9);
  const auto buckets = histogram->bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);  // <= 1
  EXPECT_EQ(buckets[1], 0u);  // (1, 10]
  EXPECT_EQ(buckets[2], 1u);  // (10, 100]
  EXPECT_EQ(buckets[3], 1u);  // +Inf
}

TEST(Registry, KindAndBucketCollisionsThrow) {
  obs::Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x", {1.0}), std::invalid_argument);
  reg.histogram("h", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), std::invalid_argument);
  EXPECT_NO_THROW(reg.histogram("h", {1.0, 2.0}));  // same buckets: fetch
  EXPECT_THROW(reg.histogram("empty", {}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("unsorted", {2.0, 1.0}), std::invalid_argument);
}

// Minimal exposition-format check: every metric family has exactly one
// # TYPE line, names are unique, histogram buckets are cumulative and
// monotone, and the +Inf bucket equals _count.
TEST(Registry, PrometheusExpositionParses) {
  obs::Registry reg;
  reg.counter("jobs_total", "jobs")->inc(3);
  reg.gauge("queue_depth", "depth")->set(2.0);
  auto* histogram = reg.histogram("wait_ms", {1.0, 5.0, 25.0}, "wait");
  histogram->observe(0.5);
  histogram->observe(4.0);
  histogram->observe(100.0);

  const std::string text = reg.render_prometheus();
  std::map<std::string, std::string> types;  // family -> type
  std::map<std::string, double> samples;     // sample line -> value
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string family, type;
      fields >> family >> type;
      ASSERT_FALSE(types.contains(family)) << "duplicate # TYPE " << family;
      types[family] = type;
      continue;
    }
    if (line.rfind("#", 0) == 0) continue;  // HELP
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string key = line.substr(0, space);
    ASSERT_FALSE(samples.contains(key)) << "duplicate sample " << key;
    samples[key] = std::stod(line.substr(space + 1));
  }
  EXPECT_EQ(types.at("jobs_total"), "counter");
  EXPECT_EQ(types.at("queue_depth"), "gauge");
  EXPECT_EQ(types.at("wait_ms"), "histogram");
  EXPECT_DOUBLE_EQ(samples.at("jobs_total"), 3.0);
  EXPECT_DOUBLE_EQ(samples.at("queue_depth"), 2.0);
  // Cumulative, monotone buckets ending in +Inf == _count.
  const double b1 = samples.at("wait_ms_bucket{le=\"1\"}");
  const double b5 = samples.at("wait_ms_bucket{le=\"5\"}");
  const double b25 = samples.at("wait_ms_bucket{le=\"25\"}");
  const double binf = samples.at("wait_ms_bucket{le=\"+Inf\"}");
  EXPECT_DOUBLE_EQ(b1, 1.0);
  EXPECT_DOUBLE_EQ(b5, 2.0);
  EXPECT_DOUBLE_EQ(b25, 2.0);
  EXPECT_DOUBLE_EQ(binf, 3.0);
  EXPECT_LE(b1, b5);
  EXPECT_LE(b5, b25);
  EXPECT_LE(b25, binf);
  EXPECT_DOUBLE_EQ(samples.at("wait_ms_count"), 3.0);
  EXPECT_DOUBLE_EQ(samples.at("wait_ms_sum"), 104.5);
}

TEST(Log, ParseAndNames) {
  obs::LogLevel level = obs::LogLevel::off;
  EXPECT_TRUE(obs::parse_log_level("debug", &level));
  EXPECT_EQ(level, obs::LogLevel::debug);
  EXPECT_TRUE(obs::parse_log_level("error", &level));
  EXPECT_EQ(level, obs::LogLevel::error);
  EXPECT_FALSE(obs::parse_log_level("verbose", &level));
  EXPECT_EQ(level, obs::LogLevel::error);  // untouched on failure
  EXPECT_STREQ(obs::log_level_name(obs::LogLevel::warn), "warn");
}

// ---------------------------------------------------------------------------
// LatencyReservoir edge cases (satellite: wrap-around, tiny capacities,
// tiny-window quantile interpolation).

TEST(LatencyReservoir, CapacityZeroClampsToOne) {
  service::LatencyReservoir reservoir(0);
  reservoir.record(1.0);
  reservoir.record(2.0);
  reservoir.record(3.0);
  EXPECT_EQ(reservoir.count(), 3u);  // samples ever seen
  const auto p = reservoir.percentiles();
  EXPECT_EQ(p.count, 3u);
  // The window holds only the newest sample.
  EXPECT_DOUBLE_EQ(p.p50_ms, 3.0);
  EXPECT_DOUBLE_EQ(p.p99_ms, 3.0);
  EXPECT_DOUBLE_EQ(p.max_ms, 3.0);
}

TEST(LatencyReservoir, CapacityOneKeepsNewest) {
  service::LatencyReservoir reservoir(1);
  reservoir.record(10.0);
  EXPECT_DOUBLE_EQ(reservoir.percentiles().p50_ms, 10.0);
  reservoir.record(20.0);
  const auto p = reservoir.percentiles();
  EXPECT_EQ(p.count, 2u);
  EXPECT_DOUBLE_EQ(p.p50_ms, 20.0);
  EXPECT_DOUBLE_EQ(p.max_ms, 20.0);
}

TEST(LatencyReservoir, WrapAroundDropsOldestSamples) {
  service::LatencyReservoir reservoir(4);
  for (int v = 1; v <= 8; ++v) reservoir.record(static_cast<double>(v));
  const auto p = reservoir.percentiles();
  EXPECT_EQ(p.count, 8u);
  // Window is {5,6,7,8}: old extremes must not leak into max or quantiles.
  EXPECT_DOUBLE_EQ(p.max_ms, 8.0);
  EXPECT_DOUBLE_EQ(p.p50_ms, 6.5);  // linear interpolation at q*(n-1)
  EXPECT_GE(p.p50_ms, 5.0);
  EXPECT_LE(p.p99_ms, 8.0);
}

TEST(LatencyReservoir, TinyWindowQuantilesInterpolate) {
  service::LatencyReservoir reservoir(16);
  reservoir.record(10.0);
  reservoir.record(20.0);
  const auto p = reservoir.percentiles();
  EXPECT_DOUBLE_EQ(p.p50_ms, 15.0);
  EXPECT_DOUBLE_EQ(p.p90_ms, 19.0);
  EXPECT_NEAR(p.p99_ms, 19.9, 1e-9);
  EXPECT_DOUBLE_EQ(p.max_ms, 20.0);
}

TEST(LatencyReservoir, EmptyReportsZeros) {
  service::LatencyReservoir reservoir(8);
  const auto p = reservoir.percentiles();
  EXPECT_EQ(p.count, 0u);
  EXPECT_DOUBLE_EQ(p.p50_ms, 0.0);
  EXPECT_DOUBLE_EQ(p.max_ms, 0.0);
}

// ---------------------------------------------------------------------------
// SlidingWindowRate, driven with synthetic time points.

TEST(SlidingWindowRate, EarlyLifeDividesByElapsedNotWindow) {
  using Clock = service::SlidingWindowRate::Clock;
  const auto t0 = Clock::time_point(std::chrono::seconds(1000));
  service::SlidingWindowRate rate(t0);
  EXPECT_DOUBLE_EQ(rate.rate(t0), 0.0);
  for (int i = 0; i < 10; ++i) rate.record(t0);
  // Elapsed ~0 is floored at 1 s: a fresh burst reads as 10/s, not infinity.
  EXPECT_DOUBLE_EQ(rate.rate(t0), 10.0);
  EXPECT_DOUBLE_EQ(rate.rate(t0 + 30s), 10.0 / 30.0);
}

TEST(SlidingWindowRate, OldEventsFallOutOfTheWindow) {
  using Clock = service::SlidingWindowRate::Clock;
  const auto t0 = Clock::time_point(std::chrono::seconds(5000));
  service::SlidingWindowRate rate(t0);
  for (int i = 0; i < 10; ++i) rate.record(t0);
  // 120 s later the burst is older than the 60 s window: rate is 0 again.
  EXPECT_DOUBLE_EQ(rate.rate(t0 + 120s), 0.0);
}

TEST(SlidingWindowRate, SteadyStateMeasuresTrailingWindowOnly) {
  using Clock = service::SlidingWindowRate::Clock;
  const auto t0 = Clock::time_point(std::chrono::seconds(9000));
  service::SlidingWindowRate rate(t0);
  // One event per second for two minutes: only the trailing 60 survive.
  for (int s = 0; s < 120; ++s) rate.record(t0 + std::chrono::seconds(s));
  EXPECT_DOUBLE_EQ(rate.rate(t0 + 119s), 1.0);
}

TEST(SlidingWindowRate, SparseBucketsAdvanceCorrectly) {
  using Clock = service::SlidingWindowRate::Clock;
  const auto t0 = Clock::time_point(std::chrono::seconds(7000));
  service::SlidingWindowRate rate(t0);
  rate.record(t0);
  rate.record(t0 + 5s);
  rate.record(t0 + 5s);
  EXPECT_DOUBLE_EQ(rate.rate(t0 + 5s), 3.0 / 5.0);
  // A skipped stretch must zero the buckets it hops over, not reuse them.
  rate.record(t0 + 65s);
  EXPECT_DOUBLE_EQ(rate.rate(t0 + 65s), 1.0 / 60.0);
}

// ---------------------------------------------------------------------------
// End-to-end stitched trace: one job through the in-process service must
// leave submit → queue → dispatch → kernel → journal events that all carry
// the same job id and the client-supplied trace id.

TEST(ServiceTrace, JobLifecycleIsStitchedByJobAndTraceId) {
  RecorderGuard guard;
  auto& recorder = obs::TraceRecorder::instance();
  recorder.enable(obs::TraceRecorder::kDefaultCapacity);

  const auto cache_path =
      (std::filesystem::temp_directory_path() /
       ("qross_obs_trace_" + std::to_string(::getpid()) + ".qsnap"))
          .string();
  std::filesystem::remove(cache_path);
  std::filesystem::remove(cache_path + ".journal");

  constexpr std::uint64_t kTraceId = 0xABCDEF01;
  std::uint64_t job_id = 0;
  {
    service::ServiceConfig config;
    config.num_workers = 1;
    config.cache_path = cache_path;
    service::SolveService svc(config);

    const auto model = mvc::generate_random_mvc(32, 0.12, 99).to_qubo(2.0);
    solvers::SolveOptions options;
    options.num_replicas = 4;
    options.num_sweeps = 20;
    options.seed = 7;
    service::SubmitOptions submit;
    submit.trace_id = kTraceId;

    auto handle = svc.submit(
        std::make_shared<solvers::SimulatedAnnealer>(), model, options, submit);
    job_id = handle.id();
    const auto result = handle.wait();
    ASSERT_EQ(result.status, service::JobStatus::done);

    // The journal append runs after completion, off the waiter's thread:
    // poll until its span shows up (bounded).
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    bool journaled = false;
    while (!journaled && std::chrono::steady_clock::now() < deadline) {
      for (const auto& ev : recorder.snapshot()) {
        if (std::string_view(ev.name) == "journal_append" &&
            ev.a0 == job_id) {
          journaled = true;
          break;
        }
      }
      if (!journaled) std::this_thread::sleep_for(5ms);
    }
    EXPECT_TRUE(journaled) << "no journal_append span within 5 s";
  }
  recorder.disable();

  std::set<std::string> names;
  for (const auto& ev : recorder.snapshot()) {
    if (ev.a0 != job_id) continue;
    EXPECT_EQ(ev.a1, kTraceId) << ev.name << " lost the trace id";
    names.insert(ev.name);
  }
  for (const char* expected :
       {"submit", "queue", "dispatch", "sweep", "kernel", "journal_append",
        "job_done"}) {
    EXPECT_TRUE(names.contains(expected))
        << "missing lifecycle event: " << expected;
  }

  // The stitched story must also survive the exporter.
  const std::string json = obs::chrome_trace_json(recorder);
  EXPECT_NE(json.find("\"name\":\"kernel\""), std::string::npos);
  EXPECT_NE(
      json.find("\"trace\":" + std::to_string(kTraceId)), std::string::npos);

  std::filesystem::remove(cache_path);
  std::filesystem::remove(cache_path + ".journal");
}

// Tracing disabled must also keep the service silent: no events leak from an
// instrumented run when the recorder is off.
TEST(ServiceTrace, DisabledTracingRecordsNoServiceEvents) {
  RecorderGuard guard;
  auto& recorder = obs::TraceRecorder::instance();
  ASSERT_FALSE(recorder.enabled());

  service::ServiceConfig config;
  config.num_workers = 1;
  service::SolveService svc(config);
  const auto model = mvc::generate_random_mvc(24, 0.15, 3).to_qubo(2.0);
  solvers::SolveOptions options;
  options.num_replicas = 2;
  options.num_sweeps = 10;
  auto handle = svc.submit(std::make_shared<solvers::SimulatedAnnealer>(),
                           model, options);
  ASSERT_EQ(handle.wait().status, service::JobStatus::done);
  EXPECT_EQ(recorder.recorded(), 0u);
}

}  // namespace
}  // namespace qross
