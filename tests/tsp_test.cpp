// Tests for src/problems/tsp: instances, generators, the Lucas QUBO
// formulation, MVODM preprocessing, exact solvers, heuristics, and TSPLIB.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "problems/tsp/exact.hpp"
#include "problems/tsp/formulation.hpp"
#include "problems/tsp/generators.hpp"
#include "problems/tsp/heuristics.hpp"
#include "problems/tsp/instance.hpp"
#include "problems/tsp/preprocess.hpp"
#include "problems/tsp/testset.hpp"
#include "problems/tsp/tsplib.hpp"

namespace qross::tsp {
namespace {

TspInstance square_instance() {
  // Unit square; optimal tour is the perimeter, length 4.
  return TspInstance("square", {{0, 0}, {1, 0}, {1, 1}, {0, 1}});
}

TEST(Instance, EuclideanDistances) {
  const TspInstance inst = square_instance();
  EXPECT_DOUBLE_EQ(inst.distance(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(inst.distance(0, 2), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(inst.distance(2, 0), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(inst.distance(3, 3), 0.0);
}

TEST(Instance, TourLengthClosesCycle) {
  const TspInstance inst = square_instance();
  const Tour perimeter{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(inst.tour_length(perimeter), 4.0);
  const Tour crossed{0, 2, 1, 3};
  EXPECT_NEAR(inst.tour_length(crossed), 2.0 + 2.0 * std::sqrt(2.0), 1e-12);
}

TEST(Instance, ValidTourChecks) {
  const TspInstance inst = square_instance();
  EXPECT_TRUE(inst.is_valid_tour(Tour{2, 0, 3, 1}));
  EXPECT_FALSE(inst.is_valid_tour(Tour{0, 1, 2}));      // too short
  EXPECT_FALSE(inst.is_valid_tour(Tour{0, 1, 2, 2}));   // repeat
  EXPECT_FALSE(inst.is_valid_tour(Tour{0, 1, 2, 4}));   // out of range
}

TEST(Instance, MatrixConstructorValidates) {
  EXPECT_THROW(TspInstance("bad", 2, {0.0, 1.0, 2.0, 0.0}),
               std::invalid_argument);  // asymmetric
  EXPECT_THROW(TspInstance("bad", 2, {1.0, 1.0, 1.0, 0.0}),
               std::invalid_argument);  // nonzero diagonal
  EXPECT_THROW(TspInstance("bad", 3, {0.0}), std::invalid_argument);
}

TEST(Instance, DistanceStatistics) {
  const TspInstance inst = square_instance();
  EXPECT_DOUBLE_EQ(inst.max_distance(), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(inst.min_positive_distance(), 1.0);
  EXPECT_NEAR(inst.mean_distance(), (4.0 + 2.0 * std::sqrt(2.0)) / 6.0, 1e-12);
}

TEST(Generators, UniformRespectsBoundsAndSeed) {
  const TspInstance a = generate_uniform(20, 5);
  const TspInstance b = generate_uniform(20, 5);
  const TspInstance c = generate_uniform(20, 6);
  EXPECT_EQ(a.num_cities(), 20u);
  ASSERT_TRUE(a.coordinates().has_value());
  for (const auto& p : *a.coordinates()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 100.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 100.0);
  }
  EXPECT_EQ(a.distance_matrix().size(), b.distance_matrix().size());
  for (std::size_t i = 0; i < a.distance_matrix().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.distance_matrix()[i], b.distance_matrix()[i]);
  }
  // Different seed, different instance.
  bool any_diff = false;
  for (std::size_t i = 0; i < a.distance_matrix().size(); ++i) {
    if (a.distance_matrix()[i] != c.distance_matrix()[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generators, ExponentialProducesPositiveCoords) {
  const TspInstance inst = generate_exponential(15, 8);
  ASSERT_TRUE(inst.coordinates().has_value());
  for (const auto& p : *inst.coordinates()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_GE(p.y, 0.0);
  }
}

TEST(Generators, ClusteredStaysInBox) {
  const TspInstance inst = generate_clustered(30, 9);
  ASSERT_TRUE(inst.coordinates().has_value());
  for (const auto& p : *inst.coordinates()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 100.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 100.0);
  }
}

TEST(Generators, SyntheticDatasetMixesSizes) {
  const auto dataset = generate_synthetic_dataset(12, 8, 14, 77);
  ASSERT_EQ(dataset.size(), 12u);
  for (const auto& inst : dataset) {
    EXPECT_GE(inst.num_cities(), 8u);
    EXPECT_LE(inst.num_cities(), 14u);
  }
  // Deterministic regeneration.
  const auto again = generate_synthetic_dataset(12, 8, 14, 77);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    EXPECT_EQ(dataset[i].num_cities(), again[i].num_cities());
    EXPECT_EQ(dataset[i].name(), again[i].name());
  }
}

// --- QUBO formulation --------------------------------------------------------

TEST(Formulation, EncodeDecodeRoundTrip) {
  const TspInstance inst = square_instance();
  const Tour tour{2, 0, 3, 1};
  const auto x = encode_tour(inst, tour);
  const auto decoded = decode_tour(inst, x);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, tour);
}

TEST(Formulation, DecodeRejectsNonPermutations) {
  const TspInstance inst = square_instance();
  std::vector<std::uint8_t> x(16, 0);
  EXPECT_FALSE(decode_tour(inst, x).has_value());  // all empty
  x[variable_index(0, 0, 4)] = 1;
  x[variable_index(0, 1, 4)] = 1;  // city 0 twice
  EXPECT_FALSE(decode_tour(inst, x).has_value());
}

TEST(Formulation, FeasibleEnergyEqualsTourLength) {
  Rng rng(21);
  const TspInstance inst = generate_uniform(7, 3);
  const auto problem = build_tsp_problem(inst);
  for (int rep = 0; rep < 20; ++rep) {
    Tour tour = rng.permutation(7);
    const auto x = encode_tour(inst, tour);
    EXPECT_TRUE(problem.is_feasible(x));
    EXPECT_NEAR(problem.objective(x), inst.tour_length(tour), 1e-9);
    // The QUBO energy at any A equals the tour length for feasible x.
    EXPECT_NEAR(problem.to_qubo(57.0).energy(x), inst.tour_length(tour), 1e-9);
  }
}

TEST(Formulation, InfeasibleAssignmentsPayPenalty) {
  const TspInstance inst = square_instance();
  const auto problem = build_tsp_problem(inst);
  std::vector<std::uint8_t> x(16, 0);  // nothing assigned
  EXPECT_FALSE(problem.is_feasible(x));
  // 2n unit violations (each constraint misses by exactly 1).
  EXPECT_DOUBLE_EQ(problem.violation(x), 8.0);
  EXPECT_DOUBLE_EQ(problem.to_qubo(3.0).energy(x), 24.0);
}

TEST(Formulation, ConstraintCount) {
  const TspInstance inst = generate_uniform(6, 4);
  const auto problem = build_tsp_problem(inst);
  EXPECT_EQ(problem.num_vars(), 36u);
  EXPECT_EQ(problem.num_constraints(), 12u);
}

// --- MVODM preprocessing ------------------------------------------------------

class MvodmParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MvodmParam, ShiftPreservesOptimalTourAndReducesVariance) {
  const TspInstance inst = generate_uniform(9, GetParam());
  const MvodmResult result = mvodm_preprocess(inst);
  EXPECT_LE(result.shifted_variance, result.original_variance + 1e-9);

  // Every tour's length changes by the same constant, so rankings (and the
  // exact optimum) are invariant.
  const ExactResult original_opt = solve_held_karp(inst);
  const ExactResult shifted_opt = solve_held_karp(result.shifted);
  EXPECT_NEAR(inst.tour_length(shifted_opt.tour), original_opt.length, 1e-6);

  double pi_sum = 0.0;
  for (double p : result.pi) pi_sum += p;
  EXPECT_NEAR(result.to_original_length(shifted_opt.length, 9, pi_sum),
              original_opt.length, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MvodmParam, ::testing::Values(1, 2, 3, 4, 5));

TEST(Mvodm, ConstantTourShift) {
  Rng rng(6);
  const TspInstance inst = generate_uniform(8, 10);
  const MvodmResult result = mvodm_preprocess(inst);
  double pi_sum = 0.0;
  for (double p : result.pi) pi_sum += p;
  // d' = d - pi_u - pi_v + s  =>  L' = L - 2*sum(pi) + n*s for every tour.
  for (int rep = 0; rep < 10; ++rep) {
    const Tour tour = rng.permutation(8);
    const double expected =
        inst.tour_length(tour) - 2.0 * pi_sum + 8.0 * result.edge_offset;
    EXPECT_NEAR(result.shifted.tour_length(tour), expected, 1e-8);
  }
}

TEST(Mvodm, ShiftedDistancesArePositive) {
  const TspInstance inst = generate_clustered(12, 13);
  const MvodmResult result = mvodm_preprocess(inst);
  EXPECT_GT(result.shifted.min_positive_distance(), 0.0);
  for (std::size_t u = 0; u < 12; ++u) {
    for (std::size_t v = 0; v < 12; ++v) {
      if (u != v) EXPECT_GT(result.shifted.distance(u, v), 0.0);
    }
  }
}

TEST(Mvodm, PotentialsSatisfyStationarity) {
  const TspInstance inst = generate_uniform(10, 14);
  const auto pi = minimize_distance_variance(inst);
  // At the optimum, perturbing any single pi_k must not reduce the variance.
  const auto variance_with = [&](std::span<const double> p) {
    const auto shifted = inst.with_shifted_distances(p, "tmp");
    return offdiagonal_variance(shifted);
  };
  const double base = variance_with(pi);
  for (std::size_t k = 0; k < pi.size(); ++k) {
    for (double eps : {-0.05, 0.05}) {
      auto perturbed = pi;
      perturbed[k] += eps;
      EXPECT_GE(variance_with(perturbed), base - 1e-9);
    }
  }
}

// --- exact solvers ------------------------------------------------------------

class ExactParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactParam, HeldKarpMatchesBruteForce) {
  const TspInstance inst = generate_uniform(8, 300 + GetParam());
  const ExactResult hk = solve_held_karp(inst);
  const ExactResult bf = solve_brute_force(inst);
  EXPECT_NEAR(hk.length, bf.length, 1e-9);
  EXPECT_TRUE(inst.is_valid_tour(hk.tour));
  EXPECT_NEAR(inst.tour_length(hk.tour), hk.length, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactParam,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

TEST(Exact, TrivialSizes) {
  const TspInstance one("one", {{0.0, 0.0}});
  EXPECT_DOUBLE_EQ(solve_held_karp(one).length, 0.0);
  const TspInstance two("two", {{0.0, 0.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(solve_held_karp(two).length, 10.0);  // there and back
  const TspInstance three("three", {{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}});
  EXPECT_NEAR(solve_held_karp(three).length, 2.0 + std::sqrt(2.0), 1e-12);
}

TEST(Exact, SizeGuards) {
  std::vector<Point> many(25, Point{});
  EXPECT_THROW(solve_held_karp(TspInstance("big", many)),
               std::invalid_argument);
  std::vector<Point> eleven(11, Point{});
  EXPECT_THROW(solve_brute_force(TspInstance("big", eleven)),
               std::invalid_argument);
}

// --- heuristics ----------------------------------------------------------------

TEST(Heuristics, NearestNeighborIsValidTour) {
  const TspInstance inst = generate_uniform(15, 31);
  for (std::size_t start = 0; start < 15; start += 3) {
    const Tour tour = nearest_neighbor_tour(inst, start);
    EXPECT_TRUE(inst.is_valid_tour(tour));
    EXPECT_EQ(tour.front(), start);
  }
}

TEST(Heuristics, TwoOptNeverWorsens) {
  Rng rng(41);
  const TspInstance inst = generate_uniform(14, 32);
  for (int rep = 0; rep < 8; ++rep) {
    const Tour initial = rng.permutation(14);
    const double before = inst.tour_length(initial);
    const Tour improved = two_opt(inst, initial);
    EXPECT_TRUE(inst.is_valid_tour(improved));
    EXPECT_LE(inst.tour_length(improved), before + 1e-9);
  }
}

TEST(Heuristics, TwoOptRemovesCrossing) {
  const TspInstance inst = square_instance();
  const Tour crossed{0, 2, 1, 3};
  const Tour improved = two_opt(inst, crossed);
  EXPECT_NEAR(inst.tour_length(improved), 4.0, 1e-12);
}

TEST(Heuristics, OrOptNeverWorsens) {
  Rng rng(43);
  const TspInstance inst = generate_clustered(13, 33);
  const Tour initial = rng.permutation(13);
  const double before = inst.tour_length(initial);
  const Tour improved = or_opt(inst, initial);
  EXPECT_TRUE(inst.is_valid_tour(improved));
  EXPECT_LE(inst.tour_length(improved), before + 1e-9);
}

TEST(Heuristics, ReferenceSolutionIsExactForSmallInstances) {
  const TspInstance inst = generate_uniform(9, 34);
  const ReferenceSolution ref = reference_solution(inst);
  EXPECT_TRUE(ref.exact);
  EXPECT_NEAR(ref.length, solve_held_karp(inst).length, 1e-9);
}

TEST(Heuristics, ReferenceSolutionNearOptimalForMediumInstances) {
  // For n = 16 we can still afford Held-Karp as the yardstick in a test.
  const TspInstance inst = generate_uniform(16, 35);
  const ReferenceSolution ref = reference_solution(inst);
  EXPECT_FALSE(ref.exact);
  EXPECT_TRUE(inst.is_valid_tour(ref.tour));
  const ExactResult opt = solve_held_karp(inst);
  EXPECT_LE(ref.length, opt.length * 1.05) << "2-opt reference worse than 5%";
  EXPECT_GE(ref.length, opt.length - 1e-9);
}

// --- TSPLIB ----------------------------------------------------------------------

TEST(Tsplib, ParsesEuc2d) {
  const std::string text =
      "NAME : tiny\n"
      "TYPE : TSP\n"
      "COMMENT : three cities\n"
      "DIMENSION : 3\n"
      "EDGE_WEIGHT_TYPE : EUC_2D\n"
      "NODE_COORD_SECTION\n"
      "1 0.0 0.0\n"
      "2 3.0 0.0\n"
      "3 0.0 4.0\n"
      "EOF\n";
  const TspInstance inst = parse_tsplib_string(text);
  EXPECT_EQ(inst.name(), "tiny");
  EXPECT_EQ(inst.num_cities(), 3u);
  EXPECT_DOUBLE_EQ(inst.distance(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(inst.distance(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(inst.distance(1, 2), 5.0);
  EXPECT_TRUE(inst.coordinates().has_value());
}

TEST(Tsplib, Euc2dRoundsToNearestInteger) {
  const std::string text =
      "NAME : round\nTYPE : TSP\nDIMENSION : 2\n"
      "EDGE_WEIGHT_TYPE : EUC_2D\nNODE_COORD_SECTION\n"
      "1 0 0\n"
      "2 1.2 0\n"
      "EOF\n";
  EXPECT_DOUBLE_EQ(parse_tsplib_string(text).distance(0, 1), 1.0);
}

TEST(Tsplib, ParsesFullMatrix) {
  const std::string text =
      "NAME : m\nTYPE : TSP\nDIMENSION : 3\n"
      "EDGE_WEIGHT_TYPE : EXPLICIT\nEDGE_WEIGHT_FORMAT : FULL_MATRIX\n"
      "EDGE_WEIGHT_SECTION\n"
      "0 1 2\n"
      "1 0 3\n"
      "2 3 0\n"
      "EOF\n";
  const TspInstance inst = parse_tsplib_string(text);
  EXPECT_DOUBLE_EQ(inst.distance(1, 2), 3.0);
  EXPECT_FALSE(inst.coordinates().has_value());
}

TEST(Tsplib, ParsesUpperRow) {
  const std::string text =
      "NAME : u\nTYPE : TSP\nDIMENSION : 3\n"
      "EDGE_WEIGHT_TYPE : EXPLICIT\nEDGE_WEIGHT_FORMAT : UPPER_ROW\n"
      "EDGE_WEIGHT_SECTION\n"
      "5 6\n"
      "7\n"
      "EOF\n";
  const TspInstance inst = parse_tsplib_string(text);
  EXPECT_DOUBLE_EQ(inst.distance(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(inst.distance(0, 2), 6.0);
  EXPECT_DOUBLE_EQ(inst.distance(1, 2), 7.0);
}

TEST(Tsplib, ParsesLowerDiagRow) {
  const std::string text =
      "NAME : l\nTYPE : TSP\nDIMENSION : 3\n"
      "EDGE_WEIGHT_TYPE : EXPLICIT\nEDGE_WEIGHT_FORMAT : LOWER_DIAG_ROW\n"
      "EDGE_WEIGHT_SECTION\n"
      "0\n"
      "5 0\n"
      "6 7 0\n"
      "EOF\n";
  const TspInstance inst = parse_tsplib_string(text);
  EXPECT_DOUBLE_EQ(inst.distance(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(inst.distance(0, 2), 6.0);
  EXPECT_DOUBLE_EQ(inst.distance(1, 2), 7.0);
}

TEST(Tsplib, RejectsUnsupportedContent) {
  EXPECT_THROW(parse_tsplib_string("DIMENSION : 2\n"
                                   "EDGE_WEIGHT_TYPE : GEO\nEOF\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_tsplib_string("EDGE_WEIGHT_TYPE : EUC_2D\nEOF\n"),
               std::invalid_argument);  // missing dimension
  EXPECT_THROW(parse_tsplib_string("TYPE : ATSP\nDIMENSION : 2\nEOF\n"),
               std::invalid_argument);
}

TEST(Tsplib, ExplicitMatrixRoundTrip) {
  const TspInstance original("rt", 3, {0, 1.5, 2.25, 1.5, 0, 3.75, 2.25, 3.75, 0});
  std::ostringstream out;
  write_tsplib(out, original);
  const TspInstance parsed = parse_tsplib_string(out.str());
  EXPECT_EQ(parsed.num_cities(), 3u);
  for (std::size_t u = 0; u < 3; ++u) {
    for (std::size_t v = 0; v < 3; ++v) {
      EXPECT_DOUBLE_EQ(parsed.distance(u, v), original.distance(u, v));
    }
  }
}

TEST(Tsplib, Euc2dWriteParseKeepsRoundedDistances) {
  const TspInstance original = generate_uniform(10, 50);
  std::ostringstream out;
  write_tsplib(out, original);
  const TspInstance parsed = parse_tsplib_string(out.str());
  ASSERT_EQ(parsed.num_cities(), original.num_cities());
  for (std::size_t u = 0; u < 10; ++u) {
    for (std::size_t v = 0; v < 10; ++v) {
      // Parsed distances are TSPLIB-rounded versions of the originals.
      EXPECT_NEAR(parsed.distance(u, v), original.distance(u, v), 0.5 + 1e-9);
    }
  }
}

TEST(Testset, ElevenInstancesWithDocumentedSizes) {
  const auto sizes = tsplib_like_sizes();
  ASSERT_EQ(sizes.size(), 11u);
  const auto instances = tsplib_like_testset();
  ASSERT_EQ(instances.size(), 11u);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    EXPECT_EQ(instances[i].num_cities(), sizes[i]);
    EXPECT_TRUE(instances[i].coordinates().has_value());
  }
}

TEST(Testset, DeterministicAcrossCalls) {
  const auto a = tsplib_like_testset_text();
  const auto b = tsplib_like_testset_text();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace qross::tsp
