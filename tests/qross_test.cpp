// Tests for src/qross: 1-D optimisers, the expected-minimum-fitness
// integral, sigmoid fitting, and the three parameter-selection strategies.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "problems/tsp/formulation.hpp"
#include "problems/tsp/generators.hpp"
#include "qross/min_fitness.hpp"
#include "qross/optimizers.hpp"
#include "qross/session.hpp"
#include "qross/sigmoid_fit.hpp"
#include "qross/strategies.hpp"
#include "solvers/simulated_annealer.hpp"
#include "surrogate/pipeline.hpp"

namespace qross::core {
namespace {

// --- optimisers -------------------------------------------------------------

TEST(Brent, FindsParabolaMinimum) {
  const auto result = opt::brent_minimize(
      [](double x) { return (x - 1.7) * (x - 1.7) + 3.0; }, -10.0, 10.0);
  EXPECT_NEAR(result.x, 1.7, 1e-6);
  EXPECT_NEAR(result.value, 3.0, 1e-10);
}

TEST(Brent, HandlesBoundaryMinimum) {
  const auto result =
      opt::brent_minimize([](double x) { return x; }, 2.0, 5.0);
  EXPECT_NEAR(result.x, 2.0, 1e-4);
}

TEST(Brent, NonSmoothObjective) {
  const auto result = opt::brent_minimize(
      [](double x) { return std::abs(x - 0.3); }, -2.0, 2.0);
  EXPECT_NEAR(result.x, 0.3, 1e-6);
}

TEST(Bisect, FindsRoot) {
  const double root = opt::bisect_root(
      [](double x) { return x * x * x - 8.0; }, 0.0, 10.0);
  EXPECT_NEAR(root, 2.0, 1e-8);
}

TEST(Bisect, RequiresSignChange) {
  EXPECT_THROW(
      opt::bisect_root([](double x) { return x * x + 1.0; }, -1.0, 1.0),
      std::invalid_argument);
}

TEST(Shgo, EscapesLocalMinimum) {
  // f has a local minimum near x = -1 (value ~1) and the global one near
  // x = 2 (value 0); pure local search from the wrong side gets trapped.
  auto f = [](double x) {
    return std::min((x + 1.0) * (x + 1.0) + 1.0, (x - 2.0) * (x - 2.0));
  };
  const auto result = opt::shgo_minimize(f, -5.0, 5.0);
  EXPECT_NEAR(result.x, 2.0, 1e-4);
  EXPECT_NEAR(result.value, 0.0, 1e-8);
}

TEST(Shgo, OscillatoryObjective) {
  auto f = [](double x) { return std::sin(5.0 * x) + 0.1 * x * x; };
  opt::ShgoConfig config;
  config.num_samples = 128;
  config.num_refinements = 5;
  const auto result = opt::shgo_minimize(f, -4.0, 4.0, config);
  // Global minimum near x ~ -0.3 (sin = -1 branch closest to zero).
  EXPECT_LT(result.value, -0.85);
}

// --- expected minimum fitness --------------------------------------------------

TEST(MinFitness, InfiniteWhenInfeasible) {
  EXPECT_TRUE(std::isinf(expected_min_fitness(0.0, 100.0, 10.0, 32)));
}

TEST(MinFitness, DegenerateStdIsMean) {
  EXPECT_DOUBLE_EQ(expected_min_fitness(0.5, 42.0, 0.0, 32), 42.0);
}

TEST(MinFitness, DecreasesWithPf) {
  // More feasible replicas => lower expected minimum.
  double previous = std::numeric_limits<double>::infinity();
  for (double pf : {0.1, 0.3, 0.6, 1.0}) {
    const double value = expected_min_fitness(pf, 100.0, 10.0, 32);
    EXPECT_LT(value, previous) << "pf=" << pf;
    previous = value;
  }
}

TEST(MinFitness, DecreasesWithBatchSize) {
  const double small = expected_min_fitness(0.5, 100.0, 10.0, 8);
  const double large = expected_min_fitness(0.5, 100.0, 10.0, 128);
  EXPECT_LT(large, small);
}

TEST(MinFitness, SingleSampleIsTruncatedMean) {
  // m = 1: E[min] = E[max(d, 0)] ~ mean when mean >> std.
  const double value = expected_min_fitness(1.0, 200.0, 5.0, 1);
  EXPECT_NEAR(value, 200.0, 0.5);
}

class MinFitnessMcParam
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(MinFitnessMcParam, AnalyticMatchesMonteCarlo) {
  const auto [pf, mean, std] = GetParam();
  const std::size_t batch = 64;  // pf * B >> 1 so both estimators agree
  const double analytic = expected_min_fitness(pf, mean, std, batch);
  const double mc =
      expected_min_fitness_monte_carlo(pf, mean, std, batch, 20000, 9);
  EXPECT_NEAR(analytic, mc, 0.05 * std + 0.002 * mean)
      << "pf=" << pf << " mean=" << mean << " std=" << std;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MinFitnessMcParam,
    ::testing::Values(std::make_tuple(0.25, 100.0, 10.0),
                      std::make_tuple(0.5, 100.0, 10.0),
                      std::make_tuple(1.0, 100.0, 10.0),
                      std::make_tuple(0.5, 50.0, 20.0),
                      std::make_tuple(1.0, 300.0, 3.0)));

// --- sigmoid fitting ------------------------------------------------------------

class SigmoidRecoveryParam
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(SigmoidRecoveryParam, RecoversParametersFromCleanData) {
  const auto [theta_s, theta_o] = GetParam();
  const SigmoidParams truth{theta_s, theta_o};
  std::vector<double> a_values, pf_values;
  for (double a = 1.0; a <= 60.0; a += 2.0) {
    a_values.push_back(a);
    pf_values.push_back(truth(a));
  }
  const SigmoidFitResult fit = fit_sigmoid(a_values, pf_values);
  // Compare predicted curves rather than raw parameters (flat data gives
  // parameter slack but curve agreement is what matters).
  for (double a = 2.0; a <= 58.0; a += 4.0) {
    EXPECT_NEAR(fit.params(a), truth(a), 0.02) << "a=" << a;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SigmoidRecoveryParam,
                         ::testing::Values(std::make_pair(0.5, 10.0),
                                           std::make_pair(0.3, 6.0),
                                           std::make_pair(1.5, 45.0),
                                           std::make_pair(0.15, 3.0)));

TEST(SigmoidFit, ToleratesNoise) {
  const SigmoidParams truth{0.4, 10.0};
  Rng rng(3);
  std::vector<double> a_values, pf_values;
  for (double a = 2.0; a <= 60.0; a += 1.5) {
    a_values.push_back(a);
    // Binomial-like noise around the truth (B = 16 solver batch).
    int hits = 0;
    for (int k = 0; k < 16; ++k) hits += rng.bernoulli(truth(a)) ? 1 : 0;
    pf_values.push_back(hits / 16.0);
  }
  const SigmoidFitResult fit = fit_sigmoid(a_values, pf_values);
  EXPECT_NEAR(fit.params.inverse(0.5), truth.inverse(0.5), 2.0);
}

TEST(SigmoidFit, InverseMatchesForward) {
  const SigmoidParams p{0.7, 12.0};
  for (double prob : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(p(p.inverse(prob)), prob, 1e-12);
  }
}

TEST(SigmoidFit, RejectsTooFewPoints) {
  EXPECT_THROW(
      fit_sigmoid(std::vector<double>{1.0}, std::vector<double>{0.5}),
      std::invalid_argument);
}

// --- strategies (against an analytically-trained surrogate) ---------------------

/// Builds a surrogate trained on the analytic solver response used in
/// surrogate_test.cpp, centred at A ~ 20 on the log scale.
struct AnalyticWorld {
  surrogate::SolverSurrogate surrogate;
  std::array<double, surrogate::kNumTspFeatures> features{};
  double anchor = 1.0;
  double mid_log_a = 0.0;  // true sigmoid midpoint in log A

  static constexpr double kSteepness = 3.0;

  double true_pf(double a) const {
    return 1.0 / (1.0 + std::exp(-kSteepness * (std::log(a) - mid_log_a)));
  }
};

AnalyticWorld make_world(std::uint64_t seed) {
  using namespace qross::surrogate;
  AnalyticWorld world;
  Dataset dataset;
  Rng rng(seed);
  for (std::size_t id = 0; id < 10; ++id) {
    const auto inst = tsp::generate_uniform(6 + id % 4, derive_seed(seed, id));
    const PreparedTspInstance prepared(inst);
    const auto features = extract_features(prepared.prepared());
    const double anchor = scale_anchor(features);
    const double mid = std::log(20.0) + 0.05 * (features[0] - 8.0);
    for (std::size_t k = 0; k < 28; ++k) {
      const double a = std::exp(rng.uniform(std::log(1.0), std::log(200.0)));
      DatasetRow row;
      row.instance_id = id;
      row.features = features;
      row.scale_anchor = anchor;
      row.relaxation_parameter = a;
      row.pf =
          1.0 / (1.0 + std::exp(-AnalyticWorld::kSteepness *
                                (std::log(a) - mid)));
      // Energy dips at the transition then grows: a "dipper" shaped Eavg.
      row.energy_avg =
          anchor * (1.0 + 0.15 * std::abs(std::log(a) - mid));
      row.energy_std = anchor * 0.08;
      dataset.rows.push_back(row);
    }
    if (id == 0) {
      world.features = features;
      world.anchor = anchor;
      world.mid_log_a = mid;
    }
  }
  world.surrogate = SolverSurrogate();  // default (full) training budget
  world.surrogate.train(dataset);
  return world;
}

StrategyContext make_context(const AnalyticWorld& world) {
  StrategyContext context;
  context.surrogate = &world.surrogate;
  context.features = world.features;
  context.anchor = world.anchor;
  context.a_min = 1.0;
  context.a_max = 200.0;
  context.batch_size = 16;
  return context;
}

TEST(Mfs, ProposesOnTheSlope) {
  const AnalyticWorld world = make_world(41);
  const StrategyContext context = make_context(world);
  const MinimumFitnessStrategy mfs;
  const double a = mfs.propose(context);
  // The optimal parameter lies on the sigmoid slope (paper hypothesis):
  // 0 < Pf(a) < 1 with room on both sides.
  const double pf = world.true_pf(a);
  EXPECT_GT(pf, 0.02) << "a=" << a;
  EXPECT_LT(pf, 0.999) << "a=" << a;
}

TEST(Mfs, LandscapeHasFiniteDipRegion) {
  const AnalyticWorld world = make_world(42);
  const StrategyContext context = make_context(world);
  const MinimumFitnessStrategy mfs;
  const auto landscape = mfs.landscape(context, 48);
  ASSERT_EQ(landscape.size(), 48u);
  int finite = 0;
  for (const auto& [a, value] : landscape) {
    if (std::isfinite(value)) ++finite;
  }
  EXPECT_GT(finite, 10);
}

TEST(Pbs, HitsRequestedFeasibility) {
  const AnalyticWorld world = make_world(43);
  const StrategyContext context = make_context(world);
  for (double target : {0.2, 0.5, 0.8}) {
    const PfBasedStrategy pbs(target);
    const double a = pbs.propose(context);
    EXPECT_NEAR(world.true_pf(a), target, 0.15)
        << "target=" << target << " proposed A=" << a;
  }
}

TEST(Pbs, MonotoneInTarget) {
  const AnalyticWorld world = make_world(44);
  const StrategyContext context = make_context(world);
  const double a20 = PfBasedStrategy(0.2).propose(context);
  const double a80 = PfBasedStrategy(0.8).propose(context);
  EXPECT_LT(a20, a80);
}

TEST(Ofs, ConvergesOnKnownSigmoid) {
  // OFS against an exact sigmoid oracle: after bound search plus a few
  // samples, its fitted curve should match the oracle's midpoint.
  const SigmoidParams truth{0.5, 12.0};  // midpoint A = 24
  OnlineFittingStrategy ofs(7);
  StrategyContext context;  // OFS ignores the surrogate
  context.a_min = 1.0;
  context.a_max = 200.0;

  Rng rng(5);
  for (int trial = 0; trial < 12; ++trial) {
    const double a = ofs.propose(context);
    EXPECT_GE(a, context.a_min);
    EXPECT_LE(a, context.a_max);
    solvers::SolverSample sample;
    sample.relaxation_parameter = a;
    int hits = 0;
    for (int k = 0; k < 32; ++k) hits += rng.bernoulli(truth(a)) ? 1 : 0;
    sample.stats.pf = hits / 32.0;
    sample.stats.batch_size = 32;
    ofs.observe(sample);
  }
  ASSERT_TRUE(ofs.last_fit().has_value());
  EXPECT_NEAR(ofs.last_fit()->params.inverse(0.5), truth.inverse(0.5), 6.0);
}

TEST(Ofs, ProposalsConcentrateOnSlope) {
  const SigmoidParams truth{0.8, 20.0};  // midpoint A = 25, fairly steep
  OnlineFittingStrategy ofs(11);
  StrategyContext context;
  context.a_min = 1.0;
  context.a_max = 200.0;
  Rng rng(6);
  std::vector<double> late_proposals;
  for (int trial = 0; trial < 20; ++trial) {
    const double a = ofs.propose(context);
    if (trial >= 8) late_proposals.push_back(a);
    solvers::SolverSample sample;
    sample.relaxation_parameter = a;
    sample.stats.pf = truth(a);  // noiseless oracle
    ofs.observe(sample);
  }
  // Late proposals should sit in the oracle's slope band.
  for (double a : late_proposals) {
    EXPECT_GT(truth(a), 0.01) << a;
    EXPECT_LT(truth(a), 0.99) << a;
  }
}

TEST(Composed, FollowsPaperSchedule) {
  const AnalyticWorld world = make_world(45);
  const StrategyContext context = make_context(world);
  ComposedStrategy composed(3);

  // Trial 1: MFS; trials 2-3: PBS at 80% / 20%; later: OFS.
  const double a1 = composed.propose(context);
  solvers::SolverSample s1;
  s1.relaxation_parameter = a1;
  s1.stats.pf = world.true_pf(a1);
  composed.observe(s1);

  const double a2 = composed.propose(context);
  solvers::SolverSample s2;
  s2.relaxation_parameter = a2;
  s2.stats.pf = world.true_pf(a2);
  composed.observe(s2);

  const double a3 = composed.propose(context);
  EXPECT_NEAR(world.true_pf(a2), 0.8, 0.2);
  EXPECT_NEAR(world.true_pf(a3), 0.2, 0.2);
  EXPECT_EQ(composed.num_trials(), 3u);
  // All proposals inside the box.
  for (double a : {a1, a2, a3}) {
    EXPECT_GE(a, context.a_min);
    EXPECT_LE(a, context.a_max);
  }
}

// --- session loop -----------------------------------------------------------------

TEST(Session, TracksBestFitnessMonotonically) {
  const auto inst = tsp::generate_uniform(6, 71);
  const surrogate::PreparedTspInstance prepared(inst);
  solvers::SolveOptions options;
  options.num_replicas = 8;
  options.num_sweeps = 150;
  options.seed = 3;
  solvers::BatchRunner runner(prepared.problem(),
                              std::make_shared<solvers::SimulatedAnnealer>(),
                              options);
  Rng rng(8);
  const TuningResult result = run_tuning_loop(
      runner, 6, [&] { return rng.uniform(20.0, 80.0); });
  ASSERT_EQ(result.samples.size(), 6u);
  ASSERT_EQ(result.best_fitness.size(), 6u);
  for (std::size_t i = 1; i < result.best_fitness.size(); ++i) {
    EXPECT_LE(result.best_fitness[i], result.best_fitness[i - 1]);
  }
  EXPECT_EQ(runner.num_calls(), 6u);
}

TEST(Session, ObserverSeesEveryTrial) {
  const auto inst = tsp::generate_uniform(5, 72);
  const surrogate::PreparedTspInstance prepared(inst);
  solvers::SolveOptions options;
  options.num_replicas = 4;
  options.num_sweeps = 60;
  solvers::BatchRunner runner(prepared.problem(),
                              std::make_shared<solvers::SimulatedAnnealer>(),
                              options);
  int observed = 0;
  run_tuning_loop(
      runner, 4, [] { return 30.0; },
      [&](const solvers::SolverSample&) { ++observed; });
  EXPECT_EQ(observed, 4);
}

}  // namespace
}  // namespace qross::core
