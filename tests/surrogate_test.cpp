// Tests for src/surrogate: features, normalisers, the preparation pipeline,
// dataset generation (against a stub solver with a known response), and the
// surrogate model's ability to learn a synthetic solver.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "problems/tsp/exact.hpp"
#include "problems/tsp/formulation.hpp"
#include "problems/tsp/generators.hpp"
#include "surrogate/dataset.hpp"
#include "surrogate/features.hpp"
#include "surrogate/model.hpp"
#include "surrogate/normalizer.hpp"
#include "surrogate/pipeline.hpp"

namespace qross::surrogate {
namespace {

TEST(Features, DeterministicAndDocumented) {
  const auto inst = tsp::generate_uniform(12, 3);
  const auto a = extract_features(inst);
  const auto b = extract_features(inst);
  EXPECT_EQ(a, b);
  EXPECT_EQ(feature_names().size(), kNumTspFeatures);
  EXPECT_DOUBLE_EQ(a[0], 12.0);
  EXPECT_NEAR(a[1], std::log(12.0), 1e-12);
}

TEST(Features, ScaleLinearity) {
  // Scaling every coordinate by c scales all distance-valued features by c.
  std::vector<tsp::Point> pts{{0, 0}, {1, 0}, {2, 3}, {5, 1}, {4, 4}};
  std::vector<tsp::Point> scaled;
  for (auto p : pts) scaled.push_back({p.x * 3.0, p.y * 3.0});
  const auto f1 = extract_features(tsp::TspInstance("a", pts));
  const auto f2 = extract_features(tsp::TspInstance("b", scaled));
  // Distance-scale features (indices 2-5, 7-19, 21-22) triple; ratios and
  // counts (0, 1, 6, 20, 23) stay put.
  for (std::size_t i : {2u, 3u, 4u, 5u, 12u, 15u, 18u, 19u, 21u}) {
    EXPECT_NEAR(f2[i], 3.0 * f1[i], 1e-9) << "feature " << i;
  }
  for (std::size_t i : {0u, 1u, 6u, 20u, 23u}) {
    EXPECT_NEAR(f2[i], f1[i], 1e-9) << "feature " << i;
  }
}

TEST(Features, MstOfPathGraph) {
  // Collinear evenly-spaced points: MST is the path, total length n-1 gaps.
  std::vector<tsp::Point> pts{{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  const auto f = extract_features(tsp::TspInstance("path", pts));
  EXPECT_NEAR(f[15], 3.0, 1e-9);   // MST total
  EXPECT_NEAR(f[16], 1.0, 1e-9);   // MST mean edge
  EXPECT_NEAR(f[17], 0.0, 1e-9);   // MST edge stddev
}

TEST(Features, AnchorPositive) {
  const auto f = extract_features(tsp::generate_clustered(10, 7));
  EXPECT_GT(scale_anchor(f), 0.0);
}

TEST(Standardizer, RoundTrips) {
  Standardizer s;
  s.fit({{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}});
  const std::vector<double> row{2.5, 15.0};
  const auto t = s.transform(row);
  const auto back = s.inverse(t);
  EXPECT_NEAR(back[0], row[0], 1e-12);
  EXPECT_NEAR(back[1], row[1], 1e-12);
  // Transformed training data has mean 0 / std 1 per column.
  const auto t1 = s.transform(std::vector<double>{1.0, 10.0});
  const auto t3 = s.transform(std::vector<double>{3.0, 30.0});
  EXPECT_NEAR(t1[0] + t3[0], 0.0, 1e-12);
}

TEST(Standardizer, ConstantColumnPassesThroughCentred) {
  Standardizer s;
  s.fit({{5.0}, {5.0}, {5.0}});
  EXPECT_DOUBLE_EQ(s.transform(std::vector<double>{5.0})[0], 0.0);
  EXPECT_DOUBLE_EQ(s.transform(std::vector<double>{6.0})[0], 1.0);
}

TEST(Standardizer, SaveLoadRoundTrip) {
  Standardizer s;
  s.fit({{1.0, -2.0}, {3.0, 4.0}, {-1.0, 0.5}});
  std::stringstream stream;
  s.save(stream);
  const Standardizer loaded = Standardizer::load(stream);
  const std::vector<double> probe{0.7, 1.3};
  EXPECT_EQ(s.transform(probe), loaded.transform(probe));
}

TEST(Standardizer, GuardsMisuse) {
  Standardizer s;
  EXPECT_THROW(s.transform(std::vector<double>{1.0}), std::invalid_argument);
  s.fit({{1.0}, {2.0}});
  EXPECT_THROW(s.transform(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(RelaxationTransform, LogRoundTrip) {
  for (double a : {0.1, 1.0, 25.0, 900.0}) {
    EXPECT_NEAR(inverse_transform_relaxation(transform_relaxation(a)), a,
                1e-12);
  }
  EXPECT_THROW(transform_relaxation(0.0), std::invalid_argument);
}

TEST(Pipeline, PreservesOptimalTour) {
  const auto inst = tsp::generate_uniform(8, 11);
  const PreparedTspInstance prepared(inst);
  // Optimal tour of the prepared instance maps back to the original optimum.
  const auto prep_opt = tsp::solve_held_karp(prepared.prepared());
  const auto orig_opt = tsp::solve_held_karp(inst);
  EXPECT_NEAR(inst.tour_length(prep_opt.tour), orig_opt.length, 1e-6);
  EXPECT_NEAR(prepared.to_original_length(prep_opt.length), orig_opt.length,
              1e-6);
}

TEST(Pipeline, NormalisesScale) {
  for (std::uint64_t seed : {1, 5, 9}) {
    const auto inst = tsp::generate_exponential(10, seed);
    const PreparedTspInstance prepared(inst);
    EXPECT_NEAR(prepared.prepared().mean_distance(), kTargetMeanDistance,
                1e-6);
  }
}

TEST(Pipeline, OriginalTourLengthScoresDecodedAssignments) {
  const auto inst = tsp::generate_uniform(6, 12);
  const PreparedTspInstance prepared(inst);
  Rng rng(13);
  const tsp::Tour tour = rng.permutation(6);
  const auto x = tsp::encode_tour(prepared.prepared(), tour);
  EXPECT_NEAR(prepared.original_tour_length(x), inst.tour_length(tour), 1e-9);
  // Infeasible assignment scores +inf.
  std::vector<std::uint8_t> bad(36, 0);
  EXPECT_TRUE(std::isinf(prepared.original_tour_length(bad)));
}

// --- dataset ------------------------------------------------------------------

/// Stub solver with an exactly-known sigmoid feasibility response: it emits
/// `pf(A) * B` encoded random tours and fills the rest with infeasible
/// assignments.  Lets us test the sweep logic without solver noise.
class StubSigmoidSolver final : public solvers::QuboSolver {
 public:
  StubSigmoidSolver(const tsp::TspInstance& instance, double a_mid,
                    double steepness)
      : instance_(instance), a_mid_(a_mid), steepness_(steepness) {}

  std::string name() const override { return "stub"; }

  // The runner passes the *relaxed* QUBO; recover A from the model's linear
  // coefficients?  Simpler: the stub keeps its own call log through
  // `last_a`, set by the test via the penalty scale.  Instead we infer A
  // from the energy of the all-ones assignment, which grows linearly in A.
  qubo::SolveBatch solve(const qubo::QuboModel& model,
                         const solvers::SolveOptions& options) const override {
    // For the TSP penalty builder, E(0...0) = A * sum_r b_r^2 = A * 2n.
    const std::size_t n = instance_.num_cities();
    const double a =
        model.energy(qubo::Bits(model.num_vars(), 0)) / (2.0 * double(n));
    const double pf =
        1.0 / (1.0 + std::exp(-steepness_ * (a - a_mid_)));
    Rng rng(options.seed);
    qubo::SolveBatch batch;
    for (std::size_t r = 0; r < options.num_replicas; ++r) {
      qubo::SolveResult result;
      if ((static_cast<double>(r) + 0.5) / double(options.num_replicas) < pf) {
        result.assignment = tsp::encode_tour(instance_, rng.permutation(n));
      } else {
        result.assignment = qubo::Bits(model.num_vars(), 0);
      }
      result.qubo_energy = model.energy(result.assignment);
      batch.results.push_back(std::move(result));
    }
    return batch;
  }

 private:
  const tsp::TspInstance& instance_;
  double a_mid_;
  double steepness_;
};

TEST(Dataset, SlopeBoundsBracketTheTransition) {
  const auto inst = tsp::generate_uniform(6, 21);
  const auto problem = tsp::build_tsp_problem(inst);
  auto solver = std::make_shared<StubSigmoidSolver>(inst, 20.0, 0.8);
  solvers::SolveOptions options;
  options.num_replicas = 16;
  solvers::BatchRunner runner(problem, solver, options);

  SweepConfig config;
  const SlopeBounds bounds = find_slope_bounds(runner, 20.0, config);
  EXPECT_LT(bounds.a_left, 20.0);
  EXPECT_GT(bounds.a_right, 20.0);
  EXPECT_FALSE(bounds.probes.empty());
}

TEST(Dataset, SweepCoversSlopeAndPlateaus) {
  const auto inst = tsp::generate_uniform(6, 22);
  const auto problem = tsp::build_tsp_problem(inst);
  auto solver = std::make_shared<StubSigmoidSolver>(inst, 15.0, 1.0);
  solvers::SolveOptions options;
  options.num_replicas = 16;
  solvers::BatchRunner runner(problem, solver, options);

  SweepConfig config;
  config.slope_points = 8;
  config.plateau_points = 2;
  const auto samples = sweep_instance(runner, 15.0, config);
  int slope = 0, low_plateau = 0, high_plateau = 0;
  for (const auto& s : samples) {
    if (s.stats.pf == 0.0) ++low_plateau;
    else if (s.stats.pf == 1.0) ++high_plateau;
    else ++slope;
  }
  EXPECT_GE(slope, 4) << "sigmoid slope under-sampled";
  EXPECT_GE(low_plateau, 1);
  EXPECT_GE(high_plateau, 1);
}

TEST(Dataset, CsvRoundTrip) {
  Dataset dataset;
  for (int i = 0; i < 3; ++i) {
    DatasetRow row;
    row.instance_id = static_cast<std::size_t>(i);
    for (std::size_t f = 0; f < kNumTspFeatures; ++f) {
      row.features[f] = 0.25 * static_cast<double>(f) + i;
    }
    row.scale_anchor = 10.0 + i;
    row.relaxation_parameter = 3.5 * (i + 1);
    row.pf = 0.125 * (i + 1);
    row.energy_avg = 100.0 + i;
    row.energy_std = 5.0 - i;
    dataset.rows.push_back(row);
  }
  std::stringstream stream;
  dataset.save_csv(stream);
  const Dataset loaded = Dataset::load_csv(stream);
  ASSERT_EQ(loaded.rows.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(loaded.rows[i].instance_id, dataset.rows[i].instance_id);
    EXPECT_EQ(loaded.rows[i].features, dataset.rows[i].features);
    EXPECT_DOUBLE_EQ(loaded.rows[i].pf, dataset.rows[i].pf);
    EXPECT_DOUBLE_EQ(loaded.rows[i].energy_avg, dataset.rows[i].energy_avg);
  }
}

TEST(Dataset, BuildDatasetProducesLabelledRows) {
  std::vector<tsp::TspInstance> instances;
  instances.push_back(tsp::generate_uniform(6, 31));
  instances.push_back(tsp::generate_uniform(7, 32));
  // Use the stub against the *prepared* instances: build_dataset prepares
  // internally, so the stub must tolerate any instance; we approximate by
  // letting pf depend only on A, which the stub computes from the model.
  // Simplest: run with a real (cheap) solver instead.
  auto solver = std::make_shared<StubSigmoidSolver>(instances[0], 25.0, 0.7);
  // NOTE: decode against instance 0's size only works when sizes match, so
  // keep both instances at size 6 for the stub:
  instances.pop_back();
  instances.push_back(tsp::generate_uniform(6, 33));

  solvers::SolveOptions options;
  options.num_replicas = 8;
  SweepConfig sweep;
  sweep.slope_points = 4;
  sweep.plateau_points = 1;
  const Dataset dataset = build_dataset(instances, solver, options, sweep);
  EXPECT_GT(dataset.rows.size(), instances.size() * 5);
  for (const auto& row : dataset.rows) {
    EXPECT_LT(row.instance_id, instances.size());
    EXPECT_GT(row.scale_anchor, 0.0);
    EXPECT_GE(row.pf, 0.0);
    EXPECT_LE(row.pf, 1.0);
    EXPECT_GT(row.relaxation_parameter, 0.0);
  }
}

// --- surrogate model -------------------------------------------------------------

/// Builds a synthetic dataset from an analytic "solver": Pf is a sigmoid in
/// log A whose midpoint depends on the instance's mean distance, and the
/// energies are smooth functions of A.  If the surrogate can't learn this,
/// it can't learn a real solver either.
Dataset synthetic_dataset(std::size_t instances, std::size_t points,
                          std::uint64_t seed) {
  Dataset dataset;
  Rng rng(seed);
  for (std::size_t id = 0; id < instances; ++id) {
    const auto inst = tsp::generate_uniform(6 + id % 4, derive_seed(seed, id));
    const PreparedTspInstance prepared(inst);
    const auto features = extract_features(prepared.prepared());
    const double anchor = scale_anchor(features);
    const double mid = std::log(20.0) + 0.1 * (features[0] - 8.0);
    for (std::size_t k = 0; k < points; ++k) {
      const double a = std::exp(rng.uniform(std::log(2.0), std::log(200.0)));
      DatasetRow row;
      row.instance_id = id;
      row.features = features;
      row.scale_anchor = anchor;
      row.relaxation_parameter = a;
      row.pf = 1.0 / (1.0 + std::exp(-3.0 * (std::log(a) - mid)));
      row.energy_avg = anchor * (1.0 + 0.1 * std::log(a));
      row.energy_std = anchor * 0.05;
      dataset.rows.push_back(row);
    }
  }
  return dataset;
}

TEST(SurrogateModel, LearnsAnalyticSolverResponse) {
  const Dataset dataset = synthetic_dataset(10, 24, 5);
  SolverSurrogate surrogate;  // default (full) training budget
  surrogate.train(dataset);

  // Check predictions on a held-out instance from the same generator family.
  const auto inst = tsp::generate_uniform(7, 999);
  const PreparedTspInstance prepared(inst);
  const auto features = extract_features(prepared.prepared());
  const double anchor = scale_anchor(features);
  const double mid = std::log(20.0) + 0.1 * (features[0] - 8.0);

  double pf_error = 0.0;
  double energy_rel_error = 0.0;
  int count = 0;
  for (double a : {3.0, 8.0, 15.0, 25.0, 60.0, 150.0}) {
    const auto pred = surrogate.predict(features, anchor, a);
    const double true_pf =
        1.0 / (1.0 + std::exp(-3.0 * (std::log(a) - mid)));
    const double true_eavg = anchor * (1.0 + 0.1 * std::log(a));
    pf_error += std::abs(pred.pf - true_pf);
    energy_rel_error += std::abs(pred.energy_avg - true_eavg) / true_eavg;
    ++count;
  }
  EXPECT_LT(pf_error / count, 0.12) << "mean Pf error too large";
  EXPECT_LT(energy_rel_error / count, 0.10) << "mean Eavg error too large";
}

TEST(SurrogateModel, PredictionsAreProbabilitiesAndPositiveStd) {
  const Dataset dataset = synthetic_dataset(6, 16, 7);
  SurrogateConfig config;
  config.pf_training.max_epochs = 60;
  config.energy_training.max_epochs = 60;
  SolverSurrogate surrogate(config);
  surrogate.train(dataset);
  const auto& row = dataset.rows.front();
  for (double a : {1.0, 10.0, 400.0}) {
    const auto pred = surrogate.predict(row.features, row.scale_anchor, a);
    EXPECT_GE(pred.pf, 0.0);
    EXPECT_LE(pred.pf, 1.0);
    EXPECT_GT(pred.energy_std, 0.0);
  }
}

TEST(SurrogateModel, SaveLoadRoundTrip) {
  const Dataset dataset = synthetic_dataset(5, 12, 9);
  SurrogateConfig config;
  config.pf_training.max_epochs = 40;
  config.energy_training.max_epochs = 40;
  SolverSurrogate surrogate(config);
  surrogate.train(dataset);

  std::stringstream stream;
  surrogate.save(stream);
  const SolverSurrogate loaded = SolverSurrogate::load(stream);
  const auto& row = dataset.rows.front();
  for (double a : {2.0, 20.0, 90.0}) {
    const auto p1 = surrogate.predict(row.features, row.scale_anchor, a);
    const auto p2 = loaded.predict(row.features, row.scale_anchor, a);
    EXPECT_DOUBLE_EQ(p1.pf, p2.pf);
    EXPECT_DOUBLE_EQ(p1.energy_avg, p2.energy_avg);
    EXPECT_DOUBLE_EQ(p1.energy_std, p2.energy_std);
  }
}

TEST(SurrogateModel, GuardsMisuse) {
  SolverSurrogate surrogate;
  const std::array<double, kNumTspFeatures> features{};
  EXPECT_THROW(surrogate.predict(features, 1.0, 10.0), std::invalid_argument);
  Dataset tiny;
  tiny.rows.resize(2);
  EXPECT_THROW(surrogate.train(tiny), std::invalid_argument);
}

TEST(SurrogateModel, PredictSweepMatchesPointwise) {
  const Dataset dataset = synthetic_dataset(5, 12, 11);
  SurrogateConfig config;
  config.pf_training.max_epochs = 30;
  config.energy_training.max_epochs = 30;
  SolverSurrogate surrogate(config);
  surrogate.train(dataset);
  const auto& row = dataset.rows.front();
  const std::vector<double> grid{1.0, 5.0, 25.0, 125.0};
  const auto sweep = surrogate.predict_sweep(row.features, row.scale_anchor, grid);
  ASSERT_EQ(sweep.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto point = surrogate.predict(row.features, row.scale_anchor, grid[i]);
    EXPECT_DOUBLE_EQ(sweep[i].pf, point.pf);
    EXPECT_DOUBLE_EQ(sweep[i].energy_avg, point.energy_avg);
  }
}

}  // namespace
}  // namespace qross::surrogate
