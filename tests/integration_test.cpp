// End-to-end integration tests: dataset generation with a real solver,
// surrogate training, and the composed QROSS strategy against baselines on
// a miniature version of the paper's §5.1 experiment.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include "problems/tsp/generators.hpp"
#include "problems/tsp/heuristics.hpp"
#include "qross/session.hpp"
#include "qross/strategies.hpp"
#include "solvers/qbsolv.hpp"
#include "surrogate/dataset.hpp"
#include "surrogate/model.hpp"
#include "surrogate/pipeline.hpp"
#include "tuning/random_search.hpp"

namespace qross {
namespace {

/// Shared fixture: a small Qbsolv-backed world (Qbsolv is the fastest of
/// the solver kernels, keeping this integration test snappy).
class QrossPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // A deliberately weakened Qbsolv: the full-strength hybrid solves these
    // tiny instances so reliably that the Pf transition collapses to a step,
    // which starves the dataset of slope samples.  Short budgets restore the
    // stochastic texture the surrogate learns from.
    solvers::QbsolvParams params;
    params.num_rounds = 1;
    params.subsolver_sweeps = 10;
    solver_ = std::make_shared<solvers::Qbsolv>(params);
    instances_ = tsp::generate_synthetic_dataset(8, 6, 9, 0xfeed);

    solvers::SolveOptions options;
    options.num_replicas = 8;
    options.num_sweeps = 10;
    options.seed = 17;

    surrogate::SweepConfig sweep;
    sweep.slope_points = 6;
    sweep.plateau_points = 2;
    sweep.bisection_steps = 6;
    dataset_ = new surrogate::Dataset(
        surrogate::build_dataset(instances_, solver_, options, sweep));

    surrogate::SurrogateConfig config;
    config.pf_training.max_epochs = 150;
    config.energy_training.max_epochs = 150;
    surrogate_ = new surrogate::SolverSurrogate(config);
    surrogate_->train(*dataset_);
  }

  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
    delete surrogate_;
    surrogate_ = nullptr;
  }

  static solvers::SolverPtr solver_;
  static std::vector<tsp::TspInstance> instances_;
  static surrogate::Dataset* dataset_;
  static surrogate::SolverSurrogate* surrogate_;
};

solvers::SolverPtr QrossPipeline::solver_;
std::vector<tsp::TspInstance> QrossPipeline::instances_;
surrogate::Dataset* QrossPipeline::dataset_ = nullptr;
surrogate::SolverSurrogate* QrossPipeline::surrogate_ = nullptr;

TEST_F(QrossPipeline, DatasetCoversSlopeForEveryInstance) {
  std::vector<int> slope_samples(instances_.size(), 0);
  for (const auto& row : dataset_->rows) {
    if (row.pf > 0.0 && row.pf < 1.0) ++slope_samples[row.instance_id];
  }
  int covered = 0;
  for (int c : slope_samples) {
    if (c >= 1) ++covered;
  }
  // The sigmoid slope must be sampled for most training instances; very
  // sharp per-instance transitions can evade even the bisection refinement.
  EXPECT_GE(covered, static_cast<int>(instances_.size()) / 2);
}

TEST_F(QrossPipeline, SurrogatePfIsDiscriminative) {
  // On training instances, predicted Pf at the left plateau should be far
  // below predicted Pf at the right plateau.
  double low_sum = 0.0, high_sum = 0.0;
  int count = 0;
  std::set<std::size_t> seen;
  for (const auto& row : dataset_->rows) {
    if (!seen.insert(row.instance_id).second) continue;
    const auto low = surrogate_->predict(row.features, row.scale_anchor, 2.0);
    const auto high = surrogate_->predict(row.features, row.scale_anchor, 90.0);
    low_sum += low.pf;
    high_sum += high.pf;
    ++count;
  }
  EXPECT_LT(low_sum / count, 0.35);
  EXPECT_GT(high_sum / count, 0.65);
}

TEST_F(QrossPipeline, OfflineProposalYieldsFeasibleFirstTrial) {
  // The paper's one-call recipe: "if obtaining a feasible solution in one
  // trial is of primary importance ... p = 90% would be a reasonable
  // choice" (§3.4.2).  PBS at 0.9, with zero solver calls, should produce a
  // feasible batch on a fresh instance most of the time.
  int feasible = 0;
  const int num_tests = 4;
  for (int i = 0; i < num_tests; ++i) {
    const auto inst = tsp::generate_uniform(8, 5000 + i);
    const surrogate::PreparedTspInstance prepared(inst);
    const auto features = surrogate::extract_features(prepared.prepared());

    core::StrategyContext context;
    context.surrogate = surrogate_;
    context.features = features;
    context.anchor = surrogate::scale_anchor(features);
    context.a_min = 1.0;
    context.a_max = 100.0;
    context.batch_size = 8;

    const core::PfBasedStrategy pbs(0.9);
    const double a = pbs.propose(context);

    solvers::SolveOptions options;
    options.num_replicas = 8;
    options.num_sweeps = 30;
    options.seed = 100 + i;
    solvers::BatchRunner runner(prepared.problem(), solver_, options);
    const auto sample = runner.run(a);
    if (sample.stats.has_feasible()) ++feasible;
  }
  EXPECT_GE(feasible, num_tests - 1);
}

TEST_F(QrossPipeline, ComposedStrategyBeatsRandomOnAverage) {
  // Miniature Fig. 3: 3 test instances, 6 trials; QROSS's average best
  // fitness must not lose to random search.  (A weak form of the paper's
  // claim, kept loose because this is a unit-test-sized budget.)
  double qross_total = 0.0;
  double random_total = 0.0;
  for (int i = 0; i < 3; ++i) {
    const auto inst = tsp::generate_uniform(8, 7000 + i);
    const surrogate::PreparedTspInstance prepared(inst);
    const auto features = surrogate::extract_features(prepared.prepared());
    const auto ref = tsp::reference_solution(inst);

    core::StrategyContext context;
    context.surrogate = surrogate_;
    context.features = features;
    context.anchor = surrogate::scale_anchor(features);
    context.a_min = 1.0;
    context.a_max = 100.0;
    context.batch_size = 8;

    solvers::SolveOptions options;
    options.num_replicas = 8;
    options.num_sweeps = 30;
    options.seed = 200 + i;

    {
      solvers::BatchRunner runner(prepared.problem(), solver_, options);
      core::ComposedStrategy strategy(static_cast<std::uint64_t>(i));
      const auto result = core::run_tuning_loop(
          runner, 6, [&] { return strategy.propose(context); },
          [&](const solvers::SolverSample& s) { strategy.observe(s); });
      const double best = result.best_fitness.back();
      qross_total += std::isfinite(best)
                         ? prepared.to_original_length(best) / ref.length
                         : 4.0;
    }
    {
      solvers::BatchRunner runner(prepared.problem(), solver_, options);
      tuning::RandomSearch random(1.0, 100.0, static_cast<std::uint64_t>(i));
      const auto result = core::run_tuning_loop(
          runner, 6, [&] { return random.propose(); });
      const double best = result.best_fitness.back();
      random_total += std::isfinite(best)
                          ? prepared.to_original_length(best) / ref.length
                          : 4.0;
    }
  }
  EXPECT_LE(qross_total, random_total + 0.15)
      << "QROSS lost clearly to random search";
}

TEST_F(QrossPipeline, PipelineIsDeterministic) {
  // Re-running dataset generation with identical seeds reproduces rows.
  solvers::SolveOptions options;
  options.num_replicas = 8;
  options.num_sweeps = 30;
  options.seed = 17;
  surrogate::SweepConfig sweep;
  sweep.slope_points = 6;
  sweep.plateau_points = 2;
  std::vector<tsp::TspInstance> two(instances_.begin(),
                                    instances_.begin() + 2);
  const auto a = surrogate::build_dataset(two, solver_, options, sweep);
  const auto b = surrogate::build_dataset(two, solver_, options, sweep);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rows[i].relaxation_parameter,
                     b.rows[i].relaxation_parameter);
    EXPECT_DOUBLE_EQ(a.rows[i].pf, b.rows[i].pf);
    EXPECT_DOUBLE_EQ(a.rows[i].energy_avg, b.rows[i].energy_avg);
  }
}

}  // namespace
}  // namespace qross
