// Tests for the parallel-tempering solver kernel.

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "problems/tsp/formulation.hpp"
#include "problems/tsp/generators.hpp"
#include "qubo/batch.hpp"
#include "solvers/parallel_tempering.hpp"
#include "solvers/simulated_annealer.hpp"

namespace qross::solvers {
namespace {

using qubo::Bits;
using qubo::QuboModel;

QuboModel planted_model() {
  QuboModel m(4);
  m.add_term(0, 0, -10.0);
  m.add_term(2, 2, -10.0);
  m.add_term(1, 1, 5.0);
  m.add_term(3, 3, 5.0);
  m.add_term(0, 2, -1.0);
  m.add_term(1, 3, 8.0);
  m.add_term(0, 1, 2.0);
  return m;
}

TEST(ParallelTempering, FindsPlantedOptimum) {
  const QuboModel model = planted_model();
  const ParallelTempering solver;
  SolveOptions options;
  options.num_replicas = 8;
  options.num_sweeps = 100;
  options.seed = 5;
  const auto batch = solver.solve(model, options);
  ASSERT_EQ(batch.size(), 8u);
  const auto& best = batch.results[batch.best_index()];
  EXPECT_NEAR(best.qubo_energy, -21.0, 1e-9);
  EXPECT_EQ(best.assignment, (Bits{1, 0, 1, 0}));
  for (const auto& r : batch.results) {
    EXPECT_NEAR(r.qubo_energy, model.energy(r.assignment), 1e-9);
  }
}

TEST(ParallelTempering, DeterministicUnderSeed) {
  const QuboModel model = planted_model();
  const ParallelTempering solver;
  SolveOptions options;
  options.num_replicas = 6;
  options.num_sweeps = 40;
  options.seed = 11;
  const auto a = solver.solve(model, options);
  const auto b = solver.solve(model, options);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.results[i].assignment, b.results[i].assignment);
  }
}

TEST(ParallelTempering, SingleChainDegeneratesToFixedTemperature) {
  const QuboModel model = planted_model();
  const ParallelTempering solver;
  SolveOptions options;
  options.num_replicas = 1;
  options.num_sweeps = 200;
  options.seed = 3;
  const auto batch = solver.solve(model, options);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(qubo::is_valid_assignment(model, batch.results[0].assignment));
}

TEST(ParallelTempering, ZeroVariableModel) {
  const QuboModel model(0);
  const ParallelTempering solver;
  SolveOptions options;
  options.num_replicas = 3;
  EXPECT_EQ(solver.solve(model, options).size(), 3u);
}

TEST(ParallelTempering, ReachesFeasibilityOnTspQubo) {
  // The exchange mechanism should cross the TSP penalty barriers at least
  // as reliably as plain SA with the same sweep budget.
  const auto instance = tsp::generate_uniform(8, 77);
  const auto problem = tsp::build_tsp_problem(instance);
  const auto model = problem.to_qubo(0.8 * instance.max_distance());
  SolveOptions options;
  options.num_replicas = 12;
  options.num_sweeps = 300;
  options.seed = 9;
  const ParallelTempering pt;
  std::size_t feasible = 0;
  for (const auto& r : pt.solve(model, options).results) {
    if (problem.is_feasible(r.assignment)) ++feasible;
  }
  EXPECT_GT(feasible, 0u) << "PT found no feasible tour at a generous A";
}

TEST(ParallelTempering, ColdChainsOutperformPureRandom) {
  Rng rng(21);
  QuboModel model(16);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = i; j < 16; ++j) {
      model.add_term(i, j, rng.uniform(-4.0, 4.0));
    }
  }
  SolveOptions options;
  options.num_replicas = 8;
  options.num_sweeps = 60;
  options.seed = 2;
  const ParallelTempering solver;
  const auto batch = solver.solve(model, options);
  // Mean random-assignment energy as the null reference.
  qross::RunningStats random_energy;
  Bits x(16);
  for (int rep = 0; rep < 512; ++rep) {
    for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
    random_energy.add(model.energy(x));
  }
  EXPECT_LT(batch.results[batch.best_index()].qubo_energy,
            random_energy.mean() - 2.0 * random_energy.stddev());
}

TEST(ParallelTempering, RejectsBadParams) {
  PtParams params;
  params.hot_acceptance = 1.5;
  EXPECT_THROW(ParallelTempering{params}, std::invalid_argument);
  PtParams params2;
  params2.temperature_ratio = 2.0;
  EXPECT_THROW(ParallelTempering{params2}, std::invalid_argument);
  PtParams params3;
  params3.exchange_rate = 0.0;
  EXPECT_THROW(ParallelTempering{params3}, std::invalid_argument);
}

}  // namespace
}  // namespace qross::solvers
