// Edge-case coverage for common/thread_pool (run under the Debug+asan CI
// job): worker-count clamping, sequential degeneration, exception
// propagation through the replica fan-out, submit-from-worker re-entrancy,
// and destruction with tasks still pending.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "solvers/replica_for.hpp"

namespace qross {
namespace {

TEST(ThreadPoolTest, ZeroWorkersClampsToAtLeastOne) {
  ThreadPool pool(0);  // hardware_concurrency, clamped to >= 1
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, SingleWorkerParallelForIsSequential) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(16, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected) << "one worker must degenerate to a plain loop";
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kItems = 200;
  std::vector<std::atomic<int>> hits(kItems);
  pool.parallel_for(kItems, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroItemsIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "must not be called"; });
  pool.wait_idle();
}

// Raw ThreadPool tasks must not throw (they would terminate); throwing
// bodies go through solvers::for_each_replica, which captures the first
// exception and rethrows it on the caller thread.
TEST(ThreadPoolTest, ThrowingReplicaBodyPropagatesToCaller) {
  std::atomic<int> completed{0};
  EXPECT_THROW(
      solvers::for_each_replica(8, 4,
                                [&](std::size_t r) {
                                  if (r == 3) {
                                    throw std::runtime_error("replica 3");
                                  }
                                  completed.fetch_add(1);
                                }),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 7) << "other replicas still ran";

  // The fan-out remains usable after a throwing batch.
  std::atomic<int> second{0};
  solvers::for_each_replica(4, 4, [&](std::size_t) { second.fetch_add(1); });
  EXPECT_EQ(second.load(), 4);
}

TEST(ThreadPoolTest, SubmitFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> outer{0}, inner{0};
  for (int k = 0; k < 8; ++k) {
    pool.submit([&] {
      outer.fetch_add(1);
      pool.submit([&] { inner.fetch_add(1); });
    });
  }
  pool.wait_idle();  // waits for the nested submissions too
  EXPECT_EQ(outer.load(), 8);
  EXPECT_EQ(inner.load(), 8);
}

TEST(ThreadPoolTest, DestructionDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int k = 0; k < 64; ++k) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
    // Destructor: workers drain the remaining queue before joining.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, WaitIdleWithNoTasksReturnsImmediately) {
  ThreadPool pool(3);
  pool.wait_idle();
  std::atomic<int> ran{0};
  pool.submit([&] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace qross
