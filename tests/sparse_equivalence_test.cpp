// Sparse/dense equivalence: SparseAdjacency-backed energies, flip deltas,
// and post-flip fields must match the dense QuboModel reference bit-for-bit
// (same accumulation order) on random dense, random sparse, and the
// paper-workload MVC / TSP-formulation models.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "problems/mvc/mvc.hpp"
#include "problems/tsp/formulation.hpp"
#include "problems/tsp/generators.hpp"
#include "qubo/incremental.hpp"
#include "qubo/model.hpp"
#include "qubo/sparse.hpp"

namespace qross::qubo {
namespace {

QuboModel random_model(std::size_t n, std::uint64_t seed, double density) {
  Rng rng(seed);
  QuboModel model(n);
  model.set_offset(rng.uniform(-5.0, 5.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      if (rng.uniform() < density) {
        model.add_term(i, j, rng.uniform(-10.0, 10.0));
      }
    }
  }
  return model;
}

Bits random_bits(std::size_t n, Rng& rng) {
  Bits x(n);
  for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
  return x;
}

/// The full equivalence property checked for one model.
void expect_equivalent(const QuboModel& model, std::uint64_t seed) {
  const std::size_t n = model.num_vars();
  const SparseAdjacencyPtr adj = SparseAdjacency::build(model);

  // Structural summaries.
  EXPECT_EQ(adj->num_vars(), n);
  EXPECT_DOUBLE_EQ(adj->offset(), model.offset());
  EXPECT_EQ(adj->num_nonzeros(), model.num_nonzeros());
  EXPECT_DOUBLE_EQ(adj->max_abs_coefficient(), model.max_abs_coefficient());
  std::size_t total_degree = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(adj->diagonal(i), model.linear(i));
    total_degree += adj->degree(i);
    const auto neighbors = adj->neighbors(i);
    const auto weights = adj->weights(i);
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      EXPECT_NE(neighbors[k], i);
      EXPECT_DOUBLE_EQ(weights[k], model.interaction(i, neighbors[k]));
      if (k > 0) {
        EXPECT_LT(neighbors[k - 1], neighbors[k]);
      }
    }
  }
  EXPECT_EQ(total_degree, 2 * adj->num_interactions());

  Rng rng(seed);
  IncrementalEvaluator eval(adj);
  for (int rep = 0; rep < 16; ++rep) {
    const Bits x = random_bits(n, rng);
    // Direct O(nnz) evaluation matches the dense sum exactly.
    EXPECT_DOUBLE_EQ(adj->energy(x), model.energy(x));
    eval.set_state(x);
    EXPECT_DOUBLE_EQ(eval.energy(), model.energy(x));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(adj->flip_delta(x, i), model.flip_delta(x, i));
      // Post-set_state local fields reproduce the dense deltas bit-for-bit.
      EXPECT_DOUBLE_EQ(eval.flip_delta(i), model.flip_delta(x, i));
    }
    // A random flip trajectory stays consistent with dense recomputation
    // (incremental accumulation order differs, so tolerance not identity).
    for (int step = 0; step < 64 && n > 0; ++step) {
      const auto i = static_cast<std::size_t>(rng.uniform_int(n));
      const double predicted = eval.flip_delta(i);
      EXPECT_NEAR(predicted, model.flip_delta(eval.state(), i), 1e-9);
      eval.apply_flip(i);
      EXPECT_NEAR(eval.energy(), model.energy(eval.state()), 1e-6);
      EXPECT_NEAR(eval.energy(), adj->energy(eval.state()), 1e-6);
    }
  }
}

TEST(SparseEquivalence, RandomDenseModels) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    expect_equivalent(random_model(24, 100 + seed, 0.9), seed);
  }
}

TEST(SparseEquivalence, RandomSparseModels) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    expect_equivalent(random_model(48, 200 + seed, 0.05), seed);
  }
}

TEST(SparseEquivalence, MvcPenaltyModel) {
  const auto instance = mvc::generate_random_mvc(40, 0.12, 7);
  expect_equivalent(instance.to_qubo(2.0), 7);
}

TEST(SparseEquivalence, TspFormulationModel) {
  const auto instance = tsp::generate_uniform(7, 0x5EED);
  const auto problem = tsp::build_tsp_problem(instance);
  expect_equivalent(problem.to_qubo(25.0), 3);
}

TEST(SparseEquivalence, EmptyAndDiagonalOnlyModels) {
  expect_equivalent(QuboModel(0), 1);
  QuboModel diag(5);
  diag.set_offset(1.25);
  for (std::size_t i = 0; i < 5; ++i) diag.add_term(i, i, 0.5 * (i + 1));
  expect_equivalent(diag, 2);
  EXPECT_EQ(SparseAdjacency::build(diag)->num_interactions(), 0u);
}

TEST(SparseEquivalence, AdjacencyIsSharedNotCopied) {
  const QuboModel model = random_model(16, 42, 0.3);
  const SparseAdjacencyPtr adj = SparseAdjacency::build(model);
  IncrementalEvaluator a(adj);
  IncrementalEvaluator b(adj);
  EXPECT_EQ(a.adjacency().get(), b.adjacency().get());
  EXPECT_EQ(a.adjacency().get(), adj.get());
  // Evaluators over the same adjacency stay independent in state.
  Rng rng(9);
  const Bits xa = random_bits(16, rng);
  const Bits xb = random_bits(16, rng);
  a.set_state(xa);
  b.set_state(xb);
  EXPECT_DOUBLE_EQ(a.energy(), model.energy(xa));
  EXPECT_DOUBLE_EQ(b.energy(), model.energy(xb));
}

TEST(SparseEquivalence, SparsityStatsOnPaperWorkloads) {
  // MVC: one interaction per edge; density falls with graph sparsity.
  const auto instance = mvc::generate_random_mvc(60, 0.08, 11);
  const auto adj = SparseAdjacency::build(instance.to_qubo(2.0));
  EXPECT_EQ(adj->num_interactions(), instance.edges().size());
  EXPECT_LT(adj->density(), 0.25);
  // TSP penalty QUBO: O(n^3) of the O(n^4) dense entries.
  const auto tsp_instance = tsp::generate_uniform(8, 0xACE);
  const auto tsp_adj = SparseAdjacency::build(
      tsp::build_tsp_problem(tsp_instance).to_qubo(25.0));
  EXPECT_LT(tsp_adj->density(), 0.5);
}

}  // namespace
}  // namespace qross::qubo
