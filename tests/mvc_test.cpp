// Tests for src/problems/mvc (appendix-B case study).

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "problems/mvc/mvc.hpp"

namespace qross::mvc {
namespace {

MvcInstance triangle() {
  return MvcInstance(3, {{0, 1}, {1, 2}, {0, 2}});
}

TEST(Mvc, CoverChecks) {
  const MvcInstance inst = triangle();
  EXPECT_TRUE(inst.is_cover(std::vector<std::uint8_t>{1, 1, 0}));
  EXPECT_FALSE(inst.is_cover(std::vector<std::uint8_t>{1, 0, 0}));
  EXPECT_EQ(inst.uncovered_edges(std::vector<std::uint8_t>{0, 0, 0}), 3u);
  EXPECT_EQ(inst.uncovered_edges(std::vector<std::uint8_t>{0, 1, 0}), 1u);
}

TEST(Mvc, CoverWeightSumsSelection) {
  const MvcInstance inst(3, {{0, 1}}, {0.5, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(inst.cover_weight(std::vector<std::uint8_t>{1, 0, 1}), 4.5);
}

TEST(Mvc, ValidationRejectsBadInput) {
  EXPECT_THROW(MvcInstance(2, {{0, 0}}), std::invalid_argument);  // loop
  EXPECT_THROW(MvcInstance(2, {{0, 5}}), std::invalid_argument);  // range
  EXPECT_THROW(MvcInstance(2, {}, {1.0}), std::invalid_argument); // weights
  EXPECT_THROW(MvcInstance(2, {}, {1.0, -1.0}), std::invalid_argument);
}

TEST(Mvc, QuboEnergyMatchesAppendixFormula) {
  // E(u) = sum_i w_i u_i + sigma * (#uncovered edges): verify over all
  // assignments of a small weighted instance.
  const MvcInstance inst(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}},
                         {0.3, 0.7, 1.1, 0.2});
  for (double sigma : {0.5, 2.0, 100.0}) {
    const qubo::QuboModel model = inst.to_qubo(sigma);
    for (std::size_t mask = 0; mask < 16; ++mask) {
      std::vector<std::uint8_t> u(4);
      for (std::size_t i = 0; i < 4; ++i) u[i] = (mask >> i) & 1;
      const double expected =
          inst.cover_weight(u) +
          sigma * static_cast<double>(inst.uncovered_edges(u));
      EXPECT_NEAR(model.energy(u), expected, 1e-9);
    }
  }
}

TEST(Mvc, GeneratorIsDeterministicAndInRange) {
  const MvcInstance a = generate_random_mvc(20, 0.5, 3);
  const MvcInstance b = generate_random_mvc(20, 0.5, 3);
  EXPECT_EQ(a.edges().size(), b.edges().size());
  EXPECT_EQ(a.num_vertices(), 20u);
  for (double w : a.weights()) {
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, 1.0);
  }
  // p = 0.5 should give roughly half of the 190 possible edges.
  EXPECT_GT(a.edges().size(), 60u);
  EXPECT_LT(a.edges().size(), 130u);
}

TEST(Mvc, GeneratorEdgeProbabilityExtremes) {
  EXPECT_EQ(generate_random_mvc(10, 0.0, 1).edges().size(), 0u);
  EXPECT_EQ(generate_random_mvc(10, 1.0, 1).edges().size(), 45u);
}

TEST(Mvc, GreedyProducesCover) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const MvcInstance inst = generate_random_mvc(18, 0.4, seed);
    const auto cover = greedy_cover(inst);
    EXPECT_TRUE(inst.is_cover(cover)) << "seed " << seed;
  }
}

class MvcExactParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MvcExactParam, ExactIsOptimalAndBeatsGreedy) {
  const MvcInstance inst = generate_random_mvc(12, 0.4, GetParam());
  const ExactCover exact = solve_exact_cover(inst);
  EXPECT_TRUE(inst.is_cover(exact.selection));
  EXPECT_NEAR(exact.weight, inst.cover_weight(exact.selection), 1e-9);
  const auto greedy = greedy_cover(inst);
  EXPECT_LE(exact.weight, inst.cover_weight(greedy) + 1e-9);

  // Brute-force cross-check on this small size.
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t mask = 0; mask < (1u << 12); ++mask) {
    std::vector<std::uint8_t> u(12);
    for (std::size_t i = 0; i < 12; ++i) u[i] = (mask >> i) & 1;
    if (inst.is_cover(u)) best = std::min(best, inst.cover_weight(u));
  }
  EXPECT_NEAR(exact.weight, best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MvcExactParam, ::testing::Values(1, 2, 3, 4));

TEST(Mvc, ExactGuardsSize) {
  const MvcInstance inst = generate_random_mvc(31, 0.1, 1);
  EXPECT_THROW(solve_exact_cover(inst), std::invalid_argument);
}

TEST(Mvc, LargePenaltyMakesCoversDominant) {
  // With sigma > max weight, the QUBO minimum over all assignments is a
  // cover (appendix B's theoretical claim).
  const MvcInstance inst = generate_random_mvc(10, 0.5, 9);
  const qubo::QuboModel model = inst.to_qubo(1.5);  // weights < 1
  double best_energy = std::numeric_limits<double>::infinity();
  std::vector<std::uint8_t> best(10);
  for (std::size_t mask = 0; mask < 1024; ++mask) {
    std::vector<std::uint8_t> u(10);
    for (std::size_t i = 0; i < 10; ++i) u[i] = (mask >> i) & 1;
    const double e = model.energy(u);
    if (e < best_energy) {
      best_energy = e;
      best = u;
    }
  }
  EXPECT_TRUE(inst.is_cover(best));
}

}  // namespace
}  // namespace qross::mvc
