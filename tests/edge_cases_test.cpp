// Edge cases and failure injection across modules: degenerate instances,
// hostile solvers, empty batches, and strategy fallbacks.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "problems/tsp/exact.hpp"
#include "problems/tsp/formulation.hpp"
#include "problems/tsp/generators.hpp"
#include "problems/tsp/heuristics.hpp"
#include "problems/tsp/preprocess.hpp"
#include "qross/min_fitness.hpp"
#include "qross/session.hpp"
#include "qross/strategies.hpp"
#include "solvers/analog_noise.hpp"
#include "solvers/batch_runner.hpp"
#include "solvers/qbsolv.hpp"
#include "solvers/simulated_annealer.hpp"
#include "surrogate/dataset.hpp"
#include "surrogate/features.hpp"
#include "surrogate/pipeline.hpp"

namespace qross {
namespace {

// --- degenerate TSP sizes ----------------------------------------------------

TEST(TinyTsp, SingleCity) {
  const tsp::TspInstance inst("one", {{3.0, 4.0}});
  EXPECT_DOUBLE_EQ(inst.tour_length(tsp::Tour{0}), 0.0);
  const auto problem = tsp::build_tsp_problem(inst);
  EXPECT_EQ(problem.num_vars(), 1u);
  // The only feasible assignment is x = {1}.
  EXPECT_TRUE(problem.is_feasible(std::vector<std::uint8_t>{1}));
  EXPECT_FALSE(problem.is_feasible(std::vector<std::uint8_t>{0}));
}

TEST(TinyTsp, TwoCities) {
  const tsp::TspInstance inst("two", {{0.0, 0.0}, {5.0, 0.0}});
  const auto problem = tsp::build_tsp_problem(inst);
  const auto x = tsp::encode_tour(inst, tsp::Tour{1, 0});
  EXPECT_TRUE(problem.is_feasible(x));
  EXPECT_DOUBLE_EQ(problem.objective(x), 10.0);  // out and back
}

TEST(TinyTsp, ThreeCitiesAllToursEqual) {
  // With 3 cities every tour is a rotation/reflection of the same triangle.
  const tsp::TspInstance inst("tri", {{0, 0}, {1, 0}, {0, 1}});
  Rng rng(1);
  const double expected = inst.tour_length(tsp::Tour{0, 1, 2});
  for (int rep = 0; rep < 6; ++rep) {
    EXPECT_DOUBLE_EQ(inst.tour_length(rng.permutation(3)), expected);
  }
}

TEST(TinyTsp, MvodmOnDegenerateSizes) {
  // Must not crash or produce NaN on 1- and 2-city instances.
  const tsp::TspInstance one("one", {{0.0, 0.0}});
  const auto r1 = tsp::mvodm_preprocess(one);
  EXPECT_EQ(r1.shifted.num_cities(), 1u);
  const tsp::TspInstance two("two", {{0.0, 0.0}, {1.0, 1.0}});
  const auto r2 = tsp::mvodm_preprocess(two);
  EXPECT_TRUE(std::isfinite(r2.shifted.distance(0, 1)));
}

TEST(TinyTsp, IdenticalCities) {
  // Duplicate coordinates give zero distances; nothing should divide by 0.
  const tsp::TspInstance inst("dup", {{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}});
  EXPECT_DOUBLE_EQ(inst.mean_distance(), 0.0);
  EXPECT_DOUBLE_EQ(inst.min_positive_distance(), 0.0);
  const auto features = surrogate::extract_features(inst);
  for (double f : features) EXPECT_TRUE(std::isfinite(f));
  const auto tour = tsp::solve_held_karp(inst);
  EXPECT_DOUBLE_EQ(tour.length, 0.0);
}

TEST(TinyTsp, CollinearCities) {
  const tsp::TspInstance inst("line", {{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  const auto opt = tsp::solve_held_karp(inst);
  EXPECT_DOUBLE_EQ(opt.length, 6.0);  // sweep right and return
}

// --- hostile solvers ----------------------------------------------------------

/// Always returns the all-zeros assignment (infeasible for TSP).
class AlwaysInfeasibleSolver final : public solvers::QuboSolver {
 public:
  std::string name() const override { return "always_infeasible"; }
  qubo::SolveBatch solve(const qubo::QuboModel& model,
                         const solvers::SolveOptions& options) const override {
    qubo::SolveBatch batch;
    for (std::size_t r = 0; r < options.num_replicas; ++r) {
      qubo::SolveResult result;
      result.assignment.assign(model.num_vars(), 0);
      result.qubo_energy = model.energy(result.assignment);
      batch.results.push_back(std::move(result));
    }
    return batch;
  }
};

TEST(HostileSolver, BatchStatsStayWellDefined) {
  const auto inst = tsp::generate_uniform(5, 1);
  const auto problem = tsp::build_tsp_problem(inst);
  solvers::BatchRunner runner(problem,
                              std::make_shared<AlwaysInfeasibleSolver>(),
                              solvers::SolveOptions{.num_replicas = 4});
  const auto sample = runner.run(10.0);
  EXPECT_DOUBLE_EQ(sample.stats.pf, 0.0);
  EXPECT_TRUE(std::isinf(sample.stats.min_fitness));
  EXPECT_DOUBLE_EQ(sample.stats.energy_avg, 0.0);  // objective of empty tours
  EXPECT_TRUE(std::isinf(runner.best_fitness()));
}

TEST(HostileSolver, SessionLoopSurvivesAllInfeasible) {
  const auto inst = tsp::generate_uniform(5, 2);
  const auto problem = tsp::build_tsp_problem(inst);
  solvers::BatchRunner runner(problem,
                              std::make_shared<AlwaysInfeasibleSolver>(),
                              solvers::SolveOptions{.num_replicas = 4});
  const auto result =
      core::run_tuning_loop(runner, 5, [] { return 20.0; });
  for (double best : result.best_fitness) EXPECT_TRUE(std::isinf(best));
}

TEST(HostileSolver, OfsExploresWithoutEverSeeingFeasible) {
  core::OnlineFittingStrategy ofs(3);
  core::StrategyContext context;
  context.a_min = 1.0;
  context.a_max = 100.0;
  // Feed it 10 observations with Pf == 0 everywhere.
  for (int trial = 0; trial < 10; ++trial) {
    const double a = ofs.propose(context);
    EXPECT_GE(a, context.a_min);
    EXPECT_LE(a, context.a_max);
    solvers::SolverSample sample;
    sample.relaxation_parameter = a;
    sample.stats.pf = 0.0;
    ofs.observe(sample);
  }
  // With an all-zero history the strategy must keep pushing A upward.
  const double final_proposal = ofs.propose(context);
  EXPECT_GE(final_proposal, 1.0);
  EXPECT_LE(final_proposal, 100.0);
}

TEST(HostileSolver, SweepHandlesAllInfeasibleSolver) {
  const auto inst = tsp::generate_uniform(5, 3);
  const auto problem = tsp::build_tsp_problem(inst);
  solvers::BatchRunner runner(problem,
                              std::make_shared<AlwaysInfeasibleSolver>(),
                              solvers::SolveOptions{.num_replicas = 4});
  surrogate::SweepConfig config;
  config.slope_points = 3;
  config.plateau_points = 1;
  config.max_bound_steps = 6;
  const auto samples = surrogate::sweep_instance(runner, 10.0, config);
  EXPECT_FALSE(samples.empty());
  for (const auto& s : samples) EXPECT_DOUBLE_EQ(s.stats.pf, 0.0);
}

// --- analog noise corner cases ---------------------------------------------------

TEST(AnalogNoiseEdge, MoreNoiseSamplesThanReplicas) {
  solvers::AnalogNoiseParams params;
  params.num_noise_samples = 16;
  const solvers::AnalogNoiseSolver solver(
      std::make_shared<solvers::SimulatedAnnealer>(), params);
  qubo::QuboModel model(3);
  model.add_term(0, 0, -1.0);
  solvers::SolveOptions options;
  options.num_replicas = 3;  // fewer than noise samples
  const auto batch = solver.solve(model, options);
  EXPECT_EQ(batch.size(), 3u);
}

TEST(AnalogNoiseEdge, SingleReplica) {
  const solvers::AnalogNoiseSolver solver(
      std::make_shared<solvers::SimulatedAnnealer>());
  qubo::QuboModel model(2);
  model.add_term(0, 1, 1.0);
  solvers::SolveOptions options;
  options.num_replicas = 1;
  EXPECT_EQ(solver.solve(model, options).size(), 1u);
}

// --- qbsolv corner cases ----------------------------------------------------------

TEST(QbsolvEdge, SubproblemCoveringWholeModel) {
  qubo::QuboModel model(4);
  model.add_term(0, 1, -2.0);
  model.add_term(2, 3, 1.0);
  qubo::Bits x(4, 1);
  const auto sub = solvers::clamp_subproblem(model, {0, 1, 2, 3}, x);
  EXPECT_EQ(sub.num_vars(), 4u);
  EXPECT_DOUBLE_EQ(sub.energy(x), model.energy(x));
}

TEST(QbsolvEdge, EmptySubset) {
  qubo::QuboModel model(3);
  model.add_term(0, 0, 5.0);
  qubo::Bits x{1, 0, 1};
  const auto sub = solvers::clamp_subproblem(model, {}, x);
  EXPECT_EQ(sub.num_vars(), 0u);
  EXPECT_DOUBLE_EQ(sub.offset(), model.energy(x));
}

TEST(QbsolvEdge, SubproblemSizeLargerThanModel) {
  solvers::QbsolvParams params;
  params.subproblem_size = 1000;
  const solvers::Qbsolv solver(params);
  qubo::QuboModel model(4);
  model.add_term(0, 0, -1.0);
  solvers::SolveOptions options;
  options.num_replicas = 2;
  options.num_sweeps = 10;
  const auto batch = solver.solve(model, options);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_DOUBLE_EQ(batch.results[batch.best_index()].qubo_energy, -1.0);
}

// --- expected-min-fitness guards ---------------------------------------------------

TEST(MinFitnessEdge, RejectsBadArguments) {
  EXPECT_THROW(core::expected_min_fitness(-0.1, 0.0, 1.0, 8),
               std::invalid_argument);
  EXPECT_THROW(core::expected_min_fitness(0.5, 0.0, -1.0, 8),
               std::invalid_argument);
  EXPECT_THROW(core::expected_min_fitness(0.5, 0.0, 1.0, 0),
               std::invalid_argument);
  core::MinFitnessConfig config;
  config.panels = 3;  // odd panel count invalid for Simpson
  EXPECT_THROW(core::expected_min_fitness(0.5, 0.0, 1.0, 8, config),
               std::invalid_argument);
}

TEST(MinFitnessEdge, NegativeMeanClampsAtZero) {
  // Non-negativity assumption: with mean far below zero, the expectation
  // approaches 0, never a negative value.
  const double value = core::expected_min_fitness(1.0, -50.0, 5.0, 16);
  EXPECT_GE(value, 0.0);
  EXPECT_LT(value, 1.0);
}

TEST(MinFitnessEdge, ZeroStdDegenerateNegativeMean) {
  EXPECT_DOUBLE_EQ(core::expected_min_fitness(0.5, -3.0, 0.0, 4), 0.0);
}

// --- strategy context validation -----------------------------------------------------

TEST(StrategyGuards, InvalidContextRejected) {
  const core::MinimumFitnessStrategy mfs;
  core::StrategyContext context;  // no surrogate
  context.a_min = 1.0;
  context.a_max = 100.0;
  EXPECT_THROW(mfs.propose(context), std::invalid_argument);
  EXPECT_THROW(core::PfBasedStrategy(0.0), std::invalid_argument);
  EXPECT_THROW(core::PfBasedStrategy(1.0), std::invalid_argument);
}

TEST(StrategyGuards, OfsRejectsInvalidBox) {
  core::OnlineFittingStrategy ofs;
  core::StrategyContext context;
  context.a_min = 5.0;
  context.a_max = 5.0;
  EXPECT_THROW(ofs.propose(context), std::invalid_argument);
}

// --- dataset / sweep guards -----------------------------------------------------------

TEST(SweepGuards, RejectsNonPositiveGuess) {
  const auto inst = tsp::generate_uniform(4, 9);
  const auto problem = tsp::build_tsp_problem(inst);
  solvers::BatchRunner runner(problem,
                              std::make_shared<solvers::SimulatedAnnealer>(),
                              solvers::SolveOptions{.num_replicas = 2,
                                                    .num_sweeps = 5});
  surrogate::SweepConfig config;
  EXPECT_THROW(surrogate::find_slope_bounds(runner, 0.0, config),
               std::invalid_argument);
}

TEST(DatasetGuards, LoadRejectsGarbage) {
  std::istringstream empty("");
  EXPECT_THROW(surrogate::Dataset::load_csv(empty), std::invalid_argument);
  std::istringstream bad_row("header\nnot,numbers,at,all\n");
  EXPECT_THROW(surrogate::Dataset::load_csv(bad_row), std::invalid_argument);
}

// --- heuristics on tiny tours -----------------------------------------------------------

TEST(HeuristicsEdge, TwoOptOnTriangleIsIdentity) {
  const tsp::TspInstance inst("tri", {{0, 0}, {1, 0}, {0, 1}});
  const tsp::Tour tour{0, 1, 2};
  EXPECT_EQ(tsp::two_opt(inst, tour), tour);
}

TEST(HeuristicsEdge, OrOptOnSmallTourIsIdentity) {
  const tsp::TspInstance inst("sq", {{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  const tsp::Tour tour{0, 1, 2, 3};
  EXPECT_EQ(tsp::or_opt(inst, tour), tour);
}

TEST(HeuristicsEdge, NearestNeighborSingleCity) {
  const tsp::TspInstance inst("one", {{0.0, 0.0}});
  EXPECT_EQ(tsp::nearest_neighbor_tour(inst, 0), tsp::Tour{0});
}

}  // namespace
}  // namespace qross
