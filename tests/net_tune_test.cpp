// Tuning-as-a-service over the wire: tune frame codecs (round trips and
// append-only legacy tolerance), the TSP instance transport helpers, and
// end-to-end sessions against a real Server + TuneService — bit-identity
// with in-process tuning, warm-cache replay, cancellation mid-session, and
// the error taxonomy for daemons without a tuner.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "counting_solver.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "problems/tsp/generators.hpp"
#include "qross/facade.hpp"
#include "service/tune_service.hpp"
#include "solvers/digital_annealer.hpp"
#include "solvers/qbsolv.hpp"

namespace qross::net {
namespace {

// --- codecs -----------------------------------------------------------------

TEST(NetTuneProtocolTest, SubmitTuneRoundTripsAndToleratesLegacyPayload) {
  SubmitTuneFrame submit;
  submit.tag = 77;
  submit.solver = "da";
  submit.strategy = kTunePbs;
  submit.pf_target = 0.65;
  submit.trials = 12;
  submit.a_min = 2.5;
  submit.a_max = 80.0;
  submit.seed = 0xBEEF;
  submit.instance = pack_tsp_instance(tsp::generate_uniform(7, 0xC0));
  submit.trace_id = 0xFACE;
  submit.instance_name = "alpha";

  const auto decoded = decode_submit_tune(encode_submit_tune(submit));
  EXPECT_EQ(decoded.tag, 77u);
  EXPECT_EQ(decoded.solver, "da");
  EXPECT_EQ(decoded.strategy, kTunePbs);
  EXPECT_DOUBLE_EQ(decoded.pf_target, 0.65);
  EXPECT_EQ(decoded.trials, 12u);
  EXPECT_DOUBLE_EQ(decoded.a_min, 2.5);
  EXPECT_DOUBLE_EQ(decoded.a_max, 80.0);
  EXPECT_EQ(decoded.seed, 0xBEEFu);
  EXPECT_EQ(decoded.instance.num_vars(), 7u);
  EXPECT_EQ(decoded.trace_id, 0xFACEu);
  EXPECT_EQ(decoded.instance_name, "alpha");

  // trace_id + instance_name were appended within v1: a first-cut sender's
  // frame ends at the instance and must decode with defaulted tail.
  auto legacy_bytes = encode_submit_tune(submit);
  legacy_bytes.resize(legacy_bytes.size() - 8 - (4 + submit.instance_name.size()));
  const auto legacy = decode_submit_tune(legacy_bytes);
  EXPECT_EQ(legacy.trace_id, 0u);
  EXPECT_TRUE(legacy.instance_name.empty());
  EXPECT_EQ(legacy.instance.num_vars(), 7u);
  EXPECT_EQ(legacy.seed, 0xBEEFu);
}

TEST(NetTuneProtocolTest, TuneStatusRoundTripsAndToleratesLegacyPayload) {
  TuneStatusFrame status;
  status.tag = 9;
  status.trial = 3;
  status.total = 10;
  status.relaxation_parameter = 17.5;
  status.pf = 0.4;
  status.best_length = 123.25;
  status.energy_avg = -5.5;
  status.energy_std = 1.25;
  status.feasible = true;

  const auto decoded = decode_tune_status(encode_tune_status(status));
  EXPECT_EQ(decoded.trial, 3u);
  EXPECT_EQ(decoded.total, 10u);
  EXPECT_DOUBLE_EQ(decoded.relaxation_parameter, 17.5);
  EXPECT_DOUBLE_EQ(decoded.energy_avg, -5.5);
  EXPECT_DOUBLE_EQ(decoded.energy_std, 1.25);
  EXPECT_TRUE(decoded.feasible);

  // The batch-summary tail (energy_avg, energy_std, feasible) was appended
  // within v1; an old sender's frame ends at best_length and feasibility
  // falls back to the finiteness of that length.
  auto legacy_bytes = encode_tune_status(status);
  legacy_bytes.resize(legacy_bytes.size() - (8 + 8 + 1));
  const auto legacy = decode_tune_status(legacy_bytes);
  EXPECT_EQ(legacy.energy_avg, 0.0);
  EXPECT_EQ(legacy.energy_std, 0.0);
  EXPECT_TRUE(legacy.feasible) << "finite best_length implies feasibility";

  TuneStatusFrame infeasible = status;
  infeasible.best_length = std::numeric_limits<double>::infinity();
  auto infeasible_bytes = encode_tune_status(infeasible);
  infeasible_bytes.resize(infeasible_bytes.size() - (8 + 8 + 1));
  EXPECT_FALSE(decode_tune_status(infeasible_bytes).feasible);
}

TEST(NetTuneProtocolTest, TuneResultRoundTripsAndToleratesLegacyPayload) {
  TuneResultFrame result;
  result.tag = 4;
  result.status = kTuneDone;
  result.best_length = 77.5;
  result.best_parameter = 23.0;
  result.best_tour = {0, 3, 1, 2};
  result.trials = {{10.0, 0.2, 90.0}, {23.0, 0.6, 77.5}};
  result.solver_invocations = 2;
  result.wall_ms = 12.5;

  const auto decoded = decode_tune_result(encode_tune_result(result));
  EXPECT_EQ(decoded.status, kTuneDone);
  EXPECT_EQ(decoded.best_tour, (std::vector<std::uint32_t>{0, 3, 1, 2}));
  ASSERT_EQ(decoded.trials.size(), 2u);
  EXPECT_DOUBLE_EQ(decoded.trials[1].relaxation_parameter, 23.0);
  EXPECT_EQ(decoded.solver_invocations, 2u);
  EXPECT_DOUBLE_EQ(decoded.wall_ms, 12.5);

  // solver_invocations + wall_ms were appended within v1.
  auto legacy_bytes = encode_tune_result(result);
  legacy_bytes.resize(legacy_bytes.size() - (8 + 8));
  const auto legacy = decode_tune_result(legacy_bytes);
  EXPECT_EQ(legacy.solver_invocations, 0u);
  EXPECT_EQ(legacy.wall_ms, 0.0);
  EXPECT_EQ(legacy.best_tour, result.best_tour);
  ASSERT_EQ(legacy.trials.size(), 2u);

  TuneResultFrame failed;
  failed.tag = 5;
  failed.status = kTuneFailed;
  failed.error = "solver exploded";
  const auto failed_decoded = decode_tune_result(encode_tune_result(failed));
  EXPECT_EQ(failed_decoded.status, kTuneFailed);
  EXPECT_EQ(failed_decoded.error, "solver exploded");
  EXPECT_TRUE(failed_decoded.best_tour.empty());
}

TEST(NetTuneProtocolTest, CancelTuneRoundTrips) {
  CancelTuneFrame cancel;
  cancel.tag = 31;
  EXPECT_EQ(decode_cancel_tune(encode_cancel_tune(cancel)).tag, 31u);
}

TEST(NetTuneProtocolTest, TspInstanceTransportIsBitExact) {
  const auto instance = tsp::generate_clustered(9, 0xC1);
  const auto unpacked =
      unpack_tsp_instance(pack_tsp_instance(instance), instance.name());
  ASSERT_EQ(unpacked.num_cities(), instance.num_cities());
  EXPECT_EQ(unpacked.name(), instance.name());
  for (std::size_t i = 0; i < instance.num_cities(); ++i) {
    for (std::size_t j = 0; j < instance.num_cities(); ++j) {
      EXPECT_EQ(unpacked.distance(i, j), instance.distance(i, j))
          << "distance(" << i << ", " << j << ") not IEEE-exact";
    }
  }
}

// --- end to end -------------------------------------------------------------

solvers::SolveOptions fast_options() {
  solvers::SolveOptions options;
  options.num_replicas = 8;
  options.num_sweeps = 10;
  options.seed = 3;
  return options;
}

class NetTuneTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    solvers::QbsolvParams params;
    params.num_rounds = 1;
    params.subsolver_sweeps = 10;
    surrogate::SweepConfig sweep;
    sweep.slope_points = 5;
    sweep.plateau_points = 1;
    sweep.bisection_steps = 5;
    tuner_ = new core::QrossTuner(core::QrossTuner::fit(
        tsp::generate_synthetic_dataset(8, 6, 9, 0xFACADE),
        std::make_shared<solvers::Qbsolv>(params), fast_options(), sweep));
  }
  static void TearDownTestSuite() {
    delete tuner_;
    tuner_ = nullptr;
  }

  void TearDown() override {
    server_.reset();
    tune_service_.reset();
    service_.reset();
  }

  /// Builds SolveService + TuneService + Server on an ephemeral TCP port.
  /// `with_tuner` = false leaves ServerConfig::tune null (the daemon-
  /// without---tuner configuration).  `slow_probes` gives the service a
  /// tuner whose probe solves run ~50M sweeps, so only cancellation paths
  /// can end a session within the test.
  Endpoint start(bool with_tuner = true, bool slow_probes = false,
                 std::size_t max_sessions = 4) {
    service_ = std::make_unique<service::SolveService>();
    ServerConfig config;
    config.listen.push_back(*Endpoint::parse("tcp:127.0.0.1:0"));
    config.registry = [this](const std::string& name) -> solvers::SolverPtr {
      if (name == "count") {
        return std::make_shared<testing::CountingSolver>(
            std::make_shared<solvers::DigitalAnnealer>(), invocations_);
      }
      return default_solver_registry(name);
    };
    if (with_tuner) {
      solvers::SolveOptions probe_options = fast_options();
      if (slow_probes) probe_options.num_sweeps = 50'000'000;
      service::TuneServiceConfig tune_config;
      tune_config.max_sessions = max_sessions;
      tune_service_ = std::make_unique<service::TuneService>(
          core::QrossTuner(tuner_->surrogate(), probe_options), *service_,
          tune_config);
      config.tune = tune_service_.get();
    }
    server_ = std::make_unique<Server>(*service_, config);
    std::string error;
    if (!server_->start(&error)) {
      ADD_FAILURE() << "server start failed: " << error;
      return {};
    }
    return server_->endpoints().front();
  }

  Client make_client(const Endpoint& endpoint,
                     int request_timeout_ms = 60000) {
    ClientConfig config;
    config.server = endpoint;
    config.request_timeout_ms = request_timeout_ms;
    config.reconnect_backoff_ms = 10;
    return Client(config);
  }

  static RemoteTune tune_request(const tsp::TspInstance& instance,
                                 std::uint32_t trials = 4,
                                 std::uint64_t seed = 21) {
    RemoteTune tune;
    tune.solver = "count";
    tune.instance = pack_tsp_instance(instance);
    tune.instance_name = instance.name();
    tune.trials = trials;
    tune.seed = seed;
    return tune;
  }

  static core::QrossTuner* tuner_;
  std::atomic<int> invocations_{0};
  std::unique_ptr<service::SolveService> service_;
  std::unique_ptr<service::TuneService> tune_service_;
  std::unique_ptr<Server> server_;
};

core::QrossTuner* NetTuneTest::tuner_ = nullptr;

TEST_F(NetTuneTest, RemoteTuneIsBitIdenticalToInProcessTuning) {
  const auto instance = tsp::generate_uniform(8, 0xD001);

  // The in-process reference, with the exact solver the server registry
  // resolves for "count" (CountingSolver keeps the inner identity).
  core::TuneOptions options;
  options.trials = 4;
  options.seed = 21;
  const core::TuneOutcome direct = tuner_->tune(
      instance, std::make_shared<solvers::DigitalAnnealer>(), options);

  const auto endpoint = start();
  Client client = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;

  const auto submitted = client.submit_tune(tune_request(instance));
  ASSERT_TRUE(submitted.ok()) << submitted.error().message;
  auto outcome = client.tune_wait(submitted.value());
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  const TuneResultFrame& result = outcome.value();

  ASSERT_EQ(result.status, kTuneDone) << result.error;
  ASSERT_EQ(result.trials.size(), direct.trials.size());
  for (std::size_t t = 0; t < direct.trials.size(); ++t) {
    EXPECT_EQ(result.trials[t].relaxation_parameter,
              direct.trials[t].relaxation_parameter)
        << "probed-A sequence diverged at trial " << t;
    EXPECT_EQ(result.trials[t].pf, direct.trials[t].pf);
    EXPECT_EQ(result.trials[t].best_length_so_far,
              direct.trials[t].best_length_so_far);
  }
  EXPECT_EQ(result.best_length, direct.best_length);
  EXPECT_EQ(result.best_parameter, direct.best_parameter);
  ASSERT_EQ(result.best_tour.size(), direct.best_tour.size());
  for (std::size_t k = 0; k < direct.best_tour.size(); ++k) {
    EXPECT_EQ(static_cast<std::size_t>(result.best_tour[k]),
              direct.best_tour[k]);
  }

  // Per-trial progress streamed alongside, in order, matching the result.
  const auto updates = client.tune_status(submitted.value());
  ASSERT_EQ(updates.size(), 4u);
  for (std::size_t t = 0; t < updates.size(); ++t) {
    EXPECT_EQ(updates[t].trial, t);
    EXPECT_EQ(updates[t].total, 4u);
    EXPECT_EQ(updates[t].relaxation_parameter,
              result.trials[t].relaxation_parameter);
  }
}

TEST_F(NetTuneTest, RepeatedRemoteSessionReplaysWithZeroSolverInvocations) {
  const auto instance = tsp::generate_uniform(8, 0xD002);
  const auto endpoint = start();
  Client client = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;

  const auto first_tag = client.submit_tune(tune_request(instance));
  ASSERT_TRUE(first_tag.ok());
  const auto first = client.tune_wait(first_tag.value());
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().status, kTuneDone);
  EXPECT_EQ(first.value().solver_invocations, 4u);
  EXPECT_EQ(invocations_.load(), 4);

  // Same session against the warm daemon: every probe is a cache hit.
  const auto second_tag = client.submit_tune(tune_request(instance));
  ASSERT_TRUE(second_tag.ok());
  const auto second = client.tune_wait(second_tag.value());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second.value().status, kTuneDone);
  EXPECT_EQ(second.value().solver_invocations, 0u)
      << "warm repeat must not invoke the solver";
  EXPECT_EQ(invocations_.load(), 4);
  EXPECT_EQ(second.value().best_tour, first.value().best_tour);
}

TEST_F(NetTuneTest, CancelMidSessionStopsTheLoserPromptly) {
  const auto endpoint = start(/*with_tuner=*/true, /*slow_probes=*/true);
  Client client = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;

  const auto tag = client.submit_tune(
      tune_request(tsp::generate_uniform(8, 0xD003), /*trials=*/3));
  ASSERT_TRUE(tag.ok());
  // Let the first ~50M-sweep probe start, then cancel: the session's
  // StopToken must end the probe within one sweep and the terminal
  // TuneResult (status = cancelled) must still arrive.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(client.cancel_tune(tag.value()));
  const auto started = std::chrono::steady_clock::now();
  const auto outcome = client.tune_wait(tag.value());
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  EXPECT_EQ(outcome.value().status, kTuneCancelled);
  EXPECT_LT(outcome.value().trials.size(), 3u);
  EXPECT_LT(std::chrono::steady_clock::now() - started,
            std::chrono::seconds(30))
      << "cancellation must not wait for the 50M-sweep probe";
  EXPECT_EQ(tune_service_->metrics().sessions_cancelled, 1u);
}

TEST_F(NetTuneTest, DisconnectCancelsInFlightTuneSessions) {
  const auto endpoint = start(/*with_tuner=*/true, /*slow_probes=*/true);
  {
    Client client = make_client(endpoint);
    std::string error;
    ASSERT_TRUE(client.connect(&error)) << error;
    const auto tag = client.submit_tune(
        tune_request(tsp::generate_uniform(8, 0xD004), /*trials=*/3));
    ASSERT_TRUE(tag.ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }  // hangup with the session still running

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (tune_service_->metrics().sessions_cancelled == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(tune_service_->metrics().sessions_cancelled, 1u)
      << "hangup must trip the orphaned session's StopToken";
  EXPECT_EQ(server_->stats().disconnect_cancelled_tunes, 1u);
}

TEST_F(NetTuneTest, DaemonWithoutTunerRefusesTuningPermanently) {
  const auto endpoint = start(/*with_tuner=*/false);
  Client client = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;

  const auto tag =
      client.submit_tune(tune_request(tsp::generate_uniform(8, 0xD005)));
  ASSERT_TRUE(tag.ok());
  const auto outcome = client.tune_wait(tag.value());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().kind, RemoteErrorKind::refused);
  EXPECT_EQ(outcome.error().code, kErrTuningUnavailable);
  EXPECT_FALSE(outcome.error().retryable())
      << "no amount of resubmitting conjures a tuner into the daemon";

  // The solve path is untouched: the same connection still serves jobs.
  RemoteJob job;
  job.solver = "count";
  job.model = pack_tsp_instance(tsp::generate_uniform(6, 0xD006));
  job.num_replicas = 2;
  job.num_sweeps = 10;
  const auto job_tag = client.submit_job(job);
  ASSERT_TRUE(job_tag.ok());
  const auto job_result = client.wait_result(job_tag.value());
  ASSERT_TRUE(job_result.ok());
  EXPECT_EQ(job_result.value().status, service::JobStatus::done);
}

TEST_F(NetTuneTest, BadStrategyCodeIsRejectedAsBadRequest) {
  const auto endpoint = start();
  Client client = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;

  RemoteTune tune = tune_request(tsp::generate_uniform(8, 0xD007));
  tune.strategy = 200;  // not a TuneStrategyCode
  const auto tag = client.submit_tune(tune);
  ASSERT_TRUE(tag.ok());
  const auto outcome = client.tune_wait(tag.value());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().kind, RemoteErrorKind::refused);
  EXPECT_EQ(outcome.error().code, kErrBadRequest);
  EXPECT_FALSE(outcome.error().retryable());
}

}  // namespace
}  // namespace qross::net
