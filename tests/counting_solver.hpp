#pragma once

// Shared test helper: a delegating QuboSolver wrapper that counts actual
// kernel invocations while keeping the inner solver's cache identity (name
// + config digest), so counted and plain submissions share result-cache
// fingerprints.  Used by the service and facade suites to prove cache hits
// never invoke the solver.

#include <atomic>
#include <utility>

#include "solvers/solver.hpp"

namespace qross::testing {

class CountingSolver final : public solvers::QuboSolver {
 public:
  CountingSolver(solvers::SolverPtr inner, std::atomic<int>& count)
      : inner_(std::move(inner)), count_(&count) {}
  std::string name() const override { return inner_->name(); }
  std::uint64_t config_digest() const override {
    return inner_->config_digest();
  }
  qubo::SolveBatch solve(const qubo::QuboModel& model,
                         const solvers::SolveOptions& options) const override {
    count_->fetch_add(1);
    return inner_->solve(model, options);
  }

 private:
  solvers::SolverPtr inner_;
  std::atomic<int>* count_;
};

}  // namespace qross::testing
