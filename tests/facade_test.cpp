// Tests for the high-level QrossTuner facade and the umbrella header.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <sstream>

#include "counting_solver.hpp"
#include "qross/qross.hpp"  // umbrella header must compile standalone

namespace qross::core {
namespace {

using qross::testing::CountingSolver;

solvers::SolverPtr fast_solver() {
  solvers::QbsolvParams params;
  params.num_rounds = 1;
  params.subsolver_sweeps = 10;
  return std::make_shared<solvers::Qbsolv>(params);
}

solvers::SolveOptions fast_options() {
  solvers::SolveOptions options;
  options.num_replicas = 8;
  options.num_sweeps = 10;
  options.seed = 3;
  return options;
}

class FacadeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto history = tsp::generate_synthetic_dataset(8, 6, 9, 0xFACADE);
    surrogate::SweepConfig sweep;
    sweep.slope_points = 5;
    sweep.plateau_points = 1;
    sweep.bisection_steps = 5;
    tuner_ = new QrossTuner(
        QrossTuner::fit(history, fast_solver(), fast_options(), sweep));
  }
  static void TearDownTestSuite() {
    delete tuner_;
    tuner_ = nullptr;
  }
  static QrossTuner* tuner_;
};

QrossTuner* FacadeTest::tuner_ = nullptr;

TEST_F(FacadeTest, ProposeWithoutSolverCalls) {
  const auto instance = tsp::generate_uniform(8, 0xAA01);
  const double mfs = tuner_->propose(instance);
  EXPECT_GE(mfs, 1.0);
  EXPECT_LE(mfs, 100.0);
  const double pbs_low = tuner_->propose(instance, 0.2);
  const double pbs_high = tuner_->propose(instance, 0.9);
  EXPECT_LT(pbs_low, pbs_high) << "Pf targets must order the proposals";
}

TEST_F(FacadeTest, TuneReturnsValidTour) {
  const auto instance = tsp::generate_uniform(8, 0xAA02);
  TuneOptions options;
  options.trials = 5;
  const TuneOutcome outcome = tuner_->tune(instance, fast_solver(), options);
  ASSERT_EQ(outcome.trials.size(), 5u);
  ASSERT_TRUE(outcome.feasible());
  EXPECT_TRUE(instance.is_valid_tour(outcome.best_tour));
  EXPECT_NEAR(instance.tour_length(outcome.best_tour), outcome.best_length,
              1e-9);
  // Best-so-far column is non-increasing once feasible.
  double previous = std::numeric_limits<double>::infinity();
  for (const auto& trial : outcome.trials) {
    EXPECT_LE(trial.best_length_so_far, previous + 1e-9);
    previous = trial.best_length_so_far;
  }
}

TEST_F(FacadeTest, TuneQualityIsReasonable) {
  const auto instance = tsp::generate_uniform(9, 0xAA03);
  TuneOptions options;
  options.trials = 6;
  const TuneOutcome outcome = tuner_->tune(instance, fast_solver(), options);
  ASSERT_TRUE(outcome.feasible());
  const double reference = tsp::reference_solution(instance).length;
  EXPECT_LT(outcome.best_length, reference * 1.25)
      << "tuned result more than 25% above the 2-opt reference";
}

TEST_F(FacadeTest, SaveLoadRoundTrip) {
  std::stringstream stream;
  tuner_->save(stream);
  const QrossTuner loaded = QrossTuner::load(stream);
  const auto instance = tsp::generate_uniform(8, 0xAA04);
  EXPECT_DOUBLE_EQ(loaded.propose(instance), tuner_->propose(instance));
}

TEST_F(FacadeTest, DeterministicTuning) {
  const auto instance = tsp::generate_uniform(8, 0xAA05);
  TuneOptions options;
  options.trials = 4;
  options.seed = 99;
  const TuneOutcome a = tuner_->tune(instance, fast_solver(), options);
  const TuneOutcome b = tuner_->tune(instance, fast_solver(), options);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.trials[i].relaxation_parameter,
                     b.trials[i].relaxation_parameter);
  }
  EXPECT_EQ(a.best_tour, b.best_tour);
}

TEST_F(FacadeTest, TuneThroughSolveServiceSharesTheCache) {
  const auto instance = tsp::generate_uniform(8, 0xAA06);
  TuneOptions options;
  options.trials = 4;
  options.seed = 11;
  const TuneOutcome direct = tuner_->tune(instance, fast_solver(), options);

  service::SolveService svc;
  options.service = &svc;
  std::atomic<int> invocations{0};
  const auto counted =
      std::make_shared<CountingSolver>(fast_solver(), invocations);

  // Routed trials are bit-identical to direct ones...
  const TuneOutcome first = tuner_->tune(instance, counted, options);
  EXPECT_EQ(invocations.load(), 4);
  ASSERT_EQ(first.trials.size(), direct.trials.size());
  for (std::size_t t = 0; t < first.trials.size(); ++t) {
    EXPECT_DOUBLE_EQ(first.trials[t].relaxation_parameter,
                     direct.trials[t].relaxation_parameter);
    EXPECT_DOUBLE_EQ(first.trials[t].pf, direct.trials[t].pf);
  }
  EXPECT_EQ(first.best_tour, direct.best_tour);

  // ...and a repeated session replays entirely from the result cache.
  const TuneOutcome second = tuner_->tune(instance, counted, options);
  EXPECT_EQ(invocations.load(), 4)
      << "repeated tuning session must not invoke the solver again";
  EXPECT_EQ(second.best_tour, first.best_tour);
  EXPECT_EQ(svc.metrics().cache_hits, 4u);
}

TEST_F(FacadeTest, TuneWarmStartsFromDiskAcrossServiceInstances) {
  const auto instance = tsp::generate_uniform(8, 0xAA07);
  const auto cache_path = std::filesystem::path(::testing::TempDir()) /
                          "qross_facade_warm.qsnap";
  std::filesystem::remove(cache_path);
  std::filesystem::remove(cache_path.string() + ".journal");

  TuneOptions options;
  options.trials = 4;
  options.seed = 17;
  std::atomic<int> invocations{0};
  const auto counted =
      std::make_shared<CountingSolver>(fast_solver(), invocations);

  service::ServiceConfig config;
  config.cache_path = cache_path;
  TuneOutcome first;
  {
    service::SolveService svc(config);
    options.service = &svc;
    first = tuner_->tune(instance, counted, options);
    EXPECT_EQ(invocations.load(), 4);
  }  // service destruction persists the snapshot

  // A fresh service on the same file (stand-in for a fresh process): the
  // PR 2 within-process replay guarantee now holds across runs — the whole
  // session replays from disk with zero solver invocations.
  service::SolveService svc(config);
  EXPECT_EQ(svc.metrics().cache_loaded, 4u);
  options.service = &svc;
  const TuneOutcome second = tuner_->tune(instance, counted, options);
  EXPECT_EQ(invocations.load(), 4)
      << "disk-warm tuning session must not invoke the solver";
  EXPECT_EQ(svc.metrics().cache_hits, 4u);
  EXPECT_EQ(second.best_tour, first.best_tour);
  ASSERT_EQ(second.trials.size(), first.trials.size());
  for (std::size_t t = 0; t < first.trials.size(); ++t) {
    EXPECT_DOUBLE_EQ(second.trials[t].relaxation_parameter,
                     first.trials[t].relaxation_parameter);
    EXPECT_DOUBLE_EQ(second.trials[t].pf, first.trials[t].pf);
  }
  std::filesystem::remove(cache_path);
  std::filesystem::remove(cache_path.string() + ".journal");
}

TEST(FacadeGuards, RejectsUntrainedAndBadInput) {
  EXPECT_THROW(QrossTuner(surrogate::SolverSurrogate{}),
               std::invalid_argument);
  EXPECT_THROW(
      QrossTuner::fit({}, fast_solver(), fast_options()),
      std::invalid_argument);
  std::stringstream garbage("nonsense");
  EXPECT_THROW(QrossTuner::load(garbage), std::invalid_argument);
}

}  // namespace
}  // namespace qross::core
