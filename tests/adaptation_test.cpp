// Tests for the surrogate adaptation path (paper abstract: "with simple
// adaptation methods, QROSS is shown to generalise well to
// out-of-distribution datasets"): fine_tune() on fresh observations from a
// drifted solver response must move predictions toward the new truth.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "problems/tsp/generators.hpp"
#include "surrogate/dataset.hpp"
#include "surrogate/model.hpp"
#include "surrogate/pipeline.hpp"

namespace qross::surrogate {
namespace {

/// Analytic sigmoid world with an adjustable midpoint (in log A).
Dataset analytic_dataset(double mid_shift, std::size_t instances,
                         std::size_t points, std::uint64_t seed) {
  Dataset dataset;
  Rng rng(seed);
  for (std::size_t id = 0; id < instances; ++id) {
    const auto inst = tsp::generate_uniform(6 + id % 4, derive_seed(seed, id));
    const PreparedTspInstance prepared(inst);
    const auto features = extract_features(prepared.prepared());
    const double anchor = scale_anchor(features);
    const double mid = std::log(20.0) + mid_shift;
    for (std::size_t k = 0; k < points; ++k) {
      const double a = std::exp(rng.uniform(std::log(2.0), std::log(200.0)));
      DatasetRow row;
      row.instance_id = id;
      row.features = features;
      row.scale_anchor = anchor;
      row.relaxation_parameter = a;
      row.pf = 1.0 / (1.0 + std::exp(-3.0 * (std::log(a) - mid)));
      row.energy_avg = anchor * (1.0 + 0.1 * std::log(a));
      row.energy_std = anchor * 0.05;
      dataset.rows.push_back(row);
    }
  }
  return dataset;
}

double pf_error_against(const SolverSurrogate& surrogate, double mid_shift,
                        std::uint64_t seed) {
  const auto inst = tsp::generate_uniform(7, seed);
  const PreparedTspInstance prepared(inst);
  const auto features = extract_features(prepared.prepared());
  const double anchor = scale_anchor(features);
  const double mid = std::log(20.0) + mid_shift;
  double error = 0.0;
  int count = 0;
  for (double a : {5.0, 12.0, 20.0, 35.0, 70.0, 140.0}) {
    const auto pred = surrogate.predict(features, anchor, a);
    const double truth = 1.0 / (1.0 + std::exp(-3.0 * (std::log(a) - mid)));
    error += std::abs(pred.pf - truth);
    ++count;
  }
  return error / count;
}

TEST(Adaptation, FineTuneTracksDriftedResponse) {
  // Train on the original response (midpoint log 20).
  SolverSurrogate surrogate;
  surrogate.train(analytic_dataset(0.0, 10, 24, 5));

  // The solver's behaviour drifts: transition moves right by ~0.7 nats.
  const double drift = 0.7;
  const double before = pf_error_against(surrogate, drift, 4242);

  // Adapt on a modest batch of fresh observations from the drifted world.
  surrogate.fine_tune(analytic_dataset(drift, 6, 16, 6), 400, 3e-3);
  const double after = pf_error_against(surrogate, drift, 4242);

  EXPECT_LT(after, before * 0.6)
      << "fine-tuning failed to track the drifted response (before=" << before
      << ", after=" << after << ")";
  EXPECT_LT(after, 0.15);
}

TEST(Adaptation, FineTuneKeepsPredictionsValid) {
  SolverSurrogate surrogate;
  const auto dataset = analytic_dataset(0.0, 6, 16, 7);
  surrogate.train(dataset);
  surrogate.fine_tune(dataset, 50, 1e-3);
  const auto& row = dataset.rows.front();
  for (double a : {1.0, 30.0, 500.0}) {
    const auto pred = surrogate.predict(row.features, row.scale_anchor, a);
    EXPECT_GE(pred.pf, 0.0);
    EXPECT_LE(pred.pf, 1.0);
    EXPECT_GT(pred.energy_std, 0.0);
  }
}

TEST(Adaptation, FineTuneGuards) {
  SolverSurrogate untrained;
  EXPECT_THROW(untrained.fine_tune(analytic_dataset(0.0, 2, 4, 8)),
               std::invalid_argument);
  SolverSurrogate surrogate;
  surrogate.train(analytic_dataset(0.0, 6, 16, 9));
  Dataset tiny;
  tiny.rows.resize(1);
  EXPECT_THROW(surrogate.fine_tune(tiny), std::invalid_argument);
}

}  // namespace
}  // namespace qross::surrogate
