// Tests for the src/net/ network front end: endpoint parsing, the payload
// codecs and incremental frame splitter, the Server reactor above a real
// SolveService (submit/cancel/deadline/disconnect semantics over TCP and
// Unix-domain sockets), the blocking Client with reconnect, and the
// protocol-robustness contract — truncated frames, flipped checksum bytes,
// future protocol versions, and oversized frames all answered with a clean
// Error frame (the socket counterpart of io_test's corruption suite).

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "counting_solver.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "obs/trace.hpp"
#include "problems/mvc/mvc.hpp"
#include "service/solve_service.hpp"
#include "solvers/digital_annealer.hpp"

namespace qross::net {
namespace {

using namespace std::chrono_literals;

qubo::QuboModel test_model(std::uint64_t seed = 7, std::size_t n = 32) {
  return mvc::generate_random_mvc(n, 0.12, seed).to_qubo(2.0);
}

bool eventually(const std::function<bool()>& condition,
                std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return condition();
}

// --- endpoints --------------------------------------------------------------

TEST(EndpointTest, ParsesTcpUnixAndShorthand) {
  const auto unix_ep = Endpoint::parse("unix:/tmp/q.sock");
  ASSERT_TRUE(unix_ep.has_value());
  EXPECT_EQ(unix_ep->kind, Endpoint::Kind::unix_domain);
  EXPECT_EQ(unix_ep->path, "/tmp/q.sock");
  EXPECT_EQ(unix_ep->to_string(), "unix:/tmp/q.sock");

  const auto tcp = Endpoint::parse("tcp:127.0.0.1:7777");
  ASSERT_TRUE(tcp.has_value());
  EXPECT_EQ(tcp->kind, Endpoint::Kind::tcp);
  EXPECT_EQ(tcp->host, "127.0.0.1");
  EXPECT_EQ(tcp->port, 7777);

  const auto shorthand = Endpoint::parse("localhost:0");
  ASSERT_TRUE(shorthand.has_value());
  EXPECT_EQ(shorthand->kind, Endpoint::Kind::tcp);
  EXPECT_EQ(shorthand->port, 0);

  EXPECT_FALSE(Endpoint::parse("").has_value());
  EXPECT_FALSE(Endpoint::parse("unix:").has_value());
  EXPECT_FALSE(Endpoint::parse("no-port").has_value());
  EXPECT_FALSE(Endpoint::parse("host:99999").has_value());
  EXPECT_FALSE(Endpoint::parse("host:notaport").has_value());
}

// --- codecs -----------------------------------------------------------------

TEST(NetProtocolTest, ModelCodecRoundTripsCanonically) {
  const auto model = test_model(3, 24);
  io::ByteWriter out;
  io::encode_model(out, model);
  const auto bytes = out.take();
  io::ByteReader in(bytes);
  const auto decoded = io::decode_model(in);
  ASSERT_EQ(decoded.num_vars(), model.num_vars());
  EXPECT_EQ(decoded.offset(), model.offset());
  for (std::size_t i = 0; i < model.num_vars(); ++i) {
    for (std::size_t j = i; j < model.num_vars(); ++j) {
      EXPECT_EQ(decoded.coefficient(i, j), model.coefficient(i, j));
    }
  }
  // Canonical: re-encoding the decoded model is byte-identical.
  io::ByteWriter again;
  io::encode_model(again, decoded);
  EXPECT_EQ(again.bytes().size(), bytes.size());
  EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), again.bytes().begin()));
}

TEST(NetProtocolTest, ModelDecoderRejectsCorruptInput) {
  // nnz count beyond the n(n+1)/2 structural maximum: allocation bomb guard.
  {
    io::ByteWriter out;
    out.u32(4);       // num_vars
    out.f64(0.0);     // offset
    out.u32(1000);    // nnz — impossible for n=4
    io::ByteReader in(out.bytes());
    EXPECT_THROW(io::decode_model(in), io::DecodeError);
  }
  // Lower-triangular / out-of-range term index.
  {
    io::ByteWriter out;
    out.u32(4);
    out.f64(0.0);
    out.u32(1);
    out.u32(3);
    out.u32(1);  // j < i: not canonical upper-triangular
    out.f64(1.0);
    io::ByteReader in(out.bytes());
    EXPECT_THROW(io::decode_model(in), io::DecodeError);
  }
  // Truncated mid-triple.
  {
    io::ByteWriter out;
    out.u32(4);
    out.f64(0.0);
    out.u32(2);
    out.u32(0);
    out.u32(1);
    out.f64(1.0);  // second triple missing entirely
    io::ByteReader in(out.bytes());
    EXPECT_THROW(io::decode_model(in), io::DecodeError);
  }
}

TEST(NetProtocolTest, SubmitFrameRoundTrips) {
  SubmitJobFrame submit;
  submit.tag = 42;
  submit.solver = "tabu";
  submit.num_replicas = 9;
  submit.num_sweeps = 77;
  submit.seed = 0xDEADBEEF;
  submit.priority = -3;
  submit.deadline_ms = 1500;
  submit.bypass_cache = true;
  submit.stream_status = true;
  submit.model = test_model(5, 16);
  submit.trace_id = 0xFACE;
  const auto decoded = decode_submit(encode_submit(submit));
  EXPECT_EQ(decoded.tag, 42u);
  EXPECT_EQ(decoded.solver, "tabu");
  EXPECT_EQ(decoded.num_replicas, 9u);
  EXPECT_EQ(decoded.num_sweeps, 77u);
  EXPECT_EQ(decoded.seed, 0xDEADBEEFu);
  EXPECT_EQ(decoded.priority, -3);
  EXPECT_EQ(decoded.deadline_ms, 1500u);
  EXPECT_TRUE(decoded.bypass_cache);
  EXPECT_TRUE(decoded.stream_status);
  EXPECT_EQ(decoded.model.num_vars(), submit.model.num_vars());
  EXPECT_EQ(decoded.trace_id, 0xFACEu);

  // The trace id was appended within v1: a pre-obs client's SubmitJob ends
  // at the model, and the decoder must default the id to 0, not throw.
  auto legacy_bytes = encode_submit(submit);
  legacy_bytes.resize(legacy_bytes.size() - 8);
  const auto legacy = decode_submit(legacy_bytes);
  EXPECT_EQ(legacy.trace_id, 0u);
  EXPECT_EQ(legacy.model.num_vars(), submit.model.num_vars());
}

TEST(NetProtocolTest, ResultFrameRoundTripsWithAndWithoutBatch) {
  ResultFrame result;
  result.tag = 9;
  result.status = service::JobStatus::expired;
  result.coalesced = true;
  result.wait_ms = 1.5;
  result.run_ms = 2.5;
  result.error = "late";
  auto decoded = decode_result(encode_result(result));
  EXPECT_EQ(decoded.tag, 9u);
  EXPECT_EQ(decoded.status, service::JobStatus::expired);
  EXPECT_TRUE(decoded.coalesced);
  EXPECT_EQ(decoded.error, "late");
  EXPECT_EQ(decoded.batch, nullptr);

  qubo::SolveBatch batch;
  batch.results.push_back({{1, 0, 1, 1}, -3.25});
  result.batch = std::make_shared<const qubo::SolveBatch>(batch);
  decoded = decode_result(encode_result(result));
  ASSERT_NE(decoded.batch, nullptr);
  ASSERT_EQ(decoded.batch->size(), 1u);
  EXPECT_EQ(decoded.batch->results[0].assignment, (qubo::Bits{1, 0, 1, 1}));
  EXPECT_EQ(decoded.batch->results[0].qubo_energy, -3.25);
}

TEST(NetProtocolTest, HelloRoundTripsClientIdAndToleratesLegacyPayload) {
  HelloFrame hello;
  hello.client_id = "tenant-a";
  auto decoded = decode_hello(encode_hello(hello));
  EXPECT_EQ(decoded.protocol_version, kProtocolVersion);
  EXPECT_EQ(decoded.client_id, "tenant-a");

  // A pre-admission-control Hello (version + flags only) still decodes:
  // fields are append-only within a protocol version.
  io::ByteWriter legacy;
  legacy.u32(kProtocolVersion);
  legacy.u32(0);
  decoded = decode_hello(legacy.bytes());
  EXPECT_EQ(decoded.protocol_version, kProtocolVersion);
  EXPECT_TRUE(decoded.client_id.empty());
}

TEST(NetProtocolTest, MetricsFrameRoundTripsAdmissionTailAndToleratesLegacy) {
  MetricsFrame metrics;
  metrics.service.admission_rejected = 7;
  metrics.service.simd_kernel = "avx2";
  metrics.service.recent_jobs_per_second = 4.25;
  metrics.connections_rejected_full = 3;
  metrics.client_id = "me";
  service::ClientSchedulerMetrics row;
  row.client_id = "greedy";
  row.weight = 2.5;
  row.queued = 4;
  row.inflight = 6;
  row.submitted = 100;
  row.completed = 90;
  row.dispatched = 42;
  row.rejected_inflight = 8;
  row.rejected_queued = 9;
  metrics.clients.push_back(row);

  const auto decoded = decode_metrics(encode_metrics(metrics));
  EXPECT_EQ(decoded.service.admission_rejected, 7u);
  EXPECT_EQ(decoded.service.simd_kernel, "avx2");
  EXPECT_EQ(decoded.service.recent_jobs_per_second, 4.25);
  EXPECT_EQ(decoded.connections_rejected_full, 3u);
  EXPECT_EQ(decoded.client_id, "me");
  ASSERT_EQ(decoded.clients.size(), 1u);
  EXPECT_EQ(decoded.clients[0].client_id, "greedy");
  EXPECT_EQ(decoded.clients[0].weight, 2.5);
  EXPECT_EQ(decoded.clients[0].queued, 4u);
  EXPECT_EQ(decoded.clients[0].inflight, 6u);
  EXPECT_EQ(decoded.clients[0].submitted, 100u);
  EXPECT_EQ(decoded.clients[0].completed, 90u);
  EXPECT_EQ(decoded.clients[0].dispatched, 42u);
  EXPECT_EQ(decoded.clients[0].rejected_inflight, 8u);
  EXPECT_EQ(decoded.clients[0].rejected_queued, 9u);

  // A pre-SIMD-dispatch payload ends after the per-client rows: strip the
  // recent-rate f64 (8 bytes) and the kernel string (empty string = 4
  // length bytes) and the decoder must report an unknown kernel.
  auto pre_simd_bytes = encode_metrics(MetricsFrame{});
  pre_simd_bytes.resize(pre_simd_bytes.size() - 12);
  const auto pre_simd = decode_metrics(pre_simd_bytes);
  EXPECT_EQ(pre_simd.service.simd_kernel, "unknown");
  EXPECT_EQ(pre_simd.service.recent_jobs_per_second, 0.0);

  // A pre-obs payload ends after the kernel string: strip just the
  // recent-rate f64 and the rate defaults to 0 while the kernel survives.
  auto pre_obs_bytes = encode_metrics(MetricsFrame{});
  pre_obs_bytes.resize(pre_obs_bytes.size() - 8);
  const auto pre_obs = decode_metrics(pre_obs_bytes);
  EXPECT_EQ(pre_obs.service.recent_jobs_per_second, 0.0);

  // A pre-admission-control payload is a strict prefix of that: strip the
  // quota tail too (u64 + u64 + empty string + u32 count = 24 bytes) and
  // the decoder must fall back to "no quota activity".
  auto legacy_bytes = pre_simd_bytes;
  legacy_bytes.resize(legacy_bytes.size() - 24);
  const auto legacy = decode_metrics(legacy_bytes);
  EXPECT_EQ(legacy.connections_rejected_full, 0u);
  EXPECT_EQ(legacy.service.admission_rejected, 0u);
  EXPECT_TRUE(legacy.client_id.empty());
  EXPECT_TRUE(legacy.clients.empty());
  EXPECT_EQ(legacy.service.simd_kernel, "unknown");
}

TEST(NetProtocolTest, FrameBufferReassemblesByteByByte) {
  const auto payload = encode_cancel({.tag = 77});
  const auto bytes = frame(io::kRecordNetCancelJob, payload);
  FrameBuffer buffer;
  Frame out;
  for (std::size_t k = 0; k < bytes.size(); ++k) {
    EXPECT_EQ(buffer.next(&out), FrameBuffer::Status::need_more);
    buffer.append(&bytes[k], 1);
  }
  ASSERT_EQ(buffer.next(&out), FrameBuffer::Status::frame);
  EXPECT_EQ(out.type, io::kRecordNetCancelJob);
  EXPECT_EQ(decode_cancel(out.payload).tag, 77u);
  EXPECT_FALSE(buffer.mid_frame());
  EXPECT_EQ(buffer.next(&out), FrameBuffer::Status::need_more);
}

TEST(NetProtocolTest, FrameBufferLatchesOnCorruption) {
  auto bytes = frame(io::kRecordNetCancelJob, encode_cancel({.tag = 1}));
  bytes[8] ^= 0x40;  // flip one checksum byte
  FrameBuffer buffer;
  buffer.append(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(buffer.next(&out), FrameBuffer::Status::bad_frame);
  // Latched: once framing trust is gone there is no resynchronising.
  EXPECT_EQ(buffer.next(&out), FrameBuffer::Status::bad_frame);

  FrameBuffer small(64);
  const auto big = frame(io::kRecordNetError,
                         encode_error({.message = std::string(100, 'x')}));
  small.append(big.data(), big.size());
  EXPECT_EQ(small.next(&out), FrameBuffer::Status::oversized);
}

// --- server + client --------------------------------------------------------

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("qross_net_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    server_.reset();
    service_.reset();
    std::filesystem::remove_all(dir_);
  }

  /// Builds service + server; the registry resolves "count" to a
  /// CountingSolver around the digital annealer so tests can prove which
  /// submissions actually ran a kernel.
  Endpoint start(const std::string& listen_spec,
                 service::ServiceConfig service_config = {},
                 std::uint32_t max_frame_bytes = kMaxFrameBytes,
                 std::size_t max_connections = 256) {
    service_ = std::make_unique<service::SolveService>(service_config);
    ServerConfig config;
    config.listen.push_back(*Endpoint::parse(listen_spec));
    config.max_frame_bytes = max_frame_bytes;
    config.max_connections = max_connections;
    config.registry = [this](const std::string& name) -> solvers::SolverPtr {
      if (name == "count") {
        return std::make_shared<testing::CountingSolver>(
            std::make_shared<solvers::DigitalAnnealer>(), invocations_);
      }
      return default_solver_registry(name);
    };
    server_ = std::make_unique<Server>(*service_, config);
    std::string error;
    if (!server_->start(&error)) {
      ADD_FAILURE() << "server start failed: " << error;
      return {};
    }
    return server_->endpoints().front();
  }

  Endpoint start_tcp() { return start("tcp:127.0.0.1:0"); }
  Endpoint start_unix() {
    return start("unix:" + (dir_ / "qross.sock").string());
  }

  Client make_client(const Endpoint& endpoint,
                     int request_timeout_ms = 30000,
                     const std::string& client_id = {}) {
    ClientConfig config;
    config.server = endpoint;
    config.client_id = client_id;
    config.request_timeout_ms = request_timeout_ms;
    config.reconnect_backoff_ms = 10;
    return Client(config);
  }

  static RemoteJob quick_job(std::uint64_t seed = 7) {
    RemoteJob job;
    job.solver = "count";
    job.model = test_model(seed);
    job.num_replicas = 4;
    job.num_sweeps = 20;
    return job;
  }

  /// A job long enough (minutes) that only cancel/deadline/disconnect can
  /// end it within the test — kernels poll their stop token every sweep.
  static RemoteJob slow_job(std::uint64_t seed = 11) {
    RemoteJob job;
    job.solver = "count";
    job.model = test_model(seed, 64);
    job.num_replicas = 1;
    job.num_sweeps = 50'000'000;
    return job;
  }

  std::filesystem::path dir_;
  std::atomic<int> invocations_{0};
  std::unique_ptr<service::SolveService> service_;
  std::unique_ptr<Server> server_;
};

TEST_F(NetServerTest, SubmitOverTcpMatchesLocalSolveBitIdentically) {
  const auto endpoint = start_tcp();
  auto client = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;
  EXPECT_EQ(client.negotiated_version(), kProtocolVersion);

  const auto job = quick_job();
  const auto tag = client.submit(job, &error);
  ASSERT_TRUE(tag.has_value()) << error;
  const auto result = client.wait(*tag);
  ASSERT_EQ(result.status, service::JobStatus::done) << result.error;
  ASSERT_NE(result.batch, nullptr);

  // The wire round trip must not perturb the result: a local solve with
  // the same inputs is bit-identical.
  solvers::SolveOptions options;
  options.num_replicas = job.num_replicas;
  options.num_sweeps = job.num_sweeps;
  options.seed = job.seed;
  const auto local =
      solvers::DigitalAnnealer().solve(job.model, options);
  ASSERT_EQ(result.batch->size(), local.size());
  for (std::size_t k = 0; k < local.size(); ++k) {
    EXPECT_EQ(result.batch->results[k].assignment,
              local.results[k].assignment);
    EXPECT_EQ(result.batch->results[k].qubo_energy,
              local.results[k].qubo_energy);
  }
}

TEST_F(NetServerTest, UnixDomainSocketServesJobs) {
  const auto endpoint = start_unix();
  ASSERT_EQ(endpoint.kind, Endpoint::Kind::unix_domain);
  auto client = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;
  const auto results = client.run({quick_job(1), quick_job(2)});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status, service::JobStatus::done);
  EXPECT_EQ(results[1].status, service::JobStatus::done);
  EXPECT_EQ(invocations_.load(), 2);
}

TEST_F(NetServerTest, RepeatAndCrossClientSubmissionsHitTheServerCache) {
  const auto endpoint = start_tcp();
  auto first = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(first.connect(&error)) << error;
  const auto job = quick_job(21);
  auto result = first.wait(*first.submit(job));
  ASSERT_EQ(result.status, service::JobStatus::done);
  EXPECT_FALSE(result.cache_hit);
  const auto baseline = result.batch;

  // Same connection, same job: served from the service cache.
  result = first.wait(*first.submit(job));
  ASSERT_EQ(result.status, service::JobStatus::done);
  EXPECT_TRUE(result.cache_hit);

  // A DIFFERENT connection (a fresh short-lived client, as in the warm
  // daemon workflow): still a cache hit, still bit-identical.
  auto second = make_client(endpoint);
  ASSERT_TRUE(second.connect(&error)) << error;
  result = second.wait(*second.submit(job));
  ASSERT_EQ(result.status, service::JobStatus::done);
  EXPECT_TRUE(result.cache_hit);
  ASSERT_NE(result.batch, nullptr);
  ASSERT_EQ(result.batch->size(), baseline->size());
  for (std::size_t k = 0; k < baseline->size(); ++k) {
    EXPECT_EQ(result.batch->results[k].assignment,
              baseline->results[k].assignment);
  }
  EXPECT_EQ(invocations_.load(), 1);
}

TEST_F(NetServerTest, CancelEndToEndStopsARunningJob) {
  const auto endpoint = start_tcp();
  auto client = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;
  const auto tag = client.submit(slow_job());
  ASSERT_TRUE(tag.has_value());
  ASSERT_TRUE(eventually([&] { return service_->metrics().running > 0; }));
  ASSERT_TRUE(client.cancel(*tag));
  const auto result = client.wait(*tag);
  EXPECT_EQ(result.status, service::JobStatus::cancelled);
}

TEST_F(NetServerTest, DeadlineTravelsAndExpiresMidRun) {
  const auto endpoint = start_tcp();
  auto client = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;
  auto job = slow_job(31);
  job.deadline_ms = 60;
  const auto result = client.wait(*client.submit(job));
  EXPECT_EQ(result.status, service::JobStatus::expired);
}

TEST_F(NetServerTest, ClientDisconnectCancelsItsInFlightJobs) {
  const auto endpoint = start_tcp();
  {
    auto client = make_client(endpoint);
    std::string error;
    ASSERT_TRUE(client.connect(&error)) << error;
    ASSERT_TRUE(client.submit(slow_job(33)).has_value());
    ASSERT_TRUE(eventually([&] { return service_->metrics().running > 0; }));
  }  // client destroyed: socket closes with the job still running
  ASSERT_TRUE(eventually([&] { return service_->metrics().cancelled >= 1; }));
  ASSERT_TRUE(eventually(
      [&] { return server_->stats().disconnect_cancelled_jobs >= 1; }));
  EXPECT_EQ(service_->metrics().running, 0u);
}

TEST_F(NetServerTest, StreamedStatusUpdatesArriveInOrder) {
  const auto endpoint = start_tcp();
  auto client = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;
  auto job = slow_job(35);
  job.stream_status = true;
  const auto tag = client.submit(job);
  ASSERT_TRUE(tag.has_value());
  ASSERT_TRUE(eventually([&] { return service_->metrics().running > 0; }));
  // Give the reactor's status tick a chance to observe `running`, then end
  // the job; the updates ride the same stream the Result arrives on.
  std::this_thread::sleep_for(80ms);
  client.cancel(*tag);
  const auto result = client.wait(*tag);
  EXPECT_EQ(result.status, service::JobStatus::cancelled);
  // The first update is `queued` unless a worker grabbed the job before
  // the submit reply was even written; `running` must always have been
  // streamed by the time the cancel landed.
  const auto updates = client.status_updates(*tag);
  ASSERT_GE(updates.size(), 1u);
  EXPECT_EQ(updates.back(), service::JobStatus::running);
  if (updates.size() >= 2) {
    EXPECT_EQ(updates[0], service::JobStatus::queued);
  }
}

TEST_F(NetServerTest, UnknownSolverNameIsRejectedPerRequest) {
  const auto endpoint = start_tcp();
  auto client = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;
  RemoteJob job = quick_job();
  job.solver = "warp-drive";
  const auto result = client.wait(*client.submit(job));
  EXPECT_EQ(result.status, service::JobStatus::failed);
  EXPECT_NE(result.error.find("unknown solver"), std::string::npos);
  // The connection survives a per-request error.
  const auto ok = client.wait(*client.submit(quick_job()));
  EXPECT_EQ(ok.status, service::JobStatus::done);
}

TEST_F(NetServerTest, MetricsRoundTripReportsConnectionLedger) {
  const auto endpoint = start_tcp();
  auto client = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;
  ASSERT_EQ(client.wait(*client.submit(quick_job())).status,
            service::JobStatus::done);
  const auto metrics = client.metrics(&error);
  ASSERT_TRUE(metrics.has_value()) << error;
  EXPECT_EQ(metrics->service.workers, service_->num_workers());
  EXPECT_EQ(metrics->service.submitted, 1u);
  EXPECT_EQ(metrics->connection_submitted, 1u);
  EXPECT_EQ(metrics->connection_results, 1u);
  EXPECT_EQ(metrics->connections_accepted, 1u);
  EXPECT_EQ(metrics->connections_active, 1u);
}

TEST_F(NetServerTest, DrainCompletesInFlightAndRejectsNewSubmissions) {
  const auto endpoint = start_tcp();
  auto client = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;
  const auto tag = client.submit(quick_job(41));
  ASSERT_TRUE(tag.has_value());
  // Only start draining once the server has accepted the submission —
  // draining earlier would (correctly) refuse it, which is the other
  // assertion below.
  ASSERT_TRUE(eventually([&] { return service_->metrics().submitted >= 1; }));
  // Drain from another thread while the result may still be outstanding;
  // it must wait for the Result frame to flush, not cut the connection.
  std::thread drainer([&] {
    EXPECT_TRUE(server_->drain(std::chrono::milliseconds(10000)));
  });
  const auto result = client.wait(*tag);
  EXPECT_EQ(result.status, service::JobStatus::done);
  drainer.join();
  const auto refused = client.wait(*client.submit(quick_job(42)));
  EXPECT_EQ(refused.status, service::JobStatus::failed);
  EXPECT_NE(refused.error.find("draining"), std::string::npos);
}

TEST_F(NetServerTest, ClientReconnectsToARestartedServerAndResubmits) {
  const auto path = "unix:" + (dir_ / "qross.sock").string();
  const auto endpoint = start(path);
  auto client = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;
  ASSERT_EQ(client.wait(*client.submit(quick_job(51))).status,
            service::JobStatus::done);

  // Bounce the server (same service, same socket path) — a daemon restart
  // as seen by a long-lived client.
  server_.reset();
  ServerConfig config;
  config.listen.push_back(*Endpoint::parse(path));
  config.registry = [this](const std::string& name) -> solvers::SolverPtr {
    if (name == "count") {
      return std::make_shared<testing::CountingSolver>(
          std::make_shared<solvers::DigitalAnnealer>(), invocations_);
    }
    return default_solver_registry(name);
  };
  server_ = std::make_unique<Server>(*service_, config);
  ASSERT_TRUE(server_->start(&error)) << error;

  // The old socket is dead; submit() or wait() notices, redials, and
  // resubmits under the same tag.  The service cache makes the retry free.
  const auto tag = client.submit(quick_job(51), &error);
  ASSERT_TRUE(tag.has_value()) << error;
  const auto result = client.wait(*tag);
  EXPECT_EQ(result.status, service::JobStatus::done);
  EXPECT_TRUE(result.cache_hit);
  EXPECT_EQ(invocations_.load(), 1);
}

// --- protocol robustness (raw sockets) --------------------------------------

class RawConnection {
 public:
  explicit RawConnection(const Endpoint& endpoint) {
    std::string error;
    sock_ = connect_to(endpoint, 2000, &error);
    EXPECT_TRUE(sock_.valid()) << error;
  }

  bool send_bytes(std::span<const std::uint8_t> bytes) {
    return sock_.send_all(bytes.data(), bytes.size());
  }

  bool send_frame(std::uint32_t type, std::span<const std::uint8_t> payload) {
    return send_bytes(frame(type, payload));
  }

  /// Reads until one full frame arrives (or 3 s pass).
  std::optional<Frame> read_frame() {
    Frame out;
    std::uint8_t buf[4096];
    const auto deadline = std::chrono::steady_clock::now() + 3s;
    while (std::chrono::steady_clock::now() < deadline) {
      const auto status = buffer_.next(&out);
      if (status == FrameBuffer::Status::frame) return out;
      if (status != FrameBuffer::Status::need_more) return std::nullopt;
      const long n = sock_.recv_some(buf, sizeof(buf), 100);
      if (n == -2) continue;
      if (n <= 0) return std::nullopt;
      buffer_.append(buf, static_cast<std::size_t>(n));
    }
    return std::nullopt;
  }

  bool handshake() {
    if (!send_frame(io::kRecordNetHello, encode_hello({}))) return false;
    const auto ack = read_frame();
    return ack.has_value() && ack->type == io::kRecordNetHelloAck;
  }

  void half_close() { ::shutdown(sock_.fd(), SHUT_WR); }

  const Socket& socket() const { return sock_; }

 private:
  Socket sock_;
  FrameBuffer buffer_;
};

TEST_F(NetServerTest, FutureProtocolVersionGetsACleanErrorFrame) {
  const auto endpoint = start_tcp();
  RawConnection raw(endpoint);
  HelloFrame hello;
  hello.protocol_version = 99;
  ASSERT_TRUE(raw.send_frame(io::kRecordNetHello, encode_hello(hello)));
  const auto reply = raw.read_frame();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, io::kRecordNetError);
  const auto error = decode_error(reply->payload);
  EXPECT_EQ(error.code, kErrFutureVersion);
  // The server names its own version so the client can retry lower.
  EXPECT_EQ(error.protocol_version, kProtocolVersion);
  // The connection is closed after the error.
  EXPECT_FALSE(raw.read_frame().has_value());
}

TEST_F(NetServerTest, FlippedChecksumByteGetsACleanErrorFrame) {
  const auto endpoint = start_tcp();
  RawConnection raw(endpoint);
  ASSERT_TRUE(raw.handshake());
  auto bytes = frame(io::kRecordNetGetMetrics, {});
  bytes[8] ^= 0x01;  // corrupt the checksum field
  ASSERT_TRUE(raw.send_bytes(bytes));
  const auto reply = raw.read_frame();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, io::kRecordNetError);
  EXPECT_EQ(decode_error(reply->payload).code, kErrBadFrame);
  EXPECT_FALSE(raw.read_frame().has_value());
}

TEST_F(NetServerTest, TruncatedFrameGetsACleanErrorFrame) {
  const auto endpoint = start_tcp();
  RawConnection raw(endpoint);
  ASSERT_TRUE(raw.handshake());
  const auto bytes =
      frame(io::kRecordNetSubmitJob, encode_submit(SubmitJobFrame{}));
  ASSERT_GT(bytes.size(), 10u);
  ASSERT_TRUE(raw.send_bytes(
      std::span<const std::uint8_t>(bytes.data(), 10)));  // partial frame
  raw.half_close();  // EOF mid-frame; our read side stays open
  const auto reply = raw.read_frame();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, io::kRecordNetError);
  EXPECT_EQ(decode_error(reply->payload).code, kErrTruncatedFrame);
}

TEST_F(NetServerTest, OversizedFrameIsRejectedBeforeBuffering) {
  const auto endpoint = start("tcp:127.0.0.1:0", {}, /*max_frame_bytes=*/4096);
  RawConnection raw(endpoint);
  ASSERT_TRUE(raw.handshake());
  // A frame HEADER claiming a huge payload; the body never follows — the
  // server must reject on the length field alone.
  io::ByteWriter header;
  header.u32(1u << 24);
  header.u32(io::kRecordNetSubmitJob);
  header.u64(0);
  ASSERT_TRUE(raw.send_bytes(header.bytes()));
  const auto reply = raw.read_frame();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, io::kRecordNetError);
  EXPECT_EQ(decode_error(reply->payload).code, kErrOversizedFrame);
  EXPECT_FALSE(raw.read_frame().has_value());
}

TEST_F(NetServerTest, RequestBeforeHandshakeIsRefused) {
  const auto endpoint = start_tcp();
  RawConnection raw(endpoint);
  ASSERT_TRUE(raw.send_frame(io::kRecordNetGetMetrics, {}));
  const auto reply = raw.read_frame();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, io::kRecordNetError);
  EXPECT_EQ(decode_error(reply->payload).code, kErrHandshakeRequired);
}

TEST_F(NetServerTest, UnknownFrameTypeGetsErrorButKeepsTheConnection) {
  const auto endpoint = start_tcp();
  RawConnection raw(endpoint);
  ASSERT_TRUE(raw.handshake());
  const std::uint8_t junk[3] = {1, 2, 3};
  ASSERT_TRUE(raw.send_frame(12345, junk));
  auto reply = raw.read_frame();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, io::kRecordNetError);
  EXPECT_EQ(decode_error(reply->payload).code, kErrUnknownType);
  // Still usable afterwards — mirroring the snapshot scanner's tolerance
  // of unknown record types.
  ASSERT_TRUE(raw.send_frame(io::kRecordNetGetMetrics, {}));
  reply = raw.read_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, io::kRecordNetMetrics);
}

// --- admission control + fair share over the wire ----------------------------

// ISSUE 5 satellite: an accept over max_connections used to be silently
// ::close()d — the peer saw a reset and retried forever.  It must receive a
// kErrServerFull Error frame (then the close), and be counted.
TEST_F(NetServerTest, ConnectionOverMaxConnectionsGetsServerFullNotAReset) {
  const auto endpoint = start("tcp:127.0.0.1:0", {}, kMaxFrameBytes,
                              /*max_connections=*/1);
  RawConnection first(endpoint);
  ASSERT_TRUE(first.handshake());

  RawConnection second(endpoint);
  const auto reply = second.read_frame();
  ASSERT_TRUE(reply.has_value())
      << "over-limit accept must answer with an Error frame, not a bare close";
  ASSERT_EQ(reply->type, io::kRecordNetError);
  EXPECT_EQ(decode_error(reply->payload).code, kErrServerFull);
  EXPECT_FALSE(second.read_frame().has_value());  // closed after the frame
  EXPECT_TRUE(eventually(
      [&] { return server_->stats().connections_rejected_full >= 1; }));
  // The admitted connection is untouched.
  ASSERT_TRUE(first.send_frame(io::kRecordNetGetMetrics, {}));
  const auto metrics_reply = first.read_frame();
  ASSERT_TRUE(metrics_reply.has_value());
  EXPECT_EQ(metrics_reply->type, io::kRecordNetMetrics);
  EXPECT_EQ(decode_metrics(metrics_reply->payload).connections_rejected_full,
            1u);
}

// ISSUE 5 satellite: a quota refusal is PERMANENT for the client's current
// standing — the client must fail the job on the first kErrQuotaExceeded
// frame instead of resubmitting it.
TEST_F(NetServerTest, QuotaExceededFailsTheJobWithoutRetries) {
  service::ServiceConfig service_config;
  service_config.num_workers = 1;
  service_config.max_inflight_per_client = 1;
  const auto endpoint = start("tcp:127.0.0.1:0", service_config);
  auto client = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;

  const auto slow = client.submit(slow_job());
  ASSERT_TRUE(slow.has_value());
  ASSERT_TRUE(eventually([&] { return service_->metrics().running > 0; }));
  const auto refused = client.submit(quick_job());
  ASSERT_TRUE(refused.has_value());
  const auto result = client.wait(*refused);
  EXPECT_EQ(result.status, service::JobStatus::failed);
  EXPECT_NE(result.error.find("quota"), std::string::npos) << result.error;
  const auto errors = client.take_errors();
  ASSERT_EQ(errors.size(), 1u) << "exactly one refusal: no resubmit loop";
  EXPECT_EQ(errors[0].code, kErrQuotaExceeded);
  // An admission refusal is not a protocol violation: the peer spoke the
  // protocol correctly and the rejection has its own counter.
  EXPECT_EQ(server_->stats().protocol_errors, 0u);
  EXPECT_EQ(service_->metrics().admission_rejected, 1u);

  ASSERT_TRUE(client.cancel(*slow));
  EXPECT_EQ(client.wait(*slow).status, service::JobStatus::cancelled);
}

// ISSUE 5 satellite: the submit handler used to map EVERY service.submit()
// exception to kErrDraining, reporting permanently-invalid jobs as
// retryable.  An invalid job must be kErrBadRequest, failed exactly once.
TEST_F(NetServerTest, InvalidJobIsBadRequestNotDrainingAndNotRetried) {
  const auto endpoint = start_tcp();
  auto client = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;

  RemoteJob invalid = quick_job();
  invalid.num_replicas = 0;  // the service refuses this at submit()
  const auto result = client.wait(*client.submit(invalid));
  EXPECT_EQ(result.status, service::JobStatus::failed);
  EXPECT_NE(result.error.find("num_replicas"), std::string::npos)
      << result.error;
  const auto errors = client.take_errors();
  ASSERT_EQ(errors.size(), 1u) << "permanent refusal must not be retried";
  EXPECT_EQ(errors[0].code, kErrBadRequest);
  EXPECT_EQ(server_->stats().protocol_errors, 1u);
  EXPECT_EQ(invocations_.load(), 0);

  // The connection survives; a valid job still runs.
  EXPECT_EQ(client.wait(*client.submit(quick_job())).status,
            service::JobStatus::done);
}

// The retryable side of the taxonomy: a kErrDraining refusal keeps the job
// pending and the client resubmits it (with backoff) under its original
// tag.  Scripted one-connection server: first SubmitJob → kErrDraining,
// the resubmit → a done Result.
TEST_F(NetServerTest, DrainingRefusalIsRetriedWithBackoffUntilAccepted) {
  std::string error;
  auto listener = listen_on(*Endpoint::parse("tcp:127.0.0.1:0"), &error);
  ASSERT_TRUE(listener.valid()) << error;
  const auto endpoint = local_endpoint(listener.fd());
  ASSERT_TRUE(endpoint.has_value());

  std::atomic<int> submits_seen{0};
  std::thread scripted([&] {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd < 0) return;
    Socket conn(fd);
    FrameBuffer in;
    std::uint8_t buf[65536];
    const auto reply = [&](std::uint32_t type,
                           std::span<const std::uint8_t> payload) {
      const auto bytes = frame(type, payload);
      conn.send_all(bytes.data(), bytes.size());
    };
    bool finished = false;
    while (!finished) {
      const long n = conn.recv_some(buf, sizeof(buf), 5000);
      if (n <= 0) break;
      in.append(buf, static_cast<std::size_t>(n));
      Frame f;
      while (in.next(&f) == FrameBuffer::Status::frame) {
        if (f.type == io::kRecordNetHello) {
          reply(io::kRecordNetHelloAck, encode_hello_ack({}));
        } else if (f.type == io::kRecordNetSubmitJob) {
          const auto submit = decode_submit(f.payload);
          if (++submits_seen == 1) {
            ErrorFrame busy;
            busy.tag = submit.tag;
            busy.code = kErrDraining;
            busy.message = "scripted: draining";
            reply(io::kRecordNetError, encode_error(busy));
          } else {
            ResultFrame result;
            result.tag = submit.tag;
            result.status = service::JobStatus::done;
            qubo::SolveBatch batch;
            batch.results.push_back({{1, 0, 1}, -1.0});
            result.batch =
                std::make_shared<const qubo::SolveBatch>(std::move(batch));
            reply(io::kRecordNetResult, encode_result(result));
            finished = true;
          }
        }
      }
    }
  });

  auto client = make_client(*endpoint, /*request_timeout_ms=*/10000);
  ASSERT_TRUE(client.connect(&error)) << error;
  const auto tag = client.submit(quick_job(61));
  ASSERT_TRUE(tag.has_value());
  const auto result = client.wait(*tag);
  EXPECT_EQ(result.status, service::JobStatus::done)
      << "retryable refusal must be resubmitted, got: " << result.error;
  EXPECT_EQ(submits_seen.load(), 2) << "refused once, resubmitted once";
  scripted.join();
}

// The retryable side of kErrServerFull: connect() backs off and redials
// until a connection slot frees (instead of failing on the first refusal).
TEST_F(NetServerTest, ConnectRetriesWithBackoffWhileServerFull) {
  const auto endpoint = start("tcp:127.0.0.1:0", {}, kMaxFrameBytes,
                              /*max_connections=*/1);
  auto occupant = std::make_unique<RawConnection>(endpoint);
  ASSERT_TRUE(occupant->handshake());
  std::thread freer([&] {
    std::this_thread::sleep_for(100ms);
    occupant.reset();  // the slot frees mid-retry
  });
  ClientConfig config;
  config.server = endpoint;
  config.reconnect_backoff_ms = 50;
  config.reconnect_attempts = 10;
  Client client(config);
  std::string error;
  EXPECT_TRUE(client.connect(&error))
      << "connect must retry a full server: " << error;
  freer.join();
  EXPECT_GE(server_->stats().connections_rejected_full, 1u)
      << "the first attempt should have been refused as full";
}

TEST_F(NetServerTest, MetricsReportPerClientSchedulerRows) {
  service::ServiceConfig service_config;
  service_config.client_weights["tenant-a"] = 2.0;
  const auto endpoint = start("tcp:127.0.0.1:0", service_config);
  auto tenant = make_client(endpoint, 30000, "tenant-a");
  auto anon = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(tenant.connect(&error)) << error;
  ASSERT_TRUE(anon.connect(&error)) << error;

  ASSERT_EQ(tenant.wait(*tenant.submit(quick_job(71))).status,
            service::JobStatus::done);
  ASSERT_EQ(anon.wait(*anon.submit(quick_job(72))).status,
            service::JobStatus::done);

  const auto metrics = tenant.metrics(&error);
  ASSERT_TRUE(metrics.has_value()) << error;
  EXPECT_EQ(metrics->client_id, "tenant-a");
  ASSERT_EQ(metrics->clients.size(), 2u);
  // Hello-named identity and the per-connection fallback, side by side.
  EXPECT_EQ(metrics->clients[0].client_id, "conn-2");
  EXPECT_EQ(metrics->clients[1].client_id, "tenant-a");
  EXPECT_EQ(metrics->clients[1].weight, 2.0);
  EXPECT_EQ(metrics->clients[1].submitted, 1u);
  EXPECT_EQ(metrics->clients[1].completed, 1u);
  EXPECT_EQ(metrics->clients[1].dispatched, 1u);

  const auto anon_metrics = anon.metrics(&error);
  ASSERT_TRUE(anon_metrics.has_value()) << error;
  EXPECT_EQ(anon_metrics->client_id, "conn-2");
}

// --- observability over the wire (ISSUE 7) ----------------------------------

// One remote job must leave a stitched server-side trace — queue, dispatch,
// kernel, journal_append, result_flush — all carrying the client-supplied
// trace id, fetchable over the wire as Chrome trace-event JSON.
TEST_F(NetServerTest, TraceDumpStitchesARemoteJobEndToEnd) {
  auto& recorder = obs::TraceRecorder::instance();
  recorder.enable(obs::TraceRecorder::kDefaultCapacity);
  recorder.clear();

  // A journal-backed service so the trace includes the journal_append span.
  service::ServiceConfig service_config;
  service_config.cache_path = (dir_ / "cache.qsnap").string();
  const auto endpoint =
      start("unix:" + (dir_ / "qross.sock").string(), service_config);

  auto client = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;

  RemoteJob job;
  job.solver = "da";
  job.model = test_model(31);
  job.num_replicas = 4;
  job.num_sweeps = 20;
  job.trace_id = 0xBEEFCAFE;
  const auto tag = client.submit(job, &error);
  ASSERT_TRUE(tag.has_value()) << error;
  ASSERT_EQ(client.wait(*tag).status, service::JobStatus::done);

  // The journal append trails completion; poll the wire dump until it lands.
  std::string json;
  ASSERT_TRUE(eventually([&] {
    const auto dump = client.trace_dump(&error);
    if (!dump.has_value()) return false;
    json = *dump;
    return json.find("\"name\":\"journal_append\"") != std::string::npos;
  })) << "journal_append span never appeared in the dump: " << error;

  for (const char* name :
       {"frame_decode", "submit", "queue", "dispatch", "kernel",
        "journal_append", "result_flush"}) {
    EXPECT_NE(json.find("\"name\":\"" + std::string(name) + "\""),
              std::string::npos)
        << "missing event " << name;
  }
  EXPECT_NE(json.find("\"trace\":3203386110"), std::string::npos)
      << "client trace id 0xBEEFCAFE missing from the server-side spans";
  recorder.disable();
  recorder.clear();
}

// A daemon that never enabled tracing still answers GetTrace — with an
// empty, valid Chrome JSON document, not an error.
TEST_F(NetServerTest, TraceDumpWithTracingOffIsEmptyButValid) {
  obs::TraceRecorder::instance().disable();
  obs::TraceRecorder::instance().clear();
  const auto endpoint = start_tcp();
  auto client = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;
  const auto dump = client.trace_dump(&error);
  ASSERT_TRUE(dump.has_value()) << error;
  EXPECT_NE(dump->find("\"traceEvents\":[]"), std::string::npos);
}

// The Prometheus exposition travels the wire and looks like Prometheus.
TEST_F(NetServerTest, PrometheusMetricsRoundTripOverTheWire) {
  const auto endpoint = start_tcp();
  auto client = make_client(endpoint);
  std::string error;
  ASSERT_TRUE(client.connect(&error)) << error;
  ASSERT_EQ(client.wait(*client.submit(quick_job(55))).status,
            service::JobStatus::done);

  const auto text = client.prometheus_metrics(&error);
  ASSERT_TRUE(text.has_value()) << error;
  EXPECT_NE(text->find("# TYPE qross_jobs_submitted_total counter"),
            std::string::npos);
  EXPECT_NE(text->find("# TYPE qross_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text->find("# TYPE qross_run_ms histogram"), std::string::npos);
  EXPECT_NE(text->find("qross_run_ms_bucket{le=\"+Inf\"}"), std::string::npos);
  EXPECT_NE(text->find("qross_net_frames_received_total"), std::string::npos);
}

}  // namespace
}  // namespace qross::net
