// Negative-compile probe for the thread-safety annotations.
//
// Compiled three ways by tests/negative_compile/check.cmake (registered as
// the `negative_compile_thread_safety` CTest entry on Clang builds):
//
//   * no defines          — the positive control; must COMPILE: proves the
//     probe itself is well-formed, so the rejections below mean the
//     analysis fired, not that the file is broken;
//   * -DTEST_GUARDED_BY   — reads a GUARDED_BY member without holding the
//     lock; must be REJECTED under -Werror=thread-safety;
//   * -DTEST_REQUIRES     — calls a REQUIRES(m) helper unlocked; must be
//     REJECTED under -Werror=thread-safety.
//
// If either violation variant ever compiles, the annotations have silently
// stopped being enforced (macro shim broken, flags dropped) and the CTest
// entry fails — that is the whole point of this file.

#include "common/thread_annotations.hpp"

namespace {

using qross::Mutex;
using qross::MutexLock;

class Probe {
 public:
  int read_locked() EXCLUDES(m_) {
    MutexLock lock(m_);
    return value_;
  }

  int read_unlocked_guarded() EXCLUDES(m_) {
#if defined(TEST_GUARDED_BY)
    return value_;  // unlocked read of a GUARDED_BY member: must not compile
#else
    MutexLock lock(m_);
    return value_;
#endif
  }

  int call_requires_helper() EXCLUDES(m_) {
#if defined(TEST_REQUIRES)
    return bump_locked();  // REQUIRES(m_) helper called unlocked: must fail
#else
    MutexLock lock(m_);
    return bump_locked();
#endif
  }

 private:
  int bump_locked() REQUIRES(m_) { return ++value_; }

  Mutex m_;
  int value_ GUARDED_BY(m_) = 0;
};

}  // namespace

int main() {
  Probe probe;
  return probe.read_locked() + probe.read_unlocked_guarded() +
                 probe.call_requires_helper() ==
             3
         ? 0
         : 1;
}
