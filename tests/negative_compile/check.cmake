# Negative-compile driver for the thread-safety annotations, run as a CTest
# script (cmake -P) on Clang builds only — GCC compiles the annotations away,
# so there is nothing to prove there.
#
# Expected variables (passed with -D on the ctest command line):
#   PROBE    — absolute path to thread_safety_probe.cpp
#   INCLUDE  — absolute path to the src/ include root
#   COMPILER — the C++ compiler to invoke (the configured CMAKE_CXX_COMPILER)
#   WORKDIR  — scratch directory for compiler droppings
#
# Three compiles, all with -Werror=thread-safety:
#   1. positive control (no defines)   → must SUCCEED
#   2. -DTEST_GUARDED_BY               → must FAIL with a thread-safety note
#   3. -DTEST_REQUIRES                 → must FAIL with a thread-safety note
#
# The failure variants additionally grep the diagnostic text: a probe that
# fails to compile for an unrelated reason (syntax rot, missing header) must
# not masquerade as the analysis firing.

foreach(var PROBE INCLUDE COMPILER WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "negative_compile/check.cmake: ${var} not set")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORKDIR}")

set(base_flags -std=c++20 -fsyntax-only -Wthread-safety -Werror=thread-safety
    "-I${INCLUDE}")

# 1. Positive control: the probe must be a valid program.
execute_process(
  COMMAND "${COMPILER}" ${base_flags} "${PROBE}"
  WORKING_DIRECTORY "${WORKDIR}"
  RESULT_VARIABLE control_rc
  ERROR_VARIABLE control_err)
if(NOT control_rc EQUAL 0)
  message(FATAL_ERROR
          "positive control failed to compile — the probe is broken, not the "
          "analysis:\n${control_err}")
endif()

# 2./3. Each seeded violation must be rejected BY THE ANALYSIS.
foreach(violation TEST_GUARDED_BY TEST_REQUIRES)
  execute_process(
    COMMAND "${COMPILER}" ${base_flags} "-D${violation}" "${PROBE}"
    WORKING_DIRECTORY "${WORKDIR}"
    RESULT_VARIABLE violation_rc
    ERROR_VARIABLE violation_err)
  if(violation_rc EQUAL 0)
    message(FATAL_ERROR
            "-D${violation} compiled cleanly: the thread-safety analysis is "
            "not enforcing the annotations")
  endif()
  if(NOT violation_err MATCHES "thread-safety|requires holding|guarded_by")
    message(FATAL_ERROR
            "-D${violation} failed for a reason other than the thread-safety "
            "analysis:\n${violation_err}")
  endif()
  message(STATUS "-D${violation} rejected as expected")
endforeach()

message(STATUS "negative-compile checks passed")
