// Tests for the tuning-as-a-service layer: the BatchedSurrogate combiner
// (bit-identity and cross-session combining) and TuneService sessions
// (equivalence with in-process tuning, warm-cache replay, cancellation,
// corpus append, admission).

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "counting_solver.hpp"
#include "qross/qross.hpp"
#include "service/tune_service.hpp"
#include "surrogate/batched.hpp"

namespace qross::service {
namespace {

using qross::testing::CountingSolver;

solvers::SolverPtr fast_solver() {
  solvers::QbsolvParams params;
  params.num_rounds = 1;
  params.subsolver_sweeps = 10;
  return std::make_shared<solvers::Qbsolv>(params);
}

solvers::SolveOptions fast_options() {
  solvers::SolveOptions options;
  options.num_replicas = 8;
  options.num_sweeps = 10;
  options.seed = 3;
  return options;
}

class TuneServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto history = tsp::generate_synthetic_dataset(8, 6, 9, 0xFACADE);
    surrogate::SweepConfig sweep;
    sweep.slope_points = 5;
    sweep.plateau_points = 1;
    sweep.bisection_steps = 5;
    tuner_ = new core::QrossTuner(
        core::QrossTuner::fit(history, fast_solver(), fast_options(), sweep));
  }
  static void TearDownTestSuite() {
    delete tuner_;
    tuner_ = nullptr;
  }
  static core::QrossTuner* tuner_;
};

core::QrossTuner* TuneServiceTest::tuner_ = nullptr;

// --- BatchedSurrogate -------------------------------------------------------

TEST_F(TuneServiceTest, BatchedSurrogateIsBitIdenticalToDirectCalls) {
  const auto& inner = tuner_->surrogate();
  surrogate::BatchedSurrogate batched(inner);

  const auto instance = tsp::generate_uniform(8, 0xB001);
  const surrogate::PreparedTspInstance prepared(instance);
  const auto features = surrogate::extract_features(prepared.prepared());
  const double anchor = surrogate::scale_anchor(features);

  std::vector<double> grid;
  for (int k = 0; k < 32; ++k) grid.push_back(1.0 + 3.0 * k);

  const auto direct = inner.predict_sweep(features, anchor, grid);
  const auto combined = batched.predict_sweep(features, anchor, grid);
  ASSERT_EQ(direct.size(), combined.size());
  for (std::size_t k = 0; k < direct.size(); ++k) {
    EXPECT_EQ(direct[k].pf, combined[k].pf) << "row " << k;
    EXPECT_EQ(direct[k].energy_avg, combined[k].energy_avg);
    EXPECT_EQ(direct[k].energy_std, combined[k].energy_std);
  }

  const auto one = batched.predict(features, anchor, grid[7]);
  EXPECT_EQ(one.pf, direct[7].pf);

  const auto stats = batched.stats();
  EXPECT_EQ(stats.calls, 2u);
  EXPECT_EQ(stats.rows, grid.size() + 1);
  // A lone caller never waits for a batching window: every call ran its own
  // pass(es), nothing was combined.
  EXPECT_EQ(stats.combined_rows, 0u);
}

TEST_F(TuneServiceTest, BatchedSurrogateCombinesConcurrentCallers) {
  const auto& inner = tuner_->surrogate();
  surrogate::BatchedSurrogate batched(inner);

  // One thread sweeps a large grid — its forward pass holds the leader role
  // for a window orders of magnitude longer than a thread wake-up — while
  // follower threads fire small sweeps that enqueue inside that window and
  // get drained together on the leader's next loop.
  constexpr int kFollowers = 3;
  constexpr int kLeaderIterations = 10;
  constexpr std::size_t kBigRows = 4096;
  std::atomic<bool> mismatch{false};
  std::atomic<bool> leader_done{false};
  std::uint64_t follower_rows = 0;
  const auto hammer = [&] {
    leader_done = false;
    std::vector<std::thread> workers;
    workers.emplace_back([&] {
      const auto instance = tsp::generate_uniform(8, 0xB100);
      const surrogate::PreparedTspInstance prepared(instance);
      const auto features = surrogate::extract_features(prepared.prepared());
      const double anchor = surrogate::scale_anchor(features);
      std::vector<double> grid;
      for (std::size_t k = 0; k < kBigRows; ++k) {
        grid.push_back(2.0 + 0.02 * static_cast<double>(k));
      }
      for (int it = 0; it < kLeaderIterations; ++it) {
        (void)batched.predict_sweep(features, anchor, grid);
      }
      leader_done = true;
    });
    std::vector<std::uint64_t> rows_done(kFollowers, 0);
    for (int w = 0; w < kFollowers; ++w) {
      workers.emplace_back([&, w] {
        const auto instance = tsp::generate_uniform(8, 0xB101 + w);
        const surrogate::PreparedTspInstance prepared(instance);
        const auto features = surrogate::extract_features(prepared.prepared());
        const double anchor = surrogate::scale_anchor(features);
        std::vector<double> grid;
        for (int k = 0; k < 16; ++k) grid.push_back(2.0 + 5.0 * k);
        const auto expected = inner.predict_sweep(features, anchor, grid);
        while (!leader_done) {
          const auto got = batched.predict_sweep(features, anchor, grid);
          rows_done[static_cast<std::size_t>(w)] += grid.size();
          for (std::size_t k = 0; k < grid.size(); ++k) {
            if (got[k].pf != expected[k].pf ||
                got[k].energy_avg != expected[k].energy_avg ||
                got[k].energy_std != expected[k].energy_std) {
              mismatch = true;
            }
          }
        }
      });
    }
    for (auto& worker : workers) worker.join();
    for (const auto rows_per_thread : rows_done) {
      follower_rows += rows_per_thread;
    }
  };
  // Combining needs calls to actually overlap; retry the hammer a few times
  // so a pathologically serialised schedule cannot fail the test.
  for (int attempt = 0;
       attempt < 5 && batched.stats().combined_rows == 0; ++attempt) {
    hammer();
  }

  EXPECT_FALSE(mismatch)
      << "combined passes must be bit-identical to direct evaluation";
  const auto stats = batched.stats();
  EXPECT_GT(follower_rows, 0u);
  // Every row of every call is accounted for exactly once.
  EXPECT_GT(stats.calls, 0u);
  // Fewer passes than calls == combining actually happened (followers pile
  // up behind every leader pass); a combined pass holds rows from more than
  // one sweep.
  EXPECT_LT(stats.passes, stats.calls);
  EXPECT_GT(stats.combined_rows, 0u);
  EXPECT_GE(stats.max_rows_per_pass, kBigRows);
}

// --- TuneService sessions ---------------------------------------------------

TEST_F(TuneServiceTest, SessionIsBitIdenticalToInProcessTune) {
  const auto instance = tsp::generate_uniform(8, 0xB200);
  core::TuneOptions options;
  options.trials = 4;
  options.seed = 21;
  const core::TuneOutcome direct =
      tuner_->tune(instance, fast_solver(), options);

  SolveService solve;
  TuneService tune(*tuner_, solve);
  TuneHandle handle = tune.submit(instance, fast_solver(), options);
  const TuneSessionResult result = handle.wait();

  ASSERT_EQ(result.status, TuneSessionStatus::done);
  ASSERT_EQ(result.outcome.trials.size(), direct.trials.size());
  for (std::size_t t = 0; t < direct.trials.size(); ++t) {
    EXPECT_EQ(result.outcome.trials[t].relaxation_parameter,
              direct.trials[t].relaxation_parameter)
        << "probed-A sequence diverged at trial " << t;
    EXPECT_EQ(result.outcome.trials[t].pf, direct.trials[t].pf);
  }
  EXPECT_EQ(result.outcome.best_tour, direct.best_tour);
  EXPECT_EQ(result.outcome.best_length, direct.best_length);
  EXPECT_EQ(result.solver_invocations, 4u);

  const auto metrics = tune.metrics();
  EXPECT_EQ(metrics.sessions_started, 1u);
  EXPECT_EQ(metrics.sessions_done, 1u);
  EXPECT_EQ(metrics.sessions_active, 0u);
}

TEST_F(TuneServiceTest, RepeatedSessionReplaysFromCacheWithZeroInvocations) {
  const auto instance = tsp::generate_uniform(8, 0xB201);
  core::TuneOptions options;
  options.trials = 4;
  options.seed = 23;

  SolveService solve;
  TuneService tune(*tuner_, solve);
  const auto first = tune.submit(instance, fast_solver(), options).wait();
  ASSERT_EQ(first.status, TuneSessionStatus::done);
  EXPECT_EQ(first.solver_invocations, 4u);

  const auto second = tune.submit(instance, fast_solver(), options).wait();
  ASSERT_EQ(second.status, TuneSessionStatus::done);
  EXPECT_EQ(second.solver_invocations, 0u)
      << "warm repeat must replay every probe from the result cache";
  EXPECT_EQ(second.outcome.best_tour, first.outcome.best_tour);
}

TEST_F(TuneServiceTest, ConcurrentSessionsMatchTheirSequentialOutcomes) {
  core::TuneOptions options;
  options.trials = 3;
  options.seed = 29;
  std::vector<tsp::TspInstance> instances;
  for (int k = 0; k < 4; ++k) {
    instances.push_back(tsp::generate_uniform(8, 0xB300 + k));
  }
  std::vector<core::TuneOutcome> sequential;
  for (const auto& instance : instances) {
    sequential.push_back(tuner_->tune(instance, fast_solver(), options));
  }

  SolveService solve;
  TuneService tune(*tuner_, solve);
  std::vector<TuneHandle> handles;
  for (const auto& instance : instances) {
    handles.push_back(tune.submit(instance, fast_solver(), options));
  }
  for (std::size_t k = 0; k < handles.size(); ++k) {
    const auto result = handles[k].wait();
    ASSERT_EQ(result.status, TuneSessionStatus::done) << "session " << k;
    ASSERT_EQ(result.outcome.trials.size(), sequential[k].trials.size());
    for (std::size_t t = 0; t < sequential[k].trials.size(); ++t) {
      EXPECT_EQ(result.outcome.trials[t].relaxation_parameter,
                sequential[k].trials[t].relaxation_parameter)
          << "session " << k << " trial " << t;
    }
    EXPECT_EQ(result.outcome.best_tour, sequential[k].best_tour);
  }
  // All sessions shared one combiner; their grid scans overlap in time
  // often enough that at least some rows rode a combined pass.  (Not
  // asserted strictly — scheduling may serialise them — but the counters
  // must at least add up.)
  const auto stats = tune.evaluator().stats();
  EXPECT_GT(stats.rows, 0u);
  EXPECT_LE(stats.passes, stats.calls);
}

TEST_F(TuneServiceTest, EventsStreamPerTrialAndNotifyFires) {
  const auto instance = tsp::generate_uniform(8, 0xB400);
  core::TuneOptions options;
  options.trials = 4;
  options.seed = 31;

  SolveService solve;
  TuneService tune(*tuner_, solve);
  TuneHandle handle = tune.submit(instance, fast_solver(), options);
  std::atomic<int> notifications{0};
  handle.notify([&] { ++notifications; });
  const auto result = handle.wait();
  ASSERT_EQ(result.status, TuneSessionStatus::done);

  const auto events = handle.events_since(0);
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t t = 0; t < events.size(); ++t) {
    EXPECT_EQ(events[t].index, t);
    EXPECT_EQ(events[t].total, 4u);
    EXPECT_EQ(events[t].relaxation_parameter,
              result.outcome.trials[t].relaxation_parameter);
  }
  EXPECT_EQ(handle.events_since(3).size(), 1u);
  EXPECT_EQ(handle.events_since(4).size(), 0u);
  // Persistent hook: once per completed trial + the terminal transition;
  // the immediate at-registration catch-up replaces any fires it missed.
  EXPECT_GE(notifications.load(), 1);
  EXPECT_LE(notifications.load(), 5);
}

TEST_F(TuneServiceTest, CancelStopsASlowSessionQuickly) {
  // Same surrogate, but probes that would run ~50M sweeps: only the
  // session's StopToken can end them promptly.
  solvers::SolveOptions slow = fast_options();
  slow.num_sweeps = 50'000'000;
  const core::QrossTuner slow_tuner(tuner_->surrogate(), slow);

  SolveService solve;
  TuneService tune(slow_tuner, solve);
  core::TuneOptions options;
  options.trials = 3;
  options.seed = 37;
  std::atomic<int> invocations{0};
  const auto counted =
      std::make_shared<CountingSolver>(fast_solver(), invocations);
  TuneHandle handle =
      tune.submit(tsp::generate_uniform(8, 0xB500), counted, options);

  // Let the first probe start, then cancel; the solver checks the token
  // every sweep, so the session must become terminal almost immediately.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  handle.cancel();
  ASSERT_TRUE(handle.wait_for(std::chrono::seconds(30)))
      << "cancelled session failed to stop";
  const auto result = handle.result();
  EXPECT_EQ(result.status, TuneSessionStatus::cancelled);
  EXPECT_LT(result.outcome.trials.size(), 3u);
  EXPECT_EQ(tune.metrics().sessions_cancelled, 1u);
}

TEST_F(TuneServiceTest, CompletedSessionsAppendToTheCorpus) {
  const auto corpus = std::filesystem::path(::testing::TempDir()) /
                      "qross_tune_corpus.csv";
  std::filesystem::remove(corpus);

  core::TuneOptions options;
  options.trials = 3;
  options.seed = 41;
  {
    SolveService solve;
    TuneServiceConfig config;
    config.corpus_path = corpus.string();
    TuneService tune(*tuner_, solve, config);
    ASSERT_EQ(tune.submit(tsp::generate_uniform(8, 0xB600), fast_solver(),
                          options)
                  .wait()
                  .status,
              TuneSessionStatus::done);
    ASSERT_EQ(tune.submit(tsp::generate_uniform(9, 0xB601), fast_solver(),
                          options)
                  .wait()
                  .status,
              TuneSessionStatus::done);
    EXPECT_EQ(tune.metrics().corpus_rows_appended, 6u);
  }

  // The corpus must round-trip through the Dataset loader (one header even
  // though two sessions appended) and carry real probe rows.
  std::ifstream is(corpus);
  ASSERT_TRUE(is.good());
  const auto dataset = surrogate::Dataset::load_csv(is);
  ASSERT_EQ(dataset.rows.size(), 6u);
  for (const auto& row : dataset.rows) {
    EXPECT_GT(row.relaxation_parameter, 0.0);
    EXPECT_GE(row.pf, 0.0);
    EXPECT_LE(row.pf, 1.0);
  }
  std::filesystem::remove(corpus);
}

TEST_F(TuneServiceTest, SessionQuotaIsARetryableAdmissionError) {
  solvers::SolveOptions slow = fast_options();
  slow.num_sweeps = 50'000'000;
  const core::QrossTuner slow_tuner(tuner_->surrogate(), slow);

  SolveService solve;
  TuneServiceConfig config;
  config.max_sessions = 1;
  TuneService tune(slow_tuner, solve, config);
  core::TuneOptions options;
  options.trials = 2;
  TuneHandle first =
      tune.submit(tsp::generate_uniform(8, 0xB700), fast_solver(), options);

  try {
    tune.submit(tsp::generate_uniform(8, 0xB701), fast_solver(), options);
    FAIL() << "second session must be refused at max_sessions = 1";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.kind(), AdmissionErrorKind::session_quota);
    EXPECT_TRUE(e.retryable());
  }

  first.cancel();
  first.wait();
  // Capacity freed: the retry now succeeds (cancel unblocks the slot even
  // though the service has not reaped the finished thread yet).
  TuneHandle second =
      tune.submit(tsp::generate_uniform(8, 0xB702), fast_solver(), options);
  second.cancel();
  second.wait();
}

TEST_F(TuneServiceTest, ShutdownRefusesNewSessionsAndCancelsLiveOnes) {
  solvers::SolveOptions slow = fast_options();
  slow.num_sweeps = 50'000'000;
  const core::QrossTuner slow_tuner(tuner_->surrogate(), slow);

  SolveService solve;
  TuneService tune(slow_tuner, solve);
  core::TuneOptions options;
  options.trials = 2;
  TuneHandle live =
      tune.submit(tsp::generate_uniform(8, 0xB800), fast_solver(), options);
  tune.shutdown();
  try {
    tune.submit(tsp::generate_uniform(8, 0xB801), fast_solver(), options);
    FAIL() << "submit after shutdown must be refused";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.kind(), AdmissionErrorKind::shutting_down);
  }
  ASSERT_TRUE(live.wait_for(std::chrono::seconds(30)));
  EXPECT_EQ(live.result().status, TuneSessionStatus::cancelled);
}

}  // namespace
}  // namespace qross::service
