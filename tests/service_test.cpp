// Tests for the solve service subsystem: cooperative stop in every solver
// kernel, job fingerprints, the LRU result cache, and the SolveService's
// queueing / cancellation / deadline / coalescing semantics (the ISSUE 2
// acceptance criteria a-d).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "counting_solver.hpp"
#include "problems/mvc/mvc.hpp"
#include "qross/qross.hpp"

namespace qross::service {
namespace {

using namespace std::chrono_literals;
using qross::testing::CountingSolver;

qubo::QuboModel test_model(std::uint64_t seed, std::size_t vertices = 48) {
  return mvc::generate_random_mvc(vertices, 0.10, seed).to_qubo(2.0);
}

solvers::SolveOptions small_options() {
  solvers::SolveOptions options;
  options.num_replicas = 4;
  options.num_sweeps = 20;
  options.seed = 7;
  return options;
}

/// Blocks inside solve() until released — lets a test hold an execution in
/// the `running` phase deterministically.
class GateSolver final : public solvers::QuboSolver {
 public:
  struct Gate {
    std::mutex m;
    std::condition_variable cv;
    bool open = false;
    std::atomic<int> entered{0};

    void release() {
      {
        std::lock_guard lock(m);
        open = true;
      }
      cv.notify_all();
    }
    void await_entered(int count) {
      while (entered.load() < count) std::this_thread::sleep_for(1ms);
    }
  };

  explicit GateSolver(std::shared_ptr<Gate> gate) : gate_(std::move(gate)) {}
  std::string name() const override { return "gate"; }
  qubo::SolveBatch solve(const qubo::QuboModel& model,
                         const solvers::SolveOptions& options) const override {
    gate_->entered.fetch_add(1);
    std::unique_lock lock(gate_->m);
    gate_->cv.wait(lock, [&] { return gate_->open; });
    qubo::SolveBatch batch;
    batch.results.resize(options.num_replicas);
    for (auto& r : batch.results) {
      r.assignment.assign(model.num_vars(), 0);
      r.qubo_energy = model.offset();
    }
    return batch;
  }

 private:
  std::shared_ptr<GateSolver::Gate> gate_;
};

/// Records the order executions start in (tagged by model offset).
class RecordingSolver final : public solvers::QuboSolver {
 public:
  struct Log {
    std::mutex m;
    std::vector<double> order;
  };
  explicit RecordingSolver(std::shared_ptr<Log> log) : log_(std::move(log)) {}
  std::string name() const override { return "recorder"; }
  qubo::SolveBatch solve(const qubo::QuboModel& model,
                         const solvers::SolveOptions& options) const override {
    {
      std::lock_guard lock(log_->m);
      log_->order.push_back(model.offset());
    }
    qubo::SolveBatch batch;
    batch.results.resize(options.num_replicas);
    for (auto& r : batch.results) r.assignment.assign(model.num_vars(), 0);
    return batch;
  }

 private:
  std::shared_ptr<Log> log_;
};

class ThrowingSolver final : public solvers::QuboSolver {
 public:
  std::string name() const override { return "thrower"; }
  qubo::SolveBatch solve(const qubo::QuboModel&,
                         const solvers::SolveOptions&) const override {
    throw std::runtime_error("deliberate test failure");
  }
};

// --- StopToken --------------------------------------------------------------

TEST(StopTokenTest, DefaultTokenIsInert) {
  solvers::StopToken token;
  EXPECT_FALSE(token.stop_possible());
  EXPECT_FALSE(token.stop_requested());
  token.request_stop();  // no-op, must not crash
  EXPECT_FALSE(token.stop_requested());
}

TEST(StopTokenTest, CopiesShareTheFlag) {
  const auto token = solvers::StopToken::create();
  const solvers::StopToken copy = token;
  EXPECT_TRUE(copy.stop_possible());
  EXPECT_FALSE(copy.stop_requested());
  token.request_stop();
  EXPECT_TRUE(copy.stop_requested());
}

// --- cooperative stop in every kernel ---------------------------------------

std::vector<solvers::SolverPtr> all_kernels() {
  return {std::make_shared<solvers::SimulatedAnnealer>(),
          std::make_shared<solvers::DigitalAnnealer>(),
          std::make_shared<solvers::TabuSearch>(),
          std::make_shared<solvers::ParallelTempering>(),
          std::make_shared<solvers::Qbsolv>(),
          std::make_shared<solvers::AnalogNoiseSolver>(
              std::make_shared<solvers::SimulatedAnnealer>())};
}

TEST(CooperativeStopTest, EveryKernelStopsWithinASweep) {
  const auto model = test_model(0x51);
  for (const auto& solver : all_kernels()) {
    SCOPED_TRACE(solver->name());
    solvers::SolveOptions options;
    options.num_replicas = 4;
    options.num_sweeps = 500;
    options.stop = solvers::StopToken::create();
    std::atomic<std::size_t> ticks{0};
    const solvers::StopToken stop = options.stop;
    options.on_sweep = [&ticks, stop] {
      if (ticks.fetch_add(1) == 0) stop.request_stop();
    };
    const qubo::SolveBatch batch = solver->solve(model, options);
    // Stopped at the first sweep tick: nowhere near the full budget runs.
    // Tabu ticks once per iteration (= sweeps * n budget), so the bound is
    // per-kernel loose but still orders of magnitude below "ran to the end".
    EXPECT_LT(ticks.load(), 4 * options.num_replicas)
        << "kernel ignored the stop token";
    // Partial batches still contain structurally valid assignments.
    ASSERT_FALSE(batch.empty());
    for (const auto& result : batch.results) {
      EXPECT_EQ(result.assignment.size(), model.num_vars());
    }
  }
}

TEST(CooperativeStopTest, UnstoppedRunsAreUnaffectedByInstrumentation) {
  const auto model = test_model(0x52);
  for (const auto& solver : all_kernels()) {
    SCOPED_TRACE(solver->name());
    const auto options = small_options();
    const qubo::SolveBatch plain = solver->solve(model, options);

    solvers::SolveOptions instrumented = options;
    instrumented.stop = solvers::StopToken::create();  // never signalled
    std::atomic<std::size_t> ticks{0};
    instrumented.on_sweep = [&ticks] { ticks.fetch_add(1); };
    const qubo::SolveBatch observed = solver->solve(model, instrumented);

    EXPECT_GT(ticks.load(), 0u);
    ASSERT_EQ(plain.size(), observed.size());
    for (std::size_t r = 0; r < plain.size(); ++r) {
      EXPECT_EQ(plain.results[r].assignment, observed.results[r].assignment);
      EXPECT_EQ(plain.results[r].qubo_energy, observed.results[r].qubo_energy);
    }
  }
}

// --- fingerprints -----------------------------------------------------------

TEST(FingerprintTest, CanonicalOverConstructionPath) {
  qubo::QuboModel a(4);
  a.add_term(0, 1, 1.5);
  a.add_term(2, 2, -0.5);

  qubo::QuboModel b(4);
  b.add_term(1, 0, 0.75);  // accumulates into (0, 1)
  b.add_term(0, 1, 0.75);
  b.add_term(2, 2, -0.5);
  b.add_term(3, 3, 2.0);
  b.add_term(3, 3, -2.0);  // cancels to a structural zero

  EXPECT_EQ(fingerprint_model(a), fingerprint_model(b));

  qubo::QuboModel c(4);
  c.add_term(0, 1, 1.5);
  c.add_term(2, 2, -0.5 + 1e-12);
  EXPECT_NE(fingerprint_model(a), fingerprint_model(c));
}

TEST(FingerprintTest, OptionsAndSolverIdentity) {
  const auto model = test_model(0x53);
  const auto sa = std::make_shared<solvers::SimulatedAnnealer>();
  const auto options = small_options();

  // num_threads is excluded: the fan-out is bit-identical.
  solvers::SolveOptions threaded = options;
  threaded.num_threads = 8;
  EXPECT_EQ(fingerprint_job(*sa, model, options),
            fingerprint_job(*sa, model, threaded));

  // The stop token / progress callback never change a completed result.
  solvers::SolveOptions instrumented = options;
  instrumented.stop = solvers::StopToken::create();
  instrumented.on_sweep = [] {};
  EXPECT_EQ(fingerprint_job(*sa, model, options),
            fingerprint_job(*sa, model, instrumented));

  solvers::SolveOptions reseeded = options;
  reseeded.seed += 1;
  EXPECT_NE(fingerprint_job(*sa, model, options),
            fingerprint_job(*sa, model, reseeded));

  // Same kernel, different parameters: config_digest keeps them apart.
  solvers::SaParams hot;
  hot.initial_acceptance = 0.95;
  const auto sa_hot = std::make_shared<solvers::SimulatedAnnealer>(hot);
  EXPECT_NE(fingerprint_job(*sa, model, options),
            fingerprint_job(*sa_hot, model, options));

  const auto da = std::make_shared<solvers::DigitalAnnealer>();
  EXPECT_NE(fingerprint_job(*sa, model, options),
            fingerprint_job(*da, model, options));
}

// --- result cache -----------------------------------------------------------

std::shared_ptr<const qubo::SolveBatch> dummy_batch(double energy) {
  qubo::SolveBatch batch;
  batch.results.resize(1);
  batch.results[0].qubo_energy = energy;
  return std::make_shared<const qubo::SolveBatch>(std::move(batch));
}

TEST(ResultCacheTest, LruEvictionAndCounters) {
  ResultCache cache(2);
  const Fingerprint k1{1, 1}, k2{2, 2}, k3{3, 3};
  EXPECT_EQ(cache.get(k1), nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  cache.put(k1, dummy_batch(1.0));
  cache.put(k2, dummy_batch(2.0));
  ASSERT_NE(cache.get(k1), nullptr);  // k1 now most-recently-used
  cache.put(k3, dummy_batch(3.0));    // evicts k2, the LRU entry
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.get(k2), nullptr);
  ASSERT_NE(cache.get(k1), nullptr);
  ASSERT_NE(cache.get(k3), nullptr);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.put({1, 1}, dummy_batch(1.0));
  EXPECT_EQ(cache.get({1, 1}), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

// --- SolveService acceptance criteria ---------------------------------------

// (a) A submitted long-running job cancels within one sweep.
TEST(SolveServiceTest, CancelStopsARunningJobWithinASweep) {
  ServiceConfig config;
  config.num_workers = 1;
  SolveService svc(config);

  solvers::SolveOptions huge = small_options();
  huge.num_sweeps = 2'000'000;  // would run for minutes if not cancelled
  huge.num_replicas = 2;
  auto handle = svc.submit(std::make_shared<solvers::SimulatedAnnealer>(),
                           test_model(0x54, 96), huge);
  while (handle.status() == JobStatus::queued) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(handle.status(), JobStatus::running);
  handle.cancel();
  const JobResult result = handle.wait();  // returns within ~one sweep
  EXPECT_EQ(result.status, JobStatus::cancelled);
  ASSERT_NE(result.batch, nullptr);  // partial best-so-far batch attached
  EXPECT_EQ(result.batch->size(), huge.num_replicas);

  const ServiceMetrics metrics = svc.metrics();
  EXPECT_EQ(metrics.cancelled, 1u);
  EXPECT_EQ(metrics.running, 0u);
  // Every snapshot reports the dispatched evaluation kernel.
  EXPECT_TRUE(metrics.simd_kernel == "avx2" || metrics.simd_kernel == "scalar")
      << metrics.simd_kernel;
}

// (b) A deadline-expired queued job never starts.
TEST(SolveServiceTest, ExpiredQueuedJobNeverInvokesTheSolver) {
  ServiceConfig config;
  config.num_workers = 1;
  SolveService svc(config);

  const auto gate = std::make_shared<GateSolver::Gate>();
  auto blocker = svc.submit(std::make_shared<GateSolver>(gate),
                            test_model(0x55), small_options());
  gate->await_entered(1);  // the only worker is now held inside the gate

  std::atomic<int> invocations{0};
  auto counted = std::make_shared<CountingSolver>(
      std::make_shared<solvers::SimulatedAnnealer>(), invocations);
  SubmitOptions submit;
  submit.deadline = std::chrono::steady_clock::now() - 1ms;  // already past
  auto doomed = svc.submit(counted, test_model(0x56), small_options(), submit);
  EXPECT_EQ(doomed.status(), JobStatus::queued);

  gate->release();
  const JobResult result = doomed.wait();
  EXPECT_EQ(result.status, JobStatus::expired);
  EXPECT_EQ(result.batch, nullptr);
  EXPECT_EQ(invocations.load(), 0) << "expired job must never start";
  EXPECT_EQ(blocker.wait().status, JobStatus::done);
}

// (c) A cache hit returns a bit-identical SolveResult without invoking the
// solver.
TEST(SolveServiceTest, CacheHitIsBitIdenticalWithoutSolverInvocation) {
  SolveService svc;
  std::atomic<int> invocations{0};
  auto counted = std::make_shared<CountingSolver>(
      std::make_shared<solvers::DigitalAnnealer>(), invocations);
  const auto model = test_model(0x57);
  const auto options = small_options();

  const JobResult first = svc.submit(counted, model, options).wait();
  ASSERT_EQ(first.status, JobStatus::done);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(invocations.load(), 1);

  const JobResult second = svc.submit(counted, model, options).wait();
  ASSERT_EQ(second.status, JobStatus::done);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(invocations.load(), 1) << "cache hit must not invoke the solver";

  ASSERT_EQ(first.batch->size(), second.batch->size());
  for (std::size_t r = 0; r < first.batch->size(); ++r) {
    EXPECT_EQ(first.batch->results[r].assignment,
              second.batch->results[r].assignment);
    EXPECT_EQ(first.batch->results[r].qubo_energy,
              second.batch->results[r].qubo_energy);
  }
}

// (d) N concurrent submissions of the same job: one solver execution plus
// N-1 coalesced results.
TEST(SolveServiceTest, ConcurrentIdenticalSubmissionsCoalesce) {
  ServiceConfig config;
  config.num_workers = 2;
  SolveService svc(config);

  const auto gate = std::make_shared<GateSolver::Gate>();
  const auto solver = std::make_shared<GateSolver>(gate);
  const auto model = test_model(0x58);
  const auto options = small_options();

  constexpr std::size_t kJobs = 8;
  std::vector<JobHandle> handles;
  handles.push_back(svc.submit(solver, model, options));
  gate->await_entered(1);  // primary is running; the rest must coalesce
  for (std::size_t k = 1; k < kJobs; ++k) {
    handles.push_back(svc.submit(solver, model, options));
  }
  gate->release();

  std::size_t shared_results = 0;
  std::shared_ptr<const qubo::SolveBatch> batch;
  for (auto& handle : handles) {
    const JobResult result = handle.wait();
    ASSERT_EQ(result.status, JobStatus::done);
    if (result.coalesced || result.cache_hit) ++shared_results;
    if (batch == nullptr) {
      batch = result.batch;
    } else {
      EXPECT_EQ(batch, result.batch) << "coalesced jobs must share the batch";
    }
  }
  EXPECT_EQ(gate->entered.load(), 1) << "exactly one solver execution";
  EXPECT_EQ(shared_results, kJobs - 1);
  EXPECT_EQ(svc.metrics().solver_invocations, 1u);
}

// --- queue policy, deadline mid-run, failures, shutdown ---------------------

TEST(SolveServiceTest, HigherPriorityRunsFirst) {
  ServiceConfig config;
  config.num_workers = 1;
  SolveService svc(config);

  const auto gate = std::make_shared<GateSolver::Gate>();
  auto blocker = svc.submit(std::make_shared<GateSolver>(gate),
                            test_model(0x59), small_options());
  gate->await_entered(1);

  const auto log = std::make_shared<RecordingSolver::Log>();
  const auto recorder = std::make_shared<RecordingSolver>(log);
  std::vector<JobHandle> handles;
  for (int k = 0; k < 3; ++k) {
    qubo::QuboModel model = test_model(0x60 + k, 16);
    model.set_offset(static_cast<double>(k));  // tag for the recorder
    SubmitOptions submit;
    submit.priority = k == 2 ? 10 : 0;  // the last submission jumps the queue
    handles.push_back(svc.submit(recorder, model, small_options(), submit));
  }
  gate->release();
  for (auto& handle : handles) {
    EXPECT_EQ(handle.wait().status, JobStatus::done);
  }
  blocker.wait();
  ASSERT_EQ(log->order.size(), 3u);
  EXPECT_DOUBLE_EQ(log->order[0], 2.0) << "priority 10 must run first";
}

TEST(SolveServiceTest, DeadlineMidRunExpiresWithPartialBatch) {
  ServiceConfig config;
  config.num_workers = 1;
  SolveService svc(config);

  // Starts immediately (idle worker), then trips the per-sweep deadline
  // watchdog long before its 2M-sweep budget would complete.
  solvers::SolveOptions huge = small_options();
  huge.num_sweeps = 2'000'000;
  SubmitOptions submit;
  submit.deadline = std::chrono::steady_clock::now() + 150ms;
  auto slow = svc.submit(std::make_shared<solvers::SimulatedAnnealer>(),
                         test_model(0x5b), huge, submit);
  const JobResult slow_result = slow.wait();
  EXPECT_EQ(slow_result.status, JobStatus::expired);
  ASSERT_NE(slow_result.batch, nullptr);  // partial best-so-far
  EXPECT_EQ(svc.metrics().expired, 1u);
}

// A deadline is per job: when jobs with and without deadlines share an
// execution, the due job is detached as expired while the execution keeps
// running for the rest.
TEST(SolveServiceTest, PerJobDeadlineDetachesOnlyTheDueJob) {
  ServiceConfig config;
  config.num_workers = 1;
  SolveService svc(config);

  const auto gate = std::make_shared<GateSolver::Gate>();
  auto blocker = svc.submit(std::make_shared<GateSolver>(gate),
                            test_model(0x63), small_options());
  gate->await_entered(1);

  const auto solver = std::make_shared<solvers::SimulatedAnnealer>();
  const auto model = test_model(0x64, 96);
  solvers::SolveOptions huge = small_options();
  huge.num_sweeps = 2'000'000;
  auto keeper = svc.submit(solver, model, huge);  // no deadline
  SubmitOptions submit;
  submit.deadline = std::chrono::steady_clock::now() + 150ms;
  auto due = svc.submit(solver, model, huge, submit);  // coalesces

  gate->release();
  blocker.wait();
  const JobResult due_result = due.wait();
  EXPECT_EQ(due_result.status, JobStatus::expired);
  EXPECT_EQ(due_result.batch, nullptr);  // detached; no shared batch yet
  EXPECT_FALSE(keeper.finished())
      << "the execution must keep running for the deadline-free job";
  keeper.cancel();
  EXPECT_EQ(keeper.wait().status, JobStatus::cancelled);
}

// Shutdown must stop-signal running bypass_cache executions too (they are
// tracked outside the coalescing index).
TEST(SolveServiceTest, ShutdownStopsRunningBypassCacheJobs) {
  ServiceConfig config;
  config.num_workers = 1;
  SolveService svc(config);

  solvers::SolveOptions huge = small_options();
  huge.num_sweeps = 2'000'000;
  SubmitOptions submit;
  submit.bypass_cache = true;
  auto handle = svc.submit(std::make_shared<solvers::SimulatedAnnealer>(),
                           test_model(0x65, 96), huge, submit);
  while (handle.status() == JobStatus::queued) {
    std::this_thread::sleep_for(1ms);
  }
  svc.shutdown();
  EXPECT_EQ(handle.wait().status, JobStatus::cancelled);  // within one sweep
}

TEST(SolveServiceTest, SolverExceptionFailsTheJobAndServiceSurvives) {
  SolveService svc;
  const JobResult failed =
      svc.submit(std::make_shared<ThrowingSolver>(), test_model(0x5c),
                 small_options())
          .wait();
  EXPECT_EQ(failed.status, JobStatus::failed);
  EXPECT_EQ(failed.batch, nullptr);
  EXPECT_NE(failed.error.find("deliberate"), std::string::npos);

  const JobResult ok =
      svc.submit(std::make_shared<solvers::SimulatedAnnealer>(),
                 test_model(0x5d), small_options())
          .wait();
  EXPECT_EQ(ok.status, JobStatus::done);
  EXPECT_EQ(svc.metrics().failed, 1u);
}

TEST(SolveServiceTest, ShutdownCancelsQueuedAndRejectsNewJobs) {
  ServiceConfig config;
  config.num_workers = 1;
  SolveService svc(config);

  const auto gate = std::make_shared<GateSolver::Gate>();
  auto running = svc.submit(std::make_shared<GateSolver>(gate),
                            test_model(0x5e), small_options());
  gate->await_entered(1);
  auto queued = svc.submit(std::make_shared<solvers::SimulatedAnnealer>(),
                           test_model(0x5f), small_options());

  svc.shutdown();
  EXPECT_EQ(queued.wait().status, JobStatus::cancelled);
  EXPECT_THROW(svc.submit(std::make_shared<solvers::SimulatedAnnealer>(),
                          test_model(0x5f), small_options()),
               std::invalid_argument);
  gate->release();
  // The in-flight job was stop-signalled by shutdown; the gate solver
  // ignores the token, so it completes its batch — reported as cancelled.
  EXPECT_EQ(running.wait().status, JobStatus::cancelled);
}

TEST(SolveServiceTest, CancellingOneCoalescedFollowerKeepsTheExecution) {
  ServiceConfig config;
  config.num_workers = 1;
  SolveService svc(config);

  const auto gate = std::make_shared<GateSolver::Gate>();
  const auto solver = std::make_shared<GateSolver>(gate);
  const auto model = test_model(0x61);
  auto primary = svc.submit(solver, model, small_options());
  gate->await_entered(1);
  auto follower = svc.submit(solver, model, small_options());
  follower.cancel();  // detaches only the follower
  EXPECT_EQ(follower.wait().status, JobStatus::cancelled);
  gate->release();
  EXPECT_EQ(primary.wait().status, JobStatus::done);
  EXPECT_EQ(gate->entered.load(), 1);
}

// A live StopToken in the submitted options is that job's cancellation: it
// must detach the submitter without killing an execution other jobs still
// want (the coalescing invariant), and a solo submitter's token stops the
// kernel within a sweep.
TEST(SolveServiceTest, SubmitterStopTokenCancelsOnlyItsOwnJob) {
  ServiceConfig config;
  config.num_workers = 1;
  SolveService svc(config);
  const auto solver = std::make_shared<solvers::SimulatedAnnealer>();
  const auto model = test_model(0x62, 96);

  solvers::SolveOptions options = small_options();
  options.num_sweeps = 2'000'000;
  options.stop = solvers::StopToken::create();
  auto primary = svc.submit(solver, model, options);
  while (primary.status() == JobStatus::queued) {
    std::this_thread::sleep_for(1ms);
  }
  solvers::SolveOptions follower_options = options;
  follower_options.stop = {};  // same fingerprint (stop is excluded)
  auto follower = svc.submit(solver, model, follower_options);

  options.stop.request_stop();
  EXPECT_EQ(primary.wait().status, JobStatus::cancelled);
  EXPECT_FALSE(follower.finished())
      << "the shared execution must survive the primary's token";
  follower.cancel();  // now the last interested job: the kernel stops
  const JobResult result = follower.wait();
  EXPECT_EQ(result.status, JobStatus::cancelled);
  ASSERT_NE(result.batch, nullptr);
  EXPECT_EQ(svc.metrics().solver_invocations, 1u);
  EXPECT_EQ(svc.metrics().coalesced, 1u);
}

// The same holds for a follower that coalesced while the execution was
// still queued: its own token detaches it without disturbing the primary.
TEST(SolveServiceTest, QueuedCoalescedFollowerTokenCancelsOnlyItself) {
  ServiceConfig config;
  config.num_workers = 1;
  SolveService svc(config);

  const auto gate = std::make_shared<GateSolver::Gate>();
  auto blocker = svc.submit(std::make_shared<GateSolver>(gate),
                            test_model(0x66), small_options());
  gate->await_entered(1);

  const auto solver = std::make_shared<solvers::SimulatedAnnealer>();
  const auto model = test_model(0x67, 96);
  solvers::SolveOptions huge = small_options();
  huge.num_sweeps = 2'000'000;
  auto primary = svc.submit(solver, model, huge);
  solvers::SolveOptions follower_options = huge;
  follower_options.stop = solvers::StopToken::create();
  auto follower = svc.submit(solver, model, follower_options);

  gate->release();
  blocker.wait();
  follower_options.stop.request_stop();
  EXPECT_EQ(follower.wait().status, JobStatus::cancelled);
  EXPECT_FALSE(primary.finished())
      << "the shared execution must survive the follower's token";
  primary.cancel();
  EXPECT_EQ(primary.wait().status, JobStatus::cancelled);
  EXPECT_EQ(svc.metrics().solver_invocations, 2u);  // blocker + shared exec
}

TEST(SolveServiceTest, MetricsSnapshotIsConsistent) {
  SolveService svc;
  const auto solver = std::make_shared<solvers::SimulatedAnnealer>();
  for (std::uint64_t k = 0; k < 4; ++k) {
    svc.submit(solver, test_model(0x70 + k, 24), small_options()).wait();
  }
  // One repeat for a cache hit.
  svc.submit(solver, test_model(0x70, 24), small_options()).wait();

  const ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.submitted, 5u);
  EXPECT_EQ(m.completed, 5u);
  EXPECT_EQ(m.solver_invocations, 4u);
  EXPECT_EQ(m.cache_hits, 1u);
  EXPECT_EQ(m.queue_depth, 0u);
  EXPECT_EQ(m.running, 0u);
  EXPECT_GT(m.jobs_per_second, 0.0);
  EXPECT_EQ(m.queue_wait.count, 5u);
  EXPECT_EQ(m.run.count, 4u);
  EXPECT_GE(m.run.p99_ms, m.run.p50_ms);
}

// --- fair share + admission control ------------------------------------------

std::vector<double> offsets_of(const std::vector<double>& order,
                               std::size_t count) {
  return {order.begin(),
          order.begin() + static_cast<std::ptrdiff_t>(
                              std::min(count, order.size()))};
}

// The ISSUE 5 acceptance criterion: with a greedy client keeping the queue
// full, a polite client's job at equal priority is dispatched within one
// round-robin cycle — not after the greedy backlog.
TEST(FairShareTest, PoliteClientJobDispatchesWithinOneRoundRobinCycle) {
  ServiceConfig config;
  config.num_workers = 1;
  SolveService svc(config);

  const auto gate = std::make_shared<GateSolver::Gate>();
  auto blocker = svc.submit(std::make_shared<GateSolver>(gate),
                            test_model(0xC0), small_options());
  gate->await_entered(1);  // the only worker is held; everything below queues

  const auto log = std::make_shared<RecordingSolver::Log>();
  const auto recorder = std::make_shared<RecordingSolver>(log);
  std::vector<JobHandle> handles;
  SubmitOptions greedy;
  greedy.client_id = "greedy";
  for (int k = 0; k < 8; ++k) {
    qubo::QuboModel model = test_model(0xC1 + k, 16);
    model.set_offset(1.0 + k);  // greedy jobs tagged 1..8 for the recorder
    handles.push_back(svc.submit(recorder, model, small_options(), greedy));
  }
  SubmitOptions polite;
  polite.client_id = "polite";
  qubo::QuboModel late = test_model(0xD0, 16);
  late.set_offset(100.0);  // the polite job, submitted LAST
  handles.push_back(svc.submit(recorder, late, small_options(), polite));

  gate->release();
  for (auto& handle : handles) {
    EXPECT_EQ(handle.wait().status, JobStatus::done);
  }
  blocker.wait();
  ASSERT_EQ(log->order.size(), 9u);
  const auto head = offsets_of(log->order, 2);
  EXPECT_TRUE(head[0] == 100.0 || head[1] == 100.0)
      << "polite job was dispatched behind the greedy flood (first two: "
      << head[0] << ", " << head[1] << ")";

  const ServiceMetrics m = svc.metrics();
  ASSERT_EQ(m.clients.size(), 3u);  // (anonymous blocker), greedy, polite
  EXPECT_EQ(m.clients[1].client_id, "greedy");
  EXPECT_EQ(m.clients[1].submitted, 8u);
  EXPECT_EQ(m.clients[1].dispatched, 8u);
  EXPECT_EQ(m.clients[2].client_id, "polite");
  EXPECT_EQ(m.clients[2].completed, 1u);
}

TEST(FairShareTest, ClientWeightsScaleDispatchShare) {
  ServiceConfig config;
  config.num_workers = 1;
  config.client_weights["heavy"] = 2.0;
  SolveService svc(config);

  const auto gate = std::make_shared<GateSolver::Gate>();
  auto blocker = svc.submit(std::make_shared<GateSolver>(gate),
                            test_model(0xC9), small_options());
  gate->await_entered(1);

  const auto log = std::make_shared<RecordingSolver::Log>();
  const auto recorder = std::make_shared<RecordingSolver>(log);
  std::vector<JobHandle> handles;
  for (int k = 0; k < 6; ++k) {  // heavy tagged 1..6, light tagged 101..106
    SubmitOptions submit;
    submit.client_id = "heavy";
    qubo::QuboModel model = test_model(0xE0 + k, 16);
    model.set_offset(1.0 + k);
    handles.push_back(svc.submit(recorder, model, small_options(), submit));
  }
  for (int k = 0; k < 6; ++k) {
    SubmitOptions submit;
    submit.client_id = "light";
    qubo::QuboModel model = test_model(0xF0 + k, 16);
    model.set_offset(101.0 + k);
    handles.push_back(svc.submit(recorder, model, small_options(), submit));
  }
  gate->release();
  for (auto& handle : handles) {
    EXPECT_EQ(handle.wait().status, JobStatus::done);
  }
  blocker.wait();
  ASSERT_EQ(log->order.size(), 12u);
  // Deficit round robin with weight 2 vs 1: each cycle serves two heavy
  // jobs then one light one — H H L H H L over the first six dispatches.
  const auto head = offsets_of(log->order, 6);
  int heavy_head = 0;
  for (const double tag : head) heavy_head += tag < 100.0 ? 1 : 0;
  EXPECT_EQ(heavy_head, 4) << "weight-2 client should get 2 of every 3 slots";
  EXPECT_GT(head[2], 100.0) << "light client's first job rides cycle one";
}

TEST(AdmissionControlTest, InflightQuotaRejectsAtSubmitAndFreesOnCompletion) {
  ServiceConfig config;
  config.num_workers = 1;
  config.max_inflight_per_client = 2;
  SolveService svc(config);
  const auto solver = std::make_shared<solvers::SimulatedAnnealer>();
  SubmitOptions limited;
  limited.client_id = "limited";

  // Seed the cache while the worker is free (quota 1/2 during the solve).
  const auto cached_model = test_model(0xDD);
  ASSERT_EQ(
      svc.submit(solver, cached_model, small_options(), limited).wait().status,
      JobStatus::done);

  const auto gate = std::make_shared<GateSolver::Gate>();
  auto blocker = svc.submit(std::make_shared<GateSolver>(gate),
                            test_model(0xD1), small_options());
  gate->await_entered(1);  // "(anonymous)" holds the worker
  auto first = svc.submit(solver, test_model(0xD2), small_options(), limited);
  auto second = svc.submit(solver, test_model(0xD3), small_options(), limited);
  try {
    svc.submit(solver, test_model(0xD4), small_options(), limited);
    FAIL() << "third inflight job must be refused";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.kind(), AdmissionErrorKind::inflight_quota);
    EXPECT_FALSE(e.retryable());
    EXPECT_NE(std::string(e.what()).find("quota"), std::string::npos);
  }
  // A cache hit completes instantly without occupying anything: admitted
  // even at the full inflight quota.
  const JobResult hit =
      svc.submit(solver, cached_model, small_options(), limited).wait();
  EXPECT_EQ(hit.status, JobStatus::done);
  EXPECT_TRUE(hit.cache_hit);
  // Another client is unaffected by the limited client's quota.
  SubmitOptions other;
  other.client_id = "other";
  auto ok = svc.submit(solver, test_model(0xD5), small_options(), other);

  ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.admission_rejected, 1u);
  ASSERT_EQ(m.clients.size(), 3u);
  EXPECT_EQ(m.clients[1].client_id, "limited");
  EXPECT_EQ(m.clients[1].rejected_inflight, 1u);
  EXPECT_EQ(m.clients[1].inflight, 2u);
  EXPECT_EQ(m.clients[1].queued, 2u);
  EXPECT_EQ(m.clients[1].submitted, 4u)
      << "seed + 2 queued + the cache hit; rejections are not submissions";

  gate->release();
  EXPECT_EQ(blocker.wait().status, JobStatus::done);
  EXPECT_EQ(first.wait().status, JobStatus::done);
  EXPECT_EQ(second.wait().status, JobStatus::done);
  EXPECT_EQ(ok.wait().status, JobStatus::done);
  // Quota capacity is returned as jobs finish.
  EXPECT_EQ(
      svc.submit(solver, test_model(0xD6), small_options(), limited).wait()
          .status,
      JobStatus::done);
}

TEST(AdmissionControlTest, QueuedQuotaExemptsCacheHitsAndRunningJoins) {
  ServiceConfig config;
  config.num_workers = 1;
  config.max_queued_per_client = 1;
  SolveService svc(config);
  const auto solver = std::make_shared<solvers::SimulatedAnnealer>();
  SubmitOptions quota;
  quota.client_id = "q";

  // Seed the cache while the worker is free.
  const auto cached_model = test_model(0xD7);
  ASSERT_EQ(svc.submit(solver, cached_model, small_options(), quota)
                .wait()
                .status,
            JobStatus::done);

  const auto gate = std::make_shared<GateSolver::Gate>();
  const auto gate_solver = std::make_shared<GateSolver>(gate);
  const auto gate_model = test_model(0xD8);
  auto blocker = svc.submit(gate_solver, gate_model, small_options());
  gate->await_entered(1);

  auto queued = svc.submit(solver, test_model(0xD9), small_options(), quota);
  try {
    svc.submit(solver, test_model(0xDA), small_options(), quota);
    FAIL() << "second queued job must be refused";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.kind(), AdmissionErrorKind::queued_quota);
  }
  // A cache hit occupies no queue slot: admitted despite the full quota.
  const JobResult hit =
      svc.submit(solver, cached_model, small_options(), quota).wait();
  EXPECT_EQ(hit.status, JobStatus::done);
  EXPECT_TRUE(hit.cache_hit);
  // Joining the RUNNING execution occupies no queue slot either.
  auto join = svc.submit(gate_solver, gate_model, small_options(), quota);
  EXPECT_EQ(join.status(), JobStatus::running);

  gate->release();
  EXPECT_EQ(blocker.wait().status, JobStatus::done);
  EXPECT_EQ(join.wait().status, JobStatus::done);
  EXPECT_EQ(queued.wait().status, JobStatus::done);
  const ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.admission_rejected, 1u);
}

TEST(AdmissionControlTest, ShutdownRefusalIsRetryableAdmissionError) {
  SolveService svc;
  svc.shutdown();
  try {
    svc.submit(std::make_shared<solvers::SimulatedAnnealer>(),
               test_model(0xDB), small_options());
    FAIL() << "submit after shutdown must throw";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.kind(), AdmissionErrorKind::shutting_down);
    EXPECT_TRUE(e.retryable()) << "a restarted service may accept the job";
  }
}

// A warm daemon serves endless one-shot anonymous clients (conn-N ids);
// their bookkeeping rows must be retired once idle, not kept forever.
TEST(AdmissionControlTest, IdleClientRowsAreBoundedByMaxClientRows) {
  ServiceConfig config;
  config.max_client_rows = 4;
  SolveService svc(config);
  const auto solver = std::make_shared<solvers::DigitalAnnealer>();
  for (int k = 0; k < 10; ++k) {
    SubmitOptions submit;
    submit.client_id = "one-shot-" + std::to_string(k);
    EXPECT_EQ(svc.submit(solver, test_model(0xE00 + k, 24), small_options(),
                         submit)
                  .wait()
                  .status,
              JobStatus::done);
  }
  const ServiceMetrics m = svc.metrics();
  EXPECT_LE(m.clients.size(), 4u);
  EXPECT_EQ(m.submitted, 10u) << "retirement must not touch global counters";
  EXPECT_EQ(m.completed, 10u);
}

TEST(AdmissionControlTest, ZeroReplicasIsRefusedAsInvalid) {
  SolveService svc;
  solvers::SolveOptions options = small_options();
  options.num_replicas = 0;
  EXPECT_THROW(svc.submit(std::make_shared<solvers::SimulatedAnnealer>(),
                          test_model(0xDC), options),
               std::invalid_argument);
}

// --- cache persistence (ServiceConfig::cache_path) --------------------------

std::string scratch_cache_path(const char* name) {
  const auto path = std::filesystem::path(::testing::TempDir()) /
                    (std::string("qross_service_") + name + ".qsnap");
  std::filesystem::remove(path);
  std::filesystem::remove(path.string() + ".journal");
  return path;
}

TEST(CachePersistenceTest, CrossRunWarmStartIsBitIdenticalWithZeroInvocations) {
  const auto path = scratch_cache_path("warm");
  const auto model = test_model(0x90);
  const auto options = small_options();
  std::atomic<int> invocations{0};
  const auto counted = std::make_shared<CountingSolver>(
      std::make_shared<solvers::DigitalAnnealer>(), invocations);

  qubo::SolveBatch original;
  {
    ServiceConfig config;
    config.cache_path = path;
    SolveService first(config);
    const JobResult r = first.submit(counted, model, options).wait();
    ASSERT_EQ(r.status, JobStatus::done);
    original = *r.batch;
    // cache_stored lags completion by the append I/O; poll briefly.
    const auto give_up = std::chrono::steady_clock::now() + 5s;
    while (first.metrics().cache_stored < 1 &&
           std::chrono::steady_clock::now() < give_up) {
      std::this_thread::sleep_for(1ms);
    }
    EXPECT_EQ(first.metrics().cache_stored, 1u);
  }  // destructor compacts the journal into the snapshot

  // A second service on the same file stands in for a second process: the
  // fingerprint is recomputed from scratch, so a hit proves the on-disk key
  // and batch both survived the round trip bit-identically.
  ServiceConfig config;
  config.cache_path = path;
  SolveService second(config);
  EXPECT_EQ(second.metrics().cache_loaded, 1u);
  const JobResult r = second.submit(counted, model, options).wait();
  ASSERT_EQ(r.status, JobStatus::done);
  EXPECT_TRUE(r.cache_hit);
  EXPECT_EQ(invocations.load(), 1) << "warm start must not invoke the solver";
  ASSERT_EQ(r.batch->size(), original.size());
  for (std::size_t k = 0; k < original.size(); ++k) {
    EXPECT_EQ(r.batch->results[k].assignment, original.results[k].assignment);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.batch->results[k].qubo_energy),
              std::bit_cast<std::uint64_t>(original.results[k].qubo_energy));
  }
}

TEST(CachePersistenceTest, CorruptSnapshotDegradesToColdCache) {
  const auto path = scratch_cache_path("corrupt");
  {
    std::ofstream file(path, std::ios::binary);
    file.write("QROSSNAP", 8);                        // right magic...
    file.write("\x01\x00\x00\x00\x00\x00\x00\x00", 8);  // ...valid v1 header...
    file.write("garbage garbage garbage", 23);          // ...torn record soup
  }
  ServiceConfig config;
  config.cache_path = path;
  SolveService svc(config);
  const ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.cache_loaded, 0u);
  EXPECT_GE(m.cache_load_skipped, 1u);
  // The service still works: solve, persist, and warm-start cleanly.
  const auto solver = std::make_shared<solvers::DigitalAnnealer>();
  EXPECT_EQ(svc.submit(solver, test_model(0x91), small_options()).wait().status,
            JobStatus::done);
}

TEST(CachePersistenceTest, FlushWhileServingLosesNothing) {
  const auto path = scratch_cache_path("flush");
  constexpr std::size_t kJobs = 32;
  {
    ServiceConfig config;
    config.num_workers = 2;
    config.cache_path = path;
    SolveService svc(config);
    const auto solver = std::make_shared<solvers::DigitalAnnealer>();

    // Hammer explicit flushes from a second thread while jobs stream in:
    // compaction and journal appends must interleave without losing entries.
    std::atomic<bool> done{false};
    std::thread flusher([&] {
      while (!done.load()) {
        svc.flush_cache();
        std::this_thread::sleep_for(1ms);
      }
    });
    std::vector<JobHandle> handles;
    for (std::size_t k = 0; k < kJobs; ++k) {
      handles.push_back(
          svc.submit(solver, test_model(0xA00 + k, 24), small_options()));
    }
    for (auto& handle : handles) {
      EXPECT_EQ(handle.wait().status, JobStatus::done);
    }
    done.store(true);
    flusher.join();
    // cache_stored lags completion by the append I/O; poll briefly.
    const auto give_up = std::chrono::steady_clock::now() + 5s;
    while (svc.metrics().cache_stored < kJobs &&
           std::chrono::steady_clock::now() < give_up) {
      std::this_thread::sleep_for(1ms);
    }
    EXPECT_EQ(svc.metrics().cache_stored, kJobs);
  }
  ServiceConfig config;
  config.cache_path = path;
  SolveService reloaded(config);
  EXPECT_EQ(reloaded.metrics().cache_loaded, kJobs);
  EXPECT_EQ(reloaded.metrics().cache_load_skipped, 0u);
}

TEST(CachePersistenceTest, DisabledCacheDisablesPersistenceToo) {
  const auto path = scratch_cache_path("disabled");
  {
    ServiceConfig config;
    config.cache_capacity = 0;  // no cache -> nothing worth journaling
    config.cache_path = path;
    SolveService svc(config);
    const auto solver = std::make_shared<solvers::DigitalAnnealer>();
    EXPECT_EQ(
        svc.submit(solver, test_model(0x92), small_options()).wait().status,
        JobStatus::done);
    EXPECT_EQ(svc.metrics().cache_stored, 0u);
    EXPECT_EQ(svc.flush_cache(), 0u);
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".journal"));
}

// --- ROADMAP gap: deadline joining a running execution ----------------------

/// Runs "sweeps" of 1 ms until stopped, ticking the sweep checkpoint so the
/// service watchdog gets its per-sweep polls; finishes quickly once any
/// stop source fires.  Nominal full run: ~100 s — a test that waits for
/// completion instead of the watchdog would time out loudly.
class TickingSolver final : public solvers::QuboSolver {
 public:
  explicit TickingSolver(std::shared_ptr<std::atomic<int>> entered)
      : entered_(std::move(entered)) {}
  std::string name() const override { return "ticker"; }
  qubo::SolveBatch solve(const qubo::QuboModel& model,
                         const solvers::SolveOptions& options) const override {
    entered_->fetch_add(1);
    for (std::size_t sweep = 0; sweep < 100000; ++sweep) {
      if (solvers::sweep_checkpoint(options)) break;
      std::this_thread::sleep_for(1ms);
    }
    qubo::SolveBatch batch;
    batch.results.resize(1);
    batch.results[0].assignment.assign(model.num_vars(), 0);
    return batch;
  }

 private:
  std::shared_ptr<std::atomic<int>> entered_;
};

TEST(SolveServiceTest, TighterDeadlineJoiningRunningExecutionReArmsWatchdog) {
  ServiceConfig config;
  config.num_workers = 1;
  SolveService svc(config);
  const auto entered = std::make_shared<std::atomic<int>>(0);
  const auto solver = std::make_shared<TickingSolver>(entered);
  const auto model = test_model(0xB0);
  const auto options = small_options();

  JobHandle first = svc.submit(solver, model, options);
  while (entered->load() < 1) std::this_thread::sleep_for(1ms);

  // Equal fingerprint -> coalesces onto the RUNNING execution; its deadline
  // is tighter than anything the watchdog knew at execution start (nothing).
  SubmitOptions tight;
  tight.deadline = std::chrono::steady_clock::now() + 50ms;
  JobHandle late = svc.submit(solver, model, options, tight);
  ASSERT_TRUE(late.wait_for(10s))
      << "tighter deadline joining a running execution was never enforced";
  const JobResult r = late.result();
  EXPECT_EQ(r.status, JobStatus::expired);
  EXPECT_EQ(r.batch, nullptr) << "detached expiry must not leak a batch";
  EXPECT_TRUE(r.coalesced);

  // The original job is unaffected: still running, then cancellable.
  EXPECT_EQ(first.status(), JobStatus::running);
  EXPECT_EQ(svc.metrics().solver_invocations, 1u);
  EXPECT_EQ(svc.metrics().coalesced, 1u);
  first.cancel();
  EXPECT_EQ(first.wait().status, JobStatus::cancelled);
}

// ServiceSolver: the synchronous adapter returns the same batch a direct
// call produces, and repeated calls hit the cache.
TEST(ServiceSolverTest, RoutedSolveMatchesDirectSolve) {
  SolveService svc;
  std::atomic<int> invocations{0};
  const auto inner = std::make_shared<solvers::DigitalAnnealer>();
  const auto counted = std::make_shared<CountingSolver>(inner, invocations);
  const ServiceSolver routed(svc, counted);
  const auto model = test_model(0x80);
  const auto options = small_options();

  const qubo::SolveBatch direct = inner->solve(model, options);
  const qubo::SolveBatch via_service = routed.solve(model, options);
  ASSERT_EQ(direct.size(), via_service.size());
  for (std::size_t r = 0; r < direct.size(); ++r) {
    EXPECT_EQ(direct.results[r].assignment,
              via_service.results[r].assignment);
    EXPECT_EQ(direct.results[r].qubo_energy,
              via_service.results[r].qubo_energy);
  }
  EXPECT_EQ(invocations.load(), 1);
  (void)routed.solve(model, options);
  EXPECT_EQ(invocations.load(), 1) << "second routed call must hit the cache";
  EXPECT_EQ(routed.name(), "da@service");
}

}  // namespace
}  // namespace qross::service
