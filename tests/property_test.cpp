// Cross-module property tests: randomised invariants checked over
// parameterised sweeps (sizes x seeds x solvers).  These complement the
// per-module unit tests with the "for all" style guarantees the library's
// correctness argument rests on.

#include <gtest/gtest.h>

#include <cmath>

#include "common/gaussian.hpp"
#include "common/rng.hpp"
#include "problems/qap/qap.hpp"
#include "problems/tsp/exact.hpp"
#include "problems/tsp/formulation.hpp"
#include "problems/tsp/generators.hpp"
#include "problems/tsp/heuristics.hpp"
#include "problems/tsp/preprocess.hpp"
#include "qross/min_fitness.hpp"
#include "qross/optimizers.hpp"
#include "qubo/builder.hpp"
#include "qubo/incremental.hpp"
#include "solvers/digital_annealer.hpp"
#include "solvers/qbsolv.hpp"
#include "solvers/simulated_annealer.hpp"
#include "solvers/tabu_search.hpp"
#include "tuning/gp.hpp"

namespace qross {
namespace {

using qubo::Bits;
using qubo::QuboModel;

QuboModel random_model(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  QuboModel model(n);
  model.set_offset(rng.uniform(-2.0, 2.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      if (rng.uniform() < 0.6) model.add_term(i, j, rng.uniform(-5.0, 5.0));
    }
  }
  return model;
}

// --- property: every solver reports energies consistent with assignments ----

struct SolverCase {
  std::string label;
  solvers::SolverPtr solver;
};

class SolverConsistency
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {
 protected:
  static solvers::SolverPtr solver_for(int index) {
    switch (index) {
      case 0: return std::make_shared<solvers::SimulatedAnnealer>();
      case 1: return std::make_shared<solvers::DigitalAnnealer>();
      case 2: return std::make_shared<solvers::TabuSearch>();
      default: return std::make_shared<solvers::Qbsolv>();
    }
  }
};

TEST_P(SolverConsistency, EnergiesMatchAndBatchSizeHonoured) {
  const auto [solver_index, size] = GetParam();
  const auto solver = solver_for(solver_index);
  const QuboModel model = random_model(size, 100 + size);
  solvers::SolveOptions options;
  options.num_replicas = 6;
  options.num_sweeps = 20;
  options.seed = 77;
  const auto batch = solver->solve(model, options);
  ASSERT_EQ(batch.size(), 6u);
  for (const auto& result : batch.results) {
    ASSERT_EQ(result.assignment.size(), size);
    EXPECT_TRUE(qubo::is_valid_assignment(model, result.assignment));
    EXPECT_NEAR(result.qubo_energy, model.energy(result.assignment), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SolverConsistency,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(std::size_t{2}, std::size_t{7},
                                         std::size_t{15})));

// --- property: solvers never beat the exhaustive ground state ----------------

class SolverLowerBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverLowerBound, NoSolverBeatsBruteForce) {
  const QuboModel model = random_model(8, GetParam());
  double ground = std::numeric_limits<double>::infinity();
  for (std::size_t mask = 0; mask < 256; ++mask) {
    Bits x(8);
    for (std::size_t i = 0; i < 8; ++i) x[i] = (mask >> i) & 1;
    ground = std::min(ground, model.energy(x));
  }
  solvers::SolveOptions options;
  options.num_replicas = 4;
  options.num_sweeps = 40;
  options.seed = GetParam();
  for (const solvers::SolverPtr& solver :
       {solvers::SolverPtr(std::make_shared<solvers::SimulatedAnnealer>()),
        solvers::SolverPtr(std::make_shared<solvers::DigitalAnnealer>()),
        solvers::SolverPtr(std::make_shared<solvers::TabuSearch>()),
        solvers::SolverPtr(std::make_shared<solvers::Qbsolv>())}) {
    const auto batch = solver->solve(model, options);
    EXPECT_GE(batch.results[batch.best_index()].qubo_energy, ground - 1e-9)
        << solver->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverLowerBound,
                         ::testing::Values(11, 22, 33, 44, 55));

// --- property: TSP QUBO energy identity over random A and tours --------------

class TspQuboIdentity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TspQuboIdentity, EnergySplitsIntoObjectiveAndPenalty) {
  Rng rng(GetParam());
  const auto instance = tsp::generate_uniform(6, GetParam());
  const auto problem = tsp::build_tsp_problem(instance);
  for (int rep = 0; rep < 16; ++rep) {
    // Random (mostly infeasible) assignments.
    std::vector<std::uint8_t> x(36);
    for (auto& b : x) b = rng.bernoulli(0.3) ? 1 : 0;
    const double a = rng.uniform(0.1, 80.0);
    EXPECT_NEAR(problem.to_qubo(a).energy(x),
                problem.objective(x) + a * problem.violation(x), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TspQuboIdentity,
                         ::testing::Values(3, 5, 7, 9));

// --- property: MVODM + scaling chain preserves tour RANKING ------------------

class RankingPreservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RankingPreservation, MvodmKeepsPairwiseOrder) {
  Rng rng(GetParam());
  const auto instance = tsp::generate_clustered(9, GetParam());
  const auto result = tsp::mvodm_preprocess(instance);
  for (int rep = 0; rep < 12; ++rep) {
    const tsp::Tour a = rng.permutation(9);
    const tsp::Tour b = rng.permutation(9);
    const double delta_original =
        instance.tour_length(a) - instance.tour_length(b);
    const double delta_shifted =
        result.shifted.tour_length(a) - result.shifted.tour_length(b);
    // Same difference (the shift is tour-independent), hence same ranking.
    EXPECT_NEAR(delta_original, delta_shifted, 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankingPreservation,
                         ::testing::Values(2, 4, 6, 8));

// --- property: heuristic chain is monotone ------------------------------------

class HeuristicMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeuristicMonotone, EachStageNeverWorsens) {
  Rng rng(GetParam());
  const auto instance = tsp::generate_uniform(12, 500 + GetParam());
  const tsp::Tour start = rng.permutation(12);
  const double l0 = instance.tour_length(start);
  const tsp::Tour after2opt = tsp::two_opt(instance, start);
  const double l1 = instance.tour_length(after2opt);
  const tsp::Tour afterOrOpt = tsp::or_opt(instance, after2opt);
  const double l2 = instance.tour_length(afterOrOpt);
  EXPECT_LE(l1, l0 + 1e-9);
  EXPECT_LE(l2, l1 + 1e-9);
  // And all stay >= the exact optimum.
  const double opt = tsp::solve_held_karp(instance).length;
  EXPECT_GE(l2, opt - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeuristicMonotone,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// --- property: expected-min-fitness is monotone in its arguments ---------------

class MinFitnessMonotone : public ::testing::TestWithParam<double> {};

TEST_P(MinFitnessMonotone, MonotoneInMeanAndPf) {
  const double pf = GetParam();
  // Increasing the mean shifts the expectation up.
  double previous = -1.0;
  for (double mean : {50.0, 80.0, 120.0, 200.0}) {
    const double v = core::expected_min_fitness(pf, mean, 10.0, 32);
    EXPECT_GT(v, previous);
    previous = v;
  }
  // Increasing pf can only help (weakly).
  const double lo = core::expected_min_fitness(pf, 100.0, 10.0, 32);
  const double hi =
      core::expected_min_fitness(std::min(1.0, pf + 0.2), 100.0, 10.0, 32);
  EXPECT_LE(hi, lo + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PfLevels, MinFitnessMonotone,
                         ::testing::Values(0.1, 0.3, 0.5, 0.8));

// --- property: Brent matches dense scan on random smooth functions --------------

class BrentVsScan : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BrentVsScan, FindsValueNoWorseThanGridScan) {
  Rng rng(GetParam());
  // Random quartic with positive leading coefficient: smooth, at most two
  // local minima on the interval.
  const double a4 = rng.uniform(0.05, 0.6);
  const double a3 = rng.uniform(-1.0, 1.0);
  const double a2 = rng.uniform(-3.0, 3.0);
  const double a1 = rng.uniform(-3.0, 3.0);
  auto f = [&](double x) {
    return a4 * x * x * x * x + a3 * x * x * x + a2 * x * x + a1 * x;
  };
  const auto shgo = opt::shgo_minimize(f, -4.0, 4.0);
  double scan_best = std::numeric_limits<double>::infinity();
  for (int i = 0; i <= 4000; ++i) {
    scan_best = std::min(scan_best, f(-4.0 + 8.0 * i / 4000.0));
  }
  EXPECT_LE(shgo.value, scan_best + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BrentVsScan,
                         ::testing::Values(10, 20, 30, 40, 50, 60, 70, 80));

// --- property: GP posterior collapses as noise -> 0 -----------------------------

class GpNoiseCollapse : public ::testing::TestWithParam<double> {};

TEST_P(GpNoiseCollapse, LowNoiseFitsTighter) {
  const double noise_fraction = GetParam();
  tuning::GpConfig config;
  config.noise_fraction = noise_fraction;
  tuning::GaussianProcess gp(config);
  Rng rng(3);
  std::vector<double> xs, ys;
  for (int i = 0; i < 12; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(std::sin(0.5 * i) + rng.normal(0.0, 0.01));
  }
  gp.fit(xs, ys);
  double total_residual = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    total_residual += std::abs(gp.predict(xs[i]).mean - ys[i]);
  }
  // Residual bound scales with the assumed noise level.
  EXPECT_LT(total_residual / static_cast<double>(xs.size()),
            0.05 + noise_fraction);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, GpNoiseCollapse,
                         ::testing::Values(0.01, 0.05, 0.2));

// --- property: Gaussian quantile/CDF inverse pair across a dense sweep ----------

class QuantileSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantileSweep, RoundTripAccurate) {
  const double p = static_cast<double>(GetParam()) / 1000.0;
  const double z = normal_quantile(p);
  EXPECT_NEAR(normal_cdf(z), p, 1e-9);
  // Symmetry: quantile(1-p) == -quantile(p).
  EXPECT_NEAR(normal_quantile(1.0 - p), -z, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Levels, QuantileSweep,
                         ::testing::Values(1, 5, 25, 100, 250, 400, 500, 600,
                                           750, 900, 975, 995, 999));

// --- property: QAP QUBO identity across random instances -------------------------

class QapQuboIdentity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QapQuboIdentity, FeasibleEnergyEqualsCost) {
  Rng rng(GetParam());
  const auto instance = qap::generate_random_qap(5, GetParam());
  const auto problem = qap::build_qap_problem(instance);
  for (int rep = 0; rep < 8; ++rep) {
    const qap::Assignment assignment = rng.permutation(5);
    const auto bits = qap::encode_assignment(instance, assignment);
    const double a = rng.uniform(1.0, 500.0);
    EXPECT_NEAR(problem.to_qubo(a).energy(bits), instance.cost(assignment),
                1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QapQuboIdentity,
                         ::testing::Values(12, 34, 56, 78));

}  // namespace
}  // namespace qross
