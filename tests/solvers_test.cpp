// Tests for src/solvers: the four solver kernels, the analog-noise
// decorator, and the batch runner.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include "qubo/incremental.hpp"
#include "solvers/analog_noise.hpp"
#include "solvers/batch_runner.hpp"
#include "solvers/digital_annealer.hpp"
#include "solvers/qbsolv.hpp"
#include "solvers/simulated_annealer.hpp"
#include "solvers/tabu_search.hpp"

namespace qross::solvers {
namespace {

using qubo::Bits;
using qubo::QuboModel;

/// 4-variable model with a unique planted optimum at {1,0,1,0}, energy -21.
QuboModel planted_model() {
  QuboModel m(4);
  m.add_term(0, 0, -10.0);
  m.add_term(2, 2, -10.0);
  m.add_term(1, 1, 5.0);
  m.add_term(3, 3, 5.0);
  m.add_term(0, 2, -1.0);
  m.add_term(1, 3, 8.0);
  m.add_term(0, 1, 2.0);
  return m;
}

/// Exhaustive ground state for small models.
std::pair<Bits, double> brute_minimum(const QuboModel& model) {
  const std::size_t n = model.num_vars();
  Bits best(n, 0);
  double best_energy = std::numeric_limits<double>::infinity();
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    Bits x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = (mask >> i) & 1;
    const double e = model.energy(x);
    if (e < best_energy) {
      best_energy = e;
      best = x;
    }
  }
  return {best, best_energy};
}

template <typename Solver>
void expect_finds_planted_optimum() {
  const QuboModel model = planted_model();
  const auto [opt_state, opt_energy] = brute_minimum(model);
  const Solver solver;
  SolveOptions options;
  options.num_replicas = 8;
  options.num_sweeps = 100;
  options.seed = 5;
  const auto batch = solver.solve(model, options);
  ASSERT_EQ(batch.size(), 8u);
  const auto& best = batch.results[batch.best_index()];
  EXPECT_NEAR(best.qubo_energy, opt_energy, 1e-9);
  EXPECT_EQ(best.assignment, opt_state);
  // Reported energies must be consistent with the assignments.
  for (const auto& r : batch.results) {
    EXPECT_NEAR(r.qubo_energy, model.energy(r.assignment), 1e-9);
  }
}

TEST(SimulatedAnnealer, FindsPlantedOptimum) {
  expect_finds_planted_optimum<SimulatedAnnealer>();
}
TEST(DigitalAnnealer, FindsPlantedOptimum) {
  expect_finds_planted_optimum<DigitalAnnealer>();
}
TEST(TabuSearch, FindsPlantedOptimum) {
  expect_finds_planted_optimum<TabuSearch>();
}
TEST(Qbsolv, FindsPlantedOptimum) { expect_finds_planted_optimum<Qbsolv>(); }

template <typename Solver>
void expect_deterministic() {
  const QuboModel model = planted_model();
  const Solver solver;
  SolveOptions options;
  options.num_replicas = 4;
  options.num_sweeps = 30;
  options.seed = 11;
  const auto a = solver.solve(model, options);
  const auto b = solver.solve(model, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.results[i].assignment, b.results[i].assignment);
    EXPECT_DOUBLE_EQ(a.results[i].qubo_energy, b.results[i].qubo_energy);
  }
}

TEST(SimulatedAnnealer, DeterministicUnderSeed) {
  expect_deterministic<SimulatedAnnealer>();
}
TEST(DigitalAnnealer, DeterministicUnderSeed) {
  expect_deterministic<DigitalAnnealer>();
}
TEST(TabuSearch, DeterministicUnderSeed) {
  expect_deterministic<TabuSearch>();
}
TEST(Qbsolv, DeterministicUnderSeed) { expect_deterministic<Qbsolv>(); }

template <typename Solver>
void expect_threads_do_not_change_results() {
  // Replicas share one sparse adjacency and own their state, so the batch
  // must be bit-identical whether run sequentially or across a pool.
  const QuboModel model = planted_model();
  const Solver solver;
  SolveOptions sequential;
  sequential.num_replicas = 8;
  sequential.num_sweeps = 30;
  sequential.seed = 17;
  SolveOptions threaded = sequential;
  threaded.num_threads = 3;
  const auto a = solver.solve(model, sequential);
  const auto b = solver.solve(model, threaded);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.results[i].assignment, b.results[i].assignment);
    EXPECT_DOUBLE_EQ(a.results[i].qubo_energy, b.results[i].qubo_energy);
  }
}

TEST(SimulatedAnnealer, ThreadPoolPathMatchesSequential) {
  expect_threads_do_not_change_results<SimulatedAnnealer>();
}
TEST(DigitalAnnealer, ThreadPoolPathMatchesSequential) {
  expect_threads_do_not_change_results<DigitalAnnealer>();
}
TEST(TabuSearch, ThreadPoolPathMatchesSequential) {
  expect_threads_do_not_change_results<TabuSearch>();
}
TEST(Qbsolv, ThreadPoolPathMatchesSequential) {
  expect_threads_do_not_change_results<Qbsolv>();
}

TEST(Solvers, DifferentSeedsGiveDifferentBatches) {
  // On a rugged random model, replicas under different master seeds should
  // not be identical.
  Rng rng(1);
  QuboModel model(12);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = i; j < 12; ++j) {
      model.add_term(i, j, rng.uniform(-5.0, 5.0));
    }
  }
  const SimulatedAnnealer solver;
  SolveOptions o1, o2;
  o1.num_replicas = o2.num_replicas = 6;
  o1.num_sweeps = o2.num_sweeps = 5;  // short anneal: diverse endpoints
  o1.seed = 100;
  o2.seed = 200;
  const auto a = solver.solve(model, o1);
  const auto b = solver.solve(model, o2);
  int identical = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.results[i].assignment == b.results[i].assignment) ++identical;
  }
  EXPECT_LT(identical, 6);
}

TEST(Solvers, ZeroVariableModel) {
  const QuboModel model(0);
  for (const SolverPtr& solver :
       {SolverPtr(std::make_shared<SimulatedAnnealer>()),
        SolverPtr(std::make_shared<DigitalAnnealer>()),
        SolverPtr(std::make_shared<TabuSearch>()),
        SolverPtr(std::make_shared<Qbsolv>())}) {
    SolveOptions options;
    options.num_replicas = 3;
    const auto batch = solver->solve(model, options);
    EXPECT_EQ(batch.size(), 3u) << solver->name();
  }
}

TEST(TabuSearch, ImproveNeverWorsens) {
  Rng rng(2);
  QuboModel model(10);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = i; j < 10; ++j) {
      model.add_term(i, j, rng.uniform(-3.0, 3.0));
    }
  }
  for (int rep = 0; rep < 10; ++rep) {
    Bits start(10);
    for (auto& b : start) b = rng.bernoulli(0.5) ? 1 : 0;
    const double initial = model.energy(start);
    const auto [state, energy] =
        TabuSearch::improve(model, start, TabuParams{}, 200, rep);
    EXPECT_LE(energy, initial + 1e-9);
    EXPECT_NEAR(energy, model.energy(state), 1e-9);
  }
}

TEST(Qbsolv, ClampSubproblemEnergyIdentity) {
  Rng rng(9);
  QuboModel model(8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i; j < 8; ++j) {
      model.add_term(i, j, rng.uniform(-4.0, 4.0));
    }
  }
  model.set_offset(1.25);
  const std::vector<std::size_t> subset{1, 3, 6};
  Bits x(8);
  for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
  const QuboModel sub = clamp_subproblem(model, subset, x);
  // For every assignment of the subset, energies must agree.
  for (std::size_t mask = 0; mask < 8; ++mask) {
    Bits sub_x(3);
    Bits full_x = x;
    for (std::size_t a = 0; a < 3; ++a) {
      sub_x[a] = (mask >> a) & 1;
      full_x[subset[a]] = sub_x[a];
    }
    EXPECT_NEAR(sub.energy(sub_x), model.energy(full_x), 1e-9);
  }
}

TEST(Qbsolv, ClampRejectsDuplicates) {
  const QuboModel model(4);
  Bits x(4, 0);
  EXPECT_THROW(clamp_subproblem(model, {1, 1}, x), std::invalid_argument);
  EXPECT_THROW(clamp_subproblem(model, {9}, x), std::invalid_argument);
}

TEST(AnalogNoise, ZeroPrecisionIsExact) {
  const QuboModel model = planted_model();
  const QuboModel noisy = perturb_coefficients(model, 0.0, 3);
  Rng rng(3);
  for (int rep = 0; rep < 16; ++rep) {
    Bits x(4);
    for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
    EXPECT_NEAR(noisy.energy(x), model.energy(x), 1e-12);
  }
}

TEST(AnalogNoise, PerturbationPreservesSparsity) {
  QuboModel model(4);
  model.add_term(0, 1, 2.0);
  const QuboModel noisy = perturb_coefficients(model, 0.5, 7);
  // Absent couplers stay absent (no analog error on missing hardware links).
  EXPECT_DOUBLE_EQ(noisy.coefficient(2, 3), 0.0);
  EXPECT_NE(noisy.coefficient(0, 1), 2.0);
}

TEST(AnalogNoise, ReportsTrueEnergies) {
  const QuboModel model = planted_model();
  AnalogNoiseParams params;
  params.relative_precision = 0.3;  // heavy noise
  const AnalogNoiseSolver solver(std::make_shared<SimulatedAnnealer>(), params);
  SolveOptions options;
  options.num_replicas = 8;
  options.num_sweeps = 50;
  options.seed = 21;
  const auto batch = solver.solve(model, options);
  ASSERT_EQ(batch.size(), 8u);
  for (const auto& r : batch.results) {
    EXPECT_NEAR(r.qubo_energy, model.energy(r.assignment), 1e-9)
        << "decorator must report unperturbed energies";
  }
}

TEST(AnalogNoise, NoiseDegradesQualityOnAverage) {
  // With large noise the solver optimises the wrong landscape, so the mean
  // achieved (true) energy should be worse than the noiseless solver's.
  const QuboModel model = planted_model();
  SolveOptions options;
  options.num_replicas = 32;
  options.num_sweeps = 60;
  options.seed = 2;
  const SimulatedAnnealer clean;
  AnalogNoiseParams params;
  params.relative_precision = 0.5;
  params.num_noise_samples = 8;
  const AnalogNoiseSolver noisy(std::make_shared<SimulatedAnnealer>(), params);
  double clean_mean = 0.0, noisy_mean = 0.0;
  for (const auto& r : clean.solve(model, options).results) {
    clean_mean += r.qubo_energy;
  }
  for (const auto& r : noisy.solve(model, options).results) {
    noisy_mean += r.qubo_energy;
  }
  EXPECT_LT(clean_mean, noisy_mean);
}

TEST(AnalogNoise, NameDescribesStack) {
  const AnalogNoiseSolver solver(std::make_shared<DigitalAnnealer>());
  EXPECT_EQ(solver.name(), "da+analog_noise");
}

TEST(BatchRunner, CountsCallsAndTracksBest) {
  qubo::ConstrainedProblem problem(2);
  problem.add_objective_term(0, 0, 5.0);
  problem.add_objective_term(1, 1, 3.0);
  problem.add_constraint({{0, 1}, {1, 1}, 1.0});

  BatchRunner runner(problem, std::make_shared<SimulatedAnnealer>(),
                     SolveOptions{.num_replicas = 4, .num_sweeps = 50, .seed = 1});
  EXPECT_EQ(runner.num_calls(), 0u);
  const auto s1 = runner.run(10.0);
  EXPECT_EQ(runner.num_calls(), 1u);
  EXPECT_EQ(s1.relaxation_parameter, 10.0);
  EXPECT_GT(s1.stats.pf, 0.0);
  // Optimal feasible solution selects x1 (objective 3).
  EXPECT_DOUBLE_EQ(runner.best_fitness(), 3.0);
  runner.run(10.0);
  EXPECT_EQ(runner.num_calls(), 2u);
  EXPECT_EQ(runner.history().size(), 2u);
}

TEST(BatchRunner, RepeatCallsAtSameParameterDiffer) {
  // Repeated submissions must use fresh seeds, like a real annealer.
  Rng rng(44);
  qubo::ConstrainedProblem problem(6);
  for (std::size_t i = 0; i < 6; ++i) {
    problem.add_objective_term(i, i, rng.uniform(-1.0, 1.0));
  }
  problem.add_constraint({{0, 1, 2, 3, 4, 5}, {1, 1, 1, 1, 1, 1}, 3.0});
  BatchRunner runner(problem, std::make_shared<SimulatedAnnealer>(),
                     SolveOptions{.num_replicas = 8, .num_sweeps = 3, .seed = 9});
  const auto a = runner.run(1.0);
  const auto b = runner.run(1.0);
  // Statistically the two short-anneal batches should not be identical.
  EXPECT_TRUE(a.stats.energy_avg != b.stats.energy_avg ||
              a.stats.pf != b.stats.pf);
}

}  // namespace
}  // namespace qross::solvers
