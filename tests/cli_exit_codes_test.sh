#!/bin/sh
# CLI front-end contract: bad inputs exit 2 with a clear diagnostic, never 0.
# Regression guard for the jobs-file path checks in `qross_cli batch` /
# `remote batch` (a nonexistent path, and the sneakier case of a DIRECTORY,
# which opens "successfully" on Linux and used to report a misleading
# "no jobs in <dir>").  Run by CTest as: cli_exit_codes_test.sh <qross_cli>
set -u
cli="$1"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
failures=0

check() {
  desc="$1"; want_status="$2"; want_message="$3"; shift 3
  out="$tmpdir/out.txt"
  "$@" >"$out" 2>&1
  status=$?
  if [ "$status" -ne "$want_status" ]; then
    echo "FAIL: $desc: exit $status, want $want_status"
    failures=$((failures + 1))
  elif ! grep -q "$want_message" "$out"; then
    echo "FAIL: $desc: missing '$want_message' in output:"
    sed 's/^/  | /' "$out"
    failures=$((failures + 1))
  else
    echo "ok: $desc"
  fi
}

check "batch: nonexistent jobs file exits 2" 2 "cannot read jobs file" \
  "$cli" batch --jobs "$tmpdir/nonexistent.txt"
check "batch: directory as jobs file exits 2" 2 "cannot read jobs file" \
  "$cli" batch --jobs "$tmpdir"
check "remote batch: nonexistent jobs file exits 2" 2 "cannot read jobs file" \
  "$cli" remote batch --server unix:"$tmpdir/none.sock" \
  --jobs "$tmpdir/nonexistent.txt"
: > "$tmpdir/empty.txt"
check "batch: empty jobs file exits 2" 2 "no jobs in" \
  "$cli" batch --jobs "$tmpdir/empty.txt"
check "batch: unknown flag exits 2" 2 "unknown option" \
  "$cli" batch --jobs "$tmpdir/empty.txt" --sweps 10
check "remote: unknown action exits 2" 2 "remote needs an action" \
  "$cli" remote
# The connection is dialled after the jobs file parses but before the
# instances load, so a well-formed file + dead endpoint isolates the
# connect error path.
echo "never_loaded.tsp 25" > "$tmpdir/jobs.txt"
check "remote batch: unreachable server exits 1" 1 "cannot connect" \
  "$cli" remote batch --server unix:"$tmpdir/none.sock" --jobs "$tmpdir/jobs.txt"

# `trace` contract: flag/input errors exit 2 before any network I/O, and the
# --out sink is opened before dialling so an unwritable path never wastes a
# round trip.
check "trace: unknown flag exits 2" 2 "unknown option" \
  "$cli" trace --server unix:"$tmpdir/none.sock" --badflag 1
check "trace: unwritable --out exits 2" 2 "cannot write --out" \
  "$cli" trace --server unix:"$tmpdir/none.sock" \
  --out "$tmpdir/no_such_dir/trace.json"
check "trace: unreachable server exits 1" 1 "cannot connect" \
  "$cli" trace --server unix:"$tmpdir/none.sock" --out "$tmpdir/trace.json"
check "remote metrics: --prom against dead server exits 1" 1 "cannot connect" \
  "$cli" remote metrics --server unix:"$tmpdir/none.sock" --prom

exit "$failures"
