#!/bin/sh
# CLI front-end contract: bad inputs exit 2 with a clear diagnostic, never 0.
# Regression guard for the jobs-file path checks in `qross_cli batch` /
# `remote batch` (a nonexistent path, and the sneakier case of a DIRECTORY,
# which opens "successfully" on Linux and used to report a misleading
# "no jobs in <dir>").  Run by CTest as: cli_exit_codes_test.sh <qross_cli>
set -u
cli="$1"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
failures=0

check() {
  desc="$1"; want_status="$2"; want_message="$3"; shift 3
  out="$tmpdir/out.txt"
  "$@" >"$out" 2>&1
  status=$?
  if [ "$status" -ne "$want_status" ]; then
    echo "FAIL: $desc: exit $status, want $want_status"
    failures=$((failures + 1))
  elif ! grep -q "$want_message" "$out"; then
    echo "FAIL: $desc: missing '$want_message' in output:"
    sed 's/^/  | /' "$out"
    failures=$((failures + 1))
  else
    echo "ok: $desc"
  fi
}

check "batch: nonexistent jobs file exits 2" 2 "cannot read jobs file" \
  "$cli" batch --jobs "$tmpdir/nonexistent.txt"
check "batch: directory as jobs file exits 2" 2 "cannot read jobs file" \
  "$cli" batch --jobs "$tmpdir"
check "remote batch: nonexistent jobs file exits 2" 2 "cannot read jobs file" \
  "$cli" remote batch --server unix:"$tmpdir/none.sock" \
  --jobs "$tmpdir/nonexistent.txt"
: > "$tmpdir/empty.txt"
check "batch: empty jobs file exits 2" 2 "no jobs in" \
  "$cli" batch --jobs "$tmpdir/empty.txt"
check "batch: unknown flag exits 2" 2 "unknown option" \
  "$cli" batch --jobs "$tmpdir/empty.txt" --sweps 10
check "remote: unknown action exits 2" 2 "remote needs an action" \
  "$cli" remote
# The connection is dialled after the jobs file parses but before the
# instances load, so a well-formed file + dead endpoint isolates the
# connect error path.
echo "never_loaded.tsp 25" > "$tmpdir/jobs.txt"
check "remote batch: unreachable server exits 1" 1 "cannot connect" \
  "$cli" remote batch --server unix:"$tmpdir/none.sock" --jobs "$tmpdir/jobs.txt"

# `trace` contract: flag/input errors exit 2 before any network I/O, and the
# --out sink is opened before dialling so an unwritable path never wastes a
# round trip.
check "trace: unknown flag exits 2" 2 "unknown option" \
  "$cli" trace --server unix:"$tmpdir/none.sock" --badflag 1
check "trace: unwritable --out exits 2" 2 "cannot write --out" \
  "$cli" trace --server unix:"$tmpdir/none.sock" \
  --out "$tmpdir/no_such_dir/trace.json"
check "trace: unreachable server exits 1" 1 "cannot connect" \
  "$cli" trace --server unix:"$tmpdir/none.sock" --out "$tmpdir/trace.json"
check "remote metrics: --prom against dead server exits 1" 1 "cannot connect" \
  "$cli" remote metrics --server unix:"$tmpdir/none.sock" --prom

# `remote tune` contract: flag/input errors exit 2 before any network I/O
# (the shared RemoteArgs parser and the instance checks run first); only a
# well-formed request that fails to dial exits 1.
check "remote tune: unknown flag exits 2" 2 "unknown option" \
  "$cli" remote tune --server unix:"$tmpdir/none.sock" --cities 6 --sweps 10
check "remote tune: missing --server exits 2" 2 "missing required option --server" \
  "$cli" remote tune --cities 6
check "remote tune: --instance and --cities conflict exits 2" 2 "mutually exclusive" \
  "$cli" remote tune --server unix:"$tmpdir/none.sock" \
  --instance "$tmpdir/x.tsp" --cities 6
check "remote tune: neither --instance nor --cities exits 2" 2 "needs --instance" \
  "$cli" remote tune --server unix:"$tmpdir/none.sock"
check "remote tune: unknown strategy exits 2" 2 "unknown strategy" \
  "$cli" remote tune --server unix:"$tmpdir/none.sock" --cities 6 \
  --strategy sideways
check "remote tune: unreachable server exits 1" 1 "cannot connect" \
  "$cli" remote tune --server unix:"$tmpdir/none.sock" --cities 6

# `load` contract: workload/flag errors exit 2 before any socket is dialled;
# --dry-run needs no server at all (schedule inspection is offline); only a
# well-formed replay that fails to dial exits 1.
check "load: unknown flag exits 2" 2 "unknown option" \
  "$cli" load --badflag 1
check "load: missing --server exits 2" 2 "missing required option --server" \
  "$cli" load --rate 100
check "load: bad --arrivals exits 2" 2 "must be poisson or bursty" \
  "$cli" load --arrivals sideways --dry-run
check "load: malformed --clients entry exits 2" 2 "malformed --clients" \
  "$cli" load --clients =3 --dry-run
check "load: malformed --clients weight exits 2" 2 "malformed --clients weight" \
  "$cli" load --clients a=x --dry-run
check "load: non-positive rate exits 2" 2 "rate_per_sec must be > 0" \
  "$cli" load --rate 0 --dry-run
check "load: dry run needs no server, exits 0" 0 "arrivals over" \
  "$cli" load --dry-run --rate 50 --duration 0.1 --seed 3
check "load: unreachable server exits 1" 1 "connect failed" \
  "$cli" load --server unix:"$tmpdir/none.sock" --rate 50 --duration 0.1

exit "$failures"
