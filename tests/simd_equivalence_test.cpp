// SIMD/scalar equivalence: the ReplicaBlockEvaluator must reproduce the
// scalar IncrementalEvaluator BIT FOR BIT in every lane — energies, flip
// deltas, packed assignments — on both dispatch arms, across random dense,
// random sparse, and the paper-workload MVC / TSP-formulation models
// (mirroring tests/sparse_equivalence_test.cpp).  On top of the evaluator
// contract, the blocked solver kernels must return bit-identical batches
// for scalar vs AVX2 dispatch, for any thread count, and (SA/DA) for any
// batch-size extension of the same seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "solvers/delta_scale.hpp"
#include "problems/mvc/mvc.hpp"
#include "problems/tsp/formulation.hpp"
#include "problems/tsp/generators.hpp"
#include "qubo/incremental.hpp"
#include "qubo/model.hpp"
#include "qubo/replica_block.hpp"
#include "qubo/simd.hpp"
#include "qubo/sparse.hpp"
#include "solvers/digital_annealer.hpp"
#include "solvers/parallel_tempering.hpp"
#include "solvers/simulated_annealer.hpp"
#include "solvers/solver.hpp"

namespace qross::qubo {
namespace {

// Restores the process-wide dispatch choice on scope exit so tests cannot
// leak a forced kind into each other.
class ScopedSimdKind {
 public:
  explicit ScopedSimdKind(SimdKind kind)
      : previous_(active_simd_kind()), installed_(set_simd_kind(kind)) {}
  ~ScopedSimdKind() { set_simd_kind(previous_); }
  SimdKind installed() const { return installed_; }

 private:
  SimdKind previous_;
  SimdKind installed_;
};

QuboModel random_model(std::size_t n, std::uint64_t seed, double density) {
  Rng rng(seed);
  QuboModel model(n);
  model.set_offset(rng.uniform(-5.0, 5.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      if (rng.uniform() < density) {
        model.add_term(i, j, rng.uniform(-10.0, 10.0));
      }
    }
  }
  return model;
}

Bits random_bits(std::size_t n, Rng& rng) {
  Bits x(n);
  for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
  return x;
}

/// Bitwise double equality — stricter than EXPECT_DOUBLE_EQ (4 ULPs): the
/// block evaluator's contract is exact reproduction, sign of zero included.
void expect_bits_eq(double actual, double expected) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(actual),
            std::bit_cast<std::uint64_t>(expected))
      << "actual " << actual << " expected " << expected;
}

/// Runs a masked flip trajectory on a block of `lanes` replicas and a bank
/// of per-lane scalar IncrementalEvaluators, checking bitwise agreement of
/// energies, deltas and assignments at every step.
void expect_block_matches_scalar(const QuboModel& model, std::uint64_t seed,
                                 SimdKind kind, std::size_t lanes = 6) {
  const std::size_t n = model.num_vars();
  const SparseAdjacencyPtr adj = SparseAdjacency::build(model);
  ReplicaBlockEvaluator block(adj, lanes, kind);
  ASSERT_EQ(block.kind(), kind);
  EXPECT_EQ(block.lanes(), lanes);
  EXPECT_EQ(block.lane_stride() % ReplicaBlockEvaluator::kGroupLanes, 0u);
  EXPECT_GE(block.lane_stride(), lanes);

  Rng rng(seed);
  std::vector<IncrementalEvaluator> refs(lanes, IncrementalEvaluator(adj));
  for (std::size_t l = 0; l < lanes; ++l) {
    const Bits x = random_bits(n, rng);
    block.set_state(l, x);
    refs[l].set_state(x);
  }
  std::vector<double> deltas(block.lane_stride(), 0.0);
  std::vector<std::uint64_t> accept(block.mask_words(), 0);
  Bits extracted;
  for (int step = 0; step < 96 && n > 0; ++step) {
    const auto i = static_cast<std::size_t>(rng.uniform_int(n));
    block.compute_flip_deltas(i, deltas.data());
    for (std::size_t l = 0; l < lanes; ++l) {
      expect_bits_eq(deltas[l], refs[l].flip_delta(i));
      expect_bits_eq(block.flip_delta(l, i), refs[l].flip_delta(i));
    }
    // Random accept mask — including the all-clear and all-set cases.
    std::fill(accept.begin(), accept.end(), 0);
    for (std::size_t l = 0; l < lanes; ++l) {
      if (rng.bernoulli(0.5)) accept[l / 64] |= std::uint64_t{1} << (l % 64);
    }
    block.apply_flips(i, accept.data(), deltas.data());
    for (std::size_t l = 0; l < lanes; ++l) {
      if ((accept[l / 64] >> (l % 64)) & 1u) refs[l].apply_flip(i);
      expect_bits_eq(block.energy(l), refs[l].energy());
      EXPECT_EQ(block.bit(l, i), refs[l].state()[i] != 0);
    }
  }
  for (std::size_t l = 0; l < lanes; ++l) {
    block.extract_state(l, extracted);
    EXPECT_EQ(extracted, refs[l].state());
    for (std::size_t i = 0; i < n; ++i) {
      expect_bits_eq(block.flip_delta(l, i), refs[l].flip_delta(i));
    }
  }
}

void expect_both_arms_match_scalar_reference(const QuboModel& model,
                                             std::uint64_t seed) {
  expect_block_matches_scalar(model, seed, SimdKind::kScalar);
  if (cpu_supports_avx2()) {
    expect_block_matches_scalar(model, seed, SimdKind::kAvx2);
  }
}

TEST(SimdEquivalence, RandomDenseModels) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    expect_both_arms_match_scalar_reference(random_model(24, 100 + seed, 0.9),
                                            seed);
  }
}

TEST(SimdEquivalence, RandomSparseModels) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    expect_both_arms_match_scalar_reference(random_model(48, 200 + seed, 0.05),
                                            seed);
  }
}

TEST(SimdEquivalence, MvcPenaltyModel) {
  const auto instance = mvc::generate_random_mvc(40, 0.12, 7);
  expect_both_arms_match_scalar_reference(instance.to_qubo(2.0), 7);
}

TEST(SimdEquivalence, TspFormulationModel) {
  const auto instance = tsp::generate_uniform(7, 0x5EED);
  const auto problem = tsp::build_tsp_problem(instance);
  expect_both_arms_match_scalar_reference(problem.to_qubo(25.0), 3);
}

TEST(SimdEquivalence, LaneCountsAroundGroupBoundaries) {
  const QuboModel model = random_model(20, 77, 0.4);
  for (const std::size_t lanes : {1u, 3u, 4u, 5u, 8u, 9u, 64u, 65u}) {
    expect_block_matches_scalar(model, lanes, SimdKind::kScalar, lanes);
    if (cpu_supports_avx2()) {
      expect_block_matches_scalar(model, lanes, SimdKind::kAvx2, lanes);
    }
  }
}

TEST(SimdEquivalence, DivergentSingleLaneFlips) {
  // apply_flip_lane (the DA pick step) against per-lane scalar references.
  const QuboModel model = random_model(32, 5, 0.3);
  const SparseAdjacencyPtr adj = SparseAdjacency::build(model);
  const std::size_t lanes = 5;
  for (const SimdKind kind : {SimdKind::kScalar, SimdKind::kAvx2}) {
    if (kind == SimdKind::kAvx2 && !cpu_supports_avx2()) continue;
    ReplicaBlockEvaluator block(adj, lanes, kind);
    std::vector<IncrementalEvaluator> refs(lanes, IncrementalEvaluator(adj));
    Rng rng(11);
    for (std::size_t l = 0; l < lanes; ++l) {
      const Bits x = random_bits(32, rng);
      block.set_state(l, x);
      refs[l].set_state(x);
    }
    for (int step = 0; step < 64; ++step) {
      // Every lane flips its own variable, like the DA inner loop.
      for (std::size_t l = 0; l < lanes; ++l) {
        const auto i = static_cast<std::size_t>(rng.uniform_int(32));
        block.apply_flip_lane(l, i);
        refs[l].apply_flip(i);
        expect_bits_eq(block.energy(l), refs[l].energy());
      }
    }
    Bits extracted;
    for (std::size_t l = 0; l < lanes; ++l) {
      block.extract_state(l, extracted);
      EXPECT_EQ(extracted, refs[l].state());
    }
  }
}

TEST(SimdEquivalence, Avx2ArmMatchesScalarArmStepForStep) {
  if (!cpu_supports_avx2()) {
    GTEST_SKIP() << "CPU has no AVX2; the scalar arm is the only arm";
  }
  const QuboModel model = random_model(40, 123, 0.25);
  const SparseAdjacencyPtr adj = SparseAdjacency::build(model);
  const std::size_t lanes = 7;
  ReplicaBlockEvaluator scalar(adj, lanes, SimdKind::kScalar);
  ReplicaBlockEvaluator avx2(adj, lanes, SimdKind::kAvx2);
  ASSERT_EQ(scalar.kind(), SimdKind::kScalar);
  ASSERT_EQ(avx2.kind(), SimdKind::kAvx2);
  Rng rng(9);
  for (std::size_t l = 0; l < lanes; ++l) {
    const Bits x = random_bits(40, rng);
    scalar.set_state(l, x);
    avx2.set_state(l, x);
  }
  std::vector<double> ds(scalar.lane_stride()), dv(avx2.lane_stride());
  std::vector<std::uint64_t> accept(scalar.mask_words(), 0);
  for (int step = 0; step < 256; ++step) {
    const auto i = static_cast<std::size_t>(rng.uniform_int(40));
    scalar.compute_flip_deltas(i, ds.data());
    avx2.compute_flip_deltas(i, dv.data());
    std::fill(accept.begin(), accept.end(), 0);
    for (std::size_t l = 0; l < lanes; ++l) {
      expect_bits_eq(dv[l], ds[l]);
      if (rng.bernoulli(0.5)) accept[l / 64] |= std::uint64_t{1} << (l % 64);
    }
    scalar.apply_flips(i, accept.data(), ds.data());
    avx2.apply_flips(i, accept.data(), dv.data());
    for (std::size_t l = 0; l < lanes; ++l) {
      expect_bits_eq(avx2.energy(l), scalar.energy(l));
    }
  }
}

TEST(SimdEquivalence, EmptyAndDiagonalOnlyModels) {
  expect_both_arms_match_scalar_reference(QuboModel(0), 1);
  QuboModel diag(5);
  diag.set_offset(1.25);
  for (std::size_t i = 0; i < 5; ++i) diag.add_term(i, i, 0.5 * (i + 1));
  expect_both_arms_match_scalar_reference(diag, 2);
}

TEST(SimdEquivalence, DispatchOverrideClampsAndRestores) {
  const SimdKind before = active_simd_kind();
  {
    ScopedSimdKind forced(SimdKind::kScalar);
    EXPECT_EQ(active_simd_kind(), SimdKind::kScalar);
    EXPECT_EQ(forced.installed(), SimdKind::kScalar);
    const SparseAdjacencyPtr adj =
        SparseAdjacency::build(random_model(8, 3, 0.5));
    EXPECT_EQ(ReplicaBlockEvaluator(adj, 4).kind(), SimdKind::kScalar);
  }
  EXPECT_EQ(active_simd_kind(), before);
  // An avx2 request never installs an arm the CPU cannot run.
  const SimdKind installed = set_simd_kind(SimdKind::kAvx2);
  EXPECT_EQ(installed, cpu_supports_avx2() ? SimdKind::kAvx2
                                           : SimdKind::kScalar);
  set_simd_kind(before);
}

// --- solver-level batch identity across arms and thread counts -------------

void expect_same_batch(const SolveBatch& a, const SolveBatch& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t r = 0; r < a.results.size(); ++r) {
    expect_bits_eq(a.results[r].qubo_energy, b.results[r].qubo_energy);
    EXPECT_EQ(a.results[r].assignment, b.results[r].assignment)
        << "replica " << r;
  }
}

class SimdSolverEquivalence : public ::testing::Test {
 protected:
  static std::vector<std::pair<const char*, QuboModel>> models() {
    std::vector<std::pair<const char*, QuboModel>> out;
    out.emplace_back("dense", random_model(24, 42, 0.8));
    out.emplace_back("sparse", random_model(48, 43, 0.06));
    out.emplace_back("mvc",
                     mvc::generate_random_mvc(36, 0.1, 17).to_qubo(2.0));
    out.emplace_back("tsp", tsp::build_tsp_problem(tsp::generate_uniform(
                                6, 0xBEE)).to_qubo(25.0));
    return out;
  }

  static void expect_arm_identical_batches(const solvers::QuboSolver& solver) {
    if (!cpu_supports_avx2()) {
      GTEST_SKIP() << "CPU has no AVX2; the scalar arm is the only arm";
    }
    for (const auto& [tag, model] : models()) {
      solvers::SolveOptions options;
      options.num_replicas = 13;  // straddles one 8-lane block boundary
      options.num_sweeps = 30;
      options.seed = 0xF00D;
      SolveBatch scalar_batch, avx2_batch;
      {
        ScopedSimdKind forced(SimdKind::kScalar);
        scalar_batch = solver.solve(model, options);
      }
      {
        ScopedSimdKind forced(SimdKind::kAvx2);
        avx2_batch = solver.solve(model, options);
      }
      SCOPED_TRACE(tag);
      expect_same_batch(scalar_batch, avx2_batch);
    }
  }

  static void expect_thread_invariant_batches(
      const solvers::QuboSolver& solver) {
    const QuboModel model = random_model(32, 77, 0.2);
    solvers::SolveOptions sequential;
    sequential.num_replicas = 19;
    sequential.num_sweeps = 25;
    sequential.seed = 0xCAFE;
    solvers::SolveOptions pooled = sequential;
    pooled.num_threads = 3;
    expect_same_batch(solver.solve(model, sequential),
                      solver.solve(model, pooled));
  }
};

TEST_F(SimdSolverEquivalence, SaBatchesIdenticalAcrossArms) {
  expect_arm_identical_batches(solvers::SimulatedAnnealer());
}

TEST_F(SimdSolverEquivalence, DaBatchesIdenticalAcrossArms) {
  expect_arm_identical_batches(solvers::DigitalAnnealer());
}

TEST_F(SimdSolverEquivalence, PtBatchesIdenticalAcrossArms) {
  expect_arm_identical_batches(solvers::ParallelTempering());
}

TEST_F(SimdSolverEquivalence, SaBatchesIdenticalAcrossThreadCounts) {
  expect_thread_invariant_batches(solvers::SimulatedAnnealer());
}

TEST_F(SimdSolverEquivalence, DaBatchesIdenticalAcrossThreadCounts) {
  expect_thread_invariant_batches(solvers::DigitalAnnealer());
}

// Replica r's trajectory depends only on (seed, r): asking for a bigger
// batch with the same seed extends the batch without rewriting its prefix.
TEST_F(SimdSolverEquivalence, SaAndDaBatchPrefixStableUnderBatchGrowth) {
  const QuboModel model = random_model(28, 55, 0.3);
  for (const auto solver :
       {solvers::SolverPtr(std::make_shared<solvers::SimulatedAnnealer>()),
        solvers::SolverPtr(std::make_shared<solvers::DigitalAnnealer>())}) {
    solvers::SolveOptions small;
    small.num_replicas = 12;
    small.num_sweeps = 20;
    small.seed = 99;
    solvers::SolveOptions large = small;
    large.num_replicas = 20;
    const SolveBatch small_batch = solver->solve(model, small);
    const SolveBatch large_batch = solver->solve(model, large);
    for (std::size_t r = 0; r < small.num_replicas; ++r) {
      expect_bits_eq(small_batch.results[r].qubo_energy,
                     large_batch.results[r].qubo_energy);
      EXPECT_EQ(small_batch.results[r].assignment,
                large_batch.results[r].assignment);
    }
  }
}

// The blocked digital annealer is a pure vectorisation: each lane replays
// the pre-SIMD per-replica kernel's RNG stream draw for draw.  This pins
// that contract against an in-test transcription of the scalar kernel.
TEST_F(SimdSolverEquivalence, DaLanesReplayScalarKernelExactly) {
  const QuboModel model = random_model(20, 31, 0.35);
  const SparseAdjacencyPtr adj = SparseAdjacency::build(model);
  const std::size_t n = 20;
  solvers::SolveOptions options;
  options.num_replicas = 5;
  options.num_sweeps = 15;
  options.seed = 0xD1517A;
  const SolveBatch batch = solvers::DigitalAnnealer().solve(model, options);

  // Scalar reference: the pre-SIMD kernel, IncrementalEvaluator and all.
  const solvers::DaParams params;
  Rng probe_rng(derive_seed(options.seed, 0xda0ULL));
  const double typical_delta =
      solvers::probe_delta_scale(adj, probe_rng).typical;
  const double t_start =
      typical_delta / -std::log(params.initial_acceptance);
  const double t_end =
      std::max(typical_delta * 1e-3 / -std::log(params.final_acceptance),
               t_start * 1e-6);
  const double offset_step = params.offset_increase_rate * typical_delta;
  const double cooling =
      std::pow(t_end / t_start,
               1.0 / static_cast<double>(options.num_sweeps - 1));
  for (std::size_t replica = 0; replica < options.num_replicas; ++replica) {
    Rng rng(derive_seed(options.seed, replica));
    IncrementalEvaluator eval(adj);
    Bits x(n);
    for (auto& bit : x) bit = rng.bernoulli(0.5) ? 1 : 0;
    eval.set_state(x);
    double temperature = t_start;
    double offset = 0.0;
    double best_energy = eval.energy();
    Bits best_state = eval.state();
    std::vector<std::size_t> accepted;
    for (std::size_t sweep = 0; sweep < options.num_sweeps; ++sweep) {
      for (std::size_t step = 0; step < n; ++step) {
        accepted.clear();
        for (std::size_t i = 0; i < n; ++i) {
          const double delta = eval.flip_delta(i) - offset;
          if (delta <= 0.0 ||
              rng.uniform() < std::exp(-delta / temperature)) {
            accepted.push_back(i);
          }
        }
        if (accepted.empty()) {
          offset += offset_step;
          continue;
        }
        const std::size_t pick = accepted[static_cast<std::size_t>(
            rng.uniform_int(accepted.size()))];
        eval.apply_flip(pick);
        offset = 0.0;
        if (eval.energy() < best_energy) {
          best_energy = eval.energy();
          best_state = eval.state();
        }
      }
      temperature *= cooling;
    }
    expect_bits_eq(batch.results[replica].qubo_energy, best_energy);
    EXPECT_EQ(batch.results[replica].assignment, best_state);
  }
}

}  // namespace
}  // namespace qross::qubo
