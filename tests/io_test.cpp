// Tests for the src/io/ persistence subsystem: endian-explicit primitives,
// the snapshot record framing, the SolveBatch codec (bit-identical round
// trips), and the CacheStore's journal/compaction/corruption-recovery
// semantics that back the cross-run warm start.

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "io/binary.hpp"
#include "io/cache_store.hpp"
#include "io/snapshot.hpp"

namespace qross::io {
namespace {

// Fresh per-test scratch directory so corruption in one test never leaks
// into another's files.
class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("qross_io_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return dir_ / name; }

  std::filesystem::path dir_;
};

qubo::SolveBatch random_batch(std::uint64_t seed, std::size_t results,
                              std::size_t bits) {
  Rng rng(seed);
  qubo::SolveBatch batch;
  batch.results.resize(results);
  for (auto& r : batch.results) {
    r.qubo_energy = rng.uniform(-1e6, 1e6);
    r.assignment.resize(bits);
    for (auto& b : r.assignment) b = rng.bernoulli(0.5) ? 1 : 0;
  }
  return batch;
}

void expect_bit_identical(const qubo::SolveBatch& a, const qubo::SolveBatch& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t k = 0; k < a.results.size(); ++k) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.results[k].qubo_energy),
              std::bit_cast<std::uint64_t>(b.results[k].qubo_energy));
    EXPECT_EQ(a.results[k].assignment, b.results[k].assignment);
  }
}

CacheEntry make_entry(std::uint64_t tag, std::size_t results = 3,
                      std::size_t bits = 21) {
  CacheEntry entry;
  entry.key = {tag, ~tag};
  entry.run_ms = static_cast<double>(tag) * 0.5;
  entry.batch =
      std::make_shared<const qubo::SolveBatch>(random_batch(tag, results, bits));
  return entry;
}

// --- primitives -------------------------------------------------------------

TEST_F(IoTest, PrimitivesAreLittleEndianAndBoundsChecked) {
  ByteWriter out;
  out.u8(0xAB);
  out.u32(0x01020304u);
  out.u64(0x1122334455667788ull);
  out.f64(-0.0);
  const auto bytes = out.bytes();
  ASSERT_EQ(bytes.size(), 1u + 4 + 8 + 8);
  EXPECT_EQ(bytes[1], 0x04);  // least-significant byte first
  EXPECT_EQ(bytes[4], 0x01);
  EXPECT_EQ(bytes[5], 0x88);

  ByteReader in(bytes);
  EXPECT_EQ(in.u8(), 0xAB);
  EXPECT_EQ(in.u32(), 0x01020304u);
  EXPECT_EQ(in.u64(), 0x1122334455667788ull);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(in.f64()),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_EQ(in.remaining(), 0u);
  EXPECT_THROW(in.u8(), DecodeError);
}

TEST_F(IoTest, BatchRoundTripIsBitIdentical) {
  // Property sweep over batch shapes, including empty batches, empty
  // assignments, and non-multiple-of-8 bit counts (partial final byte).
  const std::vector<std::tuple<std::uint64_t, std::size_t, std::size_t>>
      shapes = {{1, 0, 0}, {2, 1, 1},   {3, 4, 7},
                {4, 8, 8}, {5, 16, 65}, {6, 3, 1024}};
  for (const auto& [seed, results, bits] : shapes) {
    const auto original = random_batch(seed, results, bits);
    ByteWriter out;
    encode_batch(out, original);
    ByteReader in(out.bytes());
    const auto decoded = decode_batch(in);
    expect_bit_identical(original, decoded);
    EXPECT_EQ(in.remaining(), 0u);
  }
}

TEST_F(IoTest, BatchRoundTripPreservesSpecialEnergies) {
  qubo::SolveBatch batch;
  for (const double e : {0.0, -0.0, std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::quiet_NaN(),
                         std::numeric_limits<double>::denorm_min()}) {
    batch.results.push_back({{1, 0, 1}, e});
  }
  ByteWriter out;
  encode_batch(out, batch);
  ByteReader in(out.bytes());
  expect_bit_identical(batch, decode_batch(in));
}

// --- record framing ---------------------------------------------------------

TEST_F(IoTest, ScanSkipsBadChecksumAndKeepsFraming) {
  ByteWriter out;
  write_header(out);
  const std::vector<std::uint8_t> p1 = {1, 2, 3, 4};
  const std::vector<std::uint8_t> p2 = {9, 9};
  write_record(out, kRecordCacheEntry, p1);
  write_record(out, kRecordCacheEntry, p2);
  auto bytes = out.take();
  bytes[16 + 16 + 1] ^= 0xFF;  // flip a byte inside record 1's payload

  ByteReader in(bytes);
  ASSERT_EQ(read_header(in), HeaderStatus::ok);
  std::vector<std::size_t> sizes;
  const auto stats = scan_records(in, [&](std::uint32_t, auto payload) {
    sizes.push_back(payload.size());
    return true;
  });
  EXPECT_EQ(stats.records, 1u);  // record 2 survives
  EXPECT_EQ(stats.skipped, 1u);
  EXPECT_FALSE(stats.truncated);
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 2u);
}

TEST_F(IoTest, ScanStopsCleanlyOnTruncatedTail) {
  ByteWriter out;
  write_header(out);
  write_record(out, kRecordCacheEntry, std::vector<std::uint8_t>(100, 7));
  write_record(out, kRecordCacheEntry, std::vector<std::uint8_t>(50, 8));
  auto bytes = out.take();
  bytes.resize(bytes.size() - 30);  // tear the second record's payload

  ByteReader in(bytes);
  ASSERT_EQ(read_header(in), HeaderStatus::ok);
  const auto stats = scan_records(in, [](std::uint32_t, auto) { return true; });
  EXPECT_EQ(stats.records, 1u);
  EXPECT_TRUE(stats.truncated);
}

TEST_F(IoTest, HeaderRejectsForeignAndFutureFiles) {
  {
    const std::vector<std::uint8_t> garbage = {'n', 'o', 't', ' ', 'u', 's'};
    ByteReader in(garbage);
    EXPECT_EQ(read_header(in), HeaderStatus::bad_magic);
  }
  {
    ByteWriter out;
    write_header(out);
    auto bytes = out.take();
    bytes[8] = 0xFF;  // version field (little-endian u32 after the magic)
    ByteReader in(bytes);
    std::uint32_t version = 0;
    EXPECT_EQ(read_header(in, &version), HeaderStatus::future_version);
    EXPECT_GT(version, kFormatVersion);
  }
}

// --- CacheStore -------------------------------------------------------------

std::vector<CacheEntry> load_all(CacheStore& store) {
  std::vector<CacheEntry> entries;
  store.load([&](CacheEntry entry) { entries.push_back(std::move(entry)); });
  return entries;
}

TEST_F(IoTest, StoreAppendLoadRoundTrip) {
  CacheStore store({.path = path("cache.qsnap")});
  const auto e1 = make_entry(10);
  const auto e2 = make_entry(20, 5, 64);
  ASSERT_TRUE(store.append(e1));
  ASSERT_TRUE(store.append(e2));

  CacheStore reader({.path = path("cache.qsnap")});
  const auto entries = load_all(reader);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, e1.key);
  EXPECT_EQ(entries[1].key, e2.key);
  EXPECT_DOUBLE_EQ(entries[1].run_ms, e2.run_ms);
  expect_bit_identical(*entries[0].batch, *e1.batch);
  expect_bit_identical(*entries[1].batch, *e2.batch);
  EXPECT_EQ(reader.load_skipped(), 0u);
  EXPECT_FALSE(reader.version_rejected());
}

TEST_F(IoTest, CompactMergesNewestWinsAndRemovesJournal) {
  CacheStore store({.path = path("cache.qsnap")});
  auto stale = make_entry(1);
  store.append(stale);
  store.append(make_entry(2));
  EXPECT_EQ(store.compact(), 2u);  // journal folded into the snapshot
  EXPECT_FALSE(std::filesystem::exists(store.journal_path()));

  auto fresh = make_entry(3);
  fresh.key = stale.key;  // same fingerprint, newer batch
  store.append(fresh);
  EXPECT_EQ(store.compact(), 2u);

  const auto entries = load_all(store);
  ASSERT_EQ(entries.size(), 2u);
  // The re-appended key moved to the newest position with the new batch.
  EXPECT_EQ(entries[1].key, stale.key);
  expect_bit_identical(*entries[1].batch, *fresh.batch);
}

TEST_F(IoTest, CompactionAppliesEntryAndByteBudgets) {
  {
    CacheStore store({.path = path("cache.qsnap"), .max_entries = 2});
    for (std::uint64_t k = 1; k <= 5; ++k) store.append(make_entry(k));
    EXPECT_EQ(store.compact(), 2u);
    const auto entries = load_all(store);
    ASSERT_EQ(entries.size(), 2u);  // newest two survive
    EXPECT_EQ(entries[0].key, make_entry(4).key);
    EXPECT_EQ(entries[1].key, make_entry(5).key);
  }
  {
    // A byte budget smaller than one record empties the snapshot.
    CacheStore store({.path = path("tiny.qsnap"), .max_bytes = 8});
    store.append(make_entry(1));
    EXPECT_EQ(store.compact(), 0u);
    EXPECT_TRUE(load_all(store).empty());
  }
}

TEST_F(IoTest, TruncatedJournalRecoversThePrefix) {
  CacheStore store({.path = path("cache.qsnap")});
  store.append(make_entry(1));
  store.compact();  // snapshot: entry 1
  store.append(make_entry(2));
  store.append(make_entry(3));

  const auto journal = store.journal_path();
  const auto size = std::filesystem::file_size(journal);
  std::filesystem::resize_file(journal, size - 11);  // tear entry 3

  CacheStore reader({.path = path("cache.qsnap")});
  const auto entries = load_all(reader);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, make_entry(1).key);
  EXPECT_EQ(entries[1].key, make_entry(2).key);
  EXPECT_GE(reader.load_skipped(), 1u);

  // Compaction of the damaged store keeps the recoverable prefix.
  EXPECT_EQ(reader.compact(), 2u);
  EXPECT_FALSE(std::filesystem::exists(journal));
}

TEST_F(IoTest, AppendAfterTornTailRepairsTheJournalFirst) {
  {
    CacheStore store({.path = path("cache.qsnap")});
    store.append(make_entry(1));
    store.append(make_entry(2));
  }
  const std::string journal = path("cache.qsnap") + ".journal";
  const auto size = std::filesystem::file_size(journal);
  std::filesystem::resize_file(journal, size - 5);  // crash tore entry 2

  // The next run appends more results.  Without the tail repair they would
  // land after the tear, stay unframeable forever, and be silently dropped
  // by the next compaction.
  CacheStore store({.path = path("cache.qsnap")});
  ASSERT_TRUE(store.append(make_entry(3)));
  ASSERT_TRUE(store.append(make_entry(4)));

  const auto entries = load_all(store);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].key, make_entry(1).key);
  EXPECT_EQ(entries[1].key, make_entry(3).key);
  EXPECT_EQ(entries[2].key, make_entry(4).key);
  EXPECT_EQ(store.load_skipped(), 0u) << "the torn tail was truncated away";
  EXPECT_EQ(store.compact(), 3u);
}

TEST_F(IoTest, AppendRefusesAFutureVersionJournal) {
  {
    CacheStore store({.path = path("cache.qsnap")});
    store.append(make_entry(1));
  }
  const std::string journal = path("cache.qsnap") + ".journal";
  auto bytes = *read_file(journal);
  bytes[8] = 0x7F;  // a newer build's journal
  ByteWriter out;
  out.raw(bytes);
  ASSERT_TRUE(write_file_atomic(journal, out.bytes()));

  CacheStore store({.path = path("cache.qsnap")});
  EXPECT_FALSE(store.append(make_entry(2)))
      << "must not mix v1 records into a newer-format journal";
}

TEST_F(IoTest, FlippedByteSkipsOnlyThatEntry) {
  CacheStore store({.path = path("cache.qsnap")});
  for (std::uint64_t k = 1; k <= 3; ++k) store.append(make_entry(k));
  store.compact();

  auto bytes = *read_file(path("cache.qsnap"));
  bytes[16 + 16 + 20] ^= 0x40;  // header + record framing + into payload 1

  ByteWriter out;
  out.raw(bytes);
  ASSERT_TRUE(write_file_atomic(path("cache.qsnap"), out.bytes()));

  CacheStore reader({.path = path("cache.qsnap")});
  const auto entries = load_all(reader);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(reader.load_skipped(), 1u);
  EXPECT_EQ(entries[0].key, make_entry(2).key);
  EXPECT_EQ(entries[1].key, make_entry(3).key);
}

TEST_F(IoTest, FutureVersionSnapshotIsRejectedNotGuessed) {
  CacheStore store({.path = path("cache.qsnap")});
  store.append(make_entry(1));
  store.compact();

  auto bytes = *read_file(path("cache.qsnap"));
  bytes[8] = 0x7F;  // far-future format version
  ByteWriter out;
  out.raw(bytes);
  ASSERT_TRUE(write_file_atomic(path("cache.qsnap"), out.bytes()));

  CacheStore reader({.path = path("cache.qsnap")});
  EXPECT_TRUE(load_all(reader).empty());
  EXPECT_TRUE(reader.version_rejected());
  const auto info = reader.info();
  EXPECT_TRUE(info.version_rejected);
  EXPECT_EQ(info.live_entries, 0u);
}

TEST_F(IoTest, ForeignFileDegradesToEmptyLoad) {
  std::ofstream(path("cache.qsnap")) << "this is not a qross snapshot at all";
  CacheStore store({.path = path("cache.qsnap")});
  EXPECT_TRUE(load_all(store).empty());
  EXPECT_GE(store.load_skipped(), 1u);
  EXPECT_FALSE(store.version_rejected());
}

TEST_F(IoTest, InfoAndClearReportAndRemoveFiles) {
  CacheStore store({.path = path("cache.qsnap")});
  auto entry = make_entry(1);
  entry.run_ms = 12.5;
  store.append(entry);
  store.compact();
  auto second = make_entry(2);
  second.run_ms = 7.5;
  store.append(second);

  const auto info = store.info();
  EXPECT_TRUE(info.snapshot_exists);
  EXPECT_TRUE(info.journal_exists);
  EXPECT_EQ(info.snapshot_version, kFormatVersion);
  EXPECT_EQ(info.snapshot_records, 1u);
  EXPECT_EQ(info.journal_records, 1u);
  EXPECT_EQ(info.live_entries, 2u);
  EXPECT_DOUBLE_EQ(info.saved_run_ms, 20.0);
  EXPECT_GT(info.snapshot_bytes, 0u);

  store.clear();
  EXPECT_FALSE(std::filesystem::exists(path("cache.qsnap")));
  EXPECT_FALSE(std::filesystem::exists(store.journal_path()));
  const auto after = store.info();
  EXPECT_FALSE(after.snapshot_exists);
  EXPECT_EQ(after.live_entries, 0u);
}

TEST_F(IoTest, MissingFilesLoadEmptyAndCompactCreatesNothing) {
  CacheStore store({.path = path("absent.qsnap")});
  EXPECT_TRUE(load_all(store).empty());
  EXPECT_EQ(store.load_skipped(), 0u);
  EXPECT_EQ(store.compact(), 0u);
  EXPECT_FALSE(std::filesystem::exists(path("absent.qsnap")));
}

}  // namespace
}  // namespace qross::io
