// Tests for src/tuning: Random Search, TPE, Gaussian process + expected
// improvement, and the BO loop on analytic objectives.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tuning/bayes_opt.hpp"
#include "tuning/gp.hpp"
#include "tuning/random_search.hpp"
#include "tuning/tpe.hpp"

namespace qross::tuning {
namespace {

double run_tuner(Tuner& tuner, const std::function<double(double)>& objective,
                 int trials) {
  double best = std::numeric_limits<double>::infinity();
  for (int t = 0; t < trials; ++t) {
    const double x = tuner.propose();
    const double value = objective(x);
    best = std::min(best, value);
    tuner.observe({x, value});
  }
  return best;
}

TEST(FiniteObjective, MapsInfinityToPenalty) {
  EXPECT_DOUBLE_EQ(finite_objective(5.0, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(
      finite_objective(std::numeric_limits<double>::infinity(), 100.0), 100.0);
}

TEST(RandomSearch, ProposalsInBounds) {
  RandomSearch tuner(2.0, 9.0, 4);
  for (int i = 0; i < 200; ++i) {
    const double x = tuner.propose();
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 9.0);
  }
}

TEST(RandomSearch, RecordsHistory) {
  RandomSearch tuner(0.0, 1.0, 4);
  tuner.observe({0.5, 1.0});
  tuner.observe({0.25, 2.0});
  EXPECT_EQ(tuner.history().size(), 2u);
  EXPECT_EQ(tuner.name(), "random");
}

TEST(RandomSearch, DeterministicUnderSeed) {
  RandomSearch a(0.0, 1.0, 7), b(0.0, 1.0, 7);
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(a.propose(), b.propose());
}

TEST(Tpe, StartupIsRandomInBounds) {
  TpeTuner tuner(1.0, 100.0, 5);
  for (int i = 0; i < 5; ++i) {
    const double x = tuner.propose();
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
    tuner.observe({x, 1.0});
  }
}

TEST(Tpe, ConcentratesNearGoodRegion) {
  // After observing a clear quadratic structure, TPE proposals should land
  // near the minimum more often than uniform random would (~10% for the
  // middle tenth of the interval).
  TpeTuner tuner(0.0, 100.0, 6);
  auto objective = [](double x) { return (x - 50.0) * (x - 50.0); };
  for (int t = 0; t < 30; ++t) {
    const double x = tuner.propose();
    tuner.observe({x, objective(x)});
  }
  int near = 0;
  const int probes = 40;
  for (int t = 0; t < probes; ++t) {
    const double x = tuner.propose();
    if (std::abs(x - 50.0) < 15.0) ++near;
    tuner.observe({x, objective(x)});
  }
  EXPECT_GT(near, probes / 3) << "TPE not exploiting the good region";
}

TEST(Tpe, BeatsItsOwnStartupPhase) {
  auto objective = [](double x) {
    return std::pow(x - 30.0, 2) + 10.0 * std::sin(x);
  };
  TpeTuner tuner(0.0, 100.0, 8);
  const double best = run_tuner(tuner, objective, 40);
  // Global minimum value is ~ -9.5 at x ~ 29.5; 40 trials should get close.
  EXPECT_LT(best, 10.0);
}

TEST(Gp, PosteriorInterpolatesTrainingPoints) {
  GaussianProcess gp;
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{1.0, 2.0, 0.5, -1.0};
  gp.fit(xs, ys);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto post = gp.predict(xs[i]);
    EXPECT_NEAR(post.mean, ys[i], 0.35) << "x=" << xs[i];
    // Posterior uncertainty at a training point is below the prior scale.
    EXPECT_LT(post.stddev, 1.0);
  }
}

TEST(Gp, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp;
  gp.fit({0.0, 1.0}, {0.0, 1.0});
  const auto near = gp.predict(0.5);
  const auto far = gp.predict(30.0);
  EXPECT_GT(far.stddev, near.stddev);
  // Far from data the mean reverts toward the training mean.
  EXPECT_NEAR(far.mean, 0.5, 0.1);
}

TEST(Gp, SinglePointFit) {
  GaussianProcess gp;
  gp.fit({2.0}, {7.0});
  EXPECT_NEAR(gp.predict(2.0).mean, 7.0, 1e-6);
}

TEST(Gp, RejectsMisuse) {
  GaussianProcess gp;
  EXPECT_THROW(gp.predict(0.0), std::invalid_argument);
  EXPECT_THROW(gp.fit({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(ExpectedImprovement, ZeroWhenCertainAndWorse) {
  EXPECT_DOUBLE_EQ(expected_improvement(10.0, 0.0, 5.0), 0.0);
  EXPECT_NEAR(expected_improvement(1.0, 0.0, 5.0, 0.0), 4.0, 1e-12);
}

TEST(ExpectedImprovement, IncreasesWithUncertainty) {
  const double low = expected_improvement(5.0, 0.1, 5.0);
  const double high = expected_improvement(5.0, 2.0, 5.0);
  EXPECT_GT(high, low);
  EXPECT_GT(low, 0.0);
}

TEST(BayesOpt, WarmupCountMatchesPaperSetting) {
  BayesOptTuner tuner(1.0, 100.0, 9);
  // The paper draws 5 uniform samples before modelling; our default too.
  for (int i = 0; i < 5; ++i) {
    const double x = tuner.propose();
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
    tuner.observe({x, 1.0 + i});
  }
  EXPECT_EQ(tuner.history().size(), 5u);
  // Next proposal is model-based and must not throw.
  const double x = tuner.propose();
  EXPECT_GE(x, 1.0);
  EXPECT_LE(x, 100.0);
}

TEST(BayesOpt, FindsSmoothMinimum) {
  auto objective = [](double x) { return (x - 42.0) * (x - 42.0) / 100.0; };
  BayesOptTuner tuner(0.0, 100.0, 10);
  const double best = run_tuner(tuner, objective, 25);
  EXPECT_LT(best, 0.5) << "BO failed to approach the minimum";
}

TEST(BayesOpt, OutperformsSingleRandomDraw) {
  // Sanity: 20 BO trials on a smooth function beat the expected quality of
  // a few random draws.
  auto objective = [](double x) {
    return 5.0 + std::sin(x / 5.0) + 0.002 * (x - 60.0) * (x - 60.0);
  };
  BayesOptTuner bo(0.0, 100.0, 12);
  const double bo_best = run_tuner(bo, objective, 20);
  RandomSearch rs(0.0, 100.0, 12);
  const double rs_best = run_tuner(rs, objective, 5);
  EXPECT_LE(bo_best, rs_best + 1e-9);
}

TEST(BayesOpt, PosteriorAccessor) {
  BayesOptTuner tuner(0.0, 10.0, 13);
  EXPECT_THROW(tuner.posterior(1.0), std::invalid_argument);
  for (int i = 0; i < 6; ++i) {
    const double x = tuner.propose();
    tuner.observe({x, x * x});
  }
  tuner.propose();  // triggers fit
  const auto post = tuner.posterior(5.0);
  EXPECT_TRUE(std::isfinite(post.mean));
  EXPECT_GE(post.stddev, 0.0);
}

}  // namespace
}  // namespace qross::tuning
