// Tests for the capacitated allocation module and the slack-variable
// inequality expansion it exercises.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "problems/allocation/allocation.hpp"
#include "qubo/builder.hpp"
#include "solvers/batch_runner.hpp"
#include "solvers/simulated_annealer.hpp"

namespace qross::allocation {
namespace {

AllocationInstance tiny() {
  // 3 tasks, 2 machines.  Loads {2, 3, 4}; capacities {5, 5} force a split.
  return AllocationInstance("tiny", 3, 2,
                            {1, 4,    // task 0: cheap on machine 0
                             5, 2,    // task 1: cheap on machine 1
                             3, 3},   // task 2: indifferent
                            {2, 3, 4}, {5, 5});
}

TEST(Allocation, CostAndLoadAccounting) {
  const AllocationInstance inst = tiny();
  const Assignment a{0, 1, 0};  // machine 0 gets tasks 0 and 2
  EXPECT_DOUBLE_EQ(inst.total_cost(a), 1 + 2 + 3);
  EXPECT_DOUBLE_EQ(inst.machine_load(a, 0), 6.0);
  EXPECT_DOUBLE_EQ(inst.machine_load(a, 1), 3.0);
  EXPECT_FALSE(inst.respects_capacities(a));  // 6 > 5
  // The only feasible splits pair tasks {0, 1} against task {2}.
  EXPECT_TRUE(inst.respects_capacities(Assignment{0, 0, 1}));
  EXPECT_TRUE(inst.respects_capacities(Assignment{1, 1, 0}));
  EXPECT_FALSE(inst.respects_capacities(Assignment{0, 1, 1}));  // 3+4 > 5
}

TEST(Allocation, ValidationRejectsBadInput) {
  EXPECT_THROW(AllocationInstance("x", 2, 2, {1, 2, 3}, {1, 1}, {2, 2}),
               std::invalid_argument);
  EXPECT_THROW(
      AllocationInstance("x", 1, 1, {-1}, {1}, {2}),
      std::invalid_argument);
  const AllocationInstance inst = tiny();
  EXPECT_THROW(inst.total_cost(Assignment{0, 1, 5}), std::invalid_argument);
}

// --- slack-variable inequality expansion (qubo::ConstrainedProblem) -----------

TEST(Inequality, SlackMakesSatisfiedInequalitiesFeasible) {
  // x0 + 2 x1 + 3 x2 <= 3 over binary x.
  qubo::ConstrainedProblem problem(3);
  qubo::LinearInequality ineq;
  ineq.vars = {0, 1, 2};
  ineq.coeffs = {1.0, 2.0, 3.0};
  ineq.rhs = 3.0;
  const auto slack = problem.add_inequality_constraint(ineq);
  ASSERT_EQ(slack.size(), 2u);  // range 3 -> 2 bits cover {0..3}
  EXPECT_EQ(problem.num_vars(), 5u);

  // Every binary assignment of (x0, x1, x2): feasibility of the QUBO
  // (with the best slack choice) must equal satisfaction of the inequality.
  for (std::size_t mask = 0; mask < 8; ++mask) {
    std::vector<std::uint8_t> x(5, 0);
    double lhs = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      x[i] = (mask >> i) & 1;
      lhs += x[i] * ineq.coeffs[i];
    }
    bool some_slack_feasible = false;
    for (std::size_t s = 0; s < 4; ++s) {
      x[3] = s & 1;
      x[4] = (s >> 1) & 1;
      if (problem.is_feasible(x)) some_slack_feasible = true;
    }
    EXPECT_EQ(some_slack_feasible, lhs <= ineq.rhs) << "mask " << mask;
  }
}

TEST(Inequality, GranularityControlsBitCount) {
  qubo::ConstrainedProblem problem(2);
  qubo::LinearInequality ineq;
  ineq.vars = {0, 1};
  ineq.coeffs = {10.0, 10.0};
  ineq.rhs = 20.0;
  // Range 20 at granularity 10 -> 2 steps -> 2 bits; at 1 -> 20 steps -> 5.
  qubo::ConstrainedProblem coarse(2);
  const auto coarse_slack = coarse.add_inequality_constraint(ineq, 10.0);
  EXPECT_EQ(coarse_slack.size(), 2u);
  qubo::ConstrainedProblem fine(2);
  const auto fine_slack = fine.add_inequality_constraint(ineq, 1.0);
  EXPECT_EQ(fine_slack.size(), 5u);
}

TEST(Inequality, RejectsInfeasibleAndMalformed) {
  qubo::ConstrainedProblem problem(2);
  qubo::LinearInequality bad;
  bad.vars = {0};
  bad.coeffs = {1.0, 2.0};
  EXPECT_THROW(problem.add_inequality_constraint(bad), std::invalid_argument);
  qubo::LinearInequality impossible;
  impossible.vars = {0, 1};
  impossible.coeffs = {-1.0, -1.0};
  impossible.rhs = -5.0;  // lhs minimum is -2 > rhs: never satisfiable
  EXPECT_THROW(problem.add_inequality_constraint(impossible),
               std::invalid_argument);
  EXPECT_THROW(problem.add_inequality_constraint(qubo::LinearInequality{}, 0.0),
               std::invalid_argument);
}

// --- QUBO round trip -----------------------------------------------------------

TEST(AllocationQuboTest, EncodeIsFeasibleAndCostsMatch) {
  const AllocationInstance inst = tiny();
  const AllocationQubo qubo = build_allocation_problem(inst);
  // Decision block 6 vars + slack for two capacity rows.
  EXPECT_GT(qubo.problem.num_vars(), 6u);

  const Assignment good{0, 0, 1};
  ASSERT_TRUE(inst.respects_capacities(good));
  const auto bits = encode_allocation(qubo, inst, good);
  EXPECT_TRUE(qubo.problem.is_feasible(bits))
      << "capacity-respecting assignment must be QUBO-feasible";
  EXPECT_NEAR(qubo.problem.objective(bits), inst.total_cost(good), 1e-9);

  const auto decoded = decode_allocation(inst, bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, good);
}

TEST(AllocationQuboTest, OverloadedAssignmentIsInfeasibleForAllSlack) {
  const AllocationInstance inst = tiny();
  const AllocationQubo qubo = build_allocation_problem(inst);
  const Assignment overloaded{0, 0, 0};  // load 9 on capacity-5 machine
  auto bits = encode_allocation(qubo, inst, overloaded);
  // No slack setting can fix an exceeded capacity: scan all slack combos.
  const std::size_t decision = inst.num_tasks() * inst.num_machines();
  const std::size_t slack_bits = qubo.problem.num_vars() - decision;
  bool any_feasible = false;
  for (std::size_t mask = 0; mask < (std::size_t{1} << slack_bits); ++mask) {
    for (std::size_t j = 0; j < slack_bits; ++j) {
      bits[decision + j] = (mask >> j) & 1;
    }
    if (qubo.problem.is_feasible(bits)) any_feasible = true;
  }
  EXPECT_FALSE(any_feasible);
}

class AllocationEndToEnd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocationEndToEnd, SaFindsFeasibleNearOptimalAllocation) {
  const AllocationInstance inst =
      generate_random_allocation(6, 3, GetParam());
  const AllocationExact exact = solve_exact_allocation(inst);
  ASSERT_TRUE(exact.feasible);

  const AllocationQubo qubo = build_allocation_problem(inst);
  solvers::BatchRunner runner(qubo.problem,
                              std::make_shared<solvers::SimulatedAnnealer>(),
                              solvers::SolveOptions{.num_replicas = 32,
                                                    .num_sweeps = 400,
                                                    .seed = GetParam()});
  // Penalty weight: comfortably above the largest cost coefficient.
  const auto sample = runner.run(60.0);
  ASSERT_TRUE(sample.stats.has_feasible()) << "SA found no feasible allocation";
  const auto decoded = decode_allocation(inst, *sample.stats.best_feasible);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(inst.respects_capacities(*decoded));
  EXPECT_GE(inst.total_cost(*decoded), exact.cost - 1e-9);
  EXPECT_LE(inst.total_cost(*decoded), exact.cost * 1.5)
      << "solver allocation more than 50% above optimal";
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocationEndToEnd,
                         ::testing::Values(1, 2, 3));

TEST(AllocationExactTest, MatchesHandComputedOptimum) {
  const AllocationInstance inst = tiny();
  const AllocationExact exact = solve_exact_allocation(inst);
  ASSERT_TRUE(exact.feasible);
  // Capacities only allow pairing tasks {0, 1} against task {2}:
  //   {0, 0, 1}: loads (5, 4), cost 1 + 5 + 3 = 9
  //   {1, 1, 0}: loads (4, 5), cost 4 + 2 + 3 = 9
  EXPECT_DOUBLE_EQ(exact.cost, 9.0);
}

TEST(AllocationGenerator, DeterministicAndFeasibleByConstruction) {
  const AllocationInstance a = generate_random_allocation(8, 3, 7);
  const AllocationInstance b = generate_random_allocation(8, 3, 7);
  EXPECT_EQ(a.name(), b.name());
  for (std::size_t t = 0; t < 8; ++t) EXPECT_EQ(a.load(t), b.load(t));
  // With slack factor 1.3 a feasible assignment must exist.
  EXPECT_TRUE(solve_exact_allocation(a).feasible);
}

}  // namespace
}  // namespace qross::allocation
