// Tests for src/problems/qap: the QAPLIB substrate used by the hypothesis
// check (paper §3.1 footnote 2).

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "problems/qap/qap.hpp"

namespace qross::qap {
namespace {

QapInstance tiny() {
  // 3 facilities; flows and distances chosen so the optimum pairs the
  // heavy flow (0<->1, weight 9) with the short edge (0<->1, length 1).
  return QapInstance("tiny", 3,
                     {0, 9, 1,   //
                      9, 0, 1,   //
                      1, 1, 0},
                     {0, 1, 5,   //
                      1, 0, 5,   //
                      5, 5, 0});
}

TEST(Qap, CostMatchesHandComputation) {
  const QapInstance inst = tiny();
  // identity assignment: cost = sum F_ij * D_ij over ordered pairs.
  const Assignment identity{0, 1, 2};
  EXPECT_DOUBLE_EQ(inst.cost(identity), 2 * (9 * 1 + 1 * 5 + 1 * 5));
  // swap facilities 1 and 2: heavy flow now spans the long edge.
  const Assignment swapped{0, 2, 1};
  EXPECT_DOUBLE_EQ(inst.cost(swapped), 2 * (9 * 5 + 1 * 5 + 1 * 1));
}

TEST(Qap, ValidationRejectsBadInput) {
  EXPECT_THROW(QapInstance("bad", 2, {0, 1, 1, 1}, {0, 1, 1, 0}),
               std::invalid_argument);  // nonzero flow diagonal
  EXPECT_THROW(QapInstance("bad", 2, {0, -1, -1, 0}, {0, 1, 1, 0}),
               std::invalid_argument);  // negative flow
  EXPECT_THROW(QapInstance("bad", 2, {0, 1}, {0, 1, 1, 0}),
               std::invalid_argument);  // wrong size
  const QapInstance inst = tiny();
  EXPECT_FALSE(inst.is_valid_assignment(Assignment{0, 1}));
  EXPECT_FALSE(inst.is_valid_assignment(Assignment{0, 1, 1}));
  EXPECT_FALSE(inst.is_valid_assignment(Assignment{0, 1, 3}));
  EXPECT_THROW(inst.cost(Assignment{0, 0, 0}), std::invalid_argument);
}

TEST(Qap, EncodeDecodeRoundTrip) {
  const QapInstance inst = tiny();
  const Assignment assignment{2, 0, 1};
  const auto bits = encode_assignment(inst, assignment);
  const auto decoded = decode_assignment(inst, bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, assignment);
}

TEST(Qap, DecodeRejectsNonPermutations) {
  const QapInstance inst = tiny();
  std::vector<std::uint8_t> bits(9, 0);
  EXPECT_FALSE(decode_assignment(inst, bits).has_value());
  bits[variable_index(0, 0, 3)] = 1;
  bits[variable_index(1, 0, 3)] = 1;  // two facilities at location 0
  EXPECT_FALSE(decode_assignment(inst, bits).has_value());
}

TEST(Qap, QuboEnergyEqualsCostOnFeasible) {
  Rng rng(4);
  const QapInstance inst = generate_random_qap(5, 11);
  const auto problem = build_qap_problem(inst);
  EXPECT_EQ(problem.num_vars(), 25u);
  EXPECT_EQ(problem.num_constraints(), 10u);
  for (int rep = 0; rep < 12; ++rep) {
    const Assignment assignment = rng.permutation(5);
    const auto bits = encode_assignment(inst, assignment);
    EXPECT_TRUE(problem.is_feasible(bits));
    EXPECT_NEAR(problem.objective(bits), inst.cost(assignment), 1e-9);
    EXPECT_NEAR(problem.to_qubo(33.0).energy(bits), inst.cost(assignment),
                1e-9);
  }
}

TEST(Qap, QuboPenalisesInfeasible) {
  const QapInstance inst = tiny();
  const auto problem = build_qap_problem(inst);
  std::vector<std::uint8_t> empty(9, 0);
  EXPECT_DOUBLE_EQ(problem.violation(empty), 6.0);  // 2n unit violations
}

class QapExactParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QapExactParam, ExactBeatsLocalSearchAndIsPermutationOptimal) {
  const QapInstance inst = generate_random_qap(6, GetParam());
  const QapExact exact = solve_exact_qap(inst);
  EXPECT_TRUE(inst.is_valid_assignment(exact.assignment));
  EXPECT_NEAR(inst.cost(exact.assignment), exact.cost, 1e-9);

  // Exhaustive check against all 720 permutations.
  Assignment p{0, 1, 2, 3, 4, 5};
  double best = std::numeric_limits<double>::infinity();
  do {
    best = std::min(best, inst.cost(p));
  } while (std::next_permutation(p.begin(), p.end()));
  EXPECT_NEAR(exact.cost, best, 1e-9);

  // Local search from any start can only match or exceed the optimum.
  Rng rng(GetParam());
  const Assignment polished = local_search_qap(inst, rng.permutation(6));
  EXPECT_GE(inst.cost(polished), exact.cost - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QapExactParam, ::testing::Values(1, 2, 3, 4));

TEST(Qap, LocalSearchNeverWorsens) {
  Rng rng(9);
  const QapInstance inst = generate_random_qap(9, 21);
  for (int rep = 0; rep < 6; ++rep) {
    const Assignment start = rng.permutation(9);
    const double before = inst.cost(start);
    const Assignment after = local_search_qap(inst, start);
    EXPECT_LE(inst.cost(after), before + 1e-9);
  }
}

TEST(Qap, ReferenceUsesExactForSmall) {
  const QapInstance inst = generate_random_qap(7, 31);
  const QapExact reference = reference_qap(inst);
  EXPECT_NEAR(reference.cost, solve_exact_qap(inst).cost, 1e-9);
}

TEST(Qap, QaplibParserRoundTrip) {
  const std::string text =
      "3\n"
      "0 9 1\n"
      "9 0 1\n"
      "1 1 0\n"
      "\n"
      "0 1 5\n"
      "1 0 5\n"
      "5 5 0\n";
  const QapInstance parsed = parse_qaplib_string(text, "tiny");
  const QapInstance expected = tiny();
  EXPECT_EQ(parsed.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(parsed.flow(i, j), expected.flow(i, j));
      EXPECT_DOUBLE_EQ(parsed.distance(i, j), expected.distance(i, j));
    }
  }
}

TEST(Qap, QaplibParserRejectsTruncation) {
  EXPECT_THROW(parse_qaplib_string("3\n0 1 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_qaplib_string(""), std::invalid_argument);
}

TEST(Qap, GeneratorDeterministicSymmetric) {
  const QapInstance a = generate_random_qap(8, 5);
  const QapInstance b = generate_random_qap(8, 5);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_DOUBLE_EQ(a.flow(i, j), b.flow(i, j));
      EXPECT_DOUBLE_EQ(a.flow(i, j), a.flow(j, i));
      EXPECT_DOUBLE_EQ(a.distance(i, j), a.distance(j, i));
    }
  }
}

}  // namespace
}  // namespace qross::qap
