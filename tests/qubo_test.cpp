// Tests for src/qubo: model energy, incremental evaluation, the penalty
// builder, and batch statistics.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "qubo/batch.hpp"
#include "qubo/builder.hpp"
#include "qubo/incremental.hpp"
#include "qubo/model.hpp"

namespace qross::qubo {
namespace {

QuboModel random_model(std::size_t n, std::uint64_t seed, double density = 0.7) {
  Rng rng(seed);
  QuboModel model(n);
  model.set_offset(rng.uniform(-5.0, 5.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      if (rng.uniform() < density) {
        model.add_term(i, j, rng.uniform(-10.0, 10.0));
      }
    }
  }
  return model;
}

Bits random_bits(std::size_t n, Rng& rng) {
  Bits x(n);
  for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;
  return x;
}

/// Reference energy computed straight from the definition.
double brute_energy(const QuboModel& model, const Bits& x) {
  double e = model.offset();
  for (std::size_t i = 0; i < model.num_vars(); ++i) {
    for (std::size_t j = i; j < model.num_vars(); ++j) {
      if (x[i] != 0 && x[j] != 0) e += model.coefficient(i, j);
    }
  }
  return e;
}

TEST(QuboModel, EmptyModelIsOffset) {
  QuboModel model(3);
  model.set_offset(2.5);
  const Bits x{1, 0, 1};
  EXPECT_DOUBLE_EQ(model.energy(x), 2.5);
}

TEST(QuboModel, LinearAndQuadraticTerms) {
  QuboModel model(2);
  model.add_term(0, 0, 1.0);   // linear x0
  model.add_term(1, 1, -2.0);  // linear x1
  model.add_term(0, 1, 4.0);   // interaction
  EXPECT_DOUBLE_EQ(model.energy(Bits{0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(model.energy(Bits{1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(model.energy(Bits{0, 1}), -2.0);
  EXPECT_DOUBLE_EQ(model.energy(Bits{1, 1}), 3.0);
}

TEST(QuboModel, AddTermCanonicalisesIndices) {
  QuboModel model(3);
  model.add_term(2, 0, 1.5);
  model.add_term(0, 2, 2.5);
  EXPECT_DOUBLE_EQ(model.coefficient(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(model.coefficient(2, 0), 4.0);
}

TEST(QuboModel, EnergyMatchesBruteForceOnRandomModels) {
  Rng rng(99);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const QuboModel model = random_model(8, seed);
    for (int rep = 0; rep < 10; ++rep) {
      const Bits x = random_bits(8, rng);
      EXPECT_NEAR(model.energy(x), brute_energy(model, x), 1e-9);
    }
  }
}

TEST(QuboModel, FlipDeltaMatchesEnergyDifference) {
  Rng rng(7);
  const QuboModel model = random_model(10, 4);
  for (int rep = 0; rep < 50; ++rep) {
    Bits x = random_bits(10, rng);
    const auto i = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{10}));
    const double before = model.energy(x);
    const double delta = model.flip_delta(x, i);
    x[i] ^= 1;
    EXPECT_NEAR(before + delta, model.energy(x), 1e-9);
  }
}

TEST(QuboModel, ScaleMultipliesEnergy) {
  Rng rng(5);
  QuboModel model = random_model(6, 11);
  const Bits x = random_bits(6, rng);
  const double before = model.energy(x);
  model.scale(2.5);
  EXPECT_NEAR(model.energy(x), 2.5 * before, 1e-9);
}

TEST(QuboModel, AddScaledComposesEnergies) {
  Rng rng(6);
  QuboModel a = random_model(6, 21);
  const QuboModel b = random_model(6, 22);
  const Bits x = random_bits(6, rng);
  const double ea = a.energy(x);
  const double eb = b.energy(x);
  a.add_scaled(b, 3.0);
  EXPECT_NEAR(a.energy(x), ea + 3.0 * eb, 1e-9);
}

TEST(QuboModel, MaxAbsCoefficient) {
  QuboModel model(3);
  model.add_term(0, 1, -7.0);
  model.add_term(2, 2, 3.0);
  EXPECT_DOUBLE_EQ(model.max_abs_coefficient(), 7.0);
}

TEST(QuboModel, NumNonzeros) {
  QuboModel model(4);
  EXPECT_EQ(model.num_nonzeros(), 0u);
  model.add_term(0, 1, 1.0);
  model.add_term(2, 2, -1.0);
  model.add_term(0, 1, -1.0);  // cancels to zero
  EXPECT_EQ(model.num_nonzeros(), 1u);
}

TEST(QuboModel, RejectsOutOfRange) {
  QuboModel model(3);
  EXPECT_THROW(model.add_term(0, 3, 1.0), std::invalid_argument);
  EXPECT_THROW(model.coefficient(3, 0), std::invalid_argument);
  EXPECT_THROW(model.energy(Bits{1, 0}), std::invalid_argument);
}

TEST(QuboModel, IsValidAssignment) {
  QuboModel model(2);
  EXPECT_TRUE(is_valid_assignment(model, Bits{0, 1}));
  EXPECT_FALSE(is_valid_assignment(model, Bits{0}));
  EXPECT_FALSE(is_valid_assignment(model, Bits{0, 2}));
}

// --- incremental evaluator ------------------------------------------------

class IncrementalParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IncrementalParam, RandomFlipSequenceStaysConsistent) {
  const std::size_t n = GetParam();
  const QuboModel model = random_model(n, 1000 + n);
  IncrementalEvaluator eval(model);
  Rng rng(n);
  Bits x = random_bits(n, rng);
  eval.set_state(x);
  EXPECT_NEAR(eval.energy(), model.energy(x), 1e-9);
  for (int step = 0; step < 200; ++step) {
    const auto i = static_cast<std::size_t>(rng.uniform_int(n));
    const double predicted = eval.flip_delta(i);
    EXPECT_NEAR(predicted, model.flip_delta(eval.state(), i), 1e-9);
    eval.apply_flip(i);
    EXPECT_NEAR(eval.energy(), model.energy(eval.state()), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IncrementalParam,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 31));

TEST(Incremental, DoubleFlipIsIdentity) {
  const QuboModel model = random_model(6, 77);
  IncrementalEvaluator eval(model);
  Rng rng(8);
  const Bits x = random_bits(6, rng);
  eval.set_state(x);
  const double before = eval.energy();
  eval.apply_flip(3);
  eval.apply_flip(3);
  EXPECT_NEAR(eval.energy(), before, 1e-9);
  EXPECT_EQ(eval.state(), x);
}

TEST(Incremental, FlipReturnsDelta) {
  const QuboModel model = random_model(5, 13);
  IncrementalEvaluator eval(model);
  const double e0 = eval.energy();
  const double delta = eval.flip(2);
  EXPECT_NEAR(eval.energy(), e0 + delta, 1e-9);
}

// --- constrained problem builder -------------------------------------------

TEST(Builder, PenaltyEqualsSquaredViolation) {
  Rng rng(3);
  ConstrainedProblem problem(6);
  problem.add_constraint({{0, 1, 2}, {1.0, 1.0, 1.0}, 1.0});
  problem.add_constraint({{2, 3, 4, 5}, {1.0, -2.0, 0.5, 1.0}, 0.5});
  for (int rep = 0; rep < 64; ++rep) {
    const Bits x = random_bits(6, rng);
    EXPECT_NEAR(problem.penalty_model().energy(x), problem.violation(x), 1e-9)
        << "violation expansion mismatch";
  }
}

TEST(Builder, QuboEnergyIsObjectivePlusScaledPenalty) {
  Rng rng(4);
  ConstrainedProblem problem(5);
  problem.add_objective_term(0, 1, 2.0);
  problem.add_objective_term(2, 2, -1.0);
  problem.add_objective_offset(0.5);
  problem.add_constraint({{0, 1, 2, 3, 4}, {1, 1, 1, 1, 1}, 2.0});
  for (double a : {0.0, 1.0, 7.5}) {
    const QuboModel qubo = problem.to_qubo(a);
    for (int rep = 0; rep < 32; ++rep) {
      const Bits x = random_bits(5, rng);
      EXPECT_NEAR(qubo.energy(x),
                  problem.objective(x) + a * problem.violation(x), 1e-9);
    }
  }
}

TEST(Builder, FeasibilityMatchesViolation) {
  ConstrainedProblem problem(3);
  problem.add_constraint({{0, 1, 2}, {1, 1, 1}, 1.0});
  EXPECT_TRUE(problem.is_feasible(Bits{1, 0, 0}));
  EXPECT_TRUE(problem.is_feasible(Bits{0, 0, 1}));
  EXPECT_FALSE(problem.is_feasible(Bits{1, 1, 0}));
  EXPECT_FALSE(problem.is_feasible(Bits{0, 0, 0}));
}

TEST(Builder, RejectsMalformedConstraint) {
  ConstrainedProblem problem(3);
  EXPECT_THROW(problem.add_constraint({{0, 1}, {1.0}, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(problem.add_constraint({{5}, {1.0}, 1.0}),
               std::invalid_argument);
}

TEST(Builder, RejectsNonFiniteRelaxation) {
  ConstrainedProblem problem(2);
  EXPECT_THROW(problem.to_qubo(std::nan("")), std::invalid_argument);
}

// --- batch statistics -------------------------------------------------------

TEST(Batch, BestIndexPicksLowestEnergy) {
  SolveBatch batch;
  batch.results = {{Bits{0}, 3.0}, {Bits{1}, -1.0}, {Bits{0}, 2.0}};
  EXPECT_EQ(batch.best_index(), 1u);
}

TEST(Batch, BestIndexThrowsOnEmpty) {
  SolveBatch batch;
  EXPECT_THROW(batch.best_index(), std::invalid_argument);
}

TEST(Batch, EvaluateBatchComputesPaperQuantities) {
  // One-hot constraint over two variables; x = {1,0} and {0,1} feasible.
  ConstrainedProblem problem(2);
  problem.add_objective_term(0, 0, 5.0);
  problem.add_objective_term(1, 1, 3.0);
  problem.add_constraint({{0, 1}, {1, 1}, 1.0});

  SolveBatch batch;
  batch.results.push_back({Bits{1, 0}, 0.0});  // feasible, obj 5
  batch.results.push_back({Bits{0, 1}, 0.0});  // feasible, obj 3
  batch.results.push_back({Bits{1, 1}, 0.0});  // infeasible, obj 8
  batch.results.push_back({Bits{0, 0}, 0.0});  // infeasible, obj 0

  const BatchStats stats = evaluate_batch(problem, batch);
  EXPECT_EQ(stats.batch_size, 4u);
  EXPECT_DOUBLE_EQ(stats.pf, 0.5);
  EXPECT_DOUBLE_EQ(stats.energy_avg, 4.0);  // mean of {5,3,8,0}
  EXPECT_NEAR(stats.energy_std, std::sqrt(8.5), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min_fitness, 3.0);
  ASSERT_TRUE(stats.has_feasible());
  EXPECT_EQ(*stats.best_feasible, (Bits{0, 1}));
}

TEST(Batch, AllInfeasibleYieldsInfiniteFitness) {
  ConstrainedProblem problem(2);
  problem.add_constraint({{0, 1}, {1, 1}, 1.0});
  SolveBatch batch;
  batch.results.push_back({Bits{1, 1}, 0.0});
  const BatchStats stats = evaluate_batch(problem, batch);
  EXPECT_DOUBLE_EQ(stats.pf, 0.0);
  EXPECT_TRUE(std::isinf(stats.min_fitness));
  EXPECT_FALSE(stats.has_feasible());
}

TEST(Batch, EmptyBatch) {
  ConstrainedProblem problem(1);
  const BatchStats stats = evaluate_batch(problem, SolveBatch{});
  EXPECT_EQ(stats.batch_size, 0u);
  EXPECT_FALSE(stats.has_feasible());
}

}  // namespace
}  // namespace qross::qubo
