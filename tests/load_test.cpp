// Tests for src/load/: the arrival-schedule generator's determinism and
// statistics, and the open-loop replayer end-to-end against an in-process
// server on loopback TCP.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "load/replayer.hpp"
#include "load/report.hpp"
#include "load/workload.hpp"
#include "net/server.hpp"
#include "service/fingerprint.hpp"
#include "service/solve_service.hpp"

namespace qross::load {
namespace {

WorkloadConfig two_client_config() {
  WorkloadConfig config;
  config.rate_per_sec = 500.0;
  config.duration_sec = 2.0;
  config.hit_ratio = 0.3;
  config.hot_models = 4;
  config.seed = 42;
  ClientSpec greedy;
  greedy.client_id = "greedy";
  greedy.mix_weight = 3.0;
  ClientSpec polite;
  polite.client_id = "polite";
  polite.mix_weight = 1.0;
  polite.priority = 1;
  polite.deadline_mean_ms = 100;
  polite.deadline_jitter = 0.2;
  config.clients = {greedy, polite};
  return config;
}

void expect_identical(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    // Bit-for-bit: exact double equality is the point.
    EXPECT_EQ(a.jobs[i].arrival_sec, b.jobs[i].arrival_sec) << i;
    EXPECT_EQ(a.jobs[i].client, b.jobs[i].client) << i;
    EXPECT_EQ(a.jobs[i].model_seed, b.jobs[i].model_seed) << i;
    EXPECT_EQ(a.jobs[i].hot, b.jobs[i].hot) << i;
    EXPECT_EQ(a.jobs[i].priority, b.jobs[i].priority) << i;
    EXPECT_EQ(a.jobs[i].deadline_ms, b.jobs[i].deadline_ms) << i;
  }
}

TEST(LoadScheduleTest, PoissonScheduleIsBitForBitReproducible) {
  const auto config = two_client_config();
  expect_identical(generate_schedule(config), generate_schedule(config));
}

TEST(LoadScheduleTest, BurstyScheduleIsBitForBitReproducible) {
  auto config = two_client_config();
  config.arrivals = ArrivalKind::bursty;
  config.burst_on_sec = 0.04;
  config.burst_off_sec = 0.06;
  expect_identical(generate_schedule(config), generate_schedule(config));
}

TEST(LoadScheduleTest, DifferentSeedsProduceDifferentSchedules) {
  auto config = two_client_config();
  const auto a = generate_schedule(config);
  config.seed = 43;
  const auto b = generate_schedule(config);
  ASSERT_FALSE(a.jobs.empty());
  ASSERT_FALSE(b.jobs.empty());
  EXPECT_NE(a.jobs.front().arrival_sec, b.jobs.front().arrival_sec);
}

TEST(LoadScheduleTest, PoissonInterArrivalMeanMatchesRate) {
  WorkloadConfig config;
  config.rate_per_sec = 2000.0;
  config.duration_sec = 10.0;
  config.seed = 7;
  const auto schedule = generate_schedule(config);
  ASSERT_GT(schedule.jobs.size(), 1000u);
  double previous = 0.0;
  double total_gap = 0.0;
  for (const auto& job : schedule.jobs) {
    EXPECT_GE(job.arrival_sec, previous);  // sorted
    EXPECT_LT(job.arrival_sec, config.duration_sec);
    total_gap += job.arrival_sec - previous;
    previous = job.arrival_sec;
  }
  const double mean_gap =
      total_gap / static_cast<double>(schedule.jobs.size());
  EXPECT_NEAR(mean_gap, 1.0 / config.rate_per_sec,
              0.05 / config.rate_per_sec);
}

TEST(LoadScheduleTest, BurstyLongRunRateMatchesConfigured) {
  WorkloadConfig config;
  config.arrivals = ArrivalKind::bursty;
  config.rate_per_sec = 1000.0;
  config.duration_sec = 50.0;  // hundreds of on/off phases → tight mean
  config.burst_on_sec = 0.05;
  config.burst_off_sec = 0.05;
  config.seed = 9;
  const auto schedule = generate_schedule(config);
  const double realized_rate =
      static_cast<double>(schedule.jobs.size()) / config.duration_sec;
  // Phase-length randomness makes bursty counts noisier than Poisson; 15%
  // is ~3 sigma at this horizon.
  EXPECT_NEAR(realized_rate, config.rate_per_sec,
              0.15 * config.rate_per_sec);
  // And the arrivals must actually be bursty: with a 50% duty cycle, some
  // inter-arrival gap should span an OFF phase (≫ the in-burst mean gap).
  double max_gap = 0.0;
  double previous = 0.0;
  for (const auto& job : schedule.jobs) {
    max_gap = std::max(max_gap, job.arrival_sec - previous);
    previous = job.arrival_sec;
  }
  EXPECT_GT(max_gap, 10.0 / config.rate_per_sec);
}

TEST(LoadScheduleTest, ClientMixFollowsWeights) {
  auto config = two_client_config();  // greedy 3 : polite 1
  config.rate_per_sec = 2000.0;
  config.duration_sec = 10.0;
  const auto schedule = generate_schedule(config);
  std::size_t greedy = 0;
  for (const auto& job : schedule.jobs) {
    if (job.client == 0) ++greedy;
  }
  const double share =
      static_cast<double>(greedy) / static_cast<double>(schedule.jobs.size());
  EXPECT_NEAR(share, 0.75, 0.03);
}

TEST(LoadScheduleTest, DeadlinesRespectMeanAndJitterBounds) {
  const auto schedule = generate_schedule(two_client_config());
  std::size_t with_deadline = 0;
  for (const auto& job : schedule.jobs) {
    if (job.client == 0) {
      EXPECT_EQ(job.deadline_ms, 0u);  // greedy spec has none
      EXPECT_EQ(job.priority, 0);
    } else {
      // polite: mean 100, jitter 0.2 → [80, 120]
      EXPECT_GE(job.deadline_ms, 80u);
      EXPECT_LE(job.deadline_ms, 120u);
      EXPECT_EQ(job.priority, 1);
      ++with_deadline;
    }
  }
  EXPECT_GT(with_deadline, 0u);
}

TEST(LoadScheduleTest, HotJobsDrawFromSmallSeedSetFreshAreUnique) {
  const auto schedule = generate_schedule(two_client_config());
  std::set<std::uint64_t> hot_seeds;
  std::set<std::uint64_t> fresh_seeds;
  std::size_t hot = 0;
  std::size_t fresh = 0;
  for (const auto& job : schedule.jobs) {
    if (job.hot) {
      hot_seeds.insert(job.model_seed);
      ++hot;
    } else {
      fresh_seeds.insert(job.model_seed);
      ++fresh;
    }
  }
  EXPECT_LE(hot_seeds.size(), schedule.config.hot_models);
  EXPECT_EQ(fresh_seeds.size(), fresh);  // never repeats
  const double hot_share = static_cast<double>(hot) /
                           static_cast<double>(schedule.jobs.size());
  EXPECT_NEAR(hot_share, schedule.config.hit_ratio, 0.05);
  // Equal model seeds materialize byte-identical models — the property that
  // turns hit_ratio into server-side cache hits.
  const ScheduledJob* first_hot = nullptr;
  for (const auto& job : schedule.jobs) {
    if (!job.hot) continue;
    if (first_hot == nullptr) {
      first_hot = &job;
    } else if (job.model_seed == first_hot->model_seed) {
      const auto a = materialize_model(schedule.config, *first_hot);
      const auto b = materialize_model(schedule.config, job);
      EXPECT_EQ(service::fingerprint_model(a), service::fingerprint_model(b));
      break;
    }
  }
}

TEST(LoadScheduleTest, InvalidConfigsThrow) {
  WorkloadConfig config;
  config.rate_per_sec = 0.0;
  EXPECT_THROW(generate_schedule(config), std::invalid_argument);
  config = WorkloadConfig{};
  config.hit_ratio = 1.5;
  EXPECT_THROW(generate_schedule(config), std::invalid_argument);
  config = WorkloadConfig{};
  config.arrivals = ArrivalKind::bursty;
  config.burst_on_sec = 0.0;
  EXPECT_THROW(generate_schedule(config), std::invalid_argument);
  config = WorkloadConfig{};
  config.clients.push_back(ClientSpec{});
  config.clients.back().mix_weight = -1.0;
  EXPECT_THROW(generate_schedule(config), std::invalid_argument);
}

TEST(LoadScheduleTest, EmptyClientListGetsDefaultClient) {
  WorkloadConfig config;
  config.rate_per_sec = 200.0;
  config.duration_sec = 0.5;
  const auto schedule = generate_schedule(config);
  ASSERT_EQ(schedule.config.clients.size(), 1u);
  for (const auto& job : schedule.jobs) EXPECT_EQ(job.client, 0u);
}

// --- end-to-end replay over loopback TCP ------------------------------------

struct LiveServer {
  service::SolveService svc;
  net::Server server;

  explicit LiveServer(const service::ServiceConfig& config)
      : svc(config), server(svc, listen_config()) {
    std::string error;
    if (!server.start(&error)) {
      ADD_FAILURE() << "server start failed: " << error;
    }
  }
  ~LiveServer() { server.stop(); }

  static net::ServerConfig listen_config() {
    net::ServerConfig config;
    config.listen.push_back(*net::Endpoint::parse("tcp:127.0.0.1:0"));
    return config;
  }
  net::Endpoint endpoint() const { return server.endpoints().front(); }
};

TEST(LoadReplayTest, AccountsEveryScheduledJobAgainstLiveServer) {
  service::ServiceConfig service_config;
  service_config.num_workers = 2;
  service_config.cache_capacity = 64;
  LiveServer live(service_config);

  WorkloadConfig workload;
  workload.rate_per_sec = 300.0;
  workload.duration_sec = 0.3;
  workload.hit_ratio = 0.5;
  workload.hot_models = 2;
  workload.model_vars = 24;
  workload.seed = 5;
  ClientSpec a;
  a.client_id = "alpha";
  ClientSpec b;
  b.client_id = "beta";
  workload.clients = {a, b};
  const auto schedule = generate_schedule(workload);
  ASSERT_GT(schedule.jobs.size(), 20u);

  ReplayConfig replay_config;
  replay_config.server = live.endpoint();
  replay_config.num_replicas = 2;
  replay_config.num_sweeps = 5;
  const auto result = replay(schedule, replay_config);
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.records.size(), schedule.jobs.size());

  const auto summary = summarize(schedule, result);
  EXPECT_EQ(summary.counts.jobs, schedule.jobs.size());
  // No quotas, generous drain: everything must be served.
  EXPECT_EQ(summary.counts.ok, schedule.jobs.size());
  EXPECT_EQ(summary.counts.lost, 0u);
  EXPECT_EQ(summary.counts.shed, 0u);
  // Half the traffic reuses 2 hot models — the server's cache must see it.
  EXPECT_GT(summary.counts.cache_hits, 0u);
  EXPECT_GT(summary.latency.p95_ms, 0.0);
  EXPECT_GE(summary.latency.p99_ms, summary.latency.p50_ms);
  ASSERT_EQ(summary.clients.size(), 2u);
  EXPECT_EQ(summary.clients[0].counts.jobs + summary.clients[1].counts.jobs,
            summary.counts.jobs);
  for (const auto& record : result.records) {
    EXPECT_GE(record.submitted_sec, 0.0);
    EXPECT_GE(record.completed_sec, record.submitted_sec);
    // Open-loop: submission happens at (or just after) the scheduled time,
    // never before.
    EXPECT_GE(record.submitted_sec, record.scheduled_sec);
  }
}

TEST(LoadReplayTest, OverloadAgainstTightQuotasShedsAndStillServes) {
  service::ServiceConfig service_config;
  service_config.num_workers = 1;
  service_config.cache_capacity = 0;  // every admitted job pays a solver run
  service_config.max_queued_per_client = 2;
  service_config.max_inflight_per_client = 4;
  LiveServer live(service_config);

  WorkloadConfig workload;
  workload.rate_per_sec = 500.0;
  workload.duration_sec = 0.4;
  workload.model_vars = 64;
  workload.seed = 11;
  const auto schedule = generate_schedule(workload);

  ReplayConfig replay_config;
  replay_config.server = live.endpoint();
  // Heavy-enough jobs: ~128k flip evaluations each (~100ms on one worker)
  // keeps 1-worker capacity far below the offered 500/s on any machine, so
  // shedding is guaranteed — while staying cheap enough that the <=4
  // inflight jobs at window end drain promptly even under ASAN/TSAN.
  replay_config.num_replicas = 8;
  replay_config.num_sweeps = 250;
  replay_config.drain_timeout_sec = 120;
  const auto result = replay(schedule, replay_config);
  ASSERT_TRUE(result.ok()) << result.error;

  const auto summary = summarize(schedule, result);
  EXPECT_EQ(summary.counts.jobs, schedule.jobs.size());
  EXPECT_GT(summary.counts.shed, 0u);   // quotas actually shed
  EXPECT_GT(summary.counts.ok, 0u);     // but the server kept serving
  EXPECT_EQ(summary.counts.lost, 0u);   // and every refusal was classified
  EXPECT_EQ(summary.counts.failed, 0u);
}

}  // namespace
}  // namespace qross::load
