// Tests for src/nn: matrix algebra, MLP forward/backward (gradient-checked
// against finite differences), losses, Adam, the trainer, serialisation.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "nn/adam.hpp"
#include "nn/loss.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"
#include "nn/trainer.hpp"

namespace qross::nn {
namespace {

TEST(Matrix, MultiplyMatchesManual) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = a.multiply(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, TransposeMultiply) {
  const Matrix a(3, 2, {1, 2, 3, 4, 5, 6});
  const Matrix b(3, 2, {1, 0, 0, 1, 1, 1});
  const Matrix c = a.transpose_multiply(b);  // a^T (2x3) * b (3x2)
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0 * 1 + 3.0 * 0 + 5.0 * 1);
  EXPECT_DOUBLE_EQ(c(1, 1), 2.0 * 0 + 4.0 * 1 + 6.0 * 1);
}

TEST(Matrix, MultiplyTranspose) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b(2, 3, {1, 1, 0, 0, 1, 1});
  const Matrix c = a.multiply_transpose(b);  // a (2x3) * b^T (3x2)
  EXPECT_DOUBLE_EQ(c(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 9.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 11.0);
}

TEST(Matrix, ColumnSums) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix s = a.column_sums();
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(s(0, 2), 9.0);
}

TEST(Matrix, BlockedMultiplyIsBitIdenticalToPerRowMultiply) {
  // The multi-row product takes the register-blocked kernel (4-row blocks,
  // 8-column tiles) while a 1-row product takes the per-row path that also
  // skips exact-zero a[k] terms.  BatchedSurrogate's bit-identity guarantee
  // rests on the two paths agreeing bitwise, so exercise awkward shapes
  // (row and column tails) with ReLU-like data: many exact zeros, mixed
  // signs and magnitudes.
  Rng rng(0xB10C);
  for (const auto [rows, inner, cols] :
       {std::array<std::size_t, 3>{9, 7, 19}, {4, 48, 8}, {6, 25, 48},
        {5, 3, 9}, {12, 1, 17}}) {
    Matrix a(rows, inner);
    Matrix b(inner, cols);
    for (auto& v : a.data()) {
      v = rng.bernoulli(0.4) ? 0.0 : rng.normal(0.0, 3.0);
    }
    for (auto& v : b.data()) v = rng.normal(0.0, 2.0);
    const Matrix blocked = a.multiply(b);
    for (std::size_t r = 0; r < rows; ++r) {
      Matrix single(1, inner);
      std::copy(a.row(r).begin(), a.row(r).end(), single.row(0).begin());
      const Matrix expected = single.multiply(b);
      for (std::size_t c = 0; c < cols; ++c) {
        EXPECT_EQ(blocked(r, c), expected(0, c))
            << rows << "x" << inner << "x" << cols << " row " << r
            << " col " << c;
      }
    }
  }
}

TEST(Matrix, ShapeChecks) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
  EXPECT_THROW(Matrix(2, 2, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Activation, Values) {
  EXPECT_DOUBLE_EQ(apply_activation(Activation::kReLU, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(apply_activation(Activation::kReLU, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(apply_activation(Activation::kIdentity, -3.0), -3.0);
  EXPECT_NEAR(apply_activation(Activation::kTanh, 0.5), std::tanh(0.5), 1e-15);
  EXPECT_DOUBLE_EQ(activation_derivative(Activation::kReLU, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(activation_derivative(Activation::kReLU, 1.0), 1.0);
}

/// Finite-difference gradient check of the full network + loss pipeline.
/// This is the make-or-break test for hand-written backprop.
void gradient_check(Activation hidden, const Loss& loss, double target_lo,
                    double target_hi, int allowed_kink_mismatches = 0) {
  Mlp mlp({3, 5, 4, 2}, hidden, 12345);
  Rng rng(67);
  Matrix x(4, 3);
  for (double& v : x.data()) v = rng.uniform(-1.0, 1.0);
  Matrix y(4, 2);
  for (double& v : y.data()) v = rng.uniform(target_lo, target_hi);

  mlp.zero_gradients();
  Matrix grad;
  const Matrix out = mlp.forward(x);
  loss.evaluate(out, y, grad);
  mlp.backward(grad);

  const auto params = mlp.parameters();
  const auto grads = mlp.gradients();
  const double eps = 1e-6;
  // Check a deterministic sample of parameters (every 7th).  Non-smooth
  // activations (ReLU) can legitimately disagree with central differences
  // when a pre-activation sits within eps of a kink, so callers may allow a
  // small number of mismatches.
  int mismatches = 0;
  for (std::size_t i = 0; i < params.size(); i += 7) {
    const double saved = *params[i];
    Matrix tmp;
    *params[i] = saved + eps;
    const double up = loss.evaluate(mlp.predict(x), y, tmp);
    *params[i] = saved - eps;
    const double down = loss.evaluate(mlp.predict(x), y, tmp);
    *params[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    if (std::abs(*grads[i] - numeric) > 1e-5) {
      ++mismatches;
      if (mismatches > allowed_kink_mismatches) {
        EXPECT_NEAR(*grads[i], numeric, 1e-5)
            << "parameter " << i << " gradient mismatch";
      }
    }
  }
  EXPECT_LE(mismatches, allowed_kink_mismatches);
}

TEST(Mlp, GradientCheckTanhMse) {
  gradient_check(Activation::kTanh, MseLoss{}, -1.0, 1.0);
}

TEST(Mlp, GradientCheckTanhHuber) {
  gradient_check(Activation::kTanh, HuberLoss{0.7}, -2.0, 2.0);
}

TEST(Mlp, GradientCheckTanhBce) {
  gradient_check(Activation::kTanh, BceWithLogitsLoss{}, 0.05, 0.95);
}

TEST(Mlp, GradientCheckReluMse) {
  // ReLU kinks make finite differences unreliable exactly at zero
  // pre-activations; allow a couple of kink hits in the sampled set.
  gradient_check(Activation::kReLU, MseLoss{}, -1.0, 1.0, 2);
}

TEST(Mlp, ForwardAndPredictAgree) {
  Mlp mlp({2, 4, 1}, Activation::kReLU, 5);
  Rng rng(6);
  Matrix x(3, 2);
  for (double& v : x.data()) v = rng.uniform(-2.0, 2.0);
  const Matrix a = mlp.forward(x);
  const Matrix b = mlp.predict(x);
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(Mlp, ParameterCount) {
  const Mlp mlp({3, 5, 2}, Activation::kReLU, 1);
  // (3*5 + 5) + (5*2 + 2) = 32
  EXPECT_EQ(mlp.num_parameters(), 32u);
  EXPECT_EQ(mlp.input_dim(), 3u);
  EXPECT_EQ(mlp.output_dim(), 2u);
}

TEST(Mlp, SaveLoadRoundTrip) {
  Mlp mlp({2, 3, 1}, Activation::kTanh, 9);
  std::stringstream stream;
  mlp.save(stream);
  Mlp loaded = Mlp::load(stream);
  Rng rng(10);
  Matrix x(5, 2);
  for (double& v : x.data()) v = rng.uniform(-1.0, 1.0);
  const Matrix a = mlp.predict(x);
  const Matrix b = loaded.predict(x);
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(Mlp, LoadRejectsGarbage) {
  std::stringstream stream("not an mlp");
  EXPECT_THROW(Mlp::load(stream), std::invalid_argument);
}

TEST(Loss, BceMatchesDefinition) {
  const Matrix pred(1, 2, {0.0, 2.0});  // logits
  const Matrix target(1, 2, {0.5, 1.0});
  Matrix grad;
  const double loss = BceWithLogitsLoss{}.evaluate(pred, target, grad);
  // -[0.5*log(0.5)+0.5*log(0.5)] = log 2 ; -log(sigmoid(2))
  const double expected =
      (std::log(2.0) + -std::log(1.0 / (1.0 + std::exp(-2.0)))) / 2.0;
  EXPECT_NEAR(loss, expected, 1e-12);
  EXPECT_NEAR(grad(0, 0), (0.5 - 0.5) / 2.0, 1e-12);
  EXPECT_NEAR(grad(0, 1), (sigmoid(2.0) - 1.0) / 2.0, 1e-12);
}

TEST(Loss, BceStableForExtremeLogits) {
  const Matrix pred(1, 2, {500.0, -500.0});
  const Matrix target(1, 2, {1.0, 0.0});
  Matrix grad;
  const double loss = BceWithLogitsLoss{}.evaluate(pred, target, grad);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0, 1e-12);
}

TEST(Loss, BceRejectsOutOfRangeTargets) {
  const Matrix pred(1, 1, {0.0});
  const Matrix target(1, 1, {1.5});
  Matrix grad;
  EXPECT_THROW(BceWithLogitsLoss{}.evaluate(pred, target, grad),
               std::invalid_argument);
}

TEST(Loss, HuberQuadraticAndLinearRegions) {
  const HuberLoss huber(1.0);
  Matrix grad;
  // Small error: quadratic, grad = e / n.
  const double small = huber.evaluate(Matrix(1, 1, {0.5}), Matrix(1, 1, {0.0}), grad);
  EXPECT_NEAR(small, 0.125, 1e-12);
  EXPECT_NEAR(grad(0, 0), 0.5, 1e-12);
  // Large error: linear, grad = sign * delta / n.
  const double large = huber.evaluate(Matrix(1, 1, {-3.0}), Matrix(1, 1, {0.0}), grad);
  EXPECT_NEAR(large, 1.0 * (3.0 - 0.5), 1e-12);
  EXPECT_NEAR(grad(0, 0), -1.0, 1e-12);
}

TEST(Loss, MseValueAndGrad) {
  Matrix grad;
  const double loss =
      MseLoss{}.evaluate(Matrix(1, 2, {1.0, 3.0}), Matrix(1, 2, {0.0, 1.0}), grad);
  EXPECT_NEAR(loss, (1.0 + 4.0) / 2.0, 1e-12);
  EXPECT_NEAR(grad(0, 1), 2.0 * 2.0 / 2.0, 1e-12);
}

TEST(Adam, ConvergesOnQuadraticBowl) {
  // Minimise f(p) = sum (p_i - t_i)^2 by feeding Adam analytic gradients.
  std::vector<double> p{5.0, -3.0, 0.5};
  const std::vector<double> target{1.0, 2.0, -0.5};
  std::vector<double> g(3, 0.0);
  std::vector<double*> pp{&p[0], &p[1], &p[2]};
  std::vector<double*> gp{&g[0], &g[1], &g[2]};
  AdamConfig config;
  config.learning_rate = 0.05;
  Adam adam(3, config);
  for (int iter = 0; iter < 2000; ++iter) {
    for (int i = 0; i < 3; ++i) g[i] = 2.0 * (p[i] - target[i]);
    adam.step(pp, gp);
  }
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(p[i], target[i], 1e-3);
  EXPECT_EQ(adam.iterations(), 2000u);
}

TEST(Adam, WeightDecayShrinksParameters) {
  std::vector<double> p{10.0};
  std::vector<double> g{0.0};  // zero task gradient
  AdamConfig config;
  config.learning_rate = 0.1;
  config.weight_decay = 0.1;
  Adam adam(1, config);
  for (int i = 0; i < 50; ++i) adam.step({&p[0]}, {&g[0]});
  EXPECT_LT(std::abs(p[0]), 10.0);
}

TEST(Trainer, LearnsLinearMap) {
  // y = 2 x0 - x1 + 0.5, learnable exactly by an MLP with identity output.
  Rng rng(77);
  Matrix x(256, 2), y(256, 1);
  for (std::size_t r = 0; r < 256; ++r) {
    x(r, 0) = rng.uniform(-1.0, 1.0);
    x(r, 1) = rng.uniform(-1.0, 1.0);
    y(r, 0) = 2.0 * x(r, 0) - x(r, 1) + 0.5;
  }
  Mlp mlp({2, 16, 1}, Activation::kTanh, 3);
  TrainConfig config;
  config.max_epochs = 200;
  config.batch_size = 32;
  config.adam.learning_rate = 1e-2;
  config.seed = 4;
  const TrainHistory history = train_mlp(mlp, x, y, MseLoss{}, config);
  EXPECT_LT(history.best_val_loss, 1e-3);
  EXPECT_FALSE(history.train_loss.empty());
  // Spot-check a prediction.
  Matrix probe(1, 2, {0.3, -0.2});
  EXPECT_NEAR(mlp.predict(probe)(0, 0), 2.0 * 0.3 + 0.2 + 0.5, 0.1);
}

TEST(Trainer, LearnsXor) {
  // XOR is the canonical not-linearly-separable sanity check.
  Matrix x(4, 2, {0, 0, 0, 1, 1, 0, 1, 1});
  Matrix y(4, 1, {0, 1, 1, 0});
  Mlp mlp({2, 8, 1}, Activation::kTanh, 21);
  TrainConfig config;
  config.max_epochs = 2000;
  config.batch_size = 4;
  config.validation_fraction = 0.0;  // 4 samples: validate on train
  config.patience = 2000;
  config.adam.learning_rate = 5e-2;
  train_mlp(mlp, x, y, BceWithLogitsLoss{}, config);
  EXPECT_LT(sigmoid(mlp.predict(Matrix(1, 2, {0.0, 0.0}))(0, 0)), 0.2);
  EXPECT_GT(sigmoid(mlp.predict(Matrix(1, 2, {0.0, 1.0}))(0, 0)), 0.8);
  EXPECT_GT(sigmoid(mlp.predict(Matrix(1, 2, {1.0, 0.0}))(0, 0)), 0.8);
  EXPECT_LT(sigmoid(mlp.predict(Matrix(1, 2, {1.0, 1.0}))(0, 0)), 0.2);
}

TEST(Trainer, EarlyStoppingRestoresBest) {
  Rng rng(88);
  Matrix x(64, 1), y(64, 1);
  for (std::size_t r = 0; r < 64; ++r) {
    x(r, 0) = rng.uniform(-1.0, 1.0);
    y(r, 0) = x(r, 0);
  }
  Mlp mlp({1, 4, 1}, Activation::kTanh, 5);
  TrainConfig config;
  config.max_epochs = 50;
  config.patience = 5;
  config.seed = 6;
  const TrainHistory history = train_mlp(mlp, x, y, MseLoss{}, config);
  // The restored parameters reproduce (approximately) the recorded best
  // validation loss.
  EXPECT_LE(history.best_epoch, history.val_loss.size());
  EXPECT_NEAR(history.val_loss[history.best_epoch], history.best_val_loss,
              1e-12);
}

TEST(Trainer, RejectsBadConfig) {
  Matrix x(4, 1), y(4, 1);
  Mlp mlp({1, 1}, Activation::kReLU, 1);
  TrainConfig config;
  config.batch_size = 0;
  EXPECT_THROW(train_mlp(mlp, x, y, MseLoss{}, config), std::invalid_argument);
  TrainConfig config2;
  config2.validation_fraction = 1.0;
  EXPECT_THROW(train_mlp(mlp, x, y, MseLoss{}, config2), std::invalid_argument);
}

}  // namespace
}  // namespace qross::nn
