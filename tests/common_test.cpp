// Tests for src/common: RNG, statistics, Gaussian math, CSV, thread pool.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <atomic>

#include "common/csv.hpp"
#include "common/gaussian.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace qross {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformIntCoversSupportWithoutBias) {
  Rng rng(3);
  std::array<int, 5> counts{};
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) counts[rng.uniform_int(std::uint64_t{5})]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 0.2, 0.02);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(0.25));
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(23);
  const auto perm = rng.permutation(50);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 49u);
}

TEST(Rng, DeriveSeedDecorrelatesStreams) {
  const auto s0 = derive_seed(42, 0);
  const auto s1 = derive_seed(42, 1);
  EXPECT_NE(s0, s1);
  Rng a(s0), b(s1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), 5u);
  EXPECT_DOUBLE_EQ(rs.mean(), 6.2);
  EXPECT_NEAR(rs.variance(), 29.76, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 16.0);
}

TEST(RunningStats, MergeEquivalentToSequential) {
  Rng rng(31);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Stats, QuantileRejectsBadInput) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(quantile(xs, 1.5), std::invalid_argument);
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), std::invalid_argument);
}

TEST(Stats, QuantilesMatchSingleCalls) {
  const std::vector<double> xs{5.0, 3.0, 9.0, 1.0, 7.0};
  const std::vector<double> qs{0.1, 0.5, 0.9};
  const auto result = quantiles(xs, qs);
  ASSERT_EQ(result.size(), 3u);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(result[i], quantile(xs, qs[i]));
  }
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg(ys.rbegin(), ys.rend());
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantIsZero) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Gaussian, CdfSymmetry) {
  for (double z : {0.0, 0.5, 1.0, 2.5}) {
    EXPECT_NEAR(normal_cdf(z) + normal_cdf(-z), 1.0, 1e-14);
  }
  EXPECT_DOUBLE_EQ(normal_cdf(0.0), 0.5);
}

TEST(Gaussian, PdfIntegratesToCdfDifference) {
  // Trapezoid integral of pdf over [-1, 1] equals Phi(1) - Phi(-1).
  const int steps = 20000;
  double integral = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double z0 = -1.0 + 2.0 * i / steps;
    const double z1 = -1.0 + 2.0 * (i + 1) / steps;
    integral += 0.5 * (normal_pdf(z0) + normal_pdf(z1)) * (z1 - z0);
  }
  EXPECT_NEAR(integral, normal_cdf(1.0) - normal_cdf(-1.0), 1e-8);
}

TEST(Gaussian, QuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(Gaussian, QuantileRejectsBoundary) {
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
}

TEST(Gaussian, ScaledCdf) {
  EXPECT_DOUBLE_EQ(normal_cdf(10.0, 10.0, 2.0), 0.5);
  EXPECT_NEAR(normal_cdf(12.0, 10.0, 2.0), normal_cdf(1.0), 1e-14);
  // Degenerate stddev behaves like a step function.
  EXPECT_DOUBLE_EQ(normal_cdf(9.9, 10.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(normal_cdf(10.1, 10.0, 0.0), 1.0);
}

TEST(Gaussian, LogCdfMatchesDirectInOverlap) {
  for (double z : {-7.0, -4.0, -1.0, 0.0, 2.0}) {
    EXPECT_NEAR(log_normal_cdf(z), std::log(normal_cdf(z)), 1e-6) << z;
  }
}

TEST(Gaussian, LogCdfFiniteFarInTail) {
  const double v = log_normal_cdf(-40.0);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_LT(v, -700.0);  // direct log would be -inf here
}

TEST(Csv, WritesHeaderAndRows) {
  CsvTable table({"a", "b"});
  table.add_row(std::vector<std::string>{"1", "x"});
  table.add_row(std::vector<double>{2.5, 3.25}, 2);
  std::ostringstream os;
  table.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,x\n2.50,3.25\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvTable table({"v"});
  table.add_row({std::string("hello, \"world\"")});
  std::ostringstream os;
  table.write_csv(os);
  EXPECT_EQ(os.str(), "v\n\"hello, \"\"world\"\"\"\n");
}

TEST(Csv, RejectsMismatchedRow) {
  CsvTable table({"a", "b"});
  EXPECT_THROW(table.add_row({std::string("only-one")}), std::invalid_argument);
}

TEST(Csv, PrettyOutputAligned) {
  CsvTable table({"name", "v"});
  table.add_row(std::vector<std::string>{"x", "1"});
  std::ostringstream os;
  table.write_pretty(os);
  EXPECT_NE(os.str().find("name"), std::string::npos);
  EXPECT_NE(os.str().find("----"), std::string::npos);
}

TEST(ThreadPool, ParallelForRunsEveryIndex) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleWorkerSequential) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(8, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&done] { done++; });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 10);
}

}  // namespace
}  // namespace qross
