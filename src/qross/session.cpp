#include "qross/session.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace qross::core {

TuningResult run_tuning_loop(solvers::BatchRunner& runner,
                             std::size_t num_trials, const ProposeFn& propose,
                             const ObserveFn& observe) {
  QROSS_REQUIRE(propose != nullptr, "proposer required");
  TuningResult result;
  result.samples.reserve(num_trials);
  result.best_fitness.reserve(num_trials);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t trial = 0; trial < num_trials; ++trial) {
    const double a = propose();
    const solvers::SolverSample sample = runner.run(a);
    best = std::min(best, sample.stats.min_fitness);
    result.samples.push_back(sample);
    result.best_fitness.push_back(best);
    if (observe) observe(sample);
  }
  return result;
}

}  // namespace qross::core
