#include "qross/optimizers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace qross::opt {

OptimumResult brent_minimize(const Objective& objective, double lo, double hi,
                             double tolerance, std::size_t max_iterations) {
  QROSS_REQUIRE(lo < hi, "invalid interval");
  const double golden = 0.5 * (3.0 - std::sqrt(5.0));
  OptimumResult result;

  double a = lo, b = hi;
  double x = a + golden * (b - a);
  double w = x, v = x;
  auto eval = [&](double t) {
    ++result.evaluations;
    return objective(t);
  };
  double fx = eval(x);
  double fw = fx, fv = fx;
  double d = 0.0, e = 0.0;

  for (std::size_t iter = 0;
       iter < max_iterations && result.evaluations < max_iterations * 2;
       ++iter) {
    const double m = 0.5 * (a + b);
    const double tol = tolerance * std::abs(x) + 1e-12;
    if (std::abs(x - m) <= 2.0 * tol - 0.5 * (b - a)) break;

    bool use_golden = true;
    if (std::abs(e) > tol) {
      // Parabolic interpolation through (v, fv), (w, fw), (x, fx).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::abs(q);
      if (std::abs(p) < std::abs(0.5 * q * e) && p > q * (a - x) &&
          p < q * (b - x)) {
        e = d;
        d = p / q;
        const double u = x + d;
        if (u - a < 2.0 * tol || b - u < 2.0 * tol) {
          d = x < m ? tol : -tol;
        }
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x < m ? b : a) - x;
      d = golden * e;
    }
    const double u = x + (std::abs(d) >= tol ? d : (d > 0.0 ? tol : -tol));
    const double fu = eval(u);
    if (fu <= fx) {
      if (u < x) b = x; else a = x;
      v = w; fv = fw;
      w = x; fw = fx;
      x = u; fx = fu;
    } else {
      if (u < x) a = u; else b = u;
      if (fu <= fw || w == x) {
        v = w; fv = fw;
        w = u; fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u; fv = fu;
      }
    }
  }
  result.x = x;
  result.value = fx;
  return result;
}

double bisect_root(const Objective& function, double lo, double hi,
                   double tolerance, std::size_t max_iterations) {
  QROSS_REQUIRE(lo < hi, "invalid interval");
  double flo = function(lo);
  double fhi = function(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  QROSS_REQUIRE(flo * fhi < 0.0, "bisection requires a sign change");
  for (std::size_t iter = 0; iter < max_iterations && hi - lo > tolerance;
       ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = function(mid);
    if (fmid == 0.0) return mid;
    if (flo * fmid < 0.0) {
      hi = mid;
      fhi = fmid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  return 0.5 * (lo + hi);
}

OptimumResult shgo_minimize(const Objective& objective, double lo, double hi,
                            const ShgoConfig& config) {
  QROSS_REQUIRE(lo < hi, "invalid interval");
  QROSS_REQUIRE(config.num_samples >= 2, "need at least two samples");
  OptimumResult result;
  result.value = std::numeric_limits<double>::infinity();

  // Additive-recurrence (golden ratio) low-discrepancy sequence: an even,
  // deterministic cover of the interval, denser than a plain grid's worst
  // gaps for the same budget.
  constexpr double kGoldenFraction = 0.6180339887498949;
  std::vector<std::pair<double, double>> samples;  // (value, x)
  samples.reserve(config.num_samples);
  double t = 0.5;
  for (std::size_t k = 0; k < config.num_samples; ++k) {
    const double x = lo + t * (hi - lo);
    const double fx = objective(x);
    ++result.evaluations;
    samples.emplace_back(fx, x);
    t += kGoldenFraction;
    if (t >= 1.0) t -= 1.0;
  }
  std::sort(samples.begin(), samples.end());

  // Local refinement around the best candidates.
  const double span = (hi - lo) / static_cast<double>(config.num_samples);
  const std::size_t refinements =
      std::min(config.num_refinements, samples.size());
  result.x = samples.front().second;
  result.value = samples.front().first;
  for (std::size_t k = 0; k < refinements; ++k) {
    const double center = samples[k].second;
    const double a = std::max(lo, center - 2.0 * span);
    const double b = std::min(hi, center + 2.0 * span);
    if (a >= b) continue;
    const OptimumResult local =
        brent_minimize(objective, a, b, config.tolerance);
    result.evaluations += local.evaluations;
    if (local.value < result.value) {
      result.value = local.value;
      result.x = local.x;
    }
  }
  return result;
}

}  // namespace qross::opt
