#pragma once

// Umbrella header: includes the full public QROSS API.
//
//   #include "qross/qross.hpp"
//
// pulls in the QUBO substrate, the solver kernels, the TSP/QAP/MVC problem
// modules, the surrogate pipeline, the parameter-selection strategies, the
// baseline tuners, and the high-level QrossTuner facade.

#include "common/rng.hpp"
#include "common/stats.hpp"

#include "qubo/batch.hpp"
#include "qubo/builder.hpp"
#include "qubo/incremental.hpp"
#include "qubo/model.hpp"
#include "qubo/sparse.hpp"

#include "io/binary.hpp"
#include "io/cache_store.hpp"
#include "io/snapshot.hpp"

#include "load/replayer.hpp"
#include "load/report.hpp"
#include "load/workload.hpp"

#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"

#include "service/fingerprint.hpp"
#include "service/job.hpp"
#include "service/metrics.hpp"
#include "service/result_cache.hpp"
#include "service/service_solver.hpp"
#include "service/solve_service.hpp"
#include "service/tune_service.hpp"

#include "solvers/analog_noise.hpp"
#include "solvers/batch_runner.hpp"
#include "solvers/digital_annealer.hpp"
#include "solvers/parallel_tempering.hpp"
#include "solvers/qbsolv.hpp"
#include "solvers/simulated_annealer.hpp"
#include "solvers/solver.hpp"
#include "solvers/tabu_search.hpp"

#include "problems/allocation/allocation.hpp"
#include "problems/mvc/mvc.hpp"
#include "problems/qap/qap.hpp"
#include "problems/tsp/exact.hpp"
#include "problems/tsp/formulation.hpp"
#include "problems/tsp/generators.hpp"
#include "problems/tsp/heuristics.hpp"
#include "problems/tsp/instance.hpp"
#include "problems/tsp/preprocess.hpp"
#include "problems/tsp/testset.hpp"
#include "problems/tsp/tsplib.hpp"

#include "nn/mlp.hpp"
#include "nn/trainer.hpp"

#include "surrogate/batched.hpp"
#include "surrogate/dataset.hpp"
#include "surrogate/evaluator.hpp"
#include "surrogate/features.hpp"
#include "surrogate/model.hpp"
#include "surrogate/normalizer.hpp"
#include "surrogate/pipeline.hpp"

#include "qross/facade.hpp"
#include "qross/min_fitness.hpp"
#include "qross/optimizers.hpp"
#include "qross/session.hpp"
#include "qross/sigmoid_fit.hpp"
#include "qross/strategies.hpp"

#include "tuning/bayes_opt.hpp"
#include "tuning/random_search.hpp"
#include "tuning/tpe.hpp"
#include "tuning/tuner.hpp"
