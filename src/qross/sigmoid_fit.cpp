#include "qross/sigmoid_fit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace qross::core {

double SigmoidParams::operator()(double a) const {
  const double z = a * theta_s - theta_o;
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

double SigmoidParams::inverse(double p) const {
  QROSS_REQUIRE(p > 0.0 && p < 1.0, "inverse requires p in (0, 1)");
  QROSS_REQUIRE(theta_s != 0.0, "degenerate sigmoid (theta_s == 0)");
  return (std::log(p / (1.0 - p)) + theta_o) / theta_s;
}

SigmoidFitResult fit_sigmoid(std::span<const double> a_values,
                             std::span<const double> pf_values,
                             std::size_t max_iterations, double tolerance) {
  QROSS_REQUIRE(a_values.size() == pf_values.size(), "length mismatch");
  QROSS_REQUIRE(a_values.size() >= 2, "need at least two points");
  const std::size_t n = a_values.size();

  const auto [min_it, max_it] =
      std::minmax_element(a_values.begin(), a_values.end());
  const double a_lo = *min_it;
  const double a_hi = *max_it;
  const double a_span = std::max(a_hi - a_lo, 1e-9);

  SigmoidFitResult result;
  // Initial guess: slope spanning the observed range, centred where Pf
  // crosses one half (or the mid-range when it never does).
  double center = 0.5 * (a_lo + a_hi);
  double best_gap = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const double gap = std::abs(pf_values[i] - 0.5);
    if (gap < best_gap) {
      best_gap = gap;
      center = a_values[i];
    }
  }
  result.params.theta_s = 8.0 / a_span;
  result.params.theta_o = result.params.theta_s * center;

  auto sum_squared_residual = [&](const SigmoidParams& p) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = p(a_values[i]) - pf_values[i];
      s += r * r;
    }
    return s;
  };

  double lambda = 1e-3;  // Levenberg damping
  double current = sum_squared_residual(result.params);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    // Jacobian of residuals r_i = S(a_i) - pf_i w.r.t. (theta_s, theta_o):
    //   dS/dtheta_s =  a * S(1-S),   dS/dtheta_o = -S(1-S)
    double jtj00 = 0.0, jtj01 = 0.0, jtj11 = 0.0;
    double jtr0 = 0.0, jtr1 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double s = result.params(a_values[i]);
      const double ds = s * (1.0 - s);
      const double j0 = a_values[i] * ds;
      const double j1 = -ds;
      const double r = s - pf_values[i];
      jtj00 += j0 * j0;
      jtj01 += j0 * j1;
      jtj11 += j1 * j1;
      jtr0 += j0 * r;
      jtr1 += j1 * r;
    }
    // Solve (JtJ + lambda I) delta = -Jtr.
    const double d00 = jtj00 + lambda;
    const double d11 = jtj11 + lambda;
    const double det = d00 * d11 - jtj01 * jtj01;
    if (std::abs(det) < 1e-300) break;
    const double delta_s = (-jtr0 * d11 + jtr1 * jtj01) / det;
    const double delta_o = (-jtr1 * d00 + jtr0 * jtj01) / det;

    SigmoidParams trial = result.params;
    trial.theta_s += delta_s;
    trial.theta_o += delta_o;
    const double trial_residual = sum_squared_residual(trial);
    if (trial_residual < current) {
      const double improvement = current - trial_residual;
      result.params = trial;
      current = trial_residual;
      lambda = std::max(lambda * 0.5, 1e-12);
      if (improvement < tolerance) {
        result.converged = true;
        break;
      }
    } else {
      lambda *= 4.0;
      if (lambda > 1e12) break;
    }
  }
  result.residual = current;
  // A downhill-fitted sigmoid with near-zero slope signals a degenerate
  // history; report non-convergence so callers fall back to exploration.
  if (std::abs(result.params.theta_s) < 1e-12) result.converged = false;
  return result;
}

}  // namespace qross::core
