#pragma once

// Sigmoid ansatz fitting for the Online Fitting Strategy (paper eq. (7)):
//
//   S(A; θs, θo) = 1 / (1 + exp(-A*θs + θo))
//
// fitted to observed (A, Pf) pairs by damped Gauss–Newton least squares.

#include <span>

namespace qross::core {

struct SigmoidParams {
  double theta_s = 1.0;  ///< scale (slope) along A
  double theta_o = 0.0;  ///< offset

  double operator()(double a) const;

  /// A at which S(A) == p; requires theta_s != 0 and p in (0, 1).
  double inverse(double p) const;
};

struct SigmoidFitResult {
  SigmoidParams params;
  double residual = 0.0;  ///< final sum of squared residuals
  bool converged = false;
};

/// Least-squares fit of the ansatz to (a_values[i], pf_values[i]).  Requires
/// at least two points.  Degenerate histories (all Pf equal) return a fit
/// centred between the extreme A values with `converged == false`.
SigmoidFitResult fit_sigmoid(std::span<const double> a_values,
                             std::span<const double> pf_values,
                             std::size_t max_iterations = 100,
                             double tolerance = 1e-10);

}  // namespace qross::core
