#pragma once

// Tuning-session loop shared by QROSS strategies and baseline tuners: at
// each trial a proposer picks A, the runner makes exactly one solver call,
// and the observer sees the result.  The trajectory of best-feasible-fitness
// per trial is the paper's central metric (Figs. 3-5, Table 1).

#include <functional>
#include <vector>

#include "solvers/batch_runner.hpp"

namespace qross::core {

struct TuningResult {
  std::vector<solvers::SolverSample> samples;  ///< one per trial
  /// Best (lowest) feasible fitness after each trial; +inf until the first
  /// feasible solution appears.
  std::vector<double> best_fitness;
};

using ProposeFn = std::function<double()>;
using ObserveFn = std::function<void(const solvers::SolverSample&)>;

/// Runs `num_trials` trials.  `observe` may be null.
TuningResult run_tuning_loop(solvers::BatchRunner& runner,
                             std::size_t num_trials, const ProposeFn& propose,
                             const ObserveFn& observe = nullptr);

}  // namespace qross::core
