#include "qross/strategies.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "qross/optimizers.hpp"

namespace qross::core {

namespace {

void check_context(const StrategyContext& context) {
  QROSS_REQUIRE(context.surrogate != nullptr && context.surrogate->is_trained(),
                "strategy needs a trained surrogate");
  QROSS_REQUIRE(context.a_min > 0.0 && context.a_max > context.a_min,
                "invalid A search box");
  QROSS_REQUIRE(context.batch_size >= 1, "batch size must be positive");
}

/// Log-spaced grid over the search box (A is a scale-like parameter).
std::vector<double> log_grid(double lo, double hi, std::size_t points) {
  std::vector<double> grid(points);
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = points > 1
                         ? static_cast<double>(i) / static_cast<double>(points - 1)
                         : 0.5;
    grid[i] = std::exp(llo + t * (lhi - llo));
  }
  return grid;
}

}  // namespace

// ---------------------------------------------------------------- MFS ----

MinimumFitnessStrategy::MinimumFitnessStrategy(MinFitnessConfig config,
                                               std::size_t grid_points)
    : config_(config), grid_points_(grid_points) {
  QROSS_REQUIRE(grid_points_ >= 4, "grid too coarse");
}

double MinimumFitnessStrategy::propose(const StrategyContext& context) const {
  check_context(context);
  auto objective = [&](double a) {
    const auto p = context.surrogate->predict(context.features, context.anchor,
                                              std::clamp(a, context.a_min,
                                                         context.a_max));
    return expected_min_fitness(p.pf, p.energy_avg, p.energy_std,
                                context.batch_size, config_);
  };
  // Surrogate landscapes are cheap: dense grid scan, then a local polish
  // (the shgo-lite pattern, robust to the +inf plateau at small A).
  const auto grid = log_grid(context.a_min, context.a_max, grid_points_);
  double best_a = grid.back();
  double best_value = std::numeric_limits<double>::infinity();
  for (double a : grid) {
    const double v = objective(a);
    if (v < best_value) {
      best_value = v;
      best_a = a;
    }
  }
  if (!std::isfinite(best_value)) {
    // Surrogate says nothing is feasible anywhere: return the top of the
    // box, the most feasibility-favouring choice available.
    return context.a_max;
  }
  // Refine within the neighbouring grid cells.
  const double step = std::log(grid[1] / grid[0]);
  const double lo = std::max(context.a_min, best_a * std::exp(-step));
  const double hi = std::min(context.a_max, best_a * std::exp(step));
  if (lo < hi) {
    const auto local = opt::brent_minimize(objective, lo, hi, 1e-6);
    if (local.value < best_value) best_a = local.x;
  }
  return best_a;
}

std::vector<std::pair<double, double>> MinimumFitnessStrategy::landscape(
    const StrategyContext& context, std::size_t points) const {
  check_context(context);
  const auto grid = log_grid(context.a_min, context.a_max, points);
  const auto predictions =
      context.surrogate->predict_sweep(context.features, context.anchor, grid);
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    out.emplace_back(grid[i], expected_min_fitness(
                                  predictions[i].pf, predictions[i].energy_avg,
                                  predictions[i].energy_std,
                                  context.batch_size, config_));
  }
  return out;
}

// ---------------------------------------------------------------- PBS ----

PfBasedStrategy::PfBasedStrategy(double target_pf) : target_pf_(target_pf) {
  QROSS_REQUIRE(target_pf_ > 0.0 && target_pf_ < 1.0, "target Pf in (0, 1)");
}

double PfBasedStrategy::propose(const StrategyContext& context) const {
  check_context(context);
  const auto grid = log_grid(context.a_min, context.a_max, 128);
  const auto predictions =
      context.surrogate->predict_sweep(context.features, context.anchor, grid);
  double best_a = grid.front();
  double best_gap = std::numeric_limits<double>::infinity();
  std::size_t best_index = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double gap = std::abs(predictions[i].pf - target_pf_);
    if (gap < best_gap) {
      best_gap = gap;
      best_a = grid[i];
      best_index = i;
    }
  }
  // Local refinement between the neighbours of the best grid point.
  const double lo = grid[best_index > 0 ? best_index - 1 : 0];
  const double hi = grid[std::min(best_index + 1, grid.size() - 1)];
  if (lo < hi) {
    auto gap_at = [&](double a) {
      return std::abs(
          context.surrogate->predict(context.features, context.anchor, a).pf -
          target_pf_);
    };
    const auto local = opt::brent_minimize(gap_at, lo, hi, 1e-6);
    if (local.value < best_gap) best_a = local.x;
  }
  return best_a;
}

// ---------------------------------------------------------------- OFS ----

OnlineFittingStrategy::OnlineFittingStrategy()
    : OnlineFittingStrategy(Config{}, 99) {}

OnlineFittingStrategy::OnlineFittingStrategy(std::uint64_t seed)
    : OnlineFittingStrategy(Config{}, seed) {}

OnlineFittingStrategy::OnlineFittingStrategy(Config config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  QROSS_REQUIRE(config_.epsilon > 0.0 && config_.epsilon < 0.5,
                "epsilon in (0, 0.5)");
}

double OnlineFittingStrategy::propose(const StrategyContext& context) {
  QROSS_REQUIRE(context.a_min > 0.0 && context.a_max > context.a_min,
                "invalid A search box");
  // Exploration fallback: too little history (or a degenerate one) —
  // expand the bracket by doubling / halving (Algorithm 1 lines 1-2).
  auto explore = [&]() {
    if (!a_left_.has_value() && !history_.empty()) {
      // Everything feasible so far: push down.
      double lowest = context.a_max;
      for (const auto& s : history_) {
        lowest = std::min(lowest, s.relaxation_parameter);
      }
      return std::max(lowest / 2.0, context.a_min);
    }
    if (!a_right_.has_value() && !history_.empty()) {
      double highest = context.a_min;
      for (const auto& s : history_) {
        highest = std::max(highest, s.relaxation_parameter);
      }
      return std::min(highest * 2.0, context.a_max);
    }
    // No history at all: geometric midpoint of the box.
    return std::sqrt(context.a_min * context.a_max);
  };

  if (history_.size() < config_.min_history) return explore();

  std::vector<double> a_values, pf_values;
  a_values.reserve(history_.size());
  pf_values.reserve(history_.size());
  for (const auto& s : history_) {
    a_values.push_back(s.relaxation_parameter);
    pf_values.push_back(s.stats.pf);
  }
  const SigmoidFitResult fit = fit_sigmoid(a_values, pf_values);
  last_fit_ = fit;
  if (!fit.converged && std::abs(fit.params.theta_s) < 1e-12) return explore();

  // Slope band {A : eps < S(A) < 1 - eps} intersected with the bracket.
  double band_lo = fit.params.inverse(fit.params.theta_s > 0.0
                                          ? config_.epsilon
                                          : 1.0 - config_.epsilon);
  double band_hi = fit.params.inverse(fit.params.theta_s > 0.0
                                          ? 1.0 - config_.epsilon
                                          : config_.epsilon);
  if (band_lo > band_hi) std::swap(band_lo, band_hi);
  if (a_left_.has_value()) band_lo = std::max(band_lo, *a_left_);
  if (a_right_.has_value()) band_hi = std::min(band_hi, *a_right_);
  band_lo = std::clamp(band_lo, context.a_min, context.a_max);
  band_hi = std::clamp(band_hi, context.a_min, context.a_max);
  if (band_lo >= band_hi) return explore();
  // Draw Anext ~ U(band) (Algorithm 1 line 5).
  return rng_.uniform(band_lo, band_hi);
}

void OnlineFittingStrategy::observe(const solvers::SolverSample& sample) {
  history_.push_back(sample);
  const double a = sample.relaxation_parameter;
  if (sample.stats.pf == 0.0) {
    if (!a_left_.has_value() || a > *a_left_) a_left_ = a;
  } else if (sample.stats.pf == 1.0) {
    if (!a_right_.has_value() || a < *a_right_) a_right_ = a;
  }
}

// ----------------------------------------------------------- Composed ----

ComposedStrategy::ComposedStrategy() : ComposedStrategy(Config{}, 99) {}

ComposedStrategy::ComposedStrategy(std::uint64_t seed)
    : ComposedStrategy(Config{}, seed) {}

ComposedStrategy::ComposedStrategy(Config config, std::uint64_t seed)
    : config_(std::move(config)),
      mfs_(config_.min_fitness),
      ofs_(config_.ofs, seed) {}

double ComposedStrategy::propose(const StrategyContext& context) {
  check_context(context);
  double a = 0.0;
  if (num_proposed_ == 0) {
    a = mfs_.propose(context);
  } else if (num_proposed_ <= config_.pbs_targets.size()) {
    const PfBasedStrategy pbs(config_.pbs_targets[num_proposed_ - 1]);
    a = pbs.propose(context);
  } else {
    a = ofs_.propose(context);
  }
  ++num_proposed_;
  return std::clamp(a, context.a_min, context.a_max);
}

void ComposedStrategy::observe(const solvers::SolverSample& sample) {
  // Every trial, including the offline ones, feeds the OFS curve fit
  // (paper: "The trials in the first two step can be used for curve fitting
  // in the third step").
  ofs_.observe(sample);
}

}  // namespace qross::core
