#include "qross/min_fitness.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/gaussian.hpp"
#include "common/rng.hpp"

namespace qross::core {

double expected_min_fitness(double pf, double energy_avg, double energy_std,
                            std::size_t batch_size,
                            const MinFitnessConfig& config) {
  QROSS_REQUIRE(pf >= 0.0 && pf <= 1.0, "pf in [0, 1]");
  QROSS_REQUIRE(energy_std >= 0.0, "energy std must be non-negative");
  QROSS_REQUIRE(batch_size >= 1, "batch size must be positive");
  QROSS_REQUIRE(config.panels >= 2 && config.panels % 2 == 0,
                "panels must be even and >= 2");

  if (config.risk_aversion > 0.0) {
    const double se =
        std::sqrt(pf * (1.0 - pf) / static_cast<double>(batch_size));
    pf = std::max(0.0, pf - config.risk_aversion * se);
  }
  const double m = pf * static_cast<double>(batch_size);
  if (pf <= config.pf_floor) {
    return std::numeric_limits<double>::infinity();  // paper: lim_{Pf->0}
  }
  if (energy_std == 0.0) {
    // Degenerate distribution: the minimum is the (non-negative) mean.
    return std::max(energy_avg, 0.0);
  }

  // Integrand S(z) = (1 - Phi(z; mu, sigma))^m = exp(m * log(1 - Phi)).
  const double mu = energy_avg;
  const double sigma = energy_std;
  auto survival_pow = [&](double z) {
    const double t = (z - mu) / sigma;
    // log(1 - Phi(t)) == log(Phi(-t)); use the underflow-safe form.
    return std::exp(m * log_normal_cdf(-t));
  };

  // Below mu - 8 sigma the integrand is 1 to machine precision, so that
  // stretch contributes its own length; integrate the transition region
  // with composite Simpson.  The transition widens like sigma/sqrt(m) for
  // m < 1, hence the adaptive upper bound.
  const double tail_scale =
      config.tail_sigmas / std::sqrt(std::min(1.0, std::max(m, 1e-4)));
  const double lo = std::max(0.0, mu - 8.0 * sigma);
  const double hi = std::max(lo + 1e-12, mu + std::min(tail_scale, 80.0) * sigma);

  const std::size_t panels = config.panels;
  const double h = (hi - lo) / static_cast<double>(panels);
  double sum = survival_pow(lo) + survival_pow(hi);
  for (std::size_t k = 1; k < panels; ++k) {
    const double z = lo + h * static_cast<double>(k);
    sum += survival_pow(z) * (k % 2 == 1 ? 4.0 : 2.0);
  }
  const double transition = sum * h / 3.0;
  return lo + transition;
}

double expected_min_fitness_monte_carlo(double pf, double energy_avg,
                                        double energy_std,
                                        std::size_t batch_size,
                                        std::size_t num_trials,
                                        std::uint64_t seed) {
  QROSS_REQUIRE(pf >= 0.0 && pf <= 1.0, "pf in [0, 1]");
  QROSS_REQUIRE(num_trials >= 1, "need at least one trial");
  Rng rng(seed);
  double total = 0.0;
  std::size_t trials_with_feasible = 0;
  for (std::size_t trial = 0; trial < num_trials; ++trial) {
    double min_fitness = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < batch_size; ++i) {
      if (!rng.bernoulli(pf)) continue;
      // Truncate at zero to mirror the analytic non-negativity assumption.
      const double d = std::max(rng.normal(energy_avg, energy_std), 0.0);
      min_fitness = std::min(min_fitness, d);
    }
    if (std::isfinite(min_fitness)) {
      total += min_fitness;
      ++trials_with_feasible;
    }
  }
  if (trials_with_feasible == 0) {
    return std::numeric_limits<double>::infinity();
  }
  return total / static_cast<double>(trials_with_feasible);
}

}  // namespace qross::core
