#pragma once

// High-level QROSS facade: one object that owns the trained surrogate and
// turns "tune this TSP instance on that solver" into a single call.  This
// wraps the full pipeline (MVODM preparation, feature extraction, strategy
// context, composed proposal schedule, solver session) behind the API most
// applications want; the lower-level pieces remain available for custom
// workflows.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "problems/tsp/instance.hpp"
#include "qross/session.hpp"
#include "qross/strategies.hpp"
#include "solvers/solver.hpp"
#include "surrogate/dataset.hpp"
#include "surrogate/model.hpp"

namespace qross::service {
class SolveService;
}  // namespace qross::service

namespace qross::core {

/// Which proposal strategy drives the session (paper §3.4 / §4.2).  The
/// default is the paper's composed benchmark mixture; the pure strategies
/// are selectable individually (e.g. over the wire).
enum class TuneStrategyKind : std::uint8_t {
  composed = 0,  ///< MFS, then PBS at the configured targets, then OFS
  mfs = 1,       ///< minimum-expected-fitness proposal every trial
  pbs = 2,       ///< Pf-target proposal every trial (see pf_target)
  ofs = 3,       ///< online sigmoid fitting from trial 0
};

const char* to_string(TuneStrategyKind kind);

/// Per-trial progress report: the probed A, the batch summary the surrogate
/// is trained to predict, and the best feasible length so far.
struct TuneTrialEvent {
  std::size_t index = 0;  ///< 0-based trial number
  std::size_t total = 0;  ///< the session's trial budget
  double relaxation_parameter = 0.0;
  double pf = 0.0;
  double energy_avg = 0.0;
  double energy_std = 0.0;
  /// Best feasible ORIGINAL-metric length after this trial; +inf until the
  /// first feasible solution appears.
  double best_length = std::numeric_limits<double>::infinity();
  bool feasible = false;  ///< any feasible solution seen so far
};

using TuneProgressFn = std::function<void(const TuneTrialEvent&)>;

struct TuneOptions {
  /// Number of solver calls allowed for the instance.
  std::size_t trials = 10;
  /// Relaxation-parameter search box (prepared-instance units).
  double a_min = 1.0;
  double a_max = 100.0;
  std::uint64_t seed = 1;
  /// Composed-strategy configuration (PBS targets, risk aversion, ...).
  ComposedStrategy::Config strategy;
  /// When set (borrowed, must outlive the call), every trial's solver call
  /// is routed through this SolveService, so concurrent and repeated tuning
  /// sessions share its result cache: re-tuning an instance with the same
  /// seed replays from cached batches without invoking the solver.  Null =
  /// direct synchronous calls (the default).
  service::SolveService* service = nullptr;

  /// Proposal strategy for the session.
  TuneStrategyKind mode = TuneStrategyKind::composed;
  /// Target feasibility probability when mode == pbs.
  double pf_target = 0.8;
  /// When set (borrowed), strategies query this evaluator instead of the
  /// tuner's own surrogate — the serving layer passes the cross-session
  /// batching combiner here.  Any conforming evaluator is bit-identical to
  /// the direct surrogate, so results do not depend on this choice.
  const surrogate::SurrogateEvaluator* evaluator = nullptr;
  /// Cooperative cancellation: checked between trials and threaded into
  /// every solver call, so a signalled session stops within one sweep and
  /// returns with `TuneOutcome::cancelled` set.  Inert by default.
  solvers::StopToken stop;
  /// Invoked after every completed trial (on the tuning thread).  Null by
  /// default.
  TuneProgressFn on_trial;
  /// Attribution forwarded to SubmitOptions when routing through `service`:
  /// admission quotas / fair share (client_id) and trace stitching
  /// (trace_id) then apply to the session's probe jobs.
  std::string client_id;
  std::uint64_t trace_id = 0;
};

struct TuneOutcome {
  /// Best tour found, in original-instance city indices; empty if no trial
  /// produced a feasible solution.
  tsp::Tour best_tour;
  /// Its length on the ORIGINAL distance matrix; +inf if infeasible.
  double best_length = 0.0;
  /// Relaxation parameter of the winning trial (prepared units).
  double best_parameter = 0.0;
  /// Per-trial history: (A, Pf, best-so-far original length).
  struct Trial {
    double relaxation_parameter = 0.0;
    double pf = 0.0;
    double best_length_so_far = 0.0;
  };
  std::vector<Trial> trials;
  /// True when the session's stop token fired: the trial budget was not
  /// exhausted and `trials` holds only the completed prefix.
  bool cancelled = false;

  bool feasible() const { return !best_tour.empty(); }
};

class QrossTuner {
 public:
  /// Takes ownership of a trained surrogate.
  explicit QrossTuner(surrogate::SolverSurrogate surrogate,
                      solvers::SolveOptions solve_options = {});

  /// Trains a surrogate from a history of instances and wraps it.
  static QrossTuner fit(const std::vector<tsp::TspInstance>& history,
                        solvers::SolverPtr solver,
                        const solvers::SolveOptions& solve_options,
                        const surrogate::SweepConfig& sweep = {},
                        const surrogate::SurrogateConfig& config = {});

  /// Loads a previously saved tuner (surrogate + solve options).
  static QrossTuner load(std::istream& is);
  void save(std::ostream& os) const;

  const surrogate::SolverSurrogate& surrogate() const { return surrogate_; }

  /// Proposes a relaxation parameter for `instance` WITHOUT calling the
  /// solver: the minimum-fitness proposal, or the Pf-target proposal when
  /// `pf_target` is given (paper §3.4).
  double propose(const tsp::TspInstance& instance,
                 std::optional<double> pf_target = std::nullopt,
                 const TuneOptions& options = {}) const;

  /// Full tuning session: `options.trials` solver calls steered by the
  /// composed strategy; returns the best decoded tour.
  TuneOutcome tune(const tsp::TspInstance& instance,
                   const solvers::SolverPtr& solver,
                   const TuneOptions& options = {}) const;

 private:
  surrogate::SolverSurrogate surrogate_;
  solvers::SolveOptions solve_options_;
};

}  // namespace qross::core
