#pragma once

// Expected minimum fitness of a solver batch (paper eq. (2), appendix F).
//
// Under the paper's modelling assumptions — a batch of B solutions of which
// m = Pf * B are feasible, with feasible fitnesses i.i.d. Gaussian
// N(Eavg, Estd^2) and non-negative — the expected minimum fitness is
//
//   E[min] ≈ ∫_0^∞ (1 - Φ(z; Eavg, Estd))^m dz ,
//
// which trades off feasibility (more feasible samples push the minimum
// down) against the energy distribution's location.  Its minimiser over A
// is the Minimum Fitness Strategy's proposal.  lim_{Pf→0} E[min] = +∞ by
// convention (no feasible solution exists to take a minimum over).

#include <cstdint>

namespace qross::core {

struct MinFitnessConfig {
  /// Simpson integration panels (must be even; accuracy ~ (range/panels)^4).
  std::size_t panels = 512;
  /// Integration upper bound in standard deviations above the mean.
  double tail_sigmas = 10.0;
  /// Pf below this is treated as "no feasible solutions" (returns +inf).
  double pf_floor = 1e-6;
  /// Risk aversion z: the integral uses the lower confidence bound
  ///   pf_eff = max(0, pf - z * sqrt(pf (1-pf) / B))
  /// instead of pf itself, accounting for the binomial uncertainty of a
  /// finite batch.  0 reproduces the paper's formula exactly; the effect of
  /// positive z vanishes as B grows (at the paper's B = 128 it is
  /// negligible), but at small B it keeps the minimiser from betting on a
  /// sliver of predicted feasibility.
  double risk_aversion = 0.0;
};

/// Analytic approximation of E[min fitness].  `batch_size` is the paper's B.
/// Returns +infinity when pf <= pf_floor.
double expected_min_fitness(double pf, double energy_avg, double energy_std,
                            std::size_t batch_size,
                            const MinFitnessConfig& config = {});

/// Monte-Carlo estimate of the same quantity (ground truth for tests and
/// the bench_ablation_minfit study): draws `num_trials` batches and averages
/// the minimum over the Binomial(B, pf)-sized feasible subsets.
double expected_min_fitness_monte_carlo(double pf, double energy_avg,
                                        double energy_std,
                                        std::size_t batch_size,
                                        std::size_t num_trials,
                                        std::uint64_t seed);

}  // namespace qross::core
