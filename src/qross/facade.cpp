#include "qross/facade.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <limits>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "problems/tsp/formulation.hpp"
#include "service/service_solver.hpp"
#include "solvers/batch_runner.hpp"
#include "surrogate/pipeline.hpp"

namespace qross::core {

const char* to_string(TuneStrategyKind kind) {
  switch (kind) {
    case TuneStrategyKind::composed:
      return "composed";
    case TuneStrategyKind::mfs:
      return "mfs";
    case TuneStrategyKind::pbs:
      return "pbs";
    case TuneStrategyKind::ofs:
      return "ofs";
  }
  return "unknown";
}

namespace {

StrategyContext make_context(
    const surrogate::SurrogateEvaluator& surrogate,
    const std::array<double, surrogate::kNumTspFeatures>& features,
    const TuneOptions& options, std::size_t batch_size) {
  StrategyContext context;
  context.surrogate = &surrogate;
  context.features = features;
  context.anchor = surrogate::scale_anchor(features);
  context.a_min = options.a_min;
  context.a_max = options.a_max;
  context.batch_size = batch_size;
  return context;
}

}  // namespace

QrossTuner::QrossTuner(surrogate::SolverSurrogate surrogate,
                       solvers::SolveOptions solve_options)
    : surrogate_(std::move(surrogate)), solve_options_(solve_options) {
  QROSS_REQUIRE(surrogate_.is_trained(), "tuner needs a trained surrogate");
}

QrossTuner QrossTuner::fit(const std::vector<tsp::TspInstance>& history,
                           solvers::SolverPtr solver,
                           const solvers::SolveOptions& solve_options,
                           const surrogate::SweepConfig& sweep,
                           const surrogate::SurrogateConfig& config) {
  QROSS_REQUIRE(!history.empty(), "history must not be empty");
  const surrogate::Dataset dataset =
      surrogate::build_dataset(history, std::move(solver), solve_options, sweep);
  surrogate::SolverSurrogate surrogate(config);
  surrogate.train(dataset);
  return QrossTuner(std::move(surrogate), solve_options);
}

void QrossTuner::save(std::ostream& os) const {
  os << "qross_tuner_v1 " << solve_options_.num_replicas << ' '
     << solve_options_.num_sweeps << ' ' << solve_options_.seed << "\n";
  surrogate_.save(os);
}

QrossTuner QrossTuner::load(std::istream& is) {
  std::string magic;
  solvers::SolveOptions options;
  QROSS_REQUIRE(static_cast<bool>(is >> magic >> options.num_replicas >>
                                  options.num_sweeps >> options.seed) &&
                    magic == "qross_tuner_v1",
                "bad tuner header");
  return QrossTuner(surrogate::SolverSurrogate::load(is), options);
}

double QrossTuner::propose(const tsp::TspInstance& instance,
                           std::optional<double> pf_target,
                           const TuneOptions& options) const {
  const surrogate::PreparedTspInstance prepared(instance);
  const auto features = surrogate::extract_features(prepared.prepared());
  const StrategyContext context =
      make_context(surrogate_, features, options, solve_options_.num_replicas);
  if (pf_target.has_value()) {
    return PfBasedStrategy(*pf_target).propose(context);
  }
  return MinimumFitnessStrategy(options.strategy.min_fitness).propose(context);
}

TuneOutcome QrossTuner::tune(const tsp::TspInstance& instance,
                             const solvers::SolverPtr& solver,
                             const TuneOptions& options) const {
  QROSS_REQUIRE(solver != nullptr, "solver required");
  QROSS_REQUIRE(options.trials >= 1, "at least one trial");

  const surrogate::PreparedTspInstance prepared(instance);
  const auto features = surrogate::extract_features(prepared.prepared());
  const surrogate::SurrogateEvaluator& evaluator =
      options.evaluator != nullptr ? *options.evaluator : surrogate_;
  const StrategyContext context =
      make_context(evaluator, features, options, solve_options_.num_replicas);

  solvers::SolveOptions solve_options = solve_options_;
  solve_options.seed = derive_seed(options.seed, 0x7e);
  solve_options.stop = options.stop;
  // Routed through the shared solve service when the caller provides one:
  // identical trial calls (same model, options, derived seed) coalesce and
  // hit its result cache, so repeated sessions cost no extra solver calls.
  solvers::SolverPtr effective_solver = solver;
  if (options.service != nullptr) {
    service::SubmitOptions submit;
    submit.client_id = options.client_id;
    submit.trace_id = options.trace_id;
    effective_solver = std::make_shared<service::ServiceSolver>(
        *options.service, solver, submit);
  }
  solvers::BatchRunner runner(prepared.problem(), effective_solver,
                              solve_options);

  // All modes share the seed derivation so switching a session's mode never
  // perturbs another mode's probed-A sequence.
  ComposedStrategy composed(options.strategy, derive_seed(options.seed, 1));
  MinimumFitnessStrategy mfs(options.strategy.min_fitness);
  PfBasedStrategy pbs(options.pf_target);
  OnlineFittingStrategy ofs(options.strategy.ofs, derive_seed(options.seed, 1));
  const auto propose = [&]() -> double {
    switch (options.mode) {
      case TuneStrategyKind::mfs:
        return mfs.propose(context);
      case TuneStrategyKind::pbs:
        return pbs.propose(context);
      case TuneStrategyKind::ofs:
        return ofs.propose(context);
      case TuneStrategyKind::composed:
        break;
    }
    return composed.propose(context);
  };
  const auto observe = [&](const solvers::SolverSample& sample) {
    switch (options.mode) {
      case TuneStrategyKind::mfs:
      case TuneStrategyKind::pbs:
        break;  // offline strategies consume no feedback
      case TuneStrategyKind::ofs:
        ofs.observe(sample);
        break;
      case TuneStrategyKind::composed:
        composed.observe(sample);
        break;
    }
  };

  TuneOutcome outcome;
  outcome.best_length = std::numeric_limits<double>::infinity();
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    if (options.stop.stop_requested()) {
      outcome.cancelled = true;
      break;
    }
    const double a = propose();
    const solvers::SolverSample sample = runner.run(a);
    observe(sample);

    if (sample.stats.has_feasible()) {
      const auto tour =
          tsp::decode_tour(prepared.prepared(), *sample.stats.best_feasible);
      QROSS_ASSERT(tour.has_value());
      const double length = instance.tour_length(*tour);
      if (length < outcome.best_length) {
        outcome.best_length = length;
        outcome.best_tour = *tour;
        outcome.best_parameter = a;
      }
    }
    outcome.trials.push_back(
        {a, sample.stats.pf,
         outcome.feasible() ? outcome.best_length
                            : std::numeric_limits<double>::infinity()});
    if (options.on_trial) {
      TuneTrialEvent event;
      event.index = trial;
      event.total = options.trials;
      event.relaxation_parameter = a;
      event.pf = sample.stats.pf;
      event.energy_avg = sample.stats.energy_avg;
      event.energy_std = sample.stats.energy_std;
      event.best_length = outcome.feasible()
                              ? outcome.best_length
                              : std::numeric_limits<double>::infinity();
      event.feasible = outcome.feasible();
      options.on_trial(event);
    }
  }
  if (options.stop.stop_requested() &&
      outcome.trials.size() < options.trials) {
    outcome.cancelled = true;
  }
  return outcome;
}

}  // namespace qross::core
