#include "qross/facade.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <limits>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "problems/tsp/formulation.hpp"
#include "service/service_solver.hpp"
#include "solvers/batch_runner.hpp"
#include "surrogate/pipeline.hpp"

namespace qross::core {

namespace {

StrategyContext make_context(
    const surrogate::SolverSurrogate& surrogate,
    const std::array<double, surrogate::kNumTspFeatures>& features,
    const TuneOptions& options, std::size_t batch_size) {
  StrategyContext context;
  context.surrogate = &surrogate;
  context.features = features;
  context.anchor = surrogate::scale_anchor(features);
  context.a_min = options.a_min;
  context.a_max = options.a_max;
  context.batch_size = batch_size;
  return context;
}

}  // namespace

QrossTuner::QrossTuner(surrogate::SolverSurrogate surrogate,
                       solvers::SolveOptions solve_options)
    : surrogate_(std::move(surrogate)), solve_options_(solve_options) {
  QROSS_REQUIRE(surrogate_.is_trained(), "tuner needs a trained surrogate");
}

QrossTuner QrossTuner::fit(const std::vector<tsp::TspInstance>& history,
                           solvers::SolverPtr solver,
                           const solvers::SolveOptions& solve_options,
                           const surrogate::SweepConfig& sweep,
                           const surrogate::SurrogateConfig& config) {
  QROSS_REQUIRE(!history.empty(), "history must not be empty");
  const surrogate::Dataset dataset =
      surrogate::build_dataset(history, std::move(solver), solve_options, sweep);
  surrogate::SolverSurrogate surrogate(config);
  surrogate.train(dataset);
  return QrossTuner(std::move(surrogate), solve_options);
}

void QrossTuner::save(std::ostream& os) const {
  os << "qross_tuner_v1 " << solve_options_.num_replicas << ' '
     << solve_options_.num_sweeps << ' ' << solve_options_.seed << "\n";
  surrogate_.save(os);
}

QrossTuner QrossTuner::load(std::istream& is) {
  std::string magic;
  solvers::SolveOptions options;
  QROSS_REQUIRE(static_cast<bool>(is >> magic >> options.num_replicas >>
                                  options.num_sweeps >> options.seed) &&
                    magic == "qross_tuner_v1",
                "bad tuner header");
  return QrossTuner(surrogate::SolverSurrogate::load(is), options);
}

double QrossTuner::propose(const tsp::TspInstance& instance,
                           std::optional<double> pf_target,
                           const TuneOptions& options) const {
  const surrogate::PreparedTspInstance prepared(instance);
  const auto features = surrogate::extract_features(prepared.prepared());
  const StrategyContext context =
      make_context(surrogate_, features, options, solve_options_.num_replicas);
  if (pf_target.has_value()) {
    return PfBasedStrategy(*pf_target).propose(context);
  }
  return MinimumFitnessStrategy(options.strategy.min_fitness).propose(context);
}

TuneOutcome QrossTuner::tune(const tsp::TspInstance& instance,
                             const solvers::SolverPtr& solver,
                             const TuneOptions& options) const {
  QROSS_REQUIRE(solver != nullptr, "solver required");
  QROSS_REQUIRE(options.trials >= 1, "at least one trial");

  const surrogate::PreparedTspInstance prepared(instance);
  const auto features = surrogate::extract_features(prepared.prepared());
  const StrategyContext context =
      make_context(surrogate_, features, options, solve_options_.num_replicas);

  solvers::SolveOptions solve_options = solve_options_;
  solve_options.seed = derive_seed(options.seed, 0x7e);
  // Routed through the shared solve service when the caller provides one:
  // identical trial calls (same model, options, derived seed) coalesce and
  // hit its result cache, so repeated sessions cost no extra solver calls.
  solvers::SolverPtr effective_solver = solver;
  if (options.service != nullptr) {
    effective_solver =
        std::make_shared<service::ServiceSolver>(*options.service, solver);
  }
  solvers::BatchRunner runner(prepared.problem(), effective_solver,
                              solve_options);
  ComposedStrategy strategy(options.strategy, derive_seed(options.seed, 1));

  TuneOutcome outcome;
  outcome.best_length = std::numeric_limits<double>::infinity();
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    const double a = strategy.propose(context);
    const solvers::SolverSample sample = runner.run(a);
    strategy.observe(sample);

    if (sample.stats.has_feasible()) {
      const auto tour =
          tsp::decode_tour(prepared.prepared(), *sample.stats.best_feasible);
      QROSS_ASSERT(tour.has_value());
      const double length = instance.tour_length(*tour);
      if (length < outcome.best_length) {
        outcome.best_length = length;
        outcome.best_tour = *tour;
        outcome.best_parameter = a;
      }
    }
    outcome.trials.push_back(
        {a, sample.stats.pf,
         outcome.feasible() ? outcome.best_length
                            : std::numeric_limits<double>::infinity()});
  }
  return outcome;
}

}  // namespace qross::core
