#pragma once

// One-dimensional optimisation utilities for the parameter-selection
// strategies: Brent's method for local minimisation, bisection for root
// finding on monotone responses, and ShgoLite — a low-discrepancy sampling +
// local-refinement global minimiser standing in for scipy's `shgo` (paper
// §3.4.1: "We use shgo optimiser from scipy to search parameter search").

#include <functional>
#include <vector>

namespace qross::opt {

using Objective = std::function<double(double)>;

struct OptimumResult {
  double x = 0.0;
  double value = 0.0;
  std::size_t evaluations = 0;
};

/// Brent's method (golden section + successive parabolic interpolation) on
/// [lo, hi].  Finds a local minimum to within `tolerance`.
OptimumResult brent_minimize(const Objective& objective, double lo, double hi,
                             double tolerance = 1e-8,
                             std::size_t max_iterations = 200);

/// Bisection root finding for f(x) = 0 on [lo, hi]; requires a sign change.
/// Returns the midpoint of the final bracket.
double bisect_root(const Objective& function, double lo, double hi,
                   double tolerance = 1e-10, std::size_t max_iterations = 200);

struct ShgoConfig {
  /// Initial stratified samples over the domain.
  std::size_t num_samples = 64;
  /// How many of the best samples seed local Brent refinements.
  std::size_t num_refinements = 3;
  double tolerance = 1e-8;
};

/// Global minimisation on [lo, hi]: stratified low-discrepancy sampling
/// followed by Brent refinement around the best candidates.
OptimumResult shgo_minimize(const Objective& objective, double lo, double hi,
                            const ShgoConfig& config = {});

}  // namespace qross::opt
