#pragma once

// Relaxation-parameter selection strategies (paper §3.4 and §4.2).
//
//  * MinimumFitnessStrategy (MFS, offline): minimise the surrogate-predicted
//    expected minimum fitness over A with a global optimiser.
//  * PfBasedStrategy (PBS, offline): find A with Pf(A) closest to a target
//    feasibility probability p.
//  * OnlineFittingStrategy (OFS, online): fit the sigmoid ansatz to observed
//    (A, Pf) pairs and sample the next candidate on the fitted slope
//    (Algorithm 1).
//  * ComposedStrategy: the paper's benchmark mixture — MFS first, then PBS
//    at p = 80% and 20%, then OFS for the remaining trials, with early
//    trials feeding the OFS curve fit.
//
// Offline strategies consult only the surrogate; they cost zero solver
// calls.  The online strategy consumes the observed SolverSamples.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "qross/min_fitness.hpp"
#include "qross/sigmoid_fit.hpp"
#include "solvers/batch_runner.hpp"
#include "surrogate/model.hpp"

namespace qross::core {

/// Everything a strategy needs to know about the instance being tuned.
/// The surrogate is consulted through the prediction-only evaluator
/// interface, so a serving layer can substitute e.g. the cross-session
/// batching combiner (surrogate/batched.hpp) without the strategies
/// noticing — any conforming evaluator is bit-identical by contract.
struct StrategyContext {
  const surrogate::SurrogateEvaluator* surrogate = nullptr;
  std::array<double, surrogate::kNumTspFeatures> features{};
  double anchor = 1.0;
  /// Relaxation-parameter search box (prepared-instance units).
  double a_min = 1.0;
  double a_max = 100.0;
  /// Solver batch size B used in the expected-minimum-fitness formula.
  std::size_t batch_size = 32;
};

class MinimumFitnessStrategy {
 public:
  explicit MinimumFitnessStrategy(MinFitnessConfig config = {},
                                  std::size_t grid_points = 96);

  /// argmin_A E[min fitness](A) over the context's search box.
  double propose(const StrategyContext& context) const;

  /// The predicted landscape (for inspection / the paper's "predict the
  /// landscape of the objective function" feature).
  std::vector<std::pair<double, double>> landscape(
      const StrategyContext& context, std::size_t points = 64) const;

 private:
  MinFitnessConfig config_;
  std::size_t grid_points_;
};

class PfBasedStrategy {
 public:
  /// target_pf = the paper's p (e.g. 0.8 or 0.2).
  explicit PfBasedStrategy(double target_pf);

  /// argmin_A |Pf(A) - p|.
  double propose(const StrategyContext& context) const;

  double target_pf() const { return target_pf_; }

 private:
  double target_pf_;
};

class OnlineFittingStrategy {
 public:
  struct Config {
    /// Slope band sampled from: candidates satisfy eps < S(A) < 1 - eps.
    double epsilon = 0.05;
    /// Minimum observations before curve fitting kicks in; before that the
    /// strategy explores by bound doubling/halving.
    std::size_t min_history = 2;
  };

  OnlineFittingStrategy();
  explicit OnlineFittingStrategy(std::uint64_t seed);
  OnlineFittingStrategy(Config config, std::uint64_t seed);

  /// Next candidate A (Algorithm 1 lines 4-5).
  double propose(const StrategyContext& context);

  /// Records a solver result (Algorithm 1 lines 6-7).
  void observe(const solvers::SolverSample& sample);

  const std::vector<solvers::SolverSample>& history() const {
    return history_;
  }

  /// Latest sigmoid fit, if one has been computed.
  const std::optional<SigmoidFitResult>& last_fit() const { return last_fit_; }

 private:
  Config config_;
  Rng rng_;
  std::vector<solvers::SolverSample> history_;
  std::optional<SigmoidFitResult> last_fit_;
  // Running bracket: largest A seen with Pf == 0, smallest with Pf == 1.
  std::optional<double> a_left_;
  std::optional<double> a_right_;
};

/// The paper's composed benchmark strategy (§5 "Strategy").
class ComposedStrategy {
 public:
  struct Config {
    std::vector<double> pbs_targets{0.8, 0.2};
    /// The composed strategy's first trial is its only shot at a feasible
    /// solution before any solver feedback, so its MFS runs risk-averse by
    /// default (see MinFitnessConfig::risk_aversion; z = 1.5 calibrated on
    /// the synthetic benchmark at B = 16).  Standalone
    /// MinimumFitnessStrategy keeps the paper-pure z = 0 default.
    MinFitnessConfig min_fitness{.panels = 512,
                                 .tail_sigmas = 10.0,
                                 .pf_floor = 1e-6,
                                 .risk_aversion = 1.5};
    OnlineFittingStrategy::Config ofs;
  };

  ComposedStrategy();
  explicit ComposedStrategy(std::uint64_t seed);
  ComposedStrategy(Config config, std::uint64_t seed);

  /// Candidate for the next trial; call observe() with the result before
  /// the next propose().
  double propose(const StrategyContext& context);
  void observe(const solvers::SolverSample& sample);

  std::size_t num_trials() const { return num_proposed_; }

 private:
  Config config_;
  MinimumFitnessStrategy mfs_;
  OnlineFittingStrategy ofs_;
  std::size_t num_proposed_ = 0;
};

}  // namespace qross::core
