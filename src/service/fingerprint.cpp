#include "service/fingerprint.hpp"

#include <string>

#include "common/hash.hpp"

namespace qross::service {

namespace {

// Two decorrelated lanes fed by one pass over the input stream — the model
// scan is O(n^2) and runs on every submit, so it must not run per lane.
struct DualHash {
  Hash64 hi{1};
  Hash64 lo{2};

  template <typename T>
  DualHash& mix(T value) {
    hi.mix(value);
    lo.mix(value);
    return *this;
  }

  Fingerprint digest() const { return {hi.digest(), lo.digest()}; }
};

// Mixes the canonical model stream: only structural nonzeros with their
// (i, j) coordinates contribute, so the digest is independent of how the
// coefficients were accumulated.
void mix_model(DualHash& h, const qubo::QuboModel& model) {
  const std::size_t n = model.num_vars();
  h.mix(static_cast<std::uint64_t>(n));
  h.mix(model.offset());
  const auto raw = model.raw();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double w = raw[i * n + j];
      if (w == 0.0) continue;  // structural zero (and -0.0): not part of the key
      h.mix(static_cast<std::uint64_t>(i));
      h.mix(static_cast<std::uint64_t>(j));
      h.mix(w);
    }
  }
}

}  // namespace

Fingerprint fingerprint_model(const qubo::QuboModel& model) {
  DualHash h;
  mix_model(h, model);
  return h.digest();
}

Fingerprint fingerprint_job(const solvers::QuboSolver& solver,
                            const qubo::QuboModel& model,
                            const solvers::SolveOptions& options) {
  DualHash h;
  h.mix(std::string_view(solver.name()));
  h.mix(solver.config_digest());
  mix_model(h, model);
  h.mix(static_cast<std::uint64_t>(options.num_replicas));
  h.mix(static_cast<std::uint64_t>(options.num_sweeps));
  h.mix(options.seed);
  // num_threads, stop and on_sweep intentionally excluded (see header).
  return h.digest();
}

}  // namespace qross::service
