#include "service/tune_service.hpp"

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/assert.hpp"
#include "surrogate/dataset.hpp"
#include "surrogate/features.hpp"
#include "surrogate/pipeline.hpp"

namespace qross::service {

const char* to_string(TuneSessionStatus status) {
  switch (status) {
    case TuneSessionStatus::running: return "running";
    case TuneSessionStatus::done: return "done";
    case TuneSessionStatus::cancelled: return "cancelled";
    case TuneSessionStatus::failed: return "failed";
  }
  return "?";
}

bool is_terminal(TuneSessionStatus status) {
  return status != TuneSessionStatus::running;
}

namespace detail {

struct TuneSessionState {
  std::uint64_t id = 0;
  std::string client_id;
  std::uint64_t trace_id = 0;

  mutable Mutex mutex;
  std::condition_variable cv;
  TuneSessionStatus status GUARDED_BY(mutex) = TuneSessionStatus::running;
  /// events[i].index == i
  std::vector<core::TuneTrialEvent> events GUARDED_BY(mutex);
  core::TuneOutcome outcome GUARDED_BY(mutex);
  std::string error GUARDED_BY(mutex);
  double wall_ms GUARDED_BY(mutex) = 0.0;
  std::function<void()> hook GUARDED_BY(mutex);

  // Lock-free by design: `invocations` is bumped from inside probe solves
  // and `stop` is the cooperative cancellation token — neither may depend
  // on the session mutex.
  std::atomic<std::uint64_t> invocations{0};
  solvers::StopToken stop = solvers::StopToken::create();
};

}  // namespace detail

namespace {

using detail::TuneSessionState;

/// Counts actual kernel invocations attributable to this session.  Name and
/// config digest are forwarded unchanged so the counted solver shares cache
/// fingerprints with direct submissions — which is exactly what makes the
/// count meaningful: a warm-cache replay performs zero invocations.
class InvocationCountingSolver final : public solvers::QuboSolver {
 public:
  InvocationCountingSolver(solvers::SolverPtr inner,
                           std::atomic<std::uint64_t>* count)
      : inner_(std::move(inner)), count_(count) {}

  std::string name() const override { return inner_->name(); }
  std::uint64_t config_digest() const override {
    return inner_->config_digest();
  }

  qubo::SolveBatch solve(const qubo::QuboModel& model,
                         const solvers::SolveOptions& options) const override {
    count_->fetch_add(1, std::memory_order_relaxed);
    return inner_->solve(model, options);
  }

 private:
  solvers::SolverPtr inner_;
  std::atomic<std::uint64_t>* count_;
};

}  // namespace

TuneHandle::TuneHandle(std::shared_ptr<detail::TuneSessionState> state)
    : state_(std::move(state)) {}

std::uint64_t TuneHandle::id() const {
  QROSS_REQUIRE(state_ != nullptr, "empty tune handle");
  return state_->id;
}

TuneSessionStatus TuneHandle::status() const {
  QROSS_REQUIRE(state_ != nullptr, "empty tune handle");
  MutexLock lock(state_->mutex);
  return state_->status;
}

TuneSessionResult TuneHandle::wait() const {
  QROSS_REQUIRE(state_ != nullptr, "empty tune handle");
  {
    MutexLock lock(state_->mutex);
    while (!is_terminal(state_->status)) state_->cv.wait(lock.native());
  }
  return result();
}

bool TuneHandle::wait_for(std::chrono::milliseconds timeout) const {
  QROSS_REQUIRE(state_ != nullptr, "empty tune handle");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(state_->mutex);
  while (!is_terminal(state_->status)) {
    if (state_->cv.wait_until(lock.native(), deadline) ==
        std::cv_status::timeout) {
      return is_terminal(state_->status);
    }
  }
  return true;
}

TuneSessionResult TuneHandle::result() const {
  QROSS_REQUIRE(state_ != nullptr, "empty tune handle");
  MutexLock lock(state_->mutex);
  QROSS_REQUIRE(is_terminal(state_->status), "session not finished");
  TuneSessionResult result;
  result.status = state_->status;
  result.outcome = state_->outcome;
  result.error = state_->error;
  result.solver_invocations =
      state_->invocations.load(std::memory_order_relaxed);
  result.wall_ms = state_->wall_ms;
  return result;
}

std::vector<core::TuneTrialEvent> TuneHandle::events_since(
    std::size_t from) const {
  QROSS_REQUIRE(state_ != nullptr, "empty tune handle");
  MutexLock lock(state_->mutex);
  if (from >= state_->events.size()) return {};
  return {state_->events.begin() + static_cast<std::ptrdiff_t>(from),
          state_->events.end()};
}

void TuneHandle::notify(std::function<void()> fn) const {
  QROSS_REQUIRE(state_ != nullptr, "empty tune handle");
  std::function<void()> fire;
  {
    MutexLock lock(state_->mutex);
    if (fn != nullptr &&
        (!state_->events.empty() || is_terminal(state_->status))) {
      fire = fn;
    }
    state_->hook = std::move(fn);
  }
  if (fire) fire();
}

void TuneHandle::cancel() const {
  if (state_ == nullptr) return;
  state_->stop.request_stop();
}

TuneService::TuneService(core::QrossTuner tuner, SolveService& solve_service,
                         TuneServiceConfig config)
    : tuner_(std::move(tuner)),
      solve_(&solve_service),
      config_(std::move(config)),
      batched_(tuner_.surrogate()) {}

TuneService::~TuneService() {
  shutdown();
  std::vector<Session> sessions;
  {
    MutexLock lock(mutex_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) {
    if (session.worker.joinable()) session.worker.join();
  }
}

void TuneService::shutdown() {
  MutexLock lock(mutex_);
  shutting_down_ = true;
  for (auto& session : sessions_) session.state->stop.request_stop();
}

TuneHandle TuneService::submit(tsp::TspInstance instance,
                               solvers::SolverPtr solver,
                               core::TuneOptions options,
                               TuneSubmitOptions submit) {
  QROSS_REQUIRE(solver != nullptr, "solver required");
  MutexLock lock(mutex_);
  if (shutting_down_) {
    throw AdmissionError(AdmissionErrorKind::shutting_down,
                         "tune service is shutting down");
  }
  reap_locked();
  if (config_.max_sessions != 0 && sessions_.size() >= config_.max_sessions) {
    throw AdmissionError(AdmissionErrorKind::session_quota,
                         "tune service at max concurrent sessions");
  }

  auto state = std::make_shared<TuneSessionState>();
  state->id = next_id_++;
  state->client_id = std::move(submit.client_id);
  state->trace_id = submit.trace_id;
  ++sessions_started_;

  Session session;
  session.state = state;
  session.worker = std::thread(
      [this, state, instance = std::move(instance), solver = std::move(solver),
       options = std::move(options)]() mutable {
        run_session(state, std::move(instance), std::move(solver),
                    std::move(options));
      });
  sessions_.push_back(std::move(session));
  return TuneHandle(state);
}

void TuneService::run_session(std::shared_ptr<detail::TuneSessionState> state,
                              tsp::TspInstance instance,
                              solvers::SolverPtr solver,
                              core::TuneOptions options) {
  const auto start = std::chrono::steady_clock::now();

  options.service = solve_;
  options.evaluator = &batched_;
  options.stop = state->stop;
  options.client_id = state->client_id;
  options.trace_id = state->trace_id;
  options.on_trial = [state](const core::TuneTrialEvent& event) {
    std::function<void()> hook;
    {
      MutexLock lock(state->mutex);
      state->events.push_back(event);
      hook = state->hook;
    }
    if (hook) hook();
  };

  const auto counting = std::make_shared<InvocationCountingSolver>(
      std::move(solver), &state->invocations);

  TuneSessionStatus final_status = TuneSessionStatus::done;
  core::TuneOutcome outcome;
  std::string error;
  try {
    outcome = tuner_.tune(instance, counting, options);
    final_status = outcome.cancelled ? TuneSessionStatus::cancelled
                                     : TuneSessionStatus::done;
  } catch (const std::exception& e) {
    // A cancelled probe job can surface as a routed-solve exception (the
    // job died without a batch); the session's own stop token tells the
    // two apart.
    final_status = state->stop.stop_requested() ? TuneSessionStatus::cancelled
                                                : TuneSessionStatus::failed;
    error = e.what();
  }

  if (final_status == TuneSessionStatus::done && !config_.corpus_path.empty()) {
    std::vector<core::TuneTrialEvent> events;
    {
      MutexLock lock(state->mutex);
      events = state->events;
    }
    append_corpus(*state, instance, events);
  }

  // Counter bump BEFORE the terminal transition: once the state reads as
  // terminal this thread never touches the service mutex again, so
  // reap_locked() may join it while holding that mutex.
  {
    MutexLock lock(mutex_);
    switch (final_status) {
      case TuneSessionStatus::done: ++sessions_done_; break;
      case TuneSessionStatus::cancelled: ++sessions_cancelled_; break;
      case TuneSessionStatus::failed: ++sessions_failed_; break;
      case TuneSessionStatus::running: break;
    }
  }

  std::function<void()> hook;
  {
    MutexLock lock(state->mutex);
    state->outcome = std::move(outcome);
    state->error = std::move(error);
    state->wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    state->status = final_status;
    hook = state->hook;
  }
  state->cv.notify_all();
  if (hook) hook();
}

void TuneService::append_corpus(
    const detail::TuneSessionState& state, const tsp::TspInstance& instance,
    const std::vector<core::TuneTrialEvent>& events) {
  if (events.empty()) return;
  surrogate::Dataset dataset;
  const surrogate::PreparedTspInstance prepared(instance);
  const auto features = surrogate::extract_features(prepared.prepared());
  const double anchor = surrogate::scale_anchor(features);
  for (const auto& event : events) {
    surrogate::DatasetRow row;
    row.instance_id = state.id;
    row.features = features;
    row.scale_anchor = anchor;
    row.relaxation_parameter = event.relaxation_parameter;
    row.pf = event.pf;
    row.energy_avg = event.energy_avg;
    row.energy_std = event.energy_std;
    dataset.rows.push_back(row);
  }

  MutexLock lock(mutex_);
  std::error_code ec;
  const bool need_header =
      !std::filesystem::exists(config_.corpus_path, ec) ||
      std::filesystem::file_size(config_.corpus_path, ec) == 0;
  std::ofstream os(config_.corpus_path, std::ios::app);
  if (!os) return;  // corpus is best-effort; serving must not die on it
  dataset.save_csv(os, need_header);
  if (os) corpus_rows_ += dataset.rows.size();
}

void TuneService::reap_locked() {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    bool terminal = false;
    {
      MutexLock lock(it->state->mutex);
      terminal = is_terminal(it->state->status);
    }
    if (terminal) {
      if (it->worker.joinable()) it->worker.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

TuneServiceMetrics TuneService::metrics() const {
  TuneServiceMetrics metrics;
  {
    MutexLock lock(mutex_);
    metrics.sessions_started = sessions_started_;
    metrics.sessions_done = sessions_done_;
    metrics.sessions_cancelled = sessions_cancelled_;
    metrics.sessions_failed = sessions_failed_;
    metrics.corpus_rows_appended = corpus_rows_;
    for (const auto& session : sessions_) {
      MutexLock state_lock(session.state->mutex);
      if (!is_terminal(session.state->status)) ++metrics.sessions_active;
    }
  }
  metrics.surrogate = batched_.stats();
  return metrics;
}

}  // namespace qross::service
