#include "service/result_cache.hpp"

#include "common/assert.hpp"

namespace qross::service {

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const qubo::SolveBatch> ResultCache::get(
    const Fingerprint& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most-recent
  return it->second->batch;
}

void ResultCache::put(const Fingerprint& key,
                      std::shared_ptr<const qubo::SolveBatch> batch) {
  if (capacity_ == 0) return;
  QROSS_ASSERT(batch != nullptr);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->batch = std::move(batch);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front({key, std::move(batch)});
  index_[key] = lru_.begin();
}

void ResultCache::clear() {
  lru_.clear();
  index_.clear();
}

}  // namespace qross::service
