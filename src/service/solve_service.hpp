#pragma once

// SolveService — the asynchronous front door above a solver call.
//
// Everything below this layer is one blocking `solve()`; everything a
// serving system needs *around* that call lives here:
//
//   * a worker pool (common/thread_pool) executing jobs concurrently;
//   * a priority + deadline aware queue: higher priority runs first, and a
//     job whose deadline has already passed when a worker picks it up
//     completes as `expired` WITHOUT invoking the solver.  Within one
//     priority band, ready work is divided between client ids by deficit
//     round robin (weighted; FIFO per client), so arrival order alone
//     cannot let one flooding submitter starve the rest; per-client
//     admission quotas bound how much any client may buffer at all;
//   * cooperative cancellation: each execution owns a StopToken threaded
//     into the kernel, so cancel() and mid-run deadline expiry take effect
//     within one sweep, returning the partial batch;
//   * an LRU result cache keyed by the canonical job fingerprint
//     (solver identity + model structure/weights + normalised options) —
//     a hit completes the job immediately with the original, bit-identical
//     batch; with ServiceConfig::cache_path the cache persists across
//     processes (io/CacheStore journal + snapshot, warm-filled at start);
//   * request coalescing: concurrent submissions with equal fingerprints
//     share one execution; N identical submissions cost one solver call and
//     produce N aliased results;
//   * a ServiceMetrics snapshot: queue depth, throughput, per-phase
//     latency percentiles, cache and job counters.
//
// Concurrency notes.  One mutex (in ServiceCore) guards the queue, the
// in-flight index, the cache and the counters; each job additionally has a
// small mutex + condvar for its own status (lock order: core before job).
// Handles may outlive the service: the destructor drives every job to a
// terminal state (queued → cancelled, running → stop requested and joined)
// before the workers are torn down.  Do NOT call a blocking JobHandle
// method from inside a solver running on this service's own pool — that is
// the classic worker-waits-for-worker deadlock.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/thread_pool.hpp"
#include "qubo/model.hpp"
#include "service/job.hpp"
#include "service/metrics.hpp"
#include "solvers/solver.hpp"

namespace qross::service {

struct ServiceConfig {
  /// Concurrent solver executions; 0 = all hardware threads.  Jobs may
  /// additionally fan replicas out via SolveOptions::num_threads.
  std::size_t num_workers = 2;
  /// LRU result-cache entries; 0 disables caching (coalescing stays on).
  std::size_t cache_capacity = 256;
  /// Sliding-window size of the latency percentile reservoirs.
  std::size_t latency_window = 1024;
  /// When non-empty, the result cache persists here across runs
  /// (io/CacheStore): entries are warm-filled at construction, journaled as
  /// executions complete, and compacted into a versioned snapshot by the
  /// destructor or an explicit flush_cache().  The canonical fingerprint is
  /// stable across processes, so a second run on the same file replays
  /// bit-identical batches with zero solver invocations.  Corrupt,
  /// truncated, or future-version files degrade to a cold cache — never an
  /// error (see ServiceMetrics::cache_load_skipped).  Ignored when
  /// cache_capacity is 0 (no cache to persist).
  std::string cache_path;
  /// Snapshot eviction budgets applied at compaction (newest entries kept).
  std::size_t cache_file_max_entries = 4096;
  std::uint64_t cache_file_max_bytes = 64ull * 1024 * 1024;

  // --- admission control / fair share ---------------------------------------
  //
  // Jobs are attributed to the client id in SubmitOptions (empty = one
  // shared anonymous client).  Admission quotas apply per client id and are
  // enforced at submit() with a typed AdmissionError; the fair-share
  // scheduler divides each priority band between clients by weight, so one
  // flooding submitter can no longer starve the rest through FIFO arrival
  // order alone (priority still wins globally).

  /// Max non-terminal jobs one client may have in the service (queued +
  /// running + coalesced); 0 = unlimited.  Cache hits are exempt: they
  /// complete inside submit() without occupying a worker or queue slot,
  /// and the quotas bound resource occupancy, not free work.
  std::size_t max_inflight_per_client = 0;
  /// Max jobs one client may have waiting in the queue; 0 = unlimited.
  /// Checked only for submissions that would actually queue — cache hits
  /// and joins onto an already-running execution are not queued work.
  std::size_t max_queued_per_client = 0;
  /// Deficit-round-robin weight for clients without an explicit entry.  A
  /// weight-2 client is offered two dispatches per scheduling cycle for
  /// every one a weight-1 client gets.  Clamped to [0.01, 100].
  double default_client_weight = 1.0;
  /// Explicit per-client weights (same clamp).
  std::map<std::string, double> client_weights;
  /// When false, client ids still gate admission quotas and metrics but the
  /// scheduler degrades to plain FIFO within a priority band (the pre-PR-5
  /// behaviour) — kept as a switch so the fairness bench can measure the
  /// difference.  With one client (or none named) the two are identical.
  bool fair_share = true;
  /// Bound on retained per-client bookkeeping rows: when a NEW client id
  /// would exceed it, just enough idle rows (inflight == queued == 0) are
  /// retired — a daemon serving endless one-shot "conn-N" clients must not
  /// grow its metrics table forever.  A retired client's jobs stay in the
  /// service-wide monotonic counters; resubmitting under the same id
  /// simply starts a fresh row.  Rows with live work and clients named in
  /// `client_weights` (operators correlate their counters across polls)
  /// are never retired.  0 = unbounded.
  std::size_t max_client_rows = 1024;
};

struct SubmitOptions {
  /// Higher runs first; FIFO within equal priorities.  Joining an already
  /// queued equivalent execution with a higher priority promotes it.
  int priority = 0;
  /// Absolute deadline, enforced per job.  Expired-while-queued jobs never
  /// start — there is no timer thread, so the `expired` transition is
  /// observed when a worker pops the execution, not at the deadline
  /// instant.  Mid-run (checked at every sweep tick) a due job is detached
  /// from its execution as `expired` with no batch — the kernel keeps
  /// running for the remaining interested jobs; only when the due job is
  /// the last interested one is the kernel stop-signalled, completing it
  /// as `expired` with the partial batch.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Skip both the cache lookup/store and coalescing for this job (e.g.
  /// fresh statistics wanted despite an equal fingerprint).
  bool bypass_cache = false;
  /// Who this job is accounted to for admission quotas and fair-share
  /// scheduling.  Empty = the shared anonymous client (all such jobs are
  /// one client for both purposes).  The network server fills this from the
  /// connection's identity.
  std::string client_id;
  /// Caller-supplied trace correlation id (0 = none).  Stamped on every
  /// obs::TraceRecorder event of this job's lifecycle, so a remote client
  /// that sets it can stitch server-side spans into its own trace.  Purely
  /// observational — no effect on scheduling, coalescing, or caching.
  std::uint64_t trace_id = 0;
};

/// Why submit() refused a job without enqueuing it.
enum class AdmissionErrorKind {
  /// The service is shutting down / draining.  Retryable: another instance
  /// (e.g. a restarted daemon) may accept the same job verbatim.
  shutting_down,
  /// The client is at max_inflight_per_client.  Permanent for THIS job at
  /// this moment — resubmitting the identical job without first letting
  /// some of the client's work finish can never succeed.
  inflight_quota,
  /// The client is at max_queued_per_client (same permanence as above).
  queued_quota,
  /// The TuneService is at its concurrent-session limit.  Retryable:
  /// sessions complete on their own, so the same submission can succeed
  /// later without the client changing anything (the wire maps this to the
  /// retryable server-full code).
  session_quota,
};

const char* to_string(AdmissionErrorKind kind);

/// Thrown by SolveService::submit() when a job is refused at the door.
/// Derives from std::invalid_argument so pre-admission-control callers that
/// caught the shutdown precondition keep working unchanged.
class AdmissionError : public std::invalid_argument {
 public:
  AdmissionError(AdmissionErrorKind kind, const std::string& message)
      : std::invalid_argument(message), kind_(kind) {}

  AdmissionErrorKind kind() const { return kind_; }
  /// True when retrying the same submission later can succeed without the
  /// caller changing anything (shutdown/drain: a fresh service instance may
  /// take it; session quota: other sessions finish on their own).  Per-client
  /// quota violations are NOT retryable until the client's own earlier jobs
  /// finish.
  bool retryable() const {
    return kind_ == AdmissionErrorKind::shutting_down ||
           kind_ == AdmissionErrorKind::session_quota;
  }

 private:
  AdmissionErrorKind kind_;
};

namespace detail {
struct ServiceCore;
}  // namespace detail

class SolveService {
 public:
  explicit SolveService(ServiceConfig config = {});
  /// Cancels all queued jobs, stop-signals running ones, waits for the
  /// workers to drain, and only then returns; every handle is terminal
  /// afterwards.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  std::size_t num_workers() const { return pool_.size(); }

  /// Enqueues one solve.  The model is copied only when a new execution is
  /// actually created — cache hits and coalesced submissions never pay the
  /// O(n²) copy.  The returned handle observes and controls the job.
  /// A live options.stop token acts as this job's cancel(); it is bridged
  /// for jobs present when their execution starts, but NOT for a job that
  /// coalesces onto an already-running execution — cancel such a job via
  /// its handle (ServiceSolver does exactly that by polling).  Throws
  /// AdmissionError (a std::invalid_argument) after shutdown() or when the
  /// client is over an admission quota — see AdmissionErrorKind.
  JobHandle submit(solvers::SolverPtr solver, const qubo::QuboModel& model,
                   solvers::SolveOptions options, SubmitOptions submit = {});

  ServiceMetrics metrics() const;

  /// Explicit persistence flush: compacts the on-disk store (journal merged
  /// into the snapshot, eviction budget applied).  Safe to call while
  /// serving — completed results appended concurrently land in a fresh
  /// journal and survive.  Returns the snapshot entry count, or 0 when no
  /// cache_path is configured.  The destructor flushes automatically.
  std::size_t flush_cache();

  /// Idempotent early teardown: rejects further submissions, cancels every
  /// queued job and stop-signals running ones.  Does not wait for the
  /// workers (the destructor does).
  void shutdown();

 private:
  std::shared_ptr<detail::ServiceCore> core_;
  // Declared after core_ so it is destroyed first: the destructor drains
  // pending worker tasks (which hold the core via shared_ptr) and joins.
  ThreadPool pool_;
};

}  // namespace qross::service
