#pragma once

// SolveService — the asynchronous front door above a solver call.
//
// Everything below this layer is one blocking `solve()`; everything a
// serving system needs *around* that call lives here:
//
//   * a worker pool (common/thread_pool) executing jobs concurrently;
//   * a priority + deadline aware queue: higher priority runs first, FIFO
//     within a priority, and a job whose deadline has already passed when a
//     worker picks it up completes as `expired` WITHOUT invoking the solver;
//   * cooperative cancellation: each execution owns a StopToken threaded
//     into the kernel, so cancel() and mid-run deadline expiry take effect
//     within one sweep, returning the partial batch;
//   * an LRU result cache keyed by the canonical job fingerprint
//     (solver identity + model structure/weights + normalised options) —
//     a hit completes the job immediately with the original, bit-identical
//     batch; with ServiceConfig::cache_path the cache persists across
//     processes (io/CacheStore journal + snapshot, warm-filled at start);
//   * request coalescing: concurrent submissions with equal fingerprints
//     share one execution; N identical submissions cost one solver call and
//     produce N aliased results;
//   * a ServiceMetrics snapshot: queue depth, throughput, per-phase
//     latency percentiles, cache and job counters.
//
// Concurrency notes.  One mutex (in ServiceCore) guards the queue, the
// in-flight index, the cache and the counters; each job additionally has a
// small mutex + condvar for its own status (lock order: core before job).
// Handles may outlive the service: the destructor drives every job to a
// terminal state (queued → cancelled, running → stop requested and joined)
// before the workers are torn down.  Do NOT call a blocking JobHandle
// method from inside a solver running on this service's own pool — that is
// the classic worker-waits-for-worker deadlock.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/thread_pool.hpp"
#include "qubo/model.hpp"
#include "service/job.hpp"
#include "service/metrics.hpp"
#include "solvers/solver.hpp"

namespace qross::service {

struct ServiceConfig {
  /// Concurrent solver executions; 0 = all hardware threads.  Jobs may
  /// additionally fan replicas out via SolveOptions::num_threads.
  std::size_t num_workers = 2;
  /// LRU result-cache entries; 0 disables caching (coalescing stays on).
  std::size_t cache_capacity = 256;
  /// Sliding-window size of the latency percentile reservoirs.
  std::size_t latency_window = 1024;
  /// When non-empty, the result cache persists here across runs
  /// (io/CacheStore): entries are warm-filled at construction, journaled as
  /// executions complete, and compacted into a versioned snapshot by the
  /// destructor or an explicit flush_cache().  The canonical fingerprint is
  /// stable across processes, so a second run on the same file replays
  /// bit-identical batches with zero solver invocations.  Corrupt,
  /// truncated, or future-version files degrade to a cold cache — never an
  /// error (see ServiceMetrics::cache_load_skipped).  Ignored when
  /// cache_capacity is 0 (no cache to persist).
  std::string cache_path;
  /// Snapshot eviction budgets applied at compaction (newest entries kept).
  std::size_t cache_file_max_entries = 4096;
  std::uint64_t cache_file_max_bytes = 64ull * 1024 * 1024;
};

struct SubmitOptions {
  /// Higher runs first; FIFO within equal priorities.  Joining an already
  /// queued equivalent execution with a higher priority promotes it.
  int priority = 0;
  /// Absolute deadline, enforced per job.  Expired-while-queued jobs never
  /// start — there is no timer thread, so the `expired` transition is
  /// observed when a worker pops the execution, not at the deadline
  /// instant.  Mid-run (checked at every sweep tick) a due job is detached
  /// from its execution as `expired` with no batch — the kernel keeps
  /// running for the remaining interested jobs; only when the due job is
  /// the last interested one is the kernel stop-signalled, completing it
  /// as `expired` with the partial batch.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Skip both the cache lookup/store and coalescing for this job (e.g.
  /// fresh statistics wanted despite an equal fingerprint).
  bool bypass_cache = false;
};

namespace detail {
struct ServiceCore;
}  // namespace detail

class SolveService {
 public:
  explicit SolveService(ServiceConfig config = {});
  /// Cancels all queued jobs, stop-signals running ones, waits for the
  /// workers to drain, and only then returns; every handle is terminal
  /// afterwards.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  std::size_t num_workers() const { return pool_.size(); }

  /// Enqueues one solve.  The model is copied only when a new execution is
  /// actually created — cache hits and coalesced submissions never pay the
  /// O(n²) copy.  The returned handle observes and controls the job.
  /// A live options.stop token acts as this job's cancel(); it is bridged
  /// for jobs present when their execution starts, but NOT for a job that
  /// coalesces onto an already-running execution — cancel such a job via
  /// its handle (ServiceSolver does exactly that by polling).  Throws
  /// std::invalid_argument after shutdown().
  JobHandle submit(solvers::SolverPtr solver, const qubo::QuboModel& model,
                   solvers::SolveOptions options, SubmitOptions submit = {});

  ServiceMetrics metrics() const;

  /// Explicit persistence flush: compacts the on-disk store (journal merged
  /// into the snapshot, eviction budget applied).  Safe to call while
  /// serving — completed results appended concurrently land in a fresh
  /// journal and survive.  Returns the snapshot entry count, or 0 when no
  /// cache_path is configured.  The destructor flushes automatically.
  std::size_t flush_cache();

  /// Idempotent early teardown: rejects further submissions, cancels every
  /// queued job and stop-signals running ones.  Does not wait for the
  /// workers (the destructor does).
  void shutdown();

 private:
  std::shared_ptr<detail::ServiceCore> core_;
  // Declared after core_ so it is destroyed first: the destructor drains
  // pending worker tasks (which hold the core via shared_ptr) and joins.
  ThreadPool pool_;
};

}  // namespace qross::service
