#include "service/solve_service.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/thread_annotations.hpp"
#include "io/cache_store.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "qubo/simd.hpp"
#include "service/fingerprint.hpp"
#include "service/result_cache.hpp"

namespace qross::service {

using Clock = std::chrono::steady_clock;

namespace {

// Clamped at zero: a job coalescing onto an already-running execution
// "waited" a negative interval relative to that execution's start.
double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::max(0.0,
                  std::chrono::duration<double, std::milli>(to - from).count());
}

std::int64_t to_ns(Clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

}  // namespace

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::queued: return "queued";
    case JobStatus::running: return "running";
    case JobStatus::done: return "done";
    case JobStatus::cancelled: return "cancelled";
    case JobStatus::expired: return "expired";
    case JobStatus::failed: return "failed";
  }
  return "?";
}

bool is_terminal(JobStatus status) {
  return status == JobStatus::done || status == JobStatus::cancelled ||
         status == JobStatus::expired || status == JobStatus::failed;
}

const char* to_string(AdmissionErrorKind kind) {
  switch (kind) {
    case AdmissionErrorKind::shutting_down: return "shutting-down";
    case AdmissionErrorKind::inflight_quota: return "inflight-quota";
    case AdmissionErrorKind::queued_quota: return "queued-quota";
    case AdmissionErrorKind::session_quota: return "session-quota";
  }
  return "?";
}

namespace detail {

struct ExecState;

// One submission.  `m`/`cv` guard only this job's status/result; everything
// else is written once at submit time (under the core lock) and read-only
// afterwards.  Lock order: ServiceCore::m before JobState::m, never the
// reverse — JobHandle accessors take only the job lock.
struct JobState {
  std::uint64_t id = 0;
  int priority = 0;
  std::optional<Clock::time_point> deadline;
  /// Who this job is accounted to (admission quotas, fair share).  Written
  /// once at submit; immutable afterwards.
  std::string client_id;
  /// Client-supplied trace id (0 = none), stamped on every trace event of
  /// this job's lifecycle so remote submissions stitch into server spans.
  std::uint64_t trace_id = 0;
  /// True while this job is counted in its client's queued-job tally.
  /// Guarded by ServiceCore::m (NOT the job mutex).
  bool counted_queued = false;
  /// The submitter's own StopToken, captured before the rest of its options
  /// are discarded on coalesce — signalling it cancels THIS job.
  solvers::StopToken stop;
  Clock::time_point submitted_at;
  std::weak_ptr<ServiceCore> core;
  std::weak_ptr<ExecState> exec;

  mutable Mutex m;
  mutable std::condition_variable cv;
  JobStatus status GUARDED_BY(m) = JobStatus::queued;
  /// cancelled while running; completes on exit
  bool wants_cancel GUARDED_BY(m) = false;
  JobResult result GUARDED_BY(m);
  /// One-shot completion hook (JobHandle::notify); fired by finish_job after
  /// the terminal transition, outside this job's lock but possibly inside
  /// the service lock — see the notify() contract in job.hpp.
  std::function<void()> on_terminal GUARDED_BY(m);
};

// One solver execution, shared by every job whose fingerprint coalesced
// onto it.  All fields are guarded by ServiceCore::m except the stop token
// and `deadline_hit`, which the kernel's sweep callback touches lock-free.
// (The guard is another object's mutex reached through a weak_ptr, which
// thread-safety annotations cannot express as a GUARDED_BY path — the
// invariant is enforced by ServiceCore's REQUIRES(m) helpers instead.)
struct ExecState {
  Fingerprint key;
  solvers::SolverPtr solver;
  qubo::QuboModel model;
  solvers::SolveOptions options;
  bool cacheable = true;
  int priority = 0;
  /// The creator's client id — the scheduling lane this execution waits in
  /// (coalesced joiners ride along regardless of their own client).
  std::string client_id;
  /// The creator job's id / trace id, for trace events emitted from the
  /// kernel and journal paths where only the execution is at hand.
  std::uint64_t creator_job_id = 0;
  std::uint64_t creator_trace_id = 0;

  enum class Phase { queued, running, finished };
  Phase phase = Phase::queued;
  bool dead = false;  // no interested jobs remain; skipped at pop
  solvers::StopToken stop = solvers::StopToken::create();
  std::atomic<bool> deadline_hit{false};
  /// (deadline, job) entries the running execution's watchdog polls,
  /// ascending by deadline.  Guarded by ServiceCore::m.  Lives on the
  /// execution (not the run_one frame) so a job with a tighter deadline
  /// coalescing onto an already-running execution can re-arm the watchdog.
  std::vector<std::pair<Clock::time_point, std::shared_ptr<JobState>>> watch;
  /// Earliest pending per-job deadline (ns since the steady epoch), kept in
  /// an atomic so concurrent replica threads can run the per-sweep "is
  /// anything due?" check lock-free; the watch list itself is only touched
  /// under ServiceCore::m.  INT64_MAX = nothing watched.
  std::atomic<std::int64_t> next_deadline_ns{
      std::numeric_limits<std::int64_t>::max()};
  Clock::time_point started_at;
  std::vector<std::shared_ptr<JobState>> subscribers;
};

struct ServiceCore {
  explicit ServiceCore(const ServiceConfig& cfg)
      : config(cfg),
        cache(cfg.cache_capacity),
        wait_reservoir(cfg.latency_window),
        run_reservoir(cfg.latency_window),
        started_at(Clock::now()),
        recent_rate(started_at) {
    // Metric instruments are resolved once here (a mutex + map lookup) and
    // cached as raw pointers so hot paths only touch atomics.  The registry
    // is process-global: counters aggregate across service instances, which
    // is the Prometheus model (one process = one scrape target).
    auto& reg = obs::registry();
    ctr_submitted = reg.counter("qross_jobs_submitted_total",
                                "Admitted job submissions");
    ctr_done = reg.counter("qross_jobs_done_total",
                           "Jobs completed successfully");
    ctr_cancelled = reg.counter("qross_jobs_cancelled_total",
                                "Jobs cancelled");
    ctr_expired = reg.counter("qross_jobs_expired_total",
                              "Jobs expired at or past their deadline");
    ctr_failed = reg.counter("qross_jobs_failed_total",
                             "Jobs whose solver threw");
    ctr_coalesced = reg.counter(
        "qross_jobs_coalesced_total",
        "Submissions attached to an in-flight equivalent execution");
    ctr_dispatched = reg.counter("qross_dispatches_total",
                                 "Solver kernel executions started");
    ctr_cache_hits = reg.counter("qross_cache_hits_total",
                                 "Result-cache hits at submit");
    ctr_cache_misses = reg.counter("qross_cache_misses_total",
                                   "Result-cache misses at submit");
    ctr_admission_rejected = reg.counter(
        "qross_admission_rejected_total",
        "Submissions refused by per-client admission control");
    ctr_sweeps = reg.counter("qross_sweeps_total",
                             "Replica-sweep progress ticks observed");
    ctr_journal_appends = reg.counter(
        "qross_journal_appends_total",
        "Results appended to the persistent cache journal");
    g_queue_depth = reg.gauge("qross_queue_depth",
                              "Executions waiting for a worker");
    g_running = reg.gauge("qross_jobs_running",
                          "Executions inside a solver kernel");
    const std::vector<double> latency_ms = {0.5,  1,    2.5,  5,    10,  25,
                                            50,   100,  250,  500,  1000,
                                            2500, 5000, 10000};
    h_queue_wait = reg.histogram("qross_queue_wait_ms", latency_ms,
                                 "Submit to execution start, milliseconds");
    h_run = reg.histogram("qross_run_ms", latency_ms,
                          "Execution start to kernel exit, milliseconds");
    h_journal = reg.histogram("qross_journal_append_ms",
                              {0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100},
                              "Journal append latency, milliseconds");
    // cache_capacity == 0 disables persistence along with the cache:
    // journaling results that could never be served back would be pure
    // disk overhead.
    if (!config.cache_path.empty() && cache.enabled()) {
      io::CacheStoreConfig store_config;
      store_config.path = config.cache_path;
      store_config.max_entries = config.cache_file_max_entries;
      store_config.max_bytes = config.cache_file_max_bytes;
      store = std::make_unique<io::CacheStore>(store_config);
      // Warm fill, oldest to newest: put() keeps the newest duplicate and
      // leaves the most recent entries most-recently-used in the LRU.
      store->load([this](io::CacheEntry entry) { warm_fill(std::move(entry)); });
      // Report what the LRU RETAINED, not what the file delivered: a
      // snapshot larger than cache_capacity warm-fills only the newest
      // entries, and claiming more would promise hits that cannot happen.
      cache_loaded = cache.size();
      cache_load_skipped = store->load_skipped();
      // Warm-fill overflow churns the eviction counter; runtime metrics
      // should count serving-time evictions only.
      startup_evictions = cache.evictions();
    }
  }

  // Runs after the worker pool joined (SolveService declares the pool after
  // core_), so every completed execution's append has landed: the final
  // compaction folds the whole run's journal into the snapshot.  A run
  // that appended nothing (fully disk-warm replay) skips the rewrite — a
  // leftover journal still loads fine and is folded by the next run that
  // writes, or by an explicit flush/`qross cache compact`.
  ~ServiceCore() {
    if (store && cache_stored > 0) store->compact();
  }

  /// Warm-fill callback target.  It runs inside the constructor, before any
  /// other thread can see this object — but it is reached through a lambda,
  /// which the thread-safety analysis treats as an ordinary unlocked
  /// function (the constructor exemption does not extend into lambdas), so
  /// the check is opted out for this one line.
  void warm_fill(io::CacheEntry entry) NO_THREAD_SAFETY_ANALYSIS {
    cache.put(entry.key, std::move(entry.batch));
  }

  ServiceConfig config;

  mutable Mutex m;
  bool shutting_down GUARDED_BY(m) = false;
  std::uint64_t next_job_id GUARDED_BY(m) = 1;

  // --- fair-share ready queue ----------------------------------------------
  //
  // Priority bands (highest first); inside a band, one FIFO lane per
  // scheduling key (the client id, or one shared key with fair_share off)
  // drained by deficit round robin: on each ring visit a lane is granted
  // its weight in credits and serves one execution per credit before the
  // ring advances.  Entries are popped lazily: priority promotion pushes a
  // duplicate entry and cancellation just marks the execution dead, so the
  // pop loop skips anything no longer queued/alive (or whose band no longer
  // matches the execution's priority) instead of erasing mid-queue.

  struct ReadyEntry {
    int priority = 0;  ///< band at push time; != exec->priority means stale
    std::shared_ptr<ExecState> exec;
  };
  struct ClientLane {
    std::deque<ReadyEntry> ready;
    double credits = 0.0;
    bool granted = false;  ///< weight already granted on this ring visit
    bool in_ring = false;
  };
  struct Band {
    std::unordered_map<std::string, ClientLane> lanes;
    std::vector<std::string> ring;  ///< keys with entries, round-robin order
    std::size_t rr = 0;
  };
  std::map<int, Band, std::greater<int>> bands GUARDED_BY(m);

  /// Per-client admission + scheduling bookkeeping.  Ordered so the metrics
  /// snapshot lists clients deterministically.
  struct ClientState {
    double weight = 1.0;
    std::size_t queued_jobs = 0;
    std::size_t inflight_jobs = 0;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t rejected_inflight = 0;
    std::uint64_t rejected_queued = 0;
  };
  std::map<std::string, ClientState> clients GUARDED_BY(m);
  std::uint64_t admission_rejected GUARDED_BY(m) = 0;

  static double clamp_weight(double weight) {
    return std::min(100.0, std::max(0.01, weight));
  }

  // config is immutable after construction, so this needs no lock.
  double configured_weight(const std::string& id) const {
    const auto it = config.client_weights.find(id);
    return clamp_weight(it != config.client_weights.end()
                            ? it->second
                            : config.default_client_weight);
  }

  ClientState& client_state(const std::string& id) REQUIRES(m) {
    auto it = clients.find(id);
    if (it != clients.end()) return it->second;
    if (config.max_client_rows > 0 &&
        clients.size() >= config.max_client_rows) {
      // Retire idle rows so endless one-shot client ids (the anonymous
      // conn-N case) cannot grow the table forever — but only as many as
      // needed, and never a row with live work (quota state must not be
      // swept away) or an explicitly-weighted tenant (operators correlate
      // its counters across polls).
      for (auto victim = clients.begin();
           victim != clients.end() &&
           clients.size() >= config.max_client_rows;) {
        const bool idle = victim->second.inflight_jobs == 0 &&
                          victim->second.queued_jobs == 0;
        if (idle && !config.client_weights.contains(victim->first)) {
          victim = clients.erase(victim);
        } else {
          ++victim;
        }
      }
    }
    it = clients.try_emplace(id).first;
    it->second.weight = configured_weight(id);
    return it->second;
  }

  /// The scheduling lane an execution waits in.  With fair_share off every
  /// execution shares one lane, which reduces DRR to plain FIFO.
  std::string sched_key(const ExecState& exec) const {
    return config.fair_share ? exec.client_id : std::string();
  }

  /// Weight of a scheduling key WITHOUT materialising a ClientState (the
  /// shared fair_share-off key must not show up as a metrics row).
  double lane_weight(const std::string& key) const REQUIRES(m) {
    const auto it = clients.find(key);
    return it != clients.end() ? it->second.weight : configured_weight(key);
  }

  void push_ready(const std::shared_ptr<ExecState>& exec) REQUIRES(m) {
    Band& band = bands[exec->priority];
    const std::string key = sched_key(*exec);
    ClientLane& lane = band.lanes[key];
    lane.ready.push_back({exec->priority, exec});
    if (!lane.in_ring) {
      lane.in_ring = true;
      band.ring.push_back(key);
    }
  }

  /// Next live execution of one band under deficit round robin, or null
  /// when the band holds none.  Stale entries are dropped without consuming
  /// credit; a lane that empties resets its deficit (standard DRR).
  std::shared_ptr<ExecState> pop_from_band(Band& band) REQUIRES(m) {
    while (!band.ring.empty()) {
      if (band.rr >= band.ring.size()) band.rr = 0;
      const std::string key = band.ring[band.rr];
      ClientLane& lane = band.lanes[key];
      while (!lane.ready.empty()) {
        const auto& entry = lane.ready.front();
        if (entry.exec->dead ||
            entry.exec->phase != ExecState::Phase::queued ||
            entry.exec->priority != entry.priority) {
          lane.ready.pop_front();
        } else {
          break;
        }
      }
      if (lane.ready.empty()) {
        // Erase the lane outright, not just its ring slot: a saturated
        // band may never fully drain, and one-shot client ids must not
        // accumulate dead lanes for its lifetime.  Deficit reset on empty
        // comes free — a re-submitting client gets a fresh lane.
        band.lanes.erase(key);
        band.ring.erase(band.ring.begin() +
                        static_cast<std::ptrdiff_t>(band.rr));
        continue;  // rr now indexes the next key (wraps at the loop top)
      }
      if (!lane.granted) {
        lane.credits += lane_weight(key);
        lane.granted = true;
      }
      if (lane.credits < 1.0) {
        // A fractional-weight client sits out this circuit; the credit is
        // kept and tops up on the next visit.  Weights are clamped >= 0.01,
        // so some lane reaches a full credit within a bounded number of
        // circuits and the loop terminates.
        lane.granted = false;
        ++band.rr;
        continue;
      }
      lane.credits -= 1.0;
      auto exec = lane.ready.front().exec;
      lane.ready.pop_front();
      if (lane.ready.empty()) {
        band.lanes.erase(key);
        band.ring.erase(band.ring.begin() +
                        static_cast<std::ptrdiff_t>(band.rr));
      }
      return exec;
    }
    return nullptr;
  }

  /// Highest-priority live execution across all bands (priority wins
  /// globally; fairness applies within a band).  Drained bands are erased —
  /// which also resets their lanes' deficits, exactly DRR's empty-queue
  /// rule.
  std::shared_ptr<ExecState> pop_ready() REQUIRES(m) {
    for (auto it = bands.begin(); it != bands.end();) {
      if (auto exec = pop_from_band(it->second)) return exec;
      it = bands.erase(it);
    }
    return nullptr;
  }

  std::unordered_map<Fingerprint, std::shared_ptr<ExecState>, FingerprintHash>
      inflight GUARDED_BY(m);
  // Every execution currently inside a solver kernel — including
  // bypass_cache ones, which never appear in `inflight` — so shutdown()
  // can stop-signal them all.
  std::vector<std::shared_ptr<ExecState>> running_execs GUARDED_BY(m);
  ResultCache cache GUARDED_BY(m);
  /// Persistent backing of `cache` (null without cache_path).  Internally
  /// synchronised — appends and flushes run OUTSIDE `m`, so disk I/O never
  /// blocks submits or metrics.  The pointer itself is written once at
  /// construction and never reseated, so it is deliberately NOT guarded —
  /// keeping it readable on the journal path is the whole point.
  std::unique_ptr<io::CacheStore> store;
  std::size_t cache_loaded GUARDED_BY(m) = 0;
  std::size_t cache_stored GUARDED_BY(m) = 0;
  std::size_t cache_load_skipped GUARDED_BY(m) = 0;
  std::size_t startup_evictions GUARDED_BY(m) = 0;

  std::size_t queue_depth GUARDED_BY(m) = 0;
  std::size_t running GUARDED_BY(m) = 0;
  std::size_t submitted GUARDED_BY(m) = 0;
  std::size_t completed GUARDED_BY(m) = 0;
  std::size_t cancelled GUARDED_BY(m) = 0;
  std::size_t expired GUARDED_BY(m) = 0;
  std::size_t failed GUARDED_BY(m) = 0;
  std::size_t coalesced GUARDED_BY(m) = 0;
  std::size_t solver_invocations GUARDED_BY(m) = 0;
  LatencyReservoir wait_reservoir GUARDED_BY(m);
  LatencyReservoir run_reservoir GUARDED_BY(m);
  Clock::time_point started_at;
  /// Trailing ~60 s completion rate (guarded by `m`, like the reservoirs).
  SlidingWindowRate recent_rate GUARDED_BY(m);

  // Registry instruments (process-global; see the constructor).  Updated
  // with atomics only — safe under or outside `m`.
  obs::Counter* ctr_submitted = nullptr;
  obs::Counter* ctr_done = nullptr;
  obs::Counter* ctr_cancelled = nullptr;
  obs::Counter* ctr_expired = nullptr;
  obs::Counter* ctr_failed = nullptr;
  obs::Counter* ctr_coalesced = nullptr;
  obs::Counter* ctr_dispatched = nullptr;
  obs::Counter* ctr_cache_hits = nullptr;
  obs::Counter* ctr_cache_misses = nullptr;
  obs::Counter* ctr_admission_rejected = nullptr;
  obs::Counter* ctr_sweeps = nullptr;
  obs::Counter* ctr_journal_appends = nullptr;
  obs::Gauge* g_queue_depth = nullptr;
  obs::Gauge* g_running = nullptr;
  obs::Histogram* h_queue_wait = nullptr;
  obs::Histogram* h_run = nullptr;
  obs::Histogram* h_journal = nullptr;

  /// Mirrors queue_depth/running into the registry gauges.  Called at every
  /// mutation site (all hold `m`).
  void sync_gauges() REQUIRES(m) {
    g_queue_depth->set(static_cast<double>(queue_depth));
    g_running->set(static_cast<double>(running));
  }

  /// Moves `job` to the terminal state in `result` (caller holds `m`).
  /// Returns false when the job already finished through another path.
  bool finish_job(const std::shared_ptr<JobState>& job, JobResult result)
      REQUIRES(m) {
    std::function<void()> hook;
    {
      MutexLock job_lock(job->m);
      if (is_terminal(job->status)) return false;
      wait_reservoir.record(result.wait_ms);
      h_queue_wait->observe(result.wait_ms);
      switch (result.status) {
        case JobStatus::done:
          ++completed;
          recent_rate.record(Clock::now());
          ctr_done->inc();
          break;
        case JobStatus::cancelled: ++cancelled; ctr_cancelled->inc(); break;
        case JobStatus::expired: ++expired; ctr_expired->inc(); break;
        case JobStatus::failed: ++failed; ctr_failed->inc(); break;
        default: QROSS_ASSERT_MSG(false, "completion with non-terminal status");
      }
      auto& tracer = obs::TraceRecorder::instance();
      if (tracer.enabled()) {
        const char* name = "job_done";
        switch (result.status) {
          case JobStatus::cancelled: name = "job_cancelled"; break;
          case JobStatus::expired: name = "job_expired"; break;
          case JobStatus::failed: name = "job_failed"; break;
          default: break;
        }
        tracer.record_instant(name, "service", job->id, job->trace_id);
      }
      job->status = result.status;
      job->result = std::move(result);
      job->cv.notify_all();
      hook = std::move(job->on_terminal);
      job->on_terminal = nullptr;
    }
    // Per-client accounting (all callers hold `m`): the job leaves the
    // inflight tally, and the queued tally if it never started.
    ClientState& client = client_state(job->client_id);
    if (client.inflight_jobs > 0) --client.inflight_jobs;
    ++client.completed;
    if (job->counted_queued) {
      job->counted_queued = false;
      if (client.queued_jobs > 0) --client.queued_jobs;
    }
    // Fired outside the job lock so a hook thread waking on the condvar can
    // take it immediately; the hook's signal-only contract (job.hpp) makes
    // running under the still-held service lock safe.
    if (hook) hook();
    return true;
  }

  bool job_live(const std::shared_ptr<JobState>& job) const {
    MutexLock job_lock(job->m);
    return !is_terminal(job->status);
  }

  bool job_wants_cancel(const std::shared_ptr<JobState>& job) const {
    MutexLock job_lock(job->m);
    return job->wants_cancel;
  }

  void drop_inflight(const std::shared_ptr<ExecState>& exec) REQUIRES(m) {
    const auto it = inflight.find(exec->key);
    if (it != inflight.end() && it->second == exec) inflight.erase(it);
  }

  void cancel_job(const std::shared_ptr<JobState>& job) EXCLUDES(m);
  void run_one() EXCLUDES(m);

  /// Per-job stop tokens the running execution polls each sweep: a
  /// signalled token is that job's cancellation and is routed through
  /// cancel_job (once, via the `handled` latch), preserving the coalescing
  /// invariant.  Entries are immutable after construction; `handled` is the
  /// only mutated field and is atomic, so concurrent replica threads may
  /// poll freely.
  struct TokenWatchEntry {
    solvers::StopToken token;
    std::shared_ptr<JobState> job;
    std::shared_ptr<std::atomic<bool>> handled =
        std::make_shared<std::atomic<bool>>(false);
  };
  using TokenWatch = std::vector<TokenWatchEntry>;

  /// Handles every due entry of exec->watch: a job whose deadline passed
  /// mid-run is detached as `expired` (no batch — the kernel keeps running
  /// for the remaining jobs); when it is the last interested job, the
  /// kernel is stop-signalled instead and the completion path attaches the
  /// partial batch.  Updates exec->next_deadline_ns for the lock-free sweep
  /// check.
  void expire_due_jobs(ExecState* exec) EXCLUDES(m) {
    MutexLock lock(m);
    auto& watch = exec->watch;
    const auto now = Clock::now();
    while (!watch.empty() && watch.front().first <= now) {
      const auto job = watch.front().second;
      watch.erase(watch.begin());
      if (!job_live(job) || job_wants_cancel(job)) continue;
      bool others_interested = false;
      for (const auto& other : exec->subscribers) {
        if (other == job) continue;
        if (job_live(other) && !job_wants_cancel(other)) {
          others_interested = true;
          break;
        }
      }
      if (others_interested) {
        JobResult r;
        r.status = JobStatus::expired;
        r.coalesced = job != exec->subscribers.front();
        r.wait_ms = ms_between(job->submitted_at, exec->started_at);
        r.run_ms = ms_between(exec->started_at, now);
        finish_job(job, std::move(r));
      } else {
        exec->deadline_hit.store(true, std::memory_order_relaxed);
        exec->stop.request_stop();
      }
    }
    exec->next_deadline_ns.store(
        watch.empty() ? std::numeric_limits<std::int64_t>::max()
                      : to_ns(watch.front().first),
        std::memory_order_relaxed);
  }
};

void ServiceCore::cancel_job(const std::shared_ptr<JobState>& job) {
  MutexLock lock(m);
  if (!job_live(job)) return;
  const auto exec = job->exec.lock();
  if (!exec || exec->phase == ExecState::Phase::finished) {
    // Defensive: a live job should always have a live execution (completion
    // marks subscribers terminal under the lock we hold).
    JobResult r;
    r.status = JobStatus::cancelled;
    r.wait_ms = ms_between(job->submitted_at, Clock::now());
    finish_job(job, std::move(r));
    return;
  }
  if (exec->phase == ExecState::Phase::queued) {
    JobResult r;
    r.status = JobStatus::cancelled;
    r.wait_ms = ms_between(job->submitted_at, Clock::now());
    finish_job(job, std::move(r));
    bool any_live = false;
    for (const auto& other : exec->subscribers) {
      if (job_live(other)) {
        any_live = true;
        break;
      }
    }
    if (!any_live) {
      exec->dead = true;
      --queue_depth;
      sync_gauges();
      drop_inflight(exec);
    }
    return;
  }
  // Running.  If other jobs still want the result, only detach this one;
  // the kernel is stopped when the last interested job cancels, and that
  // job collects the partial batch once the kernel exits within a sweep.
  bool others_interested = false;
  for (const auto& other : exec->subscribers) {
    if (other == job) continue;
    if (job_live(other) && !job_wants_cancel(other)) {
      others_interested = true;
      break;
    }
  }
  if (others_interested) {
    JobResult r;
    r.status = JobStatus::cancelled;
    // The execution creator (first subscriber) never counts as coalesced,
    // even when it detaches and leaves the execution to its followers.
    r.coalesced = job != exec->subscribers.front();
    r.wait_ms = ms_between(job->submitted_at, exec->started_at);
    finish_job(job, std::move(r));
  } else {
    {
      MutexLock job_lock(job->m);
      job->wants_cancel = true;
    }
    exec->stop.request_stop();
  }
}

void ServiceCore::run_one() {
  std::shared_ptr<ExecState> exec;
  const auto tokens = std::make_shared<TokenWatch>();
  {
    MutexLock lock(m);
    while (auto candidate = pop_ready()) {
      const auto now = Clock::now();
      // Deadline triage: jobs already past their deadline complete as
      // `expired` here — the solver is never invoked for them.  The rest
      // with deadlines go onto the mid-run watch list.
      bool any_live = false;
      for (const auto& job : candidate->subscribers) {
        if (!job_live(job)) continue;
        if (job->deadline && *job->deadline <= now) {
          JobResult r;
          r.status = JobStatus::expired;
          r.wait_ms = ms_between(job->submitted_at, now);
          finish_job(job, std::move(r));
          continue;
        }
        any_live = true;
        if (job->deadline) candidate->watch.emplace_back(*job->deadline, job);
        if (job->stop.stop_possible()) tokens->push_back({job->stop, job});
      }
      --queue_depth;
      if (!any_live) {
        candidate->dead = true;
        drop_inflight(candidate);
        candidate->watch.clear();
        tokens->clear();
        continue;
      }
      std::sort(candidate->watch.begin(), candidate->watch.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      if (!candidate->watch.empty()) {
        candidate->next_deadline_ns.store(to_ns(candidate->watch.front().first),
                                          std::memory_order_relaxed);
      }
      candidate->phase = ExecState::Phase::running;
      candidate->started_at = now;
      ++running;
      ++solver_invocations;
      ctr_dispatched->inc();
      ++client_state(candidate->client_id).dispatched;
      running_execs.push_back(candidate);
      auto& tracer = obs::TraceRecorder::instance();
      for (const auto& job : candidate->subscribers) {
        {
          MutexLock job_lock(job->m);
          if (!is_terminal(job->status)) job->status = JobStatus::running;
        }
        if (tracer.enabled()) {
          // One queue span per subscriber: each job waited from its own
          // submit instant, even when they share the execution.
          tracer.record_span("queue", "service", job->submitted_at, now,
                             job->id, job->trace_id);
          tracer.record_instant("dispatch", "service", job->id,
                                job->trace_id);
        }
        // Dispatched: the job leaves its client's queued tally (jobs the
        // triage above finished already left it via finish_job).
        if (job->counted_queued) {
          job->counted_queued = false;
          ClientState& client = client_state(job->client_id);
          if (client.queued_jobs > 0) --client.queued_jobs;
        }
      }
      exec = candidate;
      break;
    }
    sync_gauges();
  }
  if (!exec) return;

  solvers::SolveOptions options = exec->options;
  options.stop = exec->stop;
  // The kernel polls the execution's own token; the watchdog below bridges
  // the external stop sources.  Every subscriber's own StopToken (captured
  // at submit, so a token that cancels a direct solve() also cancels the
  // routed one) is routed through cancel_job rather than straight to the
  // kernel: a signalled token is *that job's* cancellation, and the
  // coalescing invariant — the kernel is stop-signalled only when the last
  // interested job cancels — must hold for token-driven cancels too.
  // Per-job deadlines work the same way via expire_due_jobs: a due job is
  // detached as expired, and only the last interested one stops the
  // kernel.  Both per-sweep checks are lock-free (atomic loads); the watch
  // list lives on the execution, so submit() can re-arm the watchdog when a
  // tighter-deadline job coalesces onto this run — which is why the
  // wrapper is installed for every coalescable execution, even one with
  // nothing to watch yet.  A late joiner's stop *token* is still reachable
  // only via its handle (ServiceSolver polls for exactly that case).
  // `raw` stays valid: this frame owns a shared_ptr for the whole call.
  const solvers::SweepProgressFn user_tick = exec->options.on_sweep;
  {
    // Installed unconditionally since the obs layer landed: the wrapper is
    // also where the per-sweep counter and (when tracing) sweep instants
    // tick, so even a bypass_cache run with no deadlines and no stop tokens
    // needs it.  Disabled-tracing cost per tick: one atomic inc + one
    // relaxed load.
    ExecState* raw = exec.get();
    options.on_sweep = [this, raw, tokens, user_tick] {
      if (user_tick) user_tick();
      ctr_sweeps->inc();
      auto& tracer = obs::TraceRecorder::instance();
      if (tracer.enabled()) {
        tracer.record_instant("sweep", "solver", raw->creator_job_id,
                              raw->creator_trace_id);
      }
      for (const auto& entry : *tokens) {
        if (entry.token.stop_requested() &&
            !entry.handled->exchange(true, std::memory_order_relaxed)) {
          cancel_job(entry.job);  // takes m; the kernel thread holds no locks
        }
      }
      const auto due_ns =
          raw->next_deadline_ns.load(std::memory_order_relaxed);
      if (due_ns != std::numeric_limits<std::int64_t>::max() &&
          to_ns(Clock::now()) >= due_ns) {
        expire_due_jobs(raw);
      }
    };
  }

  std::shared_ptr<const qubo::SolveBatch> batch;
  std::string error;
  bool solver_failed = false;
  try {
    obs::ScopedSpan kernel_span("kernel", "solver", exec->creator_job_id,
                                exec->creator_trace_id);
    batch = std::make_shared<const qubo::SolveBatch>(
        exec->solver->solve(exec->model, options));
  } catch (const std::exception& e) {
    solver_failed = true;
    error = e.what();
  } catch (...) {
    solver_failed = true;
    error = "unknown solver exception";
  }
  const auto finished_at = Clock::now();

  const double run_ms = ms_between(exec->started_at, finished_at);
  bool persist = false;
  {
    MutexLock lock(m);
    --running;
    sync_gauges();
    exec->phase = ExecState::Phase::finished;
    drop_inflight(exec);
    std::erase(running_execs, exec);
    const bool stopped = exec->stop.stop_requested();
    const bool deadline_hit =
        exec->deadline_hit.load(std::memory_order_relaxed);
    run_reservoir.record(run_ms);
    h_run->observe(run_ms);
    bool primary_taken = false;
    for (const auto& job : exec->subscribers) {
      JobResult r;
      r.batch = batch;  // partial on cancelled/expired, null on failed
      r.run_ms = run_ms;
      r.wait_ms = ms_between(job->submitted_at, exec->started_at);
      if (solver_failed) {
        r.status = JobStatus::failed;
        r.error = error;
      } else if (job_wants_cancel(job)) {
        r.status = JobStatus::cancelled;
      } else if (deadline_hit && job->deadline) {
        // `expired` only for jobs that actually set a deadline; a
        // deadline-free job that coalesced onto this execution mid-run is
        // reported `cancelled` (partial batch) instead of a deadline it
        // never asked for.
        r.status = JobStatus::expired;
      } else if (stopped) {
        r.status = JobStatus::cancelled;  // shutdown or the submitter's token
      } else {
        r.status = JobStatus::done;
        r.coalesced = primary_taken;
      }
      const bool done_result = r.status == JobStatus::done;
      if (finish_job(job, std::move(r)) && done_result) primary_taken = true;
    }
    // Only clean, complete batches are cacheable: a stopped run's batch is
    // partial and must not be served as the canonical result.
    if (!solver_failed && !stopped && exec->cacheable) {
      cache.put(exec->key, batch);
      persist = store != nullptr;
    }
    exec->subscribers.clear();
  }
  // Journal the result outside `m`: the store has its own lock, and disk
  // I/O must not serialise against submits or other completions.
  if (persist) {
    bool appended = false;
    const auto append_start = Clock::now();
    {
      obs::ScopedSpan journal_span("journal_append", "io",
                                   exec->creator_job_id,
                                   exec->creator_trace_id);
      appended = store->append({exec->key, run_ms, batch});
    }
    h_journal->observe(ms_between(append_start, Clock::now()));
    if (appended) {
      ctr_journal_appends->inc();
      MutexLock lock(m);
      ++cache_stored;
    }
  }
}

}  // namespace detail

// --- JobHandle --------------------------------------------------------------

JobHandle::JobHandle(std::shared_ptr<detail::JobState> state)
    : state_(std::move(state)) {}

std::uint64_t JobHandle::id() const {
  QROSS_REQUIRE(valid(), "empty job handle");
  return state_->id;
}

JobStatus JobHandle::status() const {
  QROSS_REQUIRE(valid(), "empty job handle");
  MutexLock lock(state_->m);
  return state_->status;
}

JobResult JobHandle::wait() const {
  QROSS_REQUIRE(valid(), "empty job handle");
  MutexLock lock(state_->m);
  while (!is_terminal(state_->status)) state_->cv.wait(lock.native());
  return state_->result;
}

bool JobHandle::wait_for(std::chrono::milliseconds timeout) const {
  QROSS_REQUIRE(valid(), "empty job handle");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(state_->m);
  while (!is_terminal(state_->status)) {
    if (state_->cv.wait_until(lock.native(), deadline) ==
        std::cv_status::timeout) {
      return is_terminal(state_->status);
    }
  }
  return true;
}

JobResult JobHandle::result() const {
  QROSS_REQUIRE(valid(), "empty job handle");
  MutexLock lock(state_->m);
  QROSS_REQUIRE(is_terminal(state_->status), "job not finished");
  return state_->result;
}

void JobHandle::notify(std::function<void()> fn) const {
  QROSS_REQUIRE(valid(), "empty job handle");
  bool fire_now = false;
  {
    MutexLock lock(state_->m);
    if (is_terminal(state_->status)) {
      fire_now = true;
    } else {
      state_->on_terminal = std::move(fn);
    }
  }
  if (fire_now && fn) fn();
}

void JobHandle::cancel() const {
  if (!valid()) return;
  const auto core = state_->core.lock();
  if (!core) return;  // service gone: its destructor finished every job
  core->cancel_job(state_);
}

// --- SolveService -----------------------------------------------------------

SolveService::SolveService(ServiceConfig config)
    : core_(std::make_shared<detail::ServiceCore>(config)),
      pool_(config.num_workers) {}

SolveService::~SolveService() {
  shutdown();
  // pool_ (declared after core_) is destroyed first: it drains the pending
  // pop tasks — which find only dead executions — and joins workers whose
  // kernels exit within one sweep of the stop request above.
}

JobHandle SolveService::submit(solvers::SolverPtr solver,
                               const qubo::QuboModel& model,
                               solvers::SolveOptions options,
                               SubmitOptions submit) {
  QROSS_REQUIRE(solver != nullptr, "solver required");
  QROSS_REQUIRE(options.num_replicas > 0, "num_replicas must be at least 1");
  const Fingerprint key = fingerprint_job(*solver, model, options);
  auto job = std::make_shared<detail::JobState>();
  job->priority = submit.priority;
  job->deadline = submit.deadline;
  job->client_id = submit.client_id;
  job->trace_id = submit.trace_id;
  job->stop = options.stop;
  job->submitted_at = Clock::now();
  job->core = core_;

  bool schedule = false;
  {
    MutexLock lock(core_->m);
    if (core_->shutting_down) {
      throw AdmissionError(AdmissionErrorKind::shutting_down,
                           "service is shutting down; submission refused");
    }
    const std::string client_name =
        submit.client_id.empty() ? "(anonymous)" : submit.client_id;
    auto& client = core_->client_state(submit.client_id);

    // --- admission control: decide BEFORE mutating any state ---------------
    // The cache is consulted first: a hit completes immediately inside this
    // lock without occupying a worker or queue slot, so the quotas — which
    // bound resource occupancy, not free work — never refuse one.
    std::shared_ptr<const qubo::SolveBatch> hit;
    if (!submit.bypass_cache && core_->cache.enabled()) {
      hit = core_->cache.get(key);
    }
    if (hit == nullptr && core_->config.max_inflight_per_client > 0 &&
        client.inflight_jobs >= core_->config.max_inflight_per_client) {
      ++client.rejected_inflight;
      ++core_->admission_rejected;
      core_->ctr_admission_rejected->inc();
      throw AdmissionError(
          AdmissionErrorKind::inflight_quota,
          "client '" + client_name + "' is at its inflight-job quota (" +
              std::to_string(core_->config.max_inflight_per_client) +
              "); finish or cancel existing jobs first");
    }
    std::shared_ptr<detail::ExecState> join;
    if (!submit.bypass_cache) {
      if (hit == nullptr) {
        const auto it = core_->inflight.find(key);
        // A stop-signalled execution is about to exit with a partial batch
        // — a fresh submission must not coalesce onto it; it gets its own
        // execution (the inflight slot is simply overwritten below).
        if (it != core_->inflight.end() && !it->second->dead &&
            it->second->phase != detail::ExecState::Phase::finished &&
            !it->second->stop.stop_requested()) {
          join = it->second;
        }
      }
    }
    // Only submissions that land in the queue count against the queued
    // quota: cache hits finish immediately and joins onto a running
    // execution occupy no queue slot.
    const bool will_queue =
        hit == nullptr &&
        (join == nullptr || join->phase == detail::ExecState::Phase::queued);
    if (will_queue && core_->config.max_queued_per_client > 0 &&
        client.queued_jobs >= core_->config.max_queued_per_client) {
      ++client.rejected_queued;
      ++core_->admission_rejected;
      core_->ctr_admission_rejected->inc();
      throw AdmissionError(
          AdmissionErrorKind::queued_quota,
          "client '" + client_name + "' is at its queued-job quota (" +
              std::to_string(core_->config.max_queued_per_client) +
              "); wait for queued jobs to start");
    }

    // --- admitted -----------------------------------------------------------
    job->id = core_->next_job_id++;
    ++core_->submitted;
    ++client.submitted;
    ++client.inflight_jobs;
    core_->ctr_submitted->inc();
    auto& tracer = obs::TraceRecorder::instance();
    if (tracer.enabled()) {
      tracer.record_instant("submit", "service", job->id, job->trace_id);
    }

    if (hit != nullptr) {
      core_->ctr_cache_hits->inc();
      if (tracer.enabled()) {
        tracer.record_instant("cache_hit", "service", job->id, job->trace_id);
      }
      JobResult r;
      r.status = JobStatus::done;
      r.batch = std::move(hit);
      r.cache_hit = true;
      core_->finish_job(job, std::move(r));
      return JobHandle(std::move(job));
    }
    if (!submit.bypass_cache && core_->cache.enabled()) {
      core_->ctr_cache_misses->inc();
    }
    if (join != nullptr) {
      join->subscribers.push_back(job);
      job->exec = join;
      ++core_->coalesced;
      core_->ctr_coalesced->inc();
      if (join->phase == detail::ExecState::Phase::running) {
        {
          MutexLock job_lock(job->m);
          job->status = JobStatus::running;
        }
        if (job->deadline) {
          // Re-arm the mid-run watchdog: the new deadline joins the
          // execution's watch list, and the lock-free bound is tightened
          // so the next sweep tick observes it.  Without this a job with
          // a tighter deadline than every subscriber present at start
          // would only expire when the kernel finished (ROADMAP gap).
          auto& watch = join->watch;
          const auto pos = std::upper_bound(
              watch.begin(), watch.end(), *job->deadline,
              [](const Clock::time_point& t, const auto& e) {
                return t < e.first;
              });
          watch.insert(pos, {*job->deadline, job});
          join->next_deadline_ns.store(to_ns(watch.front().first),
                                       std::memory_order_relaxed);
        }
      } else {
        ++client.queued_jobs;
        job->counted_queued = true;
        if (submit.priority > join->priority) {
          // Promote: push a higher-priority duplicate; the old entry is
          // skipped as stale when popped.
          join->priority = submit.priority;
          core_->push_ready(join);
          schedule = true;
        }
      }
      if (schedule) pool_.submit([core = core_] { core->run_one(); });
      return JobHandle(std::move(job));
    }

    auto exec = std::make_shared<detail::ExecState>();
    exec->key = key;
    exec->solver = std::move(solver);
    exec->model = model;  // the one copy, paid only for a fresh execution
    exec->options = std::move(options);
    exec->cacheable = !submit.bypass_cache;
    exec->priority = submit.priority;
    exec->client_id = submit.client_id;
    exec->creator_job_id = job->id;
    exec->creator_trace_id = job->trace_id;
    exec->subscribers.push_back(job);
    job->exec = exec;
    ++client.queued_jobs;
    job->counted_queued = true;
    if (!submit.bypass_cache) core_->inflight[key] = exec;
    core_->push_ready(exec);
    ++core_->queue_depth;
    core_->sync_gauges();
    schedule = true;
  }
  if (schedule) pool_.submit([core = core_] { core->run_one(); });
  return JobHandle(std::move(job));
}

ServiceMetrics SolveService::metrics() const {
  MutexLock lock(core_->m);
  ServiceMetrics s;
  s.workers = pool_.size();
  s.queue_depth = core_->queue_depth;
  s.running = core_->running;
  s.submitted = core_->submitted;
  s.completed = core_->completed;
  s.cancelled = core_->cancelled;
  s.expired = core_->expired;
  s.failed = core_->failed;
  s.coalesced = core_->coalesced;
  s.solver_invocations = core_->solver_invocations;
  s.cache_hits = core_->cache.hits();
  s.cache_misses = core_->cache.misses();
  s.cache_evictions = core_->cache.evictions() - core_->startup_evictions;
  s.cache_size = core_->cache.size();
  s.cache_loaded = core_->cache_loaded;
  s.cache_stored = core_->cache_stored;
  s.cache_load_skipped = core_->cache_load_skipped;
  s.admission_rejected = core_->admission_rejected;
  s.simd_kernel = qubo::to_string(qubo::active_simd_kind());
  s.clients.reserve(core_->clients.size());
  for (const auto& [id, c] : core_->clients) {
    ClientSchedulerMetrics row;
    row.client_id = id;
    row.weight = c.weight;
    row.queued = c.queued_jobs;
    row.inflight = c.inflight_jobs;
    row.submitted = c.submitted;
    row.completed = c.completed;
    row.dispatched = c.dispatched;
    row.rejected_inflight = c.rejected_inflight;
    row.rejected_queued = c.rejected_queued;
    s.clients.push_back(std::move(row));
  }
  const auto now = Clock::now();
  s.uptime_seconds =
      std::chrono::duration<double>(now - core_->started_at).count();
  s.jobs_per_second =
      s.uptime_seconds > 0.0
          ? static_cast<double>(s.completed) / s.uptime_seconds
          : 0.0;
  s.recent_jobs_per_second = core_->recent_rate.rate(now);
  s.queue_wait = core_->wait_reservoir.percentiles();
  s.run = core_->run_reservoir.percentiles();
  return s;
}

std::size_t SolveService::flush_cache() {
  // Deliberately NOT under core_->m: the store is internally synchronised,
  // and compaction (two file scans + an atomic rewrite) must not stall the
  // submit path.  An append racing the compaction lands in a fresh journal
  // and is folded in by the next flush or the destructor.
  return core_->store ? core_->store->compact() : 0;
}

void SolveService::shutdown() {
  MutexLock lock(core_->m);
  core_->shutting_down = true;
  const auto now = Clock::now();
  // pop_ready drains every band (skipping stale/dead entries itself), so
  // this cancels exactly the executions still waiting for a worker.
  while (auto exec = core_->pop_ready()) {
    exec->dead = true;
    --core_->queue_depth;
    core_->sync_gauges();
    core_->drop_inflight(exec);
    for (const auto& job : exec->subscribers) {
      JobResult r;
      r.status = JobStatus::cancelled;
      r.wait_ms = ms_between(job->submitted_at, now);
      core_->finish_job(job, std::move(r));
    }
    exec->subscribers.clear();
  }
  // Stop-signal every execution currently inside a kernel — tracked
  // separately from `inflight`, which bypass_cache executions never enter;
  // the worker's completion path marks their jobs cancelled.
  for (const auto& exec : core_->running_execs) {
    exec->stop.request_stop();
  }
}

}  // namespace qross::service
