#pragma once

// TuneService — the paper's actual product as a service.
//
// Owns a trained qross::core::QrossTuner and runs concurrent tuning
// sessions against a shared SolveService.  Each session is one
// QrossTuner::tune() call on a dedicated session thread, wired so that the
// serving machinery below applies for free:
//
//   * every probe solve-job is routed through the SolveService
//     (TuneOptions::service), so per-probe result caching, coalescing,
//     fair-share admission, cancellation and trace stitching all hold — a
//     repeated session against a warm cache performs ZERO solver
//     invocations;
//   * surrogate MLP predictions from concurrent sessions are funnelled
//     through one shared BatchedSurrogate combiner
//     (TuneOptions::evaluator), merging rows from unrelated sessions into
//     single nn::Matrix forward passes — bit-identically to in-process
//     tuning, so a remote session with the same seed reproduces the exact
//     probed-A sequence and outcome;
//   * every completed session appends its (instance features, A, batch
//     summary) rows to the journal corpus (TuneServiceConfig::corpus_path,
//     surrogate::Dataset CSV), the raw material for later surrogate
//     refresh — the paper's "historical instances" story as a serving
//     flywheel.
//
// Sessions are cooperative: cancel() trips the session's StopToken, which
// both ends the trial loop and stops the in-flight probe solve within one
// sweep.  The handle mirrors service::JobHandle, with one difference: the
// notify callback is PERSISTENT — it fires after every completed trial and
// once more at the terminal transition, because the network reactor streams
// per-trial progress frames, not just the final result.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "problems/tsp/instance.hpp"
#include "qross/facade.hpp"
#include "service/solve_service.hpp"
#include "surrogate/batched.hpp"

namespace qross::service {

struct TuneServiceConfig {
  /// Concurrent tuning sessions; a submit at the limit is refused with a
  /// retryable AdmissionError (session_quota).  0 = unlimited.
  std::size_t max_sessions = 4;
  /// When non-empty, every completed (not cancelled/failed) session appends
  /// its per-trial rows here in surrogate::Dataset CSV form — the corpus a
  /// later fine_tune() run refreshes the surrogate from.
  std::string corpus_path;
};

enum class TuneSessionStatus {
  running,    ///< the session thread is inside the trial loop
  done,       ///< all trials completed (outcome may still be infeasible)
  cancelled,  ///< cancel() / shutdown stopped the session early
  failed,     ///< the tuner threw; see TuneSessionResult::error
};

const char* to_string(TuneSessionStatus status);
bool is_terminal(TuneSessionStatus status);

struct TuneSessionResult {
  TuneSessionStatus status = TuneSessionStatus::running;
  core::TuneOutcome outcome;  ///< trials prefix only when cancelled early
  std::string error;          ///< what() of the tuner exception when failed
  /// Actual solver kernel invocations this session caused (cache hits and
  /// coalesced probes do not count) — the serving side of the paper's
  /// "solution quality per number of solver calls" metric.
  std::uint64_t solver_invocations = 0;
  double wall_ms = 0.0;
};

/// Per-session attribution, forwarded to the SolveService's SubmitOptions
/// for every probe job.
struct TuneSubmitOptions {
  std::string client_id;
  std::uint64_t trace_id = 0;
};

namespace detail {
struct TuneSessionState;
}  // namespace detail

/// Shared-ownership handle to a tuning session; copyable, may outlive the
/// TuneService (the destructor drives every session terminal first).
class TuneHandle {
 public:
  TuneHandle() = default;

  explicit TuneHandle(std::shared_ptr<detail::TuneSessionState> state);

  bool valid() const { return state_ != nullptr; }
  std::uint64_t id() const;

  TuneSessionStatus status() const;
  bool finished() const { return is_terminal(status()); }

  /// Blocks until the session is terminal; returns the result.
  TuneSessionResult wait() const;
  /// Waits up to `timeout`; true iff terminal on return.
  bool wait_for(std::chrono::milliseconds timeout) const;
  /// The result of a finished session (QROSS_REQUIRE: finished()).
  TuneSessionResult result() const;

  /// Completed-trial events with index >= `from`, in order.  The reactor
  /// polls this with its high-water mark to stream progress frames.
  std::vector<core::TuneTrialEvent> events_since(std::size_t from) const;

  /// Registers a PERSISTENT progress hook: invoked after every completed
  /// trial and at the terminal transition — and immediately once at
  /// registration if anything already happened, so an arming race cannot
  /// lose events.  Same constraints as JobHandle::notify: it runs on the
  /// session thread with internals locked, so it must only signal.  One
  /// hook per session; a second call replaces it.
  void notify(std::function<void()> fn) const;

  /// Trips the session's StopToken: the trial loop ends at the next
  /// boundary and the in-flight probe stops within one sweep.  No-op on
  /// terminal sessions and empty handles.
  void cancel() const;

 private:
  std::shared_ptr<detail::TuneSessionState> state_;
};

struct TuneServiceMetrics {
  std::uint64_t sessions_started = 0;
  std::uint64_t sessions_done = 0;
  std::uint64_t sessions_cancelled = 0;
  std::uint64_t sessions_failed = 0;
  std::size_t sessions_active = 0;
  std::uint64_t corpus_rows_appended = 0;
  /// Cross-session inference combiner counters.
  surrogate::BatchedSurrogate::Stats surrogate;
};

class TuneService {
 public:
  /// Takes ownership of the tuner; `solve_service` is borrowed and must
  /// outlive this object.
  TuneService(core::QrossTuner tuner, SolveService& solve_service,
              TuneServiceConfig config = {});
  /// Cancels every live session and joins all session threads.
  ~TuneService();

  TuneService(const TuneService&) = delete;
  TuneService& operator=(const TuneService&) = delete;

  /// Starts a tuning session on its own thread.  `options.service`,
  /// `options.evaluator`, `options.stop`, `options.on_trial`,
  /// `options.client_id` and `options.trace_id` are overwritten by the
  /// service wiring; everything else (trials, box, seed, mode, pf_target)
  /// is the caller's.  Throws AdmissionError: shutting_down after
  /// shutdown(), session_quota (retryable) at max_sessions.
  TuneHandle submit(tsp::TspInstance instance, solvers::SolverPtr solver,
                    core::TuneOptions options, TuneSubmitOptions submit = {})
      EXCLUDES(mutex_);

  const core::QrossTuner& tuner() const { return tuner_; }
  /// The shared cross-session inference combiner (for benches/tests).
  const surrogate::BatchedSurrogate& evaluator() const { return batched_; }

  TuneServiceMetrics metrics() const EXCLUDES(mutex_);

  /// Idempotent early teardown: refuses new sessions and cancels live ones;
  /// does not wait (the destructor joins).
  void shutdown() EXCLUDES(mutex_);

 private:
  /// Session-thread body; tune() runs unlocked (it is the long part), the
  /// service mutex is taken only for the terminal counter bump.
  void run_session(std::shared_ptr<detail::TuneSessionState> state,
                   tsp::TspInstance instance, solvers::SolverPtr solver,
                   core::TuneOptions options) EXCLUDES(mutex_);
  void append_corpus(const detail::TuneSessionState& state,
                     const tsp::TspInstance& instance,
                     const std::vector<core::TuneTrialEvent>& events)
      EXCLUDES(mutex_);
  /// Joins threads of terminal sessions and drops them from the live list.
  void reap_locked() REQUIRES(mutex_);

  core::QrossTuner tuner_;
  SolveService* solve_;
  TuneServiceConfig config_;
  surrogate::BatchedSurrogate batched_;

  mutable Mutex mutex_;  // guards sessions_, counters, corpus file
  struct Session {
    std::shared_ptr<detail::TuneSessionState> state;
    std::thread worker;
  };
  std::vector<Session> sessions_ GUARDED_BY(mutex_);
  bool shutting_down_ GUARDED_BY(mutex_) = false;
  std::uint64_t next_id_ GUARDED_BY(mutex_) = 1;
  std::uint64_t sessions_started_ GUARDED_BY(mutex_) = 0;
  std::uint64_t sessions_done_ GUARDED_BY(mutex_) = 0;
  std::uint64_t sessions_cancelled_ GUARDED_BY(mutex_) = 0;
  std::uint64_t sessions_failed_ GUARDED_BY(mutex_) = 0;
  std::uint64_t corpus_rows_ GUARDED_BY(mutex_) = 0;
};

}  // namespace qross::service
