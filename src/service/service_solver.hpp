#pragma once

// ServiceSolver — a QuboSolver adapter that routes every solve() through a
// SolveService (submit + wait), so call sites built on the synchronous
// interface (BatchRunner, the QrossTuner facade, the tuning baselines)
// transparently gain the service's result cache, coalescing and metrics.
//
// Repeated tuning sessions over the same instances and seeds become cache
// hits instead of fresh solver calls.  The service must outlive the
// adapter.  Do not use an adapter bound to a service from inside that same
// service's workers — solve() blocks on a job, and a worker waiting for a
// worker deadlocks once all of them do it.

#include "service/solve_service.hpp"
#include "solvers/solver.hpp"

namespace qross::service {

class ServiceSolver final : public solvers::QuboSolver {
 public:
  /// `service` is borrowed and must outlive this adapter.  `submit`
  /// (priority/deadline/bypass) applies to every routed call.
  ServiceSolver(SolveService& service, solvers::SolverPtr inner,
                SubmitOptions submit = {});

  /// The inner solver's name with a routing suffix; the cache fingerprint
  /// uses the *inner* solver's identity, so routed and direct calls with
  /// equal inputs share cache entries.
  std::string name() const override { return inner_->name() + "@service"; }
  std::uint64_t config_digest() const override {
    return inner_->config_digest();
  }

  /// Blocks until the job finishes.  Throws std::runtime_error when the job
  /// failed or was cancelled/expired without producing a batch.
  qubo::SolveBatch solve(const qubo::QuboModel& model,
                         const solvers::SolveOptions& options) const override;

 private:
  SolveService* service_;
  solvers::SolverPtr inner_;
  SubmitOptions submit_;
};

}  // namespace qross::service
