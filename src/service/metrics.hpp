#pragma once

// Service observability: a point-in-time ServiceMetrics snapshot plus the
// sliding-window latency reservoir that backs its percentiles.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qross::service {

struct LatencyPercentiles {
  std::size_t count = 0;  ///< samples ever recorded (window may hold fewer)
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Per-client view of the fair-share scheduler: how much work one client id
/// has in the system, how it is weighted, and how often admission control
/// turned it away.  Clients appear on first submission; idle rows are
/// retired once the table would exceed ServiceConfig::max_client_rows, so
/// endless one-shot connection ids cannot grow it (or the Metrics frame)
/// without bound — service-wide counters are unaffected by retirement.
struct ClientSchedulerMetrics {
  std::string client_id;
  double weight = 1.0;
  std::size_t queued = 0;    ///< this client's jobs currently waiting
  std::size_t inflight = 0;  ///< this client's non-terminal jobs
  std::uint64_t submitted = 0;   ///< admitted submissions (rejections excluded)
  std::uint64_t completed = 0;   ///< jobs that reached any terminal state
  std::uint64_t dispatched = 0;  ///< executions started with this client as creator
  std::uint64_t rejected_inflight = 0;  ///< submits refused: max_inflight_per_client
  std::uint64_t rejected_queued = 0;    ///< submits refused: max_queued_per_client
};

/// One consistent snapshot of the service, taken under the service lock.
struct ServiceMetrics {
  std::size_t workers = 0;

  // Instantaneous state.
  std::size_t queue_depth = 0;  ///< executions waiting for a worker
  std::size_t running = 0;      ///< executions inside a solver kernel

  // Job counters (monotonic).
  std::size_t submitted = 0;
  std::size_t completed = 0;  ///< jobs that reached `done`
  std::size_t cancelled = 0;
  std::size_t expired = 0;
  std::size_t failed = 0;
  std::size_t coalesced = 0;  ///< jobs attached to an in-flight execution
  std::size_t solver_invocations = 0;  ///< actual kernel executions started

  // Result-cache counters (monotonic) + current size.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_evictions = 0;
  std::size_t cache_size = 0;

  // Persistent-store counters (all 0 unless ServiceConfig::cache_path set).
  /// Entries RETAINED from disk at start (a snapshot larger than
  /// cache_capacity warm-fills only the newest entries that fit).
  std::size_t cache_loaded = 0;
  /// Entries appended to the on-disk journal.  Lags job completion by the
  /// append I/O (journalling runs after completion, outside the service
  /// lock), so a snapshot taken right after wait() may be one short of the
  /// eventual count.
  std::size_t cache_stored = 0;
  std::size_t cache_load_skipped = 0;  ///< corrupt/foreign records skipped

  /// Submissions refused by per-client admission control (sum of the
  /// per-client rejected_* counters).  Rejected submissions are NOT counted
  /// in `submitted`.
  std::uint64_t admission_rejected = 0;

  double uptime_seconds = 0.0;
  double jobs_per_second = 0.0;  ///< completed / uptime (lifetime average)
  /// Completions per second over the trailing ~60 s window — the number to
  /// watch on a long-lived daemon, where the lifetime average above goes
  /// stale.  Appended to the Metrics frame (append-only within protocol v1).
  double recent_jobs_per_second = 0.0;

  LatencyPercentiles queue_wait;  ///< submit → execution start (ms)
  LatencyPercentiles run;         ///< execution start → kernel exit (ms)

  /// One row per client id ever admitted or rejected, sorted by id.
  std::vector<ClientSchedulerMetrics> clients;

  /// Dispatch arm of the replica-block evaluation core ("avx2"/"scalar"),
  /// as resolved by qubo::active_simd_kind() at snapshot time — what a
  /// fleet operator reads to confirm which kernel a daemon actually runs.
  std::string simd_kernel;
};

/// Ring buffer over the most recent `capacity` latency samples.  Percentile
/// snapshots are linear-interpolated quantiles (common/stats) over the
/// window; `max` is over the window too, so both reflect recent traffic
/// rather than all-time extremes.  Not internally synchronised.
class LatencyReservoir {
 public:
  explicit LatencyReservoir(std::size_t capacity = 1024);

  void record(double value_ms);
  std::size_t count() const { return total_; }

  LatencyPercentiles percentiles() const;

 private:
  std::size_t capacity_;
  std::size_t total_ = 0;
  std::vector<double> window_;  // filled circularly once total_ >= capacity_
};

/// Event rate over a trailing window of one-second buckets.  O(1) record,
/// O(window) rate; time is passed in explicitly so tests can drive it with
/// synthetic clocks.  Not internally synchronised (lives under the service
/// lock).
class SlidingWindowRate {
 public:
  using Clock = std::chrono::steady_clock;

  explicit SlidingWindowRate(Clock::time_point origin,
                             std::size_t window_seconds = 60);

  void record(Clock::time_point now);
  /// Events/sec over the trailing window.  While the process is younger than
  /// the window, divides by elapsed time (floored at 1 s) so early rates are
  /// not diluted by seconds that never happened.
  double rate(Clock::time_point now);

 private:
  void advance(Clock::time_point now);
  std::int64_t seconds_since_origin(Clock::time_point now) const;

  Clock::time_point origin_;
  std::vector<std::uint64_t> buckets_;
  std::int64_t current_sec_ = 0;  ///< second index of the newest bucket
};

}  // namespace qross::service
