#pragma once

// Canonical QUBO job fingerprints for the solve service's result cache and
// request coalescing.
//
// Two submissions share a fingerprint exactly when the service guarantees
// they would produce bit-identical SolveBatches:
//
//   * same solver kernel AND configuration (name + config_digest — two
//     differently-parameterised SimulatedAnnealers never collide);
//   * same canonical model: number of variables, offset, and the set of
//     structurally nonzero upper-triangular coefficients with their values.
//     Terms that were added and cancelled back to 0.0 do not contribute, so
//     two models built along different paths to the same coefficients hash
//     equal;
//   * same result-determining SolveOptions: num_replicas, num_sweeps, seed.
//     `num_threads` is EXCLUDED — the replica fan-out is bit-identical for
//     any thread count (PR 1's property tests) — as are the stop token and
//     progress callback, which never change a completed result.
//
// The fingerprint is 128 bits (two independent 64-bit lanes over the same
// stream), making accidental collisions across a service lifetime of
// millions of jobs negligible.

#include <cstddef>
#include <cstdint>

#include "qubo/model.hpp"
#include "solvers/solver.hpp"

namespace qross::service {

struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

struct FingerprintHash {
  std::size_t operator()(const Fingerprint& fp) const {
    return static_cast<std::size_t>(fp.hi ^
                                    (fp.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Canonical fingerprint of the model alone (structure + weights + offset).
Fingerprint fingerprint_model(const qubo::QuboModel& model);

/// Full job key: solver identity + canonical model + normalised options.
Fingerprint fingerprint_job(const solvers::QuboSolver& solver,
                            const qubo::QuboModel& model,
                            const solvers::SolveOptions& options);

}  // namespace qross::service
