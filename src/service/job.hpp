#pragma once

// Job-side types of the solve service: status lifecycle, the result record,
// and the JobHandle the submitter holds.
//
// Lifecycle:
//
//   queued ──────────────► running ──────────► done
//     │                      │
//     ├─► expired            ├─► expired   (deadline hit mid-run;
//     │   (deadline passed   │              partial batch attached)
//     │    before start —    ├─► cancelled (stop honoured within one
//     │    the solver is     │              sweep; partial batch attached)
//     │    NEVER invoked)    └─► failed    (solver threw)
//     └─► cancelled
//         (while queued; no batch)
//
// `done` jobs served from the cache or coalesced onto another execution
// skip `running` entirely.  All terminal states notify wait()ers.

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "qubo/batch.hpp"

namespace qross::service {

enum class JobStatus {
  queued,     ///< waiting for a worker (or for an equivalent execution)
  running,    ///< a worker is inside the solver kernel
  done,       ///< full batch available (solver run, cache hit, or coalesced)
  cancelled,  ///< cancel() or service shutdown; batch may be partial or null
  expired,    ///< deadline passed (before start: no batch; mid-run: partial)
  failed,     ///< the solver threw; see JobResult::error
};

const char* to_string(JobStatus status);

/// True for states that will never change again.
bool is_terminal(JobStatus status);

struct JobResult {
  JobStatus status = JobStatus::queued;
  /// The solution batch.  Shared and immutable: cache hits and coalesced
  /// jobs alias the producing execution's batch, so equal fingerprints give
  /// bit-identical results.  Null when the solver never produced anything
  /// (expired before start, cancelled while queued, failed).
  std::shared_ptr<const qubo::SolveBatch> batch;
  bool cache_hit = false;   ///< served from the result cache, no execution
  bool coalesced = false;   ///< shared another submission's execution
  double wait_ms = 0.0;     ///< submit → execution start (or terminal state)
  double run_ms = 0.0;      ///< execution start → kernel exit; 0 if never ran
  std::string error;        ///< what() of the solver exception when failed
};

namespace detail {
struct JobState;
}  // namespace detail

/// Shared-ownership handle to a submitted job.  Copyable; all copies refer
/// to the same job.  Handles may outlive the SolveService — status(),
/// wait() and result() stay valid (the service destructor drives every job
/// to a terminal state first), and cancel() degrades to a no-op.
class JobHandle {
 public:
  JobHandle() = default;  ///< empty handle; valid() is false

  explicit JobHandle(std::shared_ptr<detail::JobState> state);

  bool valid() const { return state_ != nullptr; }
  std::uint64_t id() const;

  JobStatus status() const;
  bool finished() const { return is_terminal(status()); }

  /// Blocks until the job reaches a terminal state; returns the result.
  JobResult wait() const;

  /// Waits up to `timeout`; true iff the job is terminal on return.
  bool wait_for(std::chrono::milliseconds timeout) const;

  /// The result of a finished job (QROSS_REQUIRE: finished()).
  JobResult result() const;

  /// Registers a one-shot completion hook, invoked exactly once when the
  /// job reaches a terminal state — immediately on the calling thread if it
  /// already has.  Otherwise it runs on the completing thread while service
  /// internals are locked, so the hook MUST only signal (set a flag, push
  /// onto a queue, write to a wakeup pipe) and MUST NOT call back into the
  /// service or any JobHandle method.  One hook per job; a second call
  /// replaces an unfired one.  This is how the network front end's reactor
  /// learns of completions without polling.
  void notify(std::function<void()> fn) const;

  /// Requests cooperative cancellation.  A queued job completes as
  /// `cancelled` immediately; a running job's kernel is signalled and the
  /// job completes (with its partial batch) within one sweep.  Cancelling
  /// one of several submissions coalesced onto the same execution detaches
  /// only that submission — the execution is stopped when its last
  /// interested job cancels.  No-op on terminal jobs and empty handles.
  void cancel() const;

 private:
  std::shared_ptr<detail::JobState> state_;
};

}  // namespace qross::service
