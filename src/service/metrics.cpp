#include "service/metrics.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/stats.hpp"

namespace qross::service {

LatencyReservoir::LatencyReservoir(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  window_.reserve(capacity_);
}

void LatencyReservoir::record(double value_ms) {
  if (window_.size() < capacity_) {
    window_.push_back(value_ms);
  } else {
    window_[total_ % capacity_] = value_ms;
  }
  ++total_;
}

LatencyPercentiles LatencyReservoir::percentiles() const {
  LatencyPercentiles p;
  p.count = total_;
  if (window_.empty()) return p;
  // Snapshots run under the service lock: one sort for all three points.
  const double qs[] = {0.50, 0.90, 0.99};
  const std::vector<double> points = quantiles(window_, qs);
  p.p50_ms = points[0];
  p.p90_ms = points[1];
  p.p99_ms = points[2];
  p.max_ms = *std::max_element(window_.begin(), window_.end());
  return p;
}

SlidingWindowRate::SlidingWindowRate(Clock::time_point origin,
                                     std::size_t window_seconds)
    : origin_(origin), buckets_(std::max<std::size_t>(1, window_seconds), 0) {}

std::int64_t SlidingWindowRate::seconds_since_origin(
    Clock::time_point now) const {
  if (now <= origin_) return 0;
  return std::chrono::duration_cast<std::chrono::seconds>(now - origin_)
      .count();
}

void SlidingWindowRate::advance(Clock::time_point now) {
  const std::int64_t sec = seconds_since_origin(now);
  if (sec <= current_sec_) return;  // steady_clock never goes backwards
  const std::int64_t window = static_cast<std::int64_t>(buckets_.size());
  if (sec - current_sec_ >= window) {
    std::fill(buckets_.begin(), buckets_.end(), 0);
  } else {
    for (std::int64_t s = current_sec_ + 1; s <= sec; ++s) {
      buckets_[static_cast<std::size_t>(s % window)] = 0;
    }
  }
  current_sec_ = sec;
}

void SlidingWindowRate::record(Clock::time_point now) {
  advance(now);
  ++buckets_[static_cast<std::size_t>(current_sec_ %
                                      static_cast<std::int64_t>(
                                          buckets_.size()))];
}

double SlidingWindowRate::rate(Clock::time_point now) {
  advance(now);
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets_) total += b;
  const double elapsed =
      std::chrono::duration<double>(now - origin_).count();
  const double denom = std::clamp(elapsed, 1.0,
                                  static_cast<double>(buckets_.size()));
  return static_cast<double>(total) / denom;
}

}  // namespace qross::service
