#include "service/metrics.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/stats.hpp"

namespace qross::service {

LatencyReservoir::LatencyReservoir(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  window_.reserve(capacity_);
}

void LatencyReservoir::record(double value_ms) {
  if (window_.size() < capacity_) {
    window_.push_back(value_ms);
  } else {
    window_[total_ % capacity_] = value_ms;
  }
  ++total_;
}

LatencyPercentiles LatencyReservoir::percentiles() const {
  LatencyPercentiles p;
  p.count = total_;
  if (window_.empty()) return p;
  // Snapshots run under the service lock: one sort for all three points.
  const double qs[] = {0.50, 0.90, 0.99};
  const std::vector<double> points = quantiles(window_, qs);
  p.p50_ms = points[0];
  p.p90_ms = points[1];
  p.p99_ms = points[2];
  p.max_ms = *std::max_element(window_.begin(), window_.end());
  return p;
}

}  // namespace qross::service
