#pragma once

// LRU cache of completed SolveBatches, keyed by the canonical job
// fingerprint.  Batches are stored behind shared_ptr<const ...>, so a hit
// hands out the very same immutable batch the original execution produced —
// bit-identical by construction, at zero copy cost.
//
// NOT internally synchronised: the SolveService guards it with its own
// mutex, and standalone users must do the same.  Hit/miss/eviction counters
// feed the ServiceMetrics snapshot.

#include <cstddef>
#include <list>
#include <memory>
#include <unordered_map>

#include "qubo/batch.hpp"
#include "service/fingerprint.hpp"

namespace qross::service {

class ResultCache {
 public:
  /// `capacity` is the maximum number of cached batches; 0 disables the
  /// cache (get always misses, put is a no-op).
  explicit ResultCache(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  bool enabled() const { return capacity_ > 0; }
  std::size_t size() const { return lru_.size(); }

  /// Returns the cached batch and marks it most-recently-used, or nullptr.
  /// Counts one hit or one miss.
  std::shared_ptr<const qubo::SolveBatch> get(const Fingerprint& key);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used one
  /// when full.
  void put(const Fingerprint& key,
           std::shared_ptr<const qubo::SolveBatch> batch);

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  std::size_t evictions() const { return evictions_; }

  void clear();

 private:
  struct Entry {
    Fingerprint key;
    std::shared_ptr<const qubo::SolveBatch> batch;
  };

  std::size_t capacity_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Fingerprint, std::list<Entry>::iterator, FingerprintHash>
      index_;
};

}  // namespace qross::service
