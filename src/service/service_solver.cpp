#include "service/service_solver.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "common/assert.hpp"

namespace qross::service {

ServiceSolver::ServiceSolver(SolveService& service, solvers::SolverPtr inner,
                             SubmitOptions submit)
    : service_(&service), inner_(std::move(inner)), submit_(submit) {
  QROSS_REQUIRE(inner_ != nullptr, "inner solver required");
}

qubo::SolveBatch ServiceSolver::solve(
    const qubo::QuboModel& model, const solvers::SolveOptions& options) const {
  JobHandle handle = service_->submit(inner_, model, options, submit_);
  // A live caller token must keep working through the routing.  The service
  // already bridges the primary submitter's token inside the execution; a
  // call that *coalesced* onto someone else's execution is only reachable
  // via its handle, so poll-and-cancel here.
  if (options.stop.stop_possible()) {
    while (!handle.wait_for(std::chrono::milliseconds(10))) {
      if (options.stop.stop_requested()) {
        handle.cancel();
        handle.wait();
        break;
      }
    }
  }
  const JobResult result = handle.wait();
  if (result.batch == nullptr) {
    throw std::runtime_error(std::string("service job ") +
                             to_string(result.status) +
                             (result.error.empty() ? "" : ": " + result.error));
  }
  // done → the full batch; cancelled/expired mid-run → the partial batch,
  // mirroring what a direct solve() with a signalled StopToken returns.
  return *result.batch;
}

}  // namespace qross::service
