#include "net/protocol.hpp"

#include <cmath>
#include <cstring>

#include "io/binary.hpp"

namespace qross::net {

namespace {

void put_string(io::ByteWriter& out, const std::string& text) {
  out.u32(static_cast<std::uint32_t>(text.size()));
  out.raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

std::string get_string(io::ByteReader& in) {
  const std::uint32_t size = in.u32();
  // Strings on the wire are names and error messages; anything huge is a
  // corrupt length that slipped past the checksum odds.
  if (size > (1u << 20)) {
    throw io::DecodeError("implausible string length: " +
                          std::to_string(size));
  }
  const auto bytes = in.raw(size);
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

service::JobStatus decode_status(std::uint32_t value) {
  switch (value) {
    case 0: return service::JobStatus::queued;
    case 1: return service::JobStatus::running;
    case 2: return service::JobStatus::done;
    case 3: return service::JobStatus::cancelled;
    case 4: return service::JobStatus::expired;
    case 5: return service::JobStatus::failed;
  }
  throw io::DecodeError("unknown job status on the wire: " +
                        std::to_string(value));
}

std::uint32_t encode_status(service::JobStatus status) {
  switch (status) {
    case service::JobStatus::queued: return 0;
    case service::JobStatus::running: return 1;
    case service::JobStatus::done: return 2;
    case service::JobStatus::cancelled: return 3;
    case service::JobStatus::expired: return 4;
    case service::JobStatus::failed: return 5;
  }
  return 5;
}

}  // namespace

std::vector<std::uint8_t> encode_hello(const HelloFrame& hello) {
  io::ByteWriter out;
  out.u32(hello.protocol_version);
  out.u32(0);  // flags, reserved
  put_string(out, hello.client_id);
  return out.take();
}

HelloFrame decode_hello(std::span<const std::uint8_t> payload) {
  io::ByteReader in(payload);
  HelloFrame hello;
  hello.protocol_version = in.u32();
  in.u32();  // flags, reserved
  // client_id was appended within v1: a Hello from an older client simply
  // ends here, which means "no self-reported identity".
  if (in.remaining() > 0) hello.client_id = get_string(in);
  return hello;
}

std::vector<std::uint8_t> encode_hello_ack(const HelloAckFrame& ack) {
  io::ByteWriter out;
  out.u32(ack.protocol_version);
  out.u32(ack.max_frame_bytes);
  return out.take();
}

HelloAckFrame decode_hello_ack(std::span<const std::uint8_t> payload) {
  io::ByteReader in(payload);
  HelloAckFrame ack;
  ack.protocol_version = in.u32();
  ack.max_frame_bytes = in.u32();
  return ack;
}

std::vector<std::uint8_t> encode_error(const ErrorFrame& error) {
  io::ByteWriter out;
  out.u64(error.tag);
  out.u32(error.code);
  out.u32(error.protocol_version);
  put_string(out, error.message);
  return out.take();
}

ErrorFrame decode_error(std::span<const std::uint8_t> payload) {
  io::ByteReader in(payload);
  ErrorFrame error;
  error.tag = in.u64();
  error.code = in.u32();
  error.protocol_version = in.u32();
  error.message = get_string(in);
  return error;
}

std::vector<std::uint8_t> encode_submit(const SubmitJobFrame& submit) {
  io::ByteWriter out;
  out.u64(submit.tag);
  put_string(out, submit.solver);
  out.u32(submit.num_replicas);
  out.u32(submit.num_sweeps);
  out.u64(submit.seed);
  out.u32(static_cast<std::uint32_t>(submit.priority));
  out.u32(submit.deadline_ms);
  out.u8(submit.bypass_cache ? 1 : 0);
  out.u8(submit.stream_status ? 1 : 0);
  io::encode_model(out, submit.model);
  // Trace-id tail, appended within protocol v1 after the model: a pre-obs
  // decoder stops at the model, a pre-obs encoder leaves the id at 0.
  out.u64(submit.trace_id);
  return out.take();
}

SubmitJobFrame decode_submit(std::span<const std::uint8_t> payload) {
  io::ByteReader in(payload);
  SubmitJobFrame submit;
  submit.tag = in.u64();
  submit.solver = get_string(in);
  submit.num_replicas = in.u32();
  submit.num_sweeps = in.u32();
  submit.seed = in.u64();
  submit.priority = static_cast<std::int32_t>(in.u32());
  submit.deadline_ms = in.u32();
  submit.bypass_cache = in.u8() != 0;
  submit.stream_status = in.u8() != 0;
  submit.model = io::decode_model(in);
  if (in.remaining() > 0) submit.trace_id = in.u64();
  return submit;
}

std::vector<std::uint8_t> encode_job_status(const JobStatusFrame& status) {
  io::ByteWriter out;
  out.u64(status.tag);
  out.u32(encode_status(status.status));
  return out.take();
}

JobStatusFrame decode_job_status(std::span<const std::uint8_t> payload) {
  io::ByteReader in(payload);
  JobStatusFrame status;
  status.tag = in.u64();
  status.status = decode_status(in.u32());
  return status;
}

std::vector<std::uint8_t> encode_cancel(const CancelJobFrame& cancel) {
  io::ByteWriter out;
  out.u64(cancel.tag);
  return out.take();
}

CancelJobFrame decode_cancel(std::span<const std::uint8_t> payload) {
  io::ByteReader in(payload);
  CancelJobFrame cancel;
  cancel.tag = in.u64();
  return cancel;
}

std::vector<std::uint8_t> encode_result(const ResultFrame& result) {
  io::ByteWriter out;
  out.u64(result.tag);
  out.u32(encode_status(result.status));
  out.u8(result.cache_hit ? 1 : 0);
  out.u8(result.coalesced ? 1 : 0);
  out.f64(result.wait_ms);
  out.f64(result.run_ms);
  put_string(out, result.error);
  out.u8(result.batch != nullptr ? 1 : 0);
  if (result.batch != nullptr) io::encode_batch(out, *result.batch);
  return out.take();
}

ResultFrame decode_result(std::span<const std::uint8_t> payload) {
  io::ByteReader in(payload);
  ResultFrame result;
  result.tag = in.u64();
  result.status = decode_status(in.u32());
  result.cache_hit = in.u8() != 0;
  result.coalesced = in.u8() != 0;
  result.wait_ms = in.f64();
  result.run_ms = in.f64();
  result.error = get_string(in);
  if (in.u8() != 0) {
    result.batch =
        std::make_shared<const qubo::SolveBatch>(io::decode_batch(in));
  }
  return result;
}

std::vector<std::uint8_t> encode_metrics(const MetricsFrame& metrics) {
  io::ByteWriter out;
  const auto& s = metrics.service;
  out.u64(s.workers);
  out.u64(s.queue_depth);
  out.u64(s.running);
  out.u64(s.submitted);
  out.u64(s.completed);
  out.u64(s.cancelled);
  out.u64(s.expired);
  out.u64(s.failed);
  out.u64(s.coalesced);
  out.u64(s.solver_invocations);
  out.u64(s.cache_hits);
  out.u64(s.cache_misses);
  out.u64(s.cache_evictions);
  out.u64(s.cache_size);
  out.u64(s.cache_loaded);
  out.u64(s.cache_stored);
  out.u64(s.cache_load_skipped);
  out.f64(s.uptime_seconds);
  out.f64(s.jobs_per_second);
  out.f64(s.queue_wait.p50_ms);
  out.f64(s.queue_wait.p90_ms);
  out.f64(s.queue_wait.p99_ms);
  out.f64(s.run.p50_ms);
  out.f64(s.run.p90_ms);
  out.f64(s.run.p99_ms);
  out.u64(metrics.connections_accepted);
  out.u64(metrics.connections_active);
  out.u64(metrics.protocol_errors);
  out.u64(metrics.connection_submitted);
  out.u64(metrics.connection_results);
  out.u64(metrics.connection_cancelled);
  // Admission-control tail, appended within protocol v1 (strictly after
  // every pre-quota field so old decoders read an unchanged prefix).
  out.u64(metrics.connections_rejected_full);
  out.u64(s.admission_rejected);
  put_string(out, metrics.client_id);
  out.u32(static_cast<std::uint32_t>(metrics.clients.size()));
  for (const auto& c : metrics.clients) {
    put_string(out, c.client_id);
    out.f64(c.weight);
    out.u64(c.queued);
    out.u64(c.inflight);
    out.u64(c.submitted);
    out.u64(c.completed);
    out.u64(c.dispatched);
    out.u64(c.rejected_inflight);
    out.u64(c.rejected_queued);
  }
  // SIMD-dispatch tail, appended within protocol v1 after the per-client
  // rows: pre-SIMD decoders stop at the rows, pre-SIMD encoders make a
  // decoder default the kernel to "unknown".
  put_string(out, s.simd_kernel);
  // Sliding-window throughput tail (appended after the SIMD tail, same
  // append-only discipline): absent on older servers, defaulting to 0.
  out.f64(s.recent_jobs_per_second);
  return out.take();
}

MetricsFrame decode_metrics(std::span<const std::uint8_t> payload) {
  io::ByteReader in(payload);
  MetricsFrame metrics;
  auto& s = metrics.service;
  s.workers = in.u64();
  s.queue_depth = in.u64();
  s.running = in.u64();
  s.submitted = in.u64();
  s.completed = in.u64();
  s.cancelled = in.u64();
  s.expired = in.u64();
  s.failed = in.u64();
  s.coalesced = in.u64();
  s.solver_invocations = in.u64();
  s.cache_hits = in.u64();
  s.cache_misses = in.u64();
  s.cache_evictions = in.u64();
  s.cache_size = in.u64();
  s.cache_loaded = in.u64();
  s.cache_stored = in.u64();
  s.cache_load_skipped = in.u64();
  s.uptime_seconds = in.f64();
  s.jobs_per_second = in.f64();
  s.queue_wait.p50_ms = in.f64();
  s.queue_wait.p90_ms = in.f64();
  s.queue_wait.p99_ms = in.f64();
  s.run.p50_ms = in.f64();
  s.run.p90_ms = in.f64();
  s.run.p99_ms = in.f64();
  metrics.connections_accepted = in.u64();
  metrics.connections_active = in.u64();
  metrics.protocol_errors = in.u64();
  metrics.connection_submitted = in.u64();
  metrics.connection_results = in.u64();
  metrics.connection_cancelled = in.u64();
  // A pre-admission-control server's payload ends here; the tail defaults
  // to "no quota activity" and an unknown dispatch kernel.
  if (in.remaining() == 0) {
    s.simd_kernel = "unknown";
    return metrics;
  }
  metrics.connections_rejected_full = in.u64();
  s.admission_rejected = in.u64();
  metrics.client_id = get_string(in);
  const std::uint32_t client_rows = in.u32();
  // A row is at least 68 bytes (empty-id string + f64 + 7×u64): a count the
  // remaining payload cannot possibly hold is a corrupt/hostile length, and
  // must throw BEFORE reserve() turns it into a large allocation.
  constexpr std::size_t kMinRowBytes = 68;
  if (client_rows > in.remaining() / kMinRowBytes) {
    throw io::DecodeError("implausible per-client row count: " +
                          std::to_string(client_rows));
  }
  metrics.clients.reserve(client_rows);
  for (std::uint32_t k = 0; k < client_rows; ++k) {
    service::ClientSchedulerMetrics c;
    c.client_id = get_string(in);
    c.weight = in.f64();
    c.queued = in.u64();
    c.inflight = in.u64();
    c.submitted = in.u64();
    c.completed = in.u64();
    c.dispatched = in.u64();
    c.rejected_inflight = in.u64();
    c.rejected_queued = in.u64();
    metrics.clients.push_back(std::move(c));
  }
  // A pre-SIMD server's payload ends after the rows; "unknown" marks a
  // daemon that predates kernel dispatch reporting.
  if (in.remaining() == 0) {
    s.simd_kernel = "unknown";
    return metrics;
  }
  s.simd_kernel = get_string(in);
  // Pre-obs servers end here; 0 = "no recent-rate data".
  if (in.remaining() > 0) s.recent_jobs_per_second = in.f64();
  return metrics;
}

qubo::QuboModel pack_tsp_instance(const tsp::TspInstance& instance) {
  const std::size_t n = instance.num_cities();
  qubo::QuboModel model(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      model.add_term(i, j, instance.distance(i, j));
    }
  }
  return model;
}

tsp::TspInstance unpack_tsp_instance(const qubo::QuboModel& model,
                                     std::string name) {
  const std::size_t n = model.num_vars();
  std::vector<double> distances(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = model.coefficient(i, j);
      distances[i * n + j] = d;
      distances[j * n + i] = d;
    }
  }
  return {std::move(name), n, std::move(distances)};
}

std::vector<std::uint8_t> encode_submit_tune(const SubmitTuneFrame& submit) {
  io::ByteWriter out;
  out.u64(submit.tag);
  put_string(out, submit.solver);
  out.u8(submit.strategy);
  out.f64(submit.pf_target);
  out.u32(submit.trials);
  out.f64(submit.a_min);
  out.f64(submit.a_max);
  out.u64(submit.seed);
  io::encode_model(out, submit.instance);
  // Appended within protocol v1 after the instance payload: a first-cut
  // decoder stops at the instance, a first-cut encoder leaves the tail out.
  out.u64(submit.trace_id);
  put_string(out, submit.instance_name);
  return out.take();
}

SubmitTuneFrame decode_submit_tune(std::span<const std::uint8_t> payload) {
  io::ByteReader in(payload);
  SubmitTuneFrame submit;
  submit.tag = in.u64();
  submit.solver = get_string(in);
  submit.strategy = in.u8();
  submit.pf_target = in.f64();
  submit.trials = in.u32();
  submit.a_min = in.f64();
  submit.a_max = in.f64();
  submit.seed = in.u64();
  submit.instance = io::decode_model(in);
  if (in.remaining() > 0) submit.trace_id = in.u64();
  if (in.remaining() > 0) submit.instance_name = get_string(in);
  return submit;
}

std::vector<std::uint8_t> encode_tune_status(const TuneStatusFrame& status) {
  io::ByteWriter out;
  out.u64(status.tag);
  out.u32(status.trial);
  out.u32(status.total);
  out.f64(status.relaxation_parameter);
  out.f64(status.pf);
  out.f64(status.best_length);
  // Batch-summary tail, appended within protocol v1.
  out.f64(status.energy_avg);
  out.f64(status.energy_std);
  out.u8(status.feasible ? 1 : 0);
  return out.take();
}

TuneStatusFrame decode_tune_status(std::span<const std::uint8_t> payload) {
  io::ByteReader in(payload);
  TuneStatusFrame status;
  status.tag = in.u64();
  status.trial = in.u32();
  status.total = in.u32();
  status.relaxation_parameter = in.f64();
  status.pf = in.f64();
  status.best_length = in.f64();
  if (in.remaining() > 0) status.energy_avg = in.f64();
  if (in.remaining() > 0) status.energy_std = in.f64();
  if (in.remaining() > 0) {
    status.feasible = in.u8() != 0;
  } else {
    // Pre-tail frames still carry feasibility implicitly: a finite best
    // length means some trial decoded a valid tour.
    status.feasible = std::isfinite(status.best_length);
  }
  return status;
}

std::vector<std::uint8_t> encode_cancel_tune(const CancelTuneFrame& cancel) {
  io::ByteWriter out;
  out.u64(cancel.tag);
  return out.take();
}

CancelTuneFrame decode_cancel_tune(std::span<const std::uint8_t> payload) {
  io::ByteReader in(payload);
  CancelTuneFrame cancel;
  cancel.tag = in.u64();
  return cancel;
}

std::vector<std::uint8_t> encode_tune_result(const TuneResultFrame& result) {
  io::ByteWriter out;
  out.u64(result.tag);
  out.u8(result.status);
  put_string(out, result.error);
  out.f64(result.best_length);
  out.f64(result.best_parameter);
  out.u32(static_cast<std::uint32_t>(result.best_tour.size()));
  for (const std::uint32_t city : result.best_tour) out.u32(city);
  out.u32(static_cast<std::uint32_t>(result.trials.size()));
  for (const auto& trial : result.trials) {
    out.f64(trial.relaxation_parameter);
    out.f64(trial.pf);
    out.f64(trial.best_length_so_far);
  }
  // Appended within protocol v1; decoders default them when absent.
  out.u64(result.solver_invocations);
  out.f64(result.wall_ms);
  return out.take();
}

TuneResultFrame decode_tune_result(std::span<const std::uint8_t> payload) {
  io::ByteReader in(payload);
  TuneResultFrame result;
  result.tag = in.u64();
  result.status = in.u8();
  result.error = get_string(in);
  result.best_length = in.f64();
  result.best_parameter = in.f64();
  const std::uint32_t tour_size = in.u32();
  if (tour_size > in.remaining() / sizeof(std::uint32_t)) {
    throw io::DecodeError("implausible tour length: " +
                          std::to_string(tour_size));
  }
  result.best_tour.reserve(tour_size);
  for (std::uint32_t k = 0; k < tour_size; ++k) {
    result.best_tour.push_back(in.u32());
  }
  const std::uint32_t trial_rows = in.u32();
  constexpr std::size_t kTrialBytes = 3 * sizeof(double);
  if (trial_rows > in.remaining() / kTrialBytes) {
    throw io::DecodeError("implausible trial count: " +
                          std::to_string(trial_rows));
  }
  result.trials.reserve(trial_rows);
  for (std::uint32_t k = 0; k < trial_rows; ++k) {
    TuneResultFrame::Trial trial;
    trial.relaxation_parameter = in.f64();
    trial.pf = in.f64();
    trial.best_length_so_far = in.f64();
    result.trials.push_back(trial);
  }
  if (in.remaining() > 0) result.solver_invocations = in.u64();
  if (in.remaining() > 0) result.wall_ms = in.f64();
  return result;
}

std::vector<std::uint8_t> encode_text(const std::string& text) {
  // The raw bytes ARE the payload — no length prefix, so the 1 MiB
  // per-string decode cap does not apply (see protocol.hpp).
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

std::string decode_text(std::span<const std::uint8_t> payload) {
  return std::string(payload.begin(), payload.end());
}

std::vector<std::uint8_t> frame(std::uint32_t type,
                                std::span<const std::uint8_t> payload) {
  io::ByteWriter out;
  io::write_record(out, type, payload);
  return out.take();
}

void FrameBuffer::append(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

FrameBuffer::Status FrameBuffer::next(Frame* out) {
  if (broken_) return Status::bad_frame;
  // Compact once the consumed prefix dominates; keeps the amortised cost of
  // many small frames linear without a deque.
  if (consumed_ > 0 &&
      (consumed_ >= buffer_.size() || consumed_ > (1u << 16))) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  const std::size_t available = buffer_.size() - consumed_;
  constexpr std::size_t kHeader = 16;  // u32 size | u32 type | u64 checksum
  if (available < kHeader) return Status::need_more;
  io::ByteReader reader(
      std::span<const std::uint8_t>(buffer_.data() + consumed_, available));
  const std::uint32_t size = reader.u32();
  const std::uint32_t type = reader.u32();
  const std::uint64_t expected = reader.u64();
  if (size > max_frame_bytes_) {
    broken_ = true;
    return Status::oversized;
  }
  if (available < kHeader + size) return Status::need_more;
  const auto payload = reader.raw(size);
  if (io::checksum64(payload) != expected) {
    broken_ = true;
    return Status::bad_frame;
  }
  out->type = type;
  out->payload.assign(payload.begin(), payload.end());
  consumed_ += kHeader + size;
  return Status::frame;
}

}  // namespace qross::net
