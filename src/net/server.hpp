#pragma once

// qross::net::Server — the network front end above a SolveService.
//
// One reactor thread owns every socket: it poll()s the listeners, all
// connection fds, and a self-pipe; job completions are delivered by
// JobHandle::notify hooks that enqueue (connection, tag) and write one byte
// to the pipe, so the reactor wakes without busy-polling and all frame
// writing stays on one thread (no per-connection locking, no torn frames).
//
// Connection-scoped job ownership: every job a connection submits is
// tracked in that connection's table, and a disconnect — orderly or not —
// cancels its still-in-flight jobs.  A short-lived client that dies
// mid-batch therefore cannot strand work on the queue.  Results produced by
// the shared SolveService cache/coalescing still serve other connections;
// ownership scopes the *cancellation*, not the cached result.
//
// Draining (SIGTERM path): drain() stops accepting connections and rejects
// new submissions with kErrDraining, but keeps serving until every
// in-flight job has had its Result frame flushed (or the deadline passes);
// stop() then tears down.  The caller flushes the persistent cache after —
// see tools/qrossd.cpp.

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "service/solve_service.hpp"
#include "solvers/solver.hpp"

namespace qross::service {
class TuneService;
}  // namespace qross::service

namespace qross::net {

/// Maps a wire solver name to a kernel.  Returns null for unknown names
/// (the submission is rejected with kErrUnknownSolver).
using SolverRegistry =
    std::function<solvers::SolverPtr(const std::string& name)>;

/// The built-in registry: sa | da | tabu | pt | qbsolv, default-configured.
solvers::SolverPtr default_solver_registry(const std::string& name);

struct ServerConfig {
  /// Endpoints to listen on; TCP and Unix-domain freely mixed.
  std::vector<Endpoint> listen;
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
  /// Accept backstop: beyond this many concurrent connections, a new accept
  /// is answered with a kErrServerFull Error frame and closed — the peer
  /// can tell "full, back off and retry" from a network failure.  Per-client
  /// admission quotas and fair-share weights are service-level policy:
  /// configure them on the SolveService (ServiceConfig::max_*_per_client,
  /// client_weights); the server attributes each connection to a client id
  /// (self-reported in Hello, else "conn-N") and passes it through.
  std::size_t max_connections = 256;
  /// Solver-name resolution; tests inject counting/slow solvers here.
  SolverRegistry registry = default_solver_registry;
  /// Tuning front end (borrowed, must outlive the server).  Null = this
  /// daemon serves raw solve jobs only; SubmitTune frames are answered with
  /// kErrTuningUnavailable.  Session concurrency limits live on the
  /// TuneService itself (TuneServiceConfig::max_sessions).
  service::TuneService* tune = nullptr;
};

struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t submits = 0;
  std::uint64_t results_sent = 0;
  std::uint64_t cancels = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t disconnect_cancelled_jobs = 0;  ///< jobs cancelled by hangup
  /// Accepts refused at max_connections — each one was answered with a
  /// kErrServerFull frame before the close, never a silent reset.
  std::uint64_t connections_rejected_full = 0;
  std::uint64_t tune_submits = 0;       ///< tune sessions admitted
  std::uint64_t tune_results_sent = 0;  ///< TuneResult frames queued
  std::uint64_t tune_cancels = 0;       ///< CancelTune requests honoured
  std::uint64_t disconnect_cancelled_tunes = 0;  ///< sessions cancelled by hangup
};

class Server {
 public:
  /// The service must outlive the server.
  Server(service::SolveService& service, ServerConfig config);
  ~Server();  ///< stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds every configured endpoint and starts the reactor thread.
  /// False (with *error filled) if any bind fails; nothing is left bound.
  bool start(std::string* error);

  /// The actually-bound endpoints (an ephemeral TCP port 0 is resolved to
  /// the kernel-assigned port).  Valid after start().
  std::vector<Endpoint> endpoints() const;

  /// Stops accepting and rejects new submissions, then waits until every
  /// in-flight job's Result frame has been written out (bounded by
  /// `deadline`).  Returns true on a complete drain, false on timeout.
  /// Idempotent; safe before or after stop().
  bool drain(std::chrono::milliseconds deadline);

  /// Cancels remaining in-flight jobs, closes every socket, and joins the
  /// reactor.  Idempotent.
  void stop();

  ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace qross::net
