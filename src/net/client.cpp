#include "net/client.hpp"

#include <chrono>
#include <thread>

#include "io/binary.hpp"

namespace qross::net {

using Clock = std::chrono::steady_clock;

const char* to_string(RemoteErrorKind kind) {
  switch (kind) {
    case RemoteErrorKind::connection: return "connection";
    case RemoteErrorKind::timeout: return "timeout";
    case RemoteErrorKind::refused: return "refused";
    case RemoteErrorKind::usage: return "usage";
  }
  return "?";
}

Client::Client(ClientConfig config) : config_(std::move(config)) {}

Client::~Client() = default;

bool Client::handshake(std::string* error) {
  in_ = FrameBuffer();  // a fresh connection starts a fresh stream
  HelloFrame hello;
  hello.client_id = config_.client_id;
  if (!send_frame(io::kRecordNetHello, encode_hello(hello))) {
    if (error != nullptr) *error = "cannot send Hello";
    return false;
  }
  if (!pump(io::kRecordNetHelloAck, 0, config_.connect_timeout_ms, error)) {
    return false;
  }
  return true;
}

bool Client::connect(std::string* error) {
  for (int attempt = 0;; ++attempt) {
    const std::size_t errors_before = errors_.size();
    sock_ = connect_to(config_.server, config_.connect_timeout_ms, error);
    if (!sock_.valid()) return false;
    if (handshake(error)) return true;
    sock_.close();
    // kErrServerFull arrives pre-handshake (tag 0) and is the classic
    // RETRYABLE connect failure: the server told us to back off until a
    // slot frees.  Everything else (version refusal, bad ack, a silent
    // close) is final — only an Error frame received during THIS attempt
    // counts, or a stale buffered one would misclassify the failure.
    // Triage delegates to is_retryable_error(), the protocol's single
    // definition of transient server state.
    const bool server_full = errors_.size() > errors_before &&
                             is_retryable_error(errors_.back().code);
    if (!server_full || attempt + 1 >= config_.reconnect_attempts) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(
        config_.reconnect_backoff_ms * (attempt + 1)));
  }
}

bool Client::send_frame(std::uint32_t type,
                        std::span<const std::uint8_t> payload) {
  if (!sock_.valid()) return false;
  const auto bytes = frame(type, payload);
  if (!sock_.send_all(bytes.data(), bytes.size())) {
    sock_.close();
    return false;
  }
  return true;
}

bool Client::reconnect_and_resubmit(std::string* error) {
  for (int attempt = 0; attempt < config_.reconnect_attempts; ++attempt) {
    if (attempt > 0 || config_.reconnect_backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          config_.reconnect_backoff_ms * (attempt + 1)));
    }
    std::string local_error;
    sock_ = connect_to(config_.server, config_.connect_timeout_ms,
                       &local_error);
    if (!sock_.valid()) {
      if (error != nullptr) *error = local_error;
      continue;
    }
    if (!handshake(&local_error)) {
      sock_.close();
      if (error != nullptr) *error = local_error;
      continue;
    }
    // Resubmit everything still outstanding under its ORIGINAL tag.  The
    // server's cache/coalescing makes the retry cost one lookup, not one
    // solver run, even when the first attempt completed just before the
    // connection died.
    bool resubmitted_all = true;
    for (const auto& [tag, job] : pending_) {
      if (!send_submit(tag, job)) {
        resubmitted_all = false;
        break;
      }
    }
    if (resubmitted_all) {
      // Tune sessions too: the dead connection's hangup cancelled them
      // server-side, so the resubmit starts a REPLACEMENT session — the
      // warm probe cache makes its replayed prefix free, and the fresh
      // session streams trials from 0, so the stale progress is dropped.
      for (const auto& [tag, tune] : tune_pending_) {
        if (!send_submit_tune(tag, tune)) {
          resubmitted_all = false;
          break;
        }
        tune_updates_[tag].clear();
      }
    }
    if (resubmitted_all) {
      // Every pending tag is freshly in flight: a tag ALSO flagged for a
      // retryable-refusal resubmit must not be sent a second time — the
      // server would refuse the duplicate tag as a bad request and fail a
      // job that is actually running.
      retry_wanted_.clear();
      tune_retry_wanted_.clear();
      return true;
    }
  }
  if (error != nullptr && error->empty()) {
    *error = "reconnect attempts exhausted";
  }
  return false;
}

bool Client::send_submit(std::uint64_t tag, const RemoteJob& job) {
  SubmitJobFrame submit;
  submit.tag = tag;
  submit.solver = job.solver;
  submit.num_replicas = job.num_replicas;
  submit.num_sweeps = job.num_sweeps;
  submit.seed = job.seed;
  submit.priority = job.priority;
  submit.deadline_ms = job.deadline_ms;
  submit.bypass_cache = job.bypass_cache;
  submit.stream_status = job.stream_status;
  submit.model = job.model;
  submit.trace_id = job.trace_id;
  return send_frame(io::kRecordNetSubmitJob, encode_submit(submit));
}

bool Client::send_submit_tune(std::uint64_t tag, const RemoteTune& tune) {
  SubmitTuneFrame submit;
  submit.tag = tag;
  submit.solver = tune.solver;
  submit.strategy = tune.strategy;
  submit.pf_target = tune.pf_target;
  submit.trials = tune.trials;
  submit.a_min = tune.a_min;
  submit.a_max = tune.a_max;
  submit.seed = tune.seed;
  submit.instance = tune.instance;
  submit.trace_id = tune.trace_id;
  submit.instance_name = tune.instance_name;
  return send_frame(io::kRecordNetSubmitTune, encode_submit_tune(submit));
}

RemoteOutcome<std::uint64_t> Client::submit_job(const RemoteJob& job) {
  const std::uint64_t tag = next_tag_++;
  pending_[tag] = job;
  if (!send_submit(tag, job)) {
    // The reconnect path resubmits `tag` itself (it is already pending).
    std::string error;
    if (!reconnect_and_resubmit(&error)) {
      pending_.erase(tag);
      RemoteError remote;
      remote.kind = RemoteErrorKind::connection;
      remote.message = error;
      return remote;
    }
  }
  return tag;
}

std::optional<std::uint64_t> Client::submit(const RemoteJob& job,
                                            std::string* error) {
  auto outcome = submit_job(job);
  if (outcome.ok()) return outcome.value();
  if (error != nullptr) *error = outcome.error().message;
  return std::nullopt;
}

RemoteOutcome<std::uint64_t> Client::submit_tune(const RemoteTune& tune) {
  const std::uint64_t tag = next_tag_++;
  tune_pending_[tag] = tune;
  if (!send_submit_tune(tag, tune)) {
    std::string error;
    if (!reconnect_and_resubmit(&error)) {
      tune_pending_.erase(tag);
      RemoteError remote;
      remote.kind = RemoteErrorKind::connection;
      remote.message = error;
      return remote;
    }
  }
  return tag;
}

void Client::handle_incoming(const Frame& f) {
  try {
    switch (f.type) {
      case io::kRecordNetResult: {
        auto result = decode_result(f.payload);
        const auto tag = result.tag;
        pending_.erase(tag);
        retry_wanted_.erase(tag);
        retry_attempts_.erase(tag);
        results_.emplace(tag, std::move(result));
        return;
      }
      case io::kRecordNetJobStatus: {
        const auto status = decode_job_status(f.payload);
        updates_[status.tag].push_back(status.status);
        return;
      }
      case io::kRecordNetTuneStatus: {
        auto status = decode_tune_status(f.payload);
        tune_updates_[status.tag].push_back(std::move(status));
        return;
      }
      case io::kRecordNetTuneResult: {
        auto result = decode_tune_result(f.payload);
        const auto tag = result.tag;
        tune_pending_.erase(tag);
        tune_retry_wanted_.erase(tag);
        retry_attempts_.erase(tag);
        tune_results_.emplace(tag, std::move(result));
        return;
      }
      case io::kRecordNetMetrics:
        last_metrics_ = decode_metrics(f.payload);
        return;
      case io::kRecordNetTraceDump:
        last_trace_ = decode_text(f.payload);
        return;
      case io::kRecordNetPromText:
        last_prom_ = decode_text(f.payload);
        return;
      case io::kRecordNetError: {
        auto error = decode_error(f.payload);
        if (error.tag != 0 && pending_.contains(error.tag)) {
          if (is_retryable_error(error.code)) {
            // Transient server state (draining / full): keep the request
            // pending; wait() backs off and resubmits it.
            retry_wanted_.insert(error.tag);
          } else {
            // Permanent refusal.  Known edge: a reconnect's resubmits can
            // race the server noticing the dead predecessor connection
            // (whose hangup is what frees this client's inflight quota), so
            // a quota refusal here may be transient in that narrow window.
            // The taxonomy still wins — retrying quota errors in general
            // rewards exactly the flooding the quota exists to stop.
            // A permanent refusal (quota, bad request, unknown solver)
            // completes the request as failed, so wait() observes it
            // instead of timing out — and never resubmits it.
            ResultFrame result;
            result.tag = error.tag;
            result.status = service::JobStatus::failed;
            result.error = "server error " + std::to_string(error.code) +
                           ": " + error.message;
            pending_.erase(error.tag);
            retry_wanted_.erase(error.tag);
            retry_attempts_.erase(error.tag);
            results_.emplace(error.tag, std::move(result));
          }
        } else if (error.tag != 0 && tune_pending_.contains(error.tag)) {
          if (is_retryable_error(error.code)) {
            // Draining or at the session quota: tune_wait() backs off and
            // resubmits, exactly like a refused job.
            tune_retry_wanted_.insert(error.tag);
          } else {
            // Permanent refusal (no tuner loaded, unknown solver, bad
            // instance): surfaces as a typed error from tune_wait().
            RemoteError remote;
            remote.kind = RemoteErrorKind::refused;
            remote.code = error.code;
            remote.message = "server error " + std::to_string(error.code) +
                             ": " + error.message;
            tune_pending_.erase(error.tag);
            tune_retry_wanted_.erase(error.tag);
            retry_attempts_.erase(error.tag);
            tune_failures_.emplace(error.tag, std::move(remote));
          }
        }
        errors_.push_back(std::move(error));
        return;
      }
      case io::kRecordNetHelloAck:
        ack_ = decode_hello_ack(f.payload);
        return;
      default:
        return;  // unknown frame types are tolerated, mirroring the server
    }
  } catch (const io::DecodeError&) {
    // A checksum-valid but undecodable frame: drop it; the stream framing
    // is still intact.
  }
}

bool Client::pump(std::uint32_t stop_type, std::uint64_t stop_tag,
                  int timeout_ms, std::string* error) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(
                         timeout_ms < 0 ? 24 * 3600 * 1000 : timeout_ms);
  // Result-shaped stop types are scoped to one tag (the first payload field
  // of both Result and TuneResult); everything else stops on the type alone.
  const bool tag_scoped = stop_type == io::kRecordNetResult ||
                          stop_type == io::kRecordNetTuneResult;
  std::uint8_t buf[65536];
  while (true) {
    // Check the stop condition against everything already buffered first.
    Frame f;
    while (true) {
      const auto status = in_.next(&f);
      if (status == FrameBuffer::Status::need_more) break;
      if (status != FrameBuffer::Status::frame) {
        if (error != nullptr) *error = "malformed frame from server";
        sock_.close();
        return false;
      }
      const bool is_stop =
          f.type == stop_type &&
          (!tag_scoped || (f.payload.size() >= 8 &&
                           io::ByteReader(f.payload).u64() == stop_tag));
      handle_incoming(f);
      if (is_stop) return true;
      // A request-killing Error frame also satisfies a Result wait, and so
      // does a retryable refusal (wait() owns the backoff + resubmit).
      if (stop_type == io::kRecordNetResult &&
          (results_.contains(stop_tag) || retry_wanted_.contains(stop_tag))) {
        return true;
      }
      if (stop_type == io::kRecordNetTuneResult &&
          (tune_results_.contains(stop_tag) ||
           tune_failures_.contains(stop_tag) ||
           tune_retry_wanted_.contains(stop_tag))) {
        return true;
      }
      if (f.type == io::kRecordNetError && !tag_scoped) {
        // Waiting for an ack/metrics and got an error instead: surface it.
        if (error != nullptr && !errors_.empty()) {
          *error = "server error " + std::to_string(errors_.back().code) +
                   ": " + errors_.back().message;
        }
        return false;
      }
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0) {
      if (error != nullptr) *error = "request timed out";
      return false;
    }
    const long n = sock_.recv_some(
        buf, sizeof(buf), static_cast<int>(remaining.count()));
    if (n == -2) {
      if (error != nullptr) *error = "request timed out";
      return false;
    }
    if (n <= 0) {
      if (error != nullptr) *error = "connection lost";
      sock_.close();
      return false;
    }
    in_.append(buf, static_cast<std::size_t>(n));
  }
}

RemoteOutcome<ResultFrame> Client::wait_result(std::uint64_t tag) {
  const auto finish_with = [&](RemoteErrorKind kind, std::string message) {
    pending_.erase(tag);
    retry_wanted_.erase(tag);
    retry_attempts_.erase(tag);
    RemoteError error;
    error.kind = kind;
    error.message = std::move(message);
    return error;
  };
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.request_timeout_ms);
  while (true) {
    const auto it = results_.find(tag);
    if (it != results_.end()) {
      ResultFrame result = std::move(it->second);
      results_.erase(it);
      retry_wanted_.erase(tag);
      retry_attempts_.erase(tag);
      return result;
    }
    if (!pending_.contains(tag)) {
      return finish_with(RemoteErrorKind::usage,
                         "unknown tag: never submitted or already waited");
    }
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0) {
      return finish_with(RemoteErrorKind::timeout, "request timed out");
    }
    if (retry_wanted_.erase(tag) > 0) {
      // The server refused this tag with a RETRYABLE code (draining /
      // full): back off, then resubmit the identical job under its
      // original tag — idempotent server-side via cache/coalescing.
      const int attempt = ++retry_attempts_[tag];
      if (attempt > config_.reconnect_attempts) {
        retry_attempts_.erase(tag);
        return finish_with(
            RemoteErrorKind::refused,
            "server refused " + std::to_string(attempt - 1) +
                " resubmits (busy or draining); giving up");
      }
      const auto backoff =
          std::chrono::milliseconds(config_.reconnect_backoff_ms * attempt);
      if (backoff >= remaining) {
        // No budget left to wait out the refusal — and resubmitting now
        // would orphan a job on the server that nobody will collect.
        return finish_with(RemoteErrorKind::timeout, "request timed out");
      }
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
      if (!send_submit(tag, pending_.at(tag))) {
        std::string reconnect_error;
        if (!reconnect_and_resubmit(&reconnect_error)) {
          return finish_with(RemoteErrorKind::connection,
                             "connection lost: " + reconnect_error);
        }
      }
      continue;
    }
    remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0) {
      return finish_with(RemoteErrorKind::timeout, "request timed out");
    }
    std::string error;
    if (!pump(io::kRecordNetResult, tag,
              static_cast<int>(remaining.count()), &error)) {
      if (error == "request timed out") {
        return finish_with(RemoteErrorKind::timeout, error);
      }
      // Connection lost mid-wait: redial and resubmit the outstanding jobs,
      // then keep waiting out the remaining budget.
      if (!reconnect_and_resubmit(&error)) {
        return finish_with(RemoteErrorKind::connection,
                           "connection lost: " + error);
      }
    }
  }
}

ResultFrame Client::wait(std::uint64_t tag) {
  auto outcome = wait_result(tag);
  if (outcome.ok()) return std::move(outcome).value();
  // The legacy shape folds transport failures into a failed ResultFrame so
  // callers have one error path.
  ResultFrame result;
  result.tag = tag;
  result.status = service::JobStatus::failed;
  result.error = outcome.error().message;
  return result;
}

RemoteOutcome<TuneResultFrame> Client::tune_wait(std::uint64_t tag) {
  const auto finish_with = [&](RemoteErrorKind kind, std::string message) {
    tune_pending_.erase(tag);
    tune_retry_wanted_.erase(tag);
    retry_attempts_.erase(tag);
    RemoteError error;
    error.kind = kind;
    error.message = std::move(message);
    return error;
  };
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.request_timeout_ms);
  while (true) {
    if (const auto it = tune_results_.find(tag); it != tune_results_.end()) {
      TuneResultFrame result = std::move(it->second);
      tune_results_.erase(it);
      retry_attempts_.erase(tag);
      return result;
    }
    if (const auto it = tune_failures_.find(tag); it != tune_failures_.end()) {
      RemoteError error = std::move(it->second);
      tune_failures_.erase(it);
      retry_attempts_.erase(tag);
      return error;
    }
    if (!tune_pending_.contains(tag)) {
      return finish_with(RemoteErrorKind::usage,
                         "unknown tag: never submitted or already waited");
    }
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0) {
      return finish_with(RemoteErrorKind::timeout, "request timed out");
    }
    if (tune_retry_wanted_.erase(tag) > 0) {
      // Refused with a retryable code (draining / session quota): back off
      // and resubmit.  Nothing started server-side, so the resubmit opens
      // the SAME session the refusal denied, not a duplicate.
      const int attempt = ++retry_attempts_[tag];
      if (attempt > config_.reconnect_attempts) {
        retry_attempts_.erase(tag);
        return finish_with(
            RemoteErrorKind::refused,
            "server refused " + std::to_string(attempt - 1) +
                " resubmits (busy or draining); giving up");
      }
      const auto backoff =
          std::chrono::milliseconds(config_.reconnect_backoff_ms * attempt);
      if (backoff >= remaining) {
        return finish_with(RemoteErrorKind::timeout, "request timed out");
      }
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
      if (!send_submit_tune(tag, tune_pending_.at(tag))) {
        std::string reconnect_error;
        if (!reconnect_and_resubmit(&reconnect_error)) {
          return finish_with(RemoteErrorKind::connection,
                             "connection lost: " + reconnect_error);
        }
      }
      continue;
    }
    remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0) {
      return finish_with(RemoteErrorKind::timeout, "request timed out");
    }
    std::string error;
    if (!pump(io::kRecordNetTuneResult, tag,
              static_cast<int>(remaining.count()), &error)) {
      if (error == "request timed out") {
        return finish_with(RemoteErrorKind::timeout, error);
      }
      if (!reconnect_and_resubmit(&error)) {
        return finish_with(RemoteErrorKind::connection,
                           "connection lost: " + error);
      }
    }
  }
}

std::vector<TuneStatusFrame> Client::tune_status(std::uint64_t tag) const {
  const auto it = tune_updates_.find(tag);
  return it == tune_updates_.end() ? std::vector<TuneStatusFrame>{}
                                   : it->second;
}

bool Client::cancel(std::uint64_t tag) {
  CancelJobFrame cancel;
  cancel.tag = tag;
  return send_frame(io::kRecordNetCancelJob, encode_cancel(cancel));
}

bool Client::cancel_tune(std::uint64_t tag) {
  CancelTuneFrame cancel;
  cancel.tag = tag;
  return send_frame(io::kRecordNetCancelTune, encode_cancel_tune(cancel));
}

std::vector<service::JobStatus> Client::status_updates(
    std::uint64_t tag) const {
  const auto it = updates_.find(tag);
  return it == updates_.end() ? std::vector<service::JobStatus>{}
                              : it->second;
}

RemoteError Client::request_error(std::size_t errors_before,
                                  const std::string& message) const {
  RemoteError error;
  if (errors_.size() > errors_before) {
    // An Error frame arrived during THIS request: a refusal with the
    // server's code (retryability then flows from is_retryable_error).
    error.kind = RemoteErrorKind::refused;
    error.code = errors_.back().code;
  } else if (message == "request timed out") {
    error.kind = RemoteErrorKind::timeout;
  } else {
    error.kind = RemoteErrorKind::connection;
  }
  error.message = message;
  return error;
}

std::optional<RemoteError> Client::round_trip(std::uint32_t request_type,
                                              std::uint32_t reply_type) {
  const std::size_t errors_before = errors_.size();
  std::string error;
  if (!send_frame(request_type, {})) {
    if (!reconnect_and_resubmit(&error)) {
      RemoteError remote;
      remote.kind = RemoteErrorKind::connection;
      remote.message = error.empty() ? "connection lost" : error;
      return remote;
    }
    if (!send_frame(request_type, {})) {
      RemoteError remote;
      remote.kind = RemoteErrorKind::connection;
      remote.message = "connection lost";
      return remote;
    }
  }
  // A pre-obs server answers GetTrace/GetProm with kErrUnknownType; pump()
  // surfaces that Error frame as a failure for non-Result stop types, so
  // old servers degrade to a typed refusal instead of a hang.
  if (!pump(reply_type, 0, config_.request_timeout_ms, &error)) {
    return request_error(errors_before, error);
  }
  return std::nullopt;
}

RemoteOutcome<MetricsFrame> Client::fetch_metrics() {
  last_metrics_.reset();
  if (auto failed = round_trip(io::kRecordNetGetMetrics,
                               io::kRecordNetMetrics)) {
    return std::move(*failed);
  }
  if (!last_metrics_.has_value()) {
    return RemoteError{RemoteErrorKind::connection, kErrUnknown,
                       "no metrics in reply"};
  }
  return std::move(*last_metrics_);
}

RemoteOutcome<std::string> Client::fetch_trace() {
  last_trace_.reset();
  if (auto failed = round_trip(io::kRecordNetGetTrace,
                               io::kRecordNetTraceDump)) {
    return std::move(*failed);
  }
  if (!last_trace_.has_value()) {
    return RemoteError{RemoteErrorKind::connection, kErrUnknown,
                       "no trace in reply"};
  }
  return std::move(*last_trace_);
}

RemoteOutcome<std::string> Client::fetch_prometheus() {
  last_prom_.reset();
  if (auto failed = round_trip(io::kRecordNetGetProm,
                               io::kRecordNetPromText)) {
    return std::move(*failed);
  }
  if (!last_prom_.has_value()) {
    return RemoteError{RemoteErrorKind::connection, kErrUnknown,
                       "no exposition in reply"};
  }
  return std::move(*last_prom_);
}

std::optional<MetricsFrame> Client::metrics(std::string* error) {
  auto outcome = fetch_metrics();
  if (!outcome.ok()) {
    if (error != nullptr) *error = outcome.error().message;
    return std::nullopt;
  }
  return std::move(outcome).value();
}

std::optional<std::string> Client::trace_dump(std::string* error) {
  auto outcome = fetch_trace();
  if (!outcome.ok()) {
    if (error != nullptr) *error = outcome.error().message;
    return std::nullopt;
  }
  return std::move(outcome).value();
}

std::optional<std::string> Client::prometheus_metrics(std::string* error) {
  auto outcome = fetch_prometheus();
  if (!outcome.ok()) {
    if (error != nullptr) *error = outcome.error().message;
    return std::nullopt;
  }
  return std::move(outcome).value();
}

std::vector<ResultFrame> Client::run(const std::vector<RemoteJob>& jobs) {
  std::vector<ResultFrame> results(jobs.size());
  std::vector<std::pair<std::size_t, std::uint64_t>> submitted;
  submitted.reserve(jobs.size());
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    std::string error;
    const auto tag = submit(jobs[k], &error);
    if (!tag.has_value()) {
      results[k].status = service::JobStatus::failed;
      results[k].error = "submit failed: " + error;
      continue;
    }
    submitted.emplace_back(k, *tag);
  }
  for (const auto& [index, tag] : submitted) results[index] = wait(tag);
  return results;
}

std::vector<ErrorFrame> Client::take_errors() {
  auto drained = std::move(errors_);
  errors_.clear();
  return drained;
}

int Client::drain_buffered_frames(std::string* error) {
  int handled = 0;
  Frame f;
  while (true) {
    const auto status = in_.next(&f);
    if (status == FrameBuffer::Status::need_more) return handled;
    if (status != FrameBuffer::Status::frame) {
      if (error != nullptr) *error = "malformed frame from server";
      sock_.close();
      return -1;
    }
    handle_incoming(f);
    ++handled;
  }
}

bool Client::poll(int timeout_ms, std::string* error) {
  if (!sock_.valid()) {
    if (error != nullptr) *error = "connection lost";
    return false;
  }
  // Serve what's already buffered before touching the socket.
  const int buffered = drain_buffered_frames(error);
  if (buffered < 0) return false;
  if (buffered > 0) return true;
  std::uint8_t buf[65536];
  const long n = sock_.recv_some(buf, sizeof(buf), timeout_ms);
  if (n == -2) return true;  // quiet socket: a timeout is not an error here
  if (n <= 0) {
    if (error != nullptr) *error = "connection lost";
    sock_.close();
    return false;
  }
  in_.append(buf, static_cast<std::size_t>(n));
  return drain_buffered_frames(error) >= 0;
}

std::vector<ResultFrame> Client::take_ready_results() {
  std::vector<ResultFrame> drained;
  drained.reserve(results_.size());
  for (auto& [tag, result] : results_) {
    retry_wanted_.erase(tag);
    retry_attempts_.erase(tag);
    drained.push_back(std::move(result));
  }
  results_.clear();
  return drained;
}

void Client::forget(std::uint64_t tag) {
  pending_.erase(tag);
  results_.erase(tag);
  updates_.erase(tag);
  retry_wanted_.erase(tag);
  retry_attempts_.erase(tag);
}

}  // namespace qross::net
