#include "net/server.hpp"

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <fcntl.h>
#include <map>
#include <memory>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <unordered_map>
#include <utility>

#include "common/thread_annotations.hpp"
#include "io/binary.hpp"
#include "obs/log.hpp"
#include "service/tune_service.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "solvers/digital_annealer.hpp"
#include "solvers/parallel_tempering.hpp"
#include "solvers/qbsolv.hpp"
#include "solvers/simulated_annealer.hpp"
#include "solvers/tabu_search.hpp"

namespace qross::net {

solvers::SolverPtr default_solver_registry(const std::string& name) {
  if (name == "da") return std::make_shared<solvers::DigitalAnnealer>();
  if (name == "sa") return std::make_shared<solvers::SimulatedAnnealer>();
  if (name == "tabu") return std::make_shared<solvers::TabuSearch>();
  if (name == "pt") return std::make_shared<solvers::ParallelTempering>();
  if (name == "qbsolv") return std::make_shared<solvers::Qbsolv>();
  return nullptr;
}

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

struct Server::Impl {
  // One submitted job as the serving side tracks it.
  struct PendingJob {
    service::JobHandle handle;
    bool stream_status = false;
    service::JobStatus last_reported = service::JobStatus::queued;
    std::uint64_t trace_id = 0;  ///< client-supplied; stamps the result span
  };

  // One tune session as the serving side tracks it.  `reported` is the
  // high-water mark of streamed trial events: the persistent notify hook
  // may enqueue many completions per session, and each reactor pass streams
  // only events_since(reported), so duplicate wakeups send nothing twice.
  struct PendingTune {
    service::TuneHandle handle;
    std::size_t reported = 0;
    std::uint64_t trace_id = 0;
  };

  struct Connection {
    std::uint64_t id = 0;
    /// Admission identity: the Hello's self-reported client_id, else
    /// "conn-<id>" so each anonymous connection is its own quota bucket.
    std::string client_id;
    Socket sock;
    FrameBuffer in;
    std::vector<std::uint8_t> out;  // unsent frame bytes, FIFO
    std::size_t out_offset = 0;
    bool handshaken = false;
    bool closing = false;  // flush `out`, then close
    std::map<std::uint64_t, PendingJob> jobs;
    std::map<std::uint64_t, PendingTune> tunes;
    std::uint64_t submitted = 0;
    std::uint64_t results = 0;
    std::uint64_t cancels = 0;

    explicit Connection(std::uint64_t id_, Socket sock_)
        : id(id_), sock(std::move(sock_)) {}
  };

  /// Completion hooks outlive the server when cancelled kernels finish
  /// late; they reach the Impl only through this null-able indirection.
  /// Hooks call deliver() — never touch `impl` directly — so the guard is
  /// enforced at the one place the pointer is read.
  struct CompletionSink {
    Mutex m;
    Impl* impl GUARDED_BY(m) = nullptr;  // nulled by stop() after the join

    void deliver(std::uint64_t conn_id, std::uint64_t tag, bool tune)
        EXCLUDES(m) {
      MutexLock lock(m);
      if (impl != nullptr) impl->on_complete(conn_id, tag, tune);
    }

    /// Severs the indirection; any hook mid-deliver finishes first (it
    /// holds m), so after this returns no hook can reach the Impl.
    void detach() EXCLUDES(m) {
      MutexLock lock(m);
      impl = nullptr;
    }
  };

  Impl(service::SolveService& svc, ServerConfig cfg)
      : service(svc), config(std::move(cfg)) {
    sink = std::make_shared<CompletionSink>();
    {
      MutexLock lock(sink->m);
      sink->impl = this;
    }
    ctr_frames_sent = obs::registry().counter(
        "qross_net_frames_sent_total", "Frames queued to peers");
    ctr_frames_received = obs::registry().counter(
        "qross_net_frames_received_total", "Well-framed frames received");
  }

  service::SolveService& service;
  ServerConfig config;
  std::shared_ptr<CompletionSink> sink;

  std::vector<Socket> listeners;
  std::vector<Endpoint> bound;
  int wake_read = -1;
  int wake_write = -1;
  std::thread reactor;
  /// Owner-thread-only: start()/drain()/stop() are driven by the thread
  /// that owns the Server (qrossd's main/signal path), never the reactor.
  bool started = false;

  // Cross-thread state (reactor <-> public API / completion hooks).
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t tag = 0;
    bool tune = false;  ///< progress/terminal of a tune session, not a job
  };
  mutable Mutex m;
  std::condition_variable cv;
  std::vector<Completion> completions GUARDED_BY(m);
  bool stop_requested GUARDED_BY(m) = false;
  bool draining GUARDED_BY(m) = false;
  bool drain_done GUARDED_BY(m) = false;
  bool stopped GUARDED_BY(m) = false;
  ServerStats stats GUARDED_BY(m);

  // Reactor-thread-only state (stop() touches it only after the join, when
  // the reactor is gone — single-threaded again, so no guard applies).
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns;
  std::uint64_t next_conn_id = 1;

  // Registry instruments (atomic updates only — safe on the reactor).
  obs::Counter* ctr_frames_sent = nullptr;
  obs::Counter* ctr_frames_received = nullptr;

  // --- wakeup -----------------------------------------------------------

  void wake() const {
    const char byte = 1;
    if (wake_write >= 0) {
      [[maybe_unused]] const auto n = ::write(wake_write, &byte, 1);
    }
  }

  /// Called by JobHandle::notify / TuneHandle::notify hooks — possibly from
  /// inside the service lock, so this must only enqueue and signal (see
  /// job.hpp contract).  Tune hooks are persistent (one enqueue per trial
  /// plus the terminal one); the reactor dedups via PendingTune::reported.
  void on_complete(std::uint64_t conn_id, std::uint64_t tag,
                   bool tune = false) EXCLUDES(m) {
    {
      MutexLock lock(m);
      completions.push_back({conn_id, tag, tune});
    }
    wake();
  }

  // --- frame output -----------------------------------------------------

  void queue_frame(Connection* conn, std::uint32_t type,
                   std::span<const std::uint8_t> payload) EXCLUDES(m) {
    ctr_frames_sent->inc();
    std::vector<std::uint8_t> bytes;
    {
      obs::ScopedSpan span("frame_encode", "net");
      bytes = frame(type, payload);
    }
    conn->out.insert(conn->out.end(), bytes.begin(), bytes.end());
    {
      MutexLock lock(m);
      ++stats.frames_sent;
    }
    flush_out(conn);
  }

  /// Admission/lifecycle refusals (draining, quota): the peer used the
  /// protocol correctly, so the Error frame goes out WITHOUT counting a
  /// protocol error — those rejections have their own counters
  /// (ServiceMetrics::admission_rejected, ServerStats rejection fields).
  void queue_refusal(Connection* conn, std::uint64_t tag, std::uint32_t code,
                     const std::string& message) EXCLUDES(m) {
    ErrorFrame error;
    error.tag = tag;
    error.code = code;
    error.message = message;
    queue_frame(conn, io::kRecordNetError, encode_error(error));
  }

  void queue_error(Connection* conn, std::uint64_t tag, std::uint32_t code,
                   const std::string& message) EXCLUDES(m) {
    // Count BEFORE the frame departs: a peer that has seen the Error frame
    // must see the counter too (tests and operators correlate the two).
    {
      MutexLock lock(m);
      ++stats.protocol_errors;
    }
    queue_refusal(conn, tag, code, message);
  }

  /// Non-blocking write of the pending bytes; a peer that cannot keep up
  /// simply keeps its buffer until POLLOUT.
  void flush_out(Connection* conn) {
    while (conn->out_offset < conn->out.size()) {
      const ssize_t n =
          ::send(conn->sock.fd(), conn->out.data() + conn->out_offset,
                 conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        conn->closing = true;  // broken pipe: close once we fall out
        conn->out.clear();
        conn->out_offset = 0;
        return;
      }
      conn->out_offset += static_cast<std::size_t>(n);
    }
    conn->out.clear();
    conn->out_offset = 0;
  }

  bool out_empty(const Connection* conn) const {
    return conn->out_offset >= conn->out.size();
  }

  // --- request handling -------------------------------------------------

  void handle_submit(Connection* conn, const Frame& f) EXCLUDES(m) {
    SubmitJobFrame submit;
    // std::exception, not just DecodeError: a decoder slip (bad_alloc from
    // a hostile size that passed the sanity bounds, length_error, ...)
    // must cost one request, never the reactor thread.
    try {
      obs::ScopedSpan span("frame_decode", "net");
      submit = decode_submit(f.payload);
    } catch (const std::exception& e) {
      queue_error(conn, 0, kErrBadFrame,
                  std::string("undecodable SubmitJob: ") + e.what());
      return;
    }
    if (is_draining()) {
      queue_refusal(conn, submit.tag, kErrDraining,
                    "server is draining; submissions refused");
      return;
    }
    if (conn->jobs.contains(submit.tag) || conn->tunes.contains(submit.tag)) {
      queue_error(conn, submit.tag, kErrBadRequest,
                  "tag already has an in-flight request");
      return;
    }
    const auto solver = config.registry(submit.solver);
    if (solver == nullptr) {
      queue_error(conn, submit.tag, kErrUnknownSolver,
                  "unknown solver: " + submit.solver);
      return;
    }
    solvers::SolveOptions options;
    options.num_replicas = submit.num_replicas;
    options.num_sweeps = submit.num_sweeps;
    options.seed = submit.seed;
    service::SubmitOptions submit_options;
    submit_options.priority = submit.priority;
    submit_options.bypass_cache = submit.bypass_cache;
    if (submit.deadline_ms > 0) {
      submit_options.deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(submit.deadline_ms);
    }
    submit_options.client_id = conn->client_id;
    submit_options.trace_id = submit.trace_id;
    service::JobHandle handle;
    try {
      handle = service.submit(solver, submit.model, options, submit_options);
    } catch (const service::AdmissionError& e) {
      // Only genuinely transient refusals are kErrDraining (retryable);
      // quota violations get their own permanent code so a client stops
      // resubmitting a job that cannot be admitted until its OWN earlier
      // work finishes.
      queue_refusal(conn, submit.tag,
                    e.retryable() ? kErrDraining : kErrQuotaExceeded,
                    e.what());
      return;
    } catch (const std::exception& e) {
      // Anything else the service refused is wrong with THIS request (bad
      // options, invalid model, ...): permanently invalid, never "try the
      // same bytes again later".  Mapping these to kErrDraining used to
      // make clients resubmit unacceptable jobs forever.
      queue_error(conn, submit.tag, kErrBadRequest, e.what());
      return;
    }
    PendingJob job;
    job.handle = handle;
    job.stream_status = submit.stream_status;
    job.trace_id = submit.trace_id;
    conn->jobs.emplace(submit.tag, std::move(job));
    ++conn->submitted;
    {
      MutexLock lock(m);
      ++stats.submits;
    }
    if (submit.stream_status && !handle.finished()) {
      JobStatusFrame status;
      status.tag = submit.tag;
      status.status = handle.status();
      queue_frame(conn, io::kRecordNetJobStatus, encode_job_status(status));
      conn->jobs[submit.tag].last_reported = status.status;
    }
    // The hook fires immediately (on this thread) for cache hits — the
    // completion lands in the queue and is flushed this same reactor pass.
    const auto sink_ref = sink;
    const auto conn_id = conn->id;
    const auto tag = submit.tag;
    handle.notify([sink_ref, conn_id, tag] {
      sink_ref->deliver(conn_id, tag, /*tune=*/false);
    });
  }

  void handle_submit_tune(Connection* conn, const Frame& f) EXCLUDES(m) {
    SubmitTuneFrame submit;
    try {
      obs::ScopedSpan span("frame_decode", "net");
      submit = decode_submit_tune(f.payload);
    } catch (const std::exception& e) {
      queue_error(conn, 0, kErrBadFrame,
                  std::string("undecodable SubmitTune: ") + e.what());
      return;
    }
    if (is_draining()) {
      queue_refusal(conn, submit.tag, kErrDraining,
                    "server is draining; submissions refused");
      return;
    }
    if (config.tune == nullptr) {
      // Capability refusal, not a protocol error: the frame was fine, this
      // daemon just runs without a tuner (qrossd without --tuner).
      queue_refusal(conn, submit.tag, kErrTuningUnavailable,
                    "no tuner loaded on this server");
      return;
    }
    if (conn->jobs.contains(submit.tag) || conn->tunes.contains(submit.tag)) {
      queue_error(conn, submit.tag, kErrBadRequest,
                  "tag already has an in-flight request");
      return;
    }
    const auto solver = config.registry(submit.solver);
    if (solver == nullptr) {
      queue_error(conn, submit.tag, kErrUnknownSolver,
                  "unknown solver: " + submit.solver);
      return;
    }
    if (submit.strategy > kTuneOfs) {
      queue_error(conn, submit.tag, kErrBadRequest,
                  "unknown tune strategy code " +
                      std::to_string(submit.strategy));
      return;
    }
    service::TuneHandle handle;
    try {
      tsp::TspInstance instance = unpack_tsp_instance(
          submit.instance, submit.instance_name.empty()
                               ? "remote-tune-" + std::to_string(submit.tag)
                               : submit.instance_name);
      core::TuneOptions options;
      options.trials = submit.trials;
      options.a_min = submit.a_min;
      options.a_max = submit.a_max;
      options.seed = submit.seed;
      options.mode = static_cast<core::TuneStrategyKind>(submit.strategy);
      options.pf_target = submit.pf_target;
      service::TuneSubmitOptions tune_submit;
      tune_submit.client_id = conn->client_id;
      tune_submit.trace_id = submit.trace_id;
      handle = config.tune->submit(std::move(instance), solver,
                                   std::move(options), std::move(tune_submit));
    } catch (const service::AdmissionError& e) {
      // shutting_down mirrors job admission (kErrDraining); the session
      // quota is transient capacity pressure — kErrServerFull, the same
      // "back off and retry" signal as a full accept queue.
      const std::uint32_t code =
          e.kind() == service::AdmissionErrorKind::shutting_down
              ? kErrDraining
              : (e.retryable() ? kErrServerFull : kErrQuotaExceeded);
      queue_refusal(conn, submit.tag, code, e.what());
      return;
    } catch (const std::exception& e) {
      // Instance/validation failures are wrong with THIS request.
      queue_error(conn, submit.tag, kErrBadRequest, e.what());
      return;
    }
    PendingTune pending;
    pending.handle = handle;
    pending.trace_id = submit.trace_id;
    conn->tunes.emplace(submit.tag, std::move(pending));
    ++conn->submitted;
    {
      MutexLock lock(m);
      ++stats.tune_submits;
    }
    // Persistent hook: one wakeup per completed trial, one more at the
    // terminal transition (and immediately if anything already happened).
    const auto sink_ref = sink;
    const auto conn_id = conn->id;
    const auto tag = submit.tag;
    handle.notify([sink_ref, conn_id, tag] {
      sink_ref->deliver(conn_id, tag, /*tune=*/true);
    });
  }

  void handle_frame(Connection* conn, const Frame& f) EXCLUDES(m) {
    ctr_frames_received->inc();
    {
      MutexLock lock(m);
      ++stats.frames_received;
    }
    if (!conn->handshaken) {
      if (f.type != io::kRecordNetHello) {
        queue_error(conn, 0, kErrHandshakeRequired,
                    "first frame must be Hello");
        conn->closing = true;
        return;
      }
      HelloFrame hello;
      try {
        hello = decode_hello(f.payload);
      } catch (const io::DecodeError& e) {
        queue_error(conn, 0, kErrBadFrame,
                    std::string("undecodable Hello: ") + e.what());
        conn->closing = true;
        return;
      }
      if (hello.protocol_version > kProtocolVersion) {
        // A FUTURE client: refuse rather than guess at its semantics.  The
        // error carries our version so the client can retry lower.
        queue_error(conn, 0, kErrFutureVersion,
                    "protocol version " +
                        std::to_string(hello.protocol_version) +
                        " is newer than this server's " +
                        std::to_string(kProtocolVersion));
        conn->closing = true;
        return;
      }
      if (hello.protocol_version == 0) {
        queue_error(conn, 0, kErrBadRequest, "protocol version 0 is invalid");
        conn->closing = true;
        return;
      }
      if (hello.client_id.size() > 128) {
        // The id becomes a scheduler/metrics map key held for the daemon's
        // lifetime; an unbounded one is a memory lever, not a name.
        queue_error(conn, 0, kErrBadRequest,
                    "client_id longer than 128 bytes");
        conn->closing = true;
        return;
      }
      conn->handshaken = true;
      conn->client_id = hello.client_id.empty()
                            ? "conn-" + std::to_string(conn->id)
                            : hello.client_id;
      obs::log_event(obs::LogLevel::debug, "conn_hello",
                     {{"conn", std::to_string(conn->id)},
                      {"client_id", conn->client_id},
                      {"protocol", std::to_string(hello.protocol_version)}});
      HelloAckFrame ack;
      ack.protocol_version = kProtocolVersion;
      ack.max_frame_bytes = config.max_frame_bytes;
      queue_frame(conn, io::kRecordNetHelloAck, encode_hello_ack(ack));
      return;
    }
    switch (f.type) {
      case io::kRecordNetSubmitJob:
        handle_submit(conn, f);
        return;
      case io::kRecordNetSubmitTune:
        handle_submit_tune(conn, f);
        return;
      case io::kRecordNetCancelTune: {
        CancelTuneFrame cancel;
        try {
          cancel = decode_cancel_tune(f.payload);
        } catch (const io::DecodeError&) {
          queue_error(conn, 0, kErrBadFrame, "undecodable CancelTune");
          return;
        }
        const auto it = conn->tunes.find(cancel.tag);
        if (it == conn->tunes.end()) {
          queue_error(conn, cancel.tag, kErrUnknownTag,
                      "no in-flight tune session with this tag");
          return;
        }
        // The TuneResult (status = cancelled) arrives through the normal
        // notify path once the session thread reaches its stop boundary.
        it->second.handle.cancel();
        ++conn->cancels;
        MutexLock lock(m);
        ++stats.tune_cancels;
        return;
      }
      case io::kRecordNetCancelJob: {
        CancelJobFrame cancel;
        try {
          cancel = decode_cancel(f.payload);
        } catch (const io::DecodeError&) {
          queue_error(conn, 0, kErrBadFrame, "undecodable CancelJob");
          return;
        }
        const auto it = conn->jobs.find(cancel.tag);
        if (it == conn->jobs.end()) {
          queue_error(conn, cancel.tag, kErrUnknownTag,
                      "no in-flight job with this tag");
          return;
        }
        it->second.handle.cancel();
        ++conn->cancels;
        MutexLock lock(m);
        ++stats.cancels;
        return;
      }
      case io::kRecordNetGetMetrics: {
        MetricsFrame metrics;
        metrics.service = service.metrics();
        {
          MutexLock lock(m);
          metrics.connections_accepted = stats.connections_accepted;
          metrics.connections_active = stats.connections_active;
          metrics.protocol_errors = stats.protocol_errors;
          metrics.connections_rejected_full = stats.connections_rejected_full;
        }
        metrics.connection_submitted = conn->submitted;
        metrics.connection_results = conn->results;
        metrics.connection_cancelled = conn->cancels;
        metrics.client_id = conn->client_id;
        // The rows ride in MetricsFrame::clients on the wire; the copy
        // inside `service` is never encoded, so move it out.
        metrics.clients = std::move(metrics.service.clients);
        queue_frame(conn, io::kRecordNetMetrics, encode_metrics(metrics));
        return;
      }
      case io::kRecordNetGetTrace: {
        // The dump is a snapshot of the process-global recorder; an empty
        // buffer (tracing never enabled) is a valid empty trace, not an
        // error — the caller sees zero events and the counters.
        const std::string json =
            obs::chrome_trace_json(obs::TraceRecorder::instance());
        queue_frame(conn, io::kRecordNetTraceDump, encode_text(json));
        return;
      }
      case io::kRecordNetGetProm: {
        queue_frame(conn, io::kRecordNetPromText,
                    encode_text(obs::registry().render_prometheus()));
        return;
      }
      case io::kRecordNetHello:
        queue_error(conn, 0, kErrBadRequest, "duplicate Hello");
        return;
      default:
        // Unknown-but-well-framed types mirror the snapshot scanner's
        // tolerance: reject the frame, keep the connection.
        queue_error(conn, 0, kErrUnknownType,
                    "unknown frame type " + std::to_string(f.type));
        return;
    }
  }

  void send_result(Connection* conn, std::uint64_t tag) EXCLUDES(m) {
    const auto it = conn->jobs.find(tag);
    if (it == conn->jobs.end()) return;  // tag already retired
    const service::JobHandle handle = it->second.handle;
    if (!handle.finished()) return;  // defensive; hooks fire on terminal
    const service::JobResult r = handle.result();
    ResultFrame result;
    result.tag = tag;
    result.status = r.status;
    result.cache_hit = r.cache_hit;
    result.coalesced = r.coalesced;
    result.wait_ms = r.wait_ms;
    result.run_ms = r.run_ms;
    result.error = r.error;
    result.batch = r.batch;
    const std::uint64_t trace_id = it->second.trace_id;
    conn->jobs.erase(it);
    ++conn->results;
    {
      // Encode + enqueue of the terminal result — the final lifecycle span
      // (submit → queue → dispatch → kernel → journal → result).
      obs::ScopedSpan span("result_flush", "net", handle.id(), trace_id);
      queue_frame(conn, io::kRecordNetResult, encode_result(result));
    }
    MutexLock lock(m);
    ++stats.results_sent;
  }

  /// Streams unreported trial events as TuneStatus frames, then — once the
  /// session is terminal — the TuneResult frame.  Idempotent per wakeup:
  /// the persistent hook enqueues one completion per trial, and `reported`
  /// makes each event go out exactly once.
  void send_tune_progress(Connection* conn, std::uint64_t tag) EXCLUDES(m) {
    const auto it = conn->tunes.find(tag);
    if (it == conn->tunes.end()) return;  // tag already retired
    PendingTune& pending = it->second;
    const auto events = pending.handle.events_since(pending.reported);
    for (const auto& event : events) {
      TuneStatusFrame status;
      status.tag = tag;
      status.trial = static_cast<std::uint32_t>(event.index);
      status.total = static_cast<std::uint32_t>(event.total);
      status.relaxation_parameter = event.relaxation_parameter;
      status.pf = event.pf;
      status.best_length = event.best_length;
      status.energy_avg = event.energy_avg;
      status.energy_std = event.energy_std;
      status.feasible = event.feasible;
      queue_frame(conn, io::kRecordNetTuneStatus, encode_tune_status(status));
    }
    pending.reported += events.size();
    if (!pending.handle.finished()) return;
    // Every event precedes the terminal transition on the session thread,
    // so a finished handle has already streamed its full trial history.
    const service::TuneHandle handle = pending.handle;
    const std::uint64_t trace_id = pending.trace_id;
    const service::TuneSessionResult r = handle.result();
    TuneResultFrame result;
    result.tag = tag;
    switch (r.status) {
      case service::TuneSessionStatus::done:
        result.status = kTuneDone;
        break;
      case service::TuneSessionStatus::cancelled:
        result.status = kTuneCancelled;
        break;
      default:
        result.status = kTuneFailed;
        break;
    }
    result.error = r.error;
    result.best_length = r.outcome.best_length;
    result.best_parameter = r.outcome.best_parameter;
    result.best_tour.reserve(r.outcome.best_tour.size());
    for (const auto city : r.outcome.best_tour) {
      result.best_tour.push_back(static_cast<std::uint32_t>(city));
    }
    result.trials.reserve(r.outcome.trials.size());
    for (const auto& trial : r.outcome.trials) {
      result.trials.push_back({trial.relaxation_parameter, trial.pf,
                               trial.best_length_so_far});
    }
    result.solver_invocations = r.solver_invocations;
    result.wall_ms = r.wall_ms;
    conn->tunes.erase(it);
    ++conn->results;
    {
      obs::ScopedSpan span("tune_result_flush", "net", handle.id(), trace_id);
      queue_frame(conn, io::kRecordNetTuneResult, encode_tune_result(result));
    }
    MutexLock lock(m);
    ++stats.tune_results_sent;
  }

  // --- connection lifecycle ---------------------------------------------

  void close_connection(std::uint64_t id) EXCLUDES(m) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    Connection* conn = it->second.get();
    std::uint64_t cancelled = 0;
    for (auto& [tag, job] : conn->jobs) {
      if (!job.handle.finished()) {
        job.handle.cancel();
        ++cancelled;
      }
    }
    std::uint64_t cancelled_tunes = 0;
    for (auto& [tag, pending] : conn->tunes) {
      if (!pending.handle.finished()) {
        pending.handle.cancel();
        ++cancelled_tunes;
      }
    }
    obs::log_event(obs::LogLevel::info, "conn_close",
                   {{"conn", std::to_string(id)},
                    {"client_id", conn->client_id},
                    {"cancelled_jobs", std::to_string(cancelled)},
                    {"cancelled_tunes", std::to_string(cancelled_tunes)}});
    conns.erase(it);
    MutexLock lock(m);
    stats.disconnect_cancelled_jobs += cancelled;
    stats.disconnect_cancelled_tunes += cancelled_tunes;
    stats.connections_active = conns.size();
  }

  void accept_pending(const Socket& listener) EXCLUDES(m) {
    while (true) {
      const int fd = ::accept(listener.fd(), nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or transient error; poll again later
      }
      if (conns.size() >= config.max_connections) {
        // Tell the peer WHY before closing: a bare close looks like a
        // network failure and used to send Client's reconnect-with-backoff
        // hammering a full server forever.  kErrServerFull is retryable —
        // back off until some connection leaves.  Best-effort blocking
        // send: the frame is ~100 bytes into a fresh socket buffer, so it
        // cannot stall the reactor.
        ErrorFrame error;
        error.code = kErrServerFull;
        error.message = "server at max_connections (" +
                        std::to_string(config.max_connections) +
                        "); retry after backoff";
        const auto bytes = frame(io::kRecordNetError, encode_error(error));
        std::size_t sent = 0;
        while (sent < bytes.size()) {
          const ssize_t n = ::send(fd, bytes.data() + sent,
                                   bytes.size() - sent, MSG_NOSIGNAL);
          if (n < 0 && errno == EINTR) continue;
          if (n <= 0) break;
          sent += static_cast<std::size_t>(n);
        }
        ::close(fd);
        MutexLock lock(m);
        ++stats.connections_rejected_full;
        continue;
      }
      set_nonblocking(fd);
      const auto id = next_conn_id++;
      conns.emplace(id, std::make_unique<Connection>(
                            id, Socket(fd)));
      conns[id]->in = FrameBuffer(config.max_frame_bytes);
      obs::log_event(obs::LogLevel::info, "conn_open",
                     {{"conn", std::to_string(id)}});
      MutexLock lock(m);
      ++stats.connections_accepted;
      stats.connections_active = conns.size();
    }
  }

  /// Reads everything available; returns false when the connection should
  /// be torn down after its out buffer flushes.
  bool read_ready(Connection* conn) EXCLUDES(m) {
    std::uint8_t buf[65536];
    bool saw_eof = false;
    while (true) {
      const ssize_t n = ::recv(conn->sock.fd(), buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        return false;  // hard error: peer is gone
      }
      if (n == 0) {  // orderly EOF; handled after the frames are drained
        saw_eof = true;
        break;
      }
      conn->in.append(buf, static_cast<std::size_t>(n));
    }
    Frame f;
    while (true) {
      const auto status = conn->in.next(&f);
      if (status == FrameBuffer::Status::need_more) break;
      if (status == FrameBuffer::Status::oversized) {
        queue_error(conn, 0, kErrOversizedFrame,
                    "frame exceeds the " +
                        std::to_string(config.max_frame_bytes) +
                        "-byte limit");
        conn->closing = true;
        break;
      }
      if (status == FrameBuffer::Status::bad_frame) {
        queue_error(conn, 0, kErrBadFrame,
                    "frame checksum mismatch; closing the stream");
        conn->closing = true;
        break;
      }
      handle_frame(conn, f);
      if (conn->closing) break;
    }
    if (saw_eof) {
      // Only bytes the parse loop could not consume count as truncation —
      // a complete final frame followed by close is the legal
      // fire-and-forget pattern, not a protocol error.
      if (!conn->closing && conn->in.mid_frame()) {
        // The peer half-closed inside a frame; tell it (its read side may
        // still be open) before closing.
        queue_error(conn, 0, kErrTruncatedFrame,
                    "connection ended inside a frame");
      }
      conn->closing = true;
    }
    return true;
  }

  /// queued→running transitions for stream_status jobs (poll-driven; the
  /// terminal transition arrives through the completion hook instead).
  void stream_status_tick(Connection* conn) EXCLUDES(m) {
    for (auto& [tag, job] : conn->jobs) {
      if (!job.stream_status) continue;
      const auto status = job.handle.status();
      if (status == job.last_reported || service::is_terminal(status)) {
        continue;
      }
      JobStatusFrame frame_data;
      frame_data.tag = tag;
      frame_data.status = status;
      queue_frame(conn, io::kRecordNetJobStatus,
                  encode_job_status(frame_data));
      job.last_reported = status;
    }
  }

  bool is_draining() const EXCLUDES(m) {
    MutexLock lock(m);
    return draining;
  }

  /// Blocks until the reactor reports the drain finished (or the server
  /// stopped underneath us); true iff drained within `deadline`.
  bool wait_drained(std::chrono::milliseconds deadline) EXCLUDES(m) {
    const auto until = std::chrono::steady_clock::now() + deadline;
    MutexLock lock(m);
    while (!drain_done && !stopped) {
      if (cv.wait_until(lock.native(), until) == std::cv_status::timeout) {
        return drain_done || stopped;
      }
    }
    return true;
  }

  // --- the reactor ------------------------------------------------------

  void reactor_loop() EXCLUDES(m) {
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> fd_conn;  // conn id per pollfd (0 = not a conn)
    while (true) {
      bool drain_now = false;
      {
        MutexLock lock(m);
        if (stop_requested) break;
        drain_now = draining;
      }
      fds.clear();
      fd_conn.clear();
      fds.push_back({wake_read, POLLIN, 0});
      fd_conn.push_back(0);
      if (!drain_now) {
        for (const auto& listener : listeners) {
          fds.push_back({listener.fd(), POLLIN, 0});
          fd_conn.push_back(0);
        }
      }
      bool any_stream_jobs = false;
      for (const auto& [id, conn] : conns) {
        short events = POLLIN;
        if (!out_empty(conn.get())) events |= POLLOUT;
        fds.push_back({conn->sock.fd(), events, 0});
        fd_conn.push_back(id);
        for (const auto& [tag, job] : conn->jobs) {
          if (job.stream_status) any_stream_jobs = true;
        }
      }
      // Completions arrive via the wake pipe; the only reason to tick on a
      // timer is sampling queued→running transitions for streamed jobs,
      // and re-checking the drain condition.
      const int timeout_ms = any_stream_jobs ? 20 : (drain_now ? 50 : -1);
      int rc;
      do {
        rc = ::poll(fds.data(), fds.size(), timeout_ms);
      } while (rc < 0 && errno == EINTR);

      // Drain the wake pipe.
      if (fds[0].revents & POLLIN) {
        char sink_buf[256];
        while (::read(wake_read, sink_buf, sizeof(sink_buf)) > 0) {
        }
      }

      // Deliver completed jobs' Result frames and tune sessions' progress.
      std::vector<Completion> done;
      {
        MutexLock lock(m);
        done.swap(completions);
      }
      for (const auto& c : done) {
        const auto it = conns.find(c.conn_id);
        if (it == conns.end()) continue;
        if (c.tune) {
          send_tune_progress(it->second.get(), c.tag);
        } else {
          send_result(it->second.get(), c.tag);
        }
      }

      // Accept, read, write.
      std::size_t fd_index = 1;
      if (!drain_now) {
        for (const auto& listener : listeners) {
          if (fds[fd_index].revents & POLLIN) accept_pending(listener);
          ++fd_index;
        }
      }
      std::vector<std::uint64_t> to_close;
      for (; fd_index < fds.size(); ++fd_index) {
        const auto conn_id = fd_conn[fd_index];
        const auto it = conns.find(conn_id);
        if (it == conns.end()) continue;
        Connection* conn = it->second.get();
        const short revents = fds[fd_index].revents;
        if (revents & (POLLERR | POLLNVAL)) {
          to_close.push_back(conn_id);
          continue;
        }
        if (revents & (POLLIN | POLLHUP)) {
          if (!read_ready(conn)) {
            to_close.push_back(conn_id);
            continue;
          }
        }
        if (!out_empty(conn)) flush_out(conn);
        if (conn->closing && out_empty(conn)) to_close.push_back(conn_id);
      }
      for (const auto id : to_close) close_connection(id);

      if (any_stream_jobs) {
        for (const auto& [id, conn] : conns) stream_status_tick(conn.get());
      }

      if (drain_now) {
        bool complete = true;
        for (const auto& [id, conn] : conns) {
          if (!conn->jobs.empty() || !conn->tunes.empty() ||
              !out_empty(conn.get())) {
            complete = false;
            break;
          }
        }
        if (complete) {
          MutexLock lock(m);
          if (!drain_done) {
            drain_done = true;
            cv.notify_all();
          }
        }
      }
    }
  }
};

Server::Server(service::SolveService& service, ServerConfig config)
    : impl_(std::make_unique<Impl>(service, std::move(config))) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  if (impl_->started) {
    if (error != nullptr) *error = "server already started";
    return false;
  }
  if (impl_->config.listen.empty()) {
    if (error != nullptr) *error = "no listen endpoints configured";
    return false;
  }
  for (const auto& endpoint : impl_->config.listen) {
    auto sock = listen_on(endpoint, error);
    if (!sock.valid()) {
      impl_->listeners.clear();
      impl_->bound.clear();
      return false;
    }
    set_nonblocking(sock.fd());
    const auto actual = local_endpoint(sock.fd());
    impl_->bound.push_back(actual.value_or(endpoint));
    impl_->listeners.push_back(std::move(sock));
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    if (error != nullptr) *error = "cannot create wake pipe";
    impl_->listeners.clear();
    impl_->bound.clear();
    return false;
  }
  impl_->wake_read = pipe_fds[0];
  impl_->wake_write = pipe_fds[1];
  set_nonblocking(impl_->wake_read);
  set_nonblocking(impl_->wake_write);
  impl_->started = true;
  impl_->reactor = std::thread([impl = impl_.get()] { impl->reactor_loop(); });
  return true;
}

std::vector<Endpoint> Server::endpoints() const { return impl_->bound; }

bool Server::drain(std::chrono::milliseconds deadline) {
  if (!impl_->started) return true;
  {
    MutexLock lock(impl_->m);
    impl_->draining = true;
  }
  impl_->wake();
  return impl_->wait_drained(deadline);
}

void Server::stop() {
  if (!impl_->started) return;
  {
    MutexLock lock(impl_->m);
    if (impl_->stopped) return;
    impl_->stop_requested = true;
  }
  impl_->wake();
  if (impl_->reactor.joinable()) impl_->reactor.join();
  // From here no other thread touches the connection table.  Null the hook
  // indirection FIRST: a kernel finishing late must find no Impl, and the
  // sink mutex makes any hook mid-delivery finish before we tear down.
  impl_->sink->detach();
  std::vector<std::uint64_t> ids;
  ids.reserve(impl_->conns.size());
  for (const auto& [id, conn] : impl_->conns) ids.push_back(id);
  for (const auto id : ids) impl_->close_connection(id);
  impl_->listeners.clear();
  if (impl_->wake_read >= 0) ::close(impl_->wake_read);
  if (impl_->wake_write >= 0) ::close(impl_->wake_write);
  impl_->wake_read = impl_->wake_write = -1;
  // Remove Unix socket files so the next daemon start is clean even after
  // an unlucky crash-free-but-unlinked exit.
  for (const auto& endpoint : impl_->bound) {
    if (endpoint.kind == Endpoint::Kind::unix_domain) {
      ::unlink(endpoint.path.c_str());
    }
  }
  {
    MutexLock lock(impl_->m);
    impl_->stopped = true;
  }
  impl_->cv.notify_all();
}

ServerStats Server::stats() const {
  MutexLock lock(impl_->m);
  return impl_->stats;
}

}  // namespace qross::net
