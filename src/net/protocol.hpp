#pragma once

// Wire protocol of the QROSS network front end.
//
// A frame IS an io/snapshot record — u32 payload size | u32 record type |
// u64 checksum64(payload) | payload, all little-endian — so the persistence
// layer's framing, checksum, and codec code is the wire encoding
// (io::RecordType values 16+ are the frame types).  On top of that framing:
//
//   * every connection opens with a version-negotiated handshake: the
//     client sends Hello{protocol_version}, the server answers
//     HelloAck{accepted version, frame size limit} or an Error frame for a
//     FUTURE version (a newer client must not guess at an older server's
//     semantics; it sees the server's version in the error and may retry
//     lower).  Within a version, unknown frame types get an Error reply
//     but do not kill the connection — mirroring the snapshot scanner's
//     skip-unknown-records rule;
//   * requests carry a client-chosen u64 tag echoed by every reply, so one
//     connection multiplexes many in-flight jobs;
//   * malformed framing (bad checksum, oversized or truncated frame) is a
//     STREAM error: the server sends a final Error frame and closes — once
//     framing is lost, resynchronisation on a socket is impossible.
//
// Versioning rules (mirrors io/snapshot): kProtocolVersion only ever
// increments; frame types and payload fields are append-only within a
// version; a server keeps accepting every older version it ever shipped.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "io/snapshot.hpp"
#include "problems/tsp/instance.hpp"
#include "qubo/batch.hpp"
#include "qubo/model.hpp"
#include "service/job.hpp"
#include "service/metrics.hpp"

namespace qross::net {

inline constexpr std::uint32_t kProtocolVersion = 1;
/// Frames larger than this are rejected with kErrOversizedFrame before the
/// payload is buffered — a corrupt length field must not allocate 256 MiB.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 26;  // 64 MiB

/// Error codes carried by kRecordNetError.  Part of the protocol: never
/// renumber, only add.
enum ErrorCode : std::uint32_t {
  kErrUnknown = 0,
  kErrFutureVersion = 1,   ///< Hello offered a version newer than ours
  kErrBadFrame = 2,        ///< checksum mismatch or undecodable payload
  kErrOversizedFrame = 3,  ///< frame length beyond kMaxFrameBytes
  kErrTruncatedFrame = 4,  ///< connection ended inside a frame
  kErrBadRequest = 5,      ///< well-formed frame, invalid content
  kErrUnknownSolver = 6,   ///< SubmitJob named a solver not in the registry
  kErrUnknownTag = 7,      ///< CancelJob for a tag with no in-flight job
  kErrDraining = 8,        ///< server is shutting down; no new submissions
  kErrHandshakeRequired = 9,  ///< request frame before Hello
  kErrUnknownType = 10,    ///< unrecognised frame type (future extension)
  kErrQuotaExceeded = 11,  ///< client over an admission quota (permanent
                           ///< until its own earlier jobs finish)
  kErrServerFull = 12,     ///< connection refused: max_connections reached,
                           ///< or the tune service is at max concurrent
                           ///< sessions (retryable once capacity frees up)
  kErrTuningUnavailable = 13,  ///< SubmitTune on a daemon with no tuner
                               ///< loaded (permanent: start qrossd --tuner)
};

/// Retryable errors describe transient SERVER state: backing off and
/// resubmitting the identical request can succeed.  Everything else is
/// wrong with the request (or this client's own standing) and retrying
/// verbatim only hammers the server — see Client's resubmit loop.
inline bool is_retryable_error(std::uint32_t code) {
  return code == kErrDraining || code == kErrServerFull;
}

struct HelloFrame {
  std::uint32_t protocol_version = kProtocolVersion;
  /// Self-reported identity for admission quotas / fair-share scheduling.
  /// Appended within protocol v1 (fields are append-only): servers accept a
  /// Hello without it, and assign a per-connection id ("conn-N") when it is
  /// absent or empty.  Multiple connections naming the same id share one
  /// quota/weight bucket.  NOT authentication — see ROADMAP.
  std::string client_id;
};

struct HelloAckFrame {
  std::uint32_t protocol_version = kProtocolVersion;
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
};

struct ErrorFrame {
  std::uint64_t tag = 0;  ///< offending request's tag; 0 for stream errors
  std::uint32_t code = kErrUnknown;
  /// The server's own protocol version rides along so a kErrFutureVersion
  /// client knows what to downgrade to.
  std::uint32_t protocol_version = kProtocolVersion;
  std::string message;
};

struct SubmitJobFrame {
  std::uint64_t tag = 0;
  std::string solver;  ///< registry name: sa | da | tabu | pt | qbsolv
  std::uint32_t num_replicas = 32;
  std::uint32_t num_sweeps = 100;
  std::uint64_t seed = 1;
  std::int32_t priority = 0;
  /// Relative deadline in ms (steady clocks do not cross machines); 0 =
  /// none.  The server anchors it at frame receipt.
  std::uint32_t deadline_ms = 0;
  bool bypass_cache = false;
  /// Stream JobStatus frames on queued→running transitions (the terminal
  /// transition is always reported, as the Result frame).
  bool stream_status = false;
  qubo::QuboModel model;
  /// Client-chosen trace correlation id (0 = none).  Appended within
  /// protocol v1: old clients simply never send one, old servers ignore the
  /// tail.  The server stamps it on every obs::TraceRecorder event of this
  /// job, so a GetTrace dump stitches into the caller's own trace.
  std::uint64_t trace_id = 0;
};

struct JobStatusFrame {
  std::uint64_t tag = 0;
  service::JobStatus status = service::JobStatus::queued;
};

struct CancelJobFrame {
  std::uint64_t tag = 0;
};

struct ResultFrame {
  std::uint64_t tag = 0;
  service::JobStatus status = service::JobStatus::done;
  bool cache_hit = false;
  bool coalesced = false;
  double wait_ms = 0.0;
  double run_ms = 0.0;
  std::string error;  ///< non-empty when status == failed
  /// Null when the job never produced a batch (expired before start,
  /// cancelled while queued, failed).
  std::shared_ptr<const qubo::SolveBatch> batch;
};

// --- tuning-as-a-service frames ---------------------------------------------
//
// A tune session is the paper's product: `trials` budgeted solver calls
// steered by the surrogate (strategy MFS | PBS | OFS, or the composed
// benchmark mixture).  The instance rides as its symmetric distance matrix
// packed into the existing QuboModel codec (upper-triangular, IEEE-exact),
// so no new payload format is needed and the decoded instance is
// bit-identical — a remote session with the same seed reproduces the exact
// in-process probed-A sequence and outcome.

/// TuneOptions::mode on the wire.
enum TuneStrategyCode : std::uint8_t {
  kTuneComposed = 0,
  kTuneMfs = 1,
  kTunePbs = 2,
  kTuneOfs = 3,
};

struct SubmitTuneFrame {
  std::uint64_t tag = 0;
  std::string solver;  ///< registry name: sa | da | tabu | pt | qbsolv
  std::uint8_t strategy = kTuneComposed;
  double pf_target = 0.8;  ///< used when strategy == kTunePbs
  std::uint32_t trials = 10;
  double a_min = 1.0;
  double a_max = 100.0;
  std::uint64_t seed = 1;
  /// Symmetric TSP distance matrix: instance.coefficient(i, j) = d(i, j)
  /// for i < j; num_vars = city count; diagonal/offset unused.
  qubo::QuboModel instance;
  // Appended within protocol v1; decoders default them when absent.
  std::uint64_t trace_id = 0;
  std::string instance_name;  ///< corpus / trace label; may be empty
};

/// Streamed by the server after every completed trial.
struct TuneStatusFrame {
  std::uint64_t tag = 0;
  std::uint32_t trial = 0;  ///< 0-based index of the completed trial
  std::uint32_t total = 0;  ///< the session's trial budget
  double relaxation_parameter = 0.0;  ///< probed A
  double pf = 0.0;
  double best_length = 0.0;  ///< best feasible length so far; +inf if none
  // Appended within protocol v1; decoders default them when absent.
  double energy_avg = 0.0;
  double energy_std = 0.0;
  bool feasible = false;
};

struct CancelTuneFrame {
  std::uint64_t tag = 0;
};

/// TuneSessionResult::status on the wire.
enum TuneSessionCode : std::uint8_t {
  kTuneDone = 0,
  kTuneCancelled = 1,
  kTuneFailed = 2,
};

struct TuneResultFrame {
  std::uint64_t tag = 0;
  std::uint8_t status = kTuneDone;
  std::string error;  ///< non-empty when status == kTuneFailed
  double best_length = 0.0;     ///< +inf when no feasible solution
  double best_parameter = 0.0;  ///< A of the winning trial
  std::vector<std::uint32_t> best_tour;  ///< empty when infeasible
  struct Trial {
    double relaxation_parameter = 0.0;
    double pf = 0.0;
    double best_length_so_far = 0.0;
  };
  std::vector<Trial> trials;
  // Appended within protocol v1; decoders default them when absent.
  std::uint64_t solver_invocations = 0;  ///< actual kernel runs (0 = all
                                         ///< probes replayed from cache)
  double wall_ms = 0.0;
};

/// Service-wide counters plus the serving side of the connection's own
/// ledger (what THIS connection submitted / was sent).
struct MetricsFrame {
  service::ServiceMetrics service;
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t connection_submitted = 0;  ///< submits on this connection
  std::uint64_t connection_results = 0;    ///< results sent back on it
  std::uint64_t connection_cancelled = 0;  ///< cancels it requested
  // Appended within protocol v1; decoders default them when absent.
  std::uint64_t connections_rejected_full = 0;  ///< accepts refused: kErrServerFull
  std::string client_id;  ///< the id this connection is accounted under
  /// Per-client scheduler rows (service.clients on the wire).  The
  /// service-level vector rides here rather than inside `service` so the
  /// pre-quota payload layout stays a strict prefix.
  std::vector<service::ClientSchedulerMetrics> clients;
};

// --- payload codecs ---------------------------------------------------------
//
// Encoders produce the payload only; frame() wraps it in record framing.
// Decoders throw io::DecodeError on malformed payloads (callers convert
// that into kErrBadFrame).

std::vector<std::uint8_t> encode_hello(const HelloFrame& hello);
HelloFrame decode_hello(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_hello_ack(const HelloAckFrame& ack);
HelloAckFrame decode_hello_ack(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_error(const ErrorFrame& error);
ErrorFrame decode_error(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_submit(const SubmitJobFrame& submit);
SubmitJobFrame decode_submit(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_job_status(const JobStatusFrame& status);
JobStatusFrame decode_job_status(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_cancel(const CancelJobFrame& cancel);
CancelJobFrame decode_cancel(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_result(const ResultFrame& result);
ResultFrame decode_result(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_metrics(const MetricsFrame& metrics);
MetricsFrame decode_metrics(std::span<const std::uint8_t> payload);

/// The SubmitTuneFrame instance transport convention, in one place for both
/// ends: the symmetric distance matrix rides as upper-triangular QuboModel
/// coefficients (IEEE-exact), so pack → encode → decode → unpack reproduces
/// the matrix bit-identically and server-side feature extraction (which
/// needs only distances, never coordinates) matches the client's instance.
qubo::QuboModel pack_tsp_instance(const tsp::TspInstance& instance);
tsp::TspInstance unpack_tsp_instance(const qubo::QuboModel& model,
                                     std::string name);

std::vector<std::uint8_t> encode_submit_tune(const SubmitTuneFrame& submit);
SubmitTuneFrame decode_submit_tune(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_tune_status(const TuneStatusFrame& status);
TuneStatusFrame decode_tune_status(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_cancel_tune(const CancelTuneFrame& cancel);
CancelTuneFrame decode_cancel_tune(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_tune_result(const TuneResultFrame& result);
TuneResultFrame decode_tune_result(std::span<const std::uint8_t> payload);

// GetTrace / GetProm requests carry an empty payload (like GetMetrics).
// Their replies — TraceDump (Chrome trace-event JSON) and PromText
// (Prometheus exposition) — carry the text as the raw frame payload, NOT a
// length-prefixed string: the per-string decode cap (1 MiB) is far below a
// busy daemon's trace dump, while the frame length field already bounds the
// payload at kMaxFrameBytes.
std::vector<std::uint8_t> encode_text(const std::string& text);
std::string decode_text(std::span<const std::uint8_t> payload);

/// Wraps a payload in record framing, ready to send.
std::vector<std::uint8_t> frame(std::uint32_t type,
                                std::span<const std::uint8_t> payload);

// --- incremental frame splitter ---------------------------------------------

/// One parsed frame: the record type plus its verified payload.
struct Frame {
  std::uint32_t type = 0;
  std::vector<std::uint8_t> payload;
};

/// Reassembles frames from a byte stream.  Feed received bytes with
/// append(); drain complete frames with next().  Unlike the snapshot
/// scanner, a socket cannot skip-and-resync past a bad record (there is no
/// trailing data to re-anchor on), so the first framing violation latches a
/// terminal error state.
class FrameBuffer {
 public:
  enum class Status {
    need_more,   ///< no complete frame buffered yet
    frame,       ///< *out filled with the next verified frame
    bad_frame,   ///< checksum mismatch — stream integrity lost
    oversized,   ///< length field beyond the limit — stream unusable
  };

  explicit FrameBuffer(std::uint32_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void append(const std::uint8_t* data, std::size_t size);

  Status next(Frame* out);

  /// True when bytes of an incomplete frame are sitting in the buffer —
  /// an EOF now means the peer died mid-frame (kErrTruncatedFrame).
  bool mid_frame() const { return buffer_.size() > consumed_; }

 private:
  std::uint32_t max_frame_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  // compacted lazily
  bool broken_ = false;
};

}  // namespace qross::net
