#pragma once

// Blocking client for the QROSS network protocol.
//
// One connection multiplexes many in-flight jobs by tag: submit() assigns a
// tag and sends the frame, wait(tag) blocks until that tag's Result frame
// arrives (buffering results for other tags it reads along the way).
//
// Resilience:
//   * reconnect — a send/recv failure triggers up to reconnect_attempts
//     redials (with backoff); after the re-handshake every still-pending
//     request is RESUBMITTED.  Safe because submissions are idempotent on
//     the serving side: equal fingerprints coalesce or hit the result
//     cache, so a retried job never pays a second solver run;
//   * error triage — a RETRYABLE server refusal (kErrDraining,
//     kErrServerFull: transient server state) keeps the job pending; wait()
//     backs off and resubmits it up to reconnect_attempts times within the
//     request timeout.  A PERMANENT refusal (kErrQuotaExceeded,
//     kErrBadRequest, kErrUnknownSolver, ...) fails the job on the first
//     Error frame — resubmitting an unacceptable request verbatim can never
//     succeed and only hammers the server;
//   * request timeout — wait() gives up after request_timeout_ms and
//     reports the job as failed with a timeout error, leaving the
//     connection usable for other tags.
//
// Not thread-safe: one Client per thread (the protocol itself supports any
// number of concurrent Clients per server).
//
// API surface: the typed methods (submit_job, wait_result, submit_tune,
// tune_wait, fetch_*) all report failure through one RemoteOutcome /
// RemoteError shape, with retryability decided in exactly one place
// (is_retryable_error via RemoteError::retryable).  The original
// optional/bool signatures remain as thin wrappers over the typed core.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "qubo/model.hpp"

namespace qross::net {

struct ClientConfig {
  Endpoint server;
  /// Identity sent in the Hello, grouping this connection with others of
  /// the same name for the server's admission quotas / fair-share weights.
  /// Empty = the server assigns a per-connection id.
  std::string client_id;
  int connect_timeout_ms = 5000;
  int request_timeout_ms = 120000;
  /// Bounds both reconnect redials and retryable-refusal resubmits.
  int reconnect_attempts = 3;
  int reconnect_backoff_ms = 100;
};

/// One job as the client submits it (the wire form of a SubmitJob frame,
/// minus the tag, which the client assigns).
struct RemoteJob {
  std::string solver = "da";
  qubo::QuboModel model;
  std::uint32_t num_replicas = 32;
  std::uint32_t num_sweeps = 100;
  std::uint64_t seed = 1;
  std::int32_t priority = 0;
  std::uint32_t deadline_ms = 0;  ///< relative; 0 = none
  bool bypass_cache = false;
  bool stream_status = false;
  /// Trace correlation id stamped on the server's spans for this job
  /// (0 = none).  Fetch the stitched trace with trace_dump().
  std::uint64_t trace_id = 0;
};

/// One tune session as the client requests it (the wire form of a
/// SubmitTune frame, minus the tag).  Pack the instance with
/// pack_tsp_instance().
struct RemoteTune {
  std::string solver = "da";
  qubo::QuboModel instance;
  std::uint8_t strategy = kTuneComposed;
  double pf_target = 0.8;  ///< used when strategy == kTunePbs
  std::uint32_t trials = 10;
  double a_min = 1.0;
  double a_max = 100.0;
  std::uint64_t seed = 1;
  std::uint64_t trace_id = 0;
  std::string instance_name;
};

/// How a request failed, transport-wise.  Job/session-level failures (a
/// solver that threw, an infeasible outcome) are NOT errors here — they
/// arrive inside the Result/TuneResult frame, keeping one taxonomy per
/// layer.
enum class RemoteErrorKind : std::uint8_t {
  connection = 0,  ///< dial, handshake, or socket failure; redial may help
  timeout = 1,     ///< request_timeout_ms expired
  refused = 2,     ///< the server answered with an Error frame (see `code`)
  usage = 3,       ///< caller misuse (e.g. waiting on a tag never submitted)
};

const char* to_string(RemoteErrorKind kind);

struct RemoteError {
  RemoteErrorKind kind = RemoteErrorKind::connection;
  /// The server's ErrorCode when kind == refused; kErrUnknown otherwise.
  std::uint32_t code = kErrUnknown;
  std::string message;

  /// THE retry triage point.  Refusals delegate to is_retryable_error()
  /// (the protocol's one definition of transient server state); connection
  /// failures are retryable by redial; timeouts and misuse are not.
  bool retryable() const {
    switch (kind) {
      case RemoteErrorKind::refused: return is_retryable_error(code);
      case RemoteErrorKind::connection: return true;
      case RemoteErrorKind::timeout: return false;
      case RemoteErrorKind::usage: return false;
    }
    return false;
  }
};

/// Value-or-RemoteError result of every typed client call.
template <typename T>
class RemoteOutcome {
 public:
  RemoteOutcome(T value) : value_(std::move(value)) {}          // NOLINT
  RemoteOutcome(RemoteError error) : error_(std::move(error)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Throws std::bad_optional_access when !ok() — check first.
  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  /// Meaningful only when !ok().
  const RemoteError& error() const { return error_; }

 private:
  std::optional<T> value_;
  RemoteError error_;
};

class Client {
 public:
  explicit Client(ClientConfig config);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Dials and handshakes.  False (with *error filled) on failure — also
  /// when the server refuses our protocol version.
  bool connect(std::string* error);

  bool connected() const { return sock_.valid(); }

  /// Protocol version the server acknowledged (after connect()).
  std::uint32_t negotiated_version() const { return ack_.protocol_version; }

  // --- typed core -------------------------------------------------------

  /// Sends one job; the tag to wait on.
  RemoteOutcome<std::uint64_t> submit_job(const RemoteJob& job);

  /// Blocks until `tag` completes.  Transport failures (timeout, dead
  /// connection, permanent refusal) are the RemoteError side; a job the
  /// SERVER completed as failed is still a success here — its failure rides
  /// inside the frame.
  RemoteOutcome<ResultFrame> wait_result(std::uint64_t tag);

  /// Starts a tune session on the server; the tag to wait on.  Retryable
  /// refusals (draining, session quota → kErrServerFull) are handled like
  /// job refusals: tune_wait() backs off and resubmits.
  RemoteOutcome<std::uint64_t> submit_tune(const RemoteTune& tune);

  /// Blocks until the tune session's TuneResult frame arrives (same error
  /// contract as wait_result).  A cancelled or failed session is a SUCCESS
  /// carrying status kTuneCancelled / kTuneFailed.
  RemoteOutcome<TuneResultFrame> tune_wait(std::uint64_t tag);

  /// Per-trial TuneStatus frames streamed so far for `tag`, in order.
  std::vector<TuneStatusFrame> tune_status(std::uint64_t tag) const;

  /// Requests cancellation of an in-flight tune session; the terminal
  /// TuneResult (status = cancelled) still arrives via tune_wait().
  bool cancel_tune(std::uint64_t tag);

  /// Round-trips GetMetrics / GetTrace / GetProm.
  RemoteOutcome<MetricsFrame> fetch_metrics();
  RemoteOutcome<std::string> fetch_trace();
  RemoteOutcome<std::string> fetch_prometheus();

  // --- legacy wrappers (thin shims over the typed core) -----------------

  /// Sends one job; returns its tag, or nullopt when the connection is
  /// down and could not be re-established.
  std::optional<std::uint64_t> submit(const RemoteJob& job,
                                      std::string* error = nullptr);

  /// Blocks until `tag` completes.  On request timeout or a dead
  /// connection, returns a ResultFrame with status `failed` and the reason
  /// in `error` — the protocol carries real failures the same way, so
  /// callers have one error path.
  ResultFrame wait(std::uint64_t tag);

  /// Requests cancellation of an in-flight tag.
  bool cancel(std::uint64_t tag);

  /// Status updates streamed so far for `tag` (stream_status jobs only).
  std::vector<service::JobStatus> status_updates(std::uint64_t tag) const;

  /// Round-trips a metrics request.
  std::optional<MetricsFrame> metrics(std::string* error = nullptr);

  /// Round-trips a GetTrace request: the server's trace buffer as Chrome
  /// trace-event JSON.  Empty trace (`"traceEvents":[]`) when the daemon
  /// never enabled tracing; nullopt on connection/timeout failure — and on
  /// a pre-obs server, which answers kErrUnknownType.
  std::optional<std::string> trace_dump(std::string* error = nullptr);

  /// Round-trips a GetProm request: the server's metrics registry in
  /// Prometheus text exposition format.  Same failure contract as above.
  std::optional<std::string> prometheus_metrics(std::string* error = nullptr);

  /// Convenience: submit every job, then wait for each in order.
  std::vector<ResultFrame> run(const std::vector<RemoteJob>& jobs);

  /// Wire-level errors the server pushed that were not fatal to a request
  /// (e.g. kErrUnknownTag); drained by the caller.
  std::vector<ErrorFrame> take_errors();

  // --- open-loop pumping (src/load/ replayer interface) -----------------
  //
  // An open-loop caller owns its own arrival schedule: it must never block
  // on one tag (wait_result) or let the client resubmit refused jobs behind
  // its back — a shed job IS the measurement.  These three calls expose the
  // frame pump directly: poll() routes whatever arrives within a bounded
  // wait, take_ready_results() drains every buffered terminal frame, and
  // forget() drops client-side state for tags the caller classified itself
  // (e.g. a quota refusal counted as shed) so nothing is ever resubmitted.

  /// One bounded pump step: routes every frame that arrives within
  /// timeout_ms, waiting on no particular tag and never redialling or
  /// resubmitting.  True on progress OR a quiet timeout; false only when
  /// the connection is lost or the stream is malformed (*error filled).
  bool poll(int timeout_ms, std::string* error = nullptr);

  /// Drains every buffered terminal ResultFrame (any tag), in tag order,
  /// clearing the drained tags' pending/retry bookkeeping.
  std::vector<ResultFrame> take_ready_results();

  /// Drops all client-side state for `tag` (pending job, buffered result,
  /// status updates, retry bookkeeping).  For tags that will never be
  /// waited on.
  void forget(std::uint64_t tag);

 private:
  /// Decodes and routes every complete frame already buffered in in_.
  /// Returns the number handled, or -1 on a malformed stream.
  int drain_buffered_frames(std::string* error);
  bool send_frame(std::uint32_t type, std::span<const std::uint8_t> payload);
  /// Reads until `stop_type` (or a Result/TuneResult / retryable refusal
  /// for `stop_tag`) arrives, the timeout expires, or the connection
  /// breaks.  Buffers everything else.
  bool pump(std::uint32_t stop_type, std::uint64_t stop_tag, int timeout_ms,
            std::string* error);
  bool handshake(std::string* error);
  bool reconnect_and_resubmit(std::string* error);
  bool send_submit(std::uint64_t tag, const RemoteJob& job);
  bool send_submit_tune(std::uint64_t tag, const RemoteTune& tune);
  void handle_incoming(const Frame& f);
  /// Classifies a failed round-trip: an Error frame that arrived during the
  /// request (errors_ grew past `errors_before`) makes it a refusal carrying
  /// the server's code; otherwise the pump's message decides timeout vs
  /// connection.
  RemoteError request_error(std::size_t errors_before,
                            const std::string& message) const;
  /// One GetX → X round-trip (metrics / trace / prom share the shape);
  /// nullopt on success — handle_incoming routed the reply into its last_*
  /// slot — else the classified failure.
  std::optional<RemoteError> round_trip(std::uint32_t request_type,
                                        std::uint32_t reply_type);

  ClientConfig config_;
  Socket sock_;
  FrameBuffer in_;
  HelloAckFrame ack_;
  std::uint64_t next_tag_ = 1;

  std::map<std::uint64_t, RemoteJob> pending_;  // resubmitted on reconnect
  std::map<std::uint64_t, ResultFrame> results_;
  std::map<std::uint64_t, std::vector<service::JobStatus>> updates_;
  /// Tags refused with a RETRYABLE code: still pending; wait() backs off
  /// and resubmits.  The paired map counts resubmit attempts per tag.
  std::set<std::uint64_t> retry_wanted_;
  std::map<std::uint64_t, int> retry_attempts_;
  // Tune sessions mirror the job maps; terminal refusals land as typed
  // errors (tune_failures_) rather than synthesized frames.
  std::map<std::uint64_t, RemoteTune> tune_pending_;
  std::map<std::uint64_t, TuneResultFrame> tune_results_;
  std::map<std::uint64_t, RemoteError> tune_failures_;
  std::map<std::uint64_t, std::vector<TuneStatusFrame>> tune_updates_;
  std::set<std::uint64_t> tune_retry_wanted_;
  std::optional<MetricsFrame> last_metrics_;
  std::optional<std::string> last_trace_;
  std::optional<std::string> last_prom_;
  std::vector<ErrorFrame> errors_;
};

}  // namespace qross::net
