#pragma once

// Blocking client for the QROSS network protocol.
//
// One connection multiplexes many in-flight jobs by tag: submit() assigns a
// tag and sends the frame, wait(tag) blocks until that tag's Result frame
// arrives (buffering results for other tags it reads along the way).
//
// Resilience:
//   * reconnect — a send/recv failure triggers up to reconnect_attempts
//     redials (with backoff); after the re-handshake every still-pending
//     request is RESUBMITTED.  Safe because submissions are idempotent on
//     the serving side: equal fingerprints coalesce or hit the result
//     cache, so a retried job never pays a second solver run;
//   * error triage — a RETRYABLE server refusal (kErrDraining,
//     kErrServerFull: transient server state) keeps the job pending; wait()
//     backs off and resubmits it up to reconnect_attempts times within the
//     request timeout.  A PERMANENT refusal (kErrQuotaExceeded,
//     kErrBadRequest, kErrUnknownSolver, ...) fails the job on the first
//     Error frame — resubmitting an unacceptable request verbatim can never
//     succeed and only hammers the server;
//   * request timeout — wait() gives up after request_timeout_ms and
//     reports the job as failed with a timeout error, leaving the
//     connection usable for other tags.
//
// Not thread-safe: one Client per thread (the protocol itself supports any
// number of concurrent Clients per server).

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "qubo/model.hpp"

namespace qross::net {

struct ClientConfig {
  Endpoint server;
  /// Identity sent in the Hello, grouping this connection with others of
  /// the same name for the server's admission quotas / fair-share weights.
  /// Empty = the server assigns a per-connection id.
  std::string client_id;
  int connect_timeout_ms = 5000;
  int request_timeout_ms = 120000;
  /// Bounds both reconnect redials and retryable-refusal resubmits.
  int reconnect_attempts = 3;
  int reconnect_backoff_ms = 100;
};

/// One job as the client submits it (the wire form of a SubmitJob frame,
/// minus the tag, which the client assigns).
struct RemoteJob {
  std::string solver = "da";
  qubo::QuboModel model;
  std::uint32_t num_replicas = 32;
  std::uint32_t num_sweeps = 100;
  std::uint64_t seed = 1;
  std::int32_t priority = 0;
  std::uint32_t deadline_ms = 0;  ///< relative; 0 = none
  bool bypass_cache = false;
  bool stream_status = false;
  /// Trace correlation id stamped on the server's spans for this job
  /// (0 = none).  Fetch the stitched trace with trace_dump().
  std::uint64_t trace_id = 0;
};

class Client {
 public:
  explicit Client(ClientConfig config);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Dials and handshakes.  False (with *error filled) on failure — also
  /// when the server refuses our protocol version.
  bool connect(std::string* error);

  bool connected() const { return sock_.valid(); }

  /// Protocol version the server acknowledged (after connect()).
  std::uint32_t negotiated_version() const { return ack_.protocol_version; }

  /// Sends one job; returns its tag, or nullopt when the connection is
  /// down and could not be re-established.
  std::optional<std::uint64_t> submit(const RemoteJob& job,
                                      std::string* error = nullptr);

  /// Blocks until `tag` completes.  On request timeout or a dead
  /// connection, returns a ResultFrame with status `failed` and the reason
  /// in `error` — the protocol carries real failures the same way, so
  /// callers have one error path.
  ResultFrame wait(std::uint64_t tag);

  /// Requests cancellation of an in-flight tag.
  bool cancel(std::uint64_t tag);

  /// Status updates streamed so far for `tag` (stream_status jobs only).
  std::vector<service::JobStatus> status_updates(std::uint64_t tag) const;

  /// Round-trips a metrics request.
  std::optional<MetricsFrame> metrics(std::string* error = nullptr);

  /// Round-trips a GetTrace request: the server's trace buffer as Chrome
  /// trace-event JSON.  Empty trace (`"traceEvents":[]`) when the daemon
  /// never enabled tracing; nullopt on connection/timeout failure — and on
  /// a pre-obs server, which answers kErrUnknownType.
  std::optional<std::string> trace_dump(std::string* error = nullptr);

  /// Round-trips a GetProm request: the server's metrics registry in
  /// Prometheus text exposition format.  Same failure contract as above.
  std::optional<std::string> prometheus_metrics(std::string* error = nullptr);

  /// Convenience: submit every job, then wait for each in order.
  std::vector<ResultFrame> run(const std::vector<RemoteJob>& jobs);

  /// Wire-level errors the server pushed that were not fatal to a request
  /// (e.g. kErrUnknownTag); drained by the caller.
  std::vector<ErrorFrame> take_errors();

 private:
  bool send_frame(std::uint32_t type, std::span<const std::uint8_t> payload);
  /// Reads until `stop_type` (or a Result / retryable refusal for
  /// `stop_tag`) arrives, the timeout expires, or the connection breaks.
  /// Buffers everything else.
  bool pump(std::uint32_t stop_type, std::uint64_t stop_tag, int timeout_ms,
            std::string* error);
  bool handshake(std::string* error);
  bool reconnect_and_resubmit(std::string* error);
  bool send_submit(std::uint64_t tag, const RemoteJob& job);
  void handle_incoming(const Frame& f);

  ClientConfig config_;
  Socket sock_;
  FrameBuffer in_;
  HelloAckFrame ack_;
  std::uint64_t next_tag_ = 1;

  std::map<std::uint64_t, RemoteJob> pending_;  // resubmitted on reconnect
  std::map<std::uint64_t, ResultFrame> results_;
  std::map<std::uint64_t, std::vector<service::JobStatus>> updates_;
  /// Tags refused with a RETRYABLE code: still pending; wait() backs off
  /// and resubmits.  The paired map counts resubmit attempts per tag.
  std::set<std::uint64_t> retry_wanted_;
  std::map<std::uint64_t, int> retry_attempts_;
  std::optional<MetricsFrame> last_metrics_;
  std::optional<std::string> last_trace_;
  std::optional<std::string> last_prom_;
  std::vector<ErrorFrame> errors_;
};

}  // namespace qross::net
