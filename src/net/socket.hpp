#pragma once

// Thin POSIX socket layer for the network front end: endpoint parsing
// (TCP host:port and Unix-domain paths), an RAII fd wrapper, and the
// blocking connect / listen helpers the Server reactor and Client build on.
//
// Error reporting is by out-parameter message + invalid Socket, never by
// exception — the callers (daemon startup, client reconnect loops) treat
// connection failures as ordinary control flow.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace qross::net {

/// A parsed listen/connect address.
///
///   "unix:/path/to.sock"  Unix-domain stream socket
///   "tcp:host:port"       TCP (explicit)
///   "host:port"           TCP (shorthand); port 0 binds an ephemeral port
struct Endpoint {
  enum class Kind { tcp, unix_domain };
  Kind kind = Kind::tcp;
  std::string host;     // tcp only
  std::uint16_t port = 0;  // tcp only
  std::string path;     // unix only

  static std::optional<Endpoint> parse(const std::string& text);
  std::string to_string() const;
};

/// RAII file descriptor.  Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  int release() { return std::exchange(fd_, -1); }
  void close();

  /// Sends the whole buffer (retrying short writes and EINTR).  False on a
  /// broken connection.
  bool send_all(const void* data, std::size_t size) const;

  /// Receives up to `size` bytes.  Returns the count, 0 on orderly peer
  /// shutdown, -1 on error.  `timeout_ms < 0` blocks indefinitely; on
  /// timeout returns -2.
  long recv_some(void* data, std::size_t size, int timeout_ms = -1) const;

 private:
  int fd_ = -1;
};

/// Binds + listens on `endpoint`.  For TCP port 0 the kernel picks a port —
/// read it back via `local_endpoint`.  A pre-existing Unix socket file is
/// unlinked first (stale from a crashed daemon).  On failure returns an
/// invalid Socket and fills `*error`.
Socket listen_on(const Endpoint& endpoint, std::string* error);

/// Blocking connect with a timeout.  On failure returns an invalid Socket
/// and fills `*error`.
Socket connect_to(const Endpoint& endpoint, int timeout_ms,
                  std::string* error);

/// The locally bound address of a listening/connected socket (resolves an
/// ephemeral TCP port).  Unix sockets return their path.
std::optional<Endpoint> local_endpoint(int fd);

}  // namespace qross::net
