#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace qross::net {

namespace {

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// sockaddr_un with the path length-checked (the kernel limit is ~107
/// bytes and silently truncating would bind the wrong path).
bool fill_unix_addr(const std::string& path, sockaddr_un* addr,
                    std::string* error) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    if (error != nullptr) {
      *error = "unix socket path empty or longer than " +
               std::to_string(sizeof(addr->sun_path) - 1) + " bytes: " + path;
    }
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

bool fill_tcp_addr(const std::string& host, std::uint16_t port,
                   sockaddr_in* addr, std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const std::string node = host.empty() ? "0.0.0.0" : host;
  if (inet_pton(AF_INET, node.c_str(), &addr->sin_addr) != 1) {
    if (node == "localhost") {
      inet_pton(AF_INET, "127.0.0.1", &addr->sin_addr);
      return true;
    }
    if (error != nullptr) *error = "cannot parse IPv4 address: " + node;
    return false;
  }
  return true;
}

}  // namespace

std::optional<Endpoint> Endpoint::parse(const std::string& text) {
  Endpoint ep;
  if (text.rfind("unix:", 0) == 0) {
    ep.kind = Kind::unix_domain;
    ep.path = text.substr(5);
    if (ep.path.empty()) return std::nullopt;
    return ep;
  }
  std::string rest = text;
  if (rest.rfind("tcp:", 0) == 0) rest = rest.substr(4);
  const auto colon = rest.rfind(':');
  if (colon == std::string::npos || colon + 1 >= rest.size()) {
    return std::nullopt;
  }
  ep.kind = Kind::tcp;
  ep.host = rest.substr(0, colon);
  unsigned long port = 0;
  try {
    port = std::stoul(rest.substr(colon + 1));
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (port > 65535) return std::nullopt;
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

std::string Endpoint::to_string() const {
  if (kind == Kind::unix_domain) return "unix:" + path;
  return "tcp:" + (host.empty() ? "0.0.0.0" : host) + ":" +
         std::to_string(port);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::send_all(const void* data, std::size_t size) const {
  const auto* bytes = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a peer that vanished mid-write must surface as EPIPE,
    // not kill the process with SIGPIPE.
    const ssize_t n =
        ::send(fd_, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

long Socket::recv_some(void* data, std::size_t size, int timeout_ms) const {
  if (timeout_ms >= 0) {
    pollfd pfd{fd_, POLLIN, 0};
    int rc;
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) return -2;
    if (rc < 0) return -1;
  }
  ssize_t n;
  do {
    n = ::recv(fd_, data, size, 0);
  } while (n < 0 && errno == EINTR);
  return n;
}

Socket listen_on(const Endpoint& endpoint, std::string* error) {
  const int family =
      endpoint.kind == Endpoint::Kind::unix_domain ? AF_UNIX : AF_INET;
  Socket sock(::socket(family, SOCK_STREAM, 0));
  if (!sock.valid()) {
    if (error != nullptr) *error = errno_message("socket");
    return {};
  }
  if (endpoint.kind == Endpoint::Kind::unix_domain) {
    sockaddr_un addr;
    if (!fill_unix_addr(endpoint.path, &addr, error)) return {};
    ::unlink(endpoint.path.c_str());  // stale file from a crashed daemon
    if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      if (error != nullptr) {
        *error = errno_message(("bind " + endpoint.path).c_str());
      }
      return {};
    }
  } else {
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    if (!fill_tcp_addr(endpoint.host, endpoint.port, &addr, error)) return {};
    if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      if (error != nullptr) {
        *error = errno_message(("bind " + endpoint.to_string()).c_str());
      }
      return {};
    }
  }
  if (::listen(sock.fd(), 64) != 0) {
    if (error != nullptr) *error = errno_message("listen");
    return {};
  }
  return sock;
}

Socket connect_to(const Endpoint& endpoint, int timeout_ms,
                  std::string* error) {
  const int family =
      endpoint.kind == Endpoint::Kind::unix_domain ? AF_UNIX : AF_INET;
  Socket sock(::socket(family, SOCK_STREAM, 0));
  if (!sock.valid()) {
    if (error != nullptr) *error = errno_message("socket");
    return {};
  }
  sockaddr_un uaddr;
  sockaddr_in taddr;
  sockaddr* addr = nullptr;
  socklen_t addr_len = 0;
  if (endpoint.kind == Endpoint::Kind::unix_domain) {
    if (!fill_unix_addr(endpoint.path, &uaddr, error)) return {};
    addr = reinterpret_cast<sockaddr*>(&uaddr);
    addr_len = sizeof(uaddr);
  } else {
    if (!fill_tcp_addr(endpoint.host.empty() ? "127.0.0.1" : endpoint.host,
                       endpoint.port, &taddr, error)) {
      return {};
    }
    addr = reinterpret_cast<sockaddr*>(&taddr);
    addr_len = sizeof(taddr);
  }
  // Non-blocking connect + poll gives the timeout; the socket is switched
  // back to blocking afterwards (the client protocol is blocking).
  const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
  ::fcntl(sock.fd(), F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(sock.fd(), addr, addr_len);
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{sock.fd(), POLLOUT, 0};
    do {
      rc = ::poll(&pfd, 1, timeout_ms < 0 ? -1 : timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) {
      if (error != nullptr) {
        *error = "connect " + endpoint.to_string() +
                 (rc == 0 ? ": timed out" : errno_message(""));
      }
      return {};
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      if (error != nullptr) {
        *error = "connect " + endpoint.to_string() + ": " +
                 std::strerror(so_error);
      }
      return {};
    }
  } else if (rc != 0) {
    if (error != nullptr) {
      *error = errno_message(("connect " + endpoint.to_string()).c_str());
    }
    return {};
  }
  ::fcntl(sock.fd(), F_SETFL, flags);
  if (endpoint.kind == Endpoint::Kind::tcp) {
    const int one = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return sock;
}

std::optional<Endpoint> local_endpoint(int fd) {
  sockaddr_storage storage;
  socklen_t len = sizeof(storage);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&storage), &len) != 0) {
    return std::nullopt;
  }
  Endpoint ep;
  if (storage.ss_family == AF_UNIX) {
    const auto* addr = reinterpret_cast<const sockaddr_un*>(&storage);
    ep.kind = Endpoint::Kind::unix_domain;
    ep.path = addr->sun_path;
    return ep;
  }
  if (storage.ss_family == AF_INET) {
    const auto* addr = reinterpret_cast<const sockaddr_in*>(&storage);
    ep.kind = Endpoint::Kind::tcp;
    char buf[INET_ADDRSTRLEN] = {};
    inet_ntop(AF_INET, &addr->sin_addr, buf, sizeof(buf));
    ep.host = buf;
    ep.port = ntohs(addr->sin_port);
    return ep;
  }
  return std::nullopt;
}

}  // namespace qross::net
