#pragma once

// Uniform random search over [lo, hi] — the paper's exhaustive-method
// representative.

#include "common/rng.hpp"
#include "tuning/tuner.hpp"

namespace qross::tuning {

class RandomSearch final : public Tuner {
 public:
  RandomSearch(double lo, double hi, std::uint64_t seed);

  std::string name() const override { return "random"; }
  double propose() override;
  void observe(const TunerObservation& observation) override;

 private:
  double lo_;
  double hi_;
  Rng rng_;
};

}  // namespace qross::tuning
