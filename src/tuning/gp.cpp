#include "tuning/gp.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/gaussian.hpp"
#include "common/stats.hpp"

namespace qross::tuning {

GaussianProcess::GaussianProcess(GpConfig config) : config_(config) {}

double GaussianProcess::kernel(double a, double b) const {
  const double d = (a - b) / length_scale_;
  return signal_variance_ * std::exp(-0.5 * d * d);
}

void GaussianProcess::fit(std::vector<double> xs, std::vector<double> ys) {
  QROSS_REQUIRE(xs.size() == ys.size(), "x/y length mismatch");
  QROSS_REQUIRE(!xs.empty(), "GP needs at least one point");
  xs_ = std::move(xs);
  ys_ = std::move(ys);
  const std::size_t n = xs_.size();

  y_mean_ = mean(ys_);
  const double y_std = std::max(stddev(ys_), 1e-9);
  signal_variance_ = y_std * y_std;
  noise_ = std::max(config_.noise_fraction * y_std, 1e-9);

  // Length scale: configured fraction of the span, or the median pairwise
  // gap heuristic.
  const auto [xmin_it, xmax_it] = std::minmax_element(xs_.begin(), xs_.end());
  const double span = std::max(*xmax_it - *xmin_it, 1e-9);
  if (config_.length_scale_fraction > 0.0) {
    length_scale_ = config_.length_scale_fraction * span;
  } else if (n >= 2) {
    std::vector<double> gaps;
    std::vector<double> sorted = xs_;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 1; i < n; ++i) {
      const double gap = sorted[i] - sorted[i - 1];
      if (gap > 0.0) gaps.push_back(gap);
    }
    length_scale_ =
        gaps.empty() ? 0.2 * span : std::max(2.0 * quantile(gaps, 0.5), 0.05 * span);
  } else {
    length_scale_ = 0.2 * span;
  }

  // K + noise^2 I, Cholesky-factorised in place.
  chol_.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double k = kernel(xs_[i], xs_[j]);
      if (i == j) k += noise_ * noise_ + config_.jitter * signal_variance_;
      chol_[i * n + j] = k;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = chol_[i * n + j];
      for (std::size_t k = 0; k < j; ++k) {
        sum -= chol_[i * n + k] * chol_[j * n + k];
      }
      if (i == j) {
        QROSS_ASSERT_MSG(sum > 0.0, "kernel matrix not positive definite");
        chol_[i * n + j] = std::sqrt(sum);
      } else {
        chol_[i * n + j] = sum / chol_[j * n + j];
      }
    }
  }

  // alpha = K^{-1} (y - mean) via two triangular solves.
  std::vector<double> centered(n);
  for (std::size_t i = 0; i < n; ++i) centered[i] = ys_[i] - y_mean_;
  // L z = centered
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = centered[i];
    for (std::size_t k = 0; k < i; ++k) sum -= chol_[i * n + k] * z[k];
    z[i] = sum / chol_[i * n + i];
  }
  // L^T alpha = z
  alpha_.assign(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = z[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= chol_[k * n + i] * alpha_[k];
    alpha_[i] = sum / chol_[i * n + i];
  }
}

GaussianProcess::Posterior GaussianProcess::predict(double x) const {
  QROSS_REQUIRE(is_fitted(), "GP not fitted");
  const std::size_t n = xs_.size();
  std::vector<double> kstar(n);
  for (std::size_t i = 0; i < n; ++i) kstar[i] = kernel(x, xs_[i]);

  Posterior post;
  post.mean = y_mean_;
  for (std::size_t i = 0; i < n; ++i) post.mean += kstar[i] * alpha_[i];

  // v = L^{-1} kstar; variance = k(x,x) - v.v
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = kstar[i];
    for (std::size_t k = 0; k < i; ++k) sum -= chol_[i * n + k] * v[k];
    v[i] = sum / chol_[i * n + i];
  }
  double variance = kernel(x, x);
  for (std::size_t i = 0; i < n; ++i) variance -= v[i] * v[i];
  post.stddev = std::sqrt(std::max(variance, 0.0));
  return post;
}

double expected_improvement(double mean, double stddev, double best_value,
                            double xi) {
  const double improvement = best_value - mean - xi;
  if (stddev <= 1e-12) return std::max(improvement, 0.0);
  const double z = improvement / stddev;
  return improvement * normal_cdf(z) + stddev * normal_pdf(z);
}

}  // namespace qross::tuning
