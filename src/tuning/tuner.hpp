#pragma once

// Baseline hyper-parameter tuners (paper §5.1): Random Search, TPE, and
// GP-based Bayesian Optimisation, all minimising a black-box f(A) over a
// fixed interval.  They see exactly what the paper's baselines see — the
// solver result at each tried A — and no surrogate knowledge.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace qross::tuning {

/// One completed trial.
struct TunerObservation {
  double x = 0.0;      ///< tried relaxation parameter
  double value = 0.0;  ///< objective (lower is better); finite
};

class Tuner {
 public:
  virtual ~Tuner() = default;
  virtual std::string name() const = 0;

  /// Next point to try, in [lo, hi].
  virtual double propose() = 0;

  /// Feedback for the most recent (or any) proposal.
  virtual void observe(const TunerObservation& observation) = 0;

  const std::vector<TunerObservation>& history() const { return history_; }

 protected:
  void record(const TunerObservation& observation) {
    history_.push_back(observation);
  }

  std::vector<TunerObservation> history_;
};

/// Maps a possibly-infeasible solver result to the finite objective the
/// baselines minimise: the batch's best feasible fitness, or a fixed bad
/// value (`infeasible_value`) when the batch had no feasible solution.
double finite_objective(double min_fitness, double infeasible_value);

}  // namespace qross::tuning
