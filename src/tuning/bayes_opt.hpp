#pragma once

// GP-based Bayesian Optimisation baseline (paper §5.1): 5 uniform warm-up
// samples ("BO requires some random samples before the actual exploration
// and exploitation ... we draw 5 random samples"), then maximise expected
// improvement over a dense candidate grid.

#include "common/rng.hpp"
#include "tuning/gp.hpp"
#include "tuning/tuner.hpp"

namespace qross::tuning {

struct BayesOptConfig {
  std::size_t warmup_trials = 5;
  std::size_t acquisition_grid = 256;
  double exploration_xi = 0.01;
  GpConfig gp;
};

class BayesOptTuner final : public Tuner {
 public:
  BayesOptTuner(double lo, double hi, std::uint64_t seed);
  BayesOptTuner(double lo, double hi, BayesOptConfig config,
                std::uint64_t seed);

  std::string name() const override { return "bo"; }
  double propose() override;
  void observe(const TunerObservation& observation) override;

  /// Posterior at x after the latest fit (exposed for tests).
  GaussianProcess::Posterior posterior(double x) const;

 private:
  double lo_;
  double hi_;
  BayesOptConfig config_;
  Rng rng_;
  GaussianProcess gp_;
  bool gp_dirty_ = true;
  void refit();
};

}  // namespace qross::tuning
