#pragma once

// Tree-structured Parzen Estimator (Bergstra et al. 2011; the algorithm
// behind Hyperopt, the paper's "TPE" baseline), one-dimensional continuous
// variant.
//
// The history is split by objective value into a "good" quantile (fraction
// gamma) and the rest.  Each side gets a Parzen (Gaussian-kernel) density —
// l(x) over good points, g(x) over the rest — and the next proposal is the
// candidate drawn from l with the best l(x)/g(x) ratio, i.e. the point most
// associated with good outcomes and least with bad ones.

#include "common/rng.hpp"
#include "tuning/tuner.hpp"

namespace qross::tuning {

struct TpeConfig {
  /// Fraction of history treated as "good".
  double gamma = 0.25;
  /// Random startup trials before the model kicks in.
  std::size_t startup_trials = 5;
  /// Candidates drawn from l(x) per proposal.
  std::size_t candidates = 24;
  /// Kernel bandwidth floor as a fraction of the search span.
  double min_bandwidth_fraction = 0.01;
};

class TpeTuner final : public Tuner {
 public:
  TpeTuner(double lo, double hi, std::uint64_t seed);
  TpeTuner(double lo, double hi, TpeConfig config, std::uint64_t seed);

  std::string name() const override { return "tpe"; }
  double propose() override;
  void observe(const TunerObservation& observation) override;

 private:
  /// Parzen mixture over `points` with per-point bandwidths; uniform prior
  /// component over [lo, hi] regularises empty/degenerate sides.
  struct Parzen {
    std::vector<double> points;
    std::vector<double> bandwidths;
    double lo = 0.0, hi = 1.0;

    double density(double x) const;
    double sample(Rng& rng) const;
  };

  Parzen build_parzen(const std::vector<double>& points) const;

  double lo_;
  double hi_;
  TpeConfig config_;
  Rng rng_;
};

}  // namespace qross::tuning
