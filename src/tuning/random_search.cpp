#include "tuning/random_search.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace qross::tuning {

double finite_objective(double min_fitness, double infeasible_value) {
  return std::isfinite(min_fitness) ? min_fitness : infeasible_value;
}

RandomSearch::RandomSearch(double lo, double hi, std::uint64_t seed)
    : lo_(lo), hi_(hi), rng_(seed) {
  QROSS_REQUIRE(lo_ < hi_, "invalid search interval");
}

double RandomSearch::propose() { return rng_.uniform(lo_, hi_); }

void RandomSearch::observe(const TunerObservation& observation) {
  record(observation);
}

}  // namespace qross::tuning
