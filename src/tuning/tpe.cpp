#include "tuning/tpe.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/gaussian.hpp"

namespace qross::tuning {

TpeTuner::TpeTuner(double lo, double hi, std::uint64_t seed)
    : TpeTuner(lo, hi, TpeConfig{}, seed) {}

TpeTuner::TpeTuner(double lo, double hi, TpeConfig config, std::uint64_t seed)
    : lo_(lo), hi_(hi), config_(config), rng_(seed) {
  QROSS_REQUIRE(lo_ < hi_, "invalid search interval");
  QROSS_REQUIRE(config_.gamma > 0.0 && config_.gamma < 1.0, "gamma in (0,1)");
  QROSS_REQUIRE(config_.candidates >= 1, "need at least one candidate");
}

double TpeTuner::Parzen::density(double x) const {
  // Mixture of per-point Gaussians plus a uniform prior component; the
  // prior keeps densities positive everywhere so the l/g ratio is defined.
  const double span = hi - lo;
  double total = 1.0 / span;  // prior weight
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double z = (x - points[i]) / bandwidths[i];
    total += normal_pdf(z) / bandwidths[i];
  }
  return total / (static_cast<double>(points.size()) + 1.0);
}

double TpeTuner::Parzen::sample(Rng& rng) const {
  const std::size_t components = points.size() + 1;
  const auto pick = static_cast<std::size_t>(rng.uniform_int(components));
  if (pick == points.size()) {
    return rng.uniform(lo, hi);  // prior component
  }
  const double x = rng.normal(points[pick], bandwidths[pick]);
  return std::clamp(x, lo, hi);
}

TpeTuner::Parzen TpeTuner::build_parzen(
    const std::vector<double>& points) const {
  Parzen parzen;
  parzen.lo = lo_;
  parzen.hi = hi_;
  parzen.points = points;
  std::vector<double> sorted = points;
  std::sort(sorted.begin(), sorted.end());
  const double min_bw = config_.min_bandwidth_fraction * (hi_ - lo_);
  parzen.bandwidths.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    // Hyperopt-style adaptive bandwidth: distance to nearest neighbours.
    const auto it = std::lower_bound(sorted.begin(), sorted.end(), points[i]);
    const std::size_t idx = static_cast<std::size_t>(it - sorted.begin());
    double left = idx > 0 ? points[i] - sorted[idx - 1] : hi_ - lo_;
    double right = idx + 1 < sorted.size() ? sorted[idx + 1] - points[i]
                                           : hi_ - lo_;
    parzen.bandwidths[i] = std::clamp(std::max(left, right), min_bw, hi_ - lo_);
  }
  return parzen;
}

double TpeTuner::propose() {
  if (history_.size() < config_.startup_trials) {
    return rng_.uniform(lo_, hi_);
  }
  // Split history into good (lowest gamma-quantile) and bad.
  std::vector<TunerObservation> sorted = history_;
  std::sort(sorted.begin(), sorted.end(),
            [](const TunerObservation& a, const TunerObservation& b) {
              return a.value < b.value;
            });
  const std::size_t num_good = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::ceil(
          config_.gamma * static_cast<double>(sorted.size()))),
      1, sorted.size() - 1);
  std::vector<double> good, bad;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    (i < num_good ? good : bad).push_back(sorted[i].x);
  }
  const Parzen l = build_parzen(good);
  const Parzen g = build_parzen(bad);

  double best_x = 0.5 * (lo_ + hi_);
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < config_.candidates; ++c) {
    const double x = l.sample(rng_);
    const double score = std::log(l.density(x)) - std::log(g.density(x));
    if (score > best_score) {
      best_score = score;
      best_x = x;
    }
  }
  return best_x;
}

void TpeTuner::observe(const TunerObservation& observation) {
  record(observation);
}

}  // namespace qross::tuning
