#include "tuning/bayes_opt.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace qross::tuning {

BayesOptTuner::BayesOptTuner(double lo, double hi, std::uint64_t seed)
    : BayesOptTuner(lo, hi, BayesOptConfig{}, seed) {}

BayesOptTuner::BayesOptTuner(double lo, double hi, BayesOptConfig config,
                             std::uint64_t seed)
    : lo_(lo), hi_(hi), config_(config), rng_(seed), gp_(config.gp) {
  QROSS_REQUIRE(lo_ < hi_, "invalid search interval");
  QROSS_REQUIRE(config_.acquisition_grid >= 8, "grid too coarse");
}

void BayesOptTuner::refit() {
  if (!gp_dirty_ || history_.empty()) return;
  std::vector<double> xs, ys;
  xs.reserve(history_.size());
  ys.reserve(history_.size());
  for (const auto& obs : history_) {
    xs.push_back(obs.x);
    ys.push_back(obs.value);
  }
  gp_.fit(std::move(xs), std::move(ys));
  gp_dirty_ = false;
}

double BayesOptTuner::propose() {
  if (history_.size() < config_.warmup_trials) {
    return rng_.uniform(lo_, hi_);
  }
  refit();
  double best_value = std::numeric_limits<double>::infinity();
  for (const auto& obs : history_) best_value = std::min(best_value, obs.value);

  double best_x = 0.5 * (lo_ + hi_);
  double best_ei = -1.0;
  for (std::size_t i = 0; i < config_.acquisition_grid; ++i) {
    // Jittered grid avoids repeatedly proposing identical points on flat
    // acquisition surfaces.
    const double t = (static_cast<double>(i) + rng_.uniform()) /
                     static_cast<double>(config_.acquisition_grid);
    const double x = lo_ + t * (hi_ - lo_);
    const auto post = gp_.predict(x);
    const double ei = expected_improvement(post.mean, post.stddev, best_value,
                                           config_.exploration_xi);
    if (ei > best_ei) {
      best_ei = ei;
      best_x = x;
    }
  }
  return best_x;
}

void BayesOptTuner::observe(const TunerObservation& observation) {
  record(observation);
  gp_dirty_ = true;
}

GaussianProcess::Posterior BayesOptTuner::posterior(double x) const {
  QROSS_REQUIRE(gp_.is_fitted(), "GP not fitted yet");
  return gp_.predict(x);
}

}  // namespace qross::tuning
