#pragma once

// One-dimensional Gaussian-process regression with an RBF kernel, the model
// inside the Bayesian-optimisation baseline.  Exact inference via Cholesky;
// hyper-parameters (signal variance, length scale, noise) are set by simple
// data-driven heuristics refreshed at each fit, which is robust for the
// few-dozen-point regimes these experiments run in.

#include <cstddef>
#include <vector>

namespace qross::tuning {

struct GpConfig {
  /// Length scale as a fraction of the input span; <= 0 means heuristic
  /// (median pairwise distance).
  double length_scale_fraction = -1.0;
  /// Observation noise stddev as a fraction of the output stddev.
  double noise_fraction = 0.1;
  /// Jitter added to the kernel diagonal for numerical stability.
  double jitter = 1e-10;
};

class GaussianProcess {
 public:
  explicit GaussianProcess(GpConfig config = {});

  /// Fits the posterior to (xs, ys).  Requires at least one point.
  void fit(std::vector<double> xs, std::vector<double> ys);

  bool is_fitted() const { return !xs_.empty(); }
  std::size_t num_points() const { return xs_.size(); }

  struct Posterior {
    double mean = 0.0;
    double stddev = 0.0;
  };
  Posterior predict(double x) const;

  double length_scale() const { return length_scale_; }
  double noise_stddev() const { return noise_; }

 private:
  double kernel(double a, double b) const;

  GpConfig config_;
  std::vector<double> xs_;
  std::vector<double> ys_;
  double y_mean_ = 0.0;
  double signal_variance_ = 1.0;
  double length_scale_ = 1.0;
  double noise_ = 0.1;
  std::vector<double> chol_;   // lower-triangular Cholesky factor, row-major
  std::vector<double> alpha_;  // K^{-1} (y - mean)
};

/// Expected improvement (minimisation) of a Gaussian posterior over the
/// current best value.  xi is the exploration margin.
double expected_improvement(double mean, double stddev, double best_value,
                            double xi = 0.01);

}  // namespace qross::tuning
