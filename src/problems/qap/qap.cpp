#include "problems/qap/qap.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace qross::qap {

QapInstance::QapInstance(std::string name, std::size_t size,
                         std::vector<double> flows,
                         std::vector<double> distances)
    : name_(std::move(name)),
      n_(size),
      flows_(std::move(flows)),
      distances_(std::move(distances)) {
  QROSS_REQUIRE(n_ >= 1, "QAP needs at least one facility");
  QROSS_REQUIRE(flows_.size() == n_ * n_, "flow matrix size mismatch");
  QROSS_REQUIRE(distances_.size() == n_ * n_, "distance matrix size mismatch");
  for (std::size_t i = 0; i < n_; ++i) {
    QROSS_REQUIRE(flows_[i * n_ + i] == 0.0, "nonzero flow diagonal");
    QROSS_REQUIRE(distances_[i * n_ + i] == 0.0, "nonzero distance diagonal");
  }
  for (double f : flows_) QROSS_REQUIRE(f >= 0.0, "negative flow");
  for (double d : distances_) QROSS_REQUIRE(d >= 0.0, "negative distance");
}

double QapInstance::cost(std::span<const std::size_t> assignment) const {
  QROSS_REQUIRE(is_valid_assignment(assignment), "invalid QAP assignment");
  double total = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (i != j) total += flow(i, j) * distance(assignment[i], assignment[j]);
    }
  }
  return total;
}

bool QapInstance::is_valid_assignment(
    std::span<const std::size_t> assignment) const {
  if (assignment.size() != n_) return false;
  std::vector<bool> used(n_, false);
  for (std::size_t location : assignment) {
    if (location >= n_ || used[location]) return false;
    used[location] = true;
  }
  return true;
}

qubo::ConstrainedProblem build_qap_problem(const QapInstance& instance) {
  const std::size_t n = instance.size();
  qubo::ConstrainedProblem problem(n * n);

  // Objective: F[i][j] * D[l][m] whenever facility i sits at l and j at m.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double f = instance.flow(i, j);
      if (f == 0.0) continue;
      for (std::size_t l = 0; l < n; ++l) {
        for (std::size_t m = 0; m < n; ++m) {
          if (l == m) continue;
          const double d = instance.distance(l, m);
          if (d == 0.0) continue;
          problem.add_objective_term(variable_index(i, l, n),
                                     variable_index(j, m, n), f * d);
        }
      }
    }
  }

  // One-hot rows: each facility at exactly one location...
  for (std::size_t i = 0; i < n; ++i) {
    qubo::LinearConstraint c;
    c.rhs = 1.0;
    for (std::size_t l = 0; l < n; ++l) {
      c.vars.push_back(variable_index(i, l, n));
      c.coeffs.push_back(1.0);
    }
    problem.add_constraint(std::move(c));
  }
  // ... and each location hosting exactly one facility.
  for (std::size_t l = 0; l < n; ++l) {
    qubo::LinearConstraint c;
    c.rhs = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      c.vars.push_back(variable_index(i, l, n));
      c.coeffs.push_back(1.0);
    }
    problem.add_constraint(std::move(c));
  }
  return problem;
}

std::optional<Assignment> decode_assignment(
    const QapInstance& instance, std::span<const std::uint8_t> bits) {
  const std::size_t n = instance.size();
  QROSS_REQUIRE(bits.size() == n * n, "assignment size mismatch");
  Assignment assignment(n, n);
  std::vector<bool> location_used(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t l = 0; l < n; ++l) {
      if (bits[variable_index(i, l, n)] == 0) continue;
      if (assignment[i] != n || location_used[l]) return std::nullopt;
      assignment[i] = l;
      location_used[l] = true;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (assignment[i] == n) return std::nullopt;
  }
  return assignment;
}

std::vector<std::uint8_t> encode_assignment(
    const QapInstance& instance, std::span<const std::size_t> assignment) {
  const std::size_t n = instance.size();
  QROSS_REQUIRE(instance.is_valid_assignment(assignment),
                "invalid QAP assignment");
  std::vector<std::uint8_t> bits(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    bits[variable_index(i, assignment[i], n)] = 1;
  }
  return bits;
}

QapInstance generate_random_qap(std::size_t size, std::uint64_t seed,
                                double max_value) {
  QROSS_REQUIRE(max_value > 0.0, "max value must be positive");
  Rng rng(seed);
  std::vector<double> flows(size * size, 0.0);
  std::vector<double> distances(size * size, 0.0);
  for (std::size_t i = 0; i < size; ++i) {
    for (std::size_t j = i + 1; j < size; ++j) {
      const double f = rng.uniform(0.0, max_value);
      const double d = rng.uniform(0.0, max_value);
      flows[i * size + j] = flows[j * size + i] = f;
      distances[i * size + j] = distances[j * size + i] = d;
    }
  }
  return QapInstance("qap_n" + std::to_string(size) + "_s" +
                         std::to_string(seed),
                     size, std::move(flows), std::move(distances));
}

QapInstance parse_qaplib(std::istream& input, std::string name) {
  std::size_t n = 0;
  QROSS_REQUIRE(static_cast<bool>(input >> n) && n >= 1,
                "bad QAPLIB dimension");
  auto read_matrix = [&](const char* what) {
    std::vector<double> values(n * n);
    for (double& v : values) {
      QROSS_REQUIRE(static_cast<bool>(input >> v),
                    std::string("truncated QAPLIB ") + what);
    }
    return values;
  };
  auto flows = read_matrix("flow matrix");
  auto distances = read_matrix("distance matrix");
  return QapInstance(std::move(name), n, std::move(flows),
                     std::move(distances));
}

QapInstance parse_qaplib_string(const std::string& text, std::string name) {
  std::istringstream ss(text);
  return parse_qaplib(ss, std::move(name));
}

namespace {

void exact_recurse(const QapInstance& instance, Assignment& assignment,
                   std::vector<bool>& used, std::size_t depth, double cost,
                   QapExact& best) {
  const std::size_t n = instance.size();
  if (cost >= best.cost) return;  // costs only grow (non-negative terms)
  if (depth == n) {
    best.cost = cost;
    best.assignment = assignment;
    return;
  }
  for (std::size_t l = 0; l < n; ++l) {
    if (used[l]) continue;
    // Incremental cost of placing facility `depth` at l against all
    // previously placed facilities.
    double delta = 0.0;
    for (std::size_t j = 0; j < depth; ++j) {
      delta += instance.flow(depth, j) * instance.distance(l, assignment[j]);
      delta += instance.flow(j, depth) * instance.distance(assignment[j], l);
    }
    used[l] = true;
    assignment[depth] = l;
    exact_recurse(instance, assignment, used, depth + 1, cost + delta, best);
    used[l] = false;
  }
}

}  // namespace

QapExact solve_exact_qap(const QapInstance& instance) {
  QROSS_REQUIRE(instance.size() <= 10, "exact QAP limited to 10 facilities");
  QapExact best;
  best.cost = std::numeric_limits<double>::infinity();
  Assignment assignment(instance.size(), 0);
  std::vector<bool> used(instance.size(), false);
  exact_recurse(instance, assignment, used, 0, 0.0, best);
  return best;
}

Assignment local_search_qap(const QapInstance& instance, Assignment start,
                            std::size_t max_passes) {
  const std::size_t n = instance.size();
  QROSS_REQUIRE(instance.is_valid_assignment(start), "invalid start");
  double current = instance.cost(start);
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        std::swap(start[i], start[j]);
        const double cand = instance.cost(start);
        if (cand < current - 1e-12) {
          current = cand;
          improved = true;
        } else {
          std::swap(start[i], start[j]);  // revert
        }
      }
    }
    if (!improved) break;
  }
  return start;
}

QapExact reference_qap(const QapInstance& instance, std::uint64_t seed,
                       std::size_t restarts) {
  if (instance.size() <= 8) {
    return solve_exact_qap(instance);
  }
  Rng rng(seed);
  QapExact best;
  best.cost = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < restarts; ++r) {
    const Assignment polished =
        local_search_qap(instance, rng.permutation(instance.size()));
    const double cost = instance.cost(polished);
    if (cost < best.cost) {
      best.cost = cost;
      best.assignment = polished;
    }
  }
  return best;
}

}  // namespace qross::qap
