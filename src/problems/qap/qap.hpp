#pragma once

// Quadratic Assignment Problem (QAP).
//
// The paper validates its central hypothesis — "optimal solutions appear
// within 0 < Pf < 1" — on QAPLIB instances solved with simulated annealing
// (§3.1, footnote 2).  This module supplies that substrate: instance type,
// QAPLIB-format parser, random generators, the one-hot QUBO relaxation, and
// exact/heuristic references.
//
// A QAP instance assigns n facilities to n locations.  Given a flow matrix
// F (facility pairs) and a distance matrix D (location pairs), the cost of
// an assignment p (facility i -> location p[i]) is
//
//   cost(p) = sum_{i,j} F[i][j] * D[p[i]][p[j]] .
//
// QUBO form: variables x_{i,l} ("facility i at location l", index i*n+l),
// objective sum over pairs, and 2n one-hot constraints exactly like the TSP
// formulation.

#include <cstdint>
#include <istream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "qubo/builder.hpp"

namespace qross::qap {

using Assignment = std::vector<std::size_t>;  // facility -> location

class QapInstance {
 public:
  /// Row-major n x n flow and distance matrices; both must be non-negative
  /// with zero diagonals (the standard QAPLIB convention).
  QapInstance(std::string name, std::size_t size, std::vector<double> flows,
              std::vector<double> distances);

  const std::string& name() const { return name_; }
  std::size_t size() const { return n_; }

  double flow(std::size_t i, std::size_t j) const { return flows_[i * n_ + j]; }
  double distance(std::size_t a, std::size_t b) const {
    return distances_[a * n_ + b];
  }

  /// Assignment cost; requires a valid permutation.
  double cost(std::span<const std::size_t> assignment) const;

  bool is_valid_assignment(std::span<const std::size_t> assignment) const;

 private:
  std::string name_;
  std::size_t n_;
  std::vector<double> flows_;
  std::vector<double> distances_;
};

/// Variable index of "facility i at location l".
inline std::size_t variable_index(std::size_t i, std::size_t l,
                                  std::size_t n) {
  return i * n + l;
}

/// One-hot QUBO relaxation (objective + 2n equality constraints).
qubo::ConstrainedProblem build_qap_problem(const QapInstance& instance);

/// Decodes a binary assignment into facility->location; nullopt unless it
/// is exactly a permutation matrix.
std::optional<Assignment> decode_assignment(
    const QapInstance& instance, std::span<const std::uint8_t> bits);

/// Encodes an assignment into QUBO variables.
std::vector<std::uint8_t> encode_assignment(
    const QapInstance& instance, std::span<const std::size_t> assignment);

/// Random instance: flows and distances i.i.d. U[0, max_value); symmetric,
/// zero diagonal (the Taillard-style uniform family).
QapInstance generate_random_qap(std::size_t size, std::uint64_t seed,
                                double max_value = 10.0);

/// Parses the QAPLIB text format: n, then the n x n flow matrix, then the
/// n x n distance matrix, whitespace separated.
QapInstance parse_qaplib(std::istream& input, std::string name = "qaplib");
QapInstance parse_qaplib_string(const std::string& text,
                                std::string name = "qaplib");

/// Exhaustive optimum for n <= 10.
struct QapExact {
  Assignment assignment;
  double cost = 0.0;
};
QapExact solve_exact_qap(const QapInstance& instance);

/// 2-exchange local search from a given start; never returns a worse
/// assignment.  Reference heuristic for larger instances.
Assignment local_search_qap(const QapInstance& instance, Assignment start,
                            std::size_t max_passes = 64);

/// Best of `restarts` random starts, each polished with local search.
QapExact reference_qap(const QapInstance& instance, std::uint64_t seed = 7,
                       std::size_t restarts = 8);

}  // namespace qross::qap
