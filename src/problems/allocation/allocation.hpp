#pragma once

// Capacitated task-allocation problem — the paper's second motivating
// industry workload ("a logistic company has to manage allocations in a
// warehouse repeatedly", §3.1): assign each of n tasks to one of m machines
// at minimum cost while respecting per-machine capacity.
//
//   min  sum_{t,k} cost[t][k] * x_{t,k}
//   s.t. sum_k x_{t,k} == 1                 for every task t   (one-hot)
//        sum_t load[t] * x_{t,k} <= cap[k]  for every machine k
//
// The capacities become QUBO penalties through the binary slack expansion
// (qubo::ConstrainedProblem::add_inequality_constraint), so this module
// doubles as the worked example for inequality-constrained relaxations.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "qubo/builder.hpp"

namespace qross::allocation {

/// Task t runs on machine assignment[t].
using Assignment = std::vector<std::size_t>;

class AllocationInstance {
 public:
  /// costs: row-major tasks x machines; loads: per task; capacities: per
  /// machine.  All non-negative.
  AllocationInstance(std::string name, std::size_t num_tasks,
                     std::size_t num_machines, std::vector<double> costs,
                     std::vector<double> loads,
                     std::vector<double> capacities);

  const std::string& name() const { return name_; }
  std::size_t num_tasks() const { return tasks_; }
  std::size_t num_machines() const { return machines_; }

  double cost(std::size_t task, std::size_t machine) const {
    return costs_[task * machines_ + machine];
  }
  double load(std::size_t task) const { return loads_[task]; }
  double capacity(std::size_t machine) const { return capacities_[machine]; }

  /// Total cost of an assignment (requires one machine per task, in range).
  double total_cost(std::span<const std::size_t> assignment) const;

  /// Load placed on `machine` by the assignment.
  double machine_load(std::span<const std::size_t> assignment,
                      std::size_t machine) const;

  /// True iff every machine's capacity holds.
  bool respects_capacities(std::span<const std::size_t> assignment) const;

 private:
  std::string name_;
  std::size_t tasks_;
  std::size_t machines_;
  std::vector<double> costs_;
  std::vector<double> loads_;
  std::vector<double> capacities_;
};

/// Index of decision variable "task t on machine k" in the QUBO space.
/// Slack variables introduced by the capacity constraints live above
/// num_tasks * num_machines.
inline std::size_t variable_index(std::size_t task, std::size_t machine,
                                  std::size_t num_machines) {
  return task * num_machines + machine;
}

struct AllocationQubo {
  qubo::ConstrainedProblem problem;
  /// Slack-variable indices per machine (for inspection / tests).
  std::vector<std::vector<std::size_t>> capacity_slack;
};

/// Builds the constrained problem; `slack_granularity` controls the
/// resolution of the capacity slack encoding (loads and capacities should
/// be multiples of it for exact feasibility).
AllocationQubo build_allocation_problem(const AllocationInstance& instance,
                                        double slack_granularity = 1.0);

/// Decodes the decision-variable block of a QUBO assignment (slack bits are
/// ignored).  nullopt unless every task has exactly one machine.  Capacity
/// feasibility must be checked separately via respects_capacities — the
/// QUBO-level feasibility check already includes it through the slack
/// equalities.
std::optional<Assignment> decode_allocation(
    const AllocationInstance& instance, std::span<const std::uint8_t> bits);

/// Encodes an assignment into the decision block, choosing slack bits that
/// satisfy the capacity equalities when possible (bits sized to the full
/// problem including slack).
std::vector<std::uint8_t> encode_allocation(const AllocationQubo& qubo,
                                            const AllocationInstance& instance,
                                            std::span<const std::size_t> assignment);

/// Random instance: integer loads in [1, max_load], capacities sized so a
/// balanced split has ~`slack_factor` headroom, integer costs in
/// [1, max_cost].
AllocationInstance generate_random_allocation(std::size_t num_tasks,
                                              std::size_t num_machines,
                                              std::uint64_t seed,
                                              double slack_factor = 1.3);

/// Exhaustive optimum over all m^n assignments; requires m^n <= ~2e6.
struct AllocationExact {
  Assignment assignment;
  double cost = 0.0;
  bool feasible = false;
};
AllocationExact solve_exact_allocation(const AllocationInstance& instance);

}  // namespace qross::allocation
