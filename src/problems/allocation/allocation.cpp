#include "problems/allocation/allocation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace qross::allocation {

AllocationInstance::AllocationInstance(std::string name, std::size_t num_tasks,
                                       std::size_t num_machines,
                                       std::vector<double> costs,
                                       std::vector<double> loads,
                                       std::vector<double> capacities)
    : name_(std::move(name)),
      tasks_(num_tasks),
      machines_(num_machines),
      costs_(std::move(costs)),
      loads_(std::move(loads)),
      capacities_(std::move(capacities)) {
  QROSS_REQUIRE(tasks_ >= 1 && machines_ >= 1, "need tasks and machines");
  QROSS_REQUIRE(costs_.size() == tasks_ * machines_, "cost matrix size");
  QROSS_REQUIRE(loads_.size() == tasks_, "load vector size");
  QROSS_REQUIRE(capacities_.size() == machines_, "capacity vector size");
  for (double c : costs_) QROSS_REQUIRE(c >= 0.0, "negative cost");
  for (double l : loads_) QROSS_REQUIRE(l >= 0.0, "negative load");
  for (double c : capacities_) QROSS_REQUIRE(c >= 0.0, "negative capacity");
}

double AllocationInstance::total_cost(
    std::span<const std::size_t> assignment) const {
  QROSS_REQUIRE(assignment.size() == tasks_, "assignment size mismatch");
  double total = 0.0;
  for (std::size_t t = 0; t < tasks_; ++t) {
    QROSS_REQUIRE(assignment[t] < machines_, "machine index out of range");
    total += cost(t, assignment[t]);
  }
  return total;
}

double AllocationInstance::machine_load(std::span<const std::size_t> assignment,
                                        std::size_t machine) const {
  QROSS_REQUIRE(assignment.size() == tasks_, "assignment size mismatch");
  double total = 0.0;
  for (std::size_t t = 0; t < tasks_; ++t) {
    if (assignment[t] == machine) total += loads_[t];
  }
  return total;
}

bool AllocationInstance::respects_capacities(
    std::span<const std::size_t> assignment) const {
  for (std::size_t k = 0; k < machines_; ++k) {
    if (machine_load(assignment, k) > capacities_[k] + 1e-9) return false;
  }
  return true;
}

AllocationQubo build_allocation_problem(const AllocationInstance& instance,
                                        double slack_granularity) {
  const std::size_t tasks = instance.num_tasks();
  const std::size_t machines = instance.num_machines();
  AllocationQubo out{qubo::ConstrainedProblem(tasks * machines), {}};

  // Linear objective on the decision block.
  for (std::size_t t = 0; t < tasks; ++t) {
    for (std::size_t k = 0; k < machines; ++k) {
      const std::size_t v = variable_index(t, k, machines);
      out.problem.add_objective_term(v, v, instance.cost(t, k));
    }
  }
  // One-hot per task.
  for (std::size_t t = 0; t < tasks; ++t) {
    qubo::LinearConstraint c;
    c.rhs = 1.0;
    for (std::size_t k = 0; k < machines; ++k) {
      c.vars.push_back(variable_index(t, k, machines));
      c.coeffs.push_back(1.0);
    }
    out.problem.add_constraint(std::move(c));
  }
  // Capacity inequality per machine, slack-expanded.
  out.capacity_slack.reserve(machines);
  for (std::size_t k = 0; k < machines; ++k) {
    qubo::LinearInequality inequality;
    inequality.rhs = instance.capacity(k);
    for (std::size_t t = 0; t < tasks; ++t) {
      inequality.vars.push_back(variable_index(t, k, machines));
      inequality.coeffs.push_back(instance.load(t));
    }
    out.capacity_slack.push_back(
        out.problem.add_inequality_constraint(inequality, slack_granularity));
  }
  return out;
}

std::optional<Assignment> decode_allocation(
    const AllocationInstance& instance, std::span<const std::uint8_t> bits) {
  const std::size_t tasks = instance.num_tasks();
  const std::size_t machines = instance.num_machines();
  QROSS_REQUIRE(bits.size() >= tasks * machines,
                "assignment too short for the decision block");
  Assignment assignment(tasks, machines);
  for (std::size_t t = 0; t < tasks; ++t) {
    for (std::size_t k = 0; k < machines; ++k) {
      if (bits[variable_index(t, k, machines)] == 0) continue;
      if (assignment[t] != machines) return std::nullopt;  // two machines
      assignment[t] = k;
    }
    if (assignment[t] == machines) return std::nullopt;  // unassigned
  }
  return assignment;
}

std::vector<std::uint8_t> encode_allocation(
    const AllocationQubo& qubo, const AllocationInstance& instance,
    std::span<const std::size_t> assignment) {
  QROSS_REQUIRE(assignment.size() == instance.num_tasks(),
                "assignment size mismatch");
  std::vector<std::uint8_t> bits(qubo.problem.num_vars(), 0);
  const std::size_t machines = instance.num_machines();
  for (std::size_t t = 0; t < assignment.size(); ++t) {
    QROSS_REQUIRE(assignment[t] < machines, "machine index out of range");
    bits[variable_index(t, assignment[t], machines)] = 1;
  }
  // Choose slack bits to absorb each machine's spare capacity (greedy
  // binary decomposition; exact when the spare is a multiple of the
  // granularity used at build time).
  for (std::size_t k = 0; k < machines; ++k) {
    double spare = instance.capacity(k) - instance.machine_load(assignment, k);
    const auto& slack_vars = qubo.capacity_slack[k];
    for (std::size_t j = slack_vars.size(); j-- > 0;) {
      // Weight of slack bit j is granularity * 2^j; recover it from the
      // registered constraint rather than re-deriving: the builder appended
      // coeffs in bit order, so weight = coeff in the final constraint.
      const auto& constraint =
          qubo.problem.constraints()[instance.num_tasks() + k];
      const double weight =
          constraint.coeffs[constraint.coeffs.size() - slack_vars.size() + j];
      if (spare + 1e-9 >= weight) {
        bits[slack_vars[j]] = 1;
        spare -= weight;
      }
    }
  }
  return bits;
}

AllocationInstance generate_random_allocation(std::size_t num_tasks,
                                              std::size_t num_machines,
                                              std::uint64_t seed,
                                              double slack_factor) {
  QROSS_REQUIRE(slack_factor >= 1.0, "slack factor must be >= 1");
  Rng rng(seed);
  std::vector<double> costs(num_tasks * num_machines);
  for (double& c : costs) c = static_cast<double>(rng.uniform_int(1, 20));
  std::vector<double> loads(num_tasks);
  double total_load = 0.0;
  for (double& l : loads) {
    l = static_cast<double>(rng.uniform_int(1, 8));
    total_load += l;
  }
  std::vector<double> capacities(num_machines);
  const double base =
      std::ceil(slack_factor * total_load / static_cast<double>(num_machines));
  for (double& c : capacities) {
    c = base + static_cast<double>(rng.uniform_int(0, 3));
  }
  return AllocationInstance(
      "alloc_t" + std::to_string(num_tasks) + "m" +
          std::to_string(num_machines) + "_s" + std::to_string(seed),
      num_tasks, num_machines, std::move(costs), std::move(loads),
      std::move(capacities));
}

AllocationExact solve_exact_allocation(const AllocationInstance& instance) {
  const std::size_t tasks = instance.num_tasks();
  const std::size_t machines = instance.num_machines();
  double combos = std::pow(static_cast<double>(machines),
                           static_cast<double>(tasks));
  QROSS_REQUIRE(combos <= 2e6, "exact allocation limited to m^n <= 2e6");

  AllocationExact best;
  best.cost = std::numeric_limits<double>::infinity();
  Assignment assignment(tasks, 0);
  const auto total = static_cast<std::uint64_t>(combos);
  for (std::uint64_t code = 0; code < total; ++code) {
    std::uint64_t c = code;
    for (std::size_t t = 0; t < tasks; ++t) {
      assignment[t] = static_cast<std::size_t>(c % machines);
      c /= machines;
    }
    if (!instance.respects_capacities(assignment)) continue;
    const double cost = instance.total_cost(assignment);
    if (cost < best.cost) {
      best.cost = cost;
      best.assignment = assignment;
      best.feasible = true;
    }
  }
  return best;
}

}  // namespace qross::allocation
