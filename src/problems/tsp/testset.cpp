#include "problems/tsp/testset.hpp"

#include <sstream>

#include "common/rng.hpp"
#include "problems/tsp/generators.hpp"
#include "problems/tsp/tsplib.hpp"

namespace qross::tsp {

std::vector<std::size_t> tsplib_like_sizes() {
  // Eleven sizes spanning the out-of-distribution range; the synthetic
  // training set stays below the smallest of these.  Capped at 20 cities
  // (400 QUBO variables) so the full Digital-Annealer benchmark sweep stays
  // tractable on one CPU core (see DESIGN.md §2).
  return {15, 15, 16, 16, 17, 17, 18, 18, 19, 20, 20};
}

std::vector<std::string> tsplib_like_testset_text() {
  const auto sizes = tsplib_like_sizes();
  std::vector<std::string> texts;
  texts.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    ClusteredGenConfig config;
    // Vary the geometry across the set: cluster count and tightness differ
    // per instance, like the mixed geographies of TSPLIB.
    config.min_clusters = 2 + i % 3;
    config.max_clusters = config.min_clusters + 2;
    config.cluster_spread = 0.04 + 0.02 * static_cast<double>(i % 4);
    config.outlier_fraction = 0.10 + 0.05 * static_cast<double>(i % 3);
    TspInstance instance =
        generate_clustered(sizes[i], derive_seed(0x75317531ULL, i), config);
    std::ostringstream out;
    write_tsplib(out, instance);
    texts.push_back(out.str());
  }
  return texts;
}

std::vector<TspInstance> tsplib_like_testset() {
  std::vector<TspInstance> instances;
  for (const auto& text : tsplib_like_testset_text()) {
    instances.push_back(parse_tsplib_string(text));
  }
  return instances;
}

}  // namespace qross::tsp
