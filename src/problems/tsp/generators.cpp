#include "problems/tsp/generators.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace qross::tsp {

TspInstance generate_uniform(std::size_t num_cities, std::uint64_t seed,
                             const UniformGenConfig& config) {
  QROSS_REQUIRE(num_cities >= 1, "need at least one city");
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(num_cities);
  for (std::size_t i = 0; i < num_cities; ++i) {
    pts.push_back({rng.uniform(0.0, config.width),
                   rng.uniform(0.0, config.height)});
  }
  return TspInstance("uniform_n" + std::to_string(num_cities) + "_s" +
                         std::to_string(seed),
                     std::move(pts));
}

TspInstance generate_exponential(std::size_t num_cities, std::uint64_t seed,
                                 const ExponentialGenConfig& config) {
  QROSS_REQUIRE(num_cities >= 1, "need at least one city");
  QROSS_REQUIRE(config.min_rate > 0.0 && config.max_rate >= config.min_rate,
                "invalid exponential rate range");
  Rng rng(seed);
  const double rate = rng.uniform(config.min_rate, config.max_rate);
  std::vector<Point> pts;
  pts.reserve(num_cities);
  for (std::size_t i = 0; i < num_cities; ++i) {
    pts.push_back({rng.exponential(rate), rng.exponential(rate)});
  }
  return TspInstance("exponential_n" + std::to_string(num_cities) + "_s" +
                         std::to_string(seed),
                     std::move(pts));
}

TspInstance generate_clustered(std::size_t num_cities, std::uint64_t seed,
                               const ClusteredGenConfig& config) {
  QROSS_REQUIRE(num_cities >= 1, "need at least one city");
  QROSS_REQUIRE(config.min_clusters >= 1 &&
                    config.max_clusters >= config.min_clusters,
                "invalid cluster count range");
  Rng rng(seed);
  const auto num_clusters = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(config.min_clusters),
      static_cast<std::int64_t>(config.max_clusters)));
  std::vector<Point> centers;
  centers.reserve(num_clusters);
  for (std::size_t c = 0; c < num_clusters; ++c) {
    centers.push_back({rng.uniform(0.0, config.width),
                       rng.uniform(0.0, config.height)});
  }
  const double diag = std::hypot(config.width, config.height);
  const double spread = config.cluster_spread * diag;

  std::vector<Point> pts;
  pts.reserve(num_cities);
  for (std::size_t i = 0; i < num_cities; ++i) {
    if (rng.uniform() < config.outlier_fraction) {
      pts.push_back({rng.uniform(0.0, config.width),
                     rng.uniform(0.0, config.height)});
      continue;
    }
    const auto& center =
        centers[static_cast<std::size_t>(rng.uniform_int(centers.size()))];
    const double x =
        std::clamp(rng.normal(center.x, spread), 0.0, config.width);
    const double y =
        std::clamp(rng.normal(center.y, spread), 0.0, config.height);
    pts.push_back({x, y});
  }
  return TspInstance("clustered_n" + std::to_string(num_cities) + "_s" +
                         std::to_string(seed),
                     std::move(pts));
}

std::vector<TspInstance> generate_synthetic_dataset(std::size_t num_instances,
                                                    std::size_t min_cities,
                                                    std::size_t max_cities,
                                                    std::uint64_t seed) {
  QROSS_REQUIRE(min_cities >= 1 && max_cities >= min_cities,
                "invalid city range");
  Rng rng(seed);
  std::vector<TspInstance> instances;
  instances.reserve(num_instances);
  for (std::size_t i = 0; i < num_instances; ++i) {
    const auto n = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(min_cities),
                        static_cast<std::int64_t>(max_cities)));
    const std::uint64_t child = derive_seed(seed, i);
    // Alternate the two coordinate distributions of appendix D.
    if (i % 2 == 0) {
      instances.push_back(generate_uniform(n, child));
    } else {
      instances.push_back(generate_exponential(n, child));
    }
  }
  return instances;
}

}  // namespace qross::tsp
