#pragma once

// Synthetic TSP instance generators (paper appendix D).
//
// The paper's synthetic dataset draws city coordinates from uniform and
// exponential distributions (the exponential rate itself drawn uniformly
// from a range).  The clustered generator produces the out-of-distribution
// "real-world-like" test set standing in for TSPLIB (cities in dense urban
// clusters with a few outliers), used by the Fig. 4 / Table 1 experiments.

#include <cstdint>
#include <vector>

#include "problems/tsp/instance.hpp"

namespace qross::tsp {

struct UniformGenConfig {
  double width = 100.0;
  double height = 100.0;
};

/// Cities i.i.d. uniform on [0, width] x [0, height].
TspInstance generate_uniform(std::size_t num_cities, std::uint64_t seed,
                             const UniformGenConfig& config = {});

struct ExponentialGenConfig {
  /// The exponential rate is drawn from U[min_rate, max_rate] per instance.
  double min_rate = 0.02;
  double max_rate = 0.10;
};

/// Coordinates with exponentially-distributed components (heavy corner
/// density, long tail), per paper appendix D.
TspInstance generate_exponential(std::size_t num_cities, std::uint64_t seed,
                                 const ExponentialGenConfig& config = {});

struct ClusteredGenConfig {
  double width = 100.0;
  double height = 100.0;
  std::size_t min_clusters = 2;
  std::size_t max_clusters = 5;
  /// Cluster radius as a fraction of the bounding-box diagonal.
  double cluster_spread = 0.06;
  /// Fraction of cities scattered uniformly instead of in clusters.
  double outlier_fraction = 0.15;
};

/// Cities grouped into Gaussian clusters plus uniform outliers.
TspInstance generate_clustered(std::size_t num_cities, std::uint64_t seed,
                               const ClusteredGenConfig& config = {});

/// The paper's synthetic dataset recipe: a mix of uniform and exponential
/// instances with sizes drawn uniformly from [min_cities, max_cities].
std::vector<TspInstance> generate_synthetic_dataset(std::size_t num_instances,
                                                    std::size_t min_cities,
                                                    std::size_t max_cities,
                                                    std::uint64_t seed);

}  // namespace qross::tsp
