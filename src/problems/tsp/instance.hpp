#pragma once

// Travelling Salesman Problem instance: a complete weighted graph given by a
// symmetric distance matrix, optionally backed by 2-D city coordinates.
// Tours are permutations of {0..n-1}; tour length closes the cycle.

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace qross::tsp {

using Tour = std::vector<std::size_t>;

struct Point {
  double x = 0.0;
  double y = 0.0;
};

class TspInstance {
 public:
  /// From an explicit symmetric distance matrix (row-major n x n).
  TspInstance(std::string name, std::size_t num_cities,
              std::vector<double> distances);

  /// From Euclidean coordinates; the distance matrix is computed.
  TspInstance(std::string name, std::vector<Point> coordinates);

  /// From coordinates plus an explicit (possibly rounded, e.g. TSPLIB
  /// EUC_2D) distance matrix.  Coordinates are kept for feature extraction.
  TspInstance(std::string name, std::vector<Point> coordinates,
              std::vector<double> distances);

  const std::string& name() const { return name_; }
  std::size_t num_cities() const { return n_; }

  double distance(std::size_t u, std::size_t v) const {
    return distances_[u * n_ + v];
  }
  std::span<const double> distance_matrix() const { return distances_; }
  const std::optional<std::vector<Point>>& coordinates() const {
    return coordinates_;
  }

  /// Length of the closed tour visiting cities in the given order.
  double tour_length(std::span<const std::size_t> tour) const;

  /// True iff `tour` is a permutation of {0..n-1}.
  bool is_valid_tour(std::span<const std::size_t> tour) const;

  /// Largest / smallest nonzero pairwise distance and the mean distance;
  /// used for feature extraction and parameter-range heuristics.
  double max_distance() const;
  double min_positive_distance() const;
  double mean_distance() const;

  /// Returns a copy with every distance replaced by d'(u,v) = d(u,v) - pi[u]
  /// - pi[v] (Held–Karp shift; see preprocess.hpp).  Coordinates are dropped
  /// since the shifted matrix is generally non-Euclidean.
  TspInstance with_shifted_distances(std::span<const double> pi,
                                     std::string new_name) const;

 private:
  std::string name_;
  std::size_t n_;
  std::vector<double> distances_;
  std::optional<std::vector<Point>> coordinates_;
};

/// Euclidean distance between two points.
double euclidean(const Point& a, const Point& b);

}  // namespace qross::tsp
