#pragma once

// QUBO formulation of the TSP (Lucas 2014; paper §4.1, eqs. (4)-(6)).
//
// An n-city instance uses n^2 binary variables x_{v,j} ("city v is visited
// j-th", variable index v*n + j).  The objective
//
//   HB(x) = sum_{u != v} d_uv sum_j x_{u,j} x_{v,(j+1) mod n}
//
// is the tour length, and the 2n equality constraints
//
//   sum_j x_{v,j} = 1  (every city once)      sum_v x_{v,j} = 1  (every slot)
//
// enter the QUBO as the penalty A * HA(x).  Feasible assignments are exactly
// the permutation matrices, and on them the QUBO energy equals the tour
// length.

#include <optional>

#include "qubo/builder.hpp"
#include "problems/tsp/instance.hpp"

namespace qross::tsp {

/// Index of variable "city v in slot j" for an n-city instance.
inline std::size_t variable_index(std::size_t v, std::size_t j,
                                  std::size_t n) {
  return v * n + j;
}

/// Builds the constrained problem whose QUBO relaxation is eq. (4).
qubo::ConstrainedProblem build_tsp_problem(const TspInstance& instance);

/// Decodes an assignment into a tour.  Returns nullopt unless the assignment
/// is exactly a permutation matrix (i.e. feasible).
std::optional<Tour> decode_tour(const TspInstance& instance,
                                std::span<const std::uint8_t> assignment);

/// Encodes a tour into the corresponding binary assignment.
std::vector<std::uint8_t> encode_tour(const TspInstance& instance,
                                      std::span<const std::size_t> tour);

}  // namespace qross::tsp
