#include "problems/tsp/exact.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/assert.hpp"

namespace qross::tsp {

ExactResult solve_held_karp(const TspInstance& instance) {
  const std::size_t n = instance.num_cities();
  QROSS_REQUIRE(n <= 24, "Held-Karp limited to 24 cities");
  if (n == 1) return {{0}, 0.0};

  // dp[mask][k]: cheapest path visiting exactly `mask` (always containing
  // city 0), starting at 0 and ending at k.
  const std::size_t full = std::size_t{1} << n;
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dp(full * n, inf);
  std::vector<std::int32_t> parent(full * n, -1);
  dp[(std::size_t{1} << 0) * n + 0] = 0.0;

  for (std::size_t mask = 1; mask < full; ++mask) {
    if ((mask & 1) == 0) continue;  // paths always include city 0
    for (std::size_t k = 0; k < n; ++k) {
      if ((mask & (std::size_t{1} << k)) == 0) continue;
      const double cost = dp[mask * n + k];
      if (cost == inf) continue;
      for (std::size_t m = 1; m < n; ++m) {
        if (mask & (std::size_t{1} << m)) continue;
        const std::size_t next_mask = mask | (std::size_t{1} << m);
        const double cand = cost + instance.distance(k, m);
        if (cand < dp[next_mask * n + m]) {
          dp[next_mask * n + m] = cand;
          parent[next_mask * n + m] = static_cast<std::int32_t>(k);
        }
      }
    }
  }

  const std::size_t all = full - 1;
  double best = inf;
  std::size_t best_end = 0;
  for (std::size_t k = 1; k < n; ++k) {
    const double cand = dp[all * n + k] + instance.distance(k, 0);
    if (cand < best) {
      best = cand;
      best_end = k;
    }
  }

  // Reconstruct the path 0 -> ... -> best_end.
  Tour tour(n);
  std::size_t mask = all;
  std::size_t k = best_end;
  for (std::size_t pos = n; pos-- > 1;) {
    tour[pos] = k;
    const auto p = static_cast<std::size_t>(parent[mask * n + k]);
    mask ^= (std::size_t{1} << k);
    k = p;
  }
  tour[0] = 0;
  QROSS_ASSERT(instance.is_valid_tour(tour));
  return {std::move(tour), best};
}

namespace {

void brute_force_recurse(const TspInstance& instance, Tour& tour,
                         std::size_t depth, double length, ExactResult& best) {
  const std::size_t n = instance.num_cities();
  if (depth == n) {
    const double total = length + instance.distance(tour[n - 1], tour[0]);
    if (total < best.length) {
      best.length = total;
      best.tour = tour;
    }
    return;
  }
  for (std::size_t i = depth; i < n; ++i) {
    std::swap(tour[depth], tour[i]);
    const double step = instance.distance(tour[depth - 1], tour[depth]);
    if (length + step < best.length) {
      brute_force_recurse(instance, tour, depth + 1, length + step, best);
    }
    std::swap(tour[depth], tour[i]);
  }
}

}  // namespace

ExactResult solve_brute_force(const TspInstance& instance) {
  const std::size_t n = instance.num_cities();
  QROSS_REQUIRE(n <= 10, "brute force limited to 10 cities");
  if (n == 1) return {{0}, 0.0};
  Tour tour(n);
  for (std::size_t i = 0; i < n; ++i) tour[i] = i;
  ExactResult best;
  best.length = std::numeric_limits<double>::infinity();
  brute_force_recurse(instance, tour, 1, 0.0, best);
  return best;
}

}  // namespace qross::tsp
