#pragma once

// TSP construction and improvement heuristics.
//
// Used (a) as the reference "near-optimal fitness" for gap normalisation on
// instances too large for Held–Karp, and (b) by the feature extractor, which
// feeds the greedy tour length to the surrogate as a scale indicator.

#include <cstdint>

#include "problems/tsp/instance.hpp"

namespace qross::tsp {

/// Greedy nearest-neighbour tour from the given start city.
Tour nearest_neighbor_tour(const TspInstance& instance, std::size_t start = 0);

/// 2-opt local search: repeatedly reverses segments while that shortens the
/// tour; first-improvement sweeps until a full pass finds nothing.  Returns
/// the improved tour (never longer than the input).
Tour two_opt(const TspInstance& instance, Tour tour,
             std::size_t max_passes = 64);

/// Or-opt: relocates segments of length 1-3 to better positions; applied
/// after 2-opt it escapes some of its local minima.
Tour or_opt(const TspInstance& instance, Tour tour,
            std::size_t max_passes = 16);

/// Strong reference solution: Held–Karp when n is small enough, otherwise
/// the best of nearest-neighbour starts (all cities for small n, sampled for
/// large) plus random restarts, each polished with 2-opt and Or-opt.
struct ReferenceSolution {
  Tour tour;
  double length = 0.0;
  bool exact = false;  ///< true if produced by Held–Karp
};

ReferenceSolution reference_solution(const TspInstance& instance,
                                     std::uint64_t seed = 7,
                                     std::size_t random_restarts = 4);

}  // namespace qross::tsp
