#pragma once

// TSPLIB file format support (Reinelt 1991).
//
// Parses the subset of the format the paper's real-world experiments need:
// symmetric instances with EUC_2D / CEIL_2D / ATT node coordinates, or
// EXPLICIT edge weights in FULL_MATRIX, UPPER_ROW or LOWER_DIAG_ROW layout.
// A writer is provided so the embedded test set round-trips through the
// genuine on-disk format.

#include <istream>
#include <ostream>
#include <string>

#include "problems/tsp/instance.hpp"

namespace qross::tsp {

/// Parses a TSPLIB instance from a stream.  Throws std::invalid_argument on
/// malformed input or unsupported edge-weight types.
TspInstance parse_tsplib(std::istream& input);

/// Parses from a string (convenience wrapper).
TspInstance parse_tsplib_string(const std::string& text);

/// Parses from a file path.
TspInstance load_tsplib_file(const std::string& path);

/// Writes an instance in TSPLIB format: NODE_COORD_SECTION when coordinates
/// are available (EUC_2D), otherwise an EXPLICIT FULL_MATRIX.
void write_tsplib(std::ostream& output, const TspInstance& instance);

}  // namespace qross::tsp
