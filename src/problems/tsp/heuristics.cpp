#include "problems/tsp/heuristics.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "problems/tsp/exact.hpp"

namespace qross::tsp {

Tour nearest_neighbor_tour(const TspInstance& instance, std::size_t start) {
  const std::size_t n = instance.num_cities();
  QROSS_REQUIRE(start < n, "start city out of range");
  Tour tour;
  tour.reserve(n);
  std::vector<bool> visited(n, false);
  std::size_t current = start;
  tour.push_back(current);
  visited[current] = true;
  for (std::size_t step = 1; step < n; ++step) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t next = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (visited[v]) continue;
      const double d = instance.distance(current, v);
      if (d < best) {
        best = d;
        next = v;
      }
    }
    QROSS_ASSERT(next < n);
    tour.push_back(next);
    visited[next] = true;
    current = next;
  }
  return tour;
}

Tour two_opt(const TspInstance& instance, Tour tour, std::size_t max_passes) {
  const std::size_t n = tour.size();
  QROSS_REQUIRE(instance.is_valid_tour(tour), "two_opt needs a valid tour");
  if (n < 4) return tour;
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      for (std::size_t k = i + 2; k < n; ++k) {
        if (i == 0 && k == n - 1) continue;  // same edge pair
        const std::size_t a = tour[i], b = tour[i + 1];
        const std::size_t c = tour[k], d = tour[(k + 1) % n];
        const double delta = instance.distance(a, c) + instance.distance(b, d) -
                             instance.distance(a, b) - instance.distance(c, d);
        if (delta < -1e-12) {
          std::reverse(tour.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                       tour.begin() + static_cast<std::ptrdiff_t>(k) + 1);
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  return tour;
}

Tour or_opt(const TspInstance& instance, Tour tour, std::size_t max_passes) {
  const std::size_t n = tour.size();
  QROSS_REQUIRE(instance.is_valid_tour(tour), "or_opt needs a valid tour");
  if (n < 5) return tour;
  auto length = [&](const Tour& t) { return instance.tour_length(t); };
  double best_len = length(tour);
  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (std::size_t seg = 1; seg <= 3; ++seg) {
      for (std::size_t i = 0; i + seg <= n; ++i) {
        // Remove tour[i .. i+seg) and reinsert at every other position.
        Tour removed(tour.begin() + static_cast<std::ptrdiff_t>(i),
                     tour.begin() + static_cast<std::ptrdiff_t>(i + seg));
        Tour rest;
        rest.reserve(n - seg);
        rest.insert(rest.end(), tour.begin(),
                    tour.begin() + static_cast<std::ptrdiff_t>(i));
        rest.insert(rest.end(),
                    tour.begin() + static_cast<std::ptrdiff_t>(i + seg),
                    tour.end());
        for (std::size_t pos = 0; pos <= rest.size(); ++pos) {
          if (pos == i) continue;  // original position
          Tour candidate;
          candidate.reserve(n);
          candidate.insert(candidate.end(), rest.begin(),
                           rest.begin() + static_cast<std::ptrdiff_t>(pos));
          candidate.insert(candidate.end(), removed.begin(), removed.end());
          candidate.insert(candidate.end(),
                           rest.begin() + static_cast<std::ptrdiff_t>(pos),
                           rest.end());
          const double cand_len = length(candidate);
          if (cand_len < best_len - 1e-12) {
            tour = std::move(candidate);
            best_len = cand_len;
            improved = true;
            break;
          }
        }
        if (improved) break;
      }
      if (improved) break;
    }
    if (!improved) break;
  }
  return tour;
}

ReferenceSolution reference_solution(const TspInstance& instance,
                                     std::uint64_t seed,
                                     std::size_t random_restarts) {
  const std::size_t n = instance.num_cities();
  if (n <= 14) {
    ExactResult exact = solve_held_karp(instance);
    return {std::move(exact.tour), exact.length, true};
  }

  ReferenceSolution best;
  best.length = std::numeric_limits<double>::infinity();
  auto consider = [&](Tour candidate) {
    candidate = two_opt(instance, std::move(candidate));
    candidate = or_opt(instance, std::move(candidate));
    candidate = two_opt(instance, std::move(candidate));
    const double len = instance.tour_length(candidate);
    if (len < best.length) {
      best.length = len;
      best.tour = std::move(candidate);
    }
  };

  // Nearest-neighbour from every start (sampled when n is large).
  Rng rng(seed);
  const std::size_t nn_starts = std::min<std::size_t>(n, 16);
  auto starts = rng.permutation(n);
  starts.resize(nn_starts);
  for (std::size_t start : starts) {
    consider(nearest_neighbor_tour(instance, start));
  }
  for (std::size_t r = 0; r < random_restarts; ++r) {
    consider(rng.permutation(n));
  }
  return best;
}

}  // namespace qross::tsp
