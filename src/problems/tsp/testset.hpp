#pragma once

// The "real-world" evaluation set (paper §5.2).
//
// The paper evaluates on eleven TSPLIB instances with 14 < N < 90.  TSPLIB
// files are not redistributable inside this repository, so we substitute a
// deterministic set of eleven clustered-city instances (see DESIGN.md):
// clustered geometry is out-of-distribution relative to the uniform /
// exponential synthetic training set in both spatial structure and size,
// which is the property §5.2 actually tests.  Each instance is materialised
// through the TSPLIB writer/parser so the on-disk pipeline is exercised end
// to end, and users can swap in genuine TSPLIB files via load_tsplib_file.

#include <vector>

#include "problems/tsp/instance.hpp"

namespace qross::tsp {

/// Sizes of the eleven instances.  Scaled down from the paper's 14 < N < 90
/// so that the full benchmark suite runs on one CPU core (see DESIGN.md §2);
/// still strictly larger than the synthetic training sizes.
std::vector<std::size_t> tsplib_like_sizes();

/// The eleven deterministic clustered instances, round-tripped through the
/// TSPLIB text format.
std::vector<TspInstance> tsplib_like_testset();

/// The same instances as TSPLIB-format text, keyed by instance order.
std::vector<std::string> tsplib_like_testset_text();

}  // namespace qross::tsp
