#include "problems/tsp/tsplib.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "common/assert.hpp"

namespace qross::tsp {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

/// TSPLIB pseudo-Euclidean distance for ATT instances.
double att_distance(const Point& a, const Point& b) {
  const double xd = a.x - b.x;
  const double yd = a.y - b.y;
  const double rij = std::sqrt((xd * xd + yd * yd) / 10.0);
  const double tij = std::round(rij);
  return tij < rij ? tij + 1.0 : tij;
}

}  // namespace

TspInstance parse_tsplib(std::istream& input) {
  std::string name = "unnamed";
  std::string edge_weight_type;
  std::string edge_weight_format;
  std::size_t dimension = 0;
  std::vector<Point> coords;
  std::vector<double> weights;  // flattened values of EDGE_WEIGHT_SECTION

  std::string line;
  std::string section;
  while (std::getline(input, line)) {
    line = trim(line);
    if (line.empty()) continue;
    const std::string upper_line = upper(line);
    if (upper_line == "EOF") break;

    // Keyword lines have the form KEY : VALUE (colon optional spacing).
    const auto colon = line.find(':');
    const bool is_section = upper_line.find("SECTION") != std::string::npos;
    if (!is_section && colon != std::string::npos) {
      const std::string key = upper(trim(line.substr(0, colon)));
      const std::string value = trim(line.substr(colon + 1));
      if (key == "NAME") {
        name = value;
      } else if (key == "TYPE") {
        const std::string t = upper(value);
        QROSS_REQUIRE(t == "TSP", "only TYPE: TSP supported");
      } else if (key == "DIMENSION") {
        dimension = static_cast<std::size_t>(std::stoul(value));
      } else if (key == "EDGE_WEIGHT_TYPE") {
        edge_weight_type = upper(value);
      } else if (key == "EDGE_WEIGHT_FORMAT") {
        edge_weight_format = upper(value);
      }
      // COMMENT, DISPLAY_DATA_TYPE etc. are ignored.
      continue;
    }

    if (is_section) {
      section = upper_line;
      continue;
    }

    if (section == "NODE_COORD_SECTION") {
      std::istringstream ss(line);
      std::size_t index = 0;
      Point p;
      QROSS_REQUIRE(static_cast<bool>(ss >> index >> p.x >> p.y),
                    "malformed node coordinate line");
      coords.push_back(p);
    } else if (section == "EDGE_WEIGHT_SECTION") {
      std::istringstream ss(line);
      double w = 0.0;
      while (ss >> w) weights.push_back(w);
    } else if (section == "DISPLAY_DATA_SECTION") {
      // Display coordinates are cosmetic; skip.
    } else if (!section.empty()) {
      throw std::invalid_argument("unsupported TSPLIB section: " + section);
    }
  }

  QROSS_REQUIRE(dimension >= 1, "missing or invalid DIMENSION");

  if (edge_weight_type == "EUC_2D" || edge_weight_type == "CEIL_2D" ||
      edge_weight_type == "ATT") {
    QROSS_REQUIRE(coords.size() == dimension,
                  "coordinate count does not match DIMENSION");
    std::vector<double> dist(dimension * dimension, 0.0);
    for (std::size_t u = 0; u < dimension; ++u) {
      for (std::size_t v = u + 1; v < dimension; ++v) {
        double d = 0.0;
        if (edge_weight_type == "EUC_2D") {
          // TSPLIB rounds Euclidean distances to the nearest integer.
          d = std::round(euclidean(coords[u], coords[v]));
        } else if (edge_weight_type == "CEIL_2D") {
          d = std::ceil(euclidean(coords[u], coords[v]));
        } else {
          d = att_distance(coords[u], coords[v]);
        }
        dist[u * dimension + v] = d;
        dist[v * dimension + u] = d;
      }
    }
    // Keep the (rounded, per TSPLIB convention) matrix and the coordinates.
    return TspInstance(name, std::move(coords), std::move(dist));
  }

  if (edge_weight_type == "EXPLICIT") {
    std::vector<double> dist(dimension * dimension, 0.0);
    const std::string fmt =
        edge_weight_format.empty() ? "FULL_MATRIX" : edge_weight_format;
    if (fmt == "FULL_MATRIX") {
      QROSS_REQUIRE(weights.size() == dimension * dimension,
                    "FULL_MATRIX weight count mismatch");
      dist = weights;
    } else if (fmt == "UPPER_ROW") {
      QROSS_REQUIRE(weights.size() == dimension * (dimension - 1) / 2,
                    "UPPER_ROW weight count mismatch");
      std::size_t k = 0;
      for (std::size_t u = 0; u < dimension; ++u) {
        for (std::size_t v = u + 1; v < dimension; ++v) {
          dist[u * dimension + v] = weights[k];
          dist[v * dimension + u] = weights[k];
          ++k;
        }
      }
    } else if (fmt == "LOWER_DIAG_ROW") {
      QROSS_REQUIRE(weights.size() == dimension * (dimension + 1) / 2,
                    "LOWER_DIAG_ROW weight count mismatch");
      std::size_t k = 0;
      for (std::size_t u = 0; u < dimension; ++u) {
        for (std::size_t v = 0; v <= u; ++v) {
          dist[u * dimension + v] = weights[k];
          dist[v * dimension + u] = weights[k];
          ++k;
        }
      }
    } else {
      throw std::invalid_argument("unsupported EDGE_WEIGHT_FORMAT: " + fmt);
    }
    return TspInstance(name, dimension, std::move(dist));
  }

  throw std::invalid_argument("unsupported EDGE_WEIGHT_TYPE: " +
                              (edge_weight_type.empty() ? "<missing>"
                                                        : edge_weight_type));
}

TspInstance parse_tsplib_string(const std::string& text) {
  std::istringstream ss(text);
  return parse_tsplib(ss);
}

TspInstance load_tsplib_file(const std::string& path) {
  std::ifstream file(path);
  QROSS_REQUIRE(file.good(), "cannot open TSPLIB file: " + path);
  return parse_tsplib(file);
}

void write_tsplib(std::ostream& output, const TspInstance& instance) {
  const std::size_t n = instance.num_cities();
  output << "NAME : " << instance.name() << "\n";
  output << "TYPE : TSP\n";
  output << "COMMENT : written by qross\n";
  output << "DIMENSION : " << n << "\n";
  if (instance.coordinates().has_value()) {
    output << "EDGE_WEIGHT_TYPE : EUC_2D\n";
    output << "NODE_COORD_SECTION\n";
    const auto& coords = *instance.coordinates();
    output.precision(12);
    for (std::size_t i = 0; i < n; ++i) {
      output << (i + 1) << ' ' << coords[i].x << ' ' << coords[i].y << "\n";
    }
  } else {
    output << "EDGE_WEIGHT_TYPE : EXPLICIT\n";
    output << "EDGE_WEIGHT_FORMAT : FULL_MATRIX\n";
    output << "EDGE_WEIGHT_SECTION\n";
    output.precision(12);
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = 0; v < n; ++v) {
        output << instance.distance(u, v) << (v + 1 == n ? "\n" : " ");
      }
    }
  }
  output << "EOF\n";
}

}  // namespace qross::tsp
