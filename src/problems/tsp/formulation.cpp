#include "problems/tsp/formulation.hpp"

#include "common/assert.hpp"

namespace qross::tsp {

qubo::ConstrainedProblem build_tsp_problem(const TspInstance& instance) {
  const std::size_t n = instance.num_cities();
  qubo::ConstrainedProblem problem(n * n);

  // Objective HB: distance between consecutive slots, cyclically.
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u == v) continue;
      const double d = instance.distance(u, v);
      if (d == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t next = (j + 1) % n;
        problem.add_objective_term(variable_index(u, j, n),
                                   variable_index(v, next, n), d);
      }
    }
  }

  // Constraint rows: each city in exactly one slot.
  for (std::size_t v = 0; v < n; ++v) {
    qubo::LinearConstraint c;
    c.rhs = 1.0;
    for (std::size_t j = 0; j < n; ++j) {
      c.vars.push_back(variable_index(v, j, n));
      c.coeffs.push_back(1.0);
    }
    problem.add_constraint(std::move(c));
  }
  // Each slot holds exactly one city.
  for (std::size_t j = 0; j < n; ++j) {
    qubo::LinearConstraint c;
    c.rhs = 1.0;
    for (std::size_t v = 0; v < n; ++v) {
      c.vars.push_back(variable_index(v, j, n));
      c.coeffs.push_back(1.0);
    }
    problem.add_constraint(std::move(c));
  }
  return problem;
}

std::optional<Tour> decode_tour(const TspInstance& instance,
                                std::span<const std::uint8_t> assignment) {
  const std::size_t n = instance.num_cities();
  QROSS_REQUIRE(assignment.size() == n * n, "assignment size mismatch");
  Tour tour(n, n);  // n == "unset"
  std::vector<bool> city_used(n, false);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t j = 0; j < n; ++j) {
      if (assignment[variable_index(v, j, n)] == 0) continue;
      if (tour[j] != n || city_used[v]) return std::nullopt;  // clash
      tour[j] = v;
      city_used[v] = true;
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (tour[j] == n) return std::nullopt;  // empty slot
  }
  return tour;
}

std::vector<std::uint8_t> encode_tour(const TspInstance& instance,
                                      std::span<const std::size_t> tour) {
  const std::size_t n = instance.num_cities();
  QROSS_REQUIRE(instance.is_valid_tour(tour), "not a valid tour");
  std::vector<std::uint8_t> x(n * n, 0);
  for (std::size_t j = 0; j < n; ++j) {
    x[variable_index(tour[j], j, n)] = 1;
  }
  return x;
}

}  // namespace qross::tsp
