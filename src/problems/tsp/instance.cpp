#include "problems/tsp/instance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace qross::tsp {

double euclidean(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

TspInstance::TspInstance(std::string name, std::size_t num_cities,
                         std::vector<double> distances)
    : name_(std::move(name)), n_(num_cities), distances_(std::move(distances)) {
  QROSS_REQUIRE(n_ >= 1, "TSP needs at least one city");
  QROSS_REQUIRE(distances_.size() == n_ * n_, "distance matrix size mismatch");
  for (std::size_t u = 0; u < n_; ++u) {
    QROSS_REQUIRE(distances_[u * n_ + u] == 0.0, "nonzero self-distance");
    for (std::size_t v = u + 1; v < n_; ++v) {
      QROSS_REQUIRE(
          std::abs(distances_[u * n_ + v] - distances_[v * n_ + u]) < 1e-9,
          "distance matrix must be symmetric");
    }
  }
}

TspInstance::TspInstance(std::string name, std::vector<Point> coordinates)
    : name_(std::move(name)), n_(coordinates.size()) {
  QROSS_REQUIRE(n_ >= 1, "TSP needs at least one city");
  distances_.resize(n_ * n_, 0.0);
  for (std::size_t u = 0; u < n_; ++u) {
    for (std::size_t v = u + 1; v < n_; ++v) {
      const double d = euclidean(coordinates[u], coordinates[v]);
      distances_[u * n_ + v] = d;
      distances_[v * n_ + u] = d;
    }
  }
  coordinates_ = std::move(coordinates);
}

TspInstance::TspInstance(std::string name, std::vector<Point> coordinates,
                         std::vector<double> distances)
    : TspInstance(std::move(name), coordinates.size(), std::move(distances)) {
  coordinates_ = std::move(coordinates);
}

double TspInstance::tour_length(std::span<const std::size_t> tour) const {
  QROSS_REQUIRE(tour.size() == n_, "tour length mismatch");
  double total = 0.0;
  for (std::size_t k = 0; k < n_; ++k) {
    total += distance(tour[k], tour[(k + 1) % n_]);
  }
  return total;
}

bool TspInstance::is_valid_tour(std::span<const std::size_t> tour) const {
  if (tour.size() != n_) return false;
  std::vector<bool> seen(n_, false);
  for (std::size_t city : tour) {
    if (city >= n_ || seen[city]) return false;
    seen[city] = true;
  }
  return true;
}

double TspInstance::max_distance() const {
  double m = 0.0;
  for (double d : distances_) m = std::max(m, d);
  return m;
}

double TspInstance::min_positive_distance() const {
  double m = std::numeric_limits<double>::infinity();
  for (double d : distances_) {
    if (d > 0.0) m = std::min(m, d);
  }
  return std::isfinite(m) ? m : 0.0;
}

double TspInstance::mean_distance() const {
  if (n_ < 2) return 0.0;
  double sum = 0.0;
  for (std::size_t u = 0; u < n_; ++u) {
    for (std::size_t v = u + 1; v < n_; ++v) sum += distance(u, v);
  }
  return sum / (static_cast<double>(n_) * static_cast<double>(n_ - 1) / 2.0);
}

TspInstance TspInstance::with_shifted_distances(std::span<const double> pi,
                                                std::string new_name) const {
  QROSS_REQUIRE(pi.size() == n_, "potential vector size mismatch");
  std::vector<double> shifted(n_ * n_, 0.0);
  for (std::size_t u = 0; u < n_; ++u) {
    for (std::size_t v = 0; v < n_; ++v) {
      if (u == v) continue;
      shifted[u * n_ + v] = distance(u, v) - pi[u] - pi[v];
    }
  }
  return TspInstance(std::move(new_name), n_, std::move(shifted));
}

}  // namespace qross::tsp
