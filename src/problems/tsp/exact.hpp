#pragma once

// Exact TSP solvers for reference optima.
//
// The benchmark harness normalises solution quality as an optimality gap, so
// it needs the true optimum (small n: Held–Karp) or a strong reference
// (larger n: multi-start nearest-neighbour + 2-opt, see heuristics.hpp).

#include <cstddef>

#include "problems/tsp/instance.hpp"

namespace qross::tsp {

struct ExactResult {
  Tour tour;
  double length = 0.0;
};

/// Held–Karp dynamic program, O(n^2 * 2^n) time and O(n * 2^n) memory.
/// Practical up to ~20 cities; QROSS_REQUIREs n <= 24 as a guard.
ExactResult solve_held_karp(const TspInstance& instance);

/// Brute-force enumeration of all (n-1)!/2 tours; for cross-checking the DP
/// in tests.  Requires n <= 10.
ExactResult solve_brute_force(const TspInstance& instance);

}  // namespace qross::tsp
