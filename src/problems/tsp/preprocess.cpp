#include "problems/tsp/preprocess.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/stats.hpp"

namespace qross::tsp {

double offdiagonal_variance(const TspInstance& instance) {
  const std::size_t n = instance.num_cities();
  RunningStats rs;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u != v) rs.add(instance.distance(u, v));
    }
  }
  return rs.variance();
}

std::vector<double> minimize_distance_variance(const TspInstance& instance,
                                               std::size_t max_iterations,
                                               double tolerance) {
  const std::size_t n = instance.num_cities();
  std::vector<double> pi(n, 0.0);
  if (n < 3) return pi;  // fewer than 3 cities: variance already trivial

  // Minimise F(pi, c) = sum_{u != v} (d_uv - pi_u - pi_v - c)^2 by
  // Gauss-Seidel.  Stationarity:
  //   pi_k = mean_{j != k} (d_kj - pi_j) - c
  //   c    = mean_{u != v} (d_uv - pi_u - pi_v)
  double c = instance.mean_distance();
  double pi_sum = 0.0;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    double max_change = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      double row_sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j != k) row_sum += instance.distance(k, j) - pi[j];
      }
      const double updated = row_sum / static_cast<double>(n - 1) - c;
      max_change = std::max(max_change, std::abs(updated - pi[k]));
      pi_sum += updated - pi[k];
      pi[k] = updated;
    }
    // Refresh c from the residual means (O(n) via precomputed sums).
    double d_sum = 0.0;
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = u + 1; v < n; ++v) d_sum += instance.distance(u, v);
    }
    const double pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
    c = (d_sum - static_cast<double>(n - 1) * pi_sum) / pairs;
    if (max_change < tolerance) break;
  }
  return pi;
}

double MvodmResult::to_original_length(double shifted_length,
                                       std::size_t num_cities,
                                       double pi_total) const {
  // d' = d - pi_u - pi_v + s over n tour edges:
  //   L' = L - 2 * sum(pi) + n * s
  return shifted_length + 2.0 * pi_total -
         static_cast<double>(num_cities) * edge_offset;
}

MvodmResult mvodm_preprocess(const TspInstance& instance, double min_edge) {
  const std::size_t n = instance.num_cities();
  if (min_edge < 0.0) min_edge = 0.01 * instance.mean_distance();

  std::vector<double> pi = minimize_distance_variance(instance);

  // Smallest shifted off-diagonal value determines the positivity offset.
  double min_shifted = std::numeric_limits<double>::infinity();
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u == v) continue;
      min_shifted = std::min(min_shifted, instance.distance(u, v) - pi[u] - pi[v]);
    }
  }
  if (!std::isfinite(min_shifted)) min_shifted = 0.0;
  const double offset = std::max(0.0, min_edge - min_shifted);

  std::vector<double> shifted(n * n, 0.0);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u == v) continue;
      shifted[u * n + v] = instance.distance(u, v) - pi[u] - pi[v] + offset;
    }
  }

  MvodmResult result{
      TspInstance(instance.name() + "_mvodm", n, std::move(shifted)),
      std::move(pi), offset, offdiagonal_variance(instance), 0.0};
  result.shifted_variance = offdiagonal_variance(result.shifted);
  return result;
}

}  // namespace qross::tsp
