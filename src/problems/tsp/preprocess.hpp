#pragma once

// MVODM distance-matrix pre-processing (paper appendix E).
//
// Held & Karp showed that shifting d'(u,v) = d(u,v) - pi_u - pi_v changes
// every closed tour's length by the same constant (-2 * sum_u pi_u), so the
// optimal tour is invariant.  Wang, Rao & Hong's MVODM picks pi minimising
// the variance of the shifted off-diagonal entries, which flattens the
// distance scale; the paper applies it before building the QUBO so that
// instances land on comparable relaxation-parameter ranges.
//
// We additionally re-offset edges so the shifted distances stay positive
// (the minimum-fitness integral of eq. (2) assumes non-negative fitness);
// a uniform per-edge offset s changes every tour by n*s, preserving the
// optimum as well.

#include <span>
#include <vector>

#include "problems/tsp/instance.hpp"

namespace qross::tsp {

struct MvodmResult {
  TspInstance shifted;          ///< pre-processed instance fed to the QUBO
  std::vector<double> pi;       ///< Held–Karp potentials
  double edge_offset = 0.0;     ///< uniform per-edge offset applied after the shift
  double original_variance = 0.0;
  double shifted_variance = 0.0;

  /// Maps a tour length measured on `shifted` back to the original metric.
  double to_original_length(double shifted_length, std::size_t num_cities,
                            double pi_sum) const;
};

/// Potentials minimising the variance of {d(u,v) - pi_u - pi_v : u != v},
/// found by Gauss–Seidel on the (convex) normal equations.
std::vector<double> minimize_distance_variance(const TspInstance& instance,
                                               std::size_t max_iterations = 200,
                                               double tolerance = 1e-12);

/// Full MVODM pipeline: potentials, shift, and positivity re-offset so that
/// every off-diagonal shifted distance is at least `min_edge` (default: 1% of
/// the original mean distance).
MvodmResult mvodm_preprocess(const TspInstance& instance,
                             double min_edge = -1.0);

/// Variance of the off-diagonal entries of the instance's distance matrix.
double offdiagonal_variance(const TspInstance& instance);

}  // namespace qross::tsp
