#pragma once

// (Weighted) Minimum Vertex Cover, the appendix-B case study.
//
// Given an undirected graph, find a minimum-(weight) set of vertices
// touching every edge.  QUBO form (paper appendix B):
//
//   min  sum_i w_i u_i + sigma * sum_{(i,j) in E} (1 - u_i - u_j + u_i u_j)
//
// The penalty term counts uncovered edges, so any sigma > max_i w_i makes
// cover configurations energetically dominant.  Appendix B sweeps sigma far
// beyond that bound to demonstrate how oversized penalties degrade solution
// quality on noisy (quantum) and finite-precision (classical) hardware.

#include <cstdint>
#include <vector>

#include "qubo/model.hpp"

namespace qross::mvc {

struct Edge {
  std::size_t u = 0;
  std::size_t v = 0;
};

class MvcInstance {
 public:
  /// Unweighted constructor (all weights 1).
  MvcInstance(std::size_t num_vertices, std::vector<Edge> edges);

  /// Weighted constructor.
  MvcInstance(std::size_t num_vertices, std::vector<Edge> edges,
              std::vector<double> weights);

  std::size_t num_vertices() const { return n_; }
  const std::vector<Edge>& edges() const { return edges_; }
  const std::vector<double>& weights() const { return weights_; }

  /// Total weight of the chosen vertex set.
  double cover_weight(std::span<const std::uint8_t> selection) const;

  /// Number of edges with neither endpoint selected.
  std::size_t uncovered_edges(std::span<const std::uint8_t> selection) const;

  bool is_cover(std::span<const std::uint8_t> selection) const {
    return uncovered_edges(selection) == 0;
  }

  /// QUBO with penalty weight sigma (appendix B formulation).
  qubo::QuboModel to_qubo(double sigma) const;

 private:
  std::size_t n_;
  std::vector<Edge> edges_;
  std::vector<double> weights_;
};

/// Erdos–Renyi G(n, p) with vertex weights U[0, 1) — appendix B's workload
/// ("randomly generated graphs with ... 50% probability of connections",
/// weights uniform over [0, 1)).
MvcInstance generate_random_mvc(std::size_t num_vertices,
                                double edge_probability, std::uint64_t seed);

/// Greedy cover (repeatedly pick the vertex covering the most uncovered
/// edges per unit weight).  Reference upper bound.
std::vector<std::uint8_t> greedy_cover(const MvcInstance& instance);

/// Exact minimum-weight cover by branch and bound; requires n <= 30.
struct ExactCover {
  std::vector<std::uint8_t> selection;
  double weight = 0.0;
};
ExactCover solve_exact_cover(const MvcInstance& instance);

}  // namespace qross::mvc
